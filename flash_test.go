package flash_test

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"testing"
	"time"

	flash "repro"
	"repro/internal/htlc"
	"repro/internal/trace"
)

// TestEndToEndSimulation drives the public API through a full
// mini-evaluation: network construction, workload generation, routing
// with every scheme, and metric collection.
func TestEndToEndSimulation(t *testing.T) {
	net, err := flash.BuildNetwork("ripple", 150, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := flash.DefaultTraceConfig(150)
	cfg.Graph = net.Graph()
	cfg.Seed = 42
	gen, err := flash.NewTraceGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payments := gen.Generate(400)
	threshold := flash.ThresholdForMiceFraction(trace.Amounts(payments), 0.9)

	snap := net.Snapshot()
	volumes := map[string]float64{}
	for _, scheme := range []string{flash.SchemeFlash, flash.SchemeSpider,
		flash.SchemeSpeedyMurmurs, flash.SchemeShortestPath} {
		if err := net.Restore(snap); err != nil {
			t.Fatal(err)
		}
		r, err := flash.NewRouterByName(scheme, threshold, 1)
		if err != nil {
			t.Fatal(err)
		}
		m, err := flash.RunSimulation(net, r, payments, threshold)
		if err != nil {
			t.Fatal(err)
		}
		if m.Payments == 0 {
			t.Fatalf("%s: no payments", scheme)
		}
		volumes[scheme] = m.SuccessVolume
	}
	if volumes[flash.SchemeFlash] < volumes[flash.SchemeShortestPath] {
		t.Errorf("Flash (%.4g) should beat ShortestPath (%.4g) on volume",
			volumes[flash.SchemeFlash], volumes[flash.SchemeShortestPath])
	}
}

// TestSimulatorTestbedAgreement routes the same payments over the same
// starting state twice — once in memory, once over real TCP nodes — and
// requires identical success/failure outcomes (both substrates
// implement the same protocol semantics). ShortestPath is used because
// it is deterministic.
func TestSimulatorTestbedAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := flash.WattsStrogatz(12, 4, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := flash.NewNetwork(g)
	balRNG := rand.New(rand.NewSource(12))
	for _, e := range g.Channels() {
		total := 1000 + balRNG.Float64()*500
		if err := net.SetBalance(e.A, e.B, total/2, total/2); err != nil {
			t.Fatal(err)
		}
	}

	cluster, err := flash.NewCluster(g, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.FromNetwork(net); err != nil {
		t.Fatal(err)
	}

	cfg := flash.DefaultTraceConfig(12)
	cfg.Graph = g
	cfg.Seed = 13
	gen, err := flash.NewTraceGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payments := gen.Generate(60)

	for i, p := range payments {
		if p.Sender == p.Receiver {
			continue
		}
		simRouter, _ := flash.NewRouterByName(flash.SchemeShortestPath, 0, 1)
		tx, err := net.Begin(p.Sender, p.Receiver, p.Amount)
		if err != nil {
			t.Fatal(err)
		}
		simErr := simRouter.Route(tx)

		tbRouter, _ := flash.NewRouterByName(flash.SchemeShortestPath, 0, 1)
		sess, err := cluster.Node(p.Sender).NewSession(p.Receiver, p.Amount)
		if err != nil {
			t.Fatal(err)
		}
		tbErr := tbRouter.Route(sess)

		if (simErr == nil) != (tbErr == nil) {
			t.Fatalf("payment %d (%d→%d, %.2f): sim err=%v, testbed err=%v",
				i, p.Sender, p.Receiver, p.Amount, simErr, tbErr)
		}
	}
	// Final states must agree channel by channel.
	if err := cluster.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Channels() {
		simAB := net.Balance(e.A, e.B)
		tbAB, _ := cluster.Node(e.A).Balances(e.B)
		if math.Abs(simAB-tbAB) > 1e-6 {
			t.Fatalf("channel %v: sim %v vs testbed %v", e, simAB, tbAB)
		}
	}
}

// TestScenarioHeadline runs a small Figure-6 cell and checks the
// paper's core comparative claims hold: Flash ≥ Spider on success
// volume, and Flash probes less than Spider.
func TestScenarioHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("headline scenario skipped in -short mode")
	}
	sc := flash.DefaultScenario("ripple", 300)
	sc.Txns = 800
	sc.Runs = 2
	results, err := flash.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]flash.SchemeResult{}
	for _, r := range results {
		byName[r.Scheme] = r
	}
	vol := func(s string) float64 {
		return byName[s].Mean(func(m flash.Metrics) float64 { return m.SuccessVolume })
	}
	probes := func(s string) float64 {
		return byName[s].Mean(func(m flash.Metrics) float64 { return float64(m.ProbeMessages) })
	}
	if vol(flash.SchemeFlash) < vol(flash.SchemeSpider) {
		t.Errorf("Flash volume %.4g below Spider %.4g", vol(flash.SchemeFlash), vol(flash.SchemeSpider))
	}
	if probes(flash.SchemeFlash) >= probes(flash.SchemeSpider) {
		t.Errorf("Flash probes %.0f not below Spider %.0f", probes(flash.SchemeFlash), probes(flash.SchemeSpider))
	}
	if probes(flash.SchemeSpeedyMurmurs) != 0 || probes(flash.SchemeShortestPath) != 0 {
		t.Error("static schemes must not probe")
	}
}

// TestGraphAlgorithmsExposed sanity-checks the re-exported algorithms.
func TestGraphAlgorithmsExposed(t *testing.T) {
	g := flash.NewGraph(4)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(1, 3)
	g.MustAddChannel(0, 2)
	g.MustAddChannel(2, 3)
	if p := flash.ShortestPath(g, 0, 3, nil); len(p) != 3 {
		t.Errorf("ShortestPath = %v", p)
	}
	if ps := flash.KShortestPaths(g, 0, 3, 5); len(ps) != 2 {
		t.Errorf("KShortestPaths found %d paths, want 2", len(ps))
	}
	if ps := flash.EdgeDisjointPaths(g, 0, 3, 5); len(ps) != 2 {
		t.Errorf("EdgeDisjointPaths found %d, want 2", len(ps))
	}
}

// ExampleNewFlash demonstrates the quickstart flow.
func ExampleNewFlash() {
	g := flash.NewGraph(3)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(1, 2)
	net := flash.NewNetwork(g)
	net.SetBalance(0, 1, 100, 100)
	net.SetBalance(1, 2, 100, 100)

	router := flash.NewFlash(flash.DefaultConfig(50))
	tx, err := net.Begin(0, 2, 80)
	if err != nil {
		log.Fatal(err)
	}
	if err := router.Route(tx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered 80 over %d path(s)\n", tx.PathsUsed())
	// Output: delivered 80 over 1 path(s)
}

// ExampleThresholdForMiceFraction shows workload-driven thresholding.
func ExampleThresholdForMiceFraction() {
	amounts := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 1000}
	fmt.Println(flash.ThresholdForMiceFraction(amounts, 0.9))
	// Output: 9
}

// TestGossipAndHTLCFacade exercises the topology-maintenance and
// payment-security layers through the public API.
func TestGossipAndHTLCFacade(t *testing.T) {
	g := flash.NewGraph(3)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(1, 2)
	net := flash.NewNetwork(g)
	net.SetBalance(0, 1, 100, 100)
	net.SetBalance(1, 2, 100, 100)

	// Gossip: three peers learn the topology from announcements.
	peers := []*flash.GossipPeer{
		flash.NewGossipPeer(0, 3), flash.NewGossipPeer(1, 3), flash.NewGossipPeer(2, 3),
	}
	flash.ConnectPeers(peers[0], peers[1])
	flash.ConnectPeers(peers[1], peers[2])
	peers[0].AnnounceOpen(1)
	peers[1].AnnounceOpen(2)
	if peers[2].View().NumOpen() != 2 {
		t.Fatalf("peer 2 view has %d channels, want 2", peers[2].View().NumOpen())
	}
	path := flash.ShortestPath(peers[0].View().Graph(), 0, 2, nil)
	if len(path) != 3 {
		t.Fatalf("view path = %v", path)
	}

	// HTLC: settle a payment along the gossip-discovered path.
	chain := &flash.HTLCChain{}
	ledger := flash.NewHTLCLedger(net, chain)
	secret, err := htlc.NewSecret(nil)
	if err != nil {
		t.Fatal(err)
	}
	payment, err := flash.SetupHTLCPayment(ledger, path, 25, secret.Hash(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := payment.ClaimAll(secret); err != nil {
		t.Fatal(err)
	}
	if got := net.Balance(2, 1); math.Abs(got-125) > 1e-9 {
		t.Errorf("receiver balance = %v, want 125", got)
	}
	if ledger.Escrow() != 0 {
		t.Errorf("escrow = %v, want 0", ledger.Escrow())
	}
}
