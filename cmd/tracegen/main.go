// Command tracegen generates a synthetic payment trace and reports the
// statistics the paper measures on the real Ripple and Bitcoin traces
// (§2.2): the payment-size CDF and heavy-tail share (Figure 3) and the
// recurrence statistics (Figure 4).
//
// Examples:
//
//	tracegen -sizes ripple -n 100000
//	tracegen -sizes bitcoin -n 100000 -cdf 20
//	tracegen -recurrence -days 30
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		n          = flag.Int("n", 100000, "number of payments to generate")
		sizes      = flag.String("sizes", "ripple", "size model: ripple or bitcoin")
		nodes      = flag.Int("nodes", 1000, "node ID space")
		seed       = flag.Int64("seed", 1, "random seed")
		cdfPoints  = flag.Int("cdf", 0, "print this many CDF points (0 = skip)")
		recurrence = flag.Bool("recurrence", false, "report Figure 4 recurrence statistics")
		days       = flag.Int("days", 10, "days of trace for -recurrence (2000 payments/day)")
	)
	flag.Parse()

	cfg := trace.DefaultConfig(*nodes)
	cfg.Seed = *seed
	switch *sizes {
	case "ripple":
		cfg.Sizes = trace.RippleSizes
	case "bitcoin":
		cfg.Sizes = trace.BitcoinSizes
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown size model %q\n", *sizes)
		os.Exit(1)
	}

	count := *n
	if *recurrence {
		count = *days * cfg.PaymentsPerDay
	}
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	payments := gen.Generate(count)

	st := trace.AnalyzeSizes(payments)
	fmt.Printf("# Figure 3 statistics (%s, %d payments)\n", cfg.Sizes.Name, count)
	fmt.Printf("median size:       %.4g\n", st.Median)
	fmt.Printf("p90 size:          %.4g\n", st.P90)
	fmt.Printf("top-10%% vol share: %.1f%%   (paper: 94.5%% Ripple / 94.7%% Bitcoin)\n", 100*st.Top10Share)
	fmt.Printf("total volume:      %.4g\n", st.TotalVolume)

	if *cdfPoints > 0 {
		fmt.Printf("\n# size CDF (%d points): value probability\n", *cdfPoints)
		for _, pt := range trace.SizeCDF(payments).Points(*cdfPoints) {
			fmt.Printf("%.6g %.4f\n", pt[0], pt[1])
		}
	}

	if *recurrence {
		fracs := trace.RecurringPerDay(payments)
		shares := trace.Top5RecurringShare(payments)
		fmt.Printf("\n# Figure 4 statistics (%d days)\n", len(fracs))
		fmt.Printf("recurring fraction/day:  median %.1f%% (min %.1f%%, max %.1f%%)   (paper: median 86%%)\n",
			100*stats.Median(fracs), 100*stats.Summarize(fracs).Min, 100*stats.Summarize(fracs).Max)
		fmt.Printf("top-5 recurring share:   median %.1f%%   (paper: >70%%)\n",
			100*stats.Median(shares))
	}
}
