// Command experiments regenerates the paper's evaluation: every figure
// from Figure 3 (trace statistics) through Figure 13 (100-node
// testbed), plus the headline success-volume comparison.
//
// Examples:
//
//	experiments                 # all figures, reduced scale (~2 min)
//	experiments -full           # paper-scale parameters (tens of minutes)
//	experiments -fig 6,8        # selected figures only
//	experiments -telemetry 127.0.0.1:9090   # live /metrics + pprof
//
// -telemetry ADDR serves Go runtime metrics and /debug/pprof/ while
// the figures run — useful for profiling a -full regeneration.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/control"
	"repro/internal/exp"
	"repro/internal/telemetry"
)

func main() {
	var (
		figs        = flag.String("fig", "all", "comma-separated figure list (3,4,6,7,8,9,10,11,12,13,headline,ablations,dynamic,latency) or 'all'")
		full        = flag.Bool("full", false, "paper-scale parameters (slower)")
		seed        = flag.Int64("seed", 1, "base random seed")
		workers     = flag.Int("workers", 0, "goroutines for independent sweep cells (0 = GOMAXPROCS, 1 = sequential)")
		probeW      = flag.Int("probeworkers", 1, "Flash per-session probe pool: probe N speculative elephant candidate paths concurrently (1 = sequential Algorithm 1)")
		adaptiveThr = flag.Bool("adaptivethreshold", false, "re-calibrate Flash's elephant threshold on a rolling quantile in every dynamic-scenario cell")
		ctrl        = flag.String("control", "", "adaptive control plane for every dynamic-scenario cell, comma-separated: raw|ewma (global threshold), sender (per-sender thresholds), width (probe width); off/empty = none")
		topology    = flag.String("topology", "", "snapshot file (LN graph JSON or capacity edge list) replacing every figure's generated topology")
		telAddr     = flag.String("telemetry", "", "serve runtime /metrics and pprof on this address while figures run")
	)
	flag.Parse()

	if *telAddr != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterRuntimeMetrics(reg)
		srv, err := telemetry.NewServer(*telAddr, reg, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("# telemetry on http://%s/metrics\n", srv.Addr())
	}

	o := exp.Options{Full: *full, Seed: *seed, Out: os.Stdout, Workers: *workers, ProbeWorkers: *probeW, AdaptiveThreshold: *adaptiveThr, Topology: *topology}
	if *ctrl != "" {
		policy, err := control.ParsePolicy(*ctrl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		if policy.Enabled() {
			o.Control = &policy
		}
	}
	runners := map[string]func(exp.Options) error{
		"3":         exp.Fig3,
		"4":         exp.Fig4,
		"6":         exp.Fig6,
		"7":         exp.Fig7,
		"8":         exp.Fig8,
		"9":         exp.Fig9,
		"10":        exp.Fig10,
		"11":        exp.Fig11,
		"12":        exp.Fig12,
		"13":        exp.Fig13,
		"headline":  exp.Headline,
		"ablations": exp.Ablations,
		"dynamic":   exp.Dynamic,
		"latency":   exp.Latency,
	}
	order := []string{"3", "4", "6", "7", "8", "9", "10", "11", "12", "13", "headline", "ablations", "dynamic", "latency"}

	selected := map[string]bool{}
	if *figs == "all" {
		for _, f := range order {
			selected[f] = true
		}
	} else {
		for _, f := range strings.Split(*figs, ",") {
			f = strings.TrimSpace(f)
			if _, ok := runners[f]; !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", f)
				os.Exit(2)
			}
			selected[f] = true
		}
	}
	for _, f := range order {
		if !selected[f] {
			continue
		}
		if err := runners[f](o); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: figure %s: %v\n", f, err)
			os.Exit(1)
		}
	}
}
