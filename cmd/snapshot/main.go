// Command snapshot generates, converts and inspects the channel-graph
// snapshots the simulator can run on (flashsim -topology, experiments
// -topology). Two on-disk formats are supported, chosen by extension:
// ".json" is the lnd `describegraph` channel-graph shape, anything
// else a whitespace-separated "src dst capacity" edge list (the shape
// Ripple trust-line crawls are distributed in).
//
// Usage:
//
//	snapshot gen -kind ripple -nodes 10000 -seed 1 -out r10k.edges
//	snapshot convert -in lngraph.json -out lngraph.edges
//	snapshot stats -in r10k.edges
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/topo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "convert":
		err = runConvert(os.Args[2:])
	case "stats":
		err = runStats(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "snapshot: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapshot:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  snapshot gen     -kind ripple|lightning|testbed -nodes N [-seed S] -out FILE
  snapshot convert -in FILE -out FILE
  snapshot stats   -in FILE

Formats are chosen by extension: .json = LN channel-graph JSON,
anything else = "src dst capacity" edge list.`)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "ripple", "topology model: ripple, lightning or testbed")
	nodes := fs.Int("nodes", 1870, "number of nodes")
	seed := fs.Int64("seed", 1, "random seed (same seed, same snapshot)")
	out := fs.String("out", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	snap, err := topo.GenerateSyntheticSnapshot(*kind, *nodes, *seed)
	if err != nil {
		return err
	}
	if err := writeSnapshot(*out, snap); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d nodes, %d channels\n", *out, snap.Graph.NumNodes(), snap.Graph.NumChannels())
	return nil
}

func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input snapshot (required)")
	out := fs.String("out", "", "output snapshot (required)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("convert: -in and -out are required")
	}
	snap, err := topo.LoadSnapshotFile(*in)
	if err != nil {
		return err
	}
	if err := writeSnapshot(*out, snap); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d nodes, %d channels\n", *out, snap.Graph.NumNodes(), snap.Graph.NumChannels())
	return nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "input snapshot (required)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("stats: -in is required")
	}
	snap, err := topo.LoadSnapshotFile(*in)
	if err != nil {
		return err
	}
	g := snap.Graph
	degrees := make([]int, g.NumNodes())
	for _, e := range g.Channels() {
		degrees[e.A]++
		degrees[e.B]++
	}
	sort.Ints(degrees)
	caps := append([]float64(nil), snap.Capacity...)
	sort.Float64s(caps)
	total := 0.0
	for _, c := range caps {
		total += c
	}
	fmt.Printf("nodes       %d\n", g.NumNodes())
	fmt.Printf("channels    %d\n", g.NumChannels())
	if n := len(degrees); n > 0 {
		fmt.Printf("degree      min %d / median %d / max %d\n", degrees[0], degrees[n/2], degrees[n-1])
	}
	if n := len(caps); n > 0 {
		fmt.Printf("capacity    min %g / median %g / max %g / total %g\n", caps[0], caps[n/2], caps[n-1], total)
	}
	return nil
}

// writeSnapshot serialises snap in the format the output extension
// selects.
func writeSnapshot(path string, snap *topo.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if isJSON(path) {
		if err := topo.WriteLNGraphJSON(f, snap); err != nil {
			return err
		}
	} else if err := topo.WriteRippleEdgeList(f, snap); err != nil {
		return err
	}
	return f.Close()
}

func isJSON(path string) bool {
	return len(path) >= 5 && path[len(path)-5:] == ".json"
}
