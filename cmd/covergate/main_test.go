package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTemp drops content into a fresh temp file and returns its path.
func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestProfileTotal pins the coverage arithmetic: percent of statements
// with a non-zero count, matching `go tool cover -func` totals.
func TestProfileTotal(t *testing.T) {
	profile := writeTemp(t, "cover.out", strings.Join([]string{
		"mode: set",
		"repro/a.go:1.1,2.2 4 1",
		"repro/a.go:3.1,4.2 4 0",
		"repro/b.go:1.1,9.2 2 7",
		"",
	}, "\n"))
	total, err := profileTotal(profile)
	if err != nil {
		t.Fatal(err)
	}
	if want := 100 * 6.0 / 10.0; math.Abs(total-want) > 1e-9 {
		t.Errorf("total = %v, want %v", total, want)
	}
}

// TestProfileTotalEmpty covers the degenerate profiles: a zero-byte
// file and a mode-line-only file both carry no statements.
func TestProfileTotalEmpty(t *testing.T) {
	for _, tc := range []struct{ name, content string }{
		{"zero-byte", ""},
		{"mode-only", "mode: atomic\n"},
		{"blank-lines", "mode: set\n\n\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			profile := writeTemp(t, "cover.out", tc.content)
			_, err := profileTotal(profile)
			if err == nil || !strings.Contains(err.Error(), "no statements in profile") {
				t.Errorf("want 'no statements in profile' error, got %v", err)
			}
		})
	}
}

// TestProfileTotalMalformed checks malformed profile lines fail with a
// positional error instead of being silently skipped.
func TestProfileTotalMalformed(t *testing.T) {
	for _, tc := range []struct{ name, line, wantErr string }{
		{"two fields", "repro/a.go:1.1,2.2 4", "want 3 fields"},
		{"four fields", "repro/a.go:1.1,2.2 4 1 9", "want 3 fields"},
		{"bad statement count", "repro/a.go:1.1,2.2 x 1", "statements"},
		{"bad hit count", "repro/a.go:1.1,2.2 4 x", "count"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			profile := writeTemp(t, "cover.out", "mode: set\n"+tc.line+"\n")
			_, err := profileTotal(profile)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("want error containing %q, got %v", tc.wantErr, err)
			}
			if err != nil && !strings.Contains(err.Error(), ":2:") {
				t.Errorf("error should carry the line number, got %v", err)
			}
		})
	}
}

// TestProfileTotalMissing covers the profile file not existing at all.
func TestProfileTotalMissing(t *testing.T) {
	_, err := profileTotal(filepath.Join(t.TempDir(), "nope.out"))
	if err == nil {
		t.Error("want an error for a missing profile")
	}
}

// TestReadBaseline pins baseline parsing: a bare number with optional
// surrounding whitespace.
func TestReadBaseline(t *testing.T) {
	v, err := readBaseline(writeTemp(t, "baseline.txt", " 77.74\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v != 77.74 {
		t.Errorf("baseline = %v, want 77.74", v)
	}
}

// TestReadBaselineErrors covers the missing and malformed baseline —
// the gate must fail loudly rather than default to zero (which would
// make every run pass).
func TestReadBaselineErrors(t *testing.T) {
	if _, err := readBaseline(filepath.Join(t.TempDir(), "absent.txt")); err == nil {
		t.Error("want an error for a missing baseline file")
	}
	if _, err := readBaseline(writeTemp(t, "baseline.txt", "not-a-number\n")); err == nil {
		t.Error("want an error for a malformed baseline")
	}
}
