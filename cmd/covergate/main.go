// Command covergate is the repository's coverage ratchet: it computes
// total statement coverage from a `go test -coverprofile` file and
// fails (exit 1) when it has dropped more than an allowed slack below
// the committed baseline, so coverage regressions surface in CI
// instead of eroding silently. When coverage rises, the gate passes
// and prints the new figure so the baseline can be ratcheted up.
//
// Usage:
//
//	go test -coverprofile=cover.out ./...
//	covergate -profile cover.out -baseline coverage_baseline.txt
//	covergate -profile cover.out -baseline coverage_baseline.txt -update
//
// The baseline file holds one number: total statement coverage in
// percent. -update rewrites it with the profile's current total (the
// ratchet click, reviewed like any other diff).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	var (
		profile  = flag.String("profile", "cover.out", "coverage profile from go test -coverprofile")
		baseline = flag.String("baseline", "coverage_baseline.txt", "committed baseline file (percent)")
		slack    = flag.Float64("slack", 0.5, "allowed drop below the baseline in percentage points")
		update   = flag.Bool("update", false, "rewrite the baseline with the profile's total and exit")
	)
	flag.Parse()

	total, err := profileTotal(*profile)
	if err != nil {
		fatal(err)
	}
	if *update {
		if err := os.WriteFile(*baseline, []byte(fmt.Sprintf("%.2f\n", total)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("covergate: baseline updated to %.2f%%\n", total)
		return
	}
	want, err := readBaseline(*baseline)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("covergate: total statement coverage %.2f%% (baseline %.2f%%, slack %.2fpt)\n", total, want, *slack)
	if total < want-*slack {
		fmt.Fprintf(os.Stderr, "covergate: FAIL: coverage dropped %.2fpt below the baseline\n", want-total)
		os.Exit(1)
	}
	if total-want > 0.005 { // more than baseline-file rounding
		fmt.Printf("covergate: coverage improved by %.2fpt — consider ratcheting the baseline (-update)\n", total-want)
	}
}

// profileTotal sums a cover profile's statement counts: the percentage
// of statements with a non-zero execution count, the same total
// `go tool cover -func` prints on its last line.
func profileTotal(path string) (float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var covered, total int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		// file.go:l.c,l.c numStmts count
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return 0, fmt.Errorf("%s:%d: want 3 fields, got %d", path, lineNo, len(fields))
		}
		stmts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%s:%d: statements: %w", path, lineNo, err)
		}
		count, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%s:%d: count: %w", path, lineNo, err)
		}
		total += stmts
		if count > 0 {
			covered += stmts
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if total == 0 {
		return 0, fmt.Errorf("%s: no statements in profile", path)
	}
	return 100 * float64(covered) / float64(total), nil
}

// readBaseline parses the single-number baseline file.
func readBaseline(path string) (float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(string(b)), 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "covergate:", err)
	os.Exit(1)
}
