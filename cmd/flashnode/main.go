// Command flashnode runs a single offchain protocol node as a
// standalone TCP daemon — the deployment shape of the paper's prototype,
// where "each node of an offchain network [is] a single process ...
// bound to a unique ip address and port number tuple" (§5.2).
//
// The node reads three text files at launch (mirroring the prototype,
// which "reads the network topology from a local file at launch time"):
//
//	-topology  edge list ("a b" per line, '#' comments)
//	-channels  channel state: "a b balAB balBA feeAB feeBA" per line
//	           (only lines where a or b equals this node's ID apply)
//	-peers     address registry: "id host:port" per line
//
// Example (3-node line, run in three shells):
//
//	flashnode -id 0 -listen 127.0.0.1:7000 -topology topo.txt -channels ch.txt -peers peers.txt
//	flashnode -id 1 -listen 127.0.0.1:7001 ...
//	flashnode -id 2 -listen 127.0.0.1:7002 ...
//
// With -pay RECEIVER:AMOUNT the node routes one payment with Flash and
// exits with status 0 on success; otherwise it serves until interrupted
// (SIGINT or SIGTERM), printing the router's final statistics on the
// way out.
//
// -telemetry ADDR serves live observability while the node runs:
// /metrics (Prometheus text), /metrics.json (JSON lines), /flows
// (JSONL flow records; ?follow=1 streams) and /debug/pprof/.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/node"
	"repro/internal/pcn"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

func main() {
	var (
		id       = flag.Int("id", -1, "this node's ID (required)")
		listen   = flag.String("listen", "127.0.0.1:0", "listen address")
		topoPath = flag.String("topology", "", "edge-list topology file (required)")
		chanPath = flag.String("channels", "", "channel balance/fee file (required)")
		peerPath = flag.String("peers", "", "peer address registry file (required)")
		pay      = flag.String("pay", "", "optional one-shot payment RECEIVER:AMOUNT, routed with Flash")
		k        = flag.Int("k", 20, "Flash elephant path budget")
		m        = flag.Int("m", 4, "Flash mice paths per receiver")
		timeout  = flag.Duration("timeout", 5*time.Second, "protocol reply timeout")
		telAddr  = flag.String("telemetry", "", "serve /metrics, /flows and pprof on this address (e.g. 127.0.0.1:9090)")
	)
	flag.Parse()
	if *id < 0 || *topoPath == "" || *chanPath == "" || *peerPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	g, err := loadTopology(*topoPath)
	fatalIf(err)
	n, err := node.New(node.Config{
		ID: topo.NodeID(*id), Graph: g, ListenAddr: *listen, Timeout: *timeout,
	})
	fatalIf(err)
	defer n.Close()
	fmt.Printf("flashnode %d listening on %s (%d nodes, %d channels)\n",
		*id, n.Addr(), g.NumNodes(), g.NumChannels())

	peers, err := loadPeers(*peerPath)
	fatalIf(err)
	n.SetPeers(peers)
	fatalIf(loadChannels(n, g, *chanPath))

	cfg := core.DefaultConfig(math.Inf(1)) // single payments: mice path is fine
	cfg.K, cfg.M = *k, *m
	router := core.New(cfg)

	var flows *telemetry.FlowLog
	var payLatency *telemetry.Histogram
	if *telAddr != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterRuntimeMetrics(reg)
		sim.RegisterRouterMetrics(reg, router.Name(), router)
		reg.GaugeFunc("node_messages_sent_total",
			"Protocol messages written to peer connections by this node.",
			func() float64 { return float64(n.MessagesSent()) })
		payLatency = reg.Histogram("node_payment_latency_seconds",
			"Wall-clock routing latency of payments sent by this node.",
			telemetry.ExpBuckets(0.0001, 10, 8))
		flows = telemetry.NewFlowLog(1024)
		srv, err := telemetry.NewServer(*telAddr, reg, flows)
		fatalIf(err)
		defer srv.Close()
		fmt.Printf("flashnode %d telemetry on http://%s/metrics\n", *id, srv.Addr())
	}

	if *pay != "" {
		var receiver topo.NodeID
		var amount float64
		_, err := fmt.Sscanf(*pay, "%d:%f", &receiver, &amount)
		fatalIf(err)
		sess, err := n.NewSession(receiver, amount)
		fatalIf(err)
		start := time.Now()
		rerr := router.Route(sess)
		elapsed := time.Since(start)
		if payLatency != nil {
			payLatency.Observe(elapsed.Seconds())
		}
		if flows != nil {
			emitNodeFlow(flows, router.Name(), n.ID(), sess, amount, elapsed, rerr == nil)
		}
		if rerr != nil {
			fmt.Printf("payment of %g to %d FAILED after %v: %v\n", amount, receiver, elapsed, rerr)
			printStats(router)
			os.Exit(1)
		}
		fmt.Printf("payment of %g to %d delivered in %v over %d path(s), %d probe messages, %g fees paid\n",
			amount, receiver, elapsed, sess.PathsUsed(), sess.ProbeMessages(), sess.FeesPaid())
		printStats(router)
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("flashnode: shutting down")
	printStats(router)
}

// printStats renders the router's final counters, the numbers the
// simulator reports per run, so a daemon shutdown (or one-shot -pay)
// leaves the same audit trail on stdout.
func printStats(router *core.Flash) {
	st := router.Stats()
	fmt.Printf("router stats: elephants=%d mice=%d tableHits=%d tableMisses=%d tableEntries=%d invalidations=%d evictions=%d pathsReplaced=%d threshold=%g\n",
		st.Elephants, st.Mice, st.TableHits, st.TableMisses, st.TableEntries,
		st.TableInvalidations, st.TableEvictions, st.PathsReplaced, router.Threshold())
}

// emitNodeFlow records the one-shot payment as a telemetry flow record
// so -pay runs with -telemetry leave an inspectable trace on /flows.
func emitNodeFlow(sink telemetry.Sink, scheme string, sender topo.NodeID, sess *node.Session, amount float64, elapsed time.Duration, delivered bool) {
	r := telemetry.AcquireFlow()
	r.Scheme = scheme
	r.Sender = int64(sender)
	r.Receiver = int64(sess.Receiver())
	r.Amount = amount
	r.Class = telemetry.ClassMouse // threshold is +Inf for one-shot payments
	r.Attempts = 1
	r.ProbeRounds = sess.ProbeOps()
	r.ProbeMessages = int64(sess.ProbeMessages())
	r.CommitMessages = int64(sess.CommitMessages())
	r.Paths = sess.PathsUsed()
	r.Fees = sess.FeesPaid()
	r.Complete = elapsed.Seconds()
	r.WallNS = elapsed.Nanoseconds()
	r.Outcome = telemetry.OutcomeFailed
	if delivered {
		r.Outcome = telemetry.OutcomeDelivered
	}
	sink.Emit(r)
	telemetry.ReleaseFlow(r)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "flashnode:", err)
		os.Exit(1)
	}
}

func loadTopology(path string) (*topo.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return topo.ReadEdgeList(f)
}

func loadPeers(path string) (map[topo.NodeID]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	peers := make(map[topo.NodeID]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var id topo.NodeID
		var addr string
		if _, err := fmt.Sscanf(line, "%d %s", &id, &addr); err != nil {
			return nil, fmt.Errorf("peers file: %q: %w", line, err)
		}
		peers[id] = addr
	}
	return peers, sc.Err()
}

// loadChannels applies the channel lines adjacent to node n.
func loadChannels(n *node.Node, g *topo.Graph, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var a, b topo.NodeID
		var balAB, balBA, feeAB, feeBA float64
		cnt, err := fmt.Sscanf(line, "%d %d %f %f %f %f", &a, &b, &balAB, &balBA, &feeAB, &feeBA)
		if err != nil && cnt < 4 {
			return fmt.Errorf("channels file: %q: %w", line, err)
		}
		switch n.ID() {
		case a:
			if err := n.SetChannel(b, balAB, balBA, pcn.FeeSchedule{Rate: feeAB}, pcn.FeeSchedule{Rate: feeBA}); err != nil {
				return err
			}
		case b:
			if err := n.SetChannel(a, balBA, balAB, pcn.FeeSchedule{Rate: feeBA}, pcn.FeeSchedule{Rate: feeAB}); err != nil {
				return err
			}
		}
	}
	return sc.Err()
}
