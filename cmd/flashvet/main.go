// Command flashvet runs the repository's project-specific static
// analyzers (internal/analysis) over the module: the determinism,
// lock-order, observer-only and doc-comment contracts that ordinary
// vet/staticcheck cannot see. It is the CI lint gate.
//
// Usage:
//
//	flashvet ./...               # audit every package in the module
//	flashvet ./internal/pcn      # audit specific package directories
//	flashvet -v ./...            # also list directive-suppressed findings
//	flashvet -catalogue          # print the analyzer/rule catalogue
//
// Exit status is 1 when any unsuppressed diagnostic remains. Audited
// exceptions are written in the source as
//
//	//flashvet:allow <analyzer>/<rule> <reason>
//
// on the flagged line or the line above; a directive that suppresses
// nothing is itself a diagnostic, so stale annotations fail the gate
// too.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	verbose := flag.Bool("v", false, "also print directive-suppressed findings")
	catalogue := flag.Bool("catalogue", false, "print the analyzer and rule catalogue and exit")
	flag.Parse()

	analyzers := analysis.All()
	if *catalogue {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
			for _, r := range a.Rules {
				fmt.Printf("  %s\n", r)
			}
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	var pkgs []*analysis.Package
	for _, arg := range args {
		switch arg {
		case "./...", "...":
			all, err := loader.LoadAll()
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, all...)
		default:
			pkg, err := loader.Load(arg)
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, pkg)
		}
	}

	res, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, d := range res.Suppressed {
			fmt.Fprintf(os.Stderr, "allowed: %s\n", res.Format(d))
		}
	}
	for _, d := range res.Diagnostics {
		fmt.Println(res.Format(d))
	}
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(os.Stderr, "flashvet: %d diagnostic(s) in %d package(s)\n", len(res.Diagnostics), len(pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "flashvet: ok — %d package(s), %d analyzer(s), %d audited exception(s)\n",
		len(pkgs), len(analyzers), len(res.Suppressed))
}

// fatal prints err and exits with status 2 (analysis could not run, as
// distinct from exit 1, diagnostics found).
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flashvet:", err)
	os.Exit(2)
}
