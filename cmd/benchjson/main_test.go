package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkParallelProbe/workers=1         	      20	  13893679 ns/op	       863.7 probes/sec	   64796 B/op	     386 allocs/op
BenchmarkParallelProbe/workers=4         	      20	   3711226 ns/op	      3234 probes/sec	   71136 B/op	     527 allocs/op
BenchmarkDynamicEngine/payments=10000/service=0-4 	       1	  45000000 ns/op	    250000 events/sec
PASS
ok  	repro	0.526s
`

// TestConvert parses a representative bench transcript and checks the
// JSON carries every metric pair, the run context, and echoes the
// non-benchmark lines.
func TestConvert(t *testing.T) {
	var out, echo bytes.Buffer
	if err := convert(strings.NewReader(sample), &out, &echo); err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(out.Bytes(), &r); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(r.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(r.Benchmarks))
	}
	first := r.Benchmarks[0]
	if first.Name != "BenchmarkParallelProbe/workers=1" || first.Iterations != 20 {
		t.Errorf("first = %+v", first)
	}
	if first.Metrics["ns/op"] != 13893679 || first.Metrics["probes/sec"] != 863.7 {
		t.Errorf("first metrics = %v", first.Metrics)
	}
	if r.Benchmarks[2].Metrics["events/sec"] != 250000 {
		t.Errorf("custom metric lost: %v", r.Benchmarks[2].Metrics)
	}
	if r.Context["goos"] != "linux" || !strings.Contains(r.Context["cpu"], "Xeon") {
		t.Errorf("context = %v", r.Context)
	}
	for _, want := range []string{"PASS", "ok  \trepro"} {
		if !strings.Contains(echo.String(), want) {
			t.Errorf("echo stream missing %q", want)
		}
	}
}

// TestParseLineRejectsNoise pins that prose lines and malformed rows
// never become benchmarks.
func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"", "PASS", "ok  \trepro\t0.5s",
		"Benchmark without numbers",
		"BenchmarkX notanumber ns/op",
		"-- some table row --",
		"BenchmarkX notanumber 123 ns/op",  // non-numeric iteration count
		"BenchmarkX 10 notanumber ns/op",   // non-numeric metric value
		"BenchmarkX 10 1.5 ns/op bad more", // later metric value non-numeric
		"benchmarkLower 10 123 ns/op",      // missing Benchmark prefix
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

// TestParseLineOddFieldCount pins the trailing-unpaired-field behavior:
// complete value/unit pairs parse, a dangling value without its unit is
// dropped rather than inventing a metric.
func TestParseLineOddFieldCount(t *testing.T) {
	r, ok := parseLine("BenchmarkX 10 123 ns/op 456")
	if !ok {
		t.Fatal("line with one complete pair should parse")
	}
	if len(r.Metrics) != 1 || r.Metrics["ns/op"] != 123 {
		t.Errorf("metrics = %v, want only ns/op=123", r.Metrics)
	}
}

// TestConvertEmptyInput checks an empty stream still yields a valid,
// decodable report with no benchmarks instead of an error or null.
func TestConvertEmptyInput(t *testing.T) {
	var out, echo bytes.Buffer
	if err := convert(strings.NewReader(""), &out, &echo); err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(out.Bytes(), &r); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(r.Benchmarks) != 0 {
		t.Errorf("benchmarks = %v, want none", r.Benchmarks)
	}
	if echo.Len() != 0 {
		t.Errorf("echo = %q, want empty", echo.String())
	}
}

// TestConvertMalformedLinesEcho checks a malformed benchmark line is
// passed through to the echo stream, not dropped or misparsed.
func TestConvertMalformedLinesEcho(t *testing.T) {
	var out, echo bytes.Buffer
	in := "BenchmarkBroken notanumber 123 ns/op\nBenchmarkGood 10 123 ns/op\n"
	if err := convert(strings.NewReader(in), &out, &echo); err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(out.Bytes(), &r); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(r.Benchmarks) != 1 || r.Benchmarks[0].Name != "BenchmarkGood" {
		t.Errorf("benchmarks = %+v, want only BenchmarkGood", r.Benchmarks)
	}
	if !strings.Contains(echo.String(), "BenchmarkBroken") {
		t.Error("malformed line should pass through to the echo stream")
	}
}
