// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive benchmark smoke
// runs (BENCH_*.json artifacts) and the performance trajectory of the
// hot paths — elephant probing latency, simulator throughput,
// events/sec — accumulates across commits instead of scrolling away in
// build logs.
//
// Usage:
//
//	go test -bench . -benchtime=1x -run xxx . | benchjson -out BENCH_smoke.json
//
// Lines that are not benchmark results (goos/pkg banners, PASS, ok)
// pass through to stderr untouched, so the human-readable stream
// survives piping.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -cpu suffix, e.g. "BenchmarkParallelProbe/workers=4-8".
	Name string `json:"name"`
	// Iterations is b.N for the run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every reported pair: "ns/op",
	// "B/op", "allocs/op" and custom b.ReportMetric units such as
	// "probes/sec" or "events/sec".
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the document benchjson emits.
type Report struct {
	// Context carries the non-benchmark header lines (goos, goarch,
	// pkg, cpu) keyed by field name.
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks lists the parsed results in input order.
	Benchmarks []Result `json:"benchmarks"`
}

// parseLine parses one `go test -bench` output line. It returns the
// result and true for benchmark lines, false for everything else.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}

// contextKey extracts a "key: value" header line (goos, pkg, cpu, …).
func contextKey(line string) (key, value string, ok bool) {
	for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
		if rest, found := strings.CutPrefix(line, k+": "); found {
			return k, strings.TrimSpace(rest), true
		}
	}
	return "", "", false
}

// convert reads bench output from in and writes the JSON report to
// out, echoing non-benchmark lines to echo.
func convert(in io.Reader, out, echo io.Writer) error {
	report := Report{Context: map[string]string{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseLine(line); ok {
			report.Benchmarks = append(report.Benchmarks, r)
			continue
		}
		if k, v, ok := contextKey(line); ok {
			report.Context[k] = v
		}
		fmt.Fprintln(echo, line)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

func main() {
	outPath := flag.String("out", "", "write JSON here (default stdout)")
	flag.Parse()

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := convert(os.Stdin, out, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
