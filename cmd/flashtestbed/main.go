// Command flashtestbed reproduces the paper's testbed evaluation (§5,
// Figures 12 and 13): it boots one TCP protocol node per network
// participant on loopback, replays a Ripple-volume workload, and
// reports success volume, success ratio and normalised processing
// delay for each scheme and capacity range.
//
// Examples:
//
//	flashtestbed -nodes 50 -txns 10000               # Figure 12
//	flashtestbed -nodes 100 -txns 10000              # Figure 13
//	flashtestbed -nodes 20 -txns 500 -ranges 1000:1500
//	flashtestbed -nodes 20 -txns 500 -telemetry 127.0.0.1:9090
//
// With -telemetry ADDR the run serves live /metrics, /metrics.json,
// /flows (one JSONL record per payment; ?follow=1 streams) and
// /debug/pprof/ for its duration. Telemetry is observer-only: results
// are identical with it on or off.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/topo"
	"repro/internal/trace"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 50, "number of TCP nodes (paper: 50 and 100)")
		txns    = flag.Int("txns", 10000, "number of transactions (paper: 10,000)")
		runs    = flag.Int("runs", 1, "independent runs (paper: 5)")
		seed    = flag.Int64("seed", 1, "base random seed")
		schemes = flag.String("schemes", "Flash,Spider,ShortestPath", "schemes to compare (the paper's testbed set)")
		ranges  = flag.String("ranges", "1000:1500,1500:2000,2000:2500", "capacity ranges lo:hi, comma separated")
		timeout = flag.Duration("timeout", 10*time.Second, "per-message-exchange timeout")
		telAddr = flag.String("telemetry", "", "serve /metrics, /flows and pprof on this address for the run's duration")
	)
	flag.Parse()

	var (
		reg   *telemetry.Registry
		flows *telemetry.FlowLog
	)
	if *telAddr != "" {
		reg = telemetry.NewRegistry()
		telemetry.RegisterRuntimeMetrics(reg)
		flows = telemetry.NewFlowLog(4096)
		srv, err := telemetry.NewServer(*telAddr, reg, flows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flashtestbed:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("# telemetry on http://%s/metrics\n", srv.Addr())
	}

	schemeList := strings.Split(*schemes, ",")
	var rows []*row

	for _, rng := range strings.Split(*ranges, ",") {
		var lo, hi float64
		if _, err := fmt.Sscanf(strings.TrimSpace(rng), "%f:%f", &lo, &hi); err != nil {
			fmt.Fprintf(os.Stderr, "flashtestbed: bad range %q: %v\n", rng, err)
			os.Exit(1)
		}
		byScheme := make(map[string]*row)
		for _, s := range schemeList {
			byScheme[s] = &row{scheme: s, capRange: rng}
		}
		for run := 0; run < *runs; run++ {
			runSeed := *seed + int64(run)*7919
			if err := runOnce(*nodes, *txns, lo, hi, runSeed, *timeout, schemeList, byScheme, reg, flows); err != nil {
				fmt.Fprintln(os.Stderr, "flashtestbed:", err)
				os.Exit(1)
			}
		}
		for _, s := range schemeList {
			rows = append(rows, byScheme[s])
		}
	}

	// Normalise delays by ShortestPath's mean, as the paper does.
	spDelay := map[string]float64{}
	spMice := map[string]float64{}
	for _, r := range rows {
		if r.scheme == "ShortestPath" {
			spDelay[r.capRange] = r.delay.Mean()
			spMice[r.capRange] = r.miceDelay.Mean()
		}
	}

	fmt.Printf("# testbed: %d nodes (Watts-Strogatz), %d txns, %d run(s)\n", *nodes, *txns, *runs)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "capacity\tscheme\tsucc.volume\tsucc.ratio\tnorm.delay\tnorm.mice.delay")
	for _, r := range rows {
		nd, nm := 1.0, 1.0
		if d := spDelay[r.capRange]; d > 0 {
			nd = r.delay.Mean() / d
		}
		if d := spMice[r.capRange]; d > 0 {
			nm = r.miceDelay.Mean() / d
		}
		fmt.Fprintf(w, "[%s)\t%s\t%.4g\t%.1f%%\t%.2f\t%.2f\n",
			r.capRange, r.scheme, r.volume.Mean(), 100*r.ratio.Mean(), nd, nm)
	}
	w.Flush()
}

// latencySink observes each payment's wall-clock latency into a
// histogram before forwarding the flow record to the next sink, so the
// testbed's /metrics exposes latency percentiles alongside /flows.
type latencySink struct {
	next telemetry.Sink
	h    *telemetry.Histogram
}

func (s latencySink) Emit(r *telemetry.FlowRecord) {
	s.h.Observe(float64(r.WallNS) / 1e9)
	if s.next != nil {
		s.next.Emit(r)
	}
}

// row accumulates one scheme's results on one capacity range.
type row struct {
	scheme           string
	capRange         string
	volume, ratio    stats.Summary
	delay, miceDelay stats.Summary // normalised against ShortestPath when printed
}

func runOnce(nodes, txns int, lo, hi float64, seed int64, timeout time.Duration,
	schemes []string, byScheme map[string]*row, reg *telemetry.Registry, flows *telemetry.FlowLog) error {
	var nodeMsgs *telemetry.Counter
	var payLat *telemetry.Histogram
	if reg != nil {
		nodeMsgs = reg.Counter("testbed_node_messages_total",
			"Protocol messages written to peer connections across all testbed nodes.")
		payLat = reg.Histogram("testbed_payment_latency_seconds",
			"Wall-clock routing latency of individual testbed payments.",
			telemetry.ExpBuckets(0.0001, 10, 8))
	}
	rng := stats.NewRNG(seed, 0x7E57)
	g, err := topo.WattsStrogatz(nodes, 4, 0.3, rng)
	if err != nil {
		return err
	}
	gen, err := trace.NewGenerator(trace.Config{
		Nodes: nodes, Graph: g, Sizes: trace.RippleSizes,
		RecurrenceProb: 0.86, ReceiverZipf: 1.6, SenderZipf: 1.0,
		PaymentsPerDay: 2000, Seed: seed,
	})
	if err != nil {
		return err
	}
	payments := gen.Generate(txns)
	threshold := core.ThresholdForMiceFraction(trace.Amounts(payments), 0.9)

	for _, scheme := range schemes {
		c, err := testbed.NewCluster(g, timeout)
		if err != nil {
			return err
		}
		balRNG := stats.NewRNG(seed, 0xCAB)
		if err := c.SetBalancesUniform(balRNG, lo, hi); err != nil {
			c.Close()
			return err
		}
		factory := func(id topo.NodeID) (route.Router, error) {
			r, err := sim.NewRouter(scheme, threshold, 0, 0, false, seed+int64(id))
			if sp, ok := r.(*baseline.Spider); ok {
				// The paper's prototype recomputes Spider's paths per
				// payment; disable memoisation so processing delay is
				// measured the same way.
				sp.SetCaching(false)
			}
			return r, err
		}
		tel := testbed.Telemetry{Scheme: scheme, Registry: reg}
		switch { // a nil *FlowLog must not become a non-nil Sink
		case payLat != nil:
			s := latencySink{h: payLat}
			if flows != nil {
				s.next = flows
			}
			tel.Sink = s
		case flows != nil:
			tel.Sink = flows
		}
		m, err := c.RunWorkloadObserved(factory, payments, threshold, 1, tel)
		if err != nil {
			c.Close()
			return err
		}
		if err := c.CheckConsistency(); err != nil {
			c.Close()
			return fmt.Errorf("%s: %w", scheme, err)
		}
		if nodeMsgs != nil {
			nodeMsgs.Add(float64(c.MessagesSent()))
		}
		c.Close()
		r := byScheme[scheme]
		r.volume.Add(m.SuccessVolume)
		r.ratio.Add(m.SuccessRatio())
		r.delay.Add(float64(m.MeanDelay()))
		r.miceDelay.Add(float64(m.MeanMiceDelay()))
	}
	return nil
}
