// Command flashsim replays a synthetic payment workload over a
// generated offchain network topology and compares routing schemes,
// reporting the paper's metrics (success ratio, success volume, probing
// messages, fee ratio).
//
// Examples:
//
//	flashsim -kind ripple -nodes 1870 -txns 2000 -scale 10
//	flashsim -kind lightning -nodes 2511 -txns 2000 -scale 20 -schemes Flash,Spider
//	flashsim -kind testbed -nodes 50 -txns 1000 -caplo 1000 -caphi 1500
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"text/tabwriter"

	"repro/internal/sim"
)

func main() {
	var (
		kind     = flag.String("kind", sim.KindRipple, "topology kind: ripple, lightning or testbed")
		nodes    = flag.Int("nodes", 1870, "number of nodes")
		txns     = flag.Int("txns", 2000, "number of transactions")
		scale    = flag.Float64("scale", 10, "capacity scale factor")
		mice     = flag.Float64("mice", 0.9, "fraction of payments classified as mice")
		schemes  = flag.String("schemes", strings.Join(sim.PaperSchemes, ","), "comma-separated scheme list")
		runs     = flag.Int("runs", 5, "independent runs to average")
		seed     = flag.Int64("seed", 1, "base random seed")
		flashK   = flag.Int("k", 0, "Flash elephant path budget (0 = paper default 20)")
		flashM   = flag.Int("m", -1, "Flash mice paths per receiver (-1 = paper default 4; 0 routes mice as elephants)")
		capLo    = flag.Float64("caplo", 1000, "testbed capacity range low")
		capHi    = flag.Float64("caphi", 1500, "testbed capacity range high")
		workers  = flag.Int("workers", 1, "concurrent payment workers per scheme replay (1 = sequential, 0 = GOMAXPROCS)")
		parallel = flag.Bool("parallelschemes", false, "run the schemes of each repetition concurrently on identically-seeded networks")
	)
	flag.Parse()

	conc := *workers
	if conc == 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	sc := sim.Scenario{
		Kind:            *kind,
		Nodes:           *nodes,
		Txns:            *txns,
		ScaleFactor:     *scale,
		MiceFraction:    *mice,
		Schemes:         splitList(*schemes),
		Runs:            *runs,
		Seed:            *seed,
		FlashK:          *flashK,
		TestbedCapLo:    *capLo,
		TestbedCapHi:    *capHi,
		Concurrency:     conc,
		ParallelSchemes: *parallel,
	}
	if *flashM >= 0 {
		sc.FlashM = *flashM
		sc.FlashMSet = true
	}

	results, err := sim.RunScenario(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flashsim:", err)
		os.Exit(1)
	}

	fmt.Printf("# kind=%s nodes=%d txns=%d scale=%g mice=%.0f%% runs=%d seed=%d workers=%d\n",
		sc.Kind, sc.Nodes, sc.Txns, sc.ScaleFactor, 100*sc.MiceFraction, sc.Runs, sc.Seed, sc.Concurrency)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tsucc.ratio\tsucc.volume\tprobe msgs\tfee ratio\tmean delay")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%.1f%%\t%.4g\t%.0f\t%.3f%%\t%v\n",
			r.Scheme,
			100*r.Mean(sim.Metrics.SuccessRatio),
			r.Mean(func(m sim.Metrics) float64 { return m.SuccessVolume }),
			r.Mean(func(m sim.Metrics) float64 { return float64(m.ProbeMessages) }),
			100*r.Mean(sim.Metrics.FeeRatio),
			r.Runs[0].MeanDelay().Round(1000))
	}
	w.Flush()
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
