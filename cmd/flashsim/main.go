// Command flashsim replays a synthetic payment workload over a
// generated offchain network topology and compares routing schemes,
// reporting the paper's metrics (success ratio, success volume, probing
// messages, fee ratio).
//
// Static mode (the default) replays a fixed payment list, reproducing
// the paper's simulation setup. Dynamic mode (-dynamic, or -scenario
// with a catalogue name) runs the discrete-event engine instead:
// payments arrive through a seeded arrival process over a virtual
// clock, churn events open/close/rebalance channels mid-run, and the
// output includes a per-window time series. Dynamic runs with
// -workers 1 (the default) are fully deterministic: the same seed
// prints the same bytes, fingerprint included — with or without hold
// spans.
//
// -service enables hold spans: each payment locks its funds for an
// exponential virtual service time between the routing decision and
// the commit, so concurrent arrivals contend for channel balance
// deterministically (see ARCHITECTURE.md). -service 0 (the default)
// keeps the historical atomic-at-dispatch behaviour.
//
// Examples:
//
//	flashsim -kind ripple -nodes 1870 -txns 2000 -scale 10
//	flashsim -kind lightning -nodes 2511 -txns 2000 -scale 20 -schemes Flash,Spider
//	flashsim -kind testbed -nodes 50 -txns 1000 -caplo 1000 -caphi 1500
//	flashsim -workers 8 -retries 3                    # concurrent replay with retry recovery
//	flashsim -dynamic -arrival poisson -rate 20 -duration 60
//	flashsim -scenario churn -nodes 200 -seed 42      # catalogue churn scenario
//	flashsim -scenario flash-crowd -duration 120 -window 10
//	flashsim -scenario contention -retries 2          # hold-span contention on the barbell
//	flashsim -scenario hub-failure -seed 7            # top-degree node fails mid-run
//	flashsim -scenario latency-slo -probeworkers 4    # virtual RTTs + HTLC deadlines, piped probes
//	flashsim -scenario griefing -deadline 0           # deadline-exhaustion attack, expiry disabled
//	flashsim -dynamic -latency 0.05 -service 1 -deadline 5   # custom latency model
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"text/tabwriter"

	"repro/internal/control"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func main() {
	var (
		kind     = flag.String("kind", sim.KindRipple, "topology kind: ripple, lightning or testbed")
		topology = flag.String("topology", "", "snapshot file (LN graph JSON or capacity edge list) replacing the generated -kind topology")
		nodes    = flag.Int("nodes", 1870, "number of nodes")
		txns     = flag.Int("txns", 2000, "number of transactions (static mode)")
		scale    = flag.Float64("scale", 10, "capacity scale factor")
		mice     = flag.Float64("mice", 0.9, "fraction of payments classified as mice")
		schemes  = flag.String("schemes", strings.Join(sim.PaperSchemes, ","), "comma-separated scheme list")
		runs     = flag.Int("runs", 5, "independent runs to average (static mode)")
		seed     = flag.Int64("seed", 1, "base random seed")
		flashK   = flag.Int("k", 0, "Flash elephant path budget (0 = paper default 20)")
		flashM   = flag.Int("m", -1, "Flash mice paths per receiver (-1 = paper default 4; 0 routes mice as elephants)")
		capLo    = flag.Float64("caplo", 1000, "testbed capacity range low")
		capHi    = flag.Float64("caphi", 1500, "testbed capacity range high")
		workers  = flag.Int("workers", 1, "concurrent payment workers per scheme replay (1 = sequential/deterministic, 0 = GOMAXPROCS)")
		parallel = flag.Bool("parallelschemes", false, "run the schemes of each repetition concurrently on identically-seeded networks")
		retries  = flag.Int("retries", 0, "re-route failed payments up to N extra times with jittered backoff")
		probeW   = flag.Int("probeworkers", 1, "Flash per-session probe pool: probe N speculative elephant candidate paths concurrently (1 = sequential Algorithm 1)")
		tableCap = flag.Int("tablecap", 0, "bound each sender's mice routing table to N receiver entries, LRU-evicted (0 = unbounded)")

		dynamic   = flag.Bool("dynamic", false, "discrete-event dynamic mode: virtual time, arrival process, churn")
		scenario  = flag.String("scenario", "", "dynamic scenario preset: "+strings.Join(sim.DynamicScenarioNames, ", "))
		arrival   = flag.String("arrival", sim.ArrivalPoisson, "arrival process: poisson, flash-crowd or diurnal")
		rate      = flag.Float64("rate", 20, "mean payment arrivals per virtual second")
		duration  = flag.Float64("duration", 60, "virtual seconds to simulate")
		window    = flag.Float64("window", 0, "time-series window in virtual seconds (0 = duration/10)")
		churn     = flag.Float64("churn", 0, "channel open/close events per virtual second")
		rebalance = flag.Float64("rebalance", 0, "channel rebalance events per virtual second")
		latent    = flag.Int("latent", 0, "latent channels that may open mid-run")
		peak      = flag.Float64("peak", 0, "flash-crowd rate multiplier / diurnal swing (0 = per-process default)")
		service   = flag.Float64("service", 0, "mean virtual service time per payment in seconds; > 0 enables hold spans (funds stay locked until the commit event)")
		adaptive  = flag.Bool("adaptivethreshold", false, "re-calibrate Flash's elephant threshold on a rolling quantile of arrival amounts (dynamic mode)")
		thrWindow = flag.Float64("thresholdwindow", 0, "adaptive-threshold re-calibration cadence in virtual seconds (0 = time-series window)")
		ctrl      = flag.String("control", "", "adaptive control plane policies, comma-separated: raw|ewma (global threshold), sender (per-sender thresholds), width (probe width); off/empty = none (dynamic mode)")
		latency   = flag.Float64("latency", 0, "median per-channel virtual RTT in seconds, log-normally distributed (0 = latency-free, byte-identical to the pre-latency engine)")
		latSigma  = flag.Float64("latencysigma", 0, "log-normal shape of the per-channel RTT distribution (0 = default 0.6)")
		deadline  = flag.Float64("deadline", 0, "HTLC-style hold-span expiry in virtual seconds: suspended payments whose commit cannot settle in time abort at the deadline (0 = no expiry)")
		griefFrac = flag.Float64("grieffrac", 0, "fraction of payments marked as griefers that pin their routes (dynamic mode, requires -service)")
		griefHold = flag.Float64("griefhold", 0, "virtual seconds a griefer holds its route instead of the drawn service time")

		flows    = flag.String("flows", "", "write one JSON flow record per completed payment to this file (observer-only; '-' = stdout)")
		jsonMode = flag.Bool("json", false, "print dynamic results as machine-readable JSON instead of the table (dynamic mode only)")
	)
	flag.Parse()

	if *topology != "" {
		*kind = sim.KindSnapshotPrefix + *topology
	}

	conc := *workers
	if conc == 0 {
		conc = runtime.GOMAXPROCS(0)
	}

	sink, closeSink := openFlowSink(*flows)
	defer closeSink()

	if *dynamic || *scenario != "" {
		runDynamic(*scenario, *kind, *nodes, *scale, *mice, splitList(*schemes), *seed, conc, *retries,
			*arrival, *rate, *duration, *window, *churn, *rebalance, *latent, *peak, *service,
			*flashK, *flashM, *probeW, *tableCap, *adaptive, *thrWindow, *ctrl,
			*latency, *latSigma, *deadline, *griefFrac, *griefHold, sink, *jsonMode)
		return
	}
	if *jsonMode {
		fmt.Fprintln(os.Stderr, "flashsim: -json requires dynamic mode (-dynamic or -scenario)")
		os.Exit(2)
	}

	sc := sim.Scenario{
		Kind:            *kind,
		Nodes:           *nodes,
		Txns:            *txns,
		ScaleFactor:     *scale,
		MiceFraction:    *mice,
		Schemes:         splitList(*schemes),
		Runs:            *runs,
		Seed:            *seed,
		FlashK:          *flashK,
		TestbedCapLo:    *capLo,
		TestbedCapHi:    *capHi,
		Concurrency:     conc,
		ParallelSchemes: *parallel,
		Retries:         *retries,
		ProbeWorkers:    *probeW,
		TableCap:        *tableCap,
		FlowSink:        sink,
	}
	if *flashM >= 0 {
		sc.FlashM = *flashM
		sc.FlashMSet = true
	}

	results, err := sim.RunScenario(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flashsim:", err)
		os.Exit(1)
	}

	fmt.Printf("# kind=%s nodes=%d txns=%d scale=%g mice=%.0f%% runs=%d seed=%d workers=%d retries=%d probeworkers=%d\n",
		sc.Kind, sc.Nodes, sc.Txns, sc.ScaleFactor, 100*sc.MiceFraction, sc.Runs, sc.Seed, sc.Concurrency, sc.Retries, sc.ProbeWorkers)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tsucc.ratio\tsucc.volume\tprobe msgs\tfee ratio\tmean delay")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%.1f%%\t%.4g\t%.0f\t%.3f%%\t%v\n",
			r.Scheme,
			100*r.Mean(sim.Metrics.SuccessRatio),
			r.Mean(func(m sim.Metrics) float64 { return m.SuccessVolume }),
			r.Mean(func(m sim.Metrics) float64 { return float64(m.ProbeMessages) }),
			100*r.Mean(sim.Metrics.FeeRatio),
			r.Runs[0].MeanDelay().Round(1000))
	}
	w.Flush()
}

// openFlowSink opens the -flows destination: a buffered JSONL sink on
// the given path ('-' = stdout), or a nil sink (one branch on the hot
// path) when the flag is unset. The returned close function flushes
// and reports sink errors.
func openFlowSink(path string) (telemetry.Sink, func()) {
	if path == "" {
		return nil, func() {}
	}
	var (
		f   *os.File
		err error
	)
	if path == "-" {
		f = os.Stdout
	} else if f, err = os.Create(path); err != nil {
		fmt.Fprintln(os.Stderr, "flashsim:", err)
		os.Exit(1)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	sink := telemetry.NewJSONLSink(bw)
	return sink, func() {
		ferr := sink.Close() // drain the async writer before flushing
		if berr := bw.Flush(); ferr == nil {
			ferr = berr
		}
		if f != os.Stdout {
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
		}
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "flashsim: writing flows:", ferr)
			os.Exit(1)
		}
	}
}

// runDynamic executes the discrete-event mode and prints the
// per-window time series plus aggregates. All output is derived from
// virtual time and seeded randomness, so identical invocations print
// identical bytes (workers ≤ 1) — telemetry sinks included, which only
// observe. jsonMode switches the report from the table renderer to one
// indented JSON document per scheme.
func runDynamic(scenario, kind string, nodes int, scale, mice float64, schemes []string,
	seed int64, workers, retries int, arrival string, rate, duration, window,
	churn, rebalance float64, latent int, peak, service float64, flashK, flashM, probeWorkers, tableCap int,
	adaptive bool, thrWindow float64, controlSpec string, latency, latSigma, deadline, griefFrac, griefHold float64,
	sink telemetry.Sink, jsonMode bool) {

	var (
		sc  sim.DynamicScenario
		err error
	)
	if scenario != "" {
		sc, err = sim.NamedDynamicScenario(scenario, kind, nodes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flashsim:", err)
			os.Exit(2)
		}
	} else {
		sc = sim.DynamicScenario{
			Name:        "custom",
			Kind:        kind,
			Nodes:       nodes,
			ScaleFactor: scale,
			Duration:    duration,
			Arrival:     arrival,
			Rate:        rate,
			ChurnRate:   churn,
			Peak:        peak,
		}
	}
	// Flags the user set explicitly override a preset's defaults.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["arrival"] {
		sc.Arrival = arrival
	}
	if set["rate"] {
		sc.Rate = rate
	}
	if set["duration"] {
		sc.Duration = duration
	}
	if set["churn"] {
		sc.ChurnRate = churn
	}
	if set["rebalance"] {
		sc.RebalanceRate = rebalance
	}
	if set["latent"] {
		sc.LatentChannels = latent
	}
	if set["peak"] {
		sc.Peak = peak
	}
	if set["scale"] {
		sc.ScaleFactor = scale
	}
	if set["service"] || sc.Service == 0 {
		sc.Service = service // a preset's hold-span default survives unless overridden
	}
	if set["adaptivethreshold"] {
		sc.AdaptiveThreshold = adaptive // a preset's adaptive default survives unless overridden
	}
	if set["control"] {
		policy, perr := control.ParsePolicy(controlSpec)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "flashsim:", perr)
			os.Exit(2)
		}
		if policy.Enabled() {
			sc.Control = &policy
		} else {
			sc.Control = nil // -control off silences a preset's plane too
		}
	}
	if set["thresholdwindow"] || sc.ThresholdWindow == 0 {
		sc.ThresholdWindow = thrWindow // likewise for a preset's cadence
	}
	// The latency/deadline/grief knobs default to 0 (off), so a preset's
	// model survives unless the flag is given explicitly — which allows
	// paired controls like `-scenario griefing -deadline 0`.
	if set["latency"] {
		sc.LatencyMedian = latency
	}
	if set["latencysigma"] {
		sc.LatencySigma = latSigma
	}
	if set["deadline"] {
		sc.Deadline = deadline
	}
	if set["grieffrac"] {
		sc.GriefFrac = griefFrac
	}
	if set["griefhold"] {
		sc.GriefHold = griefHold
	}
	sc.MiceFraction = mice
	sc.Window = window
	sc.Schemes = schemes
	sc.Workers = workers
	sc.Retries = retries
	sc.ProbeWorkers = probeWorkers
	sc.TableCap = tableCap
	sc.Seed = seed
	sc.FlashK = flashK
	if flashM >= 0 {
		sc.FlashM = flashM
		sc.FlashMSet = true
	}
	sc.FlowSink = sink

	results, err := sim.RunDynamicScenario(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flashsim:", err)
		os.Exit(1)
	}

	if jsonMode {
		for _, r := range results {
			if err := sim.WriteDynamicJSON(os.Stdout, r.Scheme, r.Result); err != nil {
				fmt.Fprintln(os.Stderr, "flashsim:", err)
				os.Exit(1)
			}
		}
		return
	}
	fmt.Printf("# dynamic scenario=%s kind=%s nodes=%d scale=%g arrival=%s rate=%g/s duration=%gs service=%gs churn=%g/s rebalance=%g/s latent=%d seed=%d workers=%d retries=%d probeworkers=%d adaptivethr=%v",
		sc.Name, sc.Kind, sc.Nodes, sc.ScaleFactor, sc.Arrival, sc.Rate, sc.Duration, sc.Service,
		sc.ChurnRate, sc.RebalanceRate, sc.LatentChannels, sc.Seed, sc.Workers, sc.Retries, sc.ProbeWorkers,
		sc.AdaptiveThreshold)
	// The control-plane header segment appears only when a policy is
	// live, so control-free invocations print the historical bytes.
	if sc.Control != nil && sc.Control.Enabled() {
		fmt.Printf(" control=%s", sc.Control.Spec())
	}
	// The latency-model header segment appears only when the model is
	// live, so latency-free invocations print the historical bytes.
	if sc.LatencyMedian > 0 || sc.Deadline > 0 || sc.GriefFrac > 0 {
		fmt.Printf(" latency=%gs sigma=%g deadline=%gs grief=%g/%gs",
			sc.LatencyMedian, sc.LatencySigma, sc.Deadline, sc.GriefFrac, sc.GriefHold)
	}
	fmt.Println()
	showThr := sc.AdaptiveThreshold || (sc.Control != nil && sc.Control.Enabled())
	for _, r := range results {
		sim.WriteDynamicResult(os.Stdout, r.Scheme, r.Result, showThr)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
