package flash

import (
	"io"
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gossip"
	"repro/internal/graph"
	"repro/internal/htlc"
	"repro/internal/node"
	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/testbed"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Topology and network state.
type (
	// NodeID identifies a node in a topology.
	NodeID = topo.NodeID
	// Graph is the channel connectivity topology.
	Graph = topo.Graph
	// Edge is one undirected payment channel.
	Edge = topo.Edge
	// Network is a funded payment channel network.
	Network = pcn.Network
	// Tx is an in-memory payment session (implements Session).
	Tx = pcn.Tx
	// FeeSchedule is a channel direction's forwarding fee.
	FeeSchedule = pcn.FeeSchedule
	// HopInfo is the result of probing one hop.
	HopInfo = pcn.HopInfo
)

// Routing.
type (
	// Session is a payment in flight: probe, hold, commit/abort.
	Session = route.Session
	// Yielder is the hold-span seam: sessions whose commit can be
	// suspended across virtual time and resumed later (pcn.Tx
	// implements it; the dynamic engine drives it).
	Yielder = route.Yielder
	// ParallelProber marks sessions whose Probe is safe for concurrent
	// calls within one session (pcn.Tx implements it; Flash's
	// speculative probe pipeline — Config.ProbeWorkers — requires it).
	ParallelProber = route.ParallelProber
	// Router is any routing algorithm driving Sessions.
	Router = route.Router
	// Flash is the paper's router (elephant/mice differentiation).
	Flash = core.Flash
	// Config parameterises the Flash router.
	Config = core.Config
	// RouterStats are Flash's internal counters.
	RouterStats = core.Stats
)

// Workloads and evaluation.
type (
	// Payment is one transaction of a workload.
	Payment = trace.Payment
	// SizeModel is a heavy-tailed payment-size mixture.
	SizeModel = trace.SizeModel
	// TraceConfig parameterises workload generation.
	TraceConfig = trace.Config
	// TraceGenerator produces reproducible payment streams.
	TraceGenerator = trace.Generator
	// Metrics aggregates a simulation or testbed run.
	Metrics = sim.Metrics
	// SimOptions tunes a replay: Workers > 1 dispatches payments to a
	// concurrent worker pool over the shared network.
	SimOptions = sim.Options
	// Scenario describes one experiment cell.
	Scenario = sim.Scenario
	// SchemeResult is per-scheme metrics across runs.
	SchemeResult = sim.SchemeResult
	// Summary is a min/mean/max aggregate.
	Summary = stats.Summary
	// Pair identifies a sender→receiver routing-table slot for
	// Flash.Prewarm, the parallel mice-table build.
	Pair = core.Pair
)

// Dynamic-network simulation: the discrete-event engine (virtual
// clock, seeded event heap), time-varying arrival processes, and the
// churn-capable scenario harness.
type (
	// Event is one scheduled occurrence in a dynamic run (payment
	// arrival/completion, channel open/close, rebalance, demand shift).
	Event = event.Event
	// EventKind enumerates the dynamic event kinds.
	EventKind = event.Kind
	// EventQueue is the seeded (Time, Seq)-ordered event heap.
	EventQueue = event.Queue
	// ArrivalProcess generates virtual payment arrival times.
	ArrivalProcess = trace.ArrivalProcess
	// PoissonArrivals is the constant-rate arrival process.
	PoissonArrivals = trace.Poisson
	// FlashCrowdArrivals is the surge (flash-crowd) arrival process.
	FlashCrowdArrivals = trace.FlashCrowd
	// DiurnalArrivals is the sinusoidal demand-drift arrival process.
	DiurnalArrivals = trace.Diurnal
	// PaymentSource lazily yields timestamped payments.
	PaymentSource = trace.PaymentSource
	// PaymentStream pairs a generator with an arrival process, lazily.
	PaymentStream = trace.Stream
	// DynamicOptions tunes RunDynamicSimulation.
	DynamicOptions = sim.DynamicOptions
	// DynamicResult is a dynamic run's aggregate + time-series outcome.
	DynamicResult = sim.DynamicResult
	// MetricsWindow is one time-series bucket of a dynamic run.
	MetricsWindow = sim.Window
	// DynamicScenario describes one dynamic experiment cell.
	DynamicScenario = sim.DynamicScenario
	// DynamicSchemeResult pairs a scheme with its dynamic result.
	DynamicSchemeResult = sim.DynamicSchemeResult
)

// Adaptive control plane: the deterministic feedback layer that owns
// every runtime-tuned knob (global/per-sender elephant thresholds,
// probe width). Controllers observe per-window metrics and emit
// decisions; every applied decision is a fingerprinted ControlUpdate
// event, so controlled runs replay bit-identically.
type (
	// ControlPolicy selects and parameterises the built-in controllers
	// (DynamicScenario.Control / DynamicOptions.Control).
	ControlPolicy = control.Policy
	// Controller is the control-plane contract: observe one window,
	// emit knob decisions.
	Controller = control.Controller
	// ControlMetrics is the per-window observation a Controller sees.
	ControlMetrics = control.Metrics
	// ControlDecision is one knob update emitted by a Controller.
	ControlDecision = control.Decision
	// ControlKnob enumerates the runtime-tuned knobs.
	ControlKnob = control.Knob
	// ControlKnobStatus is the per-knob decision rollup of a run.
	ControlKnobStatus = sim.ControlKnobStatus
)

// Control-plane knob codes.
const (
	KnobThreshold       = control.KnobThreshold
	KnobSenderThreshold = control.KnobSenderThreshold
	KnobProbeWidth      = control.KnobProbeWidth
	KnobRetryBackoff    = control.KnobRetryBackoff
)

// ParseControlPolicy parses a comma-separated policy spec — raw|ewma
// (global threshold), sender (per-sender thresholds), width (probe
// width); "off" or "" is the inert policy — the flashsim/experiments
// -control syntax.
func ParseControlPolicy(spec string) (ControlPolicy, error) { return control.ParsePolicy(spec) }

// Dynamic event kinds.
const (
	EventPaymentArrival  = event.PaymentArrival
	EventPaymentComplete = event.PaymentComplete
	EventChannelOpen     = event.ChannelOpen
	EventChannelClose    = event.ChannelClose
	EventRebalance       = event.Rebalance
	EventDemandShift     = event.DemandShift
	EventFeeShift        = event.FeeShift
	EventThresholdUpdate = event.ThresholdUpdate
	EventControlUpdate   = event.ControlUpdate
)

// DynamicScenarioNames lists the built-in dynamic scenario catalogue
// (steady, flash-crowd, depletion-rebalance, churn, contention,
// hub-failure, demand-drift, fee-war).
var DynamicScenarioNames = sim.DynamicScenarioNames

// NewPaymentStream lazily pairs a trace generator with an arrival
// process.
func NewPaymentStream(gen *TraceGenerator, arr ArrivalProcess, seed int64) (*PaymentStream, error) {
	return trace.NewStream(gen, arr, seed)
}

// NewReplayStream wraps an existing payment list as a PaymentSource
// with arrivals pinned to the trace order.
func NewReplayStream(payments []Payment) PaymentSource { return trace.NewReplayStream(payments) }

// RunDynamicSimulation replays a payment source through the
// discrete-event engine: virtual time, lazy arrivals, churn events
// mutating the live network, per-window time-series metrics.
func RunDynamicSimulation(net *Network, r Router, src PaymentSource, horizon float64, churn []Event, miceThreshold float64, opts DynamicOptions) (DynamicResult, error) {
	return sim.RunDynamic(net, r, src, horizon, churn, miceThreshold, opts)
}

// NamedDynamicScenario returns a catalogue dynamic scenario.
func NamedDynamicScenario(name, kind string, nodes int) (DynamicScenario, error) {
	return sim.NamedDynamicScenario(name, kind, nodes)
}

// RunDynamicScenario executes a dynamic scenario across its schemes.
func RunDynamicScenario(sc DynamicScenario) ([]DynamicSchemeResult, error) {
	return sim.RunDynamicScenario(sc)
}

// Telemetry: observer-only flow records, a dependency-free metrics
// registry, and the live HTTP endpoint (/metrics, /flows, pprof).
// Attaching any of it never changes results — fingerprints and metrics
// stay byte-identical with sinks on or off.
type (
	// FlowRecord is one payment's flight record (endpoints, class,
	// attempts, probe/commit costs, fees, virtual times, outcome).
	FlowRecord = telemetry.FlowRecord
	// FlowSink receives one FlowRecord per completed payment.
	FlowSink = telemetry.Sink
	// JSONLFlowSink writes flow records as JSON lines.
	JSONLFlowSink = telemetry.JSONLSink
	// FlowLog is a bounded in-memory ring of recent flow records with
	// live subscription (backs the /flows endpoint).
	FlowLog = telemetry.FlowLog
	// MultiFlowSink fans one record out to several sinks.
	MultiFlowSink = telemetry.MultiSink
	// MetricsRegistry holds counters, gauges and histograms with
	// Prometheus-text and JSON-lines exporters.
	MetricsRegistry = telemetry.Registry
	// TelemetryServer serves /metrics, /flows and /debug/pprof/.
	TelemetryServer = telemetry.Server
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewFlowLog returns a flow-record ring holding the last capacity
// records.
func NewFlowLog(capacity int) *FlowLog { return telemetry.NewFlowLog(capacity) }

// NewJSONLFlowSink streams flow records to w as JSON lines.
func NewJSONLFlowSink(w io.Writer) *JSONLFlowSink { return telemetry.NewJSONLSink(w) }

// NewTelemetryServer binds addr and serves /metrics, /metrics.json,
// /flows and /debug/pprof/ until Close. Either reg or flows may be nil.
func NewTelemetryServer(addr string, reg *MetricsRegistry, flows *FlowLog) (*TelemetryServer, error) {
	return telemetry.NewServer(addr, reg, flows)
}

// WriteDynamicJSON renders one scheme's dynamic result as an indented
// JSON document (the flashsim -json format).
func WriteDynamicJSON(out io.Writer, scheme string, res DynamicResult) error {
	return sim.WriteDynamicJSON(out, scheme, res)
}

// Topology maintenance (gossip) and payment security (HTLC) — the two
// layers the paper assumes (§2.1, §3.1); built here so the repository
// covers the full system.
type (
	// GossipPeer floods channel open/close/fee events and maintains an
	// eventually consistent local View.
	GossipPeer = gossip.Peer
	// GossipView is a node's local belief about the topology.
	GossipView = gossip.View
	// GossipEvent is one channel lifecycle announcement.
	GossipEvent = gossip.Event
	// HTLCLedger manages hash time-locked contracts over a Network.
	HTLCLedger = htlc.Ledger
	// HTLCChain is the logical block-height clock HTLC expiries use.
	HTLCChain = htlc.Chain
	// HTLCPayment is a multi-hop chain of hash-locked contracts.
	HTLCPayment = htlc.Payment
	// Secret is an HTLC preimage; its SHA-256 hash locks contracts.
	Secret = htlc.Secret
)

// NewGossipPeer creates a gossiping participant over an n-node ID
// space; ConnectPeers joins two peers that share a channel.
func NewGossipPeer(id NodeID, n int) *GossipPeer { return gossip.NewPeer(id, n) }

// ConnectPeers makes two gossip peers neighbours.
func ConnectPeers(a, b *GossipPeer) { gossip.Connect(a, b) }

// NewHTLCLedger creates an HTLC ledger over net, timed by chain.
func NewHTLCLedger(net *Network, chain *HTLCChain) *HTLCLedger { return htlc.NewLedger(net, chain) }

// SetupHTLCPayment locks a hash time-locked contract on every hop of
// path (expiries decreasing towards the receiver).
func SetupHTLCPayment(l *HTLCLedger, path []NodeID, amount float64, hash htlc.Hash, delta int64) (*HTLCPayment, error) {
	return htlc.Setup(l, path, amount, hash, delta)
}

// Testbed.
type (
	// Node is a TCP protocol endpoint (paper §5.1 prototype).
	Node = node.Node
	// NodeConfig configures a testbed node.
	NodeConfig = node.Config
	// NodeSession is a payment session over TCP (implements Session).
	NodeSession = node.Session
	// Cluster is a set of running TCP nodes.
	Cluster = testbed.Cluster
	// RouterFactory builds each node's router in a testbed run.
	RouterFactory = testbed.RouterFactory
)

// Scheme names accepted by NewRouterByName.
const (
	SchemeFlash         = sim.SchemeFlash
	SchemeFlashNoOpt    = sim.SchemeFlashNoOpt
	SchemeSpider        = sim.SchemeSpider
	SchemeSpeedyMurmurs = sim.SchemeSpeedyMurmurs
	SchemeShortestPath  = sim.SchemeShortestPath
	SchemeMaxFlow       = sim.SchemeMaxFlow
)

// NewGraph returns an empty topology with n nodes.
func NewGraph(n int) *Graph { return topo.New(n) }

// NewNetwork returns an unfunded network over g.
func NewNetwork(g *Graph) *Network { return pcn.New(g) }

// DefaultConfig returns the paper's Flash parameters (k=20, m=4) with
// the given elephant threshold.
func DefaultConfig(threshold float64) Config { return core.DefaultConfig(threshold) }

// NewFlash builds the Flash router.
func NewFlash(cfg Config) *Flash { return core.New(cfg) }

// ThresholdForMiceFraction computes the elephant threshold that makes
// the given fraction of amounts mice (the paper uses 0.9).
func ThresholdForMiceFraction(amounts []float64, frac float64) float64 {
	return core.ThresholdForMiceFraction(amounts, frac)
}

// Baseline routers (paper §4.1).
func NewShortestPath() Router               { return baseline.NewShortestPath() }
func NewSpider(paths int) Router            { return baseline.NewSpider(paths) }
func NewSpeedyMurmurs(landmarks int) Router { return baseline.NewSpeedyMurmurs(landmarks) }
func NewMaxFlowFullProbe() Router           { return baseline.NewMaxFlowFullProbe() }

// NewRouterByName builds any scheme by its experiment name.
func NewRouterByName(name string, threshold float64, seed int64) (Router, error) {
	return sim.NewRouter(name, threshold, 0, 0, false, seed)
}

// Topology generators.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) (*Graph, error) {
	return topo.WattsStrogatz(n, k, beta, rng)
}
func BarabasiAlbert(n, m int, rng *rand.Rand) (*Graph, error) {
	return topo.BarabasiAlbert(n, m, rng)
}
func RippleLike(n int, rng *rand.Rand) (*Graph, error)    { return topo.RippleLike(n, rng) }
func LightningLike(n int, rng *rand.Rand) (*Graph, error) { return topo.LightningLike(n, rng) }

// Size models calibrated to the paper's trace statistics.
var (
	RippleSizes  = trace.RippleSizes
	BitcoinSizes = trace.BitcoinSizes
)

// NewTraceGenerator builds a workload generator.
func NewTraceGenerator(cfg TraceConfig) (*TraceGenerator, error) { return trace.NewGenerator(cfg) }

// DefaultTraceConfig is a Ripple-like workload over n nodes.
func DefaultTraceConfig(n int) TraceConfig { return trace.DefaultConfig(n) }

// RunSimulation replays payments sequentially over net with router r.
func RunSimulation(net *Network, r Router, payments []Payment, miceThreshold float64) (Metrics, error) {
	return sim.Run(net, r, payments, miceThreshold)
}

// RunSimulationOpts is RunSimulation with replay options: Workers > 1
// replays payments concurrently (deterministic per-payment RNG
// seeding), Prewarm parallel-builds Flash's routing tables first.
func RunSimulationOpts(net *Network, r Router, payments []Payment, miceThreshold float64, opts SimOptions) (Metrics, error) {
	return sim.RunOpts(net, r, payments, miceThreshold, opts)
}

// BuildContentionFixture constructs the barbell contention fixture:
// every returned payment crosses one shared bridge channel, the worst
// case for concurrent holds (see sim.BuildContention).
func BuildContentionFixture(spokes int, spokeBal, bridgeBal, amount float64) (*Network, []Payment, error) {
	return sim.BuildContention(spokes, spokeBal, bridgeBal, amount)
}

// DefaultScenario is the paper's base experiment cell for a topology
// kind ("ripple", "lightning" or "testbed").
func DefaultScenario(kind string, nodes int) Scenario { return sim.DefaultScenario(kind, nodes) }

// RunScenario executes an experiment cell across schemes and runs.
func RunScenario(sc Scenario) ([]SchemeResult, error) { return sim.RunScenario(sc) }

// BuildNetwork constructs a funded network for an experiment kind.
func BuildNetwork(kind string, nodes int, scale float64, seed int64) (*Network, error) {
	return sim.BuildNetwork(kind, nodes, scale, 0, 0, seed)
}

// NewNode boots a TCP protocol node.
func NewNode(cfg NodeConfig) (*Node, error) { return node.New(cfg) }

// NewCluster boots one TCP node per topology vertex on loopback.
func NewCluster(g *Graph, timeout time.Duration) (*Cluster, error) {
	return testbed.NewCluster(g, timeout)
}

// Graph algorithms, exposed for building custom routing schemes on the
// same substrate.

// ShortestPath returns a minimum-hop path whose hops satisfy usable.
func ShortestPath(g *Graph, s, t NodeID, usable func(u, v NodeID) bool) []NodeID {
	return graph.ShortestPath(g, s, t, usable)
}

// KShortestPaths returns up to k loopless shortest paths (Yen).
func KShortestPaths(g *Graph, s, t NodeID, k int) [][]NodeID {
	return graph.YenKSP(g, s, t, k)
}

// EdgeDisjointPaths returns up to k channel-disjoint shortest paths.
func EdgeDisjointPaths(g *Graph, s, t NodeID, k int) [][]NodeID {
	return graph.EdgeDisjointPaths(g, s, t, k)
}
