// Package doclint enforces the repository's documentation contract:
// every exported identifier in the audited packages must carry a doc
// comment. It runs as an ordinary test, so `go test ./...` — and
// therefore CI — fails the build when an exported type, function,
// method, variable or constant lands without documentation, catching
// doc rot the way the godoc examples catch stale examples.
package doclint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// auditedPackages lists the package directories (relative to this one)
// whose exported API must be fully documented. Grow this list as
// packages reach full coverage; never shrink it.
var auditedPackages = []string{
	"../event",
	"../trace",
	"../route",
	"../pcn",
	"../sim",
	"../core",
	"../topo",
	"../graph",
	"../stats",
	"../parallel",
	"../telemetry",
	"../control",
}

// TestExportedAPIDocumented parses every audited package (tests
// excluded) and reports each exported declaration that lacks a doc
// comment.
func TestExportedAPIDocumented(t *testing.T) {
	for _, dir := range auditedPackages {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for _, pkg := range pkgs {
				for _, file := range pkg.Files {
					lintFile(t, fset, file)
				}
			}
		})
	}
}

// lintFile walks one file's top-level declarations.
func lintFile(t *testing.T, fset *token.FileSet, file *ast.File) {
	t.Helper()
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !exportedFunc(d) {
				continue
			}
			if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
				report(t, fset, d.Pos(), "func "+funcName(d))
			}
		case *ast.GenDecl:
			lintGenDecl(t, fset, d)
		}
	}
}

// lintGenDecl checks type/var/const groups: a spec is covered by its
// own doc comment, its line comment, or — for single-purpose groups —
// the group's doc comment.
func lintGenDecl(t *testing.T, fset *token.FileSet, d *ast.GenDecl) {
	t.Helper()
	groupDoc := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !groupDoc && (s.Doc == nil || strings.TrimSpace(s.Doc.Text()) == "") {
				report(t, fset, s.Pos(), "type "+s.Name.Name)
			}
		case *ast.ValueSpec:
			hasDoc := groupDoc ||
				(s.Doc != nil && strings.TrimSpace(s.Doc.Text()) != "") ||
				(s.Comment != nil && strings.TrimSpace(s.Comment.Text()) != "")
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				if !hasDoc {
					report(t, fset, name.Pos(), declKind(d.Tok)+" "+name.Name)
				}
			}
		}
	}
}

// exportedFunc reports whether d is part of the exported API: an
// exported function, or an exported method on an exported receiver.
func exportedFunc(d *ast.FuncDecl) bool {
	if !d.Name.IsExported() {
		return false
	}
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	return receiverExported(d.Recv.List[0].Type)
}

// receiverExported unwraps pointer/generic receivers down to the named
// type and reports whether it is exported.
func receiverExported(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.StarExpr:
		return receiverExported(e.X)
	case *ast.IndexExpr:
		return receiverExported(e.X)
	case *ast.IndexListExpr:
		return receiverExported(e.X)
	case *ast.Ident:
		return e.IsExported()
	default:
		return false
	}
}

// funcName renders Receiver.Method or a plain function name.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return recvTypeName(d.Recv.List[0].Type) + "." + d.Name.Name
}

// recvTypeName extracts the receiver's base type name.
func recvTypeName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	default:
		return "?"
	}
}

// declKind maps the group token to a human label.
func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// report emits one missing-doc finding with its source position.
func report(t *testing.T, fset *token.FileSet, pos token.Pos, what string) {
	t.Helper()
	t.Errorf("%s: exported %s has no doc comment", fset.Position(pos), what)
}
