package htlc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/topo"
)

func TestBlocksForDeadline(t *testing.T) {
	cases := []struct {
		deadline, interval float64
		want               int64
	}{
		{0, 600, 0},                       // no deadline, no expiry
		{-5, 600, 0},                      // negative deadline disables expiry
		{5, 0, 0},                         // degenerate interval
		{1, 600, 1},                       // sub-block deadline still spans a block
		{600, 600, 1},                     // exactly one block
		{601, 600, 2},                     // rounds up, never expires early
		{1800, 600, 3},                    //
		{4, 1, 4},                         // fast chains map 1:1 at integer seconds
		{0.5, 0.25, 2},                    // fractional intervals
		{math.Inf(1), 600, math.MaxInt64}, // documented below
	}
	for _, c := range cases {
		got := BlocksForDeadline(c.deadline, c.interval)
		if c.deadline == math.Inf(1) {
			// Ceil(+Inf) overflows int64; we only require "huge".
			if got < 1 {
				t.Errorf("BlocksForDeadline(+Inf, %v) = %d, want >= 1", c.interval, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("BlocksForDeadline(%v, %v) = %d, want %d", c.deadline, c.interval, got, c.want)
		}
	}
}

// TestDeadlineBlocksRoundTrip pins the safety direction of the
// conversion: the block span always affords at least the requested
// virtual-second deadline (never less — an HTLC refundable before the
// routing layer's deadline would let a counterparty race the refund).
func TestDeadlineBlocksRoundTrip(t *testing.T) {
	f := func(dRaw, iRaw uint16) bool {
		deadline := 0.1 + float64(dRaw)/7.0
		interval := 0.1 + float64(iRaw)/13.0
		blocks := BlocksForDeadline(deadline, interval)
		afford := DeadlineForBlocks(blocks, interval)
		return afford >= deadline && afford < deadline+interval+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpiryForDeadline(t *testing.T) {
	var chain Chain
	chain.Advance(100)
	if got := ExpiryForDeadline(&chain, 1200, 600); got != 102 {
		t.Errorf("ExpiryForDeadline = %d, want 102", got)
	}
	if got := ExpiryForDeadline(&chain, 0, 600); got != 100 {
		t.Errorf("ExpiryForDeadline with no deadline = %d, want current height 100", got)
	}
}

// TestLockHonoursVirtualDeadline drives the conversion through the
// ledger: a contract priced from a virtual deadline is claimable while
// the chain is short of the expiry and refundable once the chain has
// mined past it — the block-height shadow of the simulator's
// DeadlineExpiry event.
func TestLockHonoursVirtualDeadline(t *testing.T) {
	l, net, chain := newLedger(t)
	a, b := topo.NodeID(0), topo.NodeID(1)

	secret, err := NewSecret(nil)
	if err != nil {
		t.Fatal(err)
	}
	const deadline, interval = 1800.0, 600.0 // 3 blocks
	id, err := l.Lock(a, b, 10, secret.Hash(), ExpiryForDeadline(chain, deadline, interval))
	if err != nil {
		t.Fatal(err)
	}

	chain.Advance(2) // 1200 virtual seconds: inside the deadline
	if err := l.Refund(id); err != ErrNotExpired {
		t.Fatalf("refund inside deadline: got %v, want ErrNotExpired", err)
	}
	chain.Advance(1) // 1800s: deadline reached, contract expired
	if err := l.Claim(id, secret); err != ErrExpired {
		t.Fatalf("claim after deadline: got %v, want ErrExpired", err)
	}
	if err := l.Refund(id); err != nil {
		t.Fatalf("refund after deadline: %v", err)
	}
	if got := net.Balance(a, b); got != 100 {
		t.Errorf("refunded balance = %v, want 100", got)
	}
}
