package htlc

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/pcn"
	"repro/internal/topo"
)

// fixedReader yields deterministic "randomness" for secrets.
type fixedReader byte

func (f fixedReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(f)
	}
	return len(p), nil
}

func newLedger(t *testing.T) (*Ledger, *pcn.Network, *Chain) {
	t.Helper()
	g := topo.Line(4)
	net := pcn.New(g)
	for _, e := range g.Channels() {
		if err := net.SetBalance(e.A, e.B, 100, 100); err != nil {
			t.Fatal(err)
		}
	}
	chain := &Chain{}
	return NewLedger(net, chain), net, chain
}

func TestSecretHash(t *testing.T) {
	s, err := NewSecret(fixedReader(7))
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := s.Hash(), s.Hash()
	if h1 != h2 {
		t.Error("hash not deterministic")
	}
	s2, _ := NewSecret(fixedReader(8))
	if s2.Hash() == h1 {
		t.Error("distinct secrets share a hash")
	}
	if h1.String() == "" {
		t.Error("hash String empty")
	}
	if _, err := NewSecret(nil); err != nil {
		t.Errorf("crypto/rand secret failed: %v", err)
	}
	if _, err := NewSecret(bytes.NewReader(nil)); err == nil {
		t.Error("empty reader accepted")
	}
}

func TestLockClaim(t *testing.T) {
	l, net, _ := newLedger(t)
	secret, _ := NewSecret(fixedReader(1))
	id, err := l.Lock(0, 1, 40, secret.Hash(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Balance(0, 1); got != 60 {
		t.Errorf("payer balance after lock = %v, want 60", got)
	}
	if got := net.Balance(1, 0); got != 100 {
		t.Errorf("payee balance must not move before claim: %v", got)
	}
	if l.Escrow() != 40 {
		t.Errorf("escrow = %v, want 40", l.Escrow())
	}
	if err := l.Claim(id, secret); err != nil {
		t.Fatal(err)
	}
	if got := net.Balance(1, 0); got != 140 {
		t.Errorf("payee balance after claim = %v, want 140", got)
	}
	if l.Escrow() != 0 {
		t.Errorf("escrow after claim = %v, want 0", l.Escrow())
	}
	c, _ := l.Contract(id)
	if c.State != StateFulfilled {
		t.Errorf("state = %v, want FULFILLED", c.State)
	}
}

func TestClaimWrongPreimage(t *testing.T) {
	l, _, _ := newLedger(t)
	secret, _ := NewSecret(fixedReader(1))
	wrong, _ := NewSecret(fixedReader(2))
	id, _ := l.Lock(0, 1, 10, secret.Hash(), 100)
	if err := l.Claim(id, wrong); !errors.Is(err, ErrWrongPreimage) {
		t.Errorf("err = %v, want ErrWrongPreimage", err)
	}
	// Funds stay in escrow.
	if l.Escrow() != 10 {
		t.Error("wrong preimage moved escrow")
	}
}

func TestRefundAfterExpiry(t *testing.T) {
	l, net, chain := newLedger(t)
	secret, _ := NewSecret(fixedReader(1))
	id, _ := l.Lock(0, 1, 25, secret.Hash(), 10)
	if err := l.Refund(id); !errors.Is(err, ErrNotExpired) {
		t.Errorf("premature refund: %v", err)
	}
	chain.Advance(10)
	if err := l.Claim(id, secret); !errors.Is(err, ErrExpired) {
		t.Errorf("claim after expiry: %v", err)
	}
	if err := l.Refund(id); err != nil {
		t.Fatal(err)
	}
	if got := net.Balance(0, 1); got != 100 {
		t.Errorf("refund did not restore payer balance: %v", got)
	}
	c, _ := l.Contract(id)
	if c.State != StateRefunded {
		t.Errorf("state = %v, want REFUNDED", c.State)
	}
	// Double refund rejected.
	if err := l.Refund(id); !errors.Is(err, ErrNotPending) {
		t.Errorf("double refund: %v", err)
	}
}

func TestLockValidation(t *testing.T) {
	l, _, chain := newLedger(t)
	secret, _ := NewSecret(fixedReader(1))
	if _, err := l.Lock(0, 1, -5, secret.Hash(), 100); err == nil {
		t.Error("negative amount accepted")
	}
	if _, err := l.Lock(0, 1, 1000, secret.Hash(), 100); !errors.Is(err, ErrInsufficient) {
		t.Errorf("over-balance lock: %v", err)
	}
	chain.Advance(50)
	if _, err := l.Lock(0, 1, 5, secret.Hash(), 40); !errors.Is(err, ErrExpired) {
		t.Errorf("already-expired lock: %v", err)
	}
	if _, err := l.Contract(999); !errors.Is(err, ErrUnknown) {
		t.Error("unknown contract lookup should fail")
	}
	if err := l.Claim(999, secret); !errors.Is(err, ErrUnknown) {
		t.Error("unknown claim should fail")
	}
}

func TestMultiHopClaimPropagation(t *testing.T) {
	l, net, _ := newLedger(t)
	total := net.TotalFunds()
	secret, _ := NewSecret(fixedReader(3))
	path := []topo.NodeID{0, 1, 2, 3}
	p, err := Setup(l, path, 30, secret.Hash(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Contracts()) != 3 {
		t.Fatalf("contracts = %d, want 3", len(p.Contracts()))
	}
	// Expiries decrease towards the receiver.
	var prev int64 = math.MaxInt64
	for i, id := range p.Contracts() {
		c, _ := l.Contract(id)
		if c.Expiry >= prev {
			t.Errorf("hop %d expiry %d not below upstream %d", i, c.Expiry, prev)
		}
		prev = c.Expiry
	}
	if err := p.ClaimAll(secret); err != nil {
		t.Fatal(err)
	}
	// Net effect: 30 moved from node 0's side to node 3's side.
	if got := net.Balance(0, 1); got != 70 {
		t.Errorf("sender balance = %v, want 70", got)
	}
	if got := net.Balance(3, 2); got != 130 {
		t.Errorf("receiver balance = %v, want 130", got)
	}
	if math.Abs(net.TotalFunds()-total) > 1e-9 {
		t.Error("funds not conserved through claim propagation")
	}
	if l.Escrow() != 0 {
		t.Error("escrow left behind")
	}
}

func TestMultiHopExpiryRefundsEverything(t *testing.T) {
	l, net, _ := newLedger(t)
	secret, _ := NewSecret(fixedReader(4))
	p, err := Setup(l, []topo.NodeID{0, 1, 2, 3}, 20, secret.Hash(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if n := p.ExpireAll(); n != 3 {
		t.Errorf("refunded %d contracts, want 3", n)
	}
	for _, e := range net.Graph().Channels() {
		if net.Balance(e.A, e.B) != 100 || net.Balance(e.B, e.A) != 100 {
			t.Errorf("channel %v not restored", e)
		}
	}
	if l.Escrow() != 0 {
		t.Error("escrow left after full refund")
	}
}

func TestSetupUnwindOnFailure(t *testing.T) {
	l, net, _ := newLedger(t)
	// Drain the last hop so setup fails mid-path.
	net.SetBalance(2, 3, 5, 195)
	secret, _ := NewSecret(fixedReader(5))
	if _, err := Setup(l, []topo.NodeID{0, 1, 2, 3}, 30, secret.Hash(), 10); err == nil {
		t.Fatal("setup should fail on drained hop")
	}
	// The locked prefix must be unwound.
	if net.Balance(0, 1) != 100 || net.Balance(1, 2) != 100 {
		t.Errorf("prefix not unwound: %v, %v", net.Balance(0, 1), net.Balance(1, 2))
	}
	if l.Escrow() != 0 {
		t.Errorf("escrow leaked: %v", l.Escrow())
	}
}

func TestSetupValidation(t *testing.T) {
	l, _, _ := newLedger(t)
	secret, _ := NewSecret(fixedReader(6))
	if _, err := Setup(l, []topo.NodeID{0}, 10, secret.Hash(), 10); err == nil {
		t.Error("degenerate path accepted")
	}
	// Default delta applies when zero is passed.
	p, err := Setup(l, []topo.NodeID{0, 1}, 10, secret.Hash(), 0)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := l.Contract(p.Contracts()[0])
	if c.Expiry != DefaultDelta {
		t.Errorf("default delta expiry = %d, want %d", c.Expiry, DefaultDelta)
	}
}

func TestStateString(t *testing.T) {
	if StatePending.String() != "PENDING" || StateFulfilled.String() != "FULFILLED" ||
		StateRefunded.String() != "REFUNDED" || State(9).String() == "" {
		t.Error("state names wrong")
	}
}

// TestConservationProperty: random lock/claim/refund interleavings
// conserve spendable + escrow funds and never double-settle.
func TestConservationProperty(t *testing.T) {
	g := topo.Ring(6)
	net := pcn.New(g)
	for _, e := range g.Channels() {
		net.SetBalance(e.A, e.B, 100, 100)
	}
	chain := &Chain{}
	l := NewLedger(net, chain)
	total := net.TotalFunds()
	rng := rand.New(rand.NewSource(9))

	type live struct {
		id     uint64
		secret Secret
	}
	var pending []live
	for step := 0; step < 500; step++ {
		switch rng.Intn(3) {
		case 0: // lock
			a := topo.NodeID(rng.Intn(6))
			b := topo.NodeID((int(a) + 1) % 6)
			secret, _ := NewSecret(fixedReader(byte(step)))
			id, err := l.Lock(a, b, 1+rng.Float64()*20, secret.Hash(), chain.Height()+5+int64(rng.Intn(20)))
			if err == nil {
				pending = append(pending, live{id, secret})
			}
		case 1: // claim one
			if len(pending) > 0 {
				i := rng.Intn(len(pending))
				l.Claim(pending[i].id, pending[i].secret) //nolint:errcheck
				pending = append(pending[:i], pending[i+1:]...)
			}
		case 2: // time passes, sweep refunds
			chain.Advance(int64(rng.Intn(4)))
			l.RefundExpired()
		}
		if got := net.TotalFunds() + l.Escrow(); math.Abs(got-total) > 1e-6 {
			t.Fatalf("step %d: spendable+escrow = %v, want %v", step, got, total)
		}
	}
}
