package htlc

import (
	"fmt"

	"repro/internal/topo"
)

// DefaultDelta is the per-hop expiry margin in blocks: each hop's
// contract expires this much later than its downstream neighbour's, so
// an intermediate always has time to claim upstream after learning the
// preimage downstream (Lightning's CLTV delta).
const DefaultDelta = 40

// Payment is one multi-hop HTLC payment in flight: a chain of per-hop
// contracts sharing a hash lock, with expiries decreasing towards the
// receiver.
type Payment struct {
	ledger    *Ledger
	path      []topo.NodeID
	amount    float64
	hash      Hash
	contracts []uint64 // hop i locks path[i]→path[i+1]
}

// Setup locks an HTLC on every hop of path for amount, committed to
// hash, with per-hop expiries of now + delta·(hops−i) — largest at the
// sender, smallest at the receiver-facing hop. If any hop cannot be
// locked, the already locked prefix is rolled back via early refunds
// (permitted here because nothing downstream exists yet — the
// on-protocol equivalent of a failed setup unwinding).
func Setup(l *Ledger, path []topo.NodeID, amount float64, hash Hash, delta int64) (*Payment, error) {
	if len(path) < 2 {
		return nil, fmt.Errorf("htlc: path too short")
	}
	if delta <= 0 {
		delta = DefaultDelta
	}
	hops := len(path) - 1
	now := l.chain.Height()
	p := &Payment{ledger: l, path: path, amount: amount, hash: hash}
	for i := 0; i < hops; i++ {
		expiry := now + delta*int64(hops-i)
		id, err := l.Lock(path[i], path[i+1], amount, hash, expiry)
		if err != nil {
			p.unwind()
			return nil, fmt.Errorf("htlc: locking hop %d→%d: %w", path[i], path[i+1], err)
		}
		p.contracts = append(p.contracts, id)
	}
	return p, nil
}

// unwind force-refunds the locked prefix of a failed setup. Contracts
// are still pending and unexpired; we bypass the expiry check by
// refunding at the ledger level with the payer's cooperation (both
// parties agree nothing downstream depends on them).
func (p *Payment) unwind() {
	l := p.ledger
	for _, id := range p.contracts {
		l.mu.Lock()
		c, ok := l.contracts[id]
		if ok && c.State == StatePending {
			balFwd := l.net.Balance(c.From, c.To)
			l.net.SetBalance(c.From, c.To, balFwd+c.Amount, l.net.Balance(c.To, c.From)) //nolint:errcheck
			c.State = StateRefunded
			l.escrow -= c.Amount
		}
		l.mu.Unlock()
	}
}

// Contracts returns the per-hop contract IDs, sender side first.
func (p *Payment) Contracts() []uint64 {
	return append([]uint64(nil), p.contracts...)
}

// ClaimAll settles the payment: the receiver reveals the preimage on
// its inbound hop, and the revelation propagates towards the sender —
// each intermediate claims its inbound contract with the now-public
// secret. Returns an error (leaving remaining hops pending) if any
// claim fails; in the real network those hops would later refund.
func (p *Payment) ClaimAll(secret Secret) error {
	for i := len(p.contracts) - 1; i >= 0; i-- {
		if err := p.ledger.Claim(p.contracts[i], secret); err != nil {
			return fmt.Errorf("htlc: claiming hop %d: %w", i, err)
		}
	}
	return nil
}

// ExpireAll advances past every expiry and refunds — the failure path
// when the receiver never reveals the preimage.
func (p *Payment) ExpireAll() int {
	maxExpiry := int64(0)
	for _, id := range p.contracts {
		if c, err := p.ledger.Contract(id); err == nil && c.Expiry > maxExpiry {
			maxExpiry = c.Expiry
		}
	}
	if now := p.ledger.chain.Height(); maxExpiry > now {
		p.ledger.chain.Advance(maxExpiry - now)
	}
	return p.ledger.RefundExpired()
}
