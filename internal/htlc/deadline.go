package htlc

import "math"

// DefaultBlockInterval is the expected seconds per block used when a
// caller has no chain-specific figure — Bitcoin's 10-minute target,
// the clock the paper's offchain networks ultimately settle against.
const DefaultBlockInterval = 600.0

// BlocksForDeadline converts a virtual-time hold deadline in seconds
// (sim.DynamicOptions.Deadline) into the number of blocks an HTLC
// expiry must span given the chain's expected block interval. It
// rounds up — a contract must never be refundable before the routing
// layer considers the hold expired — and always spans at least one
// block for any positive deadline. A non-positive deadline or
// interval yields 0 (no expiry).
func BlocksForDeadline(deadline, blockInterval float64) int64 {
	if deadline <= 0 || blockInterval <= 0 {
		return 0
	}
	n := int64(math.Ceil(deadline / blockInterval))
	if n < 1 {
		n = 1
	}
	return n
}

// DeadlineForBlocks is the inverse mapping: the virtual-second hold
// budget a contract spanning blocks blocks affords under the given
// block interval. Non-positive inputs yield 0.
func DeadlineForBlocks(blocks int64, blockInterval float64) float64 {
	if blocks <= 0 || blockInterval <= 0 {
		return 0
	}
	return float64(blocks) * blockInterval
}

// ExpiryForDeadline returns the absolute block height at which a
// contract opened now against chain must expire to honour a
// virtual-second deadline, i.e. the Expiry argument to Ledger.Lock.
// With per-hop time locks the sender stacks one BlocksForDeadline
// increment per remaining hop so expiries decrease towards the
// receiver (§2.1); this helper prices a single hop.
func ExpiryForDeadline(chain *Chain, deadline, blockInterval float64) int64 {
	return chain.Height() + BlocksForDeadline(deadline, blockInterval)
}
