// Package htlc implements hash time-locked contracts, the security
// mechanism that makes multi-hop offchain payments trustless (§2.1:
// "HTLC guarantees that Charlie receives funds from Alice if and only
// if Bob receives the payment from Charlie successfully ... either the
// balances of all channels on the path are updated or none is").
//
// The paper's prototype replaces HTLC with a plain two-phase commit
// (§5.1) because its evaluation targets routing, not security; this
// package builds the real mechanism so the repository covers the full
// system: hash locks (SHA-256 preimages), per-hop time locks with
// decreasing expiries towards the receiver, claim propagation driven by
// preimage revelation, and refunds after expiry against a logical
// chain-height clock.
package htlc

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/pcn"
	"repro/internal/topo"
)

// Secret is an HTLC preimage.
type Secret [32]byte

// Hash is the SHA-256 commitment to a Secret.
type Hash [32]byte

// NewSecret draws a fresh preimage from r (crypto/rand.Reader in
// production; any reader in tests).
func NewSecret(r io.Reader) (Secret, error) {
	var s Secret
	if r == nil {
		r = rand.Reader
	}
	if _, err := io.ReadFull(r, s[:]); err != nil {
		return Secret{}, fmt.Errorf("htlc: drawing secret: %w", err)
	}
	return s, nil
}

// Hash commits to the secret.
func (s Secret) Hash() Hash { return sha256.Sum256(s[:]) }

// String renders the hash in hex (for logs).
func (h Hash) String() string { return hex.EncodeToString(h[:8]) + "…" }

// State is a contract's lifecycle state.
type State uint8

// Contract states.
const (
	StatePending   State = iota // funds locked, awaiting preimage or expiry
	StateFulfilled              // preimage presented, funds settled forward
	StateRefunded               // expired, funds returned to the payer side
)

var stateNames = [...]string{"PENDING", "FULFILLED", "REFUNDED"}

// String names the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Chain is a logical block-height clock: expiries are measured against
// it, as HTLC timeouts are measured against the blockchain.
type Chain struct {
	mu     sync.Mutex
	height int64
}

// Height returns the current block height.
func (c *Chain) Height() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.height
}

// Advance mines n blocks.
func (c *Chain) Advance(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.height += n
}

// Contract is one hop's HTLC: amount locked on the channel direction
// From→To, claimable by To with the preimage of HashLock until Expiry,
// refundable to From afterwards.
type Contract struct {
	ID       uint64
	From, To topo.NodeID
	Amount   float64
	HashLock Hash
	Expiry   int64
	State    State
}

// Errors returned by ledger operations.
var (
	ErrWrongPreimage = errors.New("htlc: preimage does not match hash lock")
	ErrNotPending    = errors.New("htlc: contract is not pending")
	ErrNotExpired    = errors.New("htlc: contract has not expired")
	ErrExpired       = errors.New("htlc: contract already expired")
	ErrInsufficient  = errors.New("htlc: insufficient channel balance to lock")
	ErrUnknown       = errors.New("htlc: unknown contract")
)

// Ledger manages HTLCs over a payment channel network. Locked funds
// leave the payer's spendable balance into contract escrow; settlement
// moves them to the payee's side, refund returns them.
type Ledger struct {
	net   *pcn.Network
	chain *Chain

	mu        sync.Mutex
	contracts map[uint64]*Contract
	nextID    uint64
	// escrow tracks locked totals for the conservation invariant.
	escrow float64
}

// NewLedger creates an HTLC ledger over net, timed by chain.
func NewLedger(net *pcn.Network, chain *Chain) *Ledger {
	return &Ledger{net: net, chain: chain, contracts: make(map[uint64]*Contract)}
}

// Escrow returns the total funds currently locked in pending contracts.
func (l *Ledger) Escrow() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.escrow
}

// Contract returns a copy of the contract with the given ID.
func (l *Ledger) Contract(id uint64) (Contract, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.contracts[id]
	if !ok {
		return Contract{}, ErrUnknown
	}
	return *c, nil
}

// Lock creates one hop contract: amount moves from the spendable
// balance of from→to into escrow until claim or expiry.
func (l *Ledger) Lock(from, to topo.NodeID, amount float64, hash Hash, expiry int64) (uint64, error) {
	if amount <= 0 {
		return 0, fmt.Errorf("htlc: non-positive amount %v", amount)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if expiry <= l.chain.Height() {
		return 0, ErrExpired
	}
	balFwd := l.net.Balance(from, to)
	if balFwd < amount {
		return 0, ErrInsufficient
	}
	if err := l.net.SetBalance(from, to, balFwd-amount, l.net.Balance(to, from)); err != nil {
		return 0, err
	}
	l.nextID++
	c := &Contract{
		ID: l.nextID, From: from, To: to,
		Amount: amount, HashLock: hash, Expiry: expiry,
	}
	l.contracts[c.ID] = c
	l.escrow += amount
	return c.ID, nil
}

// Claim settles a pending contract with the preimage: escrow moves to
// the payee's side of the channel, making the hop's transfer final.
func (l *Ledger) Claim(id uint64, secret Secret) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.contracts[id]
	if !ok {
		return ErrUnknown
	}
	if c.State != StatePending {
		return ErrNotPending
	}
	if secret.Hash() != c.HashLock {
		return ErrWrongPreimage
	}
	if l.chain.Height() >= c.Expiry {
		return ErrExpired
	}
	balRev := l.net.Balance(c.To, c.From)
	if err := l.net.SetBalance(c.To, c.From, balRev+c.Amount, l.net.Balance(c.From, c.To)); err != nil {
		return err
	}
	c.State = StateFulfilled
	l.escrow -= c.Amount
	return nil
}

// Refund returns an expired pending contract's escrow to the payer.
func (l *Ledger) Refund(id uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.contracts[id]
	if !ok {
		return ErrUnknown
	}
	if c.State != StatePending {
		return ErrNotPending
	}
	if l.chain.Height() < c.Expiry {
		return ErrNotExpired
	}
	balFwd := l.net.Balance(c.From, c.To)
	if err := l.net.SetBalance(c.From, c.To, balFwd+c.Amount, l.net.Balance(c.To, c.From)); err != nil {
		return err
	}
	c.State = StateRefunded
	l.escrow -= c.Amount
	return nil
}

// RefundExpired refunds every pending contract whose expiry has
// passed, returning how many were refunded — the sweep a watchtower or
// node restart performs.
func (l *Ledger) RefundExpired() int {
	l.mu.Lock()
	ids := make([]uint64, 0)
	for id, c := range l.contracts {
		if c.State == StatePending && l.chain.Height() >= c.Expiry {
			ids = append(ids, id)
		}
	}
	l.mu.Unlock()
	n := 0
	for _, id := range ids {
		if l.Refund(id) == nil {
			n++
		}
	}
	return n
}
