// Package gossip implements the topology-maintenance layer Flash
// presupposes (§3.1): "practical offchain routing protocols in
// Lightning and Raiden require each node to locally store the topology
// of the offchain network and periodically update it using some
// gossiping protocols". The paper treats this layer as given; this
// package builds it, so the repository contains every moving part a
// deployment needs.
//
// The design follows Lightning's gossip in miniature:
//
//   - Channel events (open, close, per-direction fee updates) are
//     signed-by-origin in spirit: each carries the originating node and
//     a per-origin sequence number; peers deduplicate on (origin, seq)
//     and flood to their channel neighbours.
//   - Gossip travels over the channel graph itself (a node talks only
//     to its direct channel peers), so partitions in the channel graph
//     partition knowledge, exactly as in the real network.
//   - Periodic anti-entropy reconciles missed events: a peer exchanges
//     per-origin sequence vectors with a neighbour and pulls anything
//     it lacks.
//
// Every peer exposes a View — an eventually consistent local topology
// (plus fee metadata) that materialises *topo.Graph snapshots for the
// routing layer; Flash's routing tables are refreshed when the view
// version advances (paper §3.3: "The routing table is periodically
// refreshed when the local network topology G is updated (by the
// underlying gossip protocol)").
package gossip

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/pcn"
	"repro/internal/topo"
)

// EventType enumerates the channel lifecycle events gossip carries.
type EventType uint8

// Channel lifecycle events.
const (
	EventOpen   EventType = iota + 1 // a channel A–B was funded on-chain
	EventClose                       // a channel A–B was settled on-chain
	EventUpdate                      // the fee policy of direction A→B changed
)

var eventNames = [...]string{"", "OPEN", "CLOSE", "UPDATE"}

// String names the event type.
func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return fmt.Sprintf("EventType(%d)", uint8(t))
}

// Event is one gossip announcement. Origin+Seq identify it globally;
// later events from the same origin supersede earlier ones.
type Event struct {
	Origin topo.NodeID // announcing node
	Seq    uint64      // per-origin sequence number
	Type   EventType
	A, B   topo.NodeID     // channel endpoints (A→B is the updated direction for EventUpdate)
	Fee    pcn.FeeSchedule // payload of EventUpdate
}

// key identifies a channel in views.
type key struct{ a, b topo.NodeID }

func keyOf(a, b topo.NodeID) key {
	if a > b {
		a, b = b, a
	}
	return key{a, b}
}

// channelMeta is a view's knowledge about one channel.
type channelMeta struct {
	open   bool
	feeAB  pcn.FeeSchedule // direction canonical-A → canonical-B
	feeBA  pcn.FeeSchedule
	openAt eventStamp // stamp of the open/close that set `open`
}

// eventStamp orders events from the same origin.
type eventStamp struct {
	origin topo.NodeID
	seq    uint64
}

// newer reports whether s supersedes t for the same subject. Ordering
// is by sequence number with origin ID as an arbitrary but consistent
// tiebreaker, so all views converge on the same winner.
func (s eventStamp) newer(t eventStamp) bool {
	if s.seq != t.seq {
		return s.seq > t.seq
	}
	return s.origin > t.origin
}

// View is an eventually consistent local topology.
type View struct {
	mu       sync.Mutex
	nodes    int
	channels map[key]*channelMeta
	version  uint64

	snapshot        *topo.Graph // cached materialisation
	snapshotVersion uint64
}

// NewView returns an empty view over a fixed node ID space.
func NewView(nodes int) *View {
	return &View{nodes: nodes, channels: make(map[key]*channelMeta)}
}

// Version increases whenever the view's content changes; the routing
// layer compares versions to decide when to refresh routing tables.
func (v *View) Version() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.version
}

// apply integrates an event, reporting whether it changed the view.
func (v *View) apply(e Event) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	k := keyOf(e.A, e.B)
	meta, ok := v.channels[k]
	if !ok {
		meta = &channelMeta{}
		v.channels[k] = meta
	}
	stamp := eventStamp{origin: e.Origin, seq: e.Seq}
	switch e.Type {
	case EventOpen, EventClose:
		if ok && !stamp.newer(meta.openAt) {
			return false // stale news
		}
		meta.openAt = stamp
		wantOpen := e.Type == EventOpen
		meta.open = wantOpen
		v.version++
		return true
	case EventUpdate:
		if k.a == e.A {
			meta.feeAB = e.Fee
		} else {
			meta.feeBA = e.Fee
		}
		v.version++
		return true
	}
	return false
}

// Open reports whether the view believes a channel joins a and b.
func (v *View) Open(a, b topo.NodeID) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	meta, ok := v.channels[keyOf(a, b)]
	return ok && meta.open
}

// Fee returns the view's belief about the fee of direction a→b.
func (v *View) Fee(a, b topo.NodeID) pcn.FeeSchedule {
	v.mu.Lock()
	defer v.mu.Unlock()
	meta, ok := v.channels[keyOf(a, b)]
	if !ok {
		return pcn.FeeSchedule{}
	}
	if keyOf(a, b).a == a {
		return meta.feeAB
	}
	return meta.feeBA
}

// NumOpen counts channels the view believes open.
func (v *View) NumOpen() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, m := range v.channels {
		if m.open {
			n++
		}
	}
	return n
}

// Graph materialises the view as a topology snapshot. Snapshots are
// cached per version, so repeated calls between changes are free. The
// returned graph must be treated as immutable.
func (v *View) Graph() *topo.Graph {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.snapshot != nil && v.snapshotVersion == v.version {
		return v.snapshot
	}
	g := topo.New(v.nodes)
	keys := make([]key, 0, len(v.channels))
	for k, m := range v.channels {
		if m.open {
			keys = append(keys, k)
		}
	}
	// Deterministic channel indices regardless of map order.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, k := range keys {
		g.MustAddChannel(k.a, k.b)
	}
	v.snapshot = g
	v.snapshotVersion = v.version
	return g
}
