package gossip

import (
	"sync"

	"repro/internal/pcn"
	"repro/internal/topo"
)

// Peer is one gossiping participant: it floods new events to its
// channel neighbours, deduplicates what it has seen, and folds
// everything into its View.
//
// Delivery is synchronous (an event published anywhere reaches every
// connected peer before Publish returns), which makes tests and
// simulations deterministic; the network package carries the same
// messages asynchronously over TCP in the testbed. Anti-entropy
// (Reconcile) covers peers that were attached after an event was
// flooded.
type Peer struct {
	id   topo.NodeID
	view *View

	mu        sync.Mutex
	neighbors map[topo.NodeID]*Peer
	seen      map[eventStamp]bool
	log       []Event // replay log for anti-entropy
	seq       uint64  // this peer's own announcement counter

	onChange func() // optional notification hook (e.g. Flash.Refresh)
}

// NewPeer creates a peer with an empty view over the node ID space.
func NewPeer(id topo.NodeID, nodes int) *Peer {
	return &Peer{
		id:        id,
		view:      NewView(nodes),
		neighbors: make(map[topo.NodeID]*Peer),
		seen:      make(map[eventStamp]bool),
	}
}

// ID returns the peer's node ID.
func (p *Peer) ID() topo.NodeID { return p.id }

// View returns the peer's local topology view.
func (p *Peer) View() *View { return p.view }

// OnChange registers a hook invoked (synchronously) whenever the
// peer's view changes — the signal Flash uses to refresh its routing
// tables.
func (p *Peer) OnChange(fn func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onChange = fn
}

// Connect joins two peers as gossip neighbours (they share a channel).
// Connecting does not itself announce a channel; the funding node calls
// AnnounceOpen.
func Connect(a, b *Peer) {
	a.mu.Lock()
	a.neighbors[b.id] = b
	a.mu.Unlock()
	b.mu.Lock()
	b.neighbors[a.id] = a
	b.mu.Unlock()
}

// Disconnect removes the gossip adjacency between two peers.
func Disconnect(a, b *Peer) {
	a.mu.Lock()
	delete(a.neighbors, b.id)
	a.mu.Unlock()
	b.mu.Lock()
	delete(b.neighbors, a.id)
	b.mu.Unlock()
}

// nextSeq issues this peer's next announcement sequence number.
func (p *Peer) nextSeq() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	return p.seq
}

// AnnounceOpen publishes that a channel between this peer and other has
// been funded.
func (p *Peer) AnnounceOpen(other topo.NodeID) {
	p.Publish(Event{Origin: p.id, Seq: p.nextSeq(), Type: EventOpen, A: p.id, B: other})
}

// AnnounceClose publishes that the channel between this peer and other
// has been settled.
func (p *Peer) AnnounceClose(other topo.NodeID) {
	p.Publish(Event{Origin: p.id, Seq: p.nextSeq(), Type: EventClose, A: p.id, B: other})
}

// AnnounceFee publishes a fee policy update for the direction
// this-peer → other.
func (p *Peer) AnnounceFee(other topo.NodeID, fee pcn.FeeSchedule) {
	p.Publish(Event{Origin: p.id, Seq: p.nextSeq(), Type: EventUpdate, A: p.id, B: other, Fee: fee})
}

// Publish floods an event from this peer through the connected gossip
// component.
func (p *Peer) Publish(e Event) {
	p.receive(e)
}

// receive deduplicates, applies and forwards one event.
func (p *Peer) receive(e Event) {
	stamp := eventStamp{origin: e.Origin, seq: e.Seq}
	p.mu.Lock()
	if p.seen[stamp] {
		p.mu.Unlock()
		return
	}
	p.seen[stamp] = true
	p.log = append(p.log, e)
	// Copy the neighbour set so forwarding happens without the lock.
	nbrs := make([]*Peer, 0, len(p.neighbors))
	for _, nb := range p.neighbors {
		nbrs = append(nbrs, nb)
	}
	hook := p.onChange
	p.mu.Unlock()

	changed := p.view.apply(e)
	for _, nb := range nbrs {
		nb.receive(e)
	}
	if changed && hook != nil {
		hook()
	}
}

// digest summarises which events a peer has seen, per origin.
func (p *Peer) digest() map[topo.NodeID]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	d := make(map[topo.NodeID]uint64)
	for stamp := range p.seen {
		if stamp.seq > d[stamp.origin] {
			d[stamp.origin] = stamp.seq
		}
	}
	return d
}

// eventsSince returns the events this peer has stored that the given
// digest is missing. Peers keep a replay log for anti-entropy.
func (p *Peer) eventsSince(d map[topo.NodeID]uint64) []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Event
	for _, e := range p.log {
		if e.Seq > d[e.Origin] {
			out = append(out, e)
		}
	}
	return out
}

// Reconcile performs one round of anti-entropy with a neighbour: each
// side learns every event the other has that it lacks. This is how a
// newly attached peer catches up on history it missed.
func Reconcile(a, b *Peer) {
	for _, e := range b.eventsSince(a.digest()) {
		a.receive(e)
	}
	for _, e := range a.eventsSince(b.digest()) {
		b.receive(e)
	}
}
