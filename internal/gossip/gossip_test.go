package gossip

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pcn"
	"repro/internal/topo"
)

// buildPeers creates n connected peers wired along the given edges.
func buildPeers(n int, edges [][2]topo.NodeID) []*Peer {
	peers := make([]*Peer, n)
	for i := range peers {
		peers[i] = NewPeer(topo.NodeID(i), n)
	}
	for _, e := range edges {
		Connect(peers[e[0]], peers[e[1]])
	}
	return peers
}

func TestFloodReachesAllPeers(t *testing.T) {
	// Line 0-1-2-3: an announcement at 0 must reach 3.
	peers := buildPeers(4, [][2]topo.NodeID{{0, 1}, {1, 2}, {2, 3}})
	peers[0].AnnounceOpen(1)
	for i, p := range peers {
		if !p.View().Open(0, 1) {
			t.Errorf("peer %d did not learn channel 0-1", i)
		}
	}
}

func TestCloseSupersedesOpen(t *testing.T) {
	peers := buildPeers(3, [][2]topo.NodeID{{0, 1}, {1, 2}})
	peers[0].AnnounceOpen(1)
	peers[0].AnnounceClose(1)
	for i, p := range peers {
		if p.View().Open(0, 1) {
			t.Errorf("peer %d still believes 0-1 open after close", i)
		}
	}
}

func TestStaleEventIgnored(t *testing.T) {
	v := NewView(4)
	// Seq 5 open, then stale seq 3 close from the same origin: stays open.
	v.apply(Event{Origin: 0, Seq: 5, Type: EventOpen, A: 0, B: 1})
	before := v.Version()
	if v.apply(Event{Origin: 0, Seq: 3, Type: EventClose, A: 0, B: 1}) {
		t.Error("stale event applied")
	}
	if !v.Open(0, 1) {
		t.Error("stale close flipped the channel")
	}
	if v.Version() != before {
		t.Error("stale event bumped version")
	}
}

func TestConcurrentEventsConverge(t *testing.T) {
	// Both endpoints announce with the same seq; every view must pick
	// the same winner regardless of arrival order.
	a := NewView(4)
	b := NewView(4)
	open := Event{Origin: 1, Seq: 1, Type: EventOpen, A: 1, B: 2}
	clos := Event{Origin: 2, Seq: 1, Type: EventClose, A: 2, B: 1}
	a.apply(open)
	a.apply(clos)
	b.apply(clos)
	b.apply(open)
	if a.Open(1, 2) != b.Open(1, 2) {
		t.Errorf("views diverged: a=%v b=%v", a.Open(1, 2), b.Open(1, 2))
	}
}

func TestFeeUpdates(t *testing.T) {
	peers := buildPeers(2, [][2]topo.NodeID{{0, 1}})
	peers[0].AnnounceOpen(1)
	fee := pcn.FeeSchedule{Rate: 0.02}
	peers[0].AnnounceFee(1, fee)
	if got := peers[1].View().Fee(0, 1); got != fee {
		t.Errorf("peer 1 fee(0→1) = %+v, want %+v", got, fee)
	}
	if got := peers[1].View().Fee(1, 0); got == fee {
		t.Error("reverse direction fee should be unset")
	}
}

func TestViewGraphMaterialisation(t *testing.T) {
	v := NewView(5)
	v.apply(Event{Origin: 0, Seq: 1, Type: EventOpen, A: 0, B: 1})
	v.apply(Event{Origin: 1, Seq: 1, Type: EventOpen, A: 1, B: 2})
	g := v.Graph()
	if g.NumChannels() != 2 || !g.HasChannel(0, 1) || !g.HasChannel(1, 2) {
		t.Errorf("materialised graph wrong: %d channels", g.NumChannels())
	}
	// Cached while unchanged.
	if v.Graph() != g {
		t.Error("snapshot not cached")
	}
	// Invalidated on change.
	v.apply(Event{Origin: 0, Seq: 2, Type: EventClose, A: 0, B: 1})
	g2 := v.Graph()
	if g2 == g || g2.NumChannels() != 1 {
		t.Errorf("snapshot not refreshed: %d channels", g2.NumChannels())
	}
	if v.NumOpen() != 1 {
		t.Errorf("NumOpen = %d, want 1", v.NumOpen())
	}
}

func TestPartitionLimitsKnowledge(t *testing.T) {
	// Two disconnected pairs: 0-1 and 2-3. News in one component must
	// not reach the other.
	peers := buildPeers(4, [][2]topo.NodeID{{0, 1}, {2, 3}})
	peers[0].AnnounceOpen(1)
	if peers[2].View().Open(0, 1) {
		t.Error("announcement crossed a partition")
	}
}

func TestReconcileCatchesUp(t *testing.T) {
	peers := buildPeers(3, [][2]topo.NodeID{{0, 1}})
	peers[0].AnnounceOpen(1)
	peers[1].AnnounceFee(0, pcn.FeeSchedule{Rate: 0.05})
	// Peer 2 joins late: connect to 1, reconcile, and it learns history.
	Connect(peers[1], peers[2])
	if peers[2].View().Open(0, 1) {
		t.Fatal("peer 2 knew history before reconcile")
	}
	Reconcile(peers[2], peers[1])
	if !peers[2].View().Open(0, 1) {
		t.Error("reconcile did not transfer the open event")
	}
	if got := peers[2].View().Fee(1, 0); got.Rate != 0.05 {
		t.Errorf("reconcile did not transfer the fee update: %+v", got)
	}
}

func TestOnChangeHook(t *testing.T) {
	peers := buildPeers(2, [][2]topo.NodeID{{0, 1}})
	calls := 0
	peers[1].OnChange(func() { calls++ })
	peers[0].AnnounceOpen(1)
	peers[0].AnnounceClose(1)
	if calls != 2 {
		t.Errorf("hook called %d times, want 2", calls)
	}
	// Duplicate delivery must not re-fire the hook.
	peers[1].receive(Event{Origin: 0, Seq: 1, Type: EventOpen, A: 0, B: 1})
	if calls != 2 {
		t.Errorf("duplicate event re-fired hook (%d calls)", calls)
	}
}

func TestDisconnectStopsFlooding(t *testing.T) {
	peers := buildPeers(3, [][2]topo.NodeID{{0, 1}, {1, 2}})
	Disconnect(peers[1], peers[2])
	peers[0].AnnounceOpen(1)
	if peers[2].View().Open(0, 1) {
		t.Error("event crossed a removed adjacency")
	}
}

func TestEventTypeString(t *testing.T) {
	if EventOpen.String() != "OPEN" || EventClose.String() != "CLOSE" || EventUpdate.String() != "UPDATE" {
		t.Error("event names wrong")
	}
	if EventType(9).String() == "" {
		t.Error("unknown event type should stringify")
	}
}

// TestConvergenceProperty: after a random sequence of opens/closes
// announced at random peers of a connected graph, every peer's view is
// identical.
func TestConvergenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := topo.BarabasiAlbert(20, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	var edges [][2]topo.NodeID
	for _, e := range g.Channels() {
		edges = append(edges, [2]topo.NodeID{e.A, e.B})
	}
	peers := buildPeers(20, edges)
	for i := 0; i < 300; i++ {
		p := peers[rng.Intn(20)]
		other := topo.NodeID(rng.Intn(20))
		if other == p.ID() {
			continue
		}
		if rng.Float64() < 0.7 {
			p.AnnounceOpen(other)
		} else {
			p.AnnounceClose(other)
		}
	}
	ref := peers[0].View()
	for i, p := range peers[1:] {
		v := p.View()
		if v.NumOpen() != ref.NumOpen() {
			t.Fatalf("peer %d open-count %d != reference %d", i+1, v.NumOpen(), ref.NumOpen())
		}
		for a := 0; a < 20; a++ {
			for b := a + 1; b < 20; b++ {
				if v.Open(topo.NodeID(a), topo.NodeID(b)) != ref.Open(topo.NodeID(a), topo.NodeID(b)) {
					t.Fatalf("peer %d disagrees about channel %d-%d", i+1, a, b)
				}
			}
		}
	}
}

// TestConcurrentPublish exercises the locks under -race.
func TestConcurrentPublish(t *testing.T) {
	peers := buildPeers(6, [][2]topo.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := peers[id]
			for j := 0; j < 20; j++ {
				p.AnnounceOpen(topo.NodeID((id + 1) % 6))
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 6; i++ {
		if !peers[0].View().Open(topo.NodeID(i), topo.NodeID((i+1)%6)) {
			t.Errorf("channel %d-%d missing after concurrent publish", i, (i+1)%6)
		}
	}
}
