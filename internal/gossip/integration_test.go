package gossip_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/pcn"
	"repro/internal/topo"
)

// TestDynamicTopologyWithFlash exercises the paper's §3.3 refresh flow
// end to end: Flash routes over a gossip-maintained view, a channel
// closes, gossip propagates the close, the routing tables are
// refreshed, and payments take the surviving route.
func TestDynamicTopologyWithFlash(t *testing.T) {
	const n = 5
	// Physical truth: a diamond 0-1-4 / 0-2-3-4.
	g := topo.New(n)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(1, 4)
	g.MustAddChannel(0, 2)
	g.MustAddChannel(2, 3)
	g.MustAddChannel(3, 4)
	net := pcn.New(g)
	for _, e := range g.Channels() {
		if err := net.SetBalance(e.A, e.B, 100, 100); err != nil {
			t.Fatal(err)
		}
	}

	// Gossip layer mirrors the channel graph.
	peers := make([]*gossip.Peer, n)
	for i := range peers {
		peers[i] = gossip.NewPeer(topo.NodeID(i), n)
	}
	for _, e := range g.Channels() {
		gossip.Connect(peers[e.A], peers[e.B])
	}
	for _, e := range g.Channels() {
		peers[e.A].AnnounceOpen(e.B)
	}

	router := core.New(core.DefaultConfig(math.Inf(1))) // all mice: uses tables
	refreshes := 0
	peers[0].OnChange(func() {
		router.Refresh() // §3.3: "all entries are re-computed using the latest G"
		refreshes++
	})

	// Sender 0's view must already match the truth.
	view := peers[0].View()
	if view.NumOpen() != g.NumChannels() {
		t.Fatalf("view has %d channels, want %d", view.NumOpen(), g.NumChannels())
	}

	// Route a payment over the view's graph (the sender's local G).
	pay := func() error {
		tx, err := net.Begin(0, 4, 10)
		if err != nil {
			t.Fatal(err)
		}
		return router.Route(tx)
	}
	if err := pay(); err != nil {
		t.Fatalf("initial payment failed: %v", err)
	}

	// Channel 1-4 closes on-chain; node 1 announces it; the close
	// floods; node 0's hook refreshes the router.
	refreshesBefore := refreshes
	peers[1].AnnounceClose(4)
	if refreshes == refreshesBefore {
		t.Fatal("close did not reach node 0's hook")
	}
	if peers[0].View().Open(1, 4) {
		t.Fatal("view still believes 1-4 open")
	}
	viewGraph := peers[0].View().Graph()
	if viewGraph.HasChannel(1, 4) {
		t.Fatal("materialised view still contains 1-4")
	}
	// The routing table was rebuilt: subsequent lookups compute paths
	// on whatever graph the session presents; with the truth unchanged
	// the payment still succeeds via 0-2-3-4 (the simulator's session
	// presents the physical graph; the refresh guarantees no stale
	// cached path through 1-4 lingers if that channel also disappears
	// from the truth).
	if err := pay(); err != nil {
		t.Fatalf("payment after refresh failed: %v", err)
	}
	if router.Stats().TableMisses < 2 {
		t.Errorf("refresh should have forced a table recomputation: %+v", router.Stats())
	}
}
