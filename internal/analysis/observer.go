package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// Observer-only rule identifiers.
const (
	// RuleObserverImport flags an observer package importing an engine
	// package: telemetry is a leaf by construction, so a feedback path
	// from observation into routing cannot even compile.
	RuleObserverImport = "observer/import"
	// RuleObserverMutate flags an observer calling a non-accessor
	// engine function — defense in depth should an import ever be
	// allowed by directive.
	RuleObserverMutate = "observer/mutate"
	// RuleObserverWallclock flags wall-clock reads in an observer:
	// the only wall-clock field is FlowRecord.WallNS, stamped by the
	// emitting harness, never by the observer itself.
	RuleObserverWallclock = "observer/wallclock"
	// RuleObserverRand flags randomness consumption in an observer —
	// an observer that draws randomness could perturb nothing today,
	// but the contract is that it provably consumes none.
	RuleObserverRand = "observer/rand"
)

// ObserverAnalyzer enforces the observer-only telemetry contract from
// PR 7: a run with every sink attached must produce fingerprints and
// bytes identical to a run with telemetry off, which holds because the
// observer cannot reach engine state, the wall clock, or randomness.
var ObserverAnalyzer = &Analyzer{
	Name:      "observer",
	Doc:       "observer-only packages may not import or call engine APIs, read the wall clock, or consume randomness",
	Rules:     []string{RuleObserverImport, RuleObserverMutate, RuleObserverWallclock, RuleObserverRand},
	AppliesTo: byName(ObserverPackages),
	Run:       runObserver,
}

// runObserver applies the four observer rules file by file.
func runObserver(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if bannedEnginePath(path) {
				pass.Reportf(imp.Pos(), RuleObserverImport,
					"observer package imports engine package %s — telemetry must stay a leaf; push data in through interfaces instead", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg.Types {
				return true
			}
			switch path := fn.Pkg().Path(); {
			case path == "time" && isPackageFunc(fn) &&
				(fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until"):
				pass.Reportf(call.Pos(), RuleObserverWallclock,
					"time.%s in an observer package — wall time is stamped by the emitting harness (FlowRecord.WallNS), never read here", fn.Name())
			case path == "math/rand" || path == "math/rand/v2" || path == "crypto/rand":
				pass.Reportf(call.Pos(), RuleObserverRand,
					"observer package consumes randomness (%s.%s) — the observer-only contract requires it draws none", path, fn.Name())
			case bannedEnginePath(path) && !ObserverReadAllowlist[fn.Name()]:
				pass.Reportf(call.Pos(), RuleObserverMutate,
					"observer calls engine API %s.%s — only read-only accessors (%s) are permitted", path, fn.Name(), allowlistNames())
			}
			return true
		})
	}
	return nil
}

// bannedEnginePath reports whether an import path names an engine
// package an observer may not touch: any package of this module, or —
// for the fixture packages, which have bare single-element paths — a
// path whose base is a known engine package name.
func bannedEnginePath(path string) bool {
	if path == "repro" || strings.HasPrefix(path, "repro/") {
		return true
	}
	if strings.Contains(path, ".") {
		return false // external domain — none exist in this module
	}
	base := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		base = path[i+1:]
	}
	return EngineBannedFromObservers[base]
}

// allowlistNames renders the read-only allowlist for messages.
func allowlistNames() string {
	names := make([]string, 0, len(ObserverReadAllowlist))
	for n := range ObserverReadAllowlist {
		names = append(names, n)
	}
	// Small fixed set; sort for stable messages.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, "/")
}
