package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// RuleDocExported flags an exported declaration without a doc comment
// in the audited packages — the documentation contract formerly
// enforced by internal/doclint, migrated here so one engine owns all
// repository lint.
const RuleDocExported = "doccomment/exported"

// DocCommentAnalyzer enforces the documentation contract: every
// exported type, function, method, variable and constant in the
// audited packages carries a doc comment. A type/var/const group's doc
// comment covers its specs; a value spec's line comment also counts.
var DocCommentAnalyzer = &Analyzer{
	Name:      "doccomment",
	Doc:       "every exported identifier in the audited packages must carry a doc comment",
	Rules:     []string{RuleDocExported},
	AppliesTo: byName(DocumentedPackages),
	Run:       runDocComment,
}

// runDocComment walks each file's top-level declarations.
func runDocComment(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !exportedFunc(d) {
					continue
				}
				if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
					pass.Reportf(d.Pos(), RuleDocExported, "exported func %s lacks a doc comment", docFuncName(d))
				}
			case *ast.GenDecl:
				lintGenDecl(pass, d)
			}
		}
	}
	return nil
}

// lintGenDecl checks type/var/const groups: a spec is covered by its
// own doc comment, its line comment, or — for single-purpose groups —
// the group's doc comment.
func lintGenDecl(pass *Pass, d *ast.GenDecl) {
	groupDoc := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !groupDoc && (s.Doc == nil || strings.TrimSpace(s.Doc.Text()) == "") {
				pass.Reportf(s.Pos(), RuleDocExported, "exported type %s lacks a doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			hasDoc := groupDoc ||
				(s.Doc != nil && strings.TrimSpace(s.Doc.Text()) != "") ||
				(s.Comment != nil && strings.TrimSpace(s.Comment.Text()) != "")
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				if !hasDoc {
					pass.Reportf(name.Pos(), RuleDocExported, "exported %s %s lacks a doc comment", declKind(d.Tok), name.Name)
				}
			}
		}
	}
}

// exportedFunc reports whether d is part of the exported API: an
// exported function, or an exported method on an exported receiver.
func exportedFunc(d *ast.FuncDecl) bool {
	if !d.Name.IsExported() {
		return false
	}
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	id := exprIdent(d.Recv.List[0].Type)
	return id != nil && id.IsExported()
}

// docFuncName renders Receiver.Method or a plain function name.
func docFuncName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	if id := exprIdent(d.Recv.List[0].Type); id != nil {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// declKind names a GenDecl token for messages.
func declKind(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	default:
		return tok.String()
	}
}
