package analysis

// This file is the analyzer catalogue: the scope sets that bind each
// analyzer to the packages whose contract it enforces, and All(), the
// suite cmd/flashvet and the repo-gate test run. Scoping is by package
// name rather than import path so the fixture packages under
// testdata/src — which carry the same names — exercise the identical
// configuration the repository is audited with.

// DeterministicPackages names the packages whose code must replay
// byte-identically from a seed: no wall clock, no global randomness,
// no map-iteration order leaking into ordered sinks. This is the
// determinism contract behind the seed goldens and the event-log
// fingerprints (README "Determinism guarantees").
var DeterministicPackages = map[string]bool{
	"event":   true,
	"trace":   true,
	"topo":    true,
	"graph":   true,
	"pcn":     true,
	"core":    true,
	"sim":     true,
	"stats":   true,
	"control": true,
}

// DocumentedPackages names the packages whose exported API must carry
// doc comments — the gate formerly enforced by internal/doclint, now
// the doccomment analyzer. Grow this set as packages reach full
// coverage; never shrink it.
var DocumentedPackages = map[string]bool{
	"event":     true,
	"trace":     true,
	"route":     true,
	"pcn":       true,
	"sim":       true,
	"core":      true,
	"topo":      true,
	"graph":     true,
	"stats":     true,
	"parallel":  true,
	"telemetry": true,
	"control":   true,
	"analysis":  true,
}

// ObserverPackages names the observer-only packages: strictly
// read-only telemetry that may never call back into the engine, read
// the wall clock, or consume randomness.
var ObserverPackages = map[string]bool{
	"telemetry": true,
}

// EngineBannedFromObservers names the engine packages an observer-only
// package may not import or call: anything that routes, holds funds,
// schedules events or owns adaptive state.
var EngineBannedFromObservers = map[string]bool{
	"pcn":     true,
	"core":    true,
	"sim":     true,
	"event":   true,
	"route":   true,
	"trace":   true,
	"topo":    true,
	"graph":   true,
	"control": true,
	"stats":   true,
}

// ObserverReadAllowlist names the engine methods an observer could call
// even if an import were ever allowed by directive: pure accessors
// with no side effects on routing state.
var ObserverReadAllowlist = map[string]bool{
	"Name":        true,
	"String":      true,
	"Stats":       true,
	"Fingerprint": true,
}

// LockAcquireHelpers names the pcn functions that own multi-channel
// lock acquisition: they take every needed channel lock in ascending
// index order (the single global order that makes deadlock
// impossible), so they are the only places a channel-mutex Lock may
// appear inside a loop or while another channel lock is held.
var LockAcquireHelpers = map[string]bool{
	"lockAll":      true,
	"lockChannels": true,
}

// All returns the full flashvet analyzer suite in catalogue order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		LockOrderAnalyzer,
		ObserverAnalyzer,
		DocCommentAnalyzer,
	}
}

// byName scopes an analyzer to packages whose name is in set.
func byName(set map[string]bool) func(*Package) bool {
	return func(p *Package) bool { return set[p.Name] }
}
