// Package analysis is the repository's static-analysis engine:
// flashvet. It machine-checks the project-specific contracts that
// ordinary vet/staticcheck cannot see — the determinism rules the seed
// goldens and event-log fingerprints rest on, the pcn lock-ordering
// discipline, the telemetry observer-only contract, and the doc-comment
// gate formerly housed in internal/doclint — using only the standard
// library (go/ast, go/parser, go/types, go/importer).
//
// The engine is deliberately small: an Analyzer is a named Run function
// over a type-checked Package, diagnostics carry a stable
// "analyzer/rule" identifier, and audited exceptions are written in the
// source itself as
//
//	//flashvet:allow <analyzer>/<rule> <reason>
//
// on the flagged line or the line directly above it. Every directive
// must suppress at least one diagnostic — a stale directive is itself a
// diagnostic — so deleting or orphaning an annotation fails the gate.
// Analyzers are self-tested against fixture packages under testdata/src
// carrying `// want "regexp"` expected-diagnostic comments, and the
// whole suite runs over the repository both as a test (TestRepoClean)
// and as the cmd/flashvet CI gate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, a stable "analyzer/rule"
// identifier (what an allow directive must name to suppress it), and a
// human-readable message.
type Diagnostic struct {
	// Pos locates the finding in the package's file set.
	Pos token.Pos
	// Rule is the qualified rule identifier, e.g. "determinism/maprange".
	Rule string
	// Message describes the finding.
	Message string
}

// Pass carries one analyzer's view of one package and collects its
// diagnostics.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Pkg is the loaded, type-checked package under analysis.
	Pkg *Package

	diags []Diagnostic
}

// Reportf records a diagnostic at pos under the given qualified rule.
// The rule must be one the analyzer declared in Rules; undeclared rules
// panic, because an undeclared rule could never be suppressed or
// documented.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	if !p.Analyzer.owns(rule) {
		panic(fmt.Sprintf("analysis: analyzer %q reported undeclared rule %q", p.Analyzer.Name, rule))
	}
	p.diags = append(p.diags, Diagnostic{Pos: pos, Rule: rule, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one named check suite run over a package.
type Analyzer struct {
	// Name is the analyzer's short name, the first component of its
	// qualified rule identifiers.
	Name string
	// Doc is a one-paragraph description of the contract the analyzer
	// enforces.
	Doc string
	// Rules lists the qualified rule identifiers the analyzer may
	// report ("name/rule"). Allow directives are validated against the
	// union of all analyzers' rules.
	Rules []string
	// AppliesTo reports whether the analyzer audits the given package;
	// a nil AppliesTo audits every package. Scoping is by package —
	// e.g. determinism runs only on the deterministic packages.
	AppliesTo func(pkg *Package) bool
	// Run performs the analysis, reporting findings through the pass.
	Run func(*Pass) error
}

// owns reports whether rule is one of the analyzer's declared rules.
func (a *Analyzer) owns(rule string) bool {
	for _, r := range a.Rules {
		if r == rule {
			return true
		}
	}
	return false
}

// applies reports whether the analyzer audits pkg.
func (a *Analyzer) applies(pkg *Package) bool {
	return a.AppliesTo == nil || a.AppliesTo(pkg)
}

// DirectivePrefix is the comment prefix that marks an audited
// exception: `//flashvet:allow <analyzer>/<rule> <reason>`.
const DirectivePrefix = "//flashvet:allow"

// directive is one parsed //flashvet:allow comment.
type directive struct {
	pos    token.Pos
	line   int    // line the directive suppresses from (its own line)
	rule   string // qualified rule it allows
	reason string // mandatory justification
	used   bool   // did it suppress at least one diagnostic?
}

// directiveRules are the engine's own findings about allow directives.
const (
	// RuleDirectiveMalformed flags a directive missing its rule or
	// reason, or naming a rule no analyzer declares.
	RuleDirectiveMalformed = "directive/malformed"
	// RuleDirectiveUnused flags a directive that suppressed nothing —
	// the exception it documented no longer exists, so the annotation
	// must be deleted (keeping the audit trail honest).
	RuleDirectiveUnused = "directive/unused"
)

// parseDirectives extracts every flashvet directive from the package's
// comments. Malformed directives are returned as diagnostics.
func parseDirectives(pkg *Package, known map[string]bool) ([]*directive, []Diagnostic) {
	var dirs []*directive
	var diags []Diagnostic
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //flashvet:allowlist — not ours
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					diags = append(diags, Diagnostic{Pos: c.Pos(), Rule: RuleDirectiveMalformed,
						Message: "flashvet:allow directive missing rule and reason"})
				case len(fields) == 1:
					diags = append(diags, Diagnostic{Pos: c.Pos(), Rule: RuleDirectiveMalformed,
						Message: fmt.Sprintf("flashvet:allow %s missing reason — audited exceptions must say why", fields[0])})
				case !known[fields[0]]:
					diags = append(diags, Diagnostic{Pos: c.Pos(), Rule: RuleDirectiveMalformed,
						Message: fmt.Sprintf("flashvet:allow names unknown rule %q", fields[0])})
				default:
					dirs = append(dirs, &directive{
						pos:    c.Pos(),
						line:   pkg.Fset.Position(c.Pos()).Line,
						rule:   fields[0],
						reason: strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	return dirs, diags
}

// Result is the outcome of running a suite of analyzers over a set of
// packages.
type Result struct {
	// Diagnostics are the unsuppressed findings, in file/line order.
	Diagnostics []Diagnostic
	// Suppressed are findings silenced by an allow directive, kept for
	// auditing (flashvet -v prints them).
	Suppressed []Diagnostic
	// Fset positions every diagnostic.
	Fset *token.FileSet
}

// Run executes every applicable analyzer over every package, applies
// allow directives, and reports stale directives. It is the single
// entry point shared by the flashvet command, the repo-gate test and
// the fixture runner.
func Run(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		for _, r := range a.Rules {
			known[r] = true
		}
	}
	res := &Result{}
	for _, pkg := range pkgs {
		if res.Fset == nil {
			res.Fset = pkg.Fset
		}
		dirs, dirDiags := parseDirectives(pkg, known)
		res.Diagnostics = append(res.Diagnostics, dirDiags...)
		for _, a := range analyzers {
			if !a.applies(pkg) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if dir := matchDirective(dirs, pkg.Fset.Position(d.Pos).Line, d.Rule); dir != nil {
					dir.used = true
					res.Suppressed = append(res.Suppressed, d)
					continue
				}
				res.Diagnostics = append(res.Diagnostics, d)
			}
		}
		for _, dir := range dirs {
			if !dir.used {
				res.Diagnostics = append(res.Diagnostics, Diagnostic{Pos: dir.pos, Rule: RuleDirectiveUnused,
					Message: fmt.Sprintf("flashvet:allow %s suppresses nothing — delete the stale directive", dir.rule)})
			}
		}
	}
	sortDiagnostics(res.Fset, res.Diagnostics)
	sortDiagnostics(res.Fset, res.Suppressed)
	return res, nil
}

// matchDirective finds an unconsumed-or-not directive allowing rule on
// the diagnostic's line or the line directly above it.
func matchDirective(dirs []*directive, line int, rule string) *directive {
	for _, d := range dirs {
		if d.rule == rule && (d.line == line || d.line == line-1) {
			return d
		}
	}
	return nil
}

// sortDiagnostics orders diagnostics by file name, then line, then
// column, then rule — a stable order for goldens and CI output.
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	if fset == nil {
		return
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Rule < diags[j].Rule
	})
}

// Format renders one diagnostic as "file:line:col: rule: message".
func (r *Result) Format(d Diagnostic) string {
	pos := r.Fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d: %s: %s", pos.Filename, pos.Line, pos.Column, d.Rule, d.Message)
}

// exprIdent unwraps an expression to its base identifier: selectors,
// index expressions, parens, stars and calls are peeled until a plain
// identifier (or nil) remains. Shared by several analyzers to decide
// whether two sink expressions refer to the same underlying object.
func exprIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}
