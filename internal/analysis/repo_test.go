package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestRepoClean is the in-tree form of the flashvet CI gate: it loads
// every package in the module, runs the full analyzer suite, and
// requires zero unannotated diagnostics. Deleting any //flashvet:allow
// directive from the tree makes the underlying finding resurface here
// (and an orphaned directive is itself a directive/unused diagnostic),
// so the audit trail cannot silently rot.
func TestRepoClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader found no packages")
	}
	res, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("unannotated finding: %s", res.Format(d))
	}
	if len(res.Suppressed) == 0 {
		t.Error("expected at least one audited exception in the tree; the directive machinery is not being exercised")
	}
}

// parseTestPackage wraps a source string into a minimal *Package —
// enough for comment-level machinery that needs no type information.
func parseTestPackage(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "directive.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing test source: %v", err)
	}
	return &Package{Path: "p", Name: "p", Files: []*ast.File{f}, Fset: fset}
}

// TestParseDirectivesMalformed covers the malformed-directive shapes
// that cannot be expressed in a fixture file (a same-line want comment
// would be swallowed into the directive's reason text).
func TestParseDirectivesMalformed(t *testing.T) {
	known := map[string]bool{"determinism/wallclock": true}
	cases := []struct {
		name    string
		src     string
		message string
	}{
		{
			name:    "missing rule and reason",
			src:     "package p\n\n//flashvet:allow\nvar x = 1\n",
			message: "missing rule and reason",
		},
		{
			name:    "missing reason",
			src:     "package p\n\n//flashvet:allow determinism/wallclock\nvar x = 1\n",
			message: "missing reason",
		},
		{
			name:    "unknown rule",
			src:     "package p\n\n//flashvet:allow determinism/bogus because\nvar x = 1\n",
			message: `unknown rule "determinism/bogus"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkg := parseTestPackage(t, tc.src)
			dirs, diags := parseDirectives(pkg, known)
			if len(dirs) != 0 {
				t.Errorf("want no well-formed directives, got %d", len(dirs))
			}
			if len(diags) != 1 {
				t.Fatalf("want one malformed diagnostic, got %d", len(diags))
			}
			if diags[0].Rule != RuleDirectiveMalformed {
				t.Errorf("want rule %s, got %s", RuleDirectiveMalformed, diags[0].Rule)
			}
			if !strings.Contains(diags[0].Message, tc.message) {
				t.Errorf("message %q does not contain %q", diags[0].Message, tc.message)
			}
		})
	}
}

// TestParseDirectivesWellFormed checks a valid directive parses into
// its rule and reason, and that look-alike prefixes are not claimed.
func TestParseDirectivesWellFormed(t *testing.T) {
	known := map[string]bool{"determinism/wallclock": true}
	src := "package p\n\n" +
		"//flashvet:allow determinism/wallclock boot stamp only\n" +
		"var x = 1\n\n" +
		"//flashvet:allowlist not our directive\n" +
		"var y = 2\n"
	pkg := parseTestPackage(t, src)
	dirs, diags := parseDirectives(pkg, known)
	if len(diags) != 0 {
		t.Fatalf("want no malformed diagnostics, got %d: %v", len(diags), diags)
	}
	if len(dirs) != 1 {
		t.Fatalf("want one directive, got %d", len(dirs))
	}
	if dirs[0].rule != "determinism/wallclock" {
		t.Errorf("rule = %q", dirs[0].rule)
	}
	if dirs[0].reason != "boot stamp only" {
		t.Errorf("reason = %q", dirs[0].reason)
	}
	if dirs[0].line != 3 {
		t.Errorf("line = %d, want 3", dirs[0].line)
	}
}
