package analysis

import (
	"go/token"
	"path/filepath"
	"regexp"
	"testing"
)

// want is one expected-diagnostic clause from a `// want` comment.
type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantClauseRe extracts the quoted clauses after a want marker:
// double-quoted or backquoted regexps.
var wantClauseRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// wantMarkRe finds the want marker itself. The optional +N offset lets
// a fixture expect a diagnostic N lines below the comment — needed
// when a same-line comment would change the analyzed program (e.g. it
// would count as a doc comment).
var wantMarkRe = regexp.MustCompile(`want(\+\d+)?[ \t]`)

// collectWants scans every fixture comment for `// want` markers and
// returns the expected diagnostics keyed by file:line.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*Package) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					mark := wantMarkRe.FindStringSubmatchIndex(c.Text)
					if mark == nil {
						continue
					}
					offset := 0
					if mark[2] >= 0 {
						offset = atoi(c.Text[mark[2]+1 : mark[3]])
					}
					clauses := wantClauseRe.FindAllStringSubmatch(c.Text[mark[1]:], -1)
					if len(clauses) == 0 {
						continue
					}
					pos := fset.Position(c.Pos())
					key := posKey(pos.Filename, pos.Line+offset)
					for _, m := range clauses {
						expr := m[1]
						if m[2] != "" {
							expr = m[2]
						}
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, expr, err)
						}
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants
}

// posKey renders a file:line key.
func posKey(file string, line int) string {
	return file + ":" + itoa(line)
}

// atoi parses a small non-negative decimal; offsets are validated by
// wantMarkRe so no error path is needed.
func atoi(s string) int {
	n := 0
	for _, r := range s {
		n = n*10 + int(r-'0')
	}
	return n
}

// itoa avoids strconv for a tiny helper.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// runFixture loads one fixture group, runs the given analyzers, and
// checks the diagnostics against the group's want comments: every
// diagnostic must be wanted, and every want must be produced.
func runFixture(t *testing.T, group string, analyzers []*Analyzer) *Result {
	t.Helper()
	loader := NewFixtureLoader(filepath.Join("testdata", "src", group))
	pkgs, err := loader.LoadGroup()
	if err != nil {
		t.Fatalf("loading fixture group %s: %v", group, err)
	}
	res, err := Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", group, err)
	}
	wants := collectWants(t, loader.Fset, pkgs)
	for _, d := range res.Diagnostics {
		pos := res.Fset.Position(d.Pos)
		text := d.Rule + ": " + d.Message
		matched := false
		for _, w := range wants[posKey(pos.Filename, pos.Line)] {
			if w.re.MatchString(text) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", res.Format(d))
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q was not reported", key, w.re)
			}
		}
	}
	return res
}

func TestDeterminismFixtures(t *testing.T) {
	res := runFixture(t, "determinism", []*Analyzer{DeterminismAnalyzer})
	if len(res.Suppressed) == 0 {
		t.Error("expected the audited-exception fixture to exercise directive suppression")
	}
}

func TestLockOrderFixtures(t *testing.T) {
	runFixture(t, "lockorder", []*Analyzer{LockOrderAnalyzer})
}

func TestObserverFixtures(t *testing.T) {
	res := runFixture(t, "observer", []*Analyzer{ObserverAnalyzer})
	if len(res.Suppressed) != 1 {
		t.Errorf("want exactly one suppressed observer finding, got %d", len(res.Suppressed))
	}
}

func TestDocCommentFixtures(t *testing.T) {
	runFixture(t, "doccomment", []*Analyzer{DocCommentAnalyzer})
}

func TestDirectiveFixtures(t *testing.T) {
	res := runFixture(t, "directives", []*Analyzer{DeterminismAnalyzer})
	if len(res.Suppressed) != 2 {
		t.Errorf("want two suppressed findings (preceding-line and same-line directives), got %d", len(res.Suppressed))
	}
}
