package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the syntax trees of its
// non-test files plus full go/types information. Test files are
// excluded by design — the contracts flashvet enforces bind production
// code; tests may fake clocks, copy locks and iterate maps freely.
type Package struct {
	// Path is the package's import path ("repro/internal/pcn"), or the
	// bare directory name for fixture packages.
	Path string
	// Name is the package name from the package clauses.
	Name string
	// Dir is the directory the files were parsed from.
	Dir string
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
	// Fset positions all files of the load (shared across packages).
	Fset *token.FileSet
}

// Loader parses and type-checks packages inside one module, resolving
// module-internal imports from source and everything else (the
// standard library — this repository has no external dependencies)
// through go/importer's source importer. It caches by import path, so
// shared dependencies type-check once.
type Loader struct {
	// Fset positions every file the loader touches.
	Fset *token.FileSet

	root   string // module root directory (fixture group root for fixtures)
	module string // module path from go.mod ("" for fixture loads)
	std    types.ImporterFrom
	cache  map[string]*loadEntry
}

// loadEntry memoizes one package load, including its failure.
type loadEntry struct {
	pkg *Package
	err error
}

// NewLoader returns a loader rooted at the module directory containing
// go.mod. Pass the directory itself or any directory below it.
func NewLoader(dir string) (*Loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:  map[string]*loadEntry{},
	}, nil
}

// NewFixtureLoader returns a loader for a fixture group directory
// (testdata/src/<group>): every child directory is a package whose
// import path is its directory name, so fixtures can import fake
// sibling packages ("pcn") alongside the standard library.
func NewFixtureLoader(groupDir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:  fset,
		root:  groupDir,
		std:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache: map[string]*loadEntry{},
	}
}

// findModule walks up from dir to the go.mod and returns the module
// root directory and module path.
func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Load type-checks the package in the given directory (absolute, or
// relative to the module root).
func (l *Loader) Load(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.root, dir)
	}
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path, dir)
}

// LoadAll walks the module tree and type-checks every package —
// flashvet's "./..." expansion. testdata and hidden directories are
// skipped.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadGroup loads every package directory in a fixture group, sorted
// by name.
func (l *Loader) LoadGroup() ([]*Package, error) {
	entries, err := os.ReadDir(l.root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkg, err := l.load(e.Name(), filepath.Join(l.root, e.Name()))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// importPathFor maps a module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	switch {
	case l.module == "":
		return rel, nil // fixture group: path is the directory name
	case rel == ".":
		return l.module, nil
	default:
		return l.module + "/" + rel, nil
	}
}

// hasGoFiles reports whether dir holds at least one non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

// isSourceFile reports whether the entry is a non-test Go source file.
func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

// load parses and type-checks one package, memoized by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if e, ok := l.cache[path]; ok {
		if e == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	l.cache[path] = nil // cycle marker
	pkg, err := l.parseAndCheck(path, dir)
	l.cache[path] = &loadEntry{pkg: pkg, err: err}
	return pkg, err
}

// parseAndCheck does the actual parse + type-check for load.
func (l *Loader) parseAndCheck(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !isSourceFile(e) {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc{l}}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
		Fset:  l.Fset,
	}, nil
}

// importerFunc adapts the loader to types.ImporterFrom: module-internal
// (or fixture-sibling) imports resolve through the loader itself,
// everything else through the standard-library source importer.
type importerFunc struct{ l *Loader }

// Import resolves path relative to the module root.
func (f importerFunc) Import(path string) (*types.Package, error) {
	return f.ImportFrom(path, f.l.root, 0)
}

// ImportFrom implements types.ImporterFrom.
func (f importerFunc) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	l := f.l
	switch {
	case path == "unsafe":
		return types.Unsafe, nil
	case l.module != "" && (path == l.module || strings.HasPrefix(path, l.module+"/")):
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		dir := filepath.Join(l.root, filepath.FromSlash(rel))
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	case l.module == "" && !strings.Contains(path, "/") && dirExists(filepath.Join(l.root, path)):
		pkg, err := l.load(path, filepath.Join(l.root, path))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	default:
		return l.std.ImportFrom(path, l.root, 0)
	}
}

// dirExists reports whether p is an existing directory.
func dirExists(p string) bool {
	fi, err := os.Stat(p)
	return err == nil && fi.IsDir()
}
