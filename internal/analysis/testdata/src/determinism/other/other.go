// Package other is not a deterministic package, so the determinism
// analyzer must stay silent on patterns it would flag elsewhere.
package other

import "time"

// WallClockFine is allowed here: "other" is outside the determinism
// scope.
func WallClockFine() time.Time {
	return time.Now()
}

// MapOrderFine is likewise out of scope.
func MapOrderFine(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
