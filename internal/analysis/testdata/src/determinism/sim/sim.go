// Package sim is a determinism-analyzer fixture: it carries the name
// of a deterministic package, so every rule applies.
package sim

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// wallClock exercises the wallclock rule.
func wallClock() time.Duration {
	start := time.Now() // want `determinism/wallclock: time\.Now reads the wall clock`
	_ = start
	return time.Since(start) // want `determinism/wallclock: time\.Since reads the wall clock`
}

// allowedWallClock is an audited exception: the directive suppresses
// the finding, so no diagnostic is expected here.
func allowedWallClock() time.Time {
	//flashvet:allow determinism/wallclock fixture demonstrates an audited exception
	return time.Now()
}

// globalRand exercises the globalrand rule.
func globalRand() int {
	return rand.Intn(10) // want `determinism/globalrand: rand\.Intn draws from the process-global source`
}

// seededRand draws from an explicitly seeded source: allowed.
func seededRand() float64 {
	rng := rand.New(rand.NewSource(42))
	return rng.Float64()
}

// opaqueSource hides the seed provenance behind a variable: flagged.
func opaqueSource(src rand.Source) *rand.Rand {
	return rand.New(src) // want `determinism/randnew: rand\.New with a source that is not a literal rand\.NewSource`
}

// mapAppendUnsorted leaks map order into a slice: flagged.
func mapAppendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `determinism/maprange: map iteration order feeds append to keys`
		keys = append(keys, k)
	}
	return keys
}

// mapAppendSorted is the canonical fix — collect then sort: allowed.
func mapAppendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mapPrint writes map entries straight to a stream: flagged.
func mapPrint(w io.Writer, m map[string]int) {
	for k, v := range m { // want `determinism/maprange: map iteration order feeds fmt\.Fprintf output`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// mapWriteOuter feeds an outer builder from map order: flagged.
func mapWriteOuter(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `determinism/maprange: map iteration order feeds \.WriteString on b`
		b.WriteString(k)
	}
	return b.String()
}

// mapWriteLocal writes into a per-iteration buffer: the target dies
// with the iteration, so order cannot leak — allowed.
func mapWriteLocal(m map[string]int, out map[string]string) {
	for k := range m {
		var b strings.Builder
		b.WriteString(k)
		out[k] = b.String()
	}
}

// mapFloatAccum sums floats in map order: flagged.
func mapFloatAccum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `determinism/floataccum: floating-point accumulation into sum`
	}
	return sum
}

// mapIntAccum sums integers in map order: exact arithmetic, allowed.
func mapIntAccum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// mapToMap copies between maps — no ordered sink, allowed.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
