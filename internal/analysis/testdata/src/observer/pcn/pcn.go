// Package pcn is a fake engine package for the observer-analyzer
// fixture: its name is on the engine ban list.
package pcn

// Mutate stands in for a state-changing engine API.
func Mutate() {}

// Stats stands in for a read-only accessor on the allowlist.
func Stats() int { return 0 }
