// Package telemetry is an observer-analyzer fixture: it carries the
// observer package name, so the observer-only contract applies.
package telemetry

import (
	"math/rand"
	"time"

	"pcn" // want `observer/import: observer package imports engine package pcn`
)

// touchEngine calls into the engine: the mutating call is flagged, the
// allowlisted read-only accessor is not.
func touchEngine() int {
	pcn.Mutate() // want `observer/mutate: observer calls engine API pcn\.Mutate`
	return pcn.Stats()
}

// wallRead reads the wall clock in an observer.
func wallRead() time.Time {
	return time.Now() // want `observer/wallclock: time\.Now in an observer package`
}

// drawRandom consumes randomness in an observer.
func drawRandom() int {
	return rand.Intn(2) // want `observer/rand: observer package consumes randomness`
}

// stampWall shows the audited-exception path for an observer that
// must carry a wall-clock field stamped elsewhere.
func stampWall() int64 {
	//flashvet:allow observer/wallclock fixture demonstrates an audited exception
	return time.Now().UnixNano()
}
