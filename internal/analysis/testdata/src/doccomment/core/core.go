// Package core is a doccomment-analyzer fixture: it carries an
// audited package name, so every exported identifier needs a doc
// comment.
package core

// Documented is properly documented.
func Documented() {}

func Undocumented() {} // want `doccomment/exported: exported func Undocumented lacks a doc comment`

// Router is documented.
type Router struct{}

// Route is documented.
func (Router) Route() {}

func (Router) Lookup() {} // want `doccomment/exported: exported func Router\.Lookup lacks a doc comment`

type Table struct{} // want `doccomment/exported: exported type Table lacks a doc comment`

// Grouped constants share the group comment.
const (
	KindA = 1
	KindB = 2
)

// The blank line below keeps the expectation comment from attaching
// as Threshold's doc comment.
// want+2 `doccomment/exported: exported var Threshold lacks a doc comment`

var Threshold = 0.5

// MaxPaths has a doc comment.
var MaxPaths = 4

var private = 1

func helper() { _ = private }

var _ = helper
