// Package sim is a directive-machinery fixture: used, stale and
// malformed //flashvet:allow directives.
package sim

import "time"

// suppressedPreceding shows a directive on the line above the finding.
func suppressedPreceding() time.Time {
	//flashvet:allow determinism/wallclock audited exception with the directive on the preceding line
	return time.Now()
}

// suppressedSameLine shows a directive at the end of the flagged line.
func suppressedSameLine() time.Time {
	return time.Now() //flashvet:allow determinism/wallclock audited exception with the directive on the same line
}

// stale is an allow that suppresses nothing.
func stale() int {
	//flashvet:allow determinism/wallclock nothing on the next line reads the clock — stale // want `directive/unused: flashvet:allow determinism/wallclock suppresses nothing`
	return 1
}

// unknownRule names a rule no analyzer declares.
func unknownRule() int {
	//flashvet:allow determinism/bogus not a real rule // want `directive/malformed: flashvet:allow names unknown rule`
	return 3
}
