// Package pcn is a lock-order-analyzer fixture mirroring the real
// pcn's shape: per-channel mutexes, ascending-index acquire helpers,
// and atomic counters.
package pcn

import (
	"sync"
	"sync/atomic"
)

// channel mirrors the real per-channel lock-striped state.
type channel struct {
	mu  sync.Mutex
	bal float64
}

// counters carries an atomic — single-copy like a lock.
type counters struct {
	n atomic.Int64
}

// network is the lock-striped container.
type network struct {
	chans []channel
	stats counters
}

// lockChannels is an acquire helper: looped locking is its job.
func (n *network) lockChannels(idxs []int) {
	for _, i := range idxs {
		n.chans[i].mu.Lock()
	}
}

// lockAll is the whole-network acquire helper.
func (n *network) lockAll() {
	for i := range n.chans {
		n.chans[i].mu.Lock()
	}
}

// unlockAll releases in reverse; Unlock in a loop is always fine.
func (n *network) unlockAll() {
	for i := len(n.chans) - 1; i >= 0; i-- {
		n.chans[i].mu.Unlock()
	}
}

// single locks one channel for a scoped update: allowed.
func (n *network) single(i int) float64 {
	n.chans[i].mu.Lock()
	defer n.chans[i].mu.Unlock()
	return n.chans[i].bal
}

// sequential locks one channel, releases it, then locks another:
// never holds two at once, allowed.
func (n *network) sequential(i, j int) {
	n.chans[i].mu.Lock()
	n.chans[i].mu.Unlock()
	n.chans[j].mu.Lock()
	n.chans[j].mu.Unlock()
}

// loopedLock acquires channel locks in a loop outside the helpers.
func (n *network) loopedLock(idxs []int) {
	for _, i := range idxs {
		n.chans[i].mu.Lock() // want `lockorder/loop: mutex Lock inside a loop outside the ascending-index acquire helpers`
	}
}

// nestedLock takes a second channel lock while one is held.
func (n *network) nestedLock(i, j int) {
	n.chans[i].mu.Lock()
	defer n.chans[i].mu.Unlock()
	n.chans[j].mu.Lock() // want `lockorder/nested: second channel lock acquired while n\.chans\[i\]\.mu is held`
	defer n.chans[j].mu.Unlock()
}

// helperWhileHeld batch-acquires while already holding a lock.
func (n *network) helperWhileHeld(i int, idxs []int) {
	n.chans[i].mu.Lock()
	defer n.chans[i].mu.Unlock()
	n.lockChannels(idxs) // want `lockorder/nested: lockChannels called while a lock is already held`
}

// byValueParam copies a lock-bearing channel into the callee.
func byValueParam(c channel) float64 { // want `lockorder/copylock: parameter passes .*channel by value`
	return c.bal
}

// byValueAtomic copies an atomic-bearing struct.
func byValueAtomic(c counters) int64 { // want `lockorder/copylock: parameter passes .*counters by value`
	return c.n.Load()
}

// rangeCopy iterates channels by value, copying their mutexes.
func (n *network) rangeCopy() float64 {
	total := 0.0
	for _, c := range n.chans { // want `lockorder/copylock: range copies .*channel elements by value`
		total += c.bal
	}
	return total
}

// rangeIndex iterates by index: allowed.
func (n *network) rangeIndex() float64 {
	total := 0.0
	for i := range n.chans {
		total += n.chans[i].bal
	}
	return total
}

// assignCopy copies a channel out of the slice.
func (n *network) assignCopy(i int) {
	c := n.chans[i] // want `lockorder/copylock: assignment copies .*channel by value`
	_ = c
}

// pointerUse takes a pointer: allowed.
func (n *network) pointerUse(i int) {
	c := &n.chans[i]
	_ = c
}
