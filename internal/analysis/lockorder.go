package analysis

import (
	"go/ast"
	"go/types"
)

// Lock-order rule identifiers.
const (
	// RuleLockLoop flags a mutex Lock inside a for/range loop outside
	// the ascending-index acquire helpers — looped acquisition without
	// the global order is how lock cycles are born.
	RuleLockLoop = "lockorder/loop"
	// RuleLockNested flags a second lock acquisition on the same
	// owner type while one is already held in the same function: a
	// payment touching two channels must go through the two-phase
	// ascending-index helper, never lock them ad hoc.
	RuleLockNested = "lockorder/nested"
	// RuleCopyLock flags a by-value copy of a type containing a lock
	// or an atomic — copies split the lock from the state it guards.
	RuleCopyLock = "lockorder/copylock"
)

// LockOrderAnalyzer enforces pcn's deadlock-freedom discipline: every
// multi-channel lock acquisition goes through the ascending-index
// two-phase helpers (see the pcn package comment, "Locking model"),
// and lock-bearing values are never copied.
var LockOrderAnalyzer = &Analyzer{
	Name:      "lockorder",
	Doc:       "multi-channel lock acquisition must use the ascending-index helpers; no lock-in-loop outside them; no by-value copies of lock/atomic-bearing types",
	Rules:     []string{RuleLockLoop, RuleLockNested, RuleCopyLock},
	AppliesTo: byName(map[string]bool{"pcn": true}),
	Run:       runLockOrder,
}

// runLockOrder applies the three lock rules file by file.
func runLockOrder(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				checkCopyLockSignature(pass, n)
				if !LockAcquireHelpers[n.Name.Name] {
					checkLockLoops(pass, n)
					checkNestedLocks(pass, n)
				}
			case *ast.AssignStmt:
				checkCopyLockAssign(pass, n)
			case *ast.RangeStmt:
				checkCopyLockRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// mutexLockCall decomposes a call of the form recv.Lock()/recv.RLock()
// on a sync mutex, returning the receiver expression, the owning
// struct's type name (e.g. "channel" for n.chans[i].mu), and whether
// the call locks (as opposed to unlocks).
func mutexLockCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, owner string, lock, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		lock = true
	case "Unlock", "RUnlock":
	default:
		return nil, "", false, false
	}
	t := info.TypeOf(sel.X)
	if t == nil || !isSyncLock(t) {
		return nil, "", false, false
	}
	// The owner is the struct the mutex field lives in: for x.mu the
	// type of x; for a bare local mutex there is no owner.
	if fieldSel, isField := ast.Unparen(sel.X).(*ast.SelectorExpr); isField {
		if ot := info.TypeOf(fieldSel.X); ot != nil {
			owner = namedTypeName(ot)
		}
	}
	return sel.X, owner, lock, true
}

// isSyncLock reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncLock(t types.Type) bool {
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" &&
		(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

// namedTypeName unwraps pointers and returns the named type's name, or
// "" for unnamed types.
func namedTypeName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}

// checkLockLoops flags mutex Locks inside for/range statements in
// functions that are not acquire helpers.
func checkLockLoops(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	var loopDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			ast.Inspect(bodyOf(n), func(m ast.Node) bool { return walk(m) })
			loopDepth--
			return false
		case *ast.CallExpr:
			if _, _, lock, ok := mutexLockCall(info, n); ok && lock && loopDepth > 0 {
				pass.Reportf(n.Pos(), RuleLockLoop,
					"mutex Lock inside a loop outside the ascending-index acquire helpers (%s) — looped acquisition must go through them", helperNames())
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

// bodyOf returns the body block of a for or range statement.
func bodyOf(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

// helperNames renders the acquire-helper allowlist for messages.
func helperNames() string {
	names := make([]string, 0, len(LockAcquireHelpers))
	for n := range LockAcquireHelpers {
		names = append(names, n)
	}
	// Deterministic message text: the set is tiny, sort by insertion
	// into a fixed order.
	if len(names) == 2 && names[0] > names[1] {
		names[0], names[1] = names[1], names[0]
	}
	return names[0] + "/" + names[1]
}

// checkNestedLocks walks fn's statements in source order tracking
// which mutexes are held, and flags a second acquisition on the same
// owner type — or a call into an acquire helper — while one is held.
// The scan is intra-function and textual: it cannot see locks held by
// callers, which is exactly why multi-lock acquisition is confined to
// the audited helpers.
func checkNestedLocks(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	held := map[string]string{} // receiver expr string → owner type
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock releases at return; the lock stays
			// held for the rest of the scan. Skip so the Unlock is
			// not treated as an immediate release.
			return false
		case *ast.FuncLit:
			return false // closure bodies run elsewhere
		case *ast.CallExpr:
			if recv, owner, lock, ok := mutexLockCall(info, n); ok {
				key := types.ExprString(recv)
				if !lock {
					delete(held, key)
					return true
				}
				if owner != "" {
					for heldKey, heldOwner := range held {
						if heldOwner == owner && heldKey != key {
							pass.Reportf(n.Pos(), RuleLockNested,
								"second %s lock acquired while %s is held — multi-channel acquisition must go through the ascending-index helpers (%s)",
								owner, heldKey, helperNames())
							break
						}
					}
				}
				held[key] = owner
				return true
			}
			if callee := calleeFunc(info, n); callee != nil && LockAcquireHelpers[callee.Name()] && len(held) > 0 {
				pass.Reportf(n.Pos(), RuleLockNested,
					"%s called while a lock is already held — release before batch-acquiring, or fold the lock into the batch", callee.Name())
			}
		}
		return true
	})
}

// checkCopyLockSignature flags by-value lock-bearing parameters,
// results and receivers.
func checkCopyLockSignature(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	check := func(fields *ast.FieldList, what string) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			t := info.TypeOf(f.Type)
			if t == nil || !containsLock(t) {
				continue
			}
			pass.Reportf(f.Type.Pos(), RuleCopyLock,
				"%s passes %s by value — it contains a lock or atomic; use a pointer", what, types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
		}
	}
	check(fn.Recv, "receiver")
	check(fn.Type.Params, "parameter")
	check(fn.Type.Results, "result")
}

// checkCopyLockAssign flags assignments that copy a lock-bearing value
// out of an existing variable (composite literals and function results
// construct fresh values and are fine).
func checkCopyLockAssign(pass *Pass, assign *ast.AssignStmt) {
	info := pass.Pkg.Info
	for i, rhs := range assign.Rhs {
		if i < len(assign.Lhs) {
			if id, ok := assign.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				continue
			}
		}
		switch ast.Unparen(rhs).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			continue
		}
		t := info.TypeOf(rhs)
		if t == nil || !containsLock(t) {
			continue
		}
		pass.Reportf(rhs.Pos(), RuleCopyLock,
			"assignment copies %s by value — it contains a lock or atomic; use a pointer", types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
	}
}

// checkCopyLockRange flags `for _, v := range xs` where the element
// copy carries a lock.
func checkCopyLockRange(pass *Pass, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	info := pass.Pkg.Info
	t := info.TypeOf(rng.Value)
	if t == nil || !containsLock(t) {
		return
	}
	pass.Reportf(rng.Value.Pos(), RuleCopyLock,
		"range copies %s elements by value — they contain a lock or atomic; range over indices", types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
}

// containsLock reports whether t (by value) transitively contains a
// sync lock primitive or a sync/atomic value type.
func containsLock(t types.Type) bool {
	return containsLockRec(t, map[types.Type]bool{})
}

// containsLockRec is containsLock with a visited set guarding against
// recursive types.
func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		if pkg := n.Obj().Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync":
				switch n.Obj().Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
					return true
				}
			case "sync/atomic":
				return true // every exported sync/atomic type is single-copy
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}
