package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism rule identifiers.
const (
	// RuleWallclock flags wall-clock reads (time.Now/Since/Until) in a
	// deterministic package: virtual-time code must never observe the
	// wall clock, or identical seeds stop replaying identical bytes.
	RuleWallclock = "determinism/wallclock"
	// RuleGlobalRand flags the global math/rand top-level functions,
	// whose shared process-global source is randomly seeded since
	// Go 1.20 — every draw must come from an explicitly seeded *Rand.
	RuleGlobalRand = "determinism/globalrand"
	// RuleRandNew flags rand.New calls whose source is not a literal
	// rand.NewSource(seed) — seed provenance must be syntactically
	// visible at the construction site.
	RuleRandNew = "determinism/randnew"
	// RuleMapRange flags a range over a map whose loop body feeds an
	// order-sensitive sink (slice append, event enqueue, writer/hash
	// output) with no intervening sort: map iteration order is
	// randomized per run, so the sink's bytes differ run to run.
	RuleMapRange = "determinism/maprange"
	// RuleFloatAccum flags floating-point accumulation (+=, -=, *=,
	// /=) into a loop-invariant target inside a map range: float
	// arithmetic does not commute in rounding, so the low bits of the
	// sum depend on iteration order. Integer accumulation is exact and
	// exempt.
	RuleFloatAccum = "determinism/floataccum"
)

// DeterminismAnalyzer enforces the replay-determinism contract in the
// deterministic packages: identical seeds must produce identical
// bytes, so nothing in them may read the wall clock, draw from global
// randomness, or let map-iteration order reach an ordered sink.
var DeterminismAnalyzer = &Analyzer{
	Name:      "determinism",
	Doc:       "forbid wall-clock reads, global/unseeded randomness, and map-iteration order leaking into ordered sinks in the deterministic packages",
	Rules:     []string{RuleWallclock, RuleGlobalRand, RuleRandNew, RuleMapRange, RuleFloatAccum},
	AppliesTo: byName(DeterministicPackages),
	Run:       runDeterminism,
}

// runDeterminism walks every file for the four determinism rules.
func runDeterminism(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkDeterministicCall applies the wallclock, globalrand and randnew
// rules to one call expression.
func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch pkg {
	case "time":
		if isPackageFunc(fn) && (name == "Now" || name == "Since" || name == "Until") {
			pass.Reportf(call.Pos(), RuleWallclock,
				"time.%s reads the wall clock in a deterministic package — use virtual time, or annotate an observer-only metric", name)
		}
	case "math/rand", "math/rand/v2":
		if !isPackageFunc(fn) {
			return // methods on an explicitly constructed *rand.Rand are fine
		}
		switch name {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			if name == "New" && !seededRandNew(pass.Pkg.Info, call) {
				pass.Reportf(call.Pos(), RuleRandNew,
					"rand.New with a source that is not a literal rand.NewSource(seed) — seed provenance must be visible at the construction site")
			}
		default:
			pass.Reportf(call.Pos(), RuleGlobalRand,
				"rand.%s draws from the process-global source — use an explicitly seeded *rand.Rand", name)
		}
	}
}

// isPackageFunc reports whether fn is a package-level function (not a
// method).
func isPackageFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// seededRandNew reports whether a rand.New call's argument is a direct
// rand.NewSource / rand.NewPCG / rand.NewChaCha8 call.
func seededRandNew(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	src, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, src)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "NewSource", "NewPCG", "NewChaCha8":
			return true
		}
	}
	return false
}

// checkMapRanges audits every range-over-map statement in fn for
// order-sensitive sinks in its body.
func checkMapRanges(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(pass.Pkg.Info, rng) {
			return true
		}
		if sink := findOrderSink(pass, fn, rng); sink != "" {
			pass.Reportf(rng.Pos(), RuleMapRange,
				"map iteration order feeds %s — iterate sorted keys, sort the result before it is consumed, or annotate why order cannot matter", sink)
		}
		checkFloatAccum(pass, rng)
		return true
	})
}

// checkFloatAccum flags order-dependent floating-point accumulation
// inside one map-range body (nested map-ranges are audited on their
// own).
func checkFloatAccum(pass *Pass, rng *ast.RangeStmt) {
	info := pass.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rng && isMapRange(info, inner) {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch assign.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		lhs := assign.Lhs[0]
		if !isFloat(info.TypeOf(lhs)) {
			return true
		}
		target := targetObject(info, lhs)
		if target == nil || definedWithin(target, rng.Body) {
			return true
		}
		pass.Reportf(assign.Pos(), RuleFloatAccum,
			"floating-point accumulation into %s in map-iteration order — rounding depends on order; iterate sorted keys or annotate why the low bits cannot matter", target.Name())
		return true
	})
}

// isFloat reports whether t has a floating-point basic kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isMapRange reports whether rng iterates a map.
func isMapRange(info *types.Info, rng *ast.RangeStmt) bool {
	t := info.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// findOrderSink scans the body of a map-range for the first
// order-sensitive sink whose target outlives one iteration, skipping
// nested map-ranges (audited on their own). It returns a description
// of the sink, or "" if the body is order-insensitive.
func findOrderSink(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) string {
	info := pass.Pkg.Info
	var sink string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rng && isMapRange(info, inner) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sink = classifySink(pass, fn, rng, call)
		return sink == ""
	})
	return sink
}

// classifySink decides whether one call inside a map-range body is an
// order-sensitive sink: a slice append (unless the slice is sorted
// later in the function), fmt output, or a Write/Push/Enqueue-style
// method on a target declared outside the loop body.
func classifySink(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, call *ast.CallExpr) string {
	info := pass.Pkg.Info
	switch callee := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if isBuiltinAppend(info, callee) && len(call.Args) > 0 {
			target := targetObject(info, call.Args[0])
			if target == nil || definedWithin(target, rng.Body) {
				return ""
			}
			if sortedAfter(info, fn, rng, target) {
				return ""
			}
			return "append to " + target.Name()
		}
	case *ast.SelectorExpr:
		fnObj := calleeFunc(info, call)
		if fnObj != nil && fnObj.Pkg() != nil && fnObj.Pkg().Path() == "fmt" && isPackageFunc(fnObj) {
			switch name := fnObj.Name(); name {
			case "Print", "Println", "Printf":
				return "fmt." + name + " output"
			case "Fprint", "Fprintln", "Fprintf":
				if len(call.Args) > 0 {
					if target := targetObject(info, call.Args[0]); target != nil && definedWithin(target, rng.Body) {
						return ""
					}
				}
				return "fmt." + name + " output"
			}
			return ""
		}
		if !orderSinkMethod(callee.Sel.Name) {
			return ""
		}
		// A method call: order-sensitive only when the receiver
		// outlives the iteration (a per-iteration buffer is fine).
		if sel, ok := info.Selections[callee]; ok && sel.Kind() == types.MethodVal {
			target := targetObject(info, callee.X)
			if target == nil || definedWithin(target, rng.Body) {
				return ""
			}
			return "." + callee.Sel.Name + " on " + target.Name()
		}
	}
	return ""
}

// orderSinkMethod reports whether a method name denotes an
// order-sensitive sink: stream/hash writes and event-queue inserts.
func orderSinkMethod(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Push", "Enqueue", "Schedule":
		return true
	}
	return false
}

// isBuiltinAppend reports whether id resolves to the append builtin.
func isBuiltinAppend(info *types.Info, id *ast.Ident) bool {
	if id.Name != "append" {
		return false
	}
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// targetObject resolves the object a sink expression ultimately writes
// through (the base identifier of a selector/index chain).
func targetObject(info *types.Info, e ast.Expr) types.Object {
	id := exprIdent(e)
	if id == nil {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// definedWithin reports whether obj is declared inside node's source
// span — a per-iteration local rather than an accumulator.
func definedWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() != token.NoPos && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// sortedAfter reports whether fn's body, after the range statement,
// sorts the object the loop appended to — the canonical
// collect-then-sort fix for map iteration.
func sortedAfter(info *types.Info, fn *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil || callee.Pkg() == nil || !isSortFunc(callee) {
			return true
		}
		for _, arg := range call.Args {
			if targetObject(info, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortFunc reports whether fn is a sort/slices ordering function.
func isSortFunc(fn *types.Func) bool {
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, conversions and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
