package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Server is the telemetry HTTP endpoint behind the daemons' -telemetry
// flag: /metrics (Prometheus text), /metrics.json (JSON lines), /flows
// (buffered flow records as JSONL; ?follow=1 streams live ones), and
// the standard net/http/pprof handlers under /debug/pprof/.
type Server struct {
	reg   *Registry
	flows *FlowLog
	ln    net.Listener
	srv   *http.Server
	done  chan struct{}
}

// NewServer binds addr immediately (so flag typos fail fast) and serves
// in a background goroutine. Either reg or flows may be nil; the
// corresponding endpoints then report 404.
func NewServer(addr string, reg *Registry, flows *FlowLog) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{reg: reg, flows: flows, ln: ln, done: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/flows", s.handleFlows)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // returns http.ErrServerClosed on shutdown
	}()
	return s, nil
}

// Addr returns the bound listen address (useful when addr was ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close drains in-flight requests with a short grace period, then tears
// the server down. Safe to call once.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		err = s.srv.Close()
	}
	<-s.done
	return err
}

func (s *Server) handleIndex(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path != "/" {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "flash telemetry\n\n/metrics\t\tPrometheus text format\n/metrics.json\tJSON lines\n/flows\t\tbuffered flow records (JSONL); ?follow=1 to stream\n/debug/pprof/\truntime profiles\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if s.reg == nil {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, req *http.Request) {
	if s.reg == nil {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = s.reg.WriteJSONLines(w)
}

// handleFlows dumps the ring buffer as JSONL. With ?follow=1 it then
// subscribes to live records and streams them until the client goes
// away; a slow client misses records instead of stalling payments.
func (s *Server) handleFlows(w http.ResponseWriter, req *http.Request) {
	if s.flows == nil {
		http.NotFound(w, req)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	var buf []byte
	for _, rec := range s.flows.Snapshot() {
		buf = rec.AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return
		}
	}
	if req.URL.Query().Get("follow") == "" {
		return
	}
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush()
	}
	ch := s.flows.subscribe(256)
	defer s.flows.unsubscribe(ch)
	for {
		select {
		case rec := <-ch:
			buf = rec.AppendJSON(buf[:0])
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		case <-req.Context().Done():
			return
		}
	}
}

// RegisterRuntimeMetrics adds Go runtime gauges (goroutines, heap
// bytes, GC cycles) to reg — the baseline set every daemon exposes.
func RegisterRuntimeMetrics(reg *Registry) {
	reg.GaugeFunc("go_goroutines", "Number of live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	reg.GaugeFunc("go_gc_cycles_total", "Completed GC cycles.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.NumGC)
	})
}
