package telemetry

import (
	"io"
	"sync"
)

// JSONLSink writes one JSON line per flow record to an io.Writer.
// Serialisation happens off the payment path: Emit copies the record
// into a double-buffered batch under a short mutex (no encoding, no
// I/O, and — at steady state — no allocation; see chunkCap), and a
// single background goroutine swaps the batch out, encodes into a
// reused buffer, and writes in emission order. Safe for concurrent
// Emit calls. Write errors are sticky — the first one is kept, later
// records are dropped — so a full disk surfaces once via Err instead
// of spamming. Close drains everything accepted so far, stops the
// writer, and returns the sticky error; callers that hand the sink a
// buffered writer must Close before flushing it (the background
// goroutine writes until then).
type JSONLSink struct {
	w io.Writer

	mu     sync.Mutex
	active []FlowRecord // producer side of the double buffer
	spare  []FlowRecord // writer side, swapped with active when drained
	closed bool
	err    error
	n      uint64 // records written

	wake chan struct{} // 1-buffered writer doorbell; signals coalesce
	done chan struct{}
}

// chunkCap pre-sizes both batch buffers so a bounded emit backlog
// never grows them: the hot path stays allocation-free unless the
// writer falls more than chunkCap records behind (then append growth
// amortises).
const chunkCap = 512

// NewJSONLSink wraps w in a JSONL flow sink and starts its writer
// goroutine; call Close to stop it and drain pending records.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{
		w:      w,
		active: make([]FlowRecord, 0, chunkCap),
		spare:  make([]FlowRecord, 0, chunkCap),
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	go s.run()
	return s
}

// Emit implements Sink: the record is copied into the pending batch
// and written asynchronously. Records emitted after Close, or after a
// write error, are dropped.
func (s *JSONLSink) Emit(r *FlowRecord) {
	s.mu.Lock()
	if s.closed || s.err != nil {
		s.mu.Unlock()
		return
	}
	s.active = append(s.active, *r)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// run is the writer goroutine: it swaps out the pending batch and
// streams it, reusing one encode buffer across all records.
func (s *JSONLSink) run() {
	defer close(s.done)
	var buf []byte
	for {
		s.mu.Lock()
		for len(s.active) == 0 {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.mu.Unlock()
			<-s.wake
			s.mu.Lock()
		}
		batch := s.active
		s.active = s.spare[:0]
		s.mu.Unlock()

		var (
			written int
			werr    error
		)
		for i := range batch {
			buf = batch[i].AppendJSON(buf[:0])
			buf = append(buf, '\n')
			if _, werr = s.w.Write(buf); werr != nil {
				break
			}
			written++
		}

		s.mu.Lock()
		s.spare = batch[:0]
		s.n += uint64(written)
		if werr != nil && s.err == nil {
			s.err = werr
		}
		s.mu.Unlock()
	}
}

// Close drains the records accepted so far, stops the writer
// goroutine, and returns the sticky write error, if any. Safe to call
// more than once.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	<-s.done
	return s.Err()
}

// Count returns the number of records successfully written so far.
// Only after Close does it cover every emitted record.
func (s *JSONLSink) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// FlowLog is an in-memory flight-recorder ring: it keeps the most
// recent records (by value, so the pooled originals recycle freely) and
// fans live records out to subscribers — the sink behind a daemon's
// /flows endpoint. Safe for concurrent use.
type FlowLog struct {
	mu    sync.Mutex
	buf   []FlowRecord
	start int // index of the oldest record
	count int // records currently buffered
	total uint64
	subs  map[chan FlowRecord]struct{}
}

// NewFlowLog returns a ring holding up to capacity records (minimum 1).
func NewFlowLog(capacity int) *FlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &FlowLog{
		buf:  make([]FlowRecord, capacity),
		subs: make(map[chan FlowRecord]struct{}),
	}
}

// Emit implements Sink: the record is copied into the ring and offered
// to every subscriber without blocking (a slow subscriber misses
// records rather than stalling the payment path).
func (l *FlowLog) Emit(r *FlowRecord) {
	rec := *r
	l.mu.Lock()
	idx := (l.start + l.count) % len(l.buf)
	if l.count == len(l.buf) {
		l.start = (l.start + 1) % len(l.buf)
	} else {
		l.count++
	}
	l.buf[idx] = rec
	l.total++
	for ch := range l.subs {
		select {
		case ch <- rec:
		default:
		}
	}
	l.mu.Unlock()
}

// Snapshot returns the buffered records, oldest first.
func (l *FlowLog) Snapshot() []FlowRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]FlowRecord, l.count)
	for i := 0; i < l.count; i++ {
		out[i] = l.buf[(l.start+i)%len(l.buf)]
	}
	return out
}

// Total returns the number of records ever emitted (including those the
// ring has since evicted).
func (l *FlowLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// subscribe registers a live-record channel with the given buffer. The
// caller must unsubscribe when done.
func (l *FlowLog) subscribe(buffer int) chan FlowRecord {
	ch := make(chan FlowRecord, buffer)
	l.mu.Lock()
	l.subs[ch] = struct{}{}
	l.mu.Unlock()
	return ch
}

// unsubscribe removes a channel registered by subscribe.
func (l *FlowLog) unsubscribe(ch chan FlowRecord) {
	l.mu.Lock()
	delete(l.subs, ch)
	l.mu.Unlock()
}
