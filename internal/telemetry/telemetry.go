// Package telemetry is the repository's flight recorder: structured
// per-payment flow records, a small dependency-free metrics registry
// (counters, gauges, fixed-bucket histograms) with Prometheus-text and
// JSONL exporters, and an HTTP server exposing /metrics, /flows and
// net/http/pprof on the long-lived daemons.
//
// The package is strictly observer-only by design. Nothing in it
// consumes randomness, takes simulation-level locks, or feeds back into
// routing decisions: a harness with every sink enabled must produce
// event-log fingerprints and CLI bytes identical to a run with
// telemetry off (the sim package's equivalence tests pin this). Flow
// records carry *virtual* time in dynamic runs — the emitting harness
// stamps them from its own clock, never from time.Now.
//
// The hot-path contract: a nil Sink costs one branch; a live sink costs
// one pooled record (AcquireFlow/ReleaseFlow) plus the sink's Emit.
// Sink implementations must not retain the record after Emit returns —
// the caller recycles it — and must be safe for concurrent Emit calls,
// because concurrent replays hammer one sink from many workers.
package telemetry

import (
	"strconv"
	"sync"
)

// Payment classes stamped into FlowRecord.Class, matching the paper's
// mice/elephant differentiation.
const (
	ClassMouse    = "mouse"
	ClassElephant = "elephant"
)

// Flow outcomes stamped into FlowRecord.Outcome.
const (
	// OutcomeDelivered marks a payment whose full demand committed.
	OutcomeDelivered = "delivered"
	// OutcomeFailed marks a payment undelivered after every attempt
	// (insufficient capacity, no route, or lost hold races).
	OutcomeFailed = "failed"
	// OutcomeSpanAbort marks a payment whose deferred commit aborted
	// because churn closed a held channel mid-span — the HTLC-timeout
	// analogue, and the dynamic engine's churn-invalidation cause.
	OutcomeSpanAbort = "span-abort"
	// OutcomeDeadlineExpired marks a payment whose hold span was torn
	// down at its HTLC deadline before the commit could settle
	// (DynamicOptions.Deadline).
	OutcomeDeadlineExpired = "deadline-expired"
)

// FlowRecord is the flight-recorder entry for one completed payment:
// who paid whom how much, what the routing spent to move it (attempts,
// probe rounds and messages, paths, fees), when it arrived and
// completed in virtual time, and how it ended. One record is emitted
// per payment — not per attempt — after the final attempt settles.
type FlowRecord struct {
	// ID is the workload payment ID.
	ID int64
	// Scheme is the routing scheme that carried the payment.
	Scheme string
	// Sender and Receiver are the payment endpoints.
	Sender, Receiver int64
	// Amount is the payment demand.
	Amount float64
	// Class is ClassMouse or ClassElephant, judged against the metrics
	// threshold in force when the payment completed.
	Class string
	// Attempts is the number of routing attempts made (1 + retries
	// actually used).
	Attempts int
	// ProbeRounds counts distinct Probe operations across all attempts
	// (one per path measured); ProbeMessages counts the messages those
	// probes cost (2·hops each).
	ProbeRounds   int
	ProbeMessages int64
	// CommitMessages counts COMMIT/CONFIRM/REVERSE legs across all
	// attempts.
	CommitMessages int64
	// Paths is the number of paths the final attempt held funds on.
	Paths int
	// Fees is the total fee paid (0 unless delivered).
	Fees float64
	// Arrival and Complete are the payment's virtual arrival and
	// completion instants in seconds. Static replays stamp the trace
	// timestamp into both; real-time harnesses (the TCP testbed) stamp
	// seconds since workload start.
	Arrival, Complete float64
	// ProbeLatency and CommitLatency are the virtual latency the
	// payment's protocol legs were charged, in seconds, split like the
	// message counters: probe round trips vs COMMIT/CONFIRM/REVERSE
	// legs. Zero unless the network carries per-channel RTTs.
	ProbeLatency, CommitLatency float64
	// WallNS is the wall-clock routing time in nanoseconds — observer
	// information only, never part of any deterministic contract.
	WallNS int64
	// Outcome is OutcomeDelivered, OutcomeFailed, OutcomeSpanAbort or
	// OutcomeDeadlineExpired.
	Outcome string
}

// Sink receives completed flow records. Implementations must be safe
// for concurrent Emit calls and must not retain r after Emit returns:
// the caller owns the record and recycles it through the pool. Copy it
// (a value copy suffices — the struct holds only scalars and immutable
// strings) to keep it.
type Sink interface {
	Emit(r *FlowRecord)
}

// flowPool recycles records so the emission hot path allocates nothing
// at steady state (guarded by an AllocsPerRun test).
var flowPool = sync.Pool{New: func() any { return new(FlowRecord) }}

// AcquireFlow returns a zeroed record from the pool. Pair with
// ReleaseFlow after the sink's Emit returns.
func AcquireFlow() *FlowRecord {
	return flowPool.Get().(*FlowRecord)
}

// ReleaseFlow zeroes r and returns it to the pool.
func ReleaseFlow(r *FlowRecord) {
	*r = FlowRecord{}
	flowPool.Put(r)
}

// MultiSink fans one record out to several sinks in order.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(r *FlowRecord) {
	for _, s := range m {
		s.Emit(r)
	}
}

// AppendJSON appends the record as a single-line JSON object to buf and
// returns the extended slice. The field order is fixed and the encoding
// allocation-free once buf has capacity, which is what lets JSONLSink
// emit at zero allocations per record at steady state.
func (r *FlowRecord) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"id":`...)
	buf = strconv.AppendInt(buf, r.ID, 10)
	buf = append(buf, `,"scheme":`...)
	buf = appendJSONString(buf, r.Scheme)
	buf = append(buf, `,"sender":`...)
	buf = strconv.AppendInt(buf, r.Sender, 10)
	buf = append(buf, `,"receiver":`...)
	buf = strconv.AppendInt(buf, r.Receiver, 10)
	buf = append(buf, `,"amount":`...)
	buf = appendJSONFloat(buf, r.Amount)
	buf = append(buf, `,"class":`...)
	buf = appendJSONString(buf, r.Class)
	buf = append(buf, `,"attempts":`...)
	buf = strconv.AppendInt(buf, int64(r.Attempts), 10)
	buf = append(buf, `,"probeRounds":`...)
	buf = strconv.AppendInt(buf, int64(r.ProbeRounds), 10)
	buf = append(buf, `,"probeMsgs":`...)
	buf = strconv.AppendInt(buf, r.ProbeMessages, 10)
	buf = append(buf, `,"commitMsgs":`...)
	buf = strconv.AppendInt(buf, r.CommitMessages, 10)
	buf = append(buf, `,"paths":`...)
	buf = strconv.AppendInt(buf, int64(r.Paths), 10)
	buf = append(buf, `,"fees":`...)
	buf = appendJSONFloat(buf, r.Fees)
	buf = append(buf, `,"arrival":`...)
	buf = appendJSONFloat(buf, r.Arrival)
	buf = append(buf, `,"complete":`...)
	buf = appendJSONFloat(buf, r.Complete)
	buf = append(buf, `,"probeLat":`...)
	buf = appendJSONFloat(buf, r.ProbeLatency)
	buf = append(buf, `,"commitLat":`...)
	buf = appendJSONFloat(buf, r.CommitLatency)
	buf = append(buf, `,"wallNs":`...)
	buf = strconv.AppendInt(buf, r.WallNS, 10)
	buf = append(buf, `,"outcome":`...)
	buf = appendJSONString(buf, r.Outcome)
	return append(buf, '}')
}

// appendJSONString quotes s. Scheme/class/outcome strings are plain
// identifiers, so the fast path is a bare copy; anything containing a
// character that needs escaping falls back to strconv.AppendQuote.
func appendJSONString(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x7f {
			return strconv.AppendQuote(buf, s)
		}
	}
	buf = append(buf, '"')
	buf = append(buf, s...)
	return append(buf, '"')
}

// appendJSONFloat renders v in Go's shortest-round-trip format; NaN and
// ±Inf (not representable in JSON) render as null.
func appendJSONFloat(buf []byte, v float64) []byte {
	if v != v || v > maxFinite || v < -maxFinite {
		return append(buf, "null"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// maxFinite is math.MaxFloat64, spelled out to keep the hot-path file
// free of a math import for one constant.
const maxFinite = 0x1.fffffffffffffp+1023
