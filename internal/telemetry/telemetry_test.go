package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func sampleRecord(id int64) *FlowRecord {
	return &FlowRecord{
		ID:             id,
		Scheme:         "Flash",
		Sender:         3,
		Receiver:       7,
		Amount:         12.5,
		Class:          ClassElephant,
		Attempts:       2,
		ProbeRounds:    4,
		ProbeMessages:  18,
		CommitMessages: 9,
		Paths:          3,
		Fees:           0.125,
		Arrival:        100.5,
		Complete:       101.25,
		ProbeLatency:   0.375,
		CommitLatency:  0.0625,
		WallNS:         42_000,
		Outcome:        OutcomeDelivered,
	}
}

func TestAppendJSONRoundTrip(t *testing.T) {
	r := sampleRecord(11)
	line := r.AppendJSON(nil)
	var got map[string]any
	if err := json.Unmarshal(line, &got); err != nil {
		t.Fatalf("AppendJSON produced invalid JSON %q: %v", line, err)
	}
	want := map[string]any{
		"id": 11.0, "scheme": "Flash", "sender": 3.0, "receiver": 7.0,
		"amount": 12.5, "class": "elephant", "attempts": 2.0,
		"probeRounds": 4.0, "probeMsgs": 18.0, "commitMsgs": 9.0,
		"paths": 3.0, "fees": 0.125, "arrival": 100.5, "complete": 101.25,
		"probeLat": 0.375, "commitLat": 0.0625,
		"wallNs": 42000.0, "outcome": "delivered",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d fields, want %d: %q", len(got), len(want), line)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("field %q = %v, want %v", k, got[k], v)
		}
	}
}

func TestAppendJSONEscapesAndNonFinite(t *testing.T) {
	r := &FlowRecord{Scheme: "a\"b\\c\n", Amount: math.NaN(), Fees: math.Inf(1)}
	line := r.AppendJSON(nil)
	var got map[string]any
	if err := json.Unmarshal(line, &got); err != nil {
		t.Fatalf("invalid JSON %q: %v", line, err)
	}
	if got["scheme"] != "a\"b\\c\n" {
		t.Errorf("scheme = %q", got["scheme"])
	}
	if got["amount"] != nil || got["fees"] != nil {
		t.Errorf("non-finite floats should render null: amount=%v fees=%v", got["amount"], got["fees"])
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	for i := int64(0); i < 3; i++ {
		s.Emit(sampleRecord(i))
	}
	if err := s.Close(); err != nil { // drains the async writer
		t.Fatal(err)
	}
	if s.Count() != 3 {
		t.Fatalf("Count=%d, want 3", s.Count())
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, ln := range lines {
		var got map[string]any
		if err := json.Unmarshal([]byte(ln), &got); err != nil {
			t.Fatalf("line %d invalid: %v", i, err)
		}
		if got["id"] != float64(i) {
			t.Errorf("line %d id = %v", i, got["id"])
		}
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	w.n--
	return len(p), nil
}

func TestJSONLSinkStickyError(t *testing.T) {
	s := NewJSONLSink(&failWriter{n: 1})
	s.Emit(sampleRecord(0))
	s.Emit(sampleRecord(1))
	s.Emit(sampleRecord(2))
	if err := s.Close(); err != io.ErrClosedPipe {
		t.Errorf("Close = %v, want %v", err, io.ErrClosedPipe)
	}
	if s.Count() != 1 {
		t.Errorf("Count = %d, want 1", s.Count())
	}
	if s.Err() != io.ErrClosedPipe {
		t.Errorf("Err = %v", s.Err())
	}
}

func TestFlowLogRing(t *testing.T) {
	l := NewFlowLog(4)
	for i := int64(0); i < 10; i++ {
		l.Emit(sampleRecord(i))
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d", l.Total())
	}
	snap := l.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(snap))
	}
	for i, rec := range snap {
		if rec.ID != int64(6+i) {
			t.Errorf("snap[%d].ID = %d, want %d", i, rec.ID, 6+i)
		}
	}
}

func TestFlowLogSubscribe(t *testing.T) {
	l := NewFlowLog(4)
	ch := l.subscribe(8)
	defer l.unsubscribe(ch)
	l.Emit(sampleRecord(42))
	select {
	case rec := <-ch:
		if rec.ID != 42 {
			t.Errorf("ID = %d", rec.ID)
		}
	case <-time.After(time.Second):
		t.Fatal("no record delivered")
	}
}

// TestSinkRace hammers one MultiSink(JSONL + FlowLog) from concurrent
// workers — the shape concurrent replays produce — and relies on the
// race detector to flag unsynchronised access.
func TestSinkRace(t *testing.T) {
	log := NewFlowLog(64)
	jsonl := NewJSONLSink(io.Discard)
	defer jsonl.Close()
	sink := MultiSink{jsonl, log}
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r := AcquireFlow()
				r.ID = int64(w*per + i)
				r.Scheme = "Flash"
				r.Class = ClassMouse
				r.Outcome = OutcomeDelivered
				sink.Emit(r)
				ReleaseFlow(r)
			}
		}(w)
	}
	wg.Wait()
	if log.Total() != workers*per {
		t.Fatalf("Total = %d, want %d", log.Total(), workers*per)
	}
}

// TestEmitAllocs pins the flow-record completion path at zero
// allocations per record at steady state.
func TestEmitAllocs(t *testing.T) {
	s := NewJSONLSink(io.Discard)
	defer s.Close()
	// Warm the pool, then wait for the background writer to drain the
	// warm-up batch so its encode buffer is fully grown before the
	// measured window (AllocsPerRun counts allocations process-wide).
	for i := 0; i < 16; i++ {
		r := AcquireFlow()
		*r = *sampleRecord(int64(i))
		s.Emit(r)
		ReleaseFlow(r)
	}
	for s.Count() < 16 {
		time.Sleep(time.Millisecond)
	}
	allocs := testing.AllocsPerRun(200, func() {
		r := AcquireFlow()
		r.ID = 99
		r.Scheme = "Flash"
		r.Sender, r.Receiver = 1, 2
		r.Amount = 3.5
		r.Class = ClassMouse
		r.Attempts = 1
		r.Outcome = OutcomeDelivered
		s.Emit(r)
		ReleaseFlow(r)
	})
	if allocs != 0 {
		t.Errorf("emit path allocates %.1f per record, want 0", allocs)
	}
}

func TestRegistryPrometheus(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter(`sim_payments_total{scheme="Flash"}`, "Payments completed.")
	c.Add(5)
	reg.Counter(`sim_payments_total{scheme="SP"}`, "Payments completed.").Add(2)
	g := reg.Gauge("sim_threshold", "Adaptive elephant threshold.")
	g.Set(1.5)
	reg.GaugeFunc("sim_clock_seconds", "Virtual clock.", func() float64 { return 7 })
	h := reg.Histogram(`sim_amount{scheme="Flash"}`, "Payment amounts.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP sim_amount Payment amounts.
# TYPE sim_amount histogram
sim_amount_bucket{scheme="Flash",le="1"} 1
sim_amount_bucket{scheme="Flash",le="10"} 2
sim_amount_bucket{scheme="Flash",le="+Inf"} 3
sim_amount_sum{scheme="Flash"} 55.5
sim_amount_count{scheme="Flash"} 3
# HELP sim_clock_seconds Virtual clock.
# TYPE sim_clock_seconds gauge
sim_clock_seconds 7
# HELP sim_payments_total Payments completed.
# TYPE sim_payments_total counter
sim_payments_total{scheme="Flash"} 5
sim_payments_total{scheme="SP"} 2
# HELP sim_threshold Adaptive elephant threshold.
# TYPE sim_threshold gauge
sim_threshold 1.5
`
	if got := buf.String(); got != want {
		t.Errorf("WritePrometheus mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Same instrument back on re-registration.
	if reg.Counter(`sim_payments_total{scheme="Flash"}`, "") != c {
		t.Error("re-registration returned a different counter")
	}
}

func TestRegistryJSONLines(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "A.").Add(3)
	reg.Histogram("b_hist", "B.", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := reg.WriteJSONLines(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var got map[string]any
		if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
			t.Fatalf("line %d invalid: %v", n, err)
		}
		n++
	}
	if n != 2 {
		t.Errorf("got %d lines, want 2", n)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	reg.Gauge("x", "")
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "Up.").Inc()
	flows := NewFlowLog(8)
	flows.Emit(sampleRecord(1))

	srv, err := NewServer("127.0.0.1:0", reg, flows)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up_total 1") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"up_total"`) {
		t.Errorf("/metrics.json: code=%d body=%q", code, body)
	}
	if code, body := get("/flows"); code != 200 || !strings.Contains(body, `"id":1`) {
		t.Errorf("/flows: code=%d body=%q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: code=%d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Errorf("/nope: code=%d, want 404", code)
	}
}

func TestServerFlowsFollow(t *testing.T) {
	flows := NewFlowLog(8)
	srv, err := NewServer("127.0.0.1:0", nil, flows)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/flows?follow=1", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan error, 1)
	go func() {
		rd := bufio.NewReader(resp.Body)
		line, err := rd.ReadString('\n')
		if err != nil {
			done <- err
			return
		}
		if !strings.Contains(line, `"id":77`) {
			done <- fmt.Errorf("unexpected line %q", line)
			return
		}
		done <- nil
	}()

	// Give the handler a moment to subscribe before emitting.
	time.Sleep(50 * time.Millisecond)
	flows.Emit(sampleRecord(77))

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follow stream never delivered the record")
	}
}
