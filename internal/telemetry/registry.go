package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64, safe for concurrent
// use (atomic bit-CAS, no locks on the hot path).
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter by v (v must be non-negative; negative
// deltas are ignored to keep the counter monotone).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 that can go up and down, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram: Observe counts each
// value into the first bucket whose upper bound contains it (plus an
// implicit +Inf bucket), and tracks the running sum and count. All
// operations are lock-free atomics.
type Histogram struct {
	uppers  []float64 // ascending upper bounds, exclusive of +Inf
	buckets []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v) // first upper ≥ v
	if i == len(h.uppers) {
		i = len(h.buckets) - 1 // +Inf bucket
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ExpBuckets returns n upper bounds growing geometrically from start by
// factor — the usual shape for payment amounts and message counts.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one registered instrument.
type metric struct {
	name   string // full name, optionally with a {label="..."} suffix
	family string // name up to the label block
	labels string // label block content without braces, "" if none
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// value returns the instrument's scalar reading (histograms are
// rendered structurally, not through this).
func (m *metric) value() float64 {
	switch m.kind {
	case kindCounter:
		return m.counter.Value()
	case kindGauge:
		return m.gauge.Value()
	case kindGaugeFunc:
		return m.fn()
	}
	return 0
}

// Registry is a small dependency-free metrics registry: counters,
// gauges (stored or callback-backed) and fixed-bucket histograms,
// exported in Prometheus text format or as JSON lines. Registration
// is idempotent per name — asking for an existing name returns the
// existing instrument — so harnesses that run several schemes against
// one registry accumulate rather than collide. Instrument names may
// carry a Prometheus-style label block ("sim_payments_total{scheme=
// \"Flash\"}"); exporters group families and keep output sorted, so
// scrapes of an unchanged registry are byte-identical.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// lookup returns the existing metric under name, checking the kind, or
// registers a new one built by mk.
func (r *Registry) lookup(name, help string, kind metricKind, mk func(*metric)) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %v (was %v)", name, kind, m.kind))
		}
		return m
	}
	family, labels := splitName(name)
	m := &metric{name: name, family: family, labels: labels, help: help, kind: kind}
	mk(m)
	r.metrics[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns (registering if needed) the counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter, func(m *metric) { m.counter = &Counter{} }).counter
}

// Gauge returns (registering if needed) the stored gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge, func(m *metric) { m.gauge = &Gauge{} }).gauge
}

// GaugeFunc registers a callback-backed gauge: fn is evaluated at every
// export, which is how live daemons expose router and network counters
// without copying them on the payment path. Re-registering a name
// replaces its callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.lookup(name, help, kindGaugeFunc, func(m *metric) {})
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// Histogram returns (registering if needed) a histogram with the given
// ascending upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, uppers []float64) *Histogram {
	return r.lookup(name, help, kindHistogram, func(m *metric) {
		h := &Histogram{
			uppers:  append([]float64(nil), uppers...),
			buckets: make([]atomic.Uint64, len(uppers)+1),
		}
		m.hist = h
	}).hist
}

// snapshot returns the registered metrics sorted by (family, name) for
// deterministic export.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	out := append([]*metric(nil), r.order...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return out[i].name < out[j].name
	})
	return out
}

// splitName separates "family{label=...}" into family and the label
// block content (without braces).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// withLabel renders family{labels,extra} — merging an extra label (used
// for histogram le="...") into an existing label block.
func withLabel(family, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return family
	case labels == "":
		return family + "{" + extra + "}"
	case extra == "":
		return family + "{" + labels + "}"
	}
	return family + "{" + labels + "," + extra + "}"
}

// formatValue renders v the way Prometheus text format expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus exports every registered metric in the Prometheus
// text exposition format, sorted by family and name, with one
// HELP/TYPE header per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	lastFamily := ""
	for _, m := range r.snapshot() {
		if m.family != lastFamily {
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.family, m.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.family, m.kind)
			lastFamily = m.family
		}
		if m.kind == kindHistogram {
			h := m.hist
			cum := uint64(0)
			for i, up := range h.uppers {
				cum += h.buckets[i].Load()
				fmt.Fprintf(&b, "%s %d\n", withLabel(m.family+"_bucket", m.labels, `le="`+formatValue(up)+`"`), cum)
			}
			fmt.Fprintf(&b, "%s %d\n", withLabel(m.family+"_bucket", m.labels, `le="+Inf"`), h.Count())
			fmt.Fprintf(&b, "%s %s\n", withLabel(m.family+"_sum", m.labels, ""), formatValue(h.Sum()))
			fmt.Fprintf(&b, "%s %d\n", withLabel(m.family+"_count", m.labels, ""), h.Count())
			continue
		}
		fmt.Fprintf(&b, "%s %s\n", m.name, formatValue(m.value()))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSONLines exports every registered metric as one JSON object per
// line ({"name","kind","value"}; histograms add "sum", "count" and a
// "buckets" array of {"le","count"}), in the same sorted order as the
// Prometheus exporter.
func (r *Registry) WriteJSONLines(w io.Writer) error {
	var buf []byte
	for _, m := range r.snapshot() {
		buf = append(buf, `{"name":`...)
		buf = appendJSONString(buf, m.name)
		buf = append(buf, `,"kind":`...)
		buf = appendJSONString(buf, m.kind.String())
		if m.kind == kindHistogram {
			h := m.hist
			buf = append(buf, `,"sum":`...)
			buf = appendJSONFloat(buf, h.Sum())
			buf = append(buf, `,"count":`...)
			buf = strconv.AppendUint(buf, h.Count(), 10)
			buf = append(buf, `,"buckets":[`...)
			cum := uint64(0)
			for i, up := range h.uppers {
				if i > 0 {
					buf = append(buf, ',')
				}
				cum += h.buckets[i].Load()
				buf = append(buf, `{"le":`...)
				buf = appendJSONFloat(buf, up)
				buf = append(buf, `,"count":`...)
				buf = strconv.AppendUint(buf, cum, 10)
				buf = append(buf, '}')
			}
			buf = append(buf, `]}`...)
		} else {
			buf = append(buf, `,"value":`...)
			buf = appendJSONFloat(buf, m.value())
			buf = append(buf, '}')
		}
		buf = append(buf, '\n')
	}
	_, err := w.Write(buf)
	return err
}
