// Package parallel provides the bounded worker-pool primitive shared
// by the concurrent simulator, the router's table prewarm, and the
// experiment sweeps: N items drained by an atomic index dispenser over
// a fixed set of goroutines.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Clamp resolves a requested worker count against n items: non-positive
// requests mean GOMAXPROCS, and the pool never exceeds the item count.
func Clamp(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// ForEach runs fn(worker, i) for every i in [0, n), drained by up to
// workers goroutines (Clamp applies). worker is the stable pool index
// in [0, Clamp(n, workers)) of the goroutine running the call, so
// callers can shard accumulator state per worker without locks. fn
// must be safe for concurrent invocation; item order is unspecified.
// workers resolving to 1 runs inline, sequentially, in item order.
func ForEach(n, workers int, fn func(worker, i int)) {
	workers = Clamp(n, workers)
	if workers == 0 {
		return
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
