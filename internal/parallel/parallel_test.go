package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestClamp(t *testing.T) {
	if got := Clamp(0, 8); got != 0 {
		t.Errorf("Clamp(0,8) = %d, want 0", got)
	}
	if got := Clamp(10, 4); got != 4 {
		t.Errorf("Clamp(10,4) = %d, want 4", got)
	}
	if got := Clamp(3, 8); got != 3 {
		t.Errorf("Clamp(3,8) = %d, want 3", got)
	}
	if got := Clamp(10, 0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Clamp(10,0) = %d, want GOMAXPROCS", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 100
		var hits [n]atomic.Int32
		ForEach(n, workers, func(worker, i int) {
			if worker < 0 || worker >= Clamp(n, workers) {
				t.Errorf("worker index %d out of range", worker)
			}
			hits[i].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachSequentialWhenOneWorker(t *testing.T) {
	var order []int
	ForEach(5, 1, func(worker, i int) {
		if worker != 0 {
			t.Errorf("worker = %d, want 0", worker)
		}
		order = append(order, i) // safe: inline execution
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	ForEach(0, 4, func(int, int) { called = true })
	if called {
		t.Error("fn called with 0 items")
	}
}
