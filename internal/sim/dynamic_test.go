package sim

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/trace"
)

// goldenDynamicRun replays the golden scenario's payment list through
// RunDynamic with arrivals pinned to the trace order.
func goldenDynamicRun(t *testing.T, kind string, opts DynamicOptions) DynamicResult {
	t.Helper()
	net, err := BuildNetwork(kind, 120, 10, 0, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig(net.Graph().NumNodes())
	cfg.Graph = net.Graph()
	cfg.Seed = 42
	if kind == KindLightning {
		cfg.Sizes = trace.BitcoinSizes
	}
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payments := gen.Generate(400)
	threshold := core.ThresholdForMiceFraction(trace.Amounts(payments), 0.9)
	r, err := NewRouter(SchemeFlash, threshold, 0, 0, false, 42)
	if err != nil {
		t.Fatal(err)
	}
	horizon := (payments[len(payments)-1].Time + 1) * trace.SecondsPerDay
	res, err := RunDynamic(net, r, trace.NewReplayStream(payments), horizon, nil, threshold, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDynamicZeroChurnEquivalence pins the dynamic engine to the
// replay engine: zero churn, zero service latency, one station, and
// arrivals in trace order must reproduce RunOpts' sequential aggregate
// metrics exactly (wall-clock delays excepted).
func TestDynamicZeroChurnEquivalence(t *testing.T) {
	for _, kind := range []string{KindRipple, KindLightning} {
		want := stripDelays(goldenRun(t, kind, Options{}))
		res := goldenDynamicRun(t, kind, DynamicOptions{Workers: 1})
		if got := stripDelays(res.Aggregate); got != want {
			t.Errorf("%s: dynamic aggregate diverged from sequential replay:\n got  %+v\n want %+v", kind, got, want)
		}
		// And it must equal the seed golden, transitively.
		if got := stripDelays(res.Aggregate); got != goldenMetrics[kind] {
			t.Errorf("%s: dynamic aggregate diverged from seed golden", kind)
		}
	}
}

// TestDynamicWindowsSumToAggregate checks the time-series
// decomposition: window metrics merged together equal the aggregate.
func TestDynamicWindowsSumToAggregate(t *testing.T) {
	res := goldenDynamicRun(t, KindRipple, DynamicOptions{Workers: 1, Window: 1000})
	var sum Metrics
	for _, w := range res.Windows {
		sum.Merge(w.Metrics)
	}
	agg := res.Aggregate
	if sum.Payments != agg.Payments || sum.Successes != agg.Successes ||
		sum.ProbeMessages != agg.ProbeMessages || sum.CommitMessages != agg.CommitMessages ||
		sum.MicePayments != agg.MicePayments || sum.ElephantSuccesses != agg.ElephantSuccesses {
		t.Errorf("windows sum %+v != aggregate %+v", sum, agg)
	}
	// Float sums may differ in the last ulp (different addition order).
	relClose := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(b), 1) }
	if !relClose(sum.SuccessVolume, agg.SuccessVolume) || !relClose(sum.AttemptVolume, agg.AttemptVolume) ||
		!relClose(sum.FeesPaid, agg.FeesPaid) {
		t.Errorf("window volume sums diverged: %+v vs %+v", sum, agg)
	}
	if len(res.Windows) < 2 {
		t.Errorf("expected multiple windows, got %d", len(res.Windows))
	}
}

// churnScenario is the catalogue churn cell at test scale.
func churnScenario(t *testing.T, workers int) DynamicScenario {
	t.Helper()
	sc, err := NamedDynamicScenario("churn", KindRipple, 80)
	if err != nil {
		t.Fatal(err)
	}
	sc.Duration = 20
	sc.Rate = 10
	sc.Schemes = []string{SchemeFlash}
	sc.Workers = workers
	sc.Seed = 42
	return sc
}

// TestDynamicDeterministicEventLog is the determinism guarantee: the
// same seed yields identical event logs, fingerprints, and metrics —
// windows included — across runs of a full churn scenario.
func TestDynamicDeterministicEventLog(t *testing.T) {
	run := func() DynamicSchemeResult {
		results, err := RunDynamicScenario(churnScenario(t, 1))
		if err != nil {
			t.Fatal(err)
		}
		return results[0]
	}
	a, b := run(), run()
	if a.Result.Fingerprint != b.Result.Fingerprint {
		t.Fatalf("fingerprints diverged: %x vs %x", a.Result.Fingerprint, b.Result.Fingerprint)
	}
	if stripDelays(a.Result.Aggregate) != stripDelays(b.Result.Aggregate) {
		t.Errorf("aggregates diverged:\n %+v\n %+v", a.Result.Aggregate, b.Result.Aggregate)
	}
	if len(a.Result.Windows) != len(b.Result.Windows) {
		t.Fatalf("window counts diverged: %d vs %d", len(a.Result.Windows), len(b.Result.Windows))
	}
	for i := range a.Result.Windows {
		if stripDelays(a.Result.Windows[i].Metrics) != stripDelays(b.Result.Windows[i].Metrics) {
			t.Errorf("window %d diverged", i)
		}
	}
	if a.Result.EventCounts != b.Result.EventCounts {
		t.Errorf("event counts diverged: %v vs %v", a.Result.EventCounts, b.Result.EventCounts)
	}
	// The churn scenario must actually churn.
	if a.Result.EventCounts[event.ChannelClose] == 0 || a.Result.EventCounts[event.ChannelOpen] == 0 {
		t.Errorf("churn scenario applied no churn: %v", a.Result.EventCounts)
	}
	if a.Result.EventCounts[event.Rebalance] == 0 {
		t.Errorf("churn scenario applied no rebalances: %v", a.Result.EventCounts)
	}
}

// TestDynamicChurnInvalidatesTables checks the router integration: a
// churn run against Flash must drop routing-table entries as channels
// close.
func TestDynamicChurnInvalidatesTables(t *testing.T) {
	sc := churnScenario(t, 1)
	net, err := BuildNetwork(sc.Kind, sc.Nodes, sc.ScaleFactor, 0, 0, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	churnRNG := newChurnRNG(sc.Seed)
	latent := registerLatentChannels(net, sc.LatentChannels, churnRNG)
	churn := buildChurnSchedule(sc, net, latent, churnRNG)
	if len(churn) == 0 {
		t.Fatal("no churn events generated")
	}
	threshold, err := calibrateThreshold(sc, net.Graph())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workloadFor(sc.Kind, net.Graph(), sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := sc.arrivalProcess()
	if err != nil {
		t.Fatal(err)
	}
	stream, err := trace.NewStream(gen, arr, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	fl := core.New(core.DefaultConfig(threshold))
	if _, err := RunDynamic(net, fl, stream, sc.Duration, churn, threshold, DynamicOptions{Workers: 1, Seed: sc.Seed}); err != nil {
		t.Fatal(err)
	}
	if st := fl.Stats(); st.TableInvalidations == 0 {
		t.Errorf("no routing-table entries invalidated under churn: %+v", st)
	}
}

// TestDynamicConcurrentChurnRace exercises churn events mutating the
// live network while payments route on real goroutines — the
// race-detector test for the workers > 1 configuration.
func TestDynamicConcurrentChurnRace(t *testing.T) {
	sc := churnScenario(t, 4)
	sc.Retries = 1
	sc.Service = 0.2 // overlap payments in virtual time so they run concurrently
	results, err := RunDynamicScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	m := results[0].Result.Aggregate
	if m.Payments == 0 || m.Successes == 0 {
		t.Errorf("concurrent churn run delivered nothing: %+v", m)
	}
	if m.Successes > m.Payments || m.SuccessVolume > m.AttemptVolume {
		t.Errorf("inconsistent metrics: %+v", m)
	}
}

// TestDynamicLatentChannelsOpen verifies latent channels join the
// topology closed and the schedule funds some of them mid-run.
func TestDynamicLatentChannelsOpen(t *testing.T) {
	sc := churnScenario(t, 1)
	net, err := BuildNetwork(sc.Kind, sc.Nodes, sc.ScaleFactor, 0, 0, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	before := net.Graph().NumChannels()
	churnRNG := newChurnRNG(sc.Seed)
	latent := registerLatentChannels(net, sc.LatentChannels, churnRNG)
	if len(latent) != sc.LatentChannels {
		t.Fatalf("registered %d latent channels, want %d", len(latent), sc.LatentChannels)
	}
	if net.Graph().NumChannels() != before+len(latent) {
		t.Errorf("graph has %d channels, want %d", net.Graph().NumChannels(), before+len(latent))
	}
	for _, e := range latent {
		if net.IsChannelOpen(e.A, e.B) {
			t.Errorf("latent channel %v starts open", e)
		}
	}
	churn := buildChurnSchedule(sc, net, latent, churnRNG)
	funded := 0
	for _, e := range churn {
		if e.Kind == event.ChannelOpen && e.Amount > 0 {
			funded++
		}
	}
	if funded == 0 {
		t.Error("schedule never funds a latent channel")
	}
}

// flakyRouter fails every payment's first routing attempt and succeeds
// afterwards — the deterministic fixture proving the retry policy
// recovers payments that a single attempt loses.
type flakyRouter struct {
	inner route.Router
	mu    sync.Mutex
	seen  map[int64]int
}

func (f *flakyRouter) Name() string { return "Flaky" }

func (f *flakyRouter) Route(s route.Session) error {
	key := int64(s.Sender())<<32 | int64(s.Receiver())
	f.mu.Lock()
	f.seen[key]++
	first := f.seen[key] == 1
	f.mu.Unlock()
	if first {
		if err := s.Abort(); err != nil {
			return err
		}
		return errors.New("flaky: simulated race loss")
	}
	return f.inner.Route(s)
}

// TestRetriesLiftSuccessRatio is the retry-policy satellite's
// deterministic demonstration: against a router whose first attempt
// always fails, Retries=0 delivers nothing and Retries=1 delivers
// everything, lifting the success ratio from 0 to 1.
func TestRetriesLiftSuccessRatio(t *testing.T) {
	build := func() (*pcn.Network, []trace.Payment) {
		net, payments, err := BuildContention(3, 1000, 1000, 10)
		if err != nil {
			t.Fatal(err)
		}
		return net, payments
	}
	for _, workers := range []int{1, 4} {
		net, payments := build()
		r := &flakyRouter{inner: baselineShortestPath(t), seen: map[int64]int{}}
		m0, err := RunOpts(net, r, payments, 1, Options{Workers: workers, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 && m0.Successes != 0 {
			t.Errorf("workers=%d retries=0: %d successes, want 0", workers, m0.Successes)
		}

		net, payments = build()
		r = &flakyRouter{inner: baselineShortestPath(t), seen: map[int64]int{}}
		m1, err := RunOpts(net, r, payments, 1, Options{Workers: workers, Seed: 7, Retries: 1})
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 && m1.Successes != m1.Payments {
			t.Errorf("workers=%d retries=1: %d/%d delivered, want all", workers, m1.Successes, m1.Payments)
		}
		if m1.SuccessRatio() <= m0.SuccessRatio() {
			t.Errorf("workers=%d: retries did not lift success ratio (%.2f -> %.2f)",
				workers, m0.SuccessRatio(), m1.SuccessRatio())
		}
		// Retried attempts pay their message costs.
		if m1.CommitMessages <= m0.CommitMessages {
			t.Errorf("retry message accounting suspicious: %d <= %d", m1.CommitMessages, m0.CommitMessages)
		}
	}
}

// TestRetriesOnContentionNeverWorse replays the barbell contention
// fixture concurrently with and without retries: the retried run may
// recover race losses and must never do worse. With ample bridge
// capacity every payment is individually feasible, so generous retries
// should deliver (nearly) everything.
func TestRetriesOnContentionNeverWorse(t *testing.T) {
	run := func(retries int) Metrics {
		net, payments, err := BuildContention(4, 1e6, 1e6, 10)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRouter(SchemeFlash, 1e9, 0, 0, false, 7)
		if err != nil {
			t.Fatal(err)
		}
		m, err := RunOpts(net, r, payments, 1e9, Options{Workers: 8, Seed: 7, Retries: retries})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m0, m8 := run(0), run(8)
	if m8.Successes < m0.Successes {
		t.Errorf("retries lowered successes: %d -> %d", m0.Successes, m8.Successes)
	}
	if m8.Successes != m8.Payments {
		t.Errorf("capacity-feasible workload with 8 retries delivered %d/%d", m8.Successes, m8.Payments)
	}
}

// TestDynamicRetriesVirtualBackoff checks the dynamic engine's retry
// path: a flaky router under RunDynamic delivers everything with one
// retry, and the retry arrivals appear in the event log.
func TestDynamicRetriesVirtualBackoff(t *testing.T) {
	net, payments, err := BuildContention(3, 1000, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	r := &flakyRouter{inner: baselineShortestPath(t), seen: map[int64]int{}}
	horizon := (payments[len(payments)-1].Time + 1) * trace.SecondsPerDay
	res, err := RunDynamic(net, r, trace.NewReplayStream(payments), horizon, nil, 1,
		DynamicOptions{Workers: 1, Seed: 7, Retries: 1, RecordLog: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Successes != res.Aggregate.Payments {
		t.Errorf("delivered %d/%d with retries", res.Aggregate.Successes, res.Aggregate.Payments)
	}
	retryArrivals := 0
	for _, e := range res.Log {
		if e.Kind == event.PaymentArrival && e.Attempt > 0 {
			retryArrivals++
			if e.Time <= 0 {
				t.Errorf("retry arrival without backoff: %v", e)
			}
		}
	}
	if retryArrivals != res.Aggregate.Payments {
		t.Errorf("retry arrivals = %d, want one per payment (%d)", retryArrivals, res.Aggregate.Payments)
	}
}

// TestDynamicDemandShift verifies the demand-shift event reaches the
// generator: post-shift windows carry visibly larger attempt volumes.
func TestDynamicDemandShift(t *testing.T) {
	sc, err := NamedDynamicScenario("steady", KindRipple, 60)
	if err != nil {
		t.Fatal(err)
	}
	sc.Duration = 20
	sc.Rate = 20
	sc.Window = 10
	sc.Seed = 5
	sc.Schemes = []string{SchemeShortestPath}
	sc.DemandShiftFactor = 100
	sc.DemandShiftFrac = 0.5
	results, err := RunDynamicScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	w := results[0].Result.Windows
	if len(w) < 2 {
		t.Fatalf("got %d windows", len(w))
	}
	firstMean := w[0].Metrics.AttemptVolume / float64(w[0].Metrics.Payments)
	lastMean := w[len(w)-1].Metrics.AttemptVolume / float64(w[len(w)-1].Metrics.Payments)
	if lastMean < 5*firstMean {
		t.Errorf("demand shift invisible: mean amount %v -> %v", firstMean, lastMean)
	}
}

// TestDemandShiftTracksDuration pins the fix for the frozen-shift bug:
// the flash-crowd preset's demand shift must fire inside the horizon
// (at the surge start) for any Duration override.
func TestDemandShiftTracksDuration(t *testing.T) {
	for _, duration := range []float64{8, 30, 120} {
		sc, err := NamedDynamicScenario("flash-crowd", KindRipple, 60)
		if err != nil {
			t.Fatal(err)
		}
		sc.Duration = duration
		sc.Rate = 5
		sc.Schemes = []string{SchemeShortestPath}
		results, err := RunDynamicScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		if got := results[0].Result.EventCounts[event.DemandShift]; got != 1 {
			t.Errorf("duration %v: %d demand-shift events applied, want 1", duration, got)
		}
	}
}

// TestNamedDynamicScenarios exercises every catalogue entry end to end
// at tiny scale.
func TestNamedDynamicScenarios(t *testing.T) {
	for _, name := range DynamicScenarioNames {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc, err := NamedDynamicScenario(name, KindRipple, 60)
			if err != nil {
				t.Fatal(err)
			}
			sc.Duration = 10
			sc.Rate = 8
			sc.Schemes = []string{SchemeFlash, SchemeShortestPath}
			results, err := RunDynamicScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 2 {
				t.Fatalf("got %d scheme results", len(results))
			}
			for _, r := range results {
				m := r.Result.Aggregate
				if m.Payments == 0 {
					t.Errorf("%s: no payments replayed", r.Scheme)
				}
				if m.SuccessVolume > m.AttemptVolume || m.Successes > m.Payments {
					t.Errorf("%s: inconsistent metrics %+v", r.Scheme, m)
				}
			}
		})
	}
	if _, err := NamedDynamicScenario("bogus", KindRipple, 60); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestRunDynamicValidation covers the error paths.
func TestRunDynamicValidation(t *testing.T) {
	net, payments, err := BuildContention(2, 100, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := baselineShortestPath(t)
	if _, err := RunDynamic(net, r, trace.NewReplayStream(payments), 0, nil, 1, DynamicOptions{}); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := []event.Event{{Time: 1, Kind: event.PaymentArrival}}
	if _, err := RunDynamic(net, r, trace.NewReplayStream(payments), 10, bad, 1, DynamicOptions{}); err == nil {
		t.Error("payment event in churn schedule accepted")
	}
	if _, err := RunDynamicScenario(DynamicScenario{Kind: KindRipple, Nodes: 10, Rate: 1}); err == nil {
		t.Error("zero-duration scenario accepted")
	}
	if _, err := RunDynamicScenario(DynamicScenario{Kind: KindRipple, Nodes: 10, Duration: 1}); err == nil {
		t.Error("zero-rate scenario accepted")
	}
	sc := DynamicScenario{Kind: KindRipple, Nodes: 30, Duration: 1, Rate: 1, Arrival: "bogus"}
	if _, err := RunDynamicScenario(sc); err == nil {
		t.Error("unknown arrival process accepted")
	}
}

// baselineShortestPath builds the simple baseline router for fixtures.
func baselineShortestPath(t *testing.T) route.Router {
	t.Helper()
	r, err := NewRouter(SchemeShortestPath, 0, 0, 0, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRetriesZeroMatchesGolden re-pins the golden equivalence with the
// retry plumbing in place: Retries=0 must be byte-identical to the
// historical single-attempt replay (covered by the golden test, but
// asserted here against an explicit Options value for clarity).
func TestRetriesZeroMatchesGolden(t *testing.T) {
	got := stripDelays(goldenRun(t, KindRipple, Options{Workers: 1, Retries: 0}))
	if got != goldenMetrics[KindRipple] {
		t.Errorf("Retries=0 diverged from golden:\n got  %+v\n want %+v", got, goldenMetrics[KindRipple])
	}
}

// TestWindowRatios sanity-checks the helper.
func TestWindowRatios(t *testing.T) {
	res := DynamicResult{Windows: []Window{
		{Metrics: Metrics{Payments: 4, Successes: 2}},
		{Metrics: Metrics{Payments: 5, Successes: 5}},
	}}
	got := res.WindowRatios()
	if len(got) != 2 || math.Abs(got[0]-0.5) > 1e-12 || got[1] != 1 {
		t.Errorf("WindowRatios = %v", got)
	}
}
