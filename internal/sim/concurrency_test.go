package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestContentionAllThroughSharedBridge replays the contention workload
// — every payment crossing the same bridge channel — with many workers
// over a bridge that cannot carry them all at once. Holds race from
// both sides; the invariants must survive any interleaving. Run with
// -race.
func TestContentionAllThroughSharedBridge(t *testing.T) {
	const (
		spokes    = 6
		spokeBal  = 1000.0
		bridgeBal = 100.0
		amount    = 30.0
	)
	net, payments, err := BuildContention(spokes, spokeBal, bridgeBal, amount)
	if err != nil {
		t.Fatal(err)
	}
	if len(payments) != spokes*spokes {
		t.Fatalf("payments = %d, want %d", len(payments), spokes*spokes)
	}
	before := net.TotalFunds()

	r := core.New(core.DefaultConfig(math.Inf(1))) // all mice
	m, err := RunOpts(net, r, payments, math.Inf(1), Options{Workers: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	if m.Payments != len(payments) {
		t.Errorf("replayed %d payments, want %d", m.Payments, len(payments))
	}
	// The bridge begins with bridgeBal in the forward direction; every
	// success moves amount across it. Reverse flow could in principle
	// recharge it, but all payments push the same way, so committed
	// volume can never exceed the initial forward balance.
	if m.SuccessVolume > bridgeBal+1e-9 {
		t.Errorf("delivered %v through a bridge holding %v", m.SuccessVolume, bridgeBal)
	}
	// And the two-phase commit must not let contention destroy liveness:
	// the bridge's forward balance is fully spendable, so at least
	// ⌊bridgeBal/amount⌋ payments fit.
	if want := int(math.Floor(bridgeBal / amount)); m.Successes < want {
		t.Errorf("only %d successes, bridge capacity admits %d", m.Successes, want)
	}
	after := net.TotalFunds()
	if math.Abs(after-before) > 1e-6*before {
		t.Errorf("funds not conserved: before %v, after %v", before, after)
	}
}

// TestBuildContentionValidation covers the error paths.
func TestBuildContentionValidation(t *testing.T) {
	if _, _, err := BuildContention(0, 1, 1, 1); err == nil {
		t.Error("0 spokes accepted")
	}
	if _, _, err := BuildContention(3, 0, 1, 1); err == nil {
		t.Error("zero spoke balance accepted")
	}
	if _, _, err := BuildContention(3, 1, 1, 0); err == nil {
		t.Error("zero amount accepted")
	}
}

// TestConcurrentScenarioRuns exercises the full stack concurrently:
// Scenario.Concurrency fans payments out to workers inside each scheme
// replay while ParallelSchemes races the schemes against each other.
// Run with -race.
func TestConcurrentScenarioRuns(t *testing.T) {
	sc := DefaultScenario(KindRipple, 80)
	sc.Txns = 150
	sc.Runs = 1
	sc.Concurrency = 4
	sc.ParallelSchemes = true
	results, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(PaperSchemes) {
		t.Fatalf("got %d scheme results", len(results))
	}
	for _, r := range results {
		for _, m := range r.Runs {
			if m.Payments == 0 {
				t.Errorf("%s: no payments replayed", r.Scheme)
			}
			if m.Successes > m.Payments || m.SuccessVolume > m.AttemptVolume+1e-9 {
				t.Errorf("%s: inconsistent metrics %+v", r.Scheme, m)
			}
		}
	}
}

// TestPrewarmOptionKeepsMetrics verifies the Prewarm replay option only
// moves work earlier: routing outcomes are driven by the same table
// contents, so success metrics are unchanged in a sequential replay.
func TestPrewarmOptionKeepsMetrics(t *testing.T) {
	run := func(prewarm bool) Metrics {
		net, err := BuildNetwork(KindRipple, 80, 10, 0, 0, 5)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workloadFor(KindRipple, net.Graph(), 5)
		if err != nil {
			t.Fatal(err)
		}
		payments := gen.Generate(200)
		threshold := core.ThresholdForMiceFraction(trace.Amounts(payments), 0.9)
		r, err := NewRouter(SchemeFlash, threshold, 0, 0, false, 5)
		if err != nil {
			t.Fatal(err)
		}
		m, err := RunOpts(net, r, payments, threshold, Options{Prewarm: prewarm})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cold := stripDelays(run(false))
	warm := stripDelays(run(true))
	if cold != warm {
		t.Errorf("Prewarm changed sequential metrics:\n cold %+v\n warm %+v", cold, warm)
	}
}
