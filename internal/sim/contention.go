package sim

import (
	"fmt"

	"repro/internal/pcn"
	"repro/internal/topo"
	"repro/internal/trace"
)

// BuildContention constructs the contention fixture: a barbell network
// whose every payment is forced through one shared bridge channel, the
// worst case for concurrent holds. spokes sender nodes hang off hub A,
// spokes receiver nodes off hub B, and A—B is the only cut between
// them:
//
//	s₀ … s₋₁  →  A ══ B  →  r₀ … r₋₁
//
// Spoke channels carry spokeBal per direction; the bridge carries
// bridgeBal per direction. Sized so the bridge is the bottleneck
// (bridgeBal < spokes·spokeBal), concurrent payments compete for the
// same balance from both sides: some holds must lose, none may
// overbook, and committed volume through the bridge can never exceed
// what the bridge held.
//
// The returned payments send amount from every sender spoke to every
// receiver spoke, round-robin, IDs in dispatch order — a workload with
// maximal channel sharing, exercised by the concurrency tests and
// exported as flash.BuildContentionFixture.
func BuildContention(spokes int, spokeBal, bridgeBal, amount float64) (*pcn.Network, []trace.Payment, error) {
	if spokes < 1 {
		return nil, nil, fmt.Errorf("sim: contention needs ≥ 1 spokes, got %d", spokes)
	}
	if spokeBal <= 0 || bridgeBal <= 0 || amount <= 0 {
		return nil, nil, fmt.Errorf("sim: contention balances and amount must be positive")
	}
	// Node layout: senders 0..spokes-1, hubA = spokes, hubB = spokes+1,
	// receivers spokes+2 .. 2*spokes+1.
	g := topo.New(2*spokes + 2)
	hubA := topo.NodeID(spokes)
	hubB := topo.NodeID(spokes + 1)
	for i := 0; i < spokes; i++ {
		g.MustAddChannel(topo.NodeID(i), hubA)
		g.MustAddChannel(hubB, topo.NodeID(spokes+2+i))
	}
	g.MustAddChannel(hubA, hubB)

	net := pcn.New(g)
	for i := 0; i < spokes; i++ {
		if err := net.SetBalance(topo.NodeID(i), hubA, spokeBal, spokeBal); err != nil {
			return nil, nil, err
		}
		if err := net.SetBalance(hubB, topo.NodeID(spokes+2+i), spokeBal, spokeBal); err != nil {
			return nil, nil, err
		}
	}
	if err := net.SetBalance(hubA, hubB, bridgeBal, bridgeBal); err != nil {
		return nil, nil, err
	}

	payments := make([]trace.Payment, 0, spokes*spokes)
	id := 0
	for i := 0; i < spokes; i++ {
		for j := 0; j < spokes; j++ {
			payments = append(payments, trace.Payment{
				ID:       id,
				Sender:   topo.NodeID(i),
				Receiver: topo.NodeID(spokes + 2 + (i+j)%spokes),
				Amount:   amount,
			})
			id++
		}
	}
	return net, payments, nil
}
