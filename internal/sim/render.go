package sim

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/event"
)

// WriteDynamicResult renders one scheme's dynamic run — the per-window
// time series, the aggregate row, and the event/fingerprint footer —
// exactly as cmd/flashsim prints it. Sharing the renderer between the
// CLI and the test suite lets the determinism tests pin the CLI-level
// byte contract (same seed ⇒ identical bytes, fingerprint included)
// without shelling out to a built binary.
//
// showThreshold adds the effective-elephant-threshold column and the
// threshold-update footer — the adaptive-threshold view; off, the
// output shape matches the historical fixed-threshold rendering. When
// the run additionally carries the re-classification view
// (res.AdaptiveView), the threshold column is joined by per-window
// mice/elephant success counts classified against the threshold in
// effect during that window, and a control-plane footer reports the
// per-knob decision rollup when the general plane drove the run
// (res.ControlOn).
//
// Latency columns (p50/p95/p99 completion latency per window) and the
// deadline-expiry footer appear exactly when the run carried a latency
// model (res.LatencyOn), so latency-free runs render byte-identically
// to the pre-latency engine.
func WriteDynamicResult(out io.Writer, scheme string, res DynamicResult, showThreshold bool) {
	fmt.Fprintf(out, "== %s ==\n", scheme)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	adaptiveCols := showThreshold && res.AdaptiveView
	cols := "window\tpayments\tsucc.ratio\tsucc.volume\tprobe msgs\tfee ratio"
	if showThreshold {
		cols += "\teff.thr"
	}
	if adaptiveCols {
		cols += "\tmice ok/tot\teleph ok/tot"
	}
	if res.LatencyOn {
		cols += "\tp50 lat\tp95 lat\tp99 lat"
	}
	fmt.Fprintln(w, cols)
	writeAdaptive := func(m *Metrics) {
		if adaptiveCols {
			fmt.Fprintf(w, "\t%d/%d\t%d/%d",
				m.MiceSuccesses, m.MicePayments,
				m.ElephantSuccesses, m.ElephantPayments)
		}
	}
	writeLat := func(l *LatencyStats) {
		if res.LatencyOn {
			fmt.Fprintf(w, "\t%.3fs\t%.3fs\t%.3fs", l.P50(), l.P95(), l.P99())
		}
	}
	for i := range res.Windows {
		win := &res.Windows[i]
		fmt.Fprintf(w, "[%gs,%gs)\t%d\t%.1f%%\t%.4g\t%d\t%.3f%%",
			win.Start, win.End, win.Metrics.Payments,
			100*win.Metrics.SuccessRatio(), win.Metrics.SuccessVolume,
			win.Metrics.ProbeMessages, 100*win.Metrics.FeeRatio())
		if showThreshold {
			fmt.Fprintf(w, "\t%.4g", win.Threshold)
		}
		writeAdaptive(&win.Adaptive)
		writeLat(&win.Latency)
		fmt.Fprintln(w)
	}
	agg := res.Aggregate
	fmt.Fprintf(w, "aggregate\t%d\t%.1f%%\t%.4g\t%d\t%.3f%%",
		agg.Payments, 100*agg.SuccessRatio(), agg.SuccessVolume,
		agg.ProbeMessages, 100*agg.FeeRatio())
	if showThreshold {
		fmt.Fprintf(w, "\t%.4g", res.FinalThreshold)
	}
	writeAdaptive(&res.Adaptive)
	writeLat(&res.Latency)
	fmt.Fprintln(w)
	w.Flush()
	c := res.EventCounts
	fmt.Fprintf(out, "events: %d arrivals (%d completions), %d open, %d close, %d rebalance, %d demand-shift, %d fee-shift; span aborts %d",
		c[event.PaymentArrival], c[event.PaymentComplete], c[event.ChannelOpen],
		c[event.ChannelClose], c[event.Rebalance], c[event.DemandShift], c[event.FeeShift], res.SpanAborts)
	if showThreshold {
		fmt.Fprintf(out, "; threshold updates %d (final %.4g)", res.ThresholdUpdates, res.FinalThreshold)
	}
	if res.ControlOn {
		fmt.Fprintf(out, "; control decisions %d", res.ControlDecisions)
		for _, st := range res.Controllers {
			fmt.Fprintf(out, " [%s x%d last %.4g]", st.Knob, st.Decisions, st.Last)
		}
	}
	if res.Deadline > 0 {
		fmt.Fprintf(out, "; deadline expiries %d", res.DeadlineExpiries)
	}
	fmt.Fprintf(out, "; fingerprint %016x\n", res.Fingerprint)
}
