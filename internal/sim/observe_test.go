package sim

import (
	"bytes"
	"io"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

// countSink counts emitted flow records by outcome. Concurrent-safe.
type countSink struct {
	total, delivered, failed, spanAborts atomic.Int64
}

func (c *countSink) Emit(r *telemetry.FlowRecord) {
	c.total.Add(1)
	switch r.Outcome {
	case telemetry.OutcomeDelivered:
		c.delivered.Add(1)
	case telemetry.OutcomeFailed:
		c.failed.Add(1)
	case telemetry.OutcomeSpanAbort:
		c.spanAborts.Add(1)
	}
}

// TestStaticTelemetryObserverOnly is the observer-only guarantee on the
// static replay: attaching a flow sink leaves the seed golden metrics
// bit-identical, while the sink sees every payment exactly once.
func TestStaticTelemetryObserverOnly(t *testing.T) {
	for kind, want := range goldenMetrics {
		sink := &countSink{}
		got := stripDelays(goldenRun(t, kind, Options{Workers: 1, FlowSink: sink}))
		if got != want {
			t.Errorf("%s: metrics diverged with sink attached:\n got  %+v\n want %+v", kind, got, want)
		}
		if n := sink.total.Load(); n != int64(want.Payments) {
			t.Errorf("%s: sink saw %d records, want %d", kind, n, want.Payments)
		}
		if n := sink.delivered.Load(); n != int64(want.Successes) {
			t.Errorf("%s: sink saw %d delivered, want %d", kind, n, want.Successes)
		}
	}
}

// TestConcurrentReplayTelemetryRace hammers one shared sink chain (a
// JSONL sink and a flow log behind a MultiSink) from a concurrent
// replay. Run under -race this is the sim-level concurrency check on
// the sink contract; the assertion is just record conservation.
func TestConcurrentReplayTelemetryRace(t *testing.T) {
	jsonl := telemetry.NewJSONLSink(io.Discard)
	log := telemetry.NewFlowLog(64)
	count := &countSink{}
	sink := telemetry.MultiSink{jsonl, log, count}
	m := goldenRun(t, KindRipple, Options{Workers: 8, Seed: 42, FlowSink: sink})
	if err := jsonl.Close(); err != nil {
		t.Fatal(err)
	}
	if jsonl.Count() != uint64(m.Payments) || count.total.Load() != int64(m.Payments) || log.Total() != uint64(m.Payments) {
		t.Errorf("record conservation: jsonl=%d count=%d log=%d payments=%d",
			jsonl.Count(), count.total.Load(), log.Total(), m.Payments)
	}
}

// TestDynamicTelemetryObserverOnly is the PR's hard constraint on the
// dynamic engine: enabling every sink — flow records, a flow log, and
// the full metrics registry — leaves the event-log fingerprint, the
// rendered result table, and every metric byte-identical to the bare
// run.
func TestDynamicTelemetryObserverOnly(t *testing.T) {
	render := func(r DynamicSchemeResult) string {
		var buf bytes.Buffer
		WriteDynamicResult(&buf, r.Scheme, r.Result, true)
		return buf.String()
	}

	bare := churnScenario(t, 1)
	bareRes, err := RunDynamicScenario(bare)
	if err != nil {
		t.Fatal(err)
	}

	observed := churnScenario(t, 1)
	count := &countSink{}
	log := telemetry.NewFlowLog(128)
	jsonl := telemetry.NewJSONLSink(io.Discard)
	defer jsonl.Close()
	observed.FlowSink = telemetry.MultiSink{jsonl, log, count}
	observed.Registry = telemetry.NewRegistry()
	obsRes, err := RunDynamicScenario(observed)
	if err != nil {
		t.Fatal(err)
	}

	a, b := bareRes[0].Result, obsRes[0].Result
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprint changed with telemetry on: %016x vs %016x", a.Fingerprint, b.Fingerprint)
	}
	if stripDelays(a.Aggregate) != stripDelays(b.Aggregate) {
		t.Errorf("aggregate changed with telemetry on:\n bare %+v\n obs  %+v", a.Aggregate, b.Aggregate)
	}
	if got, want := render(obsRes[0]), render(bareRes[0]); got != want {
		t.Errorf("rendered table changed with telemetry on:\n%s\nvs\n%s", got, want)
	}

	// The observer must agree with the engine's own accounting.
	if n := count.total.Load(); n != int64(b.Aggregate.Payments) {
		t.Errorf("sink saw %d records, want %d", n, b.Aggregate.Payments)
	}
	if n := count.delivered.Load(); n != int64(b.Aggregate.Successes) {
		t.Errorf("sink saw %d delivered, want %d", n, b.Aggregate.Successes)
	}
	if n := count.spanAborts.Load(); n != int64(b.SpanAborts) {
		t.Errorf("sink saw %d span-aborts, want %d", n, b.SpanAborts)
	}
	var promA bytes.Buffer
	if err := observed.Registry.WritePrometheus(&promA); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(promA.Bytes(), []byte("sim_payments_total")) {
		t.Error("registry missing sim_payments_total after observed run")
	}
}

// TestWriteDynamicJSONDeterministic pins the flashsim -json contract:
// the JSON document is a pure function of the result, so two renders of
// the same deterministic run are byte-identical and carry the
// fingerprint as a 16-digit hex string.
func TestWriteDynamicJSONDeterministic(t *testing.T) {
	res, err := RunDynamicScenario(churnScenario(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	render := func() []byte {
		var buf bytes.Buffer
		if err := WriteDynamicJSON(&buf, res[0].Scheme, res[0].Result); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Error("WriteDynamicJSON not deterministic for the same result")
	}
	if !bytes.Contains(a, []byte(`"fingerprint": "`)) {
		t.Errorf("JSON document missing fingerprint field:\n%s", a)
	}
	if !bytes.Contains(a, []byte(`"scheme": "Flash"`)) {
		t.Errorf("JSON document missing scheme field:\n%s", a)
	}
}
