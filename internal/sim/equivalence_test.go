package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// goldenMetrics are the sequential replay metrics of the seed engine
// (global-mutex pcn, sequential sim loop) on a fixed scenario, captured
// before the concurrency refactor. The workers=1 replay must reproduce
// them bit-for-bit: the refactor may add concurrency, never change
// sequential semantics.
var goldenMetrics = map[string]Metrics{
	KindRipple: {
		Payments: 400, Successes: 367,
		SuccessVolume: 117379.32086693803,
		AttemptVolume: 121982.66511485772,
		FeesPaid:      2676.537731053754,
		ProbeMessages: 4410, CommitMessages: 8566,
		MicePayments: 360, MiceSuccesses: 328,
		MiceSuccessVolume: 9566.295142798359,
		MiceProbeMessages: 2514,
		ElephantPayments:  40, ElephantSuccesses: 39,
		ElephantSuccessVol: 107813.02572413968,
		ElephantProbeMsgs:  1896,
	},
	KindLightning: {
		Payments: 400, Successes: 232,
		SuccessVolume: 5.236589909823013e+08,
		AttemptVolume: 8.851510638274593e+09,
		FeesPaid:      9.923662137750087e+06,
		ProbeMessages: 10298, CommitMessages: 12458,
		MicePayments: 360, MiceSuccesses: 231,
		MiceSuccessVolume: 3.84589654198156e+08,
		MiceProbeMessages: 5754,
		ElephantPayments:  40, ElephantSuccesses: 1,
		ElephantSuccessVol: 1.3906933678414533e+08,
		ElephantProbeMsgs:  4544,
	},
}

// goldenRun replays the fixed golden scenario with the given options.
func goldenRun(t *testing.T, kind string, opts Options) Metrics {
	return goldenRunProbe(t, kind, opts, 0)
}

// goldenRunProbe is goldenRun with Flash's probe pool width exposed
// (0/1 = the sequential seed path).
func goldenRunProbe(t *testing.T, kind string, opts Options, probeWorkers int) Metrics {
	t.Helper()
	net, err := BuildNetwork(kind, 120, 10, 0, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig(net.Graph().NumNodes())
	cfg.Graph = net.Graph()
	cfg.Seed = 42
	if kind == KindLightning {
		cfg.Sizes = trace.BitcoinSizes
	}
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payments := gen.Generate(400)
	threshold := core.ThresholdForMiceFraction(trace.Amounts(payments), 0.9)
	r, err := BuildRouter(RouterSpec{Scheme: SchemeFlash, Threshold: threshold, ProbeWorkers: probeWorkers, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunOpts(net, r, payments, threshold, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// stripDelays zeroes the wall-clock fields, the only metrics that
// legitimately vary between replays of identical work.
func stripDelays(m Metrics) Metrics {
	m.TotalDelay = 0
	m.MiceDelay = 0
	return m
}

// TestSequentialMatchesSeedGolden pins Run (and RunOpts with Workers ≤
// 1, which must be the same code path) to the exact metrics of the
// pre-refactor sequential engine.
func TestSequentialMatchesSeedGolden(t *testing.T) {
	for kind, want := range goldenMetrics {
		for _, workers := range []int{0, 1} {
			got := stripDelays(goldenRun(t, kind, Options{Workers: workers}))
			if got != want {
				t.Errorf("%s workers=%d diverged from seed golden:\n got  %+v\n want %+v", kind, workers, got, want)
			}
		}
	}
}

// TestConcurrentReplayInvariants checks what a concurrent replay must
// still guarantee even though payment interleaving is free: every
// payment is replayed exactly once, classification is
// workers-independent, and volumes stay self-consistent.
func TestConcurrentReplayInvariants(t *testing.T) {
	want := goldenMetrics[KindRipple]
	got := goldenRun(t, KindRipple, Options{Workers: 8, Seed: 42})
	if got.Payments != want.Payments {
		t.Errorf("payments = %d, want %d", got.Payments, want.Payments)
	}
	if got.MicePayments != want.MicePayments || got.ElephantPayments != want.ElephantPayments {
		t.Errorf("classification changed: %d mice / %d elephants, want %d / %d",
			got.MicePayments, got.ElephantPayments, want.MicePayments, want.ElephantPayments)
	}
	// Attempt volume is a float sum: shard merge order may shift the
	// last ulp, so compare with relative tolerance.
	if diff := math.Abs(got.AttemptVolume - want.AttemptVolume); diff > 1e-9*want.AttemptVolume {
		t.Errorf("attempt volume = %v, want %v", got.AttemptVolume, want.AttemptVolume)
	}
	if got.Successes == 0 || got.SuccessVolume <= 0 {
		t.Error("concurrent replay delivered nothing")
	}
	if got.SuccessVolume > got.AttemptVolume {
		t.Errorf("delivered %v exceeds attempted %v", got.SuccessVolume, got.AttemptVolume)
	}
	if got.Successes > got.Payments {
		t.Errorf("successes %d exceed payments %d", got.Successes, got.Payments)
	}
}

// TestParallelSchemesMatchesRestoreLoop verifies the documented claim
// on Scenario.ParallelSchemes: with sequential replay it is a pure
// wall-clock optimisation — scheme metrics are identical to the
// sequential restore loop.
func TestParallelSchemesMatchesRestoreLoop(t *testing.T) {
	base := DefaultScenario(KindRipple, 80)
	base.Txns = 200
	base.Runs = 2

	seq := base
	par := base
	par.ParallelSchemes = true

	seqRes, err := RunScenario(seq)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := RunScenario(par)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqRes {
		if seqRes[i].Scheme != parRes[i].Scheme {
			t.Fatalf("scheme order diverged: %s vs %s", seqRes[i].Scheme, parRes[i].Scheme)
		}
		for run := range seqRes[i].Runs {
			a := stripDelays(seqRes[i].Runs[run])
			b := stripDelays(parRes[i].Runs[run])
			if a != b {
				t.Errorf("%s run %d diverged:\n restore  %+v\n parallel %+v", seqRes[i].Scheme, run, a, b)
			}
		}
	}
}
