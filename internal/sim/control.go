package sim

import (
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/topo"
)

// This file is the dynamic engine's side of the control plane: the
// per-window accumulator that feeds control.Metrics to the
// controllers, the decision application switch, and the result-facing
// per-knob status. The contract with internal/control is strict — the
// engine observes, controllers decide, the engine applies and logs —
// so everything stateful about *applying* decisions lives here, and
// everything stateful about *making* them lives in the controllers.

// ControlKnobStatus is one knob's decision rollup in a DynamicResult:
// how many control decisions moved it and the last effective value
// applied. Rendered in the run footer and the JSON report so telemetry
// consumers can correlate decisions with window metrics.
type ControlKnobStatus struct {
	Knob      string  `json:"knob"`
	Decisions int     `json:"decisions"`
	Last      float64 `json:"last"`
}

// controlState carries the engine's control-plane runtime: the plane,
// the current observation window's accumulator, and the per-knob
// decision rollups. nil when no controller is engaged.
type controlState struct {
	plane *control.Plane
	// legacy replays the pre-control-plane event stream: the plane is
	// exactly the raw-threshold policy (what AdaptiveThreshold maps
	// to), ticks stay event.ThresholdUpdate, and only the tick — never
	// per-decision events — is logged, byte-identical to the engine
	// before internal/control existed.
	legacy bool

	index int     // completed observe passes
	start float64 // current observation window's start

	// Accumulators over the current observation window.
	arrivals          int
	payments          int
	successes         int
	elephants         int
	elephantSucc      int
	mice              int
	miceSucc          int
	elephantProbeOps  int
	elephantPathsUsed int
	probeMsgs         int64

	decisions int // applied decisions, all knobs
	status    [control.NumKnobs]ControlKnobStatus
}

// newControlState builds the engine's control runtime for a resolved
// policy plus any test-hook controllers. Returns nil when nothing is
// engaged (no controllers, or a router without tunable knobs).
func newControlState(policy control.Policy, hook []control.Controller, fl *core.Flash) (*controlState, error) {
	if fl == nil || (!policy.Enabled() && len(hook) == 0) {
		return nil, nil
	}
	cs, err := policy.Controllers()
	if err != nil {
		return nil, err
	}
	cs = append(cs, hook...)
	if len(cs) == 0 {
		return nil, nil
	}
	return &controlState{
		plane:  control.NewPlane(cs...),
		legacy: policy.Threshold == "raw" && !policy.PerSender && !policy.ProbeWidth && len(hook) == 0,
	}, nil
}

// tickKind is the cadence event kind: the legacy shim keeps the
// historical ThresholdUpdate events, the general plane drives
// ControlUpdate ticks.
func (c *controlState) tickKind() event.Kind {
	if c.legacy {
		return event.ThresholdUpdate
	}
	return event.ControlUpdate
}

// arrival feeds one first-attempt arrival to the plane's estimators.
func (c *controlState) arrival(sender topo.NodeID, amount float64) {
	c.arrivals++
	c.plane.ObserveArrival(sender, amount)
}

// completedPayment accumulates one settled payment into the current
// observation window, classified against the threshold in effect for
// its sender at completion.
func (c *controlState) completedPayment(amount, effThreshold float64, t routeOutcome) {
	c.payments++
	if t.delivered {
		c.successes++
	}
	c.probeMsgs += t.probeMsgs
	if amount > effThreshold {
		c.elephants++
		c.elephantProbeOps += t.probeOps
		if t.delivered {
			c.elephantSucc++
			c.elephantPathsUsed += t.paths
		}
	} else {
		c.mice++
		if t.delivered {
			c.miceSucc++
		}
	}
}

// snapshot assembles the control.Metrics for an observe pass ending at
// t, then resets the accumulator for the next window.
func (c *controlState) snapshot(t, threshold float64, probeWidth int) control.Metrics {
	m := control.Metrics{
		Index:             c.index,
		Start:             c.start,
		End:               t,
		Arrivals:          c.arrivals,
		Payments:          c.payments,
		Successes:         c.successes,
		Elephants:         c.elephants,
		ElephantSuccesses: c.elephantSucc,
		Mice:              c.mice,
		MiceSuccesses:     c.miceSucc,
		ElephantProbeOps:  c.elephantProbeOps,
		ElephantPathsUsed: c.elephantPathsUsed,
		ProbeMessages:     int(c.probeMsgs),
		Threshold:         threshold,
		ProbeWidth:        probeWidth,
	}
	c.index++
	c.start = t
	c.arrivals, c.payments, c.successes = 0, 0, 0
	c.elephants, c.elephantSucc, c.mice, c.miceSucc = 0, 0, 0, 0
	c.elephantProbeOps, c.elephantPathsUsed, c.probeMsgs = 0, 0, 0
	return m
}

// applied records one applied decision's effective value in the
// per-knob rollup.
func (c *controlState) applied(k control.Knob, eff float64) {
	c.decisions++
	if int(k) < len(c.status) {
		st := &c.status[k]
		st.Knob = k.String()
		st.Decisions++
		st.Last = eff
	}
}

// knobStatus returns the per-knob rollups for knobs that decided at
// least once, in knob-code order.
func (c *controlState) knobStatus() []ControlKnobStatus {
	var out []ControlKnobStatus
	for _, st := range c.status {
		if st.Decisions > 0 {
			out = append(out, st)
		}
	}
	return out
}
