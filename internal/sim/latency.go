package sim

import "repro/internal/stats"

// LatencyStats is a streaming summary of payment completion latencies
// (virtual completion instant − first-attempt arrival, in seconds):
// count, sum and max exactly, and p50/p95/p99 via the P² streaming
// quantile estimator (stats.QuantileEstimator) — O(1) memory per
// window, deterministic for a deterministic observation order, which
// the Workers ≤ 1 engine guarantees.
//
// The zero value is ready to use and renders as "no observations";
// estimators are allocated lazily on the first Observe so
// latency-free runs never pay for them.
type LatencyStats struct {
	// Count, Sum and Max are exact over every observed latency.
	Count int
	Sum   float64
	Max   float64

	p50, p95, p99 *stats.QuantileEstimator
}

// Observe feeds one completion latency (seconds).
func (l *LatencyStats) Observe(v float64) {
	if l.p50 == nil {
		l.p50 = stats.NewQuantileEstimator(0.50)
		l.p95 = stats.NewQuantileEstimator(0.95)
		l.p99 = stats.NewQuantileEstimator(0.99)
	}
	l.Count++
	l.Sum += v
	if v > l.Max {
		l.Max = v
	}
	l.p50.Add(v)
	l.p95.Add(v)
	l.p99.Add(v)
}

// Mean returns the average observed latency, 0 when empty.
func (l *LatencyStats) Mean() float64 {
	if l.Count == 0 {
		return 0
	}
	return l.Sum / float64(l.Count)
}

// P50 returns the median completion latency estimate, 0 when empty.
func (l *LatencyStats) P50() float64 { return quantileOrZero(l.p50) }

// P95 returns the 95th-percentile completion latency estimate, 0 when
// empty.
func (l *LatencyStats) P95() float64 { return quantileOrZero(l.p95) }

// P99 returns the 99th-percentile completion latency estimate, 0 when
// empty.
func (l *LatencyStats) P99() float64 { return quantileOrZero(l.p99) }

func quantileOrZero(q *stats.QuantileEstimator) float64 {
	if q == nil {
		return 0
	}
	return q.Quantile()
}
