package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Topology kinds understood by BuildNetwork.
const (
	KindRipple    = "ripple"    // scale-free, Ripple crawl density, $-denominated
	KindLightning = "lightning" // scale-free, Lightning snapshot density, satoshi
	KindTestbed   = "testbed"   // Watts–Strogatz small world (paper §5.2)

	// KindSnapshotPrefix marks a kind of the form "snapshot:<path>":
	// the topology and channel capacities are ingested from the file
	// (LN channel-graph JSON or a Ripple capacity edge list — see
	// topo.LoadSnapshotFile) instead of generated, and the scenario's
	// node count is ignored. Balances split each ingested capacity
	// evenly per direction; fees follow the paper's model, seeded.
	KindSnapshotPrefix = "snapshot:"
)

// Scheme names understood by NewRouter.
const (
	SchemeFlash         = "Flash"
	SchemeFlashNoOpt    = "Flash-NoOpt"
	SchemeSpider        = "Spider"
	SchemeSpeedyMurmurs = "SpeedyMurmurs"
	SchemeShortestPath  = "ShortestPath"
	SchemeMaxFlow       = "MaxFlow-FullProbe"
)

// PaperSchemes is the comparison set of Figures 6 and 7.
var PaperSchemes = []string{SchemeFlash, SchemeSpider, SchemeSpeedyMurmurs, SchemeShortestPath}

// Scenario describes one experiment cell: a topology, a workload and the
// schemes to compare on it.
type Scenario struct {
	Kind        string  // KindRipple, KindLightning or KindTestbed
	Nodes       int     // topology size (paper: 1870 Ripple / 2511 Lightning / 50–100 testbed)
	Txns        int     // number of payments to replay
	ScaleFactor float64 // capacity scale factor (Figures 6/7 sweep this)

	// MiceFraction sets Flash's elephant threshold as a workload
	// quantile (paper: 0.9 — 90% of payments are mice).
	MiceFraction float64

	// FlashK / FlashM override Flash's path counts when > 0 (defaults:
	// paper's k=20, m=4). FlashMSet forces FlashM to be honoured even
	// when zero (m=0 routes mice as elephants, Figure 11).
	FlashK    int
	FlashM    int
	FlashMSet bool

	// FlashFixedMiceOrder and FlashProbeAllK select the ablation
	// variants of core.Config (see that package for semantics).
	FlashFixedMiceOrder bool
	FlashProbeAllK      bool

	// TestbedCapLo/Hi set the uniform capacity range for KindTestbed
	// (paper: [1000,1500), [1500,2000), [2000,2500) USD).
	TestbedCapLo float64
	TestbedCapHi float64

	// Concurrency is the number of payment workers replaying each
	// scheme's workload (sim.Options.Workers). 0 or 1 is the sequential
	// replay; larger values model concurrent senders over the shared
	// network.
	Concurrency int

	// Retries re-routes failed payments up to this many extra times
	// with jittered backoff (sim.Options.Retries).
	Retries int

	// ProbeWorkers sets the per-session probe pool of Flash's elephant
	// routing (core.Config.ProbeWorkers): > 1 probes that many
	// speculative candidate paths concurrently per round; ≤ 1 — the
	// default — keeps the sequential Algorithm 1 loop, byte-identical
	// to the seed engine. Only Flash variants consult it.
	ProbeWorkers int

	// TableCap bounds each sender shard's mice routing table to this
	// many receiver entries, LRU-evicted (core.Config.TableCap). ≤ 0 —
	// the default — keeps tables unbounded. Only Flash variants
	// consult it; snapshot-scale runs use it to bound resident memory.
	TableCap int

	// ParallelSchemes runs the scenario's schemes concurrently, each on
	// its own identically-seeded network and workload, instead of
	// restoring one network between schemes. With sequential replay
	// (Concurrency ≤ 1) the results are identical to the restore loop —
	// network construction and workload generation are pure functions of
	// the run seed — so this is a pure wall-clock optimisation.
	ParallelSchemes bool

	// FlowSink, when non-nil, receives one telemetry.FlowRecord per
	// completed payment across every scheme and run
	// (sim.Options.FlowSink). Observer-only; metrics are unchanged.
	FlowSink telemetry.Sink

	Schemes []string
	Runs    int
	Seed    int64
}

// DefaultScenario returns the paper's base simulation cell for a
// topology kind: 2000 transactions, capacity scale factor 10, 90% mice,
// all four schemes, 5 runs.
func DefaultScenario(kind string, nodes int) Scenario {
	return Scenario{
		Kind:         kind,
		Nodes:        nodes,
		Txns:         2000,
		ScaleFactor:  10,
		MiceFraction: 0.9,
		Schemes:      PaperSchemes,
		Runs:         5,
		Seed:         1,
	}
}

// BuildNetwork constructs a funded network of the given kind. Balances
// follow the paper's setup: Ripple channels are funded log-normally with
// median ≈$250 split evenly per direction (the paper redistributes
// Ripple funds evenly); Lightning channels with median ≈500,000 satoshi
// and a skewed random split (the crawled distribution is used directly);
// the testbed kind draws uniform capacities in [lo, hi). Fees follow the
// Figure 9 model on all kinds.
func BuildNetwork(kind string, nodes int, scale float64, capLo, capHi float64, seed int64) (*pcn.Network, error) {
	if path, ok := strings.CutPrefix(kind, KindSnapshotPrefix); ok {
		return buildNetworkFromSnapshot(path, scale, seed)
	}
	rng := stats.NewRNG(seed, 0x70B0)
	var (
		g   *topo.Graph
		err error
	)
	switch kind {
	case KindRipple:
		g, err = topo.RippleLike(nodes, rng)
	case KindLightning:
		g, err = topo.LightningLike(nodes, rng)
	case KindTestbed:
		g, err = topo.WattsStrogatz(nodes, 4, 0.3, rng)
	default:
		return nil, fmt.Errorf("sim: unknown topology kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	net := pcn.New(g)
	balRNG := stats.NewRNG(seed, 0xBA1A)
	switch kind {
	case KindRipple:
		net.AssignBalancesLogNormal(balRNG, 250, 1.5, true)
	case KindLightning:
		net.AssignBalancesLogNormal(balRNG, 500000, 2.0, false)
	case KindTestbed:
		if capHi <= capLo {
			capLo, capHi = 1000, 1500
		}
		net.AssignBalancesUniform(balRNG, capLo, capHi)
	}
	if scale > 0 && scale != 1 {
		net.ScaleBalances(scale)
	}
	net.AssignFeesPaper(stats.NewRNG(seed, 0xFEE5))
	return net, nil
}

// buildNetworkFromSnapshot funds a network from an ingested snapshot:
// capacities come from the file (split evenly per direction), fees from
// the paper's seeded model, and the capacity scale factor applies as on
// generated topologies.
func buildNetworkFromSnapshot(path string, scale float64, seed int64) (*pcn.Network, error) {
	snap, err := topo.LoadSnapshotFile(path)
	if err != nil {
		return nil, fmt.Errorf("sim: snapshot topology: %w", err)
	}
	net := pcn.New(snap.Graph)
	if err := net.AssignBalancesFromCapacities(snap.Capacity); err != nil {
		return nil, err
	}
	if scale > 0 && scale != 1 {
		net.ScaleBalances(scale)
	}
	net.AssignFeesPaper(stats.NewRNG(seed, 0xFEE5))
	return net, nil
}

// workloadFor builds the payment generator matching a topology kind:
// Ripple trace sizes for Ripple and the testbed (the paper drives the
// testbed with Ripple volumes), Bitcoin sizes for Lightning (with
// Ripple-style sender/receiver structure, as the paper maps Ripple pairs
// onto the Lightning topology).
func workloadFor(kind string, g *topo.Graph, seed int64) (*trace.Generator, error) {
	cfg := trace.DefaultConfig(g.NumNodes())
	cfg.Graph = g
	cfg.Seed = seed
	// Lightning-denominated topologies draw Bitcoin payment sizes: the
	// generated Lightning kind, and ingested snapshots in the LN JSON
	// format (".json" paths).
	if kind == KindLightning ||
		(strings.HasPrefix(kind, KindSnapshotPrefix) && strings.HasSuffix(strings.ToLower(kind), ".json")) {
		cfg.Sizes = trace.BitcoinSizes
	}
	return trace.NewGenerator(cfg)
}

// RouterSpec names a scheme together with every knob a scenario can
// turn on it. The zero value of each field means "paper default";
// non-Flash schemes ignore the Flash fields. BuildRouter is the single
// construction path behind NewRouter, NewRouterConfig and the scenario
// runners, so a new Flash knob only needs a field here.
type RouterSpec struct {
	Scheme    string
	Threshold float64 // Flash elephant threshold

	K    int  // elephant path budget override (> 0)
	M    int  // mice table paths override (> 0, or MSet)
	MSet bool // honour M even when zero (Figure 11's m=0)

	FixedMiceOrder bool // ablation: deterministic mice path order
	ProbeAllK      bool // ablation: no early exit in Algorithm 1
	ProbeWorkers   int  // per-session probe pool width (≤ 1 sequential)

	// TableCap bounds each sender shard's mice routing table to this
	// many receiver entries, LRU-evicted (core.Config.TableCap). ≤ 0 —
	// the default — keeps tables unbounded, byte-identical to the
	// historical engine.
	TableCap int

	Seed int64
}

// BuildRouter instantiates the scheme a spec describes.
func BuildRouter(spec RouterSpec) (route.Router, error) {
	mkFlash := func(noOpt bool) route.Router {
		cfg := core.DefaultConfig(spec.Threshold)
		if spec.K > 0 {
			cfg.K = spec.K
		}
		if spec.M > 0 || spec.MSet {
			cfg.M = spec.M
		}
		cfg.DisableFeeOpt = noOpt
		cfg.FixedMiceOrder = spec.FixedMiceOrder
		cfg.ProbeAllK = spec.ProbeAllK
		cfg.ProbeWorkers = spec.ProbeWorkers
		cfg.TableCap = spec.TableCap
		cfg.Seed = spec.Seed
		return core.New(cfg)
	}
	switch spec.Scheme {
	case SchemeFlash:
		return mkFlash(false), nil
	case SchemeFlashNoOpt:
		return mkFlash(true), nil
	case SchemeSpider:
		return baseline.NewSpider(4), nil
	case SchemeSpeedyMurmurs:
		return baseline.NewSpeedyMurmurs(3), nil
	case SchemeShortestPath:
		return baseline.NewShortestPath(), nil
	case SchemeMaxFlow:
		return baseline.NewMaxFlowFullProbe(), nil
	default:
		return nil, fmt.Errorf("sim: unknown scheme %q", spec.Scheme)
	}
}

// NewRouter instantiates a scheme by name with the paper's parameters.
// threshold is the elephant threshold for Flash variants; k/m override
// Flash's path counts when kSet/mSet request it. For the ablation
// variants use NewRouterConfig; for full control use BuildRouter.
func NewRouter(name string, threshold float64, k, m int, mSet bool, seed int64) (route.Router, error) {
	return BuildRouter(RouterSpec{Scheme: name, Threshold: threshold, K: k, M: m, MSet: mSet, Seed: seed})
}

// NewRouterConfig is NewRouter with the Flash ablation knobs exposed.
func NewRouterConfig(name string, threshold float64, k, m int, mSet, fixedOrder, probeAllK bool, seed int64) (route.Router, error) {
	return BuildRouter(RouterSpec{
		Scheme: name, Threshold: threshold, K: k, M: m, MSet: mSet,
		FixedMiceOrder: fixedOrder, ProbeAllK: probeAllK, Seed: seed,
	})
}

// routerSpec collects the scenario's Flash knobs for one scheme.
func (sc Scenario) routerSpec(scheme string, threshold float64, seed int64) RouterSpec {
	return RouterSpec{
		Scheme: scheme, Threshold: threshold,
		K: sc.FlashK, M: sc.FlashM, MSet: sc.FlashMSet,
		FixedMiceOrder: sc.FlashFixedMiceOrder, ProbeAllK: sc.FlashProbeAllK,
		ProbeWorkers: sc.ProbeWorkers,
		TableCap:     sc.TableCap,
		Seed:         seed,
	}
}

// SchemeResult collects the per-run metrics of one scheme in a
// scenario.
type SchemeResult struct {
	Scheme string
	Runs   []Metrics
}

// Mean applies f to every run and returns the mean.
func (r SchemeResult) Mean(f func(Metrics) float64) float64 {
	if len(r.Runs) == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range r.Runs {
		sum += f(m)
	}
	return sum / float64(len(r.Runs))
}

// Summary applies f to every run and returns min/mean/max.
func (r SchemeResult) Summary(f func(Metrics) float64) stats.Summary {
	var s stats.Summary
	for _, m := range r.Runs {
		s.Add(f(m))
	}
	return s
}

// RunScenario executes a scenario: Runs independent repetitions, each
// with a fresh topology, balance assignment and workload (all seeded),
// replaying the identical payment sequence once per scheme from
// identical starting balances. With ParallelSchemes the schemes of a
// repetition run concurrently on identically-seeded private networks;
// otherwise one network is restored between schemes.
func RunScenario(sc Scenario) ([]SchemeResult, error) {
	if sc.Runs < 1 {
		sc.Runs = 1
	}
	if sc.MiceFraction == 0 {
		sc.MiceFraction = 0.9
	}
	results := make([]SchemeResult, len(sc.Schemes))
	for i, s := range sc.Schemes {
		results[i] = SchemeResult{Scheme: s}
	}
	opts := Options{Workers: sc.Concurrency, Retries: sc.Retries, FlowSink: sc.FlowSink}
	for run := 0; run < sc.Runs; run++ {
		runSeed := sc.Seed + int64(run)*7919
		opts.Seed = runSeed
		if sc.ParallelSchemes {
			if err := runSchemesParallel(sc, runSeed, opts, results); err != nil {
				return nil, err
			}
			continue
		}
		net, err := BuildNetwork(sc.Kind, sc.Nodes, sc.ScaleFactor, sc.TestbedCapLo, sc.TestbedCapHi, runSeed)
		if err != nil {
			return nil, err
		}
		gen, err := workloadFor(sc.Kind, net.Graph(), runSeed)
		if err != nil {
			return nil, err
		}
		payments := gen.Generate(sc.Txns)
		threshold := core.ThresholdForMiceFraction(trace.Amounts(payments), sc.MiceFraction)
		snap := net.Snapshot()
		for i, scheme := range sc.Schemes {
			if err := net.Restore(snap); err != nil {
				return nil, err
			}
			r, err := BuildRouter(sc.routerSpec(scheme, threshold, runSeed))
			if err != nil {
				return nil, err
			}
			m, err := RunOpts(net, r, payments, threshold, opts)
			if err != nil {
				return nil, err
			}
			results[i].Runs = append(results[i].Runs, m)
		}
	}
	return results, nil
}

// runSchemesParallel replays one repetition's schemes concurrently.
// Each scheme builds its own network and workload from runSeed —
// identical across schemes by construction — so no cross-scheme state
// is shared and the results match the sequential restore loop.
func runSchemesParallel(sc Scenario, runSeed int64, opts Options, results []SchemeResult) error {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	run := make([]Metrics, len(sc.Schemes))
	for i, scheme := range sc.Schemes {
		wg.Add(1)
		go func(i int, scheme string) {
			defer wg.Done()
			m, err := runOneSchemeCell(sc, scheme, runSeed, opts)
			if err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("%s: %w", scheme, err))
				mu.Unlock()
				return
			}
			run[i] = m
		}(i, scheme)
	}
	wg.Wait()
	if len(errs) > 0 {
		return errs[0]
	}
	for i := range results {
		results[i].Runs = append(results[i].Runs, run[i])
	}
	return nil
}

// runOneSchemeCell builds a private network + workload for (scenario,
// runSeed) and replays it under scheme.
func runOneSchemeCell(sc Scenario, scheme string, runSeed int64, opts Options) (Metrics, error) {
	net, err := BuildNetwork(sc.Kind, sc.Nodes, sc.ScaleFactor, sc.TestbedCapLo, sc.TestbedCapHi, runSeed)
	if err != nil {
		return Metrics{}, err
	}
	gen, err := workloadFor(sc.Kind, net.Graph(), runSeed)
	if err != nil {
		return Metrics{}, err
	}
	payments := gen.Generate(sc.Txns)
	threshold := core.ThresholdForMiceFraction(trace.Amounts(payments), sc.MiceFraction)
	r, err := BuildRouter(sc.routerSpec(scheme, threshold, runSeed))
	if err != nil {
		return Metrics{}, err
	}
	return RunOpts(net, r, payments, threshold, opts)
}

// randPerm is a tiny helper kept for tests that need deterministic
// shuffles tied to a seed.
func randPerm(n int, seed int64) []int {
	return rand.New(rand.NewSource(seed)).Perm(n)
}
