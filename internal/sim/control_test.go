package sim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/trace"
)

// TestControlOffMatchesSeedGolden is the tentpole's feature-off pin:
// with no control policy — nil or the explicit zero policy — the
// engine reproduces the seed goldens exactly and applies no control
// events, so the refactor is invisible until opted into.
func TestControlOffMatchesSeedGolden(t *testing.T) {
	for _, kind := range []string{KindRipple, KindLightning} {
		for name, ctl := range map[string]*control.Policy{"nil": nil, "zero": {}} {
			res := goldenDynamicRun(t, kind, DynamicOptions{Workers: 1, Control: ctl})
			if got := stripDelays(res.Aggregate); got != goldenMetrics[kind] {
				t.Errorf("%s/%s: control-off run diverged from seed golden:\n got  %+v\n want %+v",
					kind, name, got, goldenMetrics[kind])
			}
			if res.EventCounts[event.ControlUpdate] != 0 || res.EventCounts[event.ThresholdUpdate] != 0 {
				t.Errorf("%s/%s: control events applied with the plane off", kind, name)
			}
			if res.ControlOn || res.AdaptiveView {
				t.Errorf("%s/%s: result advertises a control plane that never ran", kind, name)
			}
			var buf bytes.Buffer
			if err := WriteDynamicJSON(&buf, SchemeFlash, res); err != nil {
				t.Fatal(err)
			}
			for _, field := range []string{"controllers", "controlDecisions", "adaptive"} {
				if strings.Contains(buf.String(), field) {
					t.Errorf("%s/%s: control-off JSON leaks %q", kind, name, field)
				}
			}
		}
	}
}

// TestControlRawMatchesLegacyAdaptive pins the compat shim: the
// -control raw policy must replay the legacy AdaptiveThreshold mode's
// event stream byte-for-byte — same fingerprint, same rendered bytes,
// same ThresholdUpdate events — because it IS the same policy, moved
// behind the Controller contract.
func TestControlRawMatchesLegacyAdaptive(t *testing.T) {
	run := func(mutate func(*DynamicScenario)) DynamicSchemeResult {
		sc, err := NamedDynamicScenario("demand-drift", KindRipple, 100)
		if err != nil {
			t.Fatal(err)
		}
		sc.Duration = 20
		sc.Schemes = []string{SchemeFlash}
		sc.Seed = 11
		mutate(&sc)
		results, err := RunDynamicScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		return results[0]
	}
	legacy := run(func(sc *DynamicScenario) {}) // catalogue preset: AdaptiveThreshold on
	viaControl := run(func(sc *DynamicScenario) {
		sc.AdaptiveThreshold = false
		sc.Control = &control.Policy{Threshold: "raw", MiceFraction: sc.MiceFraction}
	})
	if legacy.Result.Fingerprint != viaControl.Result.Fingerprint {
		t.Fatalf("raw control policy diverged from legacy adaptive mode: %016x vs %016x",
			legacy.Result.Fingerprint, viaControl.Result.Fingerprint)
	}
	if legacy.Result.EventCounts[event.ThresholdUpdate] == 0 {
		t.Fatal("legacy run applied no threshold updates — the comparison is vacuous")
	}
	if n := viaControl.Result.EventCounts[event.ControlUpdate]; n != 0 {
		t.Errorf("legacy shim logged %d ControlUpdate events, want the historical ThresholdUpdate stream", n)
	}
	var bufA, bufB bytes.Buffer
	WriteDynamicResult(&bufA, legacy.Scheme, legacy.Result, true)
	WriteDynamicResult(&bufB, viaControl.Scheme, viaControl.Result, true)
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Errorf("rendered bytes diverged:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}
}

// TestControlFullPolicyDeterministicReplay is the controllers-on
// determinism pin: the full policy set at workers=1 replays with
// identical fingerprints and identical CLI/JSON bytes across runs, and
// the run actually exercises the general control path (ControlUpdate
// events, the re-classification view, the per-knob rollup).
func TestControlFullPolicyDeterministicReplay(t *testing.T) {
	run := func() DynamicSchemeResult {
		sc, err := NamedDynamicScenario("demand-drift", KindRipple, 100)
		if err != nil {
			t.Fatal(err)
		}
		sc.Duration = 20
		sc.Schemes = []string{SchemeFlash}
		sc.Seed = 11
		sc.AdaptiveThreshold = false
		sc.Control = &control.Policy{Threshold: "ewma", PerSender: true, ProbeWidth: true,
			MiceFraction: sc.MiceFraction}
		results, err := RunDynamicScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		return results[0]
	}
	a, b := run(), run()
	if a.Result.Fingerprint != b.Result.Fingerprint {
		t.Fatalf("fingerprints diverged: %016x vs %016x", a.Result.Fingerprint, b.Result.Fingerprint)
	}
	var tblA, tblB, jsA, jsB bytes.Buffer
	WriteDynamicResult(&tblA, a.Scheme, a.Result, true)
	WriteDynamicResult(&tblB, b.Scheme, b.Result, true)
	if !bytes.Equal(tblA.Bytes(), tblB.Bytes()) {
		t.Errorf("CLI rendering diverged across identical seeds:\n%s\nvs\n%s", tblA.String(), tblB.String())
	}
	if err := WriteDynamicJSON(&jsA, a.Scheme, a.Result); err != nil {
		t.Fatal(err)
	}
	if err := WriteDynamicJSON(&jsB, b.Scheme, b.Result); err != nil {
		t.Fatal(err)
	}
	// meanDelaySeconds is wall-clock (the one non-virtual field, same
	// reason stripDelays exists) — every other byte must match.
	stripWallClock := func(doc []byte) string {
		var kept []string
		for _, line := range strings.Split(string(doc), "\n") {
			if !strings.Contains(line, "meanDelaySeconds") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}
	if stripWallClock(jsA.Bytes()) != stripWallClock(jsB.Bytes()) {
		t.Error("JSON rendering diverged across identical seeds")
	}

	res := a.Result
	if !res.ControlOn || !res.AdaptiveView {
		t.Fatalf("general control plane not engaged: ControlOn=%v AdaptiveView=%v", res.ControlOn, res.AdaptiveView)
	}
	if res.EventCounts[event.ControlUpdate] == 0 {
		t.Error("no ControlUpdate events in a controlled run")
	}
	if res.EventCounts[event.ThresholdUpdate] != 0 {
		t.Error("general plane leaked legacy ThresholdUpdate events")
	}
	if res.ControlDecisions == 0 {
		t.Error("no control decisions applied in a drifting scenario")
	}
	total := 0
	for _, st := range res.Controllers {
		total += st.Decisions
	}
	if total != res.ControlDecisions {
		t.Errorf("per-knob rollup sums to %d, ControlDecisions = %d", total, res.ControlDecisions)
	}
	// The re-classification view accounts for every completed payment,
	// window by window and in aggregate.
	if got := res.Adaptive.MicePayments + res.Adaptive.ElephantPayments; got != res.Aggregate.Payments {
		t.Errorf("aggregate adaptive view classifies %d payments, aggregate has %d", got, res.Aggregate.Payments)
	}
	for i, w := range res.Windows {
		if got := w.Adaptive.MicePayments + w.Adaptive.ElephantPayments; got != w.Metrics.Payments {
			t.Errorf("window %d adaptive view classifies %d payments, window has %d", i, got, w.Metrics.Payments)
		}
	}
	// The rendered table and JSON carry the control surfaces.
	if !strings.Contains(tblA.String(), "control decisions") {
		t.Error("rendered table lacks the control-decision footer")
	}
	if !strings.Contains(tblA.String(), "mice ok/tot") {
		t.Error("rendered table lacks the re-classification columns")
	}
	for _, field := range []string{`"controllers"`, `"controlDecisions"`, `"adaptive"`} {
		if !strings.Contains(jsA.String(), field) {
			t.Errorf("controlled JSON lacks %q", field)
		}
	}
}

// demandDriftControlCell is demandDriftCell with an explicit control
// policy instead of the legacy flag — same scenario, same seeds, same
// fixed metrics threshold, so raw-vs-ewma runs are directly
// comparable.
func demandDriftControlCell(t *testing.T, policy *control.Policy, metricsThreshold float64) (DynamicResult, float64) {
	t.Helper()
	sc, err := NamedDynamicScenario("demand-drift", KindRipple, 150)
	if err != nil {
		t.Fatal(err)
	}
	sc.Duration = 40
	net, err := BuildNetwork(sc.Kind, sc.Nodes, sc.ScaleFactor, 0, 0, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	threshold, err := calibrateThreshold(sc, net.Graph())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workloadFor(sc.Kind, net.Graph(), sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := sc.arrivalProcess()
	if err != nil {
		t.Fatal(err)
	}
	stream, err := trace.NewStream(gen, arr, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	churn := buildChurnSchedule(sc, net, nil, newChurnRNG(sc.Seed))
	r, err := BuildRouter(RouterSpec{Scheme: SchemeFlash, Threshold: threshold, Seed: sc.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if metricsThreshold == 0 {
		metricsThreshold = threshold
	}
	res, err := RunDynamic(net, r, stream, sc.Duration, churn, metricsThreshold, DynamicOptions{
		Workers:      1,
		Seed:         sc.Seed,
		Control:      policy,
		MiceFraction: sc.MiceFraction,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, threshold
}

// TestControlEWMAFewerSwapsThanRaw is the PR's acceptance criterion:
// on the demand-drift scenario the EWMA-smoothed threshold policy
// makes strictly fewer threshold swaps than the raw per-window
// estimate — the tail-noise wobble is absorbed — at equal-or-better
// post-shift elephant success, both runs classified against the same
// fixed post-shift threshold.
func TestControlEWMAFewerSwapsThanRaw(t *testing.T) {
	sc, err := NamedDynamicScenario("demand-drift", KindRipple, 150)
	if err != nil {
		t.Fatal(err)
	}
	_, preThreshold := demandDriftCell(t, false, 0)
	postThreshold := preThreshold * sc.DemandShiftFactor

	raw, _ := demandDriftCell(t, true, postThreshold)
	ewma, _ := demandDriftControlCell(t, &control.Policy{Threshold: "ewma"}, postThreshold)

	if raw.ThresholdUpdates == 0 {
		t.Fatal("raw policy made no swaps — the comparison is vacuous")
	}
	if ewma.ThresholdUpdates == 0 {
		t.Fatal("ewma policy never adapted")
	}
	if ewma.ThresholdUpdates >= raw.ThresholdUpdates {
		t.Errorf("ewma made %d swaps, want strictly fewer than raw's %d",
			ewma.ThresholdUpdates, raw.ThresholdUpdates)
	}

	shiftAt := 40 * sc.DemandShiftFrac
	postShift := func(res DynamicResult) (int, int) {
		elephants, successes := 0, 0
		for _, w := range res.Windows {
			if w.Start < shiftAt {
				continue
			}
			elephants += w.Metrics.ElephantPayments
			successes += w.Metrics.ElephantSuccesses
		}
		return elephants, successes
	}
	rp, rs := postShift(raw)
	ep, es := postShift(ewma)
	if rp == 0 || ep == 0 {
		t.Fatalf("no post-shift elephants classified (raw %d, ewma %d)", rp, ep)
	}
	rawRatio := float64(rs) / float64(rp)
	ewmaRatio := float64(es) / float64(ep)
	t.Logf("swaps: raw %d, ewma %d; post-shift elephant success: raw %d/%d (%.1f%%), ewma %d/%d (%.1f%%)",
		raw.ThresholdUpdates, ewma.ThresholdUpdates, rs, rp, 100*rawRatio, es, ep, 100*ewmaRatio)
	if ewmaRatio < rawRatio {
		t.Errorf("ewma post-shift elephant success ratio %.3f below raw's %.3f", ewmaRatio, rawRatio)
	}
	// And the smoothing must still track the 4× collapse.
	if ewma.FinalThreshold >= preThreshold {
		t.Errorf("ewma final threshold %.4g did not drop below the pre-shift calibration %.4g",
			ewma.FinalThreshold, preThreshold)
	}
}

// tickController is a scripted Controller: it emits a fixed decision
// list on its first Observe pass only — the seam for driving every
// knob's application path without a real policy.
type tickController struct {
	decisions []control.Decision
	passes    int
}

func (c *tickController) Name() string { return "scripted" }
func (c *tickController) Observe(w control.Metrics) []control.Decision {
	c.passes++
	if c.passes == 1 {
		return c.decisions
	}
	return nil
}

// TestScriptedControlAppliesEveryKnob drives the general control path
// with a scripted controller touching all four knobs, and checks the
// full application chain: router state, result rollups, event log, and
// telemetry counters.
func TestScriptedControlAppliesEveryKnob(t *testing.T) {
	g := topo.New(3)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(0, 2)
	net := pcnNew(t, g, 1e6)
	fl := core.New(core.DefaultConfig(100))

	script := &tickController{decisions: []control.Decision{
		{Knob: control.KnobThreshold, Value: 42},
		{Knob: control.KnobSenderThreshold, Sender: 0, Value: 5},
		{Knob: control.KnobProbeWidth, Value: 3},
		{Knob: control.KnobRetryBackoff, Value: 2},
		{Knob: control.KnobRetryBackoff, Value: -1}, // invalid: must be skipped
	}}
	reg := telemetry.NewRegistry()
	RegisterRouterMetrics(reg, SchemeFlash, fl)
	src := newScaledSource(10, 1, 3, 5, 7, 9)
	res, err := RunDynamic(net, fl, src, 10, nil, 100, DynamicOptions{
		Workers:     1,
		Window:      2,
		Registry:    reg,
		controlHook: []control.Controller{script},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Router state reflects the applied decisions.
	if got := fl.Threshold(); got != 42 {
		t.Errorf("global threshold = %g, want 42", got)
	}
	if v, ok := fl.SenderThreshold(0); !ok || v != 5 {
		t.Errorf("sender 0 threshold = %g, %v, want 5, true", v, ok)
	}
	if got := fl.ThresholdFor(0); got != 5 {
		t.Errorf("ThresholdFor(0) = %g, want the per-sender 5", got)
	}
	if got := fl.ThresholdFor(1); got != 42 {
		t.Errorf("ThresholdFor(1) = %g, want the global 42", got)
	}
	if got := fl.ProbeWorkers(); got != 3 {
		t.Errorf("probe width = %d, want 3", got)
	}
	st := fl.Stats()
	if st.SenderThresholdUpdates != 1 || st.ProbeWidthUpdates != 1 || st.SenderThresholds != 1 {
		t.Errorf("router stats %+v, want 1 sender update, 1 width update, 1 tracked sender", st)
	}

	// Result rollups: 4 applied decisions (the invalid backoff skipped),
	// one per knob.
	if !res.ControlOn {
		t.Fatal("ControlOn false on a hook-driven run")
	}
	if res.ControlDecisions != 4 {
		t.Errorf("ControlDecisions = %d, want 4", res.ControlDecisions)
	}
	if res.ThresholdUpdates != 1 {
		t.Errorf("ThresholdUpdates = %d, want 1", res.ThresholdUpdates)
	}
	want := map[string]float64{"threshold": 42, "sender-threshold": 5, "probe-width": 3, "retry-backoff": 2}
	if len(res.Controllers) != len(want) {
		t.Fatalf("per-knob rollup %+v, want %d knobs", res.Controllers, len(want))
	}
	for _, stt := range res.Controllers {
		if stt.Decisions != 1 || stt.Last != want[stt.Knob] {
			t.Errorf("knob %s: %d decisions last %g, want 1 decision last %g",
				stt.Knob, stt.Decisions, stt.Last, want[stt.Knob])
		}
	}
	// Event log: one bare tick per cadence window (2s over a 10s
	// horizon: ticks at 2,4,6,8) plus the 4 decision events.
	if got := res.EventCounts[event.ControlUpdate]; got != 4+4 {
		t.Errorf("ControlUpdate events = %d, want 8 (4 bare ticks + 4 decisions)", got)
	}

	// Telemetry: per-knob decision counters and last-value gauges.
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for knob := range want {
		if !strings.Contains(prom.String(), `sim_control_decisions_total{knob="`+knob+`"`) {
			t.Errorf("registry lacks decision counter for %s:\n%s", knob, prom.String())
		}
	}
	if !strings.Contains(prom.String(), "flash_probe_workers") {
		t.Errorf("registry lacks the probe-width gauge")
	}
}

// TestControlUpdateChurnRejected: ControlUpdate is engine-internal and
// must stay out of churn schedules, exactly like ThresholdUpdate.
func TestControlUpdateChurnRejected(t *testing.T) {
	g := topo.New(3)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(0, 2)
	net := pcnNew(t, g, 1e6)
	src := newScaledSource(10, 1)
	churn := []event.Event{{Time: 2, Kind: event.ControlUpdate, Amount: 5}}
	if _, err := RunDynamic(net, baselineShortestPath(t), src, 10, churn, 1e9, DynamicOptions{Workers: 1}); err == nil {
		t.Error("control-update event in churn schedule accepted")
	}
}

// TestControlRequiresFlash: control policies tune Flash's knobs; on a
// knob-less router the plane is simply inert rather than an error —
// mirrored on the legacy AdaptiveThreshold behaviour.
func TestControlRequiresFlash(t *testing.T) {
	g := topo.New(3)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(0, 2)
	net := pcnNew(t, g, 1e6)
	src := newScaledSource(10, 1, 3)
	res, err := RunDynamic(net, baselineShortestPath(t), src, 10, nil, 1e9, DynamicOptions{
		Workers: 1,
		Control: &control.Policy{Threshold: "ewma", PerSender: true, ProbeWidth: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ControlOn || res.EventCounts[event.ControlUpdate] != 0 {
		t.Errorf("control plane engaged on a knob-less router: ControlOn=%v events=%d",
			res.ControlOn, res.EventCounts[event.ControlUpdate])
	}
}

// TestControlBadPolicyRejected: an unknown threshold selector surfaces
// as a run error, not a silent no-op.
func TestControlBadPolicyRejected(t *testing.T) {
	g := topo.New(3)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(0, 2)
	net := pcnNew(t, g, 1e6)
	fl := core.New(core.DefaultConfig(100))
	src := newScaledSource(10, 1)
	if _, err := RunDynamic(net, fl, src, 10, nil, 100, DynamicOptions{
		Workers: 1,
		Control: &control.Policy{Threshold: "bogus"},
	}); err == nil {
		t.Error("unknown threshold policy accepted")
	}
}
