package sim

import (
	"testing"

	"repro/internal/event"
	"repro/internal/pcn"
	"repro/internal/topo"
	"repro/internal/trace"
)

// holdSpanFixture is the two-node network of the hold-span acceptance
// test: one channel 0–1 funded (10, 10), payment A sending 0→1 : 8 at
// t = 0.5s and payment B sending 1→0 : 12 at t = 1s. B needs 12 on the
// 1→0 direction, which only exists after A's 8 units settle — so B's
// fate depends entirely on *when* A's commit lands.
func holdSpanFixture(t *testing.T) (*pcn.Network, []trace.Payment) {
	t.Helper()
	g := topo.New(2)
	g.MustAddChannel(0, 1)
	net := pcn.New(g)
	if err := net.SetBalance(0, 1, 10, 10); err != nil {
		t.Fatal(err)
	}
	payments := []trace.Payment{
		{ID: 0, Sender: 0, Receiver: 1, Amount: 8, Time: 0.5 / trace.SecondsPerDay},
		{ID: 1, Sender: 1, Receiver: 0, Amount: 12, Time: 1.0 / trace.SecondsPerDay},
	}
	return net, payments
}

// runHoldSpanFixture replays the fixture deterministically.
func runHoldSpanFixture(t *testing.T, service float64, retries int) DynamicResult {
	t.Helper()
	net, payments := holdSpanFixture(t)
	res, err := RunDynamic(net, baselineShortestPath(t), trace.NewReplayStream(payments), 60, nil, 1,
		DynamicOptions{Workers: 1, Seed: 3, Service: service, Retries: retries, RecordLog: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestHoldSpanBlocksThenUnblocks is the tentpole's acceptance
// demonstration: with hold spans enabled, payment B fails at its
// arrival instant *because* payment A's hold still occupies the
// channel — the 8 units A locked have not crossed yet — and succeeds
// on a retry scheduled after A's span commits. The identical workload
// with Service = 0 (atomic commit at dispatch) delivers B on its first
// attempt, pinning the hold as the only cause of the failure.
func TestHoldSpanBlocksThenUnblocks(t *testing.T) {
	// Service = 0: A settles at dispatch, so B's arrival at t=1s
	// already sees bal(1→0) = 18 and delivers first try.
	atomic := runHoldSpanFixture(t, 0, 4)
	if got := atomic.Aggregate.Successes; got != 2 {
		t.Fatalf("service=0: %d/2 delivered", got)
	}
	for _, e := range atomic.Log {
		if e.Kind == event.PaymentArrival && e.Attempt > 0 {
			t.Fatalf("service=0: unexpected retry %v", e)
		}
	}

	// Service > 0: A suspends on the yield seam; B arrives mid-span,
	// probes bal(1→0) = 10 < 12, fails, and only a retry after A's
	// commit-phase event can deliver it.
	spans := runHoldSpanFixture(t, 2, 6)
	if got := spans.Aggregate.Successes; got != 2 {
		t.Fatalf("service>0: %d/2 delivered (retries exhausted before A's span ended?)", got)
	}
	var (
		bRetries     int
		aCommitAt    = -1.0
		bDeliveredAt = -1.0
	)
	for _, e := range spans.Log {
		if e.Kind == event.PaymentArrival && e.ID == 1 && e.Attempt > 0 {
			bRetries++
		}
		if e.Kind == event.PaymentComplete && e.ID == 0 {
			aCommitAt = e.Time
		}
		if e.Kind == event.PaymentComplete && e.ID == 1 {
			bDeliveredAt = e.Time // last completion wins (the delivering one)
		}
	}
	if bRetries == 0 {
		t.Fatal("B never retried: its first attempt was not blocked by A's hold")
	}
	if aCommitAt < 0 || bDeliveredAt < aCommitAt {
		t.Errorf("B delivered at t=%v, before A's span committed at t=%v", bDeliveredAt, aCommitAt)
	}
	if spans.SpanAborts != 0 {
		t.Errorf("no channel closed, yet %d span aborts", spans.SpanAborts)
	}

	// Same seed, same bytes: the hold-span run is fully deterministic.
	again := runHoldSpanFixture(t, 2, 6)
	if again.Fingerprint != spans.Fingerprint {
		t.Errorf("hold-span fingerprints diverged: %x vs %x", spans.Fingerprint, again.Fingerprint)
	}
}

// contentionScenario is the catalogue contention cell at test scale.
func contentionScenario(t *testing.T) DynamicScenario {
	t.Helper()
	sc, err := NamedDynamicScenario("contention", KindRipple, 20)
	if err != nil {
		t.Fatal(err)
	}
	sc.Schemes = []string{SchemeShortestPath}
	sc.Workers = 1
	sc.Seed = 11
	return sc
}

// TestContentionScenarioDegradesThenRecovers pins the contention
// catalogue entry's time-series shape: with hold spans the bridge
// channel saturates under overlapping holds — some windows lose
// payments — and drains back to full success; the identical cell with
// Service = 0 never fails at all, attributing every failure to holds
// spanning virtual time.
func TestContentionScenarioDegradesThenRecovers(t *testing.T) {
	run := func(service float64) DynamicResult {
		sc := contentionScenario(t)
		sc.Service = service
		results, err := RunDynamicScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		return results[0].Result
	}

	atomic := run(0)
	if got := atomic.Aggregate.SuccessRatio(); got != 1 {
		t.Fatalf("service=0 contention run lost payments: ratio %.3f", got)
	}

	spans := run(2)
	agg := spans.Aggregate
	if agg.Successes == agg.Payments {
		t.Fatal("contention scenario produced no contention: every payment delivered")
	}
	if agg.Successes == 0 {
		t.Fatal("contention scenario delivered nothing")
	}
	ratios := spans.WindowRatios()
	minRatio, last := 1.0, ratios[len(ratios)-1]
	for _, r := range ratios {
		if r < minRatio {
			minRatio = r
		}
	}
	if minRatio >= 1 {
		t.Errorf("no window degraded: ratios %v", ratios)
	}
	if last <= minRatio {
		t.Errorf("success never recovered after holds drained: min %.3f, final window %.3f (ratios %v)", minRatio, last, ratios)
	}

	// Deterministic: same seed, same windows and fingerprint.
	again := run(2)
	if again.Fingerprint != spans.Fingerprint {
		t.Fatalf("contention fingerprints diverged: %x vs %x", spans.Fingerprint, again.Fingerprint)
	}
	for i := range spans.Windows {
		if stripDelays(spans.Windows[i].Metrics) != stripDelays(again.Windows[i].Metrics) {
			t.Errorf("window %d diverged across same-seed runs", i)
		}
	}
}

// TestHubFailureScenarioAbortsInFlightHolds pins the hub-failure
// catalogue entry: every channel of the top-degree node closes
// mid-run, payments suspended across the failure abort
// (DynamicResult.SpanAborts), and the post-failure success ratio drops
// below the pre-failure level — deterministically.
func TestHubFailureScenarioAbortsInFlightHolds(t *testing.T) {
	run := func() DynamicResult {
		sc, err := NamedDynamicScenario("hub-failure", KindRipple, 80)
		if err != nil {
			t.Fatal(err)
		}
		sc.Duration = 20
		sc.Schemes = []string{SchemeFlash}
		sc.Workers = 1
		sc.Seed = 7
		results, err := RunDynamicScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		return results[0].Result
	}
	res := run()
	if res.EventCounts[event.ChannelClose] == 0 {
		t.Fatal("hub failure closed no channels")
	}
	if res.SpanAborts == 0 {
		t.Error("no in-flight hold aborted at the hub failure")
	}
	// Success degrades once the hub is gone: compare the windows fully
	// before and fully after the failure instant (t = Duration/2).
	var pre, post Metrics
	for _, w := range res.Windows {
		if w.End <= res.Horizon/2 {
			pre.Merge(w.Metrics)
		}
		if w.Start >= res.Horizon/2 {
			post.Merge(w.Metrics)
		}
	}
	if pre.Payments == 0 || post.Payments == 0 {
		t.Fatalf("degenerate window split: pre %d, post %d payments", pre.Payments, post.Payments)
	}
	if post.SuccessRatio() >= pre.SuccessRatio() {
		t.Errorf("hub failure invisible: success %.3f before vs %.3f after", pre.SuccessRatio(), post.SuccessRatio())
	}

	again := run()
	if again.Fingerprint != res.Fingerprint || again.SpanAborts != res.SpanAborts {
		t.Errorf("hub-failure runs diverged: fp %x/%x, aborts %d/%d",
			res.Fingerprint, again.Fingerprint, res.SpanAborts, again.SpanAborts)
	}
}

// TestHoldSpanServiceZeroUnchanged re-pins the compatibility
// guarantee with the hold-span machinery in place: Service = 0 dynamic
// runs still reproduce the sequential replay exactly (the zero-churn
// equivalence test covers the metrics; this asserts the fingerprint is
// also stable across runs, i.e. the engine stayed deterministic).
func TestHoldSpanServiceZeroUnchanged(t *testing.T) {
	a := goldenDynamicRun(t, KindRipple, DynamicOptions{Workers: 1})
	b := goldenDynamicRun(t, KindRipple, DynamicOptions{Workers: 1, Service: 0})
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("explicit Service=0 changed the event log: %x vs %x", a.Fingerprint, b.Fingerprint)
	}
	if stripDelays(a.Aggregate) != stripDelays(b.Aggregate) {
		t.Errorf("explicit Service=0 changed metrics")
	}
	if a.SpanAborts != 0 || b.SpanAborts != 0 {
		t.Errorf("span aborts counted without hold spans: %d, %d", a.SpanAborts, b.SpanAborts)
	}
}
