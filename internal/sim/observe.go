package sim

import (
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// emitFlow stamps one completed payment into a pooled flow record and
// hands it to sink. Strictly observer-only: everything recorded is a
// value the harness already computed; nothing here touches RNGs,
// network state, or control flow.
func emitFlow(sink telemetry.Sink, scheme string, p trace.Payment, miceThreshold float64, t routeOutcome, attempts int, arrival, complete float64, outcome string) {
	rec := telemetry.AcquireFlow()
	rec.ID = int64(p.ID)
	rec.Scheme = scheme
	rec.Sender = int64(p.Sender)
	rec.Receiver = int64(p.Receiver)
	rec.Amount = p.Amount
	rec.Class = telemetry.ClassElephant
	if p.Amount <= miceThreshold {
		rec.Class = telemetry.ClassMouse
	}
	rec.Attempts = attempts
	rec.ProbeRounds = t.probeOps
	rec.ProbeMessages = t.probeMsgs
	rec.CommitMessages = t.commitMsgs
	rec.Paths = t.paths
	rec.Fees = t.fees
	rec.Arrival = arrival
	rec.Complete = complete
	rec.ProbeLatency = float64(t.probeLatNanos) / 1e9
	rec.CommitLatency = float64(t.commitLatNanos) / 1e9
	rec.WallNS = int64(t.elapsed)
	rec.Outcome = outcome
	sink.Emit(rec)
	telemetry.ReleaseFlow(rec)
}

// dynObserver is the dynamic engine's telemetry tap: per-completion
// registry rollups plus flow-record emission. A nil observer — the
// default when neither a sink nor a registry is configured — costs the
// engine a single branch per completion.
type dynObserver struct {
	sink   telemetry.Sink
	scheme string
	reg    *telemetry.Registry

	payments, successes, failures, spanAborts *telemetry.Counter
	expiries                                  *telemetry.Counter
	volume, fees                              *telemetry.Counter
	probeMsgs, commitMsgs                     *telemetry.Counter
	amounts, latency                          *telemetry.Histogram
	clock, threshold                          *telemetry.Gauge

	// Per-knob control-plane instruments, registered lazily on the
	// first decision touching each knob (a run without a control plane
	// exports no control series at all).
	ctlDecisions [control.NumKnobs]*telemetry.Counter
	ctlLast      [control.NumKnobs]*telemetry.Gauge
}

// newDynObserver builds the tap, registering the scheme-labelled
// instrument set when reg is non-nil. Returns nil when there is
// nothing to observe into.
func newDynObserver(scheme string, sink telemetry.Sink, reg *telemetry.Registry) *dynObserver {
	if sink == nil && reg == nil {
		return nil
	}
	o := &dynObserver{sink: sink, scheme: scheme, reg: reg}
	if reg != nil {
		lbl := `{scheme="` + scheme + `"}`
		o.payments = reg.Counter("sim_payments_total"+lbl, "Payments completed, all outcomes.")
		o.successes = reg.Counter("sim_payments_delivered_total"+lbl, "Payments fully delivered.")
		o.failures = reg.Counter("sim_payments_failed_total"+lbl, "Payments undelivered after every attempt.")
		o.spanAborts = reg.Counter("sim_span_aborts_total"+lbl, "Payments aborted by churn during a hold span.")
		o.expiries = reg.Counter("sim_deadline_expiries_total"+lbl, "Hold spans expired at their HTLC deadline.")
		o.volume = reg.Counter("sim_success_volume"+lbl, "Delivered payment volume.")
		o.fees = reg.Counter("sim_fees_paid"+lbl, "Total fees paid by delivered payments.")
		o.probeMsgs = reg.Counter("sim_probe_messages_total"+lbl, "Probe messages across all attempts.")
		o.commitMsgs = reg.Counter("sim_commit_messages_total"+lbl, "Commit-phase messages across all attempts.")
		o.amounts = reg.Histogram("sim_payment_amount"+lbl, "Completed payment amounts.", telemetry.ExpBuckets(0.01, 10, 8))
		o.latency = reg.Histogram("sim_completion_latency_seconds"+lbl, "Virtual completion latency (completion − arrival) of settled payments.", telemetry.ExpBuckets(0.001, 10, 8))
		o.clock = reg.Gauge("sim_virtual_clock_seconds"+lbl, "Virtual time of the latest completion.")
		o.threshold = reg.Gauge("sim_elephant_threshold"+lbl, "Effective elephant classification threshold.")
	}
	return o
}

// completed records one settled payment: registry rollups and, when a
// sink is attached, the flow record. All times are virtual seconds.
func (o *dynObserver) completed(p trace.Payment, miceThreshold float64, t routeOutcome, attempts int, arrival, at float64, spanAborted, expired bool, curThreshold float64) {
	if o.payments != nil {
		o.payments.Inc()
		o.amounts.Observe(p.Amount)
		o.latency.Observe(at - arrival)
		o.probeMsgs.Add(float64(t.probeMsgs))
		o.commitMsgs.Add(float64(t.commitMsgs))
		switch {
		case t.delivered:
			o.successes.Inc()
			o.volume.Add(p.Amount)
			o.fees.Add(t.fees)
		case expired:
			o.expiries.Inc()
		case spanAborted:
			o.spanAborts.Inc()
		default:
			o.failures.Inc()
		}
		o.clock.Set(at)
		o.threshold.Set(curThreshold)
	}
	if o.sink != nil {
		outcome := telemetry.OutcomeFailed
		switch {
		case t.delivered:
			outcome = telemetry.OutcomeDelivered
		case expired:
			outcome = telemetry.OutcomeDeadlineExpired
		case spanAborted:
			outcome = telemetry.OutcomeSpanAbort
		}
		emitFlow(o.sink, o.scheme, p, miceThreshold, t, attempts, arrival, at, outcome)
	}
}

// decided records one applied control-plane decision: a per-knob
// decision counter and a per-knob last-value gauge, so telemetry
// consumers can correlate knob moves with the window metrics around
// them. Instruments register lazily per knob.
func (o *dynObserver) decided(k control.Knob, eff float64) {
	if o.reg == nil || int(k) >= control.NumKnobs {
		return
	}
	if o.ctlDecisions[k] == nil {
		lbl := `{knob="` + k.String() + `",scheme="` + o.scheme + `"}`
		o.ctlDecisions[k] = o.reg.Counter("sim_control_decisions_total"+lbl, "Applied control-plane decisions for this knob.")
		o.ctlLast[k] = o.reg.Gauge("sim_control_last_value"+lbl, "Last effective value a control decision set this knob to.")
	}
	o.ctlDecisions[k].Inc()
	o.ctlLast[k].Set(eff)
}

// RegisterRouterMetrics exposes a router's internal statistics as
// scheme-labelled gauges on reg, read live at every scrape. Only
// routers with statistics (core.Flash) register anything; every other
// router is a no-op, so callers can pass whatever they run.
func RegisterRouterMetrics(reg *telemetry.Registry, scheme string, r route.Router) {
	fl, ok := r.(*core.Flash)
	if !ok {
		return
	}
	lbl := `{scheme="` + scheme + `"}`
	stat := func(name, help string, get func(core.Stats) int64) {
		reg.GaugeFunc("flash_"+name+lbl, help, func() float64 {
			return float64(get(fl.Stats()))
		})
	}
	stat("elephants_total", "Payments routed by the elephant algorithm.", func(s core.Stats) int64 { return int64(s.Elephants) })
	stat("mice_total", "Payments routed by the mice algorithm.", func(s core.Stats) int64 { return int64(s.Mice) })
	stat("table_hits_total", "Mice routing-table hits.", func(s core.Stats) int64 { return int64(s.TableHits) })
	stat("table_misses_total", "Mice routing-table misses.", func(s core.Stats) int64 { return int64(s.TableMisses) })
	stat("table_entries", "Live mice routing-table entries.", func(s core.Stats) int64 { return int64(s.TableEntries) })
	stat("table_invalidations_total", "Routing-table entries invalidated by churn.", func(s core.Stats) int64 { return int64(s.TableInvalidations) })
	stat("table_evictions_total", "Routing-table entries evicted by the cap.", func(s core.Stats) int64 { return int64(s.TableEvictions) })
	stat("paths_replaced_total", "Mice paths replaced after probe failure.", func(s core.Stats) int64 { return int64(s.PathsReplaced) })
	stat("threshold_updates_total", "Adaptive threshold re-calibrations.", func(s core.Stats) int64 { return int64(s.ThresholdUpdates) })
	stat("sender_thresholds", "Senders with a live per-sender threshold override.", func(s core.Stats) int64 { return int64(s.SenderThresholds) })
	stat("sender_threshold_updates_total", "Per-sender threshold override moves.", func(s core.Stats) int64 { return int64(s.SenderThresholdUpdates) })
	stat("probe_width_updates_total", "Probe-pool width re-tunes.", func(s core.Stats) int64 { return int64(s.ProbeWidthUpdates) })
	reg.GaugeFunc("flash_threshold"+lbl, "Current elephant classification threshold.", fl.Threshold)
	reg.GaugeFunc("flash_probe_workers"+lbl, "Current speculative probe-pool width.", func() float64 {
		return float64(fl.ProbeWorkers())
	})
}

// RegisterNetworkMetrics exposes a pcn network's cumulative message and
// hold counters as scheme-labelled gauges on reg, read live at every
// scrape.
func RegisterNetworkMetrics(reg *telemetry.Registry, scheme string, net *pcn.Network) {
	lbl := `{scheme="` + scheme + `"}`
	reg.GaugeFunc("pcn_probe_messages_total"+lbl, "Probe messages sent by all sessions.", func() float64 {
		return float64(net.ProbeMessages())
	})
	reg.GaugeFunc("pcn_commit_messages_total"+lbl, "Commit-phase messages sent by all sessions.", func() float64 {
		return float64(net.CommitMessages())
	})
	reg.GaugeFunc("pcn_holds_placed_total"+lbl, "Partial-payment holds reserved.", func() float64 {
		return float64(net.HoldsPlaced())
	})
	reg.GaugeFunc("pcn_holds_committed_total"+lbl, "Holds settled by commit or resume.", func() float64 {
		return float64(net.HoldsCommitted())
	})
	reg.GaugeFunc("pcn_holds_aborted_total"+lbl, "Holds released by abort or span abort.", func() float64 {
		return float64(net.HoldsAborted())
	})
}
