package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/event"
)

// jsonMetrics is the machine-readable projection of Metrics: the
// headline numbers plus the derived ratios, with durations in seconds.
type jsonMetrics struct {
	Payments       int     `json:"payments"`
	Successes      int     `json:"successes"`
	SuccessRatio   float64 `json:"successRatio"`
	SuccessVolume  float64 `json:"successVolume"`
	AttemptVolume  float64 `json:"attemptVolume"`
	FeesPaid       float64 `json:"feesPaid"`
	FeeRatio       float64 `json:"feeRatio"`
	ProbeMessages  int64   `json:"probeMessages"`
	CommitMessages int64   `json:"commitMessages"`
	MeanDelaySec   float64 `json:"meanDelaySeconds"`
}

func metricsJSON(m Metrics) jsonMetrics {
	return jsonMetrics{
		Payments:       m.Payments,
		Successes:      m.Successes,
		SuccessRatio:   m.SuccessRatio(),
		SuccessVolume:  m.SuccessVolume,
		AttemptVolume:  m.AttemptVolume,
		FeesPaid:       m.FeesPaid,
		FeeRatio:       m.FeeRatio(),
		ProbeMessages:  m.ProbeMessages,
		CommitMessages: m.CommitMessages,
		MeanDelaySec:   m.MeanDelay().Seconds(),
	}
}

// jsonLatency is the machine-readable projection of LatencyStats:
// completion-latency count, mean/max and the P² percentile estimates,
// all in virtual seconds.
type jsonLatency struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func latencyJSON(l *LatencyStats) *jsonLatency {
	return &jsonLatency{Count: l.Count, Mean: l.Mean(), Max: l.Max, P50: l.P50(), P95: l.P95(), P99: l.P99()}
}

// jsonAdaptive is the re-classification view of one window (or the
// aggregate): mice/elephant outcomes classified against the threshold
// in effect for each payment when it completed, where the plain
// metrics classify against the run's fixed metrics threshold. Present
// exactly when a control plane ran (DynamicResult.AdaptiveView).
type jsonAdaptive struct {
	MicePayments         int     `json:"micePayments"`
	MiceSuccesses        int     `json:"miceSuccesses"`
	MiceSuccessRatio     float64 `json:"miceSuccessRatio"`
	ElephantPayments     int     `json:"elephantPayments"`
	ElephantSuccesses    int     `json:"elephantSuccesses"`
	ElephantSuccessRatio float64 `json:"elephantSuccessRatio"`
}

func adaptiveJSON(m Metrics) *jsonAdaptive {
	return &jsonAdaptive{
		MicePayments:         m.MicePayments,
		MiceSuccesses:        m.MiceSuccesses,
		MiceSuccessRatio:     m.MiceSuccessRatio(),
		ElephantPayments:     m.ElephantPayments,
		ElephantSuccesses:    m.ElephantSuccesses,
		ElephantSuccessRatio: m.ElephantSuccessRatio(),
	}
}

// jsonWindow is one time-series bucket with its effective threshold —
// the threshold trajectory, window by window. Latency is present
// exactly when the run carried a latency model (DynamicResult.LatencyOn),
// so latency-free documents are byte-identical to the pre-latency shape;
// Adaptive likewise appears only on control-plane runs.
type jsonWindow struct {
	Start     float64       `json:"start"`
	End       float64       `json:"end"`
	Threshold float64       `json:"threshold"`
	Metrics   jsonMetrics   `json:"metrics"`
	Adaptive  *jsonAdaptive `json:"adaptive,omitempty"`
	Latency   *jsonLatency  `json:"latency,omitempty"`
}

// jsonDynamicResult is the flashsim -json document for one scheme.
type jsonDynamicResult struct {
	Scheme           string         `json:"scheme"`
	Horizon          float64        `json:"horizon"`
	Aggregate        jsonMetrics    `json:"aggregate"`
	Windows          []jsonWindow   `json:"windows"`
	EventCounts      map[string]int `json:"eventCounts"`
	Fingerprint      string         `json:"fingerprint"` // %016x of the event-log FNV-1a
	SpanAborts       int            `json:"spanAborts"`
	ThresholdUpdates int            `json:"thresholdUpdates"`
	FinalThreshold   float64        `json:"finalThreshold"`

	// Control-plane extension, omitted entirely when no controller ran
	// so control-free documents keep their historical shape: the
	// re-classification aggregate and the per-knob decision rollup.
	Adaptive         *jsonAdaptive       `json:"adaptive,omitempty"`
	ControlDecisions int                 `json:"controlDecisions,omitempty"`
	Controllers      []ControlKnobStatus `json:"controllers,omitempty"`

	// Latency-model extension, omitted entirely on latency-free runs so
	// their documents stay byte-identical to the pre-latency shape.
	Deadline         float64      `json:"deadline,omitempty"`
	DeadlineExpiries int          `json:"deadlineExpiries,omitempty"`
	Latency          *jsonLatency `json:"latency,omitempty"`
}

// WriteDynamicJSON renders one scheme's dynamic run as an indented JSON
// document: aggregate and per-window metrics (the threshold trajectory
// rides on the windows), per-kind event counts, the span-abort and
// threshold-update totals, and the event-log fingerprint as a 16-digit
// hex string. The document is a pure function of the DynamicResult —
// map keys marshal sorted — so a deterministic run renders
// byte-identical JSON, the same contract WriteDynamicResult keeps for
// the table view.
func WriteDynamicJSON(out io.Writer, scheme string, res DynamicResult) error {
	doc := jsonDynamicResult{
		Scheme:           scheme,
		Horizon:          res.Horizon,
		Aggregate:        metricsJSON(res.Aggregate),
		Windows:          make([]jsonWindow, len(res.Windows)),
		EventCounts:      make(map[string]int, event.NumKinds),
		Fingerprint:      fmt.Sprintf("%016x", res.Fingerprint),
		SpanAborts:       res.SpanAborts,
		ThresholdUpdates: res.ThresholdUpdates,
		FinalThreshold:   res.FinalThreshold,
	}
	if res.AdaptiveView {
		doc.Adaptive = adaptiveJSON(res.Adaptive)
	}
	if res.ControlOn {
		doc.ControlDecisions = res.ControlDecisions
		doc.Controllers = res.Controllers
	}
	if res.LatencyOn {
		doc.Deadline = res.Deadline
		doc.DeadlineExpiries = res.DeadlineExpiries
		doc.Latency = latencyJSON(&res.Latency)
	}
	for i := range res.Windows {
		w := &res.Windows[i]
		doc.Windows[i] = jsonWindow{Start: w.Start, End: w.End, Threshold: w.Threshold, Metrics: metricsJSON(w.Metrics)}
		if res.AdaptiveView {
			doc.Windows[i].Adaptive = adaptiveJSON(w.Adaptive)
		}
		if res.LatencyOn {
			doc.Windows[i].Latency = latencyJSON(&w.Latency)
		}
	}
	for k := 0; k < event.NumKinds; k++ {
		if res.EventCounts[k] != 0 {
			doc.EventCounts[event.Kind(k).String()] = res.EventCounts[k]
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
