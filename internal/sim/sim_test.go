package sim

import (
	"math"
	"testing"

	"repro/internal/pcn"
	"repro/internal/topo"
	"repro/internal/trace"
)

func TestMetricsDerived(t *testing.T) {
	m := Metrics{
		Payments: 10, Successes: 5,
		SuccessVolume: 200, FeesPaid: 4,
		MicePayments: 8, MiceSuccesses: 6,
	}
	if got := m.SuccessRatio(); got != 0.5 {
		t.Errorf("SuccessRatio = %v", got)
	}
	if got := m.FeeRatio(); got != 0.02 {
		t.Errorf("FeeRatio = %v", got)
	}
	if got := m.MiceSuccessRatio(); got != 0.75 {
		t.Errorf("MiceSuccessRatio = %v", got)
	}
	var zero Metrics
	if zero.SuccessRatio() != 0 || zero.FeeRatio() != 0 || zero.MeanDelay() != 0 ||
		zero.MeanMiceDelay() != 0 || zero.MiceSuccessRatio() != 0 {
		t.Error("zero metrics should yield zero derived values")
	}
	if m.String() == "" {
		t.Error("String empty")
	}
}

func TestRunBasic(t *testing.T) {
	g := topo.Line(3)
	net := pcn.New(g)
	net.SetBalance(0, 1, 100, 100)
	net.SetBalance(1, 2, 100, 100)
	r, err := NewRouter(SchemeShortestPath, 0, 0, 0, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	payments := []trace.Payment{
		{ID: 0, Sender: 0, Receiver: 2, Amount: 30},
		{ID: 1, Sender: 0, Receiver: 2, Amount: 30},
		{ID: 2, Sender: 0, Receiver: 2, Amount: 100}, // exceeds remaining 40
	}
	m, err := Run(net, r, payments, 50)
	if err != nil {
		t.Fatal(err)
	}
	if m.Payments != 3 || m.Successes != 2 {
		t.Errorf("payments/successes = %d/%d, want 3/2", m.Payments, m.Successes)
	}
	if m.SuccessVolume != 60 {
		t.Errorf("success volume = %v, want 60", m.SuccessVolume)
	}
	if m.MicePayments != 2 || m.ElephantPayments != 1 {
		t.Errorf("classification = %d mice / %d elephants", m.MicePayments, m.ElephantPayments)
	}
}

func TestRunSkipsDegeneratePayments(t *testing.T) {
	g := topo.Line(2)
	net := pcn.New(g)
	net.SetBalance(0, 1, 10, 10)
	r, _ := NewRouter(SchemeShortestPath, 0, 0, 0, false, 1)
	payments := []trace.Payment{
		{Sender: 0, Receiver: 0, Amount: 5}, // self
		{Sender: 0, Receiver: 1, Amount: 0}, // zero
		{Sender: 0, Receiver: 1, Amount: 5},
	}
	m, err := Run(net, r, payments, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Payments != 1 || m.Successes != 1 {
		t.Errorf("got %d/%d, want 1/1", m.Successes, m.Payments)
	}
}

func TestNewRouterUnknown(t *testing.T) {
	if _, err := NewRouter("nope", 0, 0, 0, false, 1); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestNewRouterAllSchemes(t *testing.T) {
	for _, s := range []string{SchemeFlash, SchemeFlashNoOpt, SchemeSpider,
		SchemeSpeedyMurmurs, SchemeShortestPath, SchemeMaxFlow} {
		r, err := NewRouter(s, 100, 0, 0, false, 1)
		if err != nil {
			t.Errorf("%s: %v", s, err)
			continue
		}
		if r.Name() == "" {
			t.Errorf("%s: empty name", s)
		}
	}
}

func TestBuildNetworkKinds(t *testing.T) {
	for _, kind := range []string{KindRipple, KindLightning, KindTestbed} {
		net, err := BuildNetwork(kind, 60, 10, 1000, 1500, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if net.Graph().NumNodes() != 60 {
			t.Errorf("%s: nodes = %d", kind, net.Graph().NumNodes())
		}
		if net.TotalFunds() <= 0 {
			t.Errorf("%s: no funds assigned", kind)
		}
	}
	if _, err := BuildNetwork("bogus", 60, 10, 0, 0, 1); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestBuildNetworkScaleFactor(t *testing.T) {
	a, err := BuildNetwork(KindRipple, 60, 1, 0, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildNetwork(KindRipple, 60, 10, 0, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	ratio := b.TotalFunds() / a.TotalFunds()
	if math.Abs(ratio-10) > 1e-6 {
		t.Errorf("scale-10 funds ratio = %v, want 10", ratio)
	}
}

func TestSchemeResultAggregation(t *testing.T) {
	r := SchemeResult{Scheme: "x", Runs: []Metrics{
		{Payments: 10, Successes: 4},
		{Payments: 10, Successes: 6},
	}}
	if got := r.Mean(Metrics.SuccessRatio); got != 0.5 {
		t.Errorf("mean ratio = %v", got)
	}
	s := r.Summary(Metrics.SuccessRatio)
	if s.Min != 0.4 || s.Max != 0.6 {
		t.Errorf("summary = %+v", s)
	}
	var empty SchemeResult
	if empty.Mean(Metrics.SuccessRatio) != 0 {
		t.Error("empty mean should be 0")
	}
}

// TestRunScenarioSmall is the end-to-end smoke test: a small Ripple-like
// scenario must complete, and Flash must not trail the static baselines
// on success volume.
func TestRunScenarioSmall(t *testing.T) {
	sc := DefaultScenario(KindRipple, 100)
	sc.Txns = 300
	sc.Runs = 2
	results, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(PaperSchemes) {
		t.Fatalf("got %d scheme results", len(results))
	}
	vol := map[string]float64{}
	for _, r := range results {
		if len(r.Runs) != 2 {
			t.Fatalf("%s: %d runs, want 2", r.Scheme, len(r.Runs))
		}
		vol[r.Scheme] = r.Mean(func(m Metrics) float64 { return m.SuccessVolume })
		for _, m := range r.Runs {
			if m.Payments == 0 {
				t.Fatalf("%s: no payments replayed", r.Scheme)
			}
		}
	}
	if vol[SchemeFlash] < vol[SchemeShortestPath] {
		t.Errorf("Flash volume %v below ShortestPath %v", vol[SchemeFlash], vol[SchemeShortestPath])
	}
	if vol[SchemeFlash] < vol[SchemeSpeedyMurmurs] {
		t.Errorf("Flash volume %v below SpeedyMurmurs %v", vol[SchemeFlash], vol[SchemeSpeedyMurmurs])
	}
}

// TestRunScenarioSchemesSeeIdenticalWorkload verifies the restore logic:
// the same scheme run twice in one scenario cell yields identical
// metrics.
func TestRunScenarioSchemesSeeIdenticalWorkload(t *testing.T) {
	sc := DefaultScenario(KindRipple, 60)
	sc.Txns = 100
	sc.Runs = 1
	sc.Schemes = []string{SchemeShortestPath, SchemeShortestPath}
	results, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	a, b := results[0].Runs[0], results[1].Runs[0]
	if a.Successes != b.Successes || a.SuccessVolume != b.SuccessVolume {
		t.Errorf("identical scheme runs diverged: %+v vs %+v", a, b)
	}
}

func TestRandPermDeterministic(t *testing.T) {
	a := randPerm(10, 3)
	b := randPerm(10, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("randPerm not deterministic")
		}
	}
}
