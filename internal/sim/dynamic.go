package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/trace"
)

// DynamicOptions tunes RunDynamic, the discrete-event replay.
type DynamicOptions struct {
	// Workers is the number of service stations: how many payments may
	// be in service at the same virtual instant. 1 (or less) processes
	// payments strictly one at a time — the deterministic mode, whose
	// event log and metrics are pure functions of the seeds. Larger
	// values route overlapping payments on real goroutines, so their
	// balance interleaving (and therefore outcomes) is
	// scheduling-dependent, exactly as in RunOpts.
	Workers int

	// Seed derives the engine's schedule randomness (virtual service
	// times, retry backoffs) and, when Workers > 1, each payment's
	// per-session RNG.
	Seed int64

	// Retries re-routes an undelivered payment up to this many extra
	// times, each after a seeded jittered virtual backoff — the
	// discrete-event counterpart of Options.Retries.
	Retries int

	// Window is the time-series bucket width in virtual seconds;
	// completed payments are recorded into the window containing their
	// completion instant. 0 defaults to a tenth of the horizon.
	Window float64

	// Service is the mean virtual service time of a payment in seconds
	// (exponentially distributed, seeded). 0 completes payments at
	// their arrival instant, routing atomically at dispatch — the
	// historical behaviour, byte-identical across engine versions.
	//
	// Service > 0 enables hold spans: a payment splits into a
	// hold-phase event at dispatch (the router probes, holds and
	// *decides* to commit, but the session suspends on the route.Yielder
	// seam) and a commit-phase event one exponential service time
	// later, when the suspended session resumes — committing, or
	// aborting HTLC-timeout style if churn closed a held channel
	// mid-span. Between the two events the payment's funds stay locked
	// on the network, so later arrivals probe the depleted residuals:
	// with Workers ≤ 1 this models contention *deterministically*,
	// which is why the single station never queues arrivals in this
	// mode (routing is instantaneous in virtual time; residency on the
	// network is modelled by the holds, not by station occupancy).
	// Consistently, an attempt that fails at the hold phase locks
	// nothing and completes at its arrival instant — its retry clock
	// starts immediately. (With Workers > 1 the completion event is
	// scheduled before the goroutine's outcome is known, so failures
	// there surface after the service time, like any station model.)
	Service float64

	// AdaptiveThreshold enables the rolling-quantile adaptive elephant
	// threshold: every first-attempt arrival amount feeds a streaming
	// P² quantile estimator (stats.QuantileEstimator), and on a
	// ThresholdWindow cadence the engine re-calibrates the router's
	// classification threshold to the estimator's MiceFraction-quantile
	// via core.Flash.SetThreshold — the paper's "set per workload"
	// calibration (§4.1), kept true under demand drift instead of
	// pinned at t = 0. Only Flash routers adapt; the option is a no-op
	// for every other scheme. Off — the default — leaves the engine
	// byte-identical to the historical behaviour; on with Workers ≤ 1
	// it stays fully deterministic (the estimator is a pure function of
	// the arrival sequence, and every ThresholdUpdate is stamped into
	// the event-log fingerprint with its effective threshold).
	AdaptiveThreshold bool

	// ThresholdWindow is the adaptive re-calibration cadence in virtual
	// seconds; 0 defaults to the time-series Window. Each boundary that
	// has seen at least adaptiveMinSamples arrivals since the last swap
	// re-calibrates and resets the estimator, so the threshold tracks
	// the current demand regime rather than the whole history (a
	// rolling quantile); sparser boundaries keep accumulating.
	ThresholdWindow float64

	// MiceFraction is the workload quantile the adaptive threshold
	// tracks; 0 (or any value outside (0, 1)) defaults to 0.9, the
	// paper's 90%-mice calibration. Only consulted when
	// AdaptiveThreshold is on.
	MiceFraction float64

	// Control selects the adaptive control plane (internal/control): a
	// declarative policy whose controllers observe per-window metrics
	// on the control cadence (Policy.Window, else ThresholdWindow, else
	// Window) and re-tune the router's runtime knobs — global and
	// per-sender elephant thresholds, speculative probe width, retry
	// backoff. nil (or the zero policy) runs no controllers.
	// AdaptiveThreshold is the compat shim over this: it maps to the
	// "raw" threshold policy, and that policy alone replays the
	// pre-control-plane event stream byte for byte. Only Flash routers
	// have knobs; for every other scheme the plane is inert. Every
	// applied decision is recorded as a fingerprinted
	// event.ControlUpdate, so controllers-on runs replay identically at
	// Workers ≤ 1.
	Control *control.Policy

	// controlHook appends scripted controllers to the resolved plane —
	// the test seam for exercising decision application (knob coverage,
	// per-sender swaps, backoff scaling) without a full policy. Always
	// takes the general control path, never the legacy shim. nil in
	// production.
	controlHook []control.Controller

	// RecordLog retains the full applied-event log in the result (the
	// fingerprint and per-kind counts are always available).
	RecordLog bool

	// Deadline is the HTLC-style expiry of a hold span in virtual
	// seconds: a suspended payment whose commit cannot settle within
	// Deadline of its holds being locked expires instead — the engine
	// schedules a DeadlineExpiry event at the deadline instant (in
	// place of the attempt's PaymentComplete, so every attempt still
	// settles exactly once), tears the holds down via the route.Expirer
	// seam, and counts the attempt as failed
	// (DynamicResult.DeadlineExpiries). 0 — the default — disables
	// expiry and leaves the engine byte-identical to the historical
	// behaviour. Only meaningful with Service > 0 (without spans no
	// funds ever stay locked).
	Deadline float64

	// GriefFrac marks this fraction of payments as griefers: their
	// drawn service time is overridden (never the draw itself, so
	// grief-off runs stay byte-identical) with GriefHold, modelling an
	// attacker who locks liquidity along the route and sits on it. The
	// marking is a pure per-payment hash of (Seed, payment ID) —
	// deterministic, independent of the schedule stream. Combined with
	// Deadline > 0 the griefers' spans expire at the deadline and the
	// victims recover; with Deadline = 0 the grief holds pin the
	// liquidity for their full GriefHold. Only meaningful with
	// Service > 0.
	GriefFrac float64
	GriefHold float64

	// FlowSink, when non-nil, receives one telemetry.FlowRecord per
	// completed payment, stamped with virtual arrival/completion time
	// and the span-abort outcome where churn invalidated a hold span.
	// Registry, when non-nil, accumulates per-completion rollups
	// (payment/outcome counters, volume, fees, message totals, an
	// amount histogram, virtual-clock and threshold gauges), labelled by
	// the router's scheme name. Both are strictly observer-only: the
	// event log, fingerprint and metrics are byte-identical with or
	// without them.
	FlowSink telemetry.Sink
	Registry *telemetry.Registry

	// audit, when non-nil, receives one schedAudit per settle/expiry/
	// retry scheduling decision at Workers ≤ 1 — the exact components
	// (latency, service, resume, backoff) that produced each event
	// time, so property tests can re-derive every completion instant
	// bit for bit. Test hook; nil in production.
	audit func(schedAudit)
}

// schedAudit is one engine scheduling decision as reported to the
// DynamicOptions.audit test hook: the components whose exact float64
// sum (At + Lat + Service + ResumeLat, or At + Lat + Deadline for an
// expiry, or At + Backoff for a retry) is the scheduled event's time.
type schedAudit struct {
	ID        int64
	Attempt   int
	At        float64 // decision instant (dispatch or settle time)
	Lat       float64 // attempt probe+commit virtual latency, seconds
	Service   float64 // effective virtual service time (0 for failed holds)
	ResumeLat float64 // settle-leg latency of the suspended span
	Backoff   float64 // retry backoff (Retry records only)
	EventAt   float64 // the scheduled event's time
	Expired   bool    // scheduled as a DeadlineExpiry
	Retry     bool    // retry record: EventAt = At + Backoff
}

// adaptiveMinSamples is the fewest arrivals a re-calibration boundary
// must have seen before the adaptive threshold swaps: below it the
// quantile estimate is noise, so the boundary keeps accumulating
// instead.
const adaptiveMinSamples = 20

// griefSalt decorrelates the griefer-marking hash (trace.HashUnit over
// the payment ID) from the per-payment routing seeds, which are
// derived from the same ID.
const griefSalt = 0x6F1EF

// Window is one time-series bucket of a dynamic run. The final
// window's End is clamped to the run horizon: payments still in flight
// at the horizon (service times, retry backoffs) drain into it rather
// than growing the series past the horizon.
type Window struct {
	Start, End float64 // virtual seconds

	// Threshold is the effective elephant classification threshold as
	// of the last re-calibration that touched this window (its value at
	// creation until one lands inside it) — constant at the calibrated
	// value unless DynamicOptions.AdaptiveThreshold re-calibrates it
	// mid-run, in which case the column shows the drift the router
	// tracked.
	Threshold float64

	Metrics Metrics

	// Adaptive re-classifies the window's completions against the
	// threshold in effect for each payment when it completed (the
	// sender's live effective threshold, per-sender overrides
	// included), where Metrics always classifies against the run's
	// fixed metrics threshold. The two diverge exactly where the
	// control plane moved a threshold mid-run; comparing them shows
	// what the adaptation re-labelled. Populated only when a control
	// plane (or the AdaptiveThreshold shim) ran
	// (DynamicResult.AdaptiveView).
	Adaptive Metrics

	// Latency summarises the completion latency (virtual completion −
	// first arrival) of payments delivered in this window. Populated
	// only when the run reports latency (DynamicResult.LatencyOn).
	Latency LatencyStats
}

// DynamicResult is the outcome of a dynamic run: the familiar
// aggregate metrics plus their time-series decomposition and the
// determinism evidence.
type DynamicResult struct {
	Aggregate   Metrics
	Windows     []Window
	EventCounts [event.NumKinds]int
	Fingerprint uint64        // FNV-1a over the applied-event log
	Log         []event.Event // populated when DynamicOptions.RecordLog
	Horizon     float64

	// SpanAborts counts suspended payments whose deferred commit turned
	// into an abort because a held channel closed mid-span (hold-span
	// mode only; see DynamicOptions.Service).
	SpanAborts int

	// ThresholdUpdates counts adaptive re-calibrations that actually
	// moved the router's elephant threshold, and FinalThreshold is the
	// effective threshold when the run ended (the initial routing
	// threshold when the adaptive mode is off or never re-calibrated).
	ThresholdUpdates int
	FinalThreshold   float64

	// ControlOn reports whether the general control plane drove the run
	// (false for runs without controllers and for the legacy
	// AdaptiveThreshold shim, which replays the pre-control-plane event
	// stream). ControlDecisions counts applied decisions across all
	// knobs, and Controllers is the per-knob rollup (decision count and
	// last effective value) for knobs that decided at least once.
	ControlOn        bool
	ControlDecisions int
	Controllers      []ControlKnobStatus

	// AdaptiveView reports whether the per-window re-classification
	// view is populated (any control plane ran, the legacy shim
	// included): Adaptive here and on every Window then classify
	// completions against the threshold in effect when each completed.
	AdaptiveView bool
	Adaptive     Metrics

	// LatencyOn reports whether the run carried a virtual latency model
	// (per-channel RTTs on the network, or a hold-span deadline): when
	// true, Latency and the per-window Latency stats are populated and
	// the renderers show latency columns. False runs are byte-identical
	// to the pre-latency engine.
	LatencyOn bool

	// Deadline echoes DynamicOptions.Deadline; DeadlineExpiries counts
	// hold spans torn down at that deadline instead of settling.
	Deadline         float64
	DeadlineExpiries int

	// Latency summarises completion latency (virtual completion − first
	// arrival) over all delivered payments, when LatencyOn.
	Latency LatencyStats
}

// WindowRatios renders the per-window success ratios (for quick
// inspection and tests).
func (r DynamicResult) WindowRatios() []float64 {
	out := make([]float64, len(r.Windows))
	for i, w := range r.Windows {
		out[i] = w.Metrics.SuccessRatio()
	}
	return out
}

// dynPayment is a payment moving through the engine: queued, in
// service, or awaiting a retry.
type dynPayment struct {
	p           trace.Payment
	attempt     int
	arrival     float64          // first-attempt virtual arrival instant
	dispatched  float64          // latest attempt's dispatch instant
	spanAborted bool             // latest attempt aborted at span resume
	expired     bool             // latest attempt expired at its deadline
	total       routeOutcome     // accumulated across attempts
	done        chan routeResult // non-nil while in service on a goroutine
	inline      routeResult      // outcome when routed inline (Workers ≤ 1)
}

type routeResult struct {
	out routeOutcome
	tx  *pcn.Tx // suspended session awaiting Resume (hold-span mode), else nil
	err error
}

// RunDynamic replays a payment source against net under r inside a
// discrete-event loop: payment arrivals are pulled lazily from src
// (one look-ahead event at a time, so unbounded workloads cost O(1)
// memory), churn events mutate the live network as the virtual clock
// passes them, and completed payments are recorded both into the
// aggregate metrics and into per-window time-series buckets.
//
// Churn semantics: ChannelClose freezes a channel (and, when r is
// Flash, invalidates the routing-table entries crossing it);
// ChannelOpen reopens it, funding each direction with the event's
// Amount when positive; Rebalance evens a channel's directions;
// DemandShift rescales the source's payment amounts when the source
// supports it (trace.Stream does), including the engine's one
// look-ahead arrival already sampled under the old scale; FeeShift
// rescales a channel's fee schedules. Shift factors are validated at
// schedule-ingest time (positive and finite), so a typo'd factor fails
// loudly instead of no-opping.
//
// With Workers ≤ 1, Service = 0 and arrivals pinned to an existing
// trace (trace.NewReplayStream), the aggregate metrics reproduce
// RunOpts' sequential replay exactly — the equivalence the tests pin.
//
// With Service > 0 payments hold funds across virtual time (hold
// spans, see DynamicOptions.Service): the routing decision still
// executes at the arrival instant, but the commit settles one service
// time later, and every payment arriving in between contends with the
// outstanding holds. Workers ≤ 1 stays fully deterministic — same
// seed, same fingerprint — because all routing decisions run inline on
// the event loop in (Time, Seq) order.
func RunDynamic(net *pcn.Network, r route.Router, src trace.PaymentSource, horizon float64, churn []event.Event, miceThreshold float64, opts DynamicOptions) (DynamicResult, error) {
	if horizon <= 0 {
		return DynamicResult{}, fmt.Errorf("sim: dynamic horizon must be positive, got %v", horizon)
	}
	// A source built over a zero/negative-rate arrival process would
	// silently schedule +Inf/NaN virtual times onto the event heap;
	// sources that can check themselves (trace.Stream, barbellStream)
	// are checked here, so calling RunDynamic directly is as safe as
	// going through RunDynamicScenario's validation.
	if v, ok := src.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return DynamicResult{}, fmt.Errorf("sim: payment source: %w", err)
		}
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	window := opts.Window
	if window <= 0 {
		window = horizon / 10
	}
	res := DynamicResult{Horizon: horizon}
	fl, _ := r.(*core.Flash) // nil for non-Flash routers
	obs := newDynObserver(r.Name(), opts.FlowSink, opts.Registry)

	queue := event.NewQueue()
	var clock event.Clock
	log := event.Log{Retain: opts.RecordLog}
	seeded := workers > 1
	// spans: Service > 0 splits payments into hold-phase and
	// commit-phase events with funds locked in between (see
	// DynamicOptions.Service). Service = 0 keeps the atomic-at-dispatch
	// path, bit-identical to the pre-hold-span engine.
	spans := opts.Service > 0

	// Virtual latency model: per-channel RTTs on the network shift
	// every settle event by the attempt's charged probe/commit legs;
	// Deadline > 0 arms HTLC-style expiry of hold spans. Both off — the
	// default — leave every event time and the schedule stream
	// byte-identical to the latency-free engine (the latency terms are
	// exact float zeros, never drawn).
	latOn := net.HasLatency()
	deadline := opts.Deadline
	if deadline < 0 || !spans {
		deadline = 0
	}
	latencyReport := latOn || deadline > 0
	res.LatencyOn = latencyReport
	res.Deadline = deadline
	grief := opts.GriefFrac
	if !spans || grief < 0 {
		grief = 0
	}

	// Schedule randomness (service times, retry backoffs) is its own
	// seeded stream, independent of routing, so event timestamps do not
	// depend on routing outcomes.
	schedRNG := rand.New(rand.NewSource(paymentSeed(opts.Seed, 0x5C4ED)))

	for _, e := range churn {
		switch e.Kind {
		case event.ChannelOpen, event.ChannelClose, event.Rebalance:
		case event.DemandShift, event.FeeShift:
			// A zero (or NaN/∞/negative) shift factor would no-op or
			// corrupt silently — Generator.SetAmountScale ignores
			// non-positive factors — so reject it here at schedule-ingest
			// time, mirroring ArrivalProcess.Validate.
			if err := validShiftFactor(e.Kind, e.Amount); err != nil {
				return res, err
			}
		default:
			return res, fmt.Errorf("sim: churn schedule contains %v event", e.Kind)
		}
		if e.Time < horizon {
			queue.Schedule(e)
		}
	}

	pending := make(map[int64]*dynPayment)
	var (
		busy  int
		waitQ []int64 // payment IDs awaiting a free station, FIFO
	)

	// The engine's current routing threshold: the router's own value
	// for Flash (the adaptive mode moves it), the metrics threshold
	// otherwise. Reported per window and as FinalThreshold.
	curThreshold := miceThreshold
	if fl != nil {
		curThreshold = fl.Threshold()
	}

	// Control plane (see DynamicOptions.Control): the resolved policy's
	// controllers observe per-window metrics on the cadence below and
	// re-tune the router's knobs; the legacy AdaptiveThreshold option
	// resolves to the raw-threshold policy, whose shim path replays the
	// pre-control-plane event stream byte for byte. Engaged only for
	// Flash — no other scheme owns runtime knobs.
	policy := control.Policy{}
	if opts.Control != nil {
		policy = *opts.Control
	}
	if opts.AdaptiveThreshold && policy.Threshold == "" {
		policy.Threshold = "raw"
	}
	if policy.MiceFraction == 0 {
		if frac := opts.MiceFraction; frac > 0 && frac < 1 {
			policy.MiceFraction = frac
		}
	}
	ctl, err := newControlState(policy, opts.controlHook, fl)
	if err != nil {
		return res, fmt.Errorf("sim: %w", err)
	}
	thrWindow := policy.Window
	if thrWindow <= 0 {
		thrWindow = opts.ThresholdWindow
	}
	if thrWindow <= 0 {
		thrWindow = window
	}
	// backoffScale multiplies the engine's retry backoff; exactly 1.0
	// unless a KnobRetryBackoff decision moves it, so control-off runs
	// compute bit-identical backoffs.
	backoffScale := 1.0
	if ctl != nil && thrWindow < horizon {
		queue.Schedule(event.Event{Time: thrWindow, Kind: ctl.tickKind()})
	}

	// pullArrival schedules the source's next arrival, if it falls
	// inside the horizon. Exactly one future first-attempt arrival is
	// pending at any time, which keeps the heap small and the source
	// lazy — and makes that one look-ahead payment the only arrival
	// sampled before a demand shift it postdates; the DemandShift
	// handler rescales it (tracking curScale) so the first post-shift
	// payment carries a post-shift amount. Degenerate payments are
	// skipped here, like in RunOpts.
	srcDone := false
	curScale := 1.0
	var lookahead *dynPayment
	pullArrival := func() {
		lookahead = nil
		for !srcDone {
			p, at, ok := src.Next()
			if !ok || at >= horizon {
				srcDone = true
				return
			}
			if p.Sender == p.Receiver || p.Amount <= 0 {
				continue
			}
			dp := &dynPayment{p: p, arrival: at}
			pending[int64(p.ID)] = dp
			lookahead = dp
			queue.Schedule(event.Event{Time: at, Kind: event.PaymentArrival, ID: int64(p.ID)})
			return
		}
	}

	// dispatch puts dp in service at virtual time t: the routing attempt
	// runs now (inline for the deterministic single station, on a
	// goroutine when stations may overlap), and the completion is
	// scheduled after the drawn virtual service time. In hold-span mode
	// the attempt stops at the yield seam — holds placed, commit
	// deferred — and the completion event settles the span.
	dispatch := func(dp *dynPayment, t float64) {
		busy++
		dp.dispatched = t
		service := 0.0
		if opts.Service > 0 {
			// Drawn unconditionally, so the schedule stream's consumption
			// never depends on routing outcomes.
			service = schedRNG.ExpFloat64() * opts.Service
			if grief > 0 && trace.HashUnit(opts.Seed, int64(dp.p.ID)^griefSalt) < grief {
				// Griefer: override the drawn value (never the draw itself,
				// so grief-off runs replay byte-identically) with the
				// attacker's hold duration.
				service = opts.GriefHold
			}
		}
		seed := attemptSeed(paymentSeed(opts.Seed, int64(dp.p.ID)), dp.attempt)
		attempt := func(p trace.Payment) routeResult {
			if spans {
				tx, out, err := holdAttempt(net, r, p, seed, seeded)
				return routeResult{out: out, tx: tx, err: err}
			}
			out, err := routeAttempt(net, r, p, seed, seeded)
			return routeResult{out: out, err: err}
		}
		if workers == 1 {
			dp.inline = attempt(dp.p)
			if spans && dp.inline.tx == nil {
				// The attempt failed at the hold phase: nothing is locked,
				// so the payment completes — and its retry clock starts —
				// at its arrival instant. Only suspended payments occupy a
				// service span (residency is the holds, not the station).
				service = 0
			}
			// Virtual latency: the attempt's charged probe and commit legs
			// delay the routing decision, and a suspended span's settle
			// legs delay its resume. Both terms are exact zeros when the
			// network carries no RTTs, so the event time below reduces to
			// the historical t + service bit for bit.
			lat := 0.0
			if latOn {
				lat = float64(dp.inline.out.probeLatNanos+dp.inline.out.commitLatNanos) / 1e9
			}
			resumeLat := 0.0
			if dp.inline.tx != nil {
				resumeLat = float64(dp.inline.tx.ResumeLatencyNanos()) / 1e9
			}
			if deadline > 0 && dp.inline.tx != nil && service+resumeLat > deadline {
				// The span cannot settle within its HTLC deadline: the
				// expiry event replaces the attempt's PaymentComplete, so
				// every attempt still settles exactly once.
				at := t + lat + deadline
				queue.Schedule(event.Event{
					Time: at, Kind: event.DeadlineExpiry,
					ID: int64(dp.p.ID), Attempt: dp.attempt,
				})
				if opts.audit != nil {
					opts.audit(schedAudit{ID: int64(dp.p.ID), Attempt: dp.attempt, At: t,
						Lat: lat, Service: service, ResumeLat: resumeLat, EventAt: at, Expired: true})
				}
				return
			}
			at := t + lat + service + resumeLat
			queue.Schedule(event.Event{
				Time: at, Kind: event.PaymentComplete,
				ID: int64(dp.p.ID), Attempt: dp.attempt,
			})
			if opts.audit != nil {
				opts.audit(schedAudit{ID: int64(dp.p.ID), Attempt: dp.attempt, At: t,
					Lat: lat, Service: service, ResumeLat: resumeLat, EventAt: at})
			}
			return
		}
		dp.done = make(chan routeResult, 1)
		go func(p trace.Payment, done chan routeResult) {
			done <- attempt(p)
		}(dp.p, dp.done)
		// Concurrent stations learn the attempt's outcome — and its
		// latency charge — only at harvest time; the completion handler
		// re-schedules the settle past the service time when needed.
		queue.Schedule(event.Event{
			Time: t + service, Kind: event.PaymentComplete,
			ID: int64(dp.p.ID), Attempt: dp.attempt,
		})
	}

	// windowFor returns the time-series bucket containing t. The series
	// never extends past the horizon: completion events may land at
	// t ≥ horizon (service times and retry backoffs outlive the last
	// arrival), and those drain into the final window, whose End is
	// clamped to the horizon. lastWindow is the index of the last
	// bucket whose Start lies strictly inside the horizon — the Ceil
	// can overcount by one when horizon/window carries float error
	// (e.g. 9/0.009), which would otherwise append a phantom
	// zero-width bucket at the horizon.
	lastWindow := int(math.Ceil(horizon/window)) - 1
	if lastWindow > 0 && float64(lastWindow)*window >= horizon {
		lastWindow--
	}
	windowFor := func(t float64) *Window {
		idx := int(t / window)
		if idx > lastWindow {
			idx = lastWindow
		}
		for len(res.Windows) <= idx {
			start := float64(len(res.Windows)) * window
			end := start + window
			if end > horizon {
				end = horizon
			}
			res.Windows = append(res.Windows, Window{Start: start, End: end, Threshold: curThreshold})
		}
		return &res.Windows[idx]
	}

	// applyControlTick is the control plane's observe/decide/apply pass,
	// run once per cadence tick on the event loop: assemble the window's
	// metrics, let every controller decide, apply the decisions to the
	// router, and record the adaptive trajectory into the fingerprinted
	// log. The legacy shim (raw-threshold policy alone) keeps the
	// historical stream — one stamped ThresholdUpdate per tick, nothing
	// else — byte-identical to the engine before internal/control.
	applyControlTick := func(e event.Event) {
		// Materialise the bucket (and any earlier ones) before any swap,
		// so windows that closed under the old threshold report it.
		w := windowFor(e.Time)
		m := ctl.snapshot(e.Time, curThreshold, fl.ProbeWorkers())
		decisions := ctl.plane.Observe(m)
		if ctl.legacy {
			for _, d := range decisions {
				if d.Knob == control.KnobThreshold && d.Value != curThreshold {
					fl.SetThreshold(d.Value)
					curThreshold = d.Value
					res.ThresholdUpdates++
				}
			}
			w.Threshold = curThreshold
			if next := e.Time + thrWindow; next < horizon {
				queue.Schedule(event.Event{Time: next, Kind: event.ThresholdUpdate})
			}
			// Stamped before recording so the log entry (and the
			// fingerprint) carries the effective threshold.
			e.Amount = curThreshold
			log.Record(e)
			return
		}
		// General plane: the bare cadence tick is logged first (knob
		// code 0), then one ControlUpdate per applied decision, each
		// stamped with the effective value the router reports back — the
		// whole adaptive trajectory folds into the fingerprint.
		log.Record(e)
		for _, d := range decisions {
			eff := d.Value
			switch d.Knob {
			case control.KnobThreshold:
				if d.Value == curThreshold {
					continue
				}
				fl.SetThreshold(d.Value)
				curThreshold = d.Value
				res.ThresholdUpdates++
			case control.KnobSenderThreshold:
				fl.SetSenderThreshold(d.Sender, d.Value)
			case control.KnobProbeWidth:
				eff = float64(fl.SetProbeWorkers(int(d.Value)))
			case control.KnobRetryBackoff:
				if !(d.Value > 0) {
					continue
				}
				backoffScale = d.Value
			default:
				continue
			}
			ctl.applied(d.Knob, eff)
			if obs != nil {
				obs.decided(d.Knob, eff)
			}
			log.Record(event.Event{Time: e.Time, Seq: e.Seq, Kind: event.ControlUpdate,
				ID: int64(d.Knob), A: d.Sender, Amount: eff})
		}
		w.Threshold = curThreshold
		if next := e.Time + thrWindow; next < horizon {
			queue.Schedule(event.Event{Time: next, Kind: event.ControlUpdate})
		}
	}

	pullArrival()
	for queue.Len() > 0 {
		e, _ := queue.Pop()
		clock.AdvanceTo(e.Time)
		if e.Kind == event.ThresholdUpdate || e.Kind == event.ControlUpdate {
			applyControlTick(e)
			continue
		}
		log.Record(e)

		switch e.Kind {
		case event.PaymentArrival:
			dp := pending[e.ID]
			if e.Attempt == 0 {
				pullArrival()
				if ctl != nil {
					ctl.arrival(dp.p.Sender, dp.p.Amount)
				}
			}
			dp.attempt = e.Attempt
			// With hold spans the deterministic single station never
			// queues: routing is instantaneous in virtual time, and a
			// payment's residency on the network is modelled by its
			// locked holds, not by station occupancy — every arrival
			// must probe the network exactly as it stands at its own
			// arrival instant, in-flight holds included. The same holds
			// with a latency model: the settle event lands after the
			// charged legs, but the routing itself still executes at the
			// arrival instant, so delayed settles must not queue arrivals.
			if busy < workers || ((spans || latOn) && workers == 1) {
				dispatch(dp, e.Time)
			} else {
				waitQ = append(waitQ, e.ID)
			}

		case event.PaymentComplete, event.DeadlineExpiry:
			dp := pending[e.ID]
			result := dp.inline
			if dp.done != nil {
				result = <-dp.done
				dp.done = nil
				// Concurrent stations learn the outcome — and its virtual
				// latency — only now, after the service time. When a
				// latency model is live, re-schedule the settle (or the
				// deadline expiry, clamped so the clock never runs
				// backwards) as a second event; the station stays busy
				// until it lands. With latency off both terms are zero and
				// the attempt settles right here, as it always did.
				lat := 0.0
				if latOn {
					lat = float64(result.out.probeLatNanos+result.out.commitLatNanos) / 1e9
				}
				resumeLat := 0.0
				if result.tx != nil {
					resumeLat = float64(result.tx.ResumeLatencyNanos()) / 1e9
				}
				if deadline > 0 && result.tx != nil && e.Time-dp.dispatched+resumeLat > deadline {
					dp.inline = result
					at := dp.dispatched + deadline
					if at < e.Time {
						at = e.Time
					}
					queue.Schedule(event.Event{
						Time: at, Kind: event.DeadlineExpiry,
						ID: e.ID, Attempt: dp.attempt,
					})
					continue
				}
				if lat+resumeLat > 0 {
					dp.inline = result
					queue.Schedule(event.Event{
						Time: e.Time + lat + resumeLat, Kind: event.PaymentComplete,
						ID: e.ID, Attempt: dp.attempt,
					})
					continue
				}
			}
			busy--
			dp.spanAborted = false // only the settling attempt's verdict counts
			dp.expired = false
			if e.Kind == event.DeadlineExpiry {
				// The span's HTLC deadline passed before its commit could
				// settle: tear the holds down and count the attempt as
				// failed. Expire races Resume in general, but the engine
				// schedules exactly one settle event per attempt, so here
				// it must win.
				if result.tx != nil {
					if rerr := result.tx.Expire(); rerr != nil {
						result.err = rerr
					} else {
						res.DeadlineExpiries++
						dp.expired = true
						result.out.delivered = false
						result.out.commitMsgs = int64(result.tx.CommitMessages())
						result.out.commitLatNanos = result.tx.CommitLatencyNanos()
						result.out.fees = 0
					}
				}
			} else if result.err == nil && result.tx != nil {
				// Settle the hold span: the deferred commit applies now —
				// or aborts, if churn closed a held channel mid-span. The
				// CONFIRM/REVERSE messages (and their latency) and any fees
				// land here, so the accounting is re-read from the session.
				committed, rerr := result.tx.Resume()
				if rerr != nil {
					result.err = rerr
				} else {
					result.out.delivered = committed
					result.out.commitMsgs = int64(result.tx.CommitMessages())
					result.out.commitLatNanos = result.tx.CommitLatencyNanos()
					result.out.fees = 0
					if committed {
						result.out.fees = result.tx.FeesPaid()
					} else {
						res.SpanAborts++
						dp.spanAborted = true
					}
				}
			}
			if result.err != nil {
				res.FinalThreshold = curThreshold
				res.finishLog(&log)
				return res, result.err
			}
			dp.total.add(result.out)
			if result.out.delivered || dp.attempt >= opts.Retries {
				delete(pending, e.ID)
				t := dp.total
				dp.total = routeOutcome{}
				res.Aggregate.Record(dp.p.Amount, miceThreshold, t.elapsed, t.probeMsgs, t.commitMsgs, t.fees, t.delivered)
				w := windowFor(e.Time)
				w.Metrics.Record(dp.p.Amount, miceThreshold, t.elapsed, t.probeMsgs, t.commitMsgs, t.fees, t.delivered)
				if ctl != nil {
					// The re-classification view and the controllers' window
					// metrics classify against the threshold in effect for
					// this sender right now — per-sender overrides included —
					// where the fixed-threshold Metrics above keep runs
					// comparable across policies.
					effThr := fl.ThresholdFor(dp.p.Sender)
					ctl.completedPayment(dp.p.Amount, effThr, t)
					res.Adaptive.Record(dp.p.Amount, effThr, t.elapsed, t.probeMsgs, t.commitMsgs, t.fees, t.delivered)
					w.Adaptive.Record(dp.p.Amount, effThr, t.elapsed, t.probeMsgs, t.commitMsgs, t.fees, t.delivered)
				}
				if latencyReport && t.delivered {
					res.Latency.Observe(e.Time - dp.arrival)
					w.Latency.Observe(e.Time - dp.arrival)
				}
				if obs != nil {
					obs.completed(dp.p, miceThreshold, t, dp.attempt+1, dp.arrival, e.Time, dp.spanAborted, dp.expired, curThreshold)
				}
			} else {
				// Retry after a jittered virtual backoff: 50ms · 2^attempt,
				// scaled by [0.5, 1.5) — long enough for the racing holds of
				// the same instant to have settled.
				backoff := 0.05 * backoffScale * float64(uint(1)<<uint(dp.attempt)) * (0.5 + schedRNG.Float64())
				queue.Schedule(event.Event{
					Time: e.Time + backoff, Kind: event.PaymentArrival,
					ID: e.ID, Attempt: dp.attempt + 1,
				})
				if opts.audit != nil {
					opts.audit(schedAudit{ID: e.ID, Attempt: dp.attempt, At: e.Time,
						Backoff: backoff, EventAt: e.Time + backoff, Retry: true})
				}
			}
			if len(waitQ) > 0 && busy < workers {
				next := waitQ[0]
				waitQ = waitQ[1:]
				dispatch(pending[next], e.Time)
			}

		case event.ChannelClose:
			if err := net.SetChannelOpen(e.A, e.B, false); err != nil {
				return res, fmt.Errorf("sim: churn close: %w", err)
			}
			if fl != nil {
				fl.InvalidateChannel(e.A, e.B)
			}

		case event.ChannelOpen:
			if err := net.SetChannelOpen(e.A, e.B, true); err != nil {
				return res, fmt.Errorf("sim: churn open: %w", err)
			}
			if e.Amount > 0 {
				// FundChannel, not SetBalance: funding must never undercut
				// holds a concurrent in-flight payment already owns.
				if err := net.FundChannel(e.A, e.B, e.Amount, e.Amount); err != nil {
					return res, fmt.Errorf("sim: churn open funding: %w", err)
				}
			}
			if fl != nil {
				fl.InvalidateChannel(e.A, e.B)
			}

		case event.Rebalance:
			if _, err := net.Rebalance(e.A, e.B); err != nil {
				return res, fmt.Errorf("sim: churn rebalance: %w", err)
			}

		case event.FeeShift:
			if err := net.ScaleFee(e.A, e.B, e.Amount); err != nil {
				return res, fmt.Errorf("sim: churn fee shift: %w", err)
			}

		case event.DemandShift:
			if sh, ok := src.(interface{ SetAmountScale(float64) }); ok {
				sh.SetAmountScale(e.Amount)
				// The one look-ahead arrival was sampled under the old
				// scale but arrives after the shift; rescale it so the
				// first post-shift payment carries a post-shift amount.
				// (Sources that don't scale — trace replays — keep their
				// recorded amounts, and so does their look-ahead.)
				if lookahead != nil {
					lookahead.p.Amount *= e.Amount / curScale
				}
				curScale = e.Amount
			}
		}
	}
	res.FinalThreshold = curThreshold
	if ctl != nil {
		res.ControlOn = !ctl.legacy
		res.AdaptiveView = true
		res.ControlDecisions = ctl.decisions
		res.Controllers = ctl.knobStatus()
	}
	res.finishLog(&log)
	return res, nil
}

// validShiftFactor rejects shift factors that would silently no-op or
// corrupt the run (Generator.SetAmountScale ignores factors ≤ 0, and a
// non-finite fee factor would poison every subsequent fee), mirroring
// the ArrivalProcess.Validate pattern: misconfiguration surfaces as an
// error at schedule-ingest time, not as a silently wrong result.
func validShiftFactor(kind event.Kind, factor float64) error {
	if math.IsNaN(factor) || math.IsInf(factor, 0) || factor <= 0 {
		return fmt.Errorf("sim: %v factor must be positive and finite, got %v", kind, factor)
	}
	return nil
}

// finishLog copies the applied-event log's evidence into the result.
func (r *DynamicResult) finishLog(l *event.Log) {
	r.EventCounts = l.Counts()
	r.Fingerprint = l.Fingerprint()
	r.Log = l.Events()
}

// Arrival-process names understood by DynamicScenario.
const (
	ArrivalPoisson    = "poisson"
	ArrivalFlashCrowd = "flash-crowd"
	ArrivalDiurnal    = "diurnal"
)

// DynamicScenario describes one dynamic experiment cell: a topology, a
// time-varying arrival process, a churn model, and the schemes to
// compare under them.
type DynamicScenario struct {
	Name  string // catalogue label (informational)
	Kind  string // KindRipple, KindLightning, KindTestbed or "snapshot:<path>"
	Nodes int    // topology size; ignored by snapshot kinds

	// Fixture, when non-empty, replaces the Kind topology and workload
	// with a synthetic fixture. FixtureBarbell is the BuildContention
	// barbell: every payment crosses one bridge channel, alternating
	// direction, so committed flow nets out and failures are
	// attributable to in-flight holds — the contention scenario.
	Fixture       string
	SpokeBalance  float64 // barbell spoke per-direction balance
	BridgeBalance float64 // barbell bridge per-direction balance
	FixtureAmount float64 // fixed payment amount on fixture workloads

	// HubFailureFrac, when positive, closes every channel of the
	// highest-degree node at this fraction of Duration — the targeted
	// hub-failure scenario. In-flight holds crossing the hub abort when
	// their spans resume (DynamicResult.SpanAborts counts them).
	HubFailureFrac float64

	ScaleFactor  float64
	MiceFraction float64

	Duration float64 // virtual seconds simulated
	Window   float64 // time-series bucket (default Duration/10)

	Arrival string  // ArrivalPoisson, ArrivalFlashCrowd or ArrivalDiurnal
	Rate    float64 // mean payments per virtual second
	Peak    float64 // flash-crowd rate multiplier / diurnal relative swing

	ChurnRate      float64 // channel open/close events per virtual second
	RebalanceRate  float64 // rebalance events per virtual second
	LatentChannels int     // extra channels that may open mid-run

	// DemandShiftFactor, when positive, rescales payment amounts by
	// this factor at DemandShiftFrac · Duration (a fraction so the
	// shift tracks Duration overrides; 0 or out-of-range means
	// mid-run).
	DemandShiftFactor float64
	DemandShiftFrac   float64

	// FeeShiftFactor, when positive, multiplies the fee schedules of
	// every channel of the top-degree node by this factor at
	// FeeShiftFrac · Duration — the fee-war scenario: the network's
	// busiest hub repricing mid-run. Fee-sensitive routing (Flash's LP)
	// shifts volume around the hub; fee-blind schemes pay up.
	FeeShiftFactor float64
	FeeShiftFrac   float64

	// AdaptiveThreshold re-calibrates Flash's elephant threshold on a
	// rolling ThresholdWindow cadence so the mice/elephant split tracks
	// demand drift (DynamicOptions.AdaptiveThreshold; the scenario's
	// MiceFraction is the tracked quantile). ThresholdWindow 0 defaults
	// to the time-series window.
	AdaptiveThreshold bool
	ThresholdWindow   float64

	// Control runs the adaptive control plane on Flash
	// (DynamicOptions.Control): the policy's controllers observe window
	// metrics on the ThresholdWindow cadence and re-tune the runtime
	// knobs. nil runs whatever AdaptiveThreshold alone selects.
	Control *control.Policy

	// FlashK/FlashM override Flash's path counts when > 0 (FlashMSet
	// forces FlashM through even at zero), mirroring Scenario.
	FlashK    int
	FlashM    int
	FlashMSet bool

	// LatencyMedian, when positive, assigns every channel a virtual RTT
	// drawn log-normally with this median (seconds) and shape
	// LatencySigma (default 0.6 when unset) from a scenario-seeded
	// stream — the latency model every scheme replays identically.
	// Zero leaves the network latency-free: every event time is
	// byte-identical to the pre-latency engine.
	LatencyMedian float64
	LatencySigma  float64

	// Deadline is the hold-span HTLC expiry in virtual seconds
	// (DynamicOptions.Deadline); 0 disables expiry.
	Deadline float64

	// GriefFrac/GriefHold configure the griefing attack
	// (DynamicOptions.GriefFrac/GriefHold): that fraction of payments
	// hold their routes for GriefHold virtual seconds.
	GriefFrac float64
	GriefHold float64

	Schemes []string
	Workers int
	Retries int
	Service float64 // mean virtual service time per payment
	Seed    int64

	// ProbeWorkers sets Flash's per-session speculative probe pool
	// (core.Config.ProbeWorkers; see Scenario.ProbeWorkers). A fixed
	// seed plus a fixed ProbeWorkers replays identically with
	// Workers ≤ 1; ≤ 1 is the sequential Algorithm 1 loop.
	ProbeWorkers int

	// TableCap bounds each sender shard's mice routing table to this
	// many receiver entries, LRU-evicted (core.Config.TableCap). ≤ 0 —
	// the default — keeps tables unbounded, byte-identical replay.
	TableCap int

	// FlowSink and Registry thread telemetry through every scheme's run
	// (DynamicOptions.FlowSink/Registry). When Registry is set the
	// per-scheme router statistics and network hold/message counters are
	// also registered as scheme-labelled gauges. Observer-only; nil
	// disables.
	FlowSink telemetry.Sink
	Registry *telemetry.Registry
}

// DynamicSchemeResult pairs a scheme with its dynamic-run result.
type DynamicSchemeResult struct {
	Scheme string
	Result DynamicResult
}

// FixtureBarbell selects the BuildContention barbell topology and its
// cross-bridge workload in DynamicScenario.Fixture.
const FixtureBarbell = "barbell"

// DynamicScenarioNames lists the scenario catalogue in presentation
// order.
var DynamicScenarioNames = []string{"steady", "flash-crowd", "depletion-rebalance", "churn", "contention", "hub-failure", "demand-drift", "fee-war", "latency-slo", "griefing"}

// NamedDynamicScenario returns a catalogue scenario over the given
// topology:
//
//   - "steady": Poisson arrivals at a constant rate — the dynamic
//     baseline, matching the static replay's load profile.
//   - "flash-crowd": a 6× arrival surge over the middle fifth of the
//     run, plus a 2× demand shift while the crowd lasts.
//   - "depletion-rebalance": steady arrivals at a low capacity scale
//     (channels deplete) with periodic rebalancing fighting back.
//   - "churn": diurnal demand drift with channels closing and
//     (re)opening throughout, including latent channels that first
//     appear mid-run.
//   - "contention": the barbell fixture under Poisson arrivals with
//     hold spans — payments lock the one bridge channel for their
//     service time, so the success rate degrades while holds pile up
//     and recovers as they drain. Only meaningful with Service > 0.
//   - "hub-failure": hold spans plus a targeted failure — every
//     channel of the top-degree node closes mid-run; payments
//     suspended across the failure abort, and the success rate drops
//     with the hub gone.
//   - "demand-drift": a 4× downward demand shift mid-run on a tightly
//     provisioned network, with the adaptive elephant threshold on.
//     The static-threshold control (-adaptivethreshold=false) keeps
//     classifying against the stale pre-shift 90th percentile, so the
//     post-shift top decile routes over m mice paths instead of the
//     elephant algorithm and its success ratio degrades; the adaptive
//     run re-calibrates within a threshold window and recovers.
//   - "fee-war": the top-degree hub multiplies its channel fees 25×
//     mid-run. Success is largely unaffected (capacity is unchanged)
//     but the fee ratio jumps in the post-shift windows, least for
//     fee-optimising schemes.
//   - "latency-slo": per-channel RTTs (log-normal, 50ms median) under
//     hold spans with a 5s HTLC deadline — the latency-aware cell:
//     completion-latency percentiles become first-class per-window
//     metrics, and probe-heavy schemes pay their round trips in p95/
//     p99. ProbeWorkers > 1 visibly compresses the probe latency.
//   - "griefing": a deadline-exhaustion attack on the barbell bridge —
//     the victim channel every payment crosses. 30% of payments are
//     griefers holding their routes for 30s (vs the honest 2s mean);
//     with the 4s deadline the griefers' spans expire and honest
//     traffic recovers, while the -deadline=0 control shows the
//     attack pinning the bridge liquidity unchallenged.
func NamedDynamicScenario(name, kind string, nodes int) (DynamicScenario, error) {
	sc := DynamicScenario{
		Name:         name,
		Kind:         kind,
		Nodes:        nodes,
		ScaleFactor:  10,
		MiceFraction: 0.9,
		Duration:     60,
		Arrival:      ArrivalPoisson,
		Rate:         20,
		Schemes:      PaperSchemes,
		Seed:         1,
	}
	switch name {
	case "steady":
	case "flash-crowd":
		sc.Arrival = ArrivalFlashCrowd
		sc.Rate = 15
		sc.Peak = 6
		sc.DemandShiftFactor = 2
		sc.DemandShiftFrac = 0.4 // the surge start, wherever Duration lands
	case "depletion-rebalance":
		sc.ScaleFactor = 2
		sc.Rate = 25
		sc.RebalanceRate = 2
	case "churn":
		sc.Arrival = ArrivalDiurnal
		sc.Peak = 0.6
		sc.ChurnRate = 1
		sc.RebalanceRate = 0.5
		sc.LatentChannels = nodes / 10
	case "contention":
		sc.Fixture = FixtureBarbell
		sc.Rate = 6
		sc.Service = 2 // mean hold span: ~12 payments in flight at once
		sc.SpokeBalance = 1e6
		sc.BridgeBalance = 80 // ~8 concurrent holds per direction fit
		sc.FixtureAmount = 10
	case "hub-failure":
		sc.Rate = 25
		sc.Service = 1.5
		sc.HubFailureFrac = 0.5
	case "demand-drift":
		sc.ScaleFactor = 2 // tight capacity: misrouted elephants actually fail
		sc.Rate = 25
		sc.DemandShiftFactor = 0.25
		sc.DemandShiftFrac = 0.5
		sc.AdaptiveThreshold = true
	case "fee-war":
		sc.FeeShiftFactor = 25
		sc.FeeShiftFrac = 0.5
	case "latency-slo":
		sc.LatencyMedian = 0.05 // 50ms median per-channel RTT
		sc.LatencySigma = 0.8
		sc.Service = 1
		sc.Deadline = 5
	case "griefing":
		sc.Fixture = FixtureBarbell
		sc.Rate = 6
		sc.Service = 2
		sc.SpokeBalance = 1e6
		sc.BridgeBalance = 80
		sc.FixtureAmount = 10
		sc.LatencyMedian = 0.02
		sc.LatencySigma = 0.5
		sc.GriefFrac = 0.3
		sc.GriefHold = 30 // half the run: a griefed hold never drains on its own
		sc.Deadline = 4
	default:
		return sc, fmt.Errorf("sim: unknown dynamic scenario %q (have %v)", name, DynamicScenarioNames)
	}
	return sc, nil
}

// arrivalProcess builds the scenario's arrival process.
func (sc DynamicScenario) arrivalProcess() (trace.ArrivalProcess, error) {
	switch sc.Arrival {
	case ArrivalPoisson, "":
		return trace.Poisson{Rate: sc.Rate}, nil
	case ArrivalFlashCrowd:
		peak := sc.Peak
		if peak <= 0 {
			peak = 6 // 0 is the unset sentinel; explicit ≤1 (no surge) is honoured
		}
		return trace.FlashCrowd{
			BaseRate: sc.Rate,
			Peak:     peak,
			Start:    sc.Duration * 0.4,
			Duration: sc.Duration * 0.2,
		}, nil
	case ArrivalDiurnal:
		swing := sc.Peak
		if swing <= 0 {
			swing = 0.6 // unset
		}
		if swing >= 1 {
			swing = 0.95 // the modulated rate must stay positive
		}
		return trace.Diurnal{MeanRate: sc.Rate, Swing: swing, Period: sc.Duration / 2}, nil
	default:
		return nil, fmt.Errorf("sim: unknown arrival process %q", sc.Arrival)
	}
}

// RunDynamicScenario executes a dynamic scenario: every scheme replays
// an identically-seeded workload over an identically-seeded network
// under the identical churn schedule, so scheme results are directly
// comparable. The churn schedule, latent channels, arrival times and
// payment contents are all pure functions of the scenario seed.
func RunDynamicScenario(sc DynamicScenario) ([]DynamicSchemeResult, error) {
	if sc.Duration <= 0 {
		return nil, fmt.Errorf("sim: dynamic scenario needs a positive duration")
	}
	if sc.Rate <= 0 {
		return nil, fmt.Errorf("sim: dynamic scenario needs a positive arrival rate")
	}
	if sc.MiceFraction == 0 {
		sc.MiceFraction = 0.9
	}
	if len(sc.Schemes) == 0 {
		sc.Schemes = PaperSchemes
	}
	arr, err := sc.arrivalProcess()
	if err != nil {
		return nil, err
	}

	results := make([]DynamicSchemeResult, 0, len(sc.Schemes))
	for _, scheme := range sc.Schemes {
		var (
			net       *pcn.Network
			stream    trace.PaymentSource
			threshold float64
			churn     []event.Event
		)
		switch sc.Fixture {
		case "":
			n, err := BuildNetwork(sc.Kind, sc.Nodes, sc.ScaleFactor, 0, 0, sc.Seed)
			if err != nil {
				return nil, err
			}
			net = n
			churnRNG := newChurnRNG(sc.Seed)
			latent := registerLatentChannels(net, sc.LatentChannels, churnRNG)
			churn = buildChurnSchedule(sc, net, latent, churnRNG)

			threshold, err = calibrateThreshold(sc, net.Graph())
			if err != nil {
				return nil, err
			}
			gen, err := workloadFor(sc.Kind, net.Graph(), sc.Seed)
			if err != nil {
				return nil, err
			}
			stream, err = trace.NewStream(gen, arr, sc.Seed)
			if err != nil {
				return nil, err
			}
		case FixtureBarbell:
			var err error
			net, stream, threshold, err = buildBarbellCell(sc, arr)
			if err != nil {
				return nil, err
			}
			churn = buildChurnSchedule(sc, net, nil, newChurnRNG(sc.Seed))
		default:
			return nil, fmt.Errorf("sim: unknown dynamic fixture %q", sc.Fixture)
		}
		// The latency model is assigned after latent channels register,
		// so channels that first open mid-run carry RTTs too; its RNG
		// stream is independent of every other draw, so turning latency
		// on never perturbs topology, balances, churn or workload.
		if sc.LatencyMedian > 0 {
			sigma := sc.LatencySigma
			if sigma <= 0 {
				sigma = 0.6
			}
			net.AssignLatenciesLogNormal(newLatencyRNG(sc.Seed), sc.LatencyMedian, sigma)
		}
		r, err := BuildRouter(RouterSpec{
			Scheme: scheme, Threshold: threshold,
			K: sc.FlashK, M: sc.FlashM, MSet: sc.FlashMSet,
			ProbeWorkers: sc.ProbeWorkers,
			TableCap:     sc.TableCap,
			Seed:         sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		if sc.Registry != nil {
			RegisterRouterMetrics(sc.Registry, scheme, r)
			RegisterNetworkMetrics(sc.Registry, scheme, net)
		}
		res, err := RunDynamic(net, r, stream, sc.Duration, churn, threshold, DynamicOptions{
			Workers:           sc.Workers,
			Seed:              sc.Seed,
			Retries:           sc.Retries,
			Window:            sc.Window,
			Service:           sc.Service,
			AdaptiveThreshold: sc.AdaptiveThreshold,
			ThresholdWindow:   sc.ThresholdWindow,
			MiceFraction:      sc.MiceFraction,
			Control:           sc.Control,
			Deadline:          sc.Deadline,
			GriefFrac:         sc.GriefFrac,
			GriefHold:         sc.GriefHold,
			FlowSink:          sc.FlowSink,
			Registry:          sc.Registry,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", scheme, err)
		}
		results = append(results, DynamicSchemeResult{Scheme: scheme, Result: res})
	}
	return results, nil
}

// calibrateThreshold fixes the elephant threshold from a workload
// sample drawn with the scenario's own seed: the dynamic stream is
// lazy, so the threshold is pinned on an identically-seeded throwaway
// generator (whose sample is, by construction, the prefix of the
// payments the stream will actually produce).
func calibrateThreshold(sc DynamicScenario, g *topo.Graph) (float64, error) {
	n := int(sc.Rate * sc.Duration)
	if n < 200 {
		n = 200
	}
	if n > 4000 {
		n = 4000
	}
	gen, err := workloadFor(sc.Kind, g, sc.Seed)
	if err != nil {
		return 0, err
	}
	return core.ThresholdForMiceFraction(trace.Amounts(gen.Generate(n)), sc.MiceFraction), nil
}

// buildBarbellCell constructs the contention fixture's network and
// workload: a BuildContention barbell (spoke count derived from
// sc.Nodes, zero-value balances and amount falling back to the
// catalogue defaults) and a lazy cross-bridge payment stream under the
// scenario's arrival process. The elephant threshold equals the fixed
// payment amount, so every payment classifies as a mouse — the
// scenario isolates hold contention, not size differentiation.
func buildBarbellCell(sc DynamicScenario, arr trace.ArrivalProcess) (*pcn.Network, trace.PaymentSource, float64, error) {
	spokes := (sc.Nodes - 2) / 2
	if spokes < 2 {
		spokes = 2
	}
	spokeBal, bridgeBal, amount := sc.SpokeBalance, sc.BridgeBalance, sc.FixtureAmount
	if spokeBal <= 0 {
		spokeBal = 1e6
	}
	if bridgeBal <= 0 {
		bridgeBal = 80
	}
	if amount <= 0 {
		amount = 10
	}
	net, _, err := BuildContention(spokes, spokeBal, bridgeBal, amount)
	if err != nil {
		return nil, nil, 0, err
	}
	stream := &barbellStream{
		spokes: spokes,
		amount: amount,
		arr:    arr,
		rng:    stats.NewRNG(sc.Seed, 0xBA2B),
	}
	return net, stream, amount, nil
}

// barbellStream feeds the barbell fixture's cross-bridge payments
// under an arrival process: round-robin spoke pairs, alternating
// direction every payment so committed flow nets out over the bridge
// and failures are attributable to in-flight holds, not depletion.
// Like trace.Stream it never exhausts; the horizon bounds the run.
type barbellStream struct {
	spokes int
	amount float64
	arr    trace.ArrivalProcess
	rng    *rand.Rand
	now    float64
	next   int
}

// Validate checks the stream's arrival process, mirroring
// trace.Stream.Validate (RunDynamic calls it before scheduling).
func (b *barbellStream) Validate() error { return b.arr.Validate() }

// Next implements trace.PaymentSource.
func (b *barbellStream) Next() (trace.Payment, float64, bool) {
	b.now = b.arr.NextAfter(b.rng, b.now)
	i := b.next
	b.next++
	left := topo.NodeID(i % b.spokes)
	right := topo.NodeID(b.spokes + 2 + (i/b.spokes)%b.spokes)
	p := trace.Payment{ID: i, Amount: b.amount, Time: b.now / trace.SecondsPerDay}
	if i%2 == 0 {
		p.Sender, p.Receiver = left, right
	} else {
		p.Sender, p.Receiver = right, left
	}
	return p, b.now, true
}

// registerLatentChannels extends the network with count latent (closed,
// unfunded) channels between uniformly drawn unconnected node pairs —
// the channels a churn schedule's open events may activate mid-run.
// Registration happens before any payment flows, which is the safety
// requirement of pcn.RegisterChannel.
func registerLatentChannels(net *pcn.Network, count int, rng *rand.Rand) []topo.Edge {
	g := net.Graph()
	n := g.NumNodes()
	var latent []topo.Edge
	for attempts := 0; len(latent) < count && attempts < 20*count+20; attempts++ {
		u := topo.NodeID(rng.Intn(n))
		v := topo.NodeID(rng.Intn(n))
		if u == v || g.HasChannel(u, v) {
			continue
		}
		if _, err := net.RegisterChannel(u, v); err != nil {
			continue
		}
		latent = append(latent, topo.NewEdge(u, v))
	}
	return latent
}

// buildChurnSchedule draws the scenario's churn events: Poisson
// open/close toggles over the channel population (latent channels
// start closed and get funded on first open), Poisson rebalances, and
// the optional demand shift. The schedule depends only on the RNG and
// the network's initial funding, so identically-seeded schemes replay
// identical churn.
func buildChurnSchedule(sc DynamicScenario, net *pcn.Network, latent []topo.Edge, rng *rand.Rand) []event.Event {
	var events []event.Event
	g := net.Graph()
	baseChannels := g.NumChannels() - len(latent)

	if sc.ChurnRate > 0 && baseChannels > 0 {
		// Track liveness as the schedule will unfold: base channels start
		// open, latent ones closed and unfunded.
		open := make([]topo.Edge, baseChannels)
		copy(open, g.Channels()[:baseChannels])
		closed := append([]topo.Edge(nil), latent...)
		unfunded := make(map[topo.Edge]bool, len(latent))
		for _, e := range latent {
			unfunded[e] = true
		}
		// Latent channels opened for the first time get the network's
		// mean per-direction funding.
		meanDir := 0.0
		if g.NumChannels() > 0 {
			meanDir = net.TotalFunds() / float64(2*g.NumChannels())
		}
		for t := nextExp(rng, sc.ChurnRate); t < sc.Duration; t += nextExp(rng, sc.ChurnRate) {
			openOne := len(closed) > 0 && (len(open) <= 1 || rng.Float64() < 0.5)
			if openOne {
				i := rng.Intn(len(closed))
				e := closed[i]
				closed = append(closed[:i], closed[i+1:]...)
				open = append(open, e)
				amount := 0.0
				if unfunded[e] {
					amount = meanDir
					delete(unfunded, e)
				}
				events = append(events, event.Event{Time: t, Kind: event.ChannelOpen, A: e.A, B: e.B, Amount: amount})
			} else {
				i := rng.Intn(len(open))
				e := open[i]
				open = append(open[:i], open[i+1:]...)
				closed = append(closed, e)
				events = append(events, event.Event{Time: t, Kind: event.ChannelClose, A: e.A, B: e.B})
			}
		}
	}

	if sc.RebalanceRate > 0 && baseChannels > 0 {
		chans := g.Channels()[:baseChannels]
		for t := nextExp(rng, sc.RebalanceRate); t < sc.Duration; t += nextExp(rng, sc.RebalanceRate) {
			e := chans[rng.Intn(len(chans))]
			events = append(events, event.Event{Time: t, Kind: event.Rebalance, A: e.A, B: e.B})
		}
	}

	if sc.DemandShiftFactor > 0 {
		frac := sc.DemandShiftFrac
		if frac <= 0 || frac >= 1 {
			frac = 0.5
		}
		events = append(events, event.Event{Time: sc.Duration * frac, Kind: event.DemandShift, Amount: sc.DemandShiftFactor})
	}

	// Targeted hub failure: close every channel of the top-degree node
	// at the configured instant. Consumes no randomness, so enabling it
	// never perturbs the Poisson churn draws above.
	if sc.HubFailureFrac > 0 && sc.HubFailureFrac < 1 {
		hub := topDegreeNode(g)
		at := sc.Duration * sc.HubFailureFrac
		for _, e := range g.Channels() {
			if e.A == hub || e.B == hub {
				events = append(events, event.Event{Time: at, Kind: event.ChannelClose, A: e.A, B: e.B})
			}
		}
	}

	// Fee war: the top-degree hub reprices every one of its channels at
	// the configured instant. Like the hub failure, this consumes no
	// randomness.
	if sc.FeeShiftFactor > 0 {
		frac := sc.FeeShiftFrac
		if frac <= 0 || frac >= 1 {
			frac = 0.5
		}
		hub := topDegreeNode(g)
		at := sc.Duration * frac
		for _, e := range g.Channels() {
			if e.A == hub || e.B == hub {
				events = append(events, event.Event{Time: at, Kind: event.FeeShift, A: e.A, B: e.B, Amount: sc.FeeShiftFactor})
			}
		}
	}
	return events
}

// topDegreeNode returns the node with the most channels (lowest ID on
// ties — deterministic).
func topDegreeNode(g *topo.Graph) topo.NodeID {
	best := topo.NodeID(0)
	for u := 1; u < g.NumNodes(); u++ {
		if g.Degree(topo.NodeID(u)) > g.Degree(best) {
			best = topo.NodeID(u)
		}
	}
	return best
}

// nextExp draws an exponential inter-event gap for rate events/second.
func nextExp(rng *rand.Rand, rate float64) float64 {
	return rng.ExpFloat64() / rate
}

// newChurnRNG derives the churn-schedule RNG (latent-channel selection
// and event times) from a scenario seed.
func newChurnRNG(seed int64) *rand.Rand { return stats.NewRNG(seed, 0xC402) }

// newLatencyRNG derives the per-channel RTT assignment RNG from a
// scenario seed — its own stream, so the latency model never perturbs
// any other scenario draw.
func newLatencyRNG(seed int64) *rand.Rand { return stats.NewRNG(seed, 0x1A7E) }
