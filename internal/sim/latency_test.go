package sim

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/trace"
)

// TestLatencyStats pins the estimator wrapper: exact count/sum/max,
// percentiles within the P² estimator's tolerance on a known
// distribution, and a zero value that reports zeros.
func TestLatencyStats(t *testing.T) {
	var zero LatencyStats
	if zero.Count != 0 || zero.Mean() != 0 || zero.P50() != 0 || zero.P95() != 0 || zero.P99() != 0 {
		t.Errorf("zero LatencyStats not zero: %+v", zero)
	}

	var l LatencyStats
	n := 10000
	for i := 0; i < n; i++ {
		l.Observe(float64(i+1) / float64(n)) // uniform (0, 1]
	}
	if l.Count != n {
		t.Errorf("Count = %d, want %d", l.Count, n)
	}
	if math.Abs(l.Mean()-0.5) > 1e-3 {
		t.Errorf("Mean = %v, want ~0.5", l.Mean())
	}
	if l.Max != 1 {
		t.Errorf("Max = %v, want 1", l.Max)
	}
	for _, c := range []struct {
		got, want, tol float64
		name           string
	}{
		{l.P50(), 0.50, 0.02, "p50"},
		{l.P95(), 0.95, 0.02, "p95"},
		{l.P99(), 0.99, 0.02, "p99"},
	} {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s = %v, want %v ± %v", c.name, c.got, c.want, c.tol)
		}
	}
	if !(l.P50() <= l.P95() && l.P95() <= l.P99() && l.P99() <= l.Max) {
		t.Errorf("percentiles not monotone: %v %v %v max %v", l.P50(), l.P95(), l.P99(), l.Max)
	}
}

// latencyScenario is the latency-slo catalogue cell at test scale.
func latencyScenario(t *testing.T, name string) DynamicScenario {
	t.Helper()
	sc, err := NamedDynamicScenario(name, KindRipple, 60)
	if err != nil {
		t.Fatal(err)
	}
	sc.Duration = 12
	sc.Rate = 8
	sc.Schemes = []string{SchemeFlash}
	sc.Seed = 42
	return sc
}

// TestDynamicLatencyDeterministicRender is the latency model's
// determinism guarantee at the CLI's observable level: the same seed
// at workers=1 yields byte-identical rendered tables — latency
// percentile columns included — and identical fingerprints.
func TestDynamicLatencyDeterministicRender(t *testing.T) {
	run := func() (string, uint64) {
		results, err := RunDynamicScenario(latencyScenario(t, "latency-slo"))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		WriteDynamicResult(&buf, results[0].Scheme, results[0].Result, false)
		return buf.String(), results[0].Result.Fingerprint
	}
	outA, fpA := run()
	outB, fpB := run()
	if fpA != fpB {
		t.Fatalf("fingerprints diverged: %x vs %x", fpA, fpB)
	}
	if outA != outB {
		t.Fatalf("rendered output diverged:\n--- A ---\n%s\n--- B ---\n%s", outA, outB)
	}
	if !strings.Contains(outA, "p50 lat") || !strings.Contains(outA, "p95 lat") || !strings.Contains(outA, "p99 lat") {
		t.Errorf("latency-on render missing percentile columns:\n%s", outA)
	}
}

// TestDynamicLatencyOffRenderUnchanged guards the nil path at the
// render layer: with no RTTs and no deadline the result reports
// LatencyOn=false and the table carries none of the latency columns or
// the expiry footer — the shape every pre-latency golden was recorded
// against. (The engine-level byte identity is pinned separately by
// TestDynamicZeroChurnEquivalence against the seed goldens.)
func TestDynamicLatencyOffRenderUnchanged(t *testing.T) {
	sc := latencyScenario(t, "steady")
	results, err := RunDynamicScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0].Result
	if res.LatencyOn {
		t.Error("steady scenario reports LatencyOn")
	}
	if res.DeadlineExpiries != 0 || res.Latency.Count != 0 {
		t.Errorf("latency-off run accumulated latency state: %+v", res.Latency)
	}
	var buf bytes.Buffer
	WriteDynamicResult(&buf, results[0].Scheme, res, false)
	out := buf.String()
	for _, banned := range []string{"p50 lat", "p95 lat", "p99 lat", "deadline expiries"} {
		if strings.Contains(out, banned) {
			t.Errorf("latency-off render contains %q:\n%s", banned, out)
		}
	}
	var jsonBuf bytes.Buffer
	if err := WriteDynamicJSON(&jsonBuf, results[0].Scheme, res); err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{`"latency"`, `"deadline"`, `"deadlineExpiries"`} {
		if strings.Contains(jsonBuf.String(), banned) {
			t.Errorf("latency-off JSON contains %s:\n%s", banned, jsonBuf.String())
		}
	}
}

// TestDeadlineExpiryDeterminism pins the expiry path's determinism:
// the same seed yields the same fingerprint with DeadlineExpiry events
// in the stream, and the expiry count is stable.
func TestDeadlineExpiryDeterminism(t *testing.T) {
	run := func() DynamicResult {
		sc := latencyScenario(t, "griefing")
		sc.Duration = 20
		sc.Rate = 6
		results, err := RunDynamicScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		return results[0].Result
	}
	a, b := run(), run()
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints diverged: %x vs %x", a.Fingerprint, b.Fingerprint)
	}
	if a.DeadlineExpiries != b.DeadlineExpiries {
		t.Fatalf("expiry counts diverged: %d vs %d", a.DeadlineExpiries, b.DeadlineExpiries)
	}
	if a.DeadlineExpiries == 0 {
		t.Error("griefing scenario produced no deadline expiries")
	}
	if got := a.EventCounts[event.DeadlineExpiry]; got != a.DeadlineExpiries {
		t.Errorf("event count %d != DeadlineExpiries %d", got, a.DeadlineExpiries)
	}
}

// TestDynamicDeadlineConcurrentRace drives the griefing scenario on
// real goroutines so deadline expiries race live Resume calls under
// the race detector — the engine-level counterpart of the pcn span
// claim test.
func TestDynamicDeadlineConcurrentRace(t *testing.T) {
	sc := latencyScenario(t, "griefing")
	sc.Duration = 15
	sc.Workers = 4
	results, err := RunDynamicScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0].Result
	m := res.Aggregate
	if m.Payments == 0 {
		t.Fatal("no payments replayed")
	}
	if m.Successes > m.Payments || m.SuccessVolume > m.AttemptVolume+1e-9 {
		t.Errorf("inconsistent metrics: %+v", m)
	}
	if res.DeadlineExpiries == 0 {
		t.Error("concurrent griefing run produced no deadline expiries")
	}
}

// TestGriefingPairedControl demonstrates the attack and its defence
// with paired controls: against the no-attack baseline, griefers
// pinning bridge liquidity collapse the success ratio when expiry is
// disabled, and the HTLC deadline claws a large part of it back by
// tearing the griefed holds down.
func TestGriefingPairedControl(t *testing.T) {
	run := func(mut func(*DynamicScenario)) DynamicResult {
		sc := latencyScenario(t, "griefing")
		sc.Duration = 30
		sc.Rate = 6
		mut(&sc)
		results, err := RunDynamicScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		return results[0].Result
	}
	clean := run(func(sc *DynamicScenario) { sc.GriefFrac = 0 })
	defended := run(func(sc *DynamicScenario) {})
	undefended := run(func(sc *DynamicScenario) { sc.Deadline = 0 })

	if defended.DeadlineExpiries == 0 {
		t.Error("defended run tore down no griefed holds")
	}
	if defended.DeadlineExpiries <= clean.DeadlineExpiries {
		// Honest exponential service occasionally outlives the deadline
		// too; the attack's signature is the expiry excess over that
		// baseline, every extra one a griefed hold torn down.
		t.Errorf("attack caused no excess expiries: defended %d <= clean %d",
			defended.DeadlineExpiries, clean.DeadlineExpiries)
	}
	rClean := clean.Aggregate.SuccessRatio()
	rDef := defended.Aggregate.SuccessRatio()
	rUndef := undefended.Aggregate.SuccessRatio()
	if !(rClean > rDef) {
		t.Errorf("attack invisible: clean %.3f <= defended %.3f", rClean, rDef)
	}
	if !(rDef > rUndef) {
		t.Errorf("deadline defence invisible: defended %.3f <= undefended %.3f", rDef, rUndef)
	}
}

// TestExactVirtualTimeAccounting is the latency model's central
// property: every scheduled settle, expiry, and retry time is the
// exact float64 sum of its audited components, the chain of decisions
// for one payment is gapless (each decision starts at the previous
// event's instant), and a payment's final completion time replayed
// from its audit chain reproduces the logged event time bit for bit —
// completion == arrival + charged latency + service + resume legs +
// retry backoffs, with no hidden terms.
func TestExactVirtualTimeAccounting(t *testing.T) {
	const deadline = 3.0
	net, err := BuildNetwork(KindRipple, 60, 10, 0, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	net.AssignLatenciesLogNormal(newLatencyRNG(7), 0.05, 0.8)
	cfg := trace.DefaultConfig(net.Graph().NumNodes())
	cfg.Graph = net.Graph()
	cfg.Seed = 7
	gen, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payments := gen.Generate(200)
	threshold := core.ThresholdForMiceFraction(trace.Amounts(payments), 0.9)
	r, err := NewRouter(SchemeFlash, threshold, 0, 0, false, 7)
	if err != nil {
		t.Fatal(err)
	}

	var audits []schedAudit
	opts := DynamicOptions{
		Workers: 1, Seed: 7, Retries: 2, Service: 1, Deadline: deadline, RecordLog: true,
		audit: func(a schedAudit) { audits = append(audits, a) },
	}
	horizon := (payments[len(payments)-1].Time + 1) * trace.SecondsPerDay
	res, err := RunDynamic(net, r, trace.NewReplayStream(payments), horizon, nil, threshold, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(audits) == 0 {
		t.Fatal("audit hook never fired")
	}

	// Per-decision identity: the scheduled time IS the sum, bitwise.
	expired := 0
	for i, a := range audits {
		var want float64
		switch {
		case a.Retry:
			want = a.At + a.Backoff
		case a.Expired:
			want = a.At + a.Lat + deadline
		default:
			want = a.At + a.Lat + a.Service + a.ResumeLat
		}
		if a.EventAt != want {
			t.Fatalf("audit %d: EventAt %v != component sum %v (%+v)", i, a.EventAt, want, a)
		}
		if a.Expired {
			expired++
		}
	}
	if expired != res.DeadlineExpiries {
		t.Errorf("audited expiries %d != result's %d", expired, res.DeadlineExpiries)
	}

	// Chain reconstruction: group the log's terminal events and the
	// audits per payment, then replay each chain from its first
	// arrival. Exact float64 equality at every link.
	arrivals := map[int64]float64{}   // first-attempt arrival instants
	terminal := map[int64][]float64{} // settle/expiry event times in order
	for _, e := range res.Log {
		switch e.Kind {
		case event.PaymentArrival:
			if e.Attempt == 0 {
				arrivals[e.ID] = e.Time
			}
		case event.PaymentComplete, event.DeadlineExpiry:
			terminal[e.ID] = append(terminal[e.ID], e.Time)
		}
	}
	byID := map[int64][]schedAudit{}
	ids := []int64{}
	for _, a := range audits {
		if len(byID[a.ID]) == 0 {
			ids = append(ids, a.ID)
		}
		byID[a.ID] = append(byID[a.ID], a)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	checked := 0
	for _, id := range ids {
		chain := byID[id]
		arrival, ok := arrivals[id]
		if !ok {
			t.Fatalf("payment %d audited but never arrived in the log", id)
		}
		x := arrival
		settleIdx := 0
		for _, a := range chain {
			if a.At != x {
				t.Fatalf("payment %d: decision starts at %v, previous event ended at %v (%+v)", id, a.At, x, a)
			}
			switch {
			case a.Retry:
				x = a.At + a.Backoff
			case a.Expired:
				x = a.At + a.Lat + deadline
			default:
				x = a.At + a.Lat + a.Service + a.ResumeLat
			}
			if !a.Retry {
				// A settle/expiry decision must reproduce the logged
				// event instant exactly.
				times := terminal[id]
				if settleIdx >= len(times) {
					t.Fatalf("payment %d: more audited settles than logged events", id)
				}
				if times[settleIdx] != x {
					t.Fatalf("payment %d settle %d: log says %v, audit chain says %v", id, settleIdx, times[settleIdx], x)
				}
				settleIdx++
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no settle decisions cross-checked against the log")
	}
	if res.Latency.Count == 0 {
		t.Error("no completion latencies observed despite RTTs on")
	}
}
