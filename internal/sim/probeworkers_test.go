package sim

import (
	"testing"
)

// TestProbeWorkersOneMatchesSeedGolden pins the acceptance criterion
// of the speculative probe pipeline: ProbeWorkers ≤ 1 must take the
// untouched sequential Algorithm 1 loop and therefore reproduce the
// seed engine's golden metrics byte for byte, on both topologies.
func TestProbeWorkersOneMatchesSeedGolden(t *testing.T) {
	for kind, want := range goldenMetrics {
		for _, probeWorkers := range []int{0, 1} {
			got := stripDelays(goldenRunProbe(t, kind, Options{}, probeWorkers))
			if got != want {
				t.Errorf("%s probeworkers=%d diverged from seed golden:\n got  %+v\n want %+v",
					kind, probeWorkers, got, want)
			}
		}
	}
}

// TestProbeWorkersStaticReplayDeterministic pins the other half of the
// contract: a fixed seed and a fixed ProbeWorkers > 1 replay
// identically — the probe pool's goroutine scheduling must never leak
// into metrics. It also checks the pipeline keeps the workload intact:
// same payment count and classification as the sequential engine, and
// it still delivers.
func TestProbeWorkersStaticReplayDeterministic(t *testing.T) {
	first := stripDelays(goldenRunProbe(t, KindRipple, Options{}, 4))
	second := stripDelays(goldenRunProbe(t, KindRipple, Options{}, 4))
	if first != second {
		t.Errorf("probeworkers=4 replay diverged:\n first  %+v\n second %+v", first, second)
	}
	want := goldenMetrics[KindRipple]
	if first.Payments != want.Payments ||
		first.MicePayments != want.MicePayments ||
		first.ElephantPayments != want.ElephantPayments {
		t.Errorf("pipeline changed the workload: %+v vs golden %+v", first, want)
	}
	if first.ElephantSuccesses == 0 {
		t.Error("pipelined replay delivered no elephants")
	}
	// (Mice metrics are NOT asserted against the golden: mice never
	// touch the pipeline, but elephants with speculative plans commit
	// different balance movements, and later mice legitimately route
	// over that different network state.)
}

// TestProbeWorkersDynamicReplayIdentical extends the replay guarantee
// to the discrete-event engine: same seed + same ProbeWorkers ⇒
// identical event-log fingerprint and metrics, with hold spans and
// churn in play.
func TestProbeWorkersDynamicReplayIdentical(t *testing.T) {
	run := func() DynamicResult {
		sc, err := NamedDynamicScenario("steady", KindRipple, 80)
		if err != nil {
			t.Fatal(err)
		}
		sc.Duration = 10
		sc.Rate = 12
		sc.Service = 0.2
		sc.ChurnRate = 0.5
		sc.Schemes = []string{SchemeFlash}
		sc.ProbeWorkers = 4
		sc.Seed = 11
		results, err := RunDynamicScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		return results[0].Result
	}
	a, b := run(), run()
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("fingerprints diverged: %016x vs %016x", a.Fingerprint, b.Fingerprint)
	}
	if stripDelays(a.Aggregate) != stripDelays(b.Aggregate) {
		t.Errorf("aggregate metrics diverged:\n first  %+v\n second %+v", a.Aggregate, b.Aggregate)
	}
	if len(a.Windows) != len(b.Windows) {
		t.Fatalf("window counts diverged: %d vs %d", len(a.Windows), len(b.Windows))
	}
	for i := range a.Windows {
		if stripDelays(a.Windows[i].Metrics) != stripDelays(b.Windows[i].Metrics) {
			t.Errorf("window %d diverged", i)
		}
	}
	if a.Aggregate.Payments == 0 {
		t.Error("dynamic probeworkers run processed no payments")
	}
}
