package sim

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// invalidSource is a PaymentSource whose self-check fails — the shape
// of a stream built over a degenerate arrival process.
type invalidSource struct{ trace.PaymentSource }

func (invalidSource) Next() (trace.Payment, float64, bool) { return trace.Payment{}, 0, false }
func (invalidSource) Validate() error {
	return trace.Poisson{}.Validate() // the zero-rate error, verbatim
}

// TestRunDynamicValidatesSource pins the non-positive-rate fix at the
// engine boundary: calling RunDynamic directly — bypassing
// RunDynamicScenario's validation — with a source that reports a
// degenerate arrival process returns a clear error instead of
// scheduling +Inf/NaN virtual times onto the event heap.
func TestRunDynamicValidatesSource(t *testing.T) {
	net, err := BuildNetwork(KindRipple, 40, 10, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(SchemeShortestPath, 0, 0, 0, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunDynamic(net, r, invalidSource{}, 10, nil, 0, DynamicOptions{Seed: 1})
	if err == nil {
		t.Fatal("RunDynamic accepted a source with a zero-rate arrival process")
	}
	if !strings.Contains(err.Error(), "payment source") || !strings.Contains(err.Error(), "positive finite") {
		t.Errorf("error %q does not identify the degenerate rate", err)
	}

	// The barbell fixture's stream guards itself the same way.
	sc, err := NamedDynamicScenario("contention", KindTestbed, 20)
	if err != nil {
		t.Fatal(err)
	}
	sc.Duration = 2
	sc.Rate = -3 // survives RunDynamicScenario's own check? no — it must reject too
	if _, err := RunDynamicScenario(sc); err == nil {
		t.Error("RunDynamicScenario accepted a negative arrival rate")
	}
}
