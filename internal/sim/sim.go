// Package sim replays payment workloads against a payment channel
// network under a chosen routing scheme and collects the paper's
// evaluation metrics: success ratio, success volume, probing messages,
// and fee-to-volume ratio (§4.1 "Metrics"), plus processing delay for
// the testbed-style comparisons.
//
// Payments arrive at senders sequentially by default, exactly as in the
// paper's simulation setup. Options.Workers switches to a concurrent
// replay: N workers drain the payment stream against the shared
// network, the contention model of a live offchain system where many
// senders pay at once. Workers ≤ 1 reproduces the sequential metrics
// bit-for-bit; workers > 1 keeps every per-payment random choice
// deterministic (seeded from the payment ID, not the worker) but lets
// payment interleaving — and therefore balance evolution — vary, as it
// does in reality.
package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Metrics aggregates one simulation run. Mice/elephant sub-metrics are
// classified against the threshold passed to Run.
type Metrics struct {
	Payments      int
	Successes     int
	SuccessVolume float64
	AttemptVolume float64

	FeesPaid       float64
	ProbeMessages  int64
	CommitMessages int64

	MicePayments       int
	MiceSuccesses      int
	MiceSuccessVolume  float64
	MiceProbeMessages  int64
	ElephantPayments   int
	ElephantSuccesses  int
	ElephantSuccessVol float64
	ElephantProbeMsgs  int64

	TotalDelay time.Duration
	MiceDelay  time.Duration
}

// Merge folds another shard's counters into m. Every field is an
// order-independent sum, which is what lets the concurrent replay (and
// every other harness sharding metrics per worker — the testbed, the
// dynamic engine's time-series windows) aggregate shards without locks
// on the hot path.
func (m *Metrics) Merge(o Metrics) {
	m.Payments += o.Payments
	m.Successes += o.Successes
	m.SuccessVolume += o.SuccessVolume
	m.AttemptVolume += o.AttemptVolume
	m.FeesPaid += o.FeesPaid
	m.ProbeMessages += o.ProbeMessages
	m.CommitMessages += o.CommitMessages
	m.MicePayments += o.MicePayments
	m.MiceSuccesses += o.MiceSuccesses
	m.MiceSuccessVolume += o.MiceSuccessVolume
	m.MiceProbeMessages += o.MiceProbeMessages
	m.ElephantPayments += o.ElephantPayments
	m.ElephantSuccesses += o.ElephantSuccesses
	m.ElephantSuccessVol += o.ElephantSuccessVol
	m.ElephantProbeMsgs += o.ElephantProbeMsgs
	m.TotalDelay += o.TotalDelay
	m.MiceDelay += o.MiceDelay
}

// SuccessRatio is the fraction of payments fully delivered.
func (m Metrics) SuccessRatio() float64 {
	if m.Payments == 0 {
		return 0
	}
	return float64(m.Successes) / float64(m.Payments)
}

// MiceSuccessRatio is the success ratio over mice payments only.
func (m Metrics) MiceSuccessRatio() float64 {
	if m.MicePayments == 0 {
		return 0
	}
	return float64(m.MiceSuccesses) / float64(m.MicePayments)
}

// ElephantSuccessRatio is the success ratio over elephant payments
// only.
func (m Metrics) ElephantSuccessRatio() float64 {
	if m.ElephantPayments == 0 {
		return 0
	}
	return float64(m.ElephantSuccesses) / float64(m.ElephantPayments)
}

// FeeRatio is total fees over delivered volume (the paper's Figure 9
// metric, "unit transaction fees in percentage ... obtained over all
// payments").
func (m Metrics) FeeRatio() float64 {
	if m.SuccessVolume == 0 {
		return 0
	}
	return m.FeesPaid / m.SuccessVolume
}

// MeanDelay is the average per-payment processing time.
func (m Metrics) MeanDelay() time.Duration {
	if m.Payments == 0 {
		return 0
	}
	return m.TotalDelay / time.Duration(m.Payments)
}

// MeanMiceDelay is the average processing time of mice payments.
func (m Metrics) MeanMiceDelay() time.Duration {
	if m.MicePayments == 0 {
		return 0
	}
	return m.MiceDelay / time.Duration(m.MicePayments)
}

// String renders the headline numbers.
func (m Metrics) String() string {
	return fmt.Sprintf("success %d/%d (%.1f%%), volume %.4g, probes %d, feeRatio %.3f%%",
		m.Successes, m.Payments, 100*m.SuccessRatio(), m.SuccessVolume,
		m.ProbeMessages, 100*m.FeeRatio())
}

// Options tunes how a workload is replayed.
type Options struct {
	// Workers is the number of goroutines draining the payment stream.
	// 0 or 1 replays sequentially in payment order — bit-for-bit the
	// historical behavior. The zero value deliberately means
	// *sequential*, not GOMAXPROCS, so Run and zero-valued Options keep
	// their historical semantics; CLIs that want "0 = all cores"
	// resolve that before building Options. Larger values model
	// concurrent senders: the per-payment metrics become
	// interleaving-dependent, but every random routing choice stays
	// deterministic per payment (see Seed).
	Workers int

	// Seed derives each payment's private RNG in concurrent mode
	// (mixed with the payment ID), so a payment's random choices — e.g.
	// Flash's mice path order — do not depend on which worker runs it.
	// Unused when Workers ≤ 1.
	Seed int64

	// Prewarm parallel-builds Flash's mice routing table for every
	// distinct mice (sender, receiver) pair of the workload before the
	// replay starts, using Workers goroutines. Only effective when the
	// router is *core.Flash; other routers ignore it.
	Prewarm bool

	// Retries re-routes a payment that failed to deliver up to this
	// many additional times — the recovery policy for a payment that
	// aborted because a concurrent hold lost a race. Between attempts
	// the concurrent replay sleeps a seeded, jittered exponential
	// backoff (so the competing payments it raced can settle); the
	// sequential replay retries immediately, where a retry can still
	// win by drawing a different mice path order. 0 — the default —
	// preserves the historical single-attempt semantics exactly.
	Retries int

	// FlowSink, when non-nil, receives one telemetry.FlowRecord per
	// completed payment (after its final attempt). Telemetry is strictly
	// observer-only: a nil sink costs a single branch, and any sink
	// leaves the replay's metrics and random sequences untouched.
	FlowSink telemetry.Sink
}

// Run replays payments sequentially over net using r. miceThreshold
// classifies payments for the per-class metrics (payments with amount ≤
// miceThreshold are mice); it does not influence routing — routers carry
// their own thresholds.
func Run(net *pcn.Network, r route.Router, payments []trace.Payment, miceThreshold float64) (Metrics, error) {
	return RunOpts(net, r, payments, miceThreshold, Options{})
}

// RunOpts is Run with replay options: Options{} or Workers ≤ 1 is the
// sequential replay, larger Workers dispatch payments to a worker pool
// over the shared network.
func RunOpts(net *pcn.Network, r route.Router, payments []trace.Payment, miceThreshold float64, opts Options) (Metrics, error) {
	if opts.Prewarm {
		prewarmRouter(net, r, payments, opts.Workers)
	}
	if opts.Workers <= 1 {
		return runSequential(net, r, payments, miceThreshold, opts)
	}
	return runConcurrent(net, r, payments, miceThreshold, opts)
}

// Record folds one completed payment into m: classification against
// miceThreshold, delay and message accounting, and — when delivered —
// the success bookkeeping. It is the single metrics-recording path
// shared by the sequential replay, the concurrent workers' shards, the
// dynamic engine's time-series windows, and the TCP testbed harness.
// probeMsgs/commitMsgs/elapsed cover every routing attempt the payment
// made (retries included).
func (m *Metrics) Record(amount, miceThreshold float64, elapsed time.Duration, probeMsgs, commitMsgs int64, fees float64, delivered bool) {
	isMouse := amount <= miceThreshold
	m.Payments++
	m.AttemptVolume += amount
	m.TotalDelay += elapsed
	m.ProbeMessages += probeMsgs
	m.CommitMessages += commitMsgs
	if isMouse {
		m.MicePayments++
		m.MiceDelay += elapsed
		m.MiceProbeMessages += probeMsgs
	} else {
		m.ElephantPayments++
		m.ElephantProbeMsgs += probeMsgs
	}
	if delivered {
		m.Successes++
		m.SuccessVolume += amount
		m.FeesPaid += fees
		if isMouse {
			m.MiceSuccesses++
			m.MiceSuccessVolume += amount
		} else {
			m.ElephantSuccesses++
			m.ElephantSuccessVol += amount
		}
	}
}

// routeOutcome is the accounting of one routing attempt (or, summed,
// of a payment's whole attempt sequence).
type routeOutcome struct {
	elapsed    time.Duration
	probeMsgs  int64
	commitMsgs int64
	probeOps   int
	paths      int
	fees       float64
	delivered  bool

	// Virtual latency charged by the attempt, integer nanoseconds
	// (zero unless the network carries per-channel RTTs): probe legs
	// and commit-phase legs, separately, mirroring the message split.
	probeLatNanos  int64
	commitLatNanos int64
}

// add accumulates a later attempt into o (fees/delivered are taken
// from the successful attempt; failed attempts pay no fees; paths
// reflect the latest attempt — the one whose holds stood when the
// payment settled).
func (o *routeOutcome) add(a routeOutcome) {
	o.elapsed += a.elapsed
	o.probeMsgs += a.probeMsgs
	o.commitMsgs += a.commitMsgs
	o.probeOps += a.probeOps
	o.paths = a.paths
	o.fees += a.fees
	o.delivered = o.delivered || a.delivered
	o.probeLatNanos += a.probeLatNanos
	o.commitLatNanos += a.commitLatNanos
}

// routeAttempt runs one routing attempt for p: a fresh session, one
// Route call, defensive finishing. When seeded, rngSeed becomes the
// session's per-payment random source. The returned error is an
// infrastructure failure; routing failures are reported through
// routeOutcome.delivered.
func routeAttempt(net *pcn.Network, r route.Router, p trace.Payment, rngSeed int64, seeded bool) (routeOutcome, error) {
	_, out, err := attemptPayment(net, r, p, rngSeed, seeded, false)
	return out, err
}

// attemptPayment is the single attempt protocol behind routeAttempt
// and holdAttempt: Begin, optional per-payment RNG, optional
// DeferCommit, one Route call, defensive finishing, outcome
// accounting. A session that suspended on the yield seam is returned
// for the caller to Resume; otherwise the returned session is nil and
// the outcome is final.
func attemptPayment(net *pcn.Network, r route.Router, p trace.Payment, rngSeed int64, seeded, deferCommit bool) (*pcn.Tx, routeOutcome, error) {
	tx, err := net.Begin(p.Sender, p.Receiver, p.Amount)
	if err != nil {
		return nil, routeOutcome{}, fmt.Errorf("sim: payment %d: %w", p.ID, err)
	}
	if seeded {
		tx.SetRNGSeed(rngSeed)
	}
	if deferCommit {
		tx.DeferCommit()
	}
	//flashvet:allow determinism/wallclock observer-only wall-elapsed metric; never feeds routing, virtual time or event order
	start := time.Now()
	rerr := r.Route(tx)
	//flashvet:allow determinism/wallclock observer-only wall-elapsed metric; never feeds routing, virtual time or event order
	elapsed := time.Since(start)
	if !tx.Finished() {
		// Defensive: a router must finish its session; treat an
		// unfinished one as failed and release its holds.
		if aerr := tx.Abort(); aerr != nil {
			return nil, routeOutcome{}, fmt.Errorf("sim: payment %d left unfinished and unabortable: %w", p.ID, aerr)
		}
		rerr = fmt.Errorf("sim: router %s left session unfinished", r.Name())
	}
	out := routeOutcome{
		elapsed:        elapsed,
		probeMsgs:      int64(tx.ProbeMessages()),
		commitMsgs:     int64(tx.CommitMessages()),
		probeOps:       tx.ProbeOps(),
		paths:          tx.PathsUsed(),
		delivered:      rerr == nil,
		probeLatNanos:  tx.ProbeLatencyNanos(),
		commitLatNanos: tx.CommitLatencyNanos(),
	}
	if tx.Suspended() {
		// Delivery, CONFIRM/REVERSE messages and fees settle at Resume.
		return tx, out, nil
	}
	if out.delivered {
		out.fees = tx.FeesPaid()
	}
	return nil, out, nil
}

// holdAttempt is routeAttempt with the commit deferred across the
// hold-span seam (route.Yielder): the router runs to its commit/abort
// decision as usual, but a committed payment's funds stay locked — the
// suspended session is returned to the caller, who settles it later
// via Resume (one virtual service time later, in the dynamic engine).
// Aborted payments resolve immediately and return a nil session, like
// routeAttempt. For a suspended session the outcome's delivered flag
// and fee/commit-message accounting are provisional: Resume decides
// delivery and adds the CONFIRM (or REVERSE) costs.
func holdAttempt(net *pcn.Network, r route.Router, p trace.Payment, rngSeed int64, seeded bool) (*pcn.Tx, routeOutcome, error) {
	return attemptPayment(net, r, p, rngSeed, seeded, true)
}

// retryBackoff is the jittered exponential backoff before retry
// attempt (1-based): 50µs · 2^(attempt-1), scaled by a random factor
// in [0.5, 1.5) so racing retriers don't re-collide in lockstep.
func retryBackoff(attempt int, rng *rand.Rand) time.Duration {
	base := 50 * time.Microsecond << uint(attempt-1)
	if base > 5*time.Millisecond {
		base = 5 * time.Millisecond
	}
	return time.Duration(float64(base) * (0.5 + rng.Float64()))
}

// attemptSeed derives the per-attempt session seed: attempt 0 uses the
// payment seed unchanged (preserving single-attempt behavior exactly),
// retries re-mix so a retried mouse draws a fresh path order.
func attemptSeed(rngSeed int64, attempt int) int64 {
	if attempt == 0 {
		return rngSeed
	}
	return paymentSeed(rngSeed, int64(attempt))
}

// replayOne routes a single payment — retrying failed deliveries up to
// opts.Retries times — and accumulates its metrics into m. Degenerate
// payments (self-pay, non-positive amount) are skipped, contributing
// nothing. backoffSleep selects the concurrent replay's real jittered
// sleep between attempts; the sequential replay retries immediately.
// A non-nil sink receives the payment's flow record after its final
// attempt, stamped with the trace timestamp as virtual time.
func replayOne(net *pcn.Network, r route.Router, p trace.Payment, miceThreshold float64, m *Metrics, rngSeed int64, seeded bool, retries int, backoffSleep bool, sink telemetry.Sink) error {
	if p.Sender == p.Receiver || p.Amount <= 0 {
		return nil
	}
	var (
		total      routeOutcome
		backoffRNG *rand.Rand
		attempts   int
	)
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 && backoffSleep {
			if backoffRNG == nil {
				backoffRNG = rand.New(rand.NewSource(paymentSeed(rngSeed, int64(p.ID)^0x5EED)))
			}
			time.Sleep(retryBackoff(attempt, backoffRNG))
		}
		out, err := routeAttempt(net, r, p, attemptSeed(rngSeed, attempt), seeded)
		if err != nil {
			return err
		}
		total.add(out)
		attempts = attempt + 1
		if out.delivered {
			break
		}
	}
	m.Record(p.Amount, miceThreshold, total.elapsed, total.probeMsgs, total.commitMsgs, total.fees, total.delivered)
	if sink != nil {
		vt := p.Time * trace.SecondsPerDay
		outcome := telemetry.OutcomeFailed
		if total.delivered {
			outcome = telemetry.OutcomeDelivered
		}
		emitFlow(sink, r.Name(), p, miceThreshold, total, attempts, vt, vt, outcome)
	}
	return nil
}

// runSequential replays payments one at a time in order, the paper's
// simulation setup. No per-payment RNG is attached, so routers consume
// their own seeded generators in the historical sequence.
func runSequential(net *pcn.Network, r route.Router, payments []trace.Payment, miceThreshold float64, opts Options) (Metrics, error) {
	var m Metrics
	for _, p := range payments {
		if err := replayOne(net, r, p, miceThreshold, &m, 0, false, opts.Retries, false, opts.FlowSink); err != nil {
			return m, err
		}
	}
	return m, nil
}

// paymentSeed mixes the base seed with a payment ID (splitmix64-style
// finalizer), giving each payment an independent, reproducible RNG
// stream regardless of which worker replays it.
func paymentSeed(base int64, id int64) int64 {
	z := uint64(base) + (uint64(id)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// runConcurrent drains the payment stream with opts.Workers goroutines
// sharing the network and router. Each worker accumulates metrics into
// its own shard (merged afterwards), so the hot path takes no
// simulation-level locks — all synchronization lives in the per-channel
// network locks and the router's sharded tables.
func runConcurrent(net *pcn.Network, r route.Router, payments []trace.Payment, miceThreshold float64, opts Options) (Metrics, error) {
	var (
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
	)
	shards := make([]Metrics, parallel.Clamp(len(payments), opts.Workers))
	parallel.ForEach(len(payments), opts.Workers, func(worker, i int) {
		if failed.Load() {
			return
		}
		p := payments[i]
		seed := paymentSeed(opts.Seed, int64(p.ID))
		if err := replayOne(net, r, p, miceThreshold, &shards[worker], seed, true, opts.Retries, true, opts.FlowSink); err != nil {
			errOnce.Do(func() { firstErr = err })
			failed.Store(true)
		}
	})
	var m Metrics
	for i := range shards {
		m.Merge(shards[i])
	}
	return m, firstErr
}

// prewarmRouter bulk-builds Flash's mice routing tables for the
// workload's distinct mice pairs with a bounded worker pool. A no-op
// for other router types. Pairs are classified against the router's
// own elephant threshold — the one routeMice actually consults — not
// the sim-level metrics threshold, which may legitimately differ.
func prewarmRouter(net *pcn.Network, r route.Router, payments []trace.Payment, workers int) {
	fl, ok := r.(*core.Flash)
	if !ok {
		return
	}
	threshold := fl.Config().Threshold
	seen := make(map[[2]topo.NodeID]struct{}, len(payments))
	var pairs []core.Pair
	for _, p := range payments {
		if p.Sender == p.Receiver || p.Amount <= 0 || p.Amount > threshold {
			continue
		}
		key := [2]topo.NodeID{p.Sender, p.Receiver}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		pairs = append(pairs, core.Pair{Sender: p.Sender, Receiver: p.Receiver})
	}
	fl.Prewarm(net.Graph(), pairs, workers)
}
