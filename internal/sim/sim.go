// Package sim replays payment workloads against a payment channel
// network under a chosen routing scheme and collects the paper's
// evaluation metrics: success ratio, success volume, probing messages,
// and fee-to-volume ratio (§4.1 "Metrics"), plus processing delay for
// the testbed-style comparisons.
//
// Payments arrive at senders sequentially, exactly as in the paper's
// simulation setup.
package sim

import (
	"fmt"
	"time"

	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/trace"
)

// Metrics aggregates one simulation run. Mice/elephant sub-metrics are
// classified against the threshold passed to Run.
type Metrics struct {
	Payments      int
	Successes     int
	SuccessVolume float64
	AttemptVolume float64

	FeesPaid       float64
	ProbeMessages  int64
	CommitMessages int64

	MicePayments       int
	MiceSuccesses      int
	MiceSuccessVolume  float64
	MiceProbeMessages  int64
	ElephantPayments   int
	ElephantSuccesses  int
	ElephantSuccessVol float64
	ElephantProbeMsgs  int64

	TotalDelay time.Duration
	MiceDelay  time.Duration
}

// SuccessRatio is the fraction of payments fully delivered.
func (m Metrics) SuccessRatio() float64 {
	if m.Payments == 0 {
		return 0
	}
	return float64(m.Successes) / float64(m.Payments)
}

// MiceSuccessRatio is the success ratio over mice payments only.
func (m Metrics) MiceSuccessRatio() float64 {
	if m.MicePayments == 0 {
		return 0
	}
	return float64(m.MiceSuccesses) / float64(m.MicePayments)
}

// FeeRatio is total fees over delivered volume (the paper's Figure 9
// metric, "unit transaction fees in percentage ... obtained over all
// payments").
func (m Metrics) FeeRatio() float64 {
	if m.SuccessVolume == 0 {
		return 0
	}
	return m.FeesPaid / m.SuccessVolume
}

// MeanDelay is the average per-payment processing time.
func (m Metrics) MeanDelay() time.Duration {
	if m.Payments == 0 {
		return 0
	}
	return m.TotalDelay / time.Duration(m.Payments)
}

// MeanMiceDelay is the average processing time of mice payments.
func (m Metrics) MeanMiceDelay() time.Duration {
	if m.MicePayments == 0 {
		return 0
	}
	return m.MiceDelay / time.Duration(m.MicePayments)
}

// String renders the headline numbers.
func (m Metrics) String() string {
	return fmt.Sprintf("success %d/%d (%.1f%%), volume %.4g, probes %d, feeRatio %.3f%%",
		m.Successes, m.Payments, 100*m.SuccessRatio(), m.SuccessVolume,
		m.ProbeMessages, 100*m.FeeRatio())
}

// Run replays payments sequentially over net using r. miceThreshold
// classifies payments for the per-class metrics (payments with amount ≤
// miceThreshold are mice); it does not influence routing — routers carry
// their own thresholds.
func Run(net *pcn.Network, r route.Router, payments []trace.Payment, miceThreshold float64) (Metrics, error) {
	var m Metrics
	for _, p := range payments {
		if p.Sender == p.Receiver || p.Amount <= 0 {
			continue
		}
		isMouse := p.Amount <= miceThreshold
		m.Payments++
		m.AttemptVolume += p.Amount
		if isMouse {
			m.MicePayments++
		} else {
			m.ElephantPayments++
		}

		tx, err := net.Begin(p.Sender, p.Receiver, p.Amount)
		if err != nil {
			return m, fmt.Errorf("sim: payment %d: %w", p.ID, err)
		}
		start := time.Now()
		rerr := r.Route(tx)
		elapsed := time.Since(start)
		if !tx.Finished() {
			// Defensive: a router must finish its session; treat an
			// unfinished one as failed and release its holds.
			if aerr := tx.Abort(); aerr != nil {
				return m, fmt.Errorf("sim: payment %d left unfinished and unabortable: %w", p.ID, aerr)
			}
			rerr = fmt.Errorf("sim: router %s left session unfinished", r.Name())
		}

		m.TotalDelay += elapsed
		m.ProbeMessages += int64(tx.ProbeMessages())
		m.CommitMessages += int64(tx.CommitMessages())
		if isMouse {
			m.MiceDelay += elapsed
			m.MiceProbeMessages += int64(tx.ProbeMessages())
		} else {
			m.ElephantProbeMsgs += int64(tx.ProbeMessages())
		}
		if rerr == nil {
			m.Successes++
			m.SuccessVolume += p.Amount
			m.FeesPaid += tx.FeesPaid()
			if isMouse {
				m.MiceSuccesses++
				m.MiceSuccessVolume += p.Amount
			} else {
				m.ElephantSuccesses++
				m.ElephantSuccessVol += p.Amount
			}
		}
	}
	return m, nil
}
