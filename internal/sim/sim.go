// Package sim replays payment workloads against a payment channel
// network under a chosen routing scheme and collects the paper's
// evaluation metrics: success ratio, success volume, probing messages,
// and fee-to-volume ratio (§4.1 "Metrics"), plus processing delay for
// the testbed-style comparisons.
//
// Payments arrive at senders sequentially by default, exactly as in the
// paper's simulation setup. Options.Workers switches to a concurrent
// replay: N workers drain the payment stream against the shared
// network, the contention model of a live offchain system where many
// senders pay at once. Workers ≤ 1 reproduces the sequential metrics
// bit-for-bit; workers > 1 keeps every per-payment random choice
// deterministic (seeded from the payment ID, not the worker) but lets
// payment interleaving — and therefore balance evolution — vary, as it
// does in reality.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Metrics aggregates one simulation run. Mice/elephant sub-metrics are
// classified against the threshold passed to Run.
type Metrics struct {
	Payments      int
	Successes     int
	SuccessVolume float64
	AttemptVolume float64

	FeesPaid       float64
	ProbeMessages  int64
	CommitMessages int64

	MicePayments       int
	MiceSuccesses      int
	MiceSuccessVolume  float64
	MiceProbeMessages  int64
	ElephantPayments   int
	ElephantSuccesses  int
	ElephantSuccessVol float64
	ElephantProbeMsgs  int64

	TotalDelay time.Duration
	MiceDelay  time.Duration
}

// merge folds another shard's counters into m. Every field is an
// order-independent sum, which is what lets the concurrent replay
// aggregate per-worker shards without locks on the hot path.
func (m *Metrics) merge(o Metrics) {
	m.Payments += o.Payments
	m.Successes += o.Successes
	m.SuccessVolume += o.SuccessVolume
	m.AttemptVolume += o.AttemptVolume
	m.FeesPaid += o.FeesPaid
	m.ProbeMessages += o.ProbeMessages
	m.CommitMessages += o.CommitMessages
	m.MicePayments += o.MicePayments
	m.MiceSuccesses += o.MiceSuccesses
	m.MiceSuccessVolume += o.MiceSuccessVolume
	m.MiceProbeMessages += o.MiceProbeMessages
	m.ElephantPayments += o.ElephantPayments
	m.ElephantSuccesses += o.ElephantSuccesses
	m.ElephantSuccessVol += o.ElephantSuccessVol
	m.ElephantProbeMsgs += o.ElephantProbeMsgs
	m.TotalDelay += o.TotalDelay
	m.MiceDelay += o.MiceDelay
}

// SuccessRatio is the fraction of payments fully delivered.
func (m Metrics) SuccessRatio() float64 {
	if m.Payments == 0 {
		return 0
	}
	return float64(m.Successes) / float64(m.Payments)
}

// MiceSuccessRatio is the success ratio over mice payments only.
func (m Metrics) MiceSuccessRatio() float64 {
	if m.MicePayments == 0 {
		return 0
	}
	return float64(m.MiceSuccesses) / float64(m.MicePayments)
}

// FeeRatio is total fees over delivered volume (the paper's Figure 9
// metric, "unit transaction fees in percentage ... obtained over all
// payments").
func (m Metrics) FeeRatio() float64 {
	if m.SuccessVolume == 0 {
		return 0
	}
	return m.FeesPaid / m.SuccessVolume
}

// MeanDelay is the average per-payment processing time.
func (m Metrics) MeanDelay() time.Duration {
	if m.Payments == 0 {
		return 0
	}
	return m.TotalDelay / time.Duration(m.Payments)
}

// MeanMiceDelay is the average processing time of mice payments.
func (m Metrics) MeanMiceDelay() time.Duration {
	if m.MicePayments == 0 {
		return 0
	}
	return m.MiceDelay / time.Duration(m.MicePayments)
}

// String renders the headline numbers.
func (m Metrics) String() string {
	return fmt.Sprintf("success %d/%d (%.1f%%), volume %.4g, probes %d, feeRatio %.3f%%",
		m.Successes, m.Payments, 100*m.SuccessRatio(), m.SuccessVolume,
		m.ProbeMessages, 100*m.FeeRatio())
}

// Options tunes how a workload is replayed.
type Options struct {
	// Workers is the number of goroutines draining the payment stream.
	// 0 or 1 replays sequentially in payment order — bit-for-bit the
	// historical behavior. The zero value deliberately means
	// *sequential*, not GOMAXPROCS, so Run and zero-valued Options keep
	// their historical semantics; CLIs that want "0 = all cores"
	// resolve that before building Options. Larger values model
	// concurrent senders: the per-payment metrics become
	// interleaving-dependent, but every random routing choice stays
	// deterministic per payment (see Seed).
	Workers int

	// Seed derives each payment's private RNG in concurrent mode
	// (mixed with the payment ID), so a payment's random choices — e.g.
	// Flash's mice path order — do not depend on which worker runs it.
	// Unused when Workers ≤ 1.
	Seed int64

	// Prewarm parallel-builds Flash's mice routing table for every
	// distinct mice (sender, receiver) pair of the workload before the
	// replay starts, using Workers goroutines. Only effective when the
	// router is *core.Flash; other routers ignore it.
	Prewarm bool
}

// Run replays payments sequentially over net using r. miceThreshold
// classifies payments for the per-class metrics (payments with amount ≤
// miceThreshold are mice); it does not influence routing — routers carry
// their own thresholds.
func Run(net *pcn.Network, r route.Router, payments []trace.Payment, miceThreshold float64) (Metrics, error) {
	return RunOpts(net, r, payments, miceThreshold, Options{})
}

// RunOpts is Run with replay options: Options{} or Workers ≤ 1 is the
// sequential replay, larger Workers dispatch payments to a worker pool
// over the shared network.
func RunOpts(net *pcn.Network, r route.Router, payments []trace.Payment, miceThreshold float64, opts Options) (Metrics, error) {
	if opts.Prewarm {
		prewarmRouter(net, r, payments, opts.Workers)
	}
	if opts.Workers <= 1 {
		return runSequential(net, r, payments, miceThreshold)
	}
	return runConcurrent(net, r, payments, miceThreshold, opts)
}

// replayOne routes a single payment and accumulates its metrics into m.
// When seeded, rngSeed is attached to the session as its per-payment
// random source (built lazily — only routers that draw randomness pay
// for it). Degenerate payments (self-pay, non-positive amount) are
// skipped, contributing nothing.
func replayOne(net *pcn.Network, r route.Router, p trace.Payment, miceThreshold float64, m *Metrics, rngSeed int64, seeded bool) error {
	if p.Sender == p.Receiver || p.Amount <= 0 {
		return nil
	}
	isMouse := p.Amount <= miceThreshold
	m.Payments++
	m.AttemptVolume += p.Amount
	if isMouse {
		m.MicePayments++
	} else {
		m.ElephantPayments++
	}

	tx, err := net.Begin(p.Sender, p.Receiver, p.Amount)
	if err != nil {
		return fmt.Errorf("sim: payment %d: %w", p.ID, err)
	}
	if seeded {
		tx.SetRNGSeed(rngSeed)
	}
	start := time.Now()
	rerr := r.Route(tx)
	elapsed := time.Since(start)
	if !tx.Finished() {
		// Defensive: a router must finish its session; treat an
		// unfinished one as failed and release its holds.
		if aerr := tx.Abort(); aerr != nil {
			return fmt.Errorf("sim: payment %d left unfinished and unabortable: %w", p.ID, aerr)
		}
		rerr = fmt.Errorf("sim: router %s left session unfinished", r.Name())
	}

	m.TotalDelay += elapsed
	m.ProbeMessages += int64(tx.ProbeMessages())
	m.CommitMessages += int64(tx.CommitMessages())
	if isMouse {
		m.MiceDelay += elapsed
		m.MiceProbeMessages += int64(tx.ProbeMessages())
	} else {
		m.ElephantProbeMsgs += int64(tx.ProbeMessages())
	}
	if rerr == nil {
		m.Successes++
		m.SuccessVolume += p.Amount
		m.FeesPaid += tx.FeesPaid()
		if isMouse {
			m.MiceSuccesses++
			m.MiceSuccessVolume += p.Amount
		} else {
			m.ElephantSuccesses++
			m.ElephantSuccessVol += p.Amount
		}
	}
	return nil
}

// runSequential replays payments one at a time in order, the paper's
// simulation setup. No per-payment RNG is attached, so routers consume
// their own seeded generators in the historical sequence.
func runSequential(net *pcn.Network, r route.Router, payments []trace.Payment, miceThreshold float64) (Metrics, error) {
	var m Metrics
	for _, p := range payments {
		if err := replayOne(net, r, p, miceThreshold, &m, 0, false); err != nil {
			return m, err
		}
	}
	return m, nil
}

// paymentSeed mixes the base seed with a payment ID (splitmix64-style
// finalizer), giving each payment an independent, reproducible RNG
// stream regardless of which worker replays it.
func paymentSeed(base int64, id int64) int64 {
	z := uint64(base) + (uint64(id)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// runConcurrent drains the payment stream with opts.Workers goroutines
// sharing the network and router. Each worker accumulates metrics into
// its own shard (merged afterwards), so the hot path takes no
// simulation-level locks — all synchronization lives in the per-channel
// network locks and the router's sharded tables.
func runConcurrent(net *pcn.Network, r route.Router, payments []trace.Payment, miceThreshold float64, opts Options) (Metrics, error) {
	var (
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
	)
	shards := make([]Metrics, parallel.Clamp(len(payments), opts.Workers))
	parallel.ForEach(len(payments), opts.Workers, func(worker, i int) {
		if failed.Load() {
			return
		}
		p := payments[i]
		seed := paymentSeed(opts.Seed, int64(p.ID))
		if err := replayOne(net, r, p, miceThreshold, &shards[worker], seed, true); err != nil {
			errOnce.Do(func() { firstErr = err })
			failed.Store(true)
		}
	})
	var m Metrics
	for i := range shards {
		m.merge(shards[i])
	}
	return m, firstErr
}

// prewarmRouter bulk-builds Flash's mice routing tables for the
// workload's distinct mice pairs with a bounded worker pool. A no-op
// for other router types. Pairs are classified against the router's
// own elephant threshold — the one routeMice actually consults — not
// the sim-level metrics threshold, which may legitimately differ.
func prewarmRouter(net *pcn.Network, r route.Router, payments []trace.Payment, workers int) {
	fl, ok := r.(*core.Flash)
	if !ok {
		return
	}
	threshold := fl.Config().Threshold
	seen := make(map[[2]topo.NodeID]struct{}, len(payments))
	var pairs []core.Pair
	for _, p := range payments {
		if p.Sender == p.Receiver || p.Amount <= 0 || p.Amount > threshold {
			continue
		}
		key := [2]topo.NodeID{p.Sender, p.Receiver}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		pairs = append(pairs, core.Pair{Sender: p.Sender, Receiver: p.Receiver})
	}
	fl.Prewarm(net.Graph(), pairs, workers)
}
