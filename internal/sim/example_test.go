package sim

import (
	"fmt"

	"repro/internal/trace"
)

// ExampleRunDynamic pushes the barbell contention fixture through the
// discrete-event engine with hold spans: all four payments arrive at
// t=0 wanting 10 across a bridge that holds 15 per direction. The
// first dispatch locks 10 of the bridge for its virtual service time,
// so every later arrival — and each of its retries while the hold is
// outstanding — probes only the 5 that remain and fails: exactly one
// payment crosses. With Workers: 1 the run is a pure function of the
// seed — same seed, same metrics, same fingerprint.
func ExampleRunDynamic() {
	net, payments, err := BuildContention(2, 1000, 15, 10)
	if err != nil {
		panic(err)
	}
	r, err := NewRouter(SchemeShortestPath, 0, 0, 0, false, 1)
	if err != nil {
		panic(err)
	}
	res, err := RunDynamic(net, r, trace.NewReplayStream(payments), 30, nil, 10, DynamicOptions{
		Workers: 1,
		Seed:    1,
		Service: 1, // mean hold span in virtual seconds
		Retries: 4,
	})
	if err != nil {
		panic(err)
	}
	m := res.Aggregate
	fmt.Printf("delivered %d/%d, volume %g, windows %d\n", m.Successes, m.Payments, m.SuccessVolume, len(res.Windows))
	fmt.Printf("fingerprint %016x\n", res.Fingerprint)
	// Output:
	// delivered 1/4, volume 10, windows 1
	// fingerprint 06f271122e0c51d2
}
