package sim

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/event"
	"repro/internal/pcn"
	"repro/internal/topo"
	"repro/internal/trace"
)

// scaledSource is a hand-built PaymentSource with a fixed arrival plan
// that honours demand shifts — the fixture for the look-ahead rescale
// regression: unlike trace.Stream its amounts are exact, so the test
// can assert the precise post-shift value.
type scaledSource struct {
	arrivals []float64 // virtual arrival times
	amount   float64   // base amount of every payment
	scale    float64
	next     int
}

func newScaledSource(amount float64, arrivals ...float64) *scaledSource {
	return &scaledSource{arrivals: arrivals, amount: amount, scale: 1}
}

// Next implements trace.PaymentSource. Amounts are sampled at the
// *current* scale, exactly like trace.Stream: the look-ahead payment
// is drawn before any shift that lands between two arrivals.
func (s *scaledSource) Next() (trace.Payment, float64, bool) {
	if s.next >= len(s.arrivals) {
		return trace.Payment{}, 0, false
	}
	i := s.next
	s.next++
	p := trace.Payment{ID: i, Sender: 0, Receiver: topo.NodeID(1 + i%2), Amount: s.amount * s.scale}
	return p, s.arrivals[i], true
}

// SetAmountScale implements the demand-shift hook.
func (s *scaledSource) SetAmountScale(factor float64) {
	if factor > 0 {
		s.scale = factor
	}
}

// pcnNew wraps a graph in a network with uniform per-direction
// balances.
func pcnNew(t *testing.T, g *topo.Graph, bal float64) *pcn.Network {
	t.Helper()
	net := pcn.New(g)
	for _, e := range g.Channels() {
		if err := net.SetBalance(e.A, e.B, bal, bal); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

// TestDemandShiftRescalesPendingArrival is the look-ahead regression:
// a demand shift landing between two arrivals must rescale the one
// already-sampled pending payment, so the first post-shift payment
// carries a post-shift amount. Before the fix it carried the pre-shift
// amount (the engine samples exactly one arrival ahead).
func TestDemandShiftRescalesPendingArrival(t *testing.T) {
	g := topo.New(3)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(0, 2)
	net := pcnNew(t, g, 1e6)

	// Arrivals at t=1 and t=3; the shift fires at t=2. When payment 0
	// arrives at t=1 the engine pulls payment 1 (the look-ahead) at the
	// old scale; the shift must rescale it before it arrives at t=3.
	src := newScaledSource(10, 1, 3)
	shift := []event.Event{{Time: 2, Kind: event.DemandShift, Amount: 5}}
	res, err := RunDynamic(net, baselineShortestPath(t), src, 10, shift, 1e9, DynamicOptions{Workers: 1, RecordLog: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Payments != 2 {
		t.Fatalf("replayed %d payments, want 2", res.Aggregate.Payments)
	}
	// Payment 0 arrived pre-shift at amount 10; payment 1 must carry
	// 10 · 5 = 50, not the pre-shift 10 it was sampled at.
	if want := 10.0 + 50.0; math.Abs(res.Aggregate.AttemptVolume-want) > 1e-9 {
		t.Errorf("attempt volume %v, want %v (pending arrival not rescaled)", res.Aggregate.AttemptVolume, want)
	}
}

// TestDemandShiftReplayStreamUntouched: sources that do not support
// amount scaling (recorded traces) keep their exact recorded amounts —
// the rescale only applies where the shift itself applies.
func TestDemandShiftReplayStreamUntouched(t *testing.T) {
	g := topo.New(3)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(0, 2)
	net := pcnNew(t, g, 1e6)
	payments := []trace.Payment{
		{ID: 0, Sender: 0, Receiver: 1, Amount: 10, Time: 1 / trace.SecondsPerDay},
		{ID: 1, Sender: 0, Receiver: 2, Amount: 10, Time: 3 / trace.SecondsPerDay},
	}
	shift := []event.Event{{Time: 2, Kind: event.DemandShift, Amount: 5}}
	res, err := RunDynamic(net, baselineShortestPath(t), trace.NewReplayStream(payments), 10, shift, 1e9, DynamicOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := 20.0; math.Abs(res.Aggregate.AttemptVolume-want) > 1e-9 {
		t.Errorf("attempt volume %v, want %v (replayed amounts must not rescale)", res.Aggregate.AttemptVolume, want)
	}
}

// TestWindowsClampToHorizon is the window-overrun regression: service
// times large relative to the horizon schedule completions past it,
// which used to grow res.Windows beyond Horizon with End > Horizon.
// They now drain into the final window, whose End is clamped.
func TestWindowsClampToHorizon(t *testing.T) {
	g := topo.New(3)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(0, 2)
	net := pcnNew(t, g, 1e6)
	// Horizon 5, window 2 (so the last window is a partial [4,5)), mean
	// service 50 — essentially every completion lands past the horizon.
	src := newScaledSource(10, 0.5, 1, 1.5, 2, 4.5)
	res, err := RunDynamic(net, baselineShortestPath(t), src, 5, nil, 1e9,
		DynamicOptions{Workers: 1, Seed: 9, Window: 2, Service: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Payments != 5 {
		t.Fatalf("replayed %d payments, want 5", res.Aggregate.Payments)
	}
	if n := len(res.Windows); n > 3 {
		t.Errorf("%d windows for a 5s horizon at width 2, want ≤ 3", n)
	}
	for _, w := range res.Windows {
		if w.End > res.Horizon {
			t.Errorf("window [%g,%g) overruns horizon %g", w.Start, w.End, res.Horizon)
		}
	}
	last := res.Windows[len(res.Windows)-1]
	if last.End != res.Horizon {
		t.Errorf("final window End = %g, want horizon %g", last.End, res.Horizon)
	}
	// Drain semantics: everything completed at t ≥ horizon is in the
	// final window, and the windows still decompose the aggregate.
	var sum Metrics
	for _, w := range res.Windows {
		sum.Merge(w.Metrics)
	}
	if sum.Payments != res.Aggregate.Payments {
		t.Errorf("windows sum %d payments, aggregate %d", sum.Payments, res.Aggregate.Payments)
	}
	if last.Metrics.Payments == 0 {
		t.Error("no completions drained into the final window")
	}

	// Float edge: horizon/window with representation error (9/0.009 =
	// 1000.0000000000001) must not mint a phantom zero-width bucket at
	// the horizon — the drain target is the genuine last window.
	g2 := topo.New(3)
	g2.MustAddChannel(0, 1)
	g2.MustAddChannel(0, 2)
	net2 := pcnNew(t, g2, 1e6)
	res2, err := RunDynamic(net2, baselineShortestPath(t), newScaledSource(10, 1, 5), 9, nil, 1e9,
		DynamicOptions{Workers: 1, Seed: 9, Window: 0.009, Service: 50})
	if err != nil {
		t.Fatal(err)
	}
	last2 := res2.Windows[len(res2.Windows)-1]
	if last2.Start >= last2.End {
		t.Errorf("phantom zero-width final window [%g,%g)", last2.Start, last2.End)
	}
	if last2.End != res2.Horizon {
		t.Errorf("final window End = %g, want horizon %g", last2.End, res2.Horizon)
	}
	if last2.Metrics.Payments != 2 {
		t.Errorf("final window drained %d payments, want 2", last2.Metrics.Payments)
	}
}

// TestShiftFactorValidation is the silent-bad-factor satellite: demand
// and fee shifts with zero, negative or non-finite factors are
// rejected at schedule-ingest time instead of no-opping invisibly.
func TestShiftFactorValidation(t *testing.T) {
	g := topo.New(3)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(0, 2)
	net := pcnNew(t, g, 1e6)
	for _, kind := range []event.Kind{event.DemandShift, event.FeeShift} {
		for _, factor := range []float64{0, -2, math.NaN(), math.Inf(1)} {
			src := newScaledSource(10, 1)
			churn := []event.Event{{Time: 2, Kind: kind, A: 0, B: 1, Amount: factor}}
			if _, err := RunDynamic(net, baselineShortestPath(t), src, 10, churn, 1e9, DynamicOptions{Workers: 1}); err == nil {
				t.Errorf("%v factor %v accepted", kind, factor)
			}
		}
	}
	// ThresholdUpdate is engine-internal and must stay out of churn
	// schedules entirely.
	src := newScaledSource(10, 1)
	churn := []event.Event{{Time: 2, Kind: event.ThresholdUpdate, Amount: 5}}
	if _, err := RunDynamic(net, baselineShortestPath(t), src, 10, churn, 1e9, DynamicOptions{Workers: 1}); err == nil {
		t.Error("threshold-update event in churn schedule accepted")
	}
}

// TestAdaptiveThresholdOffMatchesSeedGolden is the control pin: with
// AdaptiveThreshold explicitly false the dynamic engine reproduces the
// seed goldens exactly, estimator machinery and all.
func TestAdaptiveThresholdOffMatchesSeedGolden(t *testing.T) {
	for _, kind := range []string{KindRipple, KindLightning} {
		res := goldenDynamicRun(t, kind, DynamicOptions{Workers: 1, AdaptiveThreshold: false})
		if got := stripDelays(res.Aggregate); got != goldenMetrics[kind] {
			t.Errorf("%s: AdaptiveThreshold=false diverged from seed golden:\n got  %+v\n want %+v",
				kind, got, goldenMetrics[kind])
		}
		if res.EventCounts[event.ThresholdUpdate] != 0 {
			t.Errorf("%s: threshold updates applied with the adaptive mode off", kind)
		}
		if res.ThresholdUpdates != 0 {
			t.Errorf("%s: ThresholdUpdates = %d with the adaptive mode off", kind, res.ThresholdUpdates)
		}
	}
}

// demandDriftCell builds one scheme cell of the demand-drift scenario
// at test scale and runs it with the given adaptive setting against a
// fixed metrics threshold, so the two runs' per-class metrics are
// classified identically and only the *routing* differs.
func demandDriftCell(t *testing.T, adaptive bool, metricsThreshold float64) (DynamicResult, float64) {
	t.Helper()
	sc, err := NamedDynamicScenario("demand-drift", KindRipple, 150)
	if err != nil {
		t.Fatal(err)
	}
	sc.Duration = 40
	net, err := BuildNetwork(sc.Kind, sc.Nodes, sc.ScaleFactor, 0, 0, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	threshold, err := calibrateThreshold(sc, net.Graph())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workloadFor(sc.Kind, net.Graph(), sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := sc.arrivalProcess()
	if err != nil {
		t.Fatal(err)
	}
	stream, err := trace.NewStream(gen, arr, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	churn := buildChurnSchedule(sc, net, nil, newChurnRNG(sc.Seed))
	r, err := BuildRouter(RouterSpec{Scheme: SchemeFlash, Threshold: threshold, Seed: sc.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if metricsThreshold == 0 {
		metricsThreshold = threshold
	}
	res, err := RunDynamic(net, r, stream, sc.Duration, churn, metricsThreshold, DynamicOptions{
		Workers:           1,
		Seed:              sc.Seed,
		AdaptiveThreshold: adaptive,
		MiceFraction:      sc.MiceFraction,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, threshold
}

// TestDemandDriftAdaptiveBeatsStatic is the tentpole's acceptance
// criterion. The demand-drift scenario collapses payment amounts 4×
// mid-run: the static control keeps classifying against the stale
// pre-shift 90th percentile, so the post-shift top decile — elephants
// of the new regime — routes over m cached mice paths instead of the
// k-path elephant algorithm (the paper's Figure 10 right edge: success
// volume drops when too many payments classify as mice). Both runs
// record metrics against the *true* post-shift threshold (amount
// scaling is monotone, so it is exactly factor · pre-shift threshold),
// making their per-class metrics directly comparable; the adaptive
// run's post-shift elephant success ratio must be strictly higher.
// Everything is seeded — the comparison is deterministic.
func TestDemandDriftAdaptiveBeatsStatic(t *testing.T) {
	sc, err := NamedDynamicScenario("demand-drift", KindRipple, 150)
	if err != nil {
		t.Fatal(err)
	}
	// First pass only to learn the calibrated pre-shift threshold.
	_, preThreshold := demandDriftCell(t, false, 0)
	postThreshold := preThreshold * sc.DemandShiftFactor

	static, _ := demandDriftCell(t, false, postThreshold)
	adaptiveRes, _ := demandDriftCell(t, true, postThreshold)

	shiftAt := 40 * sc.DemandShiftFrac
	postShift := func(res DynamicResult) (int, int) {
		elephants, successes := 0, 0
		for _, w := range res.Windows {
			if w.Start < shiftAt {
				continue
			}
			elephants += w.Metrics.ElephantPayments
			successes += w.Metrics.ElephantSuccesses
		}
		return elephants, successes
	}
	sp, ss := postShift(static)
	ap, as := postShift(adaptiveRes)
	if sp == 0 || ap == 0 {
		t.Fatalf("no post-shift elephants classified (static %d, adaptive %d)", sp, ap)
	}
	staticRatio := float64(ss) / float64(sp)
	adaptiveRatio := float64(as) / float64(ap)
	t.Logf("post-shift elephant success: static %d/%d (%.1f%%), adaptive %d/%d (%.1f%%)",
		ss, sp, 100*staticRatio, as, ap, 100*adaptiveRatio)
	if adaptiveRatio <= staticRatio {
		t.Errorf("adaptive post-shift elephant success ratio %.3f not strictly above static %.3f",
			adaptiveRatio, staticRatio)
	}
	// The adaptation must actually have happened: threshold updates
	// applied, and the final threshold tracked the 4× collapse.
	if adaptiveRes.ThresholdUpdates == 0 {
		t.Error("adaptive run never re-calibrated")
	}
	if adaptiveRes.FinalThreshold >= preThreshold {
		t.Errorf("final threshold %.4g did not drop below the pre-shift calibration %.4g",
			adaptiveRes.FinalThreshold, preThreshold)
	}
	if static.ThresholdUpdates != 0 || static.FinalThreshold != preThreshold {
		t.Errorf("static control drifted: %d updates, final %.4g (want 0 updates at %.4g)",
			static.ThresholdUpdates, static.FinalThreshold, preThreshold)
	}
}

// TestAdaptiveThresholdDeterministicReplay pins the adaptive mode's
// determinism contract at the CLI level: two identically-seeded
// demand-drift runs render byte-identical output (windows, thresholds,
// fingerprint — everything cmd/flashsim prints per scheme).
func TestAdaptiveThresholdDeterministicReplay(t *testing.T) {
	run := func() DynamicSchemeResult {
		sc, err := NamedDynamicScenario("demand-drift", KindRipple, 100)
		if err != nil {
			t.Fatal(err)
		}
		sc.Duration = 20
		sc.Schemes = []string{SchemeFlash}
		sc.Seed = 11
		results, err := RunDynamicScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		return results[0]
	}
	a, b := run(), run()
	if a.Result.Fingerprint != b.Result.Fingerprint {
		t.Fatalf("fingerprints diverged: %016x vs %016x", a.Result.Fingerprint, b.Result.Fingerprint)
	}
	var bufA, bufB bytes.Buffer
	WriteDynamicResult(&bufA, a.Scheme, a.Result, true)
	WriteDynamicResult(&bufB, b.Scheme, b.Result, true)
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Errorf("CLI rendering diverged across identical seeds:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}
	// The run must actually exercise the adaptive path.
	if a.Result.EventCounts[event.ThresholdUpdate] == 0 {
		t.Error("no threshold updates applied in the adaptive scenario")
	}
	// The fingerprint covers the adaptive trajectory: a different seed
	// re-calibrates differently and must fingerprint differently.
	if got := a.Result.ThresholdUpdates; got == 0 {
		t.Error("no effective threshold changes in the adaptive scenario")
	}
}

// TestFeeWarScenario exercises the fee-war catalogue entry against its
// own paired control. Fees in pcn are an accounting metric (not
// deducted from balances), so a fee-blind scheme routes *identically*
// with and without the hub's repricing — which isolates the war's
// effect exactly: identical deliveries, strictly higher fees paid, and
// the difference confined to the post-shift windows.
func TestFeeWarScenario(t *testing.T) {
	run := func(factor float64) DynamicResult {
		sc, err := NamedDynamicScenario("fee-war", KindRipple, 100)
		if err != nil {
			t.Fatal(err)
		}
		sc.Duration = 20
		sc.Schemes = []string{SchemeShortestPath}
		sc.Seed = 3
		sc.FeeShiftFactor = factor
		results, err := RunDynamicScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		return results[0].Result
	}
	war, control := run(25), run(0)
	if war.EventCounts[event.FeeShift] == 0 {
		t.Fatal("fee-war scenario applied no fee shifts")
	}
	if control.EventCounts[event.FeeShift] != 0 {
		t.Fatal("control run applied fee shifts")
	}
	if war.Aggregate.Successes != control.Aggregate.Successes ||
		war.Aggregate.SuccessVolume != control.Aggregate.SuccessVolume {
		t.Errorf("fee shift changed deliveries of a fee-blind scheme: %+v vs %+v",
			war.Aggregate, control.Aggregate)
	}
	if war.Aggregate.FeesPaid <= control.Aggregate.FeesPaid {
		t.Errorf("hub fee war invisible in fees: %.4g <= %.4g",
			war.Aggregate.FeesPaid, control.Aggregate.FeesPaid)
	}
	// The repricing lands mid-run: pre-shift windows are identical.
	shiftAt := 20 * 0.5
	for i, w := range war.Windows {
		if w.End > shiftAt {
			break
		}
		if w.Metrics.FeesPaid != control.Windows[i].Metrics.FeesPaid {
			t.Errorf("pre-shift window %d fees diverged: %g vs %g",
				i, w.Metrics.FeesPaid, control.Windows[i].Metrics.FeesPaid)
		}
	}
}
