// Package stats provides small numeric helpers shared across the Flash
// reproduction: percentile and CDF computation, min/mean/max summaries,
// and deterministic random-number-generator derivation.
//
// Everything here is intentionally dependency-free; the simulator, trace
// generator and benchmark harness all build on it.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Summary holds the min/mean/max of a series plus its count and sum.
// The zero value is ready to use; call Add to accumulate observations.
type Summary struct {
	Count int
	Sum   float64
	Min   float64
	Max   float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.Count == 0 || v < s.Min {
		s.Min = v
	}
	if s.Count == 0 || v > s.Max {
		s.Max = v
	}
	s.Count++
	s.Sum += v
}

// Mean returns the arithmetic mean of the observations, or 0 if empty.
func (s *Summary) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// String formats the summary as "mean (min–max, n=count)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.4g (%.4g–%.4g, n=%d)", s.Mean(), s.Min, s.Max, s.Count)
}

// Summarize builds a Summary from a slice in one call.
func Summarize(vs []float64) Summary {
	var s Summary
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of vs using linear
// interpolation between closest ranks. It copies and sorts its input, so
// the caller's slice is left untouched. Percentile of an empty slice is 0.
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile on an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of vs.
func Median(vs []float64) float64 { return Percentile(vs, 50) }

// CDF is an empirical cumulative distribution function: a sorted sample
// against which quantiles and tail shares can be queried. It is the
// building block for reproducing the paper's Figure 3 and Figure 4 plots.
type CDF struct {
	sorted []float64
	total  float64 // sum of all values, cached for TopShare
}

// NewCDF builds an empirical CDF from a sample. The input is copied.
func NewCDF(sample []float64) *CDF {
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	total := 0.0
	for _, v := range sorted {
		total += v
	}
	return &CDF{sorted: sorted, total: total}
}

// Len returns the number of observations.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P[X ≤ x], the fraction of observations not exceeding x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the sample.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return percentileSorted(c.sorted, q*100)
}

// TopShare returns the fraction of the total mass contributed by the
// largest frac of observations, e.g. TopShare(0.1) answers "what share of
// volume do the top 10% of payments carry?" — the paper's heavy-tail
// headline statistic.
func (c *CDF) TopShare(frac float64) float64 {
	n := len(c.sorted)
	if n == 0 || c.total == 0 {
		return 0
	}
	k := int(math.Ceil(frac * float64(n)))
	if k <= 0 {
		return 0
	}
	if k > n {
		k = n
	}
	tail := 0.0
	for _, v := range c.sorted[n-k:] {
		tail += v
	}
	return tail / c.total
}

// Points returns up to n evenly spaced (value, cumulative-probability)
// pairs suitable for plotting the CDF.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(n-1, 1)
		pts = append(pts, [2]float64{c.sorted[idx], float64(idx+1) / float64(len(c.sorted))})
	}
	return pts
}

// NewRNG returns a deterministic *rand.Rand derived from a base seed and a
// stream label, so independent simulation runs draw from decorrelated but
// reproducible streams.
func NewRNG(seed int64, stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ int64(splitMix64(stream))))
}

// splitMix64 is the SplitMix64 mixing function, used to derive
// well-distributed sub-seeds from small stream indices.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
