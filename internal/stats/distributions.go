package stats

import (
	"math"
	"math/rand"
)

// LogNormal draws from a log-normal distribution with the given median and
// shape sigma (the standard deviation of the underlying normal). The
// Ripple/Bitcoin payment-size bodies in the paper's traces are modelled
// this way.
func LogNormal(rng *rand.Rand, median, sigma float64) float64 {
	return median * math.Exp(rng.NormFloat64()*sigma)
}

// Pareto draws from a Pareto(xm, alpha) distribution: heavy-tailed with
// minimum xm. Used for the elephant tail of the payment-size mixtures.
func Pareto(rng *rand.Rand, xm, alpha float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Zipf draws an integer in [0, n) with probability proportional to
// 1/(rank+1)^s. It is used for clustered receiver selection (a sender's
// top-5 recurring receivers dominate, per the paper's Figure 4b).
type Zipf struct {
	cum []float64 // cumulative unnormalised weights
}

// NewZipf precomputes the cumulative weight table for n ranks with
// exponent s. n must be ≥ 1.
func NewZipf(n int, s float64) *Zipf {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	return &Zipf{cum: cum}
}

// Draw samples a rank in [0, n).
func (z *Zipf) Draw(rng *rand.Rand) int {
	target := rng.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }
