package stats

import (
	"math"
	"testing"
)

func TestEWMASeedAndDecay(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Count() != 0 || e.Value() != 0 {
		t.Fatalf("fresh EWMA: count=%d value=%g", e.Count(), e.Value())
	}
	if got := e.Add(100); got != 100 {
		t.Fatalf("first Add must seed: got %g", got)
	}
	if got := e.Add(200); got != 150 {
		t.Fatalf("alpha=0.5 second Add: got %g, want 150", got)
	}
	if got := e.Add(150); got != 150 {
		t.Fatalf("third Add: got %g, want 150", got)
	}
	if e.Count() != 3 {
		t.Fatalf("Count = %d, want 3", e.Count())
	}
	if e.Alpha() != 0.5 {
		t.Fatalf("Alpha = %g", e.Alpha())
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.2)
	e.Add(10)
	e.Add(20)
	e.Reset()
	if e.Count() != 0 || e.Value() != 0 {
		t.Fatalf("after Reset: count=%d value=%g", e.Count(), e.Value())
	}
	if got := e.Add(7); got != 7 {
		t.Fatalf("post-Reset Add must re-seed: got %g", got)
	}
}

func TestEWMAAlphaOneTracksRaw(t *testing.T) {
	e := NewEWMA(1)
	for _, x := range []float64{3, 99, -4} {
		if got := e.Add(x); got != x {
			t.Fatalf("alpha=1 must track raw: Add(%g)=%g", x, got)
		}
	}
}

func TestNewEWMARejectsBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%g) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestQuantileStdErr(t *testing.T) {
	e := NewQuantileEstimator(0.9)
	// Under 5 observations the P² markers aren't initialised: no
	// density estimate, so the error is unbounded.
	for i := 0; i < 4; i++ {
		e.Add(float64(i))
		if !math.IsInf(e.StdErr(), 1) {
			t.Fatalf("StdErr finite at count %d", e.Count())
		}
	}

	// A uniform [0,1000) stream has density 1/1000 everywhere, so
	// SE ≈ sqrt(0.9·0.1/n)·1000. Check the right order of magnitude
	// and the 1/sqrt(n) shrink.
	rng := NewRNG(3, 0x5E)
	var seAt1k float64
	for i := 0; i < 10000; i++ {
		e.Add(rng.Float64() * 1000)
		if e.Count() == 1000 {
			seAt1k = e.StdErr()
		}
	}
	se := e.StdErr()
	want := math.Sqrt(0.9*0.1/10000) * 1000 // ≈ 3.0
	if se <= 0 || math.IsInf(se, 1) {
		t.Fatalf("StdErr = %g on a 10k uniform stream", se)
	}
	if se < want/5 || se > want*5 {
		t.Errorf("StdErr = %g, want within 5x of the analytic %g", se, want)
	}
	if seAt1k <= se {
		t.Errorf("StdErr did not shrink with n: %g at 1k vs %g at 10k", seAt1k, se)
	}
}

func TestQuantileConfidenceInterval(t *testing.T) {
	e := NewQuantileEstimator(0.5)
	e.Add(1)
	e.Add(2)
	// Degenerate estimator: the interval must span the observed range
	// rather than invent precision.
	lo, hi := e.ConfidenceInterval(1.96)
	if lo != 1 || hi != 2 {
		t.Fatalf("degenerate interval [%g, %g], want the observed [1, 2]", lo, hi)
	}

	rng := NewRNG(4, 0x5F)
	for i := 0; i < 5000; i++ {
		e.Add(rng.Float64() * 100)
	}
	q := e.Quantile()
	lo, hi = e.ConfidenceInterval(1.96)
	if !(lo < q && q < hi) {
		t.Fatalf("interval [%g, %g] does not bracket the estimate %g", lo, hi, q)
	}
	if hi-lo > 20 {
		t.Errorf("interval [%g, %g] implausibly wide for a 5k uniform stream", lo, hi)
	}
	// Wider z ⇒ wider interval.
	lo3, hi3 := e.ConfidenceInterval(3)
	if lo3 > lo || hi3 < hi {
		t.Errorf("z=3 interval [%g, %g] not containing z=1.96 [%g, %g]", lo3, hi3, lo, hi)
	}
}
