package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestQuantileEstimatorSmallSampleExact pins the initialisation phase:
// below five observations the estimate is the exact interpolated
// percentile of the buffer.
func TestQuantileEstimatorSmallSampleExact(t *testing.T) {
	e := NewQuantileEstimator(0.9)
	if got := e.Quantile(); got != 0 {
		t.Errorf("empty estimator: %v, want 0", got)
	}
	vals := []float64{7, 3, 11, 5}
	for i, v := range vals {
		e.Add(v)
		want := Percentile(vals[:i+1], 90)
		if got := e.Quantile(); math.Abs(got-want) > 1e-12 {
			t.Errorf("after %d obs: estimate %v, exact %v", i+1, got, want)
		}
	}
	if e.Count() != len(vals) {
		t.Errorf("Count = %d, want %d", e.Count(), len(vals))
	}
}

// estimateVsExact feeds n draws from sample into both the estimator
// and an exact buffer and returns (estimate, exact percentile).
func estimateVsExact(p float64, n int, seed int64, sample func(*rand.Rand) float64) (float64, float64) {
	rng := rand.New(rand.NewSource(seed))
	e := NewQuantileEstimator(p)
	buf := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := sample(rng)
		e.Add(v)
		buf = append(buf, v)
	}
	return e.Quantile(), Percentile(buf, p*100)
}

// TestQuantileEstimatorConvergence bounds the P² error against the
// exact percentile on fixed seeds, for the distributions the simulator
// actually feeds it: uniform, exponential, and the heavy-tailed
// log-normal of the payment-size models.
func TestQuantileEstimatorConvergence(t *testing.T) {
	cases := []struct {
		name   string
		p      float64
		n      int
		seed   int64
		relTol float64
		sample func(*rand.Rand) float64
	}{
		{"uniform-p90", 0.9, 20000, 1, 0.02, func(r *rand.Rand) float64 { return r.Float64() }},
		{"uniform-p50", 0.5, 20000, 2, 0.02, func(r *rand.Rand) float64 { return r.Float64() }},
		{"exponential-p90", 0.9, 20000, 3, 0.05, func(r *rand.Rand) float64 { return r.ExpFloat64() }},
		{"lognormal-p90", 0.9, 50000, 4, 0.10, func(r *rand.Rand) float64 {
			return math.Exp(r.NormFloat64() * 1.5)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, want := estimateVsExact(tc.p, tc.n, tc.seed, tc.sample)
			if want == 0 {
				t.Fatalf("degenerate exact percentile")
			}
			if rel := math.Abs(got-want) / want; rel > tc.relTol {
				t.Errorf("estimate %v vs exact %v: relative error %.3f > %.3f",
					got, want, rel, tc.relTol)
			}
		})
	}
}

// TestQuantileEstimatorDeterministic: identical observation sequences
// produce bit-identical estimates — the determinism contract.
func TestQuantileEstimatorDeterministic(t *testing.T) {
	run := func() float64 {
		rng := rand.New(rand.NewSource(99))
		e := NewQuantileEstimator(0.9)
		for i := 0; i < 10000; i++ {
			e.Add(math.Exp(rng.NormFloat64()))
		}
		return e.Quantile()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("estimates diverged across identical runs: %v vs %v", a, b)
	}
}

// TestQuantileEstimatorReset: a reset estimator forgets its history
// and tracks the new regime alone — the rolling re-calibration
// behaviour the adaptive threshold depends on.
func TestQuantileEstimatorReset(t *testing.T) {
	e := NewQuantileEstimator(0.9)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		e.Add(100 + rng.Float64())
	}
	e.Reset()
	if e.Count() != 0 {
		t.Fatalf("Count after Reset = %d", e.Count())
	}
	for i := 0; i < 5000; i++ {
		e.Add(rng.Float64()) // two orders of magnitude below the old regime
	}
	if got := e.Quantile(); got > 1 {
		t.Errorf("post-reset estimate %v still reflects the old regime", got)
	}
	if e.P() != 0.9 {
		t.Errorf("Reset changed the target quantile: %v", e.P())
	}
}

// TestQuantileEstimatorTracksShiftedStream: after a mid-stream scale
// shift with a reset at the boundary, the estimate matches the
// post-shift distribution, not the mixture.
func TestQuantileEstimatorTracksShiftedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewQuantileEstimator(0.9)
	for i := 0; i < 10000; i++ {
		e.Add(rng.Float64())
	}
	pre := e.Quantile()
	e.Reset()
	buf := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		v := 0.25 * rng.Float64()
		e.Add(v)
		buf = append(buf, v)
	}
	post, exact := e.Quantile(), Percentile(buf, 90)
	if math.Abs(post-exact)/exact > 0.05 {
		t.Errorf("post-shift estimate %v vs exact %v", post, exact)
	}
	if post > pre*0.5 {
		t.Errorf("estimate %v did not follow the 4x downward shift (pre %v)", post, pre)
	}
}

// TestNewQuantileEstimatorRejectsBadP: out-of-range quantiles are
// caller bugs and panic.
func TestNewQuantileEstimatorRejectsBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v accepted", p)
				}
			}()
			NewQuantileEstimator(p)
		}()
	}
}
