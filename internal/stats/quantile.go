package stats

import (
	"fmt"
	"math"
	"sort"
)

// QuantileEstimator tracks a single quantile of an unbounded stream in
// O(1) memory using the P² algorithm (Jain & Chlamtac, 1985): five
// markers — the stream minimum, the target quantile, the quantile's
// midpoints towards either extreme, and the stream maximum — are
// nudged towards their desired rank positions on every observation,
// with piecewise-parabolic height interpolation. The estimate is a
// pure function of the observation sequence (no randomness, no maps),
// so identically-ordered streams produce bit-identical estimates — the
// property the dynamic engine's determinism contract relies on.
//
// It is the streaming counterpart of Percentile for workloads too long
// (or too lazy) to materialise: the adaptive elephant threshold feeds
// every arrival amount through one of these instead of buffering the
// whole payment history.
//
// A QuantileEstimator is not safe for concurrent use; callers
// serialise Add and Quantile (the dynamic engine does so on its event
// loop).
type QuantileEstimator struct {
	p     float64    // target quantile in (0, 1)
	count int        // observations seen
	q     [5]float64 // marker heights
	n     [5]float64 // actual marker positions (1-based ranks)
	want  [5]float64 // desired marker positions
	dwant [5]float64 // desired-position increment per observation
}

// NewQuantileEstimator returns an estimator for the p-quantile,
// 0 < p < 1 (e.g. 0.9 for the paper's 90%-mice elephant threshold).
// Out-of-range p panics: the quantile is a structural parameter, not
// data, so a bad value is a caller bug.
func NewQuantileEstimator(p float64) *QuantileEstimator {
	if !(p > 0 && p < 1) {
		panic(fmt.Sprintf("stats: quantile must be in (0, 1), got %v", p))
	}
	e := &QuantileEstimator{p: p}
	e.Reset()
	return e
}

// P returns the target quantile the estimator tracks.
func (e *QuantileEstimator) P() float64 { return e.p }

// Count returns the number of observations added since the last Reset.
func (e *QuantileEstimator) Count() int { return e.count }

// Reset discards all observations, keeping the target quantile — the
// rolling re-calibration hook: the adaptive threshold resets its
// estimator after every swap so the next estimate tracks the current
// demand regime, not the whole history.
func (e *QuantileEstimator) Reset() {
	p := e.p
	*e = QuantileEstimator{
		p:     p,
		want:  [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5},
		dwant: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}
}

// Add feeds one observation into the estimator.
func (e *QuantileEstimator) Add(v float64) {
	if e.count < 5 {
		// Initialisation phase: the first five observations become the
		// markers themselves (kept sorted in q).
		e.q[e.count] = v
		e.count++
		sort.Float64s(e.q[:e.count])
		if e.count == 5 {
			for i := range e.n {
				e.n[i] = float64(i + 1)
			}
		}
		return
	}
	e.count++

	// Locate the cell the observation falls into, extending the extreme
	// markers when it lies outside them.
	var k int
	switch {
	case v < e.q[0]:
		e.q[0] = v
		k = 0
	case v >= e.q[4]:
		e.q[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < e.q[k+1] {
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := range e.want {
		e.want[i] += e.dwant[i]
	}

	// Nudge the three interior markers towards their desired positions,
	// adjusting heights by the piecewise-parabolic (P²) formula, or
	// linearly when the parabola would break monotonicity.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			h := e.parabolic(i, s)
			if e.q[i-1] < h && h < e.q[i+1] {
				e.q[i] = h
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by d (±1).
func (e *QuantileEstimator) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+d)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-d)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

// linear is the fallback height prediction along the neighbouring
// marker.
func (e *QuantileEstimator) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.n[j]-e.n[i])
}

// Quantile returns the current estimate of the p-quantile. With fewer
// than five observations it is the exact interpolated percentile of
// what has been seen (matching Percentile); with none it is 0.
func (e *QuantileEstimator) Quantile() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		buf := append([]float64(nil), e.q[:e.count]...)
		return percentileSorted(buf, e.p*100)
	}
	return e.q[2]
}

// StdErr returns the approximate standard error of the current
// quantile estimate, via the asymptotic sample-quantile variance
// formula SE ≈ sqrt(p(1−p)/n) / f̂(q): the binomial rank noise divided
// by the local density of the distribution at the quantile. The
// density is estimated from the P² markers themselves — the fraction
// of observations lying between the two markers flanking the quantile,
// divided by their height span — so the error estimate costs no extra
// state and stays a pure function of the observation sequence.
//
// With fewer than five observations (the P² markers are not yet
// placed) it returns +Inf: the estimate carries no usable confidence,
// and a caller gating decisions on the error will correctly hold off.
// A degenerate stream whose flanking markers coincide (all mass at one
// point) returns 0: the quantile is exact.
func (e *QuantileEstimator) StdErr() float64 {
	if e.count < 5 {
		return math.Inf(1)
	}
	spread := e.q[3] - e.q[1]
	if spread <= 0 {
		return 0
	}
	frac := (e.n[3] - e.n[1]) / float64(e.count)
	if frac <= 0 {
		return math.Inf(1)
	}
	density := frac / spread
	return math.Sqrt(e.p*(1-e.p)/float64(e.count)) / density
}

// ConfidenceInterval returns the symmetric z-score interval
// Quantile() ± z·StdErr() clamped to the observed stream range (the
// extreme P² markers) — the confidence gate the smoothed-threshold
// control policy swaps against. With fewer than five observations the
// interval is the whole observed range.
func (e *QuantileEstimator) ConfidenceInterval(z float64) (lo, hi float64) {
	q := e.Quantile()
	se := e.StdErr()
	if math.IsInf(se, 1) {
		if e.count == 0 {
			return 0, 0
		}
		if e.count < 5 {
			// Markers not placed yet: q[:count] holds the sorted
			// observations, the rest of the array is unset.
			return e.q[0], e.q[e.count-1]
		}
		return e.q[0], e.q[4]
	}
	lo, hi = q-z*se, q+z*se
	if lo < e.q[0] {
		lo = e.q[0]
	}
	if hi > e.q[4] {
		hi = e.q[4]
	}
	return lo, hi
}
