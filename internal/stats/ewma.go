package stats

import "fmt"

// EWMA is an exponentially weighted moving average: each observation
// pulls the running value towards itself by the smoothing factor alpha
// (v ← α·x + (1−α)·v), so recent observations dominate with an
// effective memory of ~1/α observations. The first observation seeds
// the value directly — no zero-bias warm-up. Like QuantileEstimator it
// is a pure function of the observation sequence (no randomness, no
// maps), which is what lets the control plane's smoothed-threshold
// policy stay deterministic.
//
// An EWMA is not safe for concurrent use; callers serialise Add and
// Value (the control plane does so on the engine's event loop).
type EWMA struct {
	alpha float64
	value float64
	count int
}

// NewEWMA returns an average with smoothing factor alpha in (0, 1].
// Out-of-range alpha panics: the factor is a structural parameter, not
// data, so a bad value is a caller bug (mirroring NewQuantileEstimator).
func NewEWMA(alpha float64) *EWMA {
	if !(alpha > 0 && alpha <= 1) {
		panic(fmt.Sprintf("stats: EWMA alpha must be in (0, 1], got %v", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Alpha returns the smoothing factor.
func (e *EWMA) Alpha() float64 { return e.alpha }

// Count returns the number of observations added since the last Reset.
func (e *EWMA) Count() int { return e.count }

// Value returns the current smoothed value (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Add feeds one observation and returns the updated smoothed value.
func (e *EWMA) Add(x float64) float64 {
	if e.count == 0 {
		e.value = x
	} else {
		e.value = e.alpha*x + (1-e.alpha)*e.value
	}
	e.count++
	return e.value
}

// Reset discards the history, keeping the smoothing factor — the
// regime-change hook: when a shift detector decides the stream has
// jumped to a new regime, smoothing towards it over many windows would
// only prolong the misclassification, so the average re-seeds from the
// next observation instead.
func (e *EWMA) Reset() {
	e.value = 0
	e.count = 0
}
