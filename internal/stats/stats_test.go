package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 {
		t.Fatalf("empty mean = %v, want 0", s.Mean())
	}
	for _, v := range []float64{3, 1, 4, 1, 5} {
		s.Add(v)
	}
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", s.Min, s.Max)
	}
	if got, want := s.Mean(), 14.0/5; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	s := Summarize([]float64{-2, -8, -5})
	if s.Min != -8 || s.Max != -2 {
		t.Errorf("Min/Max = %v/%v, want -8/-2", s.Min, s.Max)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if got := s.String(); got == "" {
		t.Error("String returned empty")
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40}, {10, 14},
	}
	for _, c := range cases {
		if got := Percentile(vs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile single = %v, want 7", got)
	}
	// Input must not be mutated.
	vs := []float64{3, 1, 2}
	Percentile(vs, 50)
	if vs[0] != 3 || vs[1] != 1 || vs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", vs)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 9}); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if got := c.Quantile(0.5); got != 30 {
		t.Errorf("Quantile(0.5) = %v, want 30", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %v, want 10", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Errorf("Quantile(1) = %v, want 50", got)
	}
}

func TestCDFTopShare(t *testing.T) {
	// 9 ones and a 91: top 10% (one value) holds 91% of the mass.
	sample := make([]float64, 10)
	for i := range sample {
		sample[i] = 1
	}
	sample[9] = 91
	c := NewCDF(sample)
	if got := c.TopShare(0.1); math.Abs(got-0.91) > 1e-9 {
		t.Errorf("TopShare(0.1) = %v, want 0.91", got)
	}
	if got := c.TopShare(1); math.Abs(got-1) > 1e-9 {
		t.Errorf("TopShare(1) = %v, want 1", got)
	}
	if got := c.TopShare(0); got != 0 {
		t.Errorf("TopShare(0) = %v, want 0", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 || c.Quantile(0.5) != 0 || c.TopShare(0.5) != 0 {
		t.Error("empty CDF should return zeros")
	}
	if c.Points(5) != nil {
		t.Error("empty CDF Points should be nil")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points(5) returned %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Errorf("points not monotone: %v", pts)
		}
	}
	if pts[len(pts)-1][1] != 1 {
		t.Errorf("last point probability = %v, want 1", pts[len(pts)-1][1])
	}
}

func TestNewRNGDeterminism(t *testing.T) {
	a := NewRNG(42, 7)
	b := NewRNG(42, 7)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed/stream must produce identical sequences")
		}
	}
	c := NewRNG(42, 8)
	same := true
	a = NewRNG(42, 7)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different streams produced identical sequences")
	}
}

func TestLogNormalMedian(t *testing.T) {
	rng := NewRNG(1, 1)
	sample := make([]float64, 20000)
	for i := range sample {
		sample[i] = LogNormal(rng, 4.8, 1.7)
	}
	med := Median(sample)
	if med < 4.0 || med > 5.7 {
		t.Errorf("log-normal median = %v, want ≈4.8", med)
	}
}

func TestParetoMinimumAndTail(t *testing.T) {
	rng := NewRNG(2, 1)
	for i := 0; i < 10000; i++ {
		v := Pareto(rng, 1740, 2.0)
		if v < 1740 {
			t.Fatalf("Pareto drew %v below xm", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewRNG(3, 1)
	z := NewZipf(100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[z.Draw(rng)]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("rank 0 (%d) should dominate rank 50 (%d)", counts[0], counts[50])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 50000 {
		t.Errorf("draws out of range: counted %d of 50000", total)
	}
}

func TestZipfN(t *testing.T) {
	if NewZipf(17, 1).N() != 17 {
		t.Error("N mismatch")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(vs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		s := Summarize(vs)
		return Percentile(vs, 0) == s.Min && Percentile(vs, 100) == s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: CDF.At is monotone and hits 1 at the max.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return true
		}
		c := NewCDF(vs)
		s := Summarize(vs)
		if c.At(s.Max) != 1 {
			return false
		}
		prev := 0.0
		for q := 0.0; q <= 1.0; q += 0.1 {
			p := c.At(s.Min + q*(s.Max-s.Min))
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
