// Package event is the deterministic discrete-event core of the
// dynamic network simulator: a virtual clock, a priority queue of
// timestamped events, and an append-only log of everything that was
// applied.
//
// # Time model
//
// Time is virtual, measured in float64 seconds from the start of a run.
// Nothing in this package reads wall-clock time: every timestamp is
// computed by the caller (typically from a seeded arrival process), so
// a run's event sequence is a pure function of its inputs. Events at
// the same virtual instant are ordered by their scheduling sequence
// number — the queue stamps each pushed event with a monotonically
// increasing Seq — giving the engine a single total order. Two runs
// that schedule the same events therefore pop them identically.
//
// # Determinism
//
// The queue is a plain binary heap with the (Time, Seq) total order;
// it holds no maps and consults no global state, so iteration order
// can never leak in. The Log records every applied event and exposes a
// fingerprint (FNV-1a over the rendered entries) that tests compare
// across runs to pin determinism.
package event

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/topo"
)

// Kind enumerates what can happen in a dynamic-network run.
type Kind uint8

const (
	// PaymentArrival is a payment entering the system (first attempt or
	// a scheduled retry).
	PaymentArrival Kind = iota
	// PaymentComplete is a payment leaving service (delivered or not).
	PaymentComplete
	// ChannelOpen activates a channel: a reopened channel or a latent
	// one funded for the first time.
	ChannelOpen
	// ChannelClose deactivates a channel; its funds freeze in place.
	ChannelClose
	// Rebalance evens a channel's two directional balances (an offchain
	// rebalancing operation such as a circular self-payment).
	Rebalance
	// DemandShift rescales the workload's payment amounts from this
	// instant on.
	DemandShift
	// FeeShift rescales a channel's fee schedules (both directions) by
	// a factor — a node repricing its channels mid-run (a fee war).
	FeeShift
	// ThresholdUpdate records an adaptive elephant-threshold
	// re-calibration: the engine's rolling quantile estimator swapped
	// (or re-confirmed) the router's classification threshold. Emitted
	// by the engine itself, never by churn schedules.
	ThresholdUpdate
	// DeadlineExpiry is a held payment hitting its HTLC-style expiry
	// deadline before its commit could settle: the hold is torn down,
	// funds are released, and the attempt counts as failed. Emitted by
	// the engine itself, never by churn schedules.
	DeadlineExpiry
	// ControlUpdate records one applied control-plane decision (or the
	// cadence tick that triggers the observe/decide pass): a runtime
	// knob — threshold, per-sender threshold, probe width, retry
	// backoff — moved to a new value. Like ThresholdUpdate, the applied
	// decisions are stamped into the log before recording, so the
	// fingerprint covers the whole adaptive trajectory. Emitted by the
	// engine itself, never by churn schedules.
	ControlUpdate

	// NumKinds is the number of event kinds (for per-kind counters).
	NumKinds = int(ControlUpdate) + 1
)

// String names the kind for logs and tables.
func (k Kind) String() string {
	switch k {
	case PaymentArrival:
		return "arrival"
	case PaymentComplete:
		return "complete"
	case ChannelOpen:
		return "open"
	case ChannelClose:
		return "close"
	case Rebalance:
		return "rebalance"
	case DemandShift:
		return "demand-shift"
	case FeeShift:
		return "fee-shift"
	case ThresholdUpdate:
		return "threshold-update"
	case DeadlineExpiry:
		return "deadline-expiry"
	case ControlUpdate:
		return "control-update"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one scheduled occurrence. Which payload fields are
// meaningful depends on Kind:
//
//   - PaymentArrival / PaymentComplete: ID is the payment ID and
//     Attempt the retry attempt (0 = first try).
//   - ChannelOpen / ChannelClose / Rebalance: A and B are the channel
//     endpoints; for ChannelOpen, Amount > 0 funds each direction with
//     that balance (0 keeps the frozen balances).
//   - DemandShift: Amount is the new payment-amount scale factor.
//   - FeeShift: A and B are the channel endpoints, Amount the factor
//     both directions' fee schedules are multiplied by.
//   - ThresholdUpdate: Amount is the effective elephant threshold
//     after the re-calibration (stamped by the engine when applied, so
//     the log fingerprint covers the adaptive trajectory).
//   - DeadlineExpiry: ID is the payment ID and Attempt the retry
//     attempt whose hold expired.
//   - ControlUpdate: ID is the knob code of the applied decision
//     (internal/control's Knob values; 0 marks a bare cadence tick), A
//     the sender for per-sender knobs, and Amount the knob's new
//     effective value.
type Event struct {
	Time float64 // virtual seconds
	Seq  uint64  // stamped by Queue.Schedule; total-order tie-break
	Kind Kind

	ID      int64
	Attempt int
	A, B    topo.NodeID
	Amount  float64
}

// String renders the event for the deterministic log.
func (e Event) String() string {
	switch e.Kind {
	case PaymentArrival, PaymentComplete, DeadlineExpiry:
		return fmt.Sprintf("t=%.6f %s id=%d try=%d", e.Time, e.Kind, e.ID, e.Attempt)
	case ChannelOpen, ChannelClose, Rebalance, FeeShift:
		return fmt.Sprintf("t=%.6f %s %d-%d amt=%g", e.Time, e.Kind, e.A, e.B, e.Amount)
	case DemandShift:
		return fmt.Sprintf("t=%.6f %s factor=%g", e.Time, e.Kind, e.Amount)
	case ThresholdUpdate:
		return fmt.Sprintf("t=%.6f %s thr=%g", e.Time, e.Kind, e.Amount)
	case ControlUpdate:
		return fmt.Sprintf("t=%.6f %s knob=%d sender=%d value=%g", e.Time, e.Kind, e.ID, e.A, e.Amount)
	default:
		return fmt.Sprintf("t=%.6f %s", e.Time, e.Kind)
	}
}

// before is the queue's total order: time, then scheduling sequence.
func (e Event) before(o Event) bool {
	if e.Time != o.Time {
		return e.Time < o.Time
	}
	return e.Seq < o.Seq
}

// Queue is a min-heap of events ordered by (Time, Seq). The zero
// value is an empty, ready-to-use queue; NewQueue exists for
// call-site readability.
type Queue struct {
	h   eventHeap
	seq uint64
}

// NewQueue returns an empty event queue.
func NewQueue() *Queue { return &Queue{} }

// Schedule stamps e with the next sequence number, pushes it, and
// returns the stamped event. Events may be scheduled in any time
// order; Pop yields them in (Time, Seq) order.
func (q *Queue) Schedule(e Event) Event {
	e.Seq = q.seq
	q.seq++
	heap.Push(&q.h, e)
	return e
}

// Pop removes and returns the earliest event, or ok=false on empty.
func (q *Queue) Pop() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return heap.Pop(&q.h).(Event), true
}

// Peek returns the earliest event without removing it.
func (q *Queue) Peek() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

type eventHeap []Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].before(h[j]) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Clock is the virtual clock: it only moves forward, driven by the
// timestamps of popped events.
type Clock struct {
	now float64
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// AdvanceTo moves the clock to t. Moving backwards is an engine bug
// (the queue yields events in time order) and panics.
func (c *Clock) AdvanceTo(t float64) {
	if t < c.now {
		panic(fmt.Sprintf("event: clock moved backwards: %v -> %v", c.now, t))
	}
	c.now = t
}

// Log records applied events: per-kind counts and an incremental
// fingerprint are always maintained; the full entry list only when
// Retain is set (long runs fingerprint in O(1) memory). It backs the
// determinism guarantee: two runs with the same seed must produce
// fingerprint-identical logs.
type Log struct {
	// Retain keeps every recorded event in memory (Events).
	Retain bool

	entries []Event
	counts  [NumKinds]int
	hash    Hash
	n       int
}

// Record applies an event to the log.
func (l *Log) Record(e Event) {
	if l.n == 0 {
		l.hash = NewHash()
	}
	l.n++
	l.hash = l.hash.Add(e)
	if int(e.Kind) < NumKinds {
		l.counts[e.Kind]++
	}
	if l.Retain {
		l.entries = append(l.entries, e)
	}
}

// Len returns the number of recorded events.
func (l *Log) Len() int { return l.n }

// Events returns the retained events in application order (nil unless
// Retain was set). The caller must not modify the returned slice.
func (l *Log) Events() []Event { return l.entries }

// Counts returns the per-kind applied-event counts.
func (l *Log) Counts() [NumKinds]int { return l.counts }

// Fingerprint returns the order-sensitive FNV-1a digest of everything
// recorded so far.
func (l *Log) Fingerprint() uint64 {
	if l.n == 0 {
		return uint64(NewHash())
	}
	return uint64(l.hash)
}

// Hash is an incremental FNV-1a digest over applied events, for
// engines that want a determinism fingerprint without retaining the
// full log in memory.
type Hash uint64

// NewHash returns the FNV-1a offset basis.
func NewHash() Hash { return 14695981039346656037 }

// Add folds one event's raw fields into the digest and returns the new
// value. Hashing the fields directly (rather than a rendered string)
// keeps the digest off the event loop's allocation path.
func (h Hash) Add(e Event) Hash {
	v := uint64(h)
	v = fnvWord(v, math.Float64bits(e.Time))
	v = fnvWord(v, e.Seq)
	v = fnvWord(v, uint64(e.Kind))
	v = fnvWord(v, uint64(e.ID))
	v = fnvWord(v, uint64(int64(e.Attempt)))
	v = fnvWord(v, uint64(uint32(e.A))<<32|uint64(uint32(e.B)))
	v = fnvWord(v, math.Float64bits(e.Amount))
	return Hash(v)
}

// fnvWord folds one 64-bit word into an FNV-1a state, byte by byte.
func fnvWord(h, w uint64) uint64 {
	const prime64 = 1099511628211
	for i := 0; i < 8; i++ {
		h ^= w & 0xFF
		h *= prime64
		w >>= 8
	}
	return h
}
