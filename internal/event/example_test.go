package event_test

import (
	"fmt"

	"repro/internal/event"
)

// Example replays a tiny dynamic-network schedule — a payment arrival,
// a churn event, and the payment's completion — in deterministic
// (Time, Seq) order: the exact loop the simulator's engine runs. The
// fingerprint is the determinism evidence two same-seed runs compare.
func Example() {
	q := event.NewQueue()
	q.Schedule(event.Event{Time: 0.5, Kind: event.PaymentArrival, ID: 1})
	q.Schedule(event.Event{Time: 2.0, Kind: event.PaymentComplete, ID: 1})
	q.Schedule(event.Event{Time: 1.0, Kind: event.ChannelClose, A: 2, B: 3})

	var clock event.Clock
	log := event.Log{Retain: true}
	for q.Len() > 0 {
		e, _ := q.Pop()
		clock.AdvanceTo(e.Time)
		log.Record(e)
		fmt.Println(e)
	}
	fmt.Printf("clock %.1fs, %d events, fingerprint %016x\n", clock.Now(), log.Len(), log.Fingerprint())
	// Output:
	// t=0.500000 arrival id=1 try=0
	// t=1.000000 close 2-3 amt=0
	// t=2.000000 complete id=1 try=0
	// clock 2.0s, 3 events, fingerprint a69080898b5bc4b5
}
