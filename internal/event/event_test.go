package event

import (
	"math/rand"
	"sort"
	"testing"
)

func TestQueueOrdersByTimeThenSeq(t *testing.T) {
	q := NewQueue()
	q.Schedule(Event{Time: 2, Kind: ChannelClose})
	q.Schedule(Event{Time: 1, Kind: PaymentArrival, ID: 7})
	q.Schedule(Event{Time: 1, Kind: PaymentComplete, ID: 7}) // same time, later seq
	q.Schedule(Event{Time: 0.5, Kind: DemandShift, Amount: 2})

	var got []Kind
	for {
		e, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, e.Kind)
	}
	want := []Kind{DemandShift, PaymentArrival, PaymentComplete, ChannelClose}
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pop %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestQueueSeqBreaksTies(t *testing.T) {
	q := NewQueue()
	for i := 0; i < 100; i++ {
		q.Schedule(Event{Time: 1, ID: int64(i), Kind: PaymentArrival})
	}
	for i := 0; i < 100; i++ {
		e, ok := q.Pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		if e.ID != int64(i) {
			t.Fatalf("tie-broken pop %d returned id %d", i, e.ID)
		}
	}
}

func TestQueueRandomisedIsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	q := NewQueue()
	times := make([]float64, 500)
	for i := range times {
		times[i] = rng.Float64() * 100
		q.Schedule(Event{Time: times[i], Kind: PaymentArrival, ID: int64(i)})
	}
	sort.Float64s(times)
	for i := range times {
		e, ok := q.Pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		if e.Time != times[i] {
			t.Fatalf("pop %d time = %v, want %v", i, e.Time, times[i])
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("pop on empty queue succeeded")
	}
}

func TestPeek(t *testing.T) {
	q := NewQueue()
	if _, ok := q.Peek(); ok {
		t.Error("peek on empty queue succeeded")
	}
	q.Schedule(Event{Time: 3})
	q.Schedule(Event{Time: 1})
	e, ok := q.Peek()
	if !ok || e.Time != 1 {
		t.Errorf("peek = %+v, %v; want time 1", e, ok)
	}
	if q.Len() != 2 {
		t.Errorf("peek consumed events: len = %d", q.Len())
	}
}

func TestClockMonotone(t *testing.T) {
	var c Clock
	c.AdvanceTo(1)
	c.AdvanceTo(1) // same instant is fine
	c.AdvanceTo(2.5)
	if c.Now() != 2.5 {
		t.Errorf("Now = %v", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("backwards advance did not panic")
		}
	}()
	c.AdvanceTo(2)
}

func TestLogFingerprintDeterministic(t *testing.T) {
	build := func(retain bool) *Log {
		l := Log{Retain: retain}
		l.Record(Event{Time: 0.25, Kind: PaymentArrival, ID: 3})
		l.Record(Event{Time: 0.5, Kind: ChannelClose, A: 1, B: 2})
		l.Record(Event{Time: 0.5, Kind: PaymentComplete, ID: 3, Attempt: 1})
		l.Record(Event{Time: 0.75, Kind: DemandShift, Amount: 1.5})
		return &l
	}
	a, b := build(true), build(false)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("retention must not change the fingerprint")
	}
	var c Log
	if c.Fingerprint() != uint64(NewHash()) {
		t.Error("empty log fingerprint != offset basis")
	}
	c.Record(Event{Time: 0.25, Kind: PaymentArrival, ID: 4})
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different logs share a fingerprint")
	}
	counts := a.Counts()
	if counts[PaymentArrival] != 1 || counts[ChannelClose] != 1 || counts[DemandShift] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if a.Len() != 4 || len(a.Events()) != 4 {
		t.Errorf("retained log length = %d, events %d", a.Len(), len(a.Events()))
	}
	if b.Len() != 4 || b.Events() != nil {
		t.Errorf("unretained log: len %d, events %v", b.Len(), b.Events())
	}
	// The digest is field-sensitive: same times, different payload.
	var d, e Log
	d.Record(Event{Time: 1, Kind: Rebalance, A: 1, B: 2})
	e.Record(Event{Time: 1, Kind: Rebalance, A: 1, B: 3})
	if d.Fingerprint() == e.Fingerprint() {
		t.Error("payload change invisible to fingerprint")
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if s := k.String(); s == "" || s[0] == 'k' {
			t.Errorf("kind %d has no name: %q", k, s)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind renders empty")
	}
}
