package pcn

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/topo"
)

// lineNet builds a 0-1-2-3 line with 100/100 balances per channel.
func lineNet(t *testing.T) *Network {
	t.Helper()
	g := topo.Line(4)
	n := New(g)
	for _, e := range g.Channels() {
		if err := n.SetBalance(e.A, e.B, 100, 100); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestFeeSchedule(t *testing.T) {
	f := FeeSchedule{Base: 2, Rate: 0.01}
	if got := f.Fee(100); got != 3 {
		t.Errorf("Fee(100) = %v, want 3", got)
	}
	if got := f.Fee(0); got != 0 {
		t.Errorf("Fee(0) = %v, want 0", got)
	}
	if got := f.Fee(-5); got != 0 {
		t.Errorf("Fee(-5) = %v, want 0", got)
	}
}

func TestSetAndGetBalance(t *testing.T) {
	n := lineNet(t)
	if got := n.Balance(0, 1); got != 100 {
		t.Errorf("Balance(0,1) = %v", got)
	}
	if err := n.SetBalance(0, 1, 70, 30); err != nil {
		t.Fatal(err)
	}
	if n.Balance(0, 1) != 70 || n.Balance(1, 0) != 30 {
		t.Errorf("directional balances = %v/%v, want 70/30", n.Balance(0, 1), n.Balance(1, 0))
	}
	if n.Capacity(0, 1) != 100 {
		t.Errorf("Capacity = %v, want 100", n.Capacity(0, 1))
	}
	if n.Balance(0, 3) != 0 {
		t.Error("missing channel should report zero balance")
	}
	if err := n.SetBalance(0, 3, 1, 1); err == nil {
		t.Error("SetBalance on missing channel should fail")
	}
	if err := n.SetBalance(0, 1, -1, 5); err == nil {
		t.Error("negative balance accepted")
	}
}

func TestSetFee(t *testing.T) {
	n := lineNet(t)
	fee := FeeSchedule{Rate: 0.02}
	if err := n.SetFee(1, 2, fee); err != nil {
		t.Fatal(err)
	}
	if got := n.Fee(1, 2); got != fee {
		t.Errorf("Fee(1,2) = %+v", got)
	}
	if got := n.Fee(2, 1); got != (FeeSchedule{}) {
		t.Errorf("reverse direction fee should be unset, got %+v", got)
	}
	if err := n.SetFee(0, 3, fee); err == nil {
		t.Error("SetFee on missing channel should fail")
	}
}

func TestBeginValidation(t *testing.T) {
	n := lineNet(t)
	if _, err := n.Begin(0, 0, 5); err == nil {
		t.Error("self-payment accepted")
	}
	if _, err := n.Begin(0, 3, 0); err == nil {
		t.Error("zero demand accepted")
	}
	if _, err := n.Begin(0, 3, -2); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestProbe(t *testing.T) {
	n := lineNet(t)
	n.SetFee(0, 1, FeeSchedule{Rate: 0.01})
	tx, err := n.Begin(0, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	path := []topo.NodeID{0, 1, 2, 3}
	info, err := tx.Probe(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(info) != 3 {
		t.Fatalf("info len = %d", len(info))
	}
	if info[0].Available != 100 || info[0].Fee.Rate != 0.01 {
		t.Errorf("hop 0 info = %+v", info[0])
	}
	if tx.ProbeMessages() != 6 {
		t.Errorf("probe messages = %d, want 2*3", tx.ProbeMessages())
	}
	if n.ProbeMessages() != 6 {
		t.Errorf("network probe messages = %d, want 6", n.ProbeMessages())
	}
}

func TestProbeInvalidPath(t *testing.T) {
	n := lineNet(t)
	tx, _ := n.Begin(0, 3, 10)
	if _, err := tx.Probe([]topo.NodeID{0, 2, 3}); err == nil {
		t.Error("probe over missing channel accepted")
	}
	if _, err := tx.Probe([]topo.NodeID{1, 2, 3}); err == nil {
		t.Error("probe not starting at sender accepted")
	}
	if _, err := tx.Probe([]topo.NodeID{0}); err == nil {
		t.Error("degenerate path accepted")
	}
}

func TestHoldCommitMovesBalances(t *testing.T) {
	n := lineNet(t)
	total := n.TotalFunds()
	tx, _ := n.Begin(0, 3, 40)
	path := []topo.NodeID{0, 1, 2, 3}
	if err := tx.Hold(path, 40); err != nil {
		t.Fatal(err)
	}
	if got := n.Available(0, 1); got != 60 {
		t.Errorf("available after hold = %v, want 60", got)
	}
	if got := n.Balance(0, 1); got != 100 {
		t.Errorf("balance should be untouched before commit, got %v", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := n.Balance(0, 1); got != 60 {
		t.Errorf("balance(0→1) = %v, want 60", got)
	}
	if got := n.Balance(1, 0); got != 140 {
		t.Errorf("balance(1→0) = %v, want 140", got)
	}
	if got := n.TotalFunds(); math.Abs(got-total) > 1e-9 {
		t.Errorf("total funds changed: %v → %v", total, got)
	}
	if !tx.Finished() {
		t.Error("session should be finished")
	}
}

func TestHoldInsufficient(t *testing.T) {
	n := lineNet(t)
	n.SetBalance(1, 2, 5, 195)
	tx, _ := n.Begin(0, 3, 10)
	err := tx.Hold([]topo.NodeID{0, 1, 2, 3}, 10)
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	// Nothing must be reserved after a failed hold.
	if got := n.Available(0, 1); got != 100 {
		t.Errorf("available(0,1) = %v, want 100 after failed hold", got)
	}
	if tx.HeldTotal() != 0 {
		t.Errorf("HeldTotal = %v, want 0", tx.HeldTotal())
	}
}

func TestAbortReleasesHolds(t *testing.T) {
	n := lineNet(t)
	tx, _ := n.Begin(0, 3, 50)
	if err := tx.Hold([]topo.NodeID{0, 1, 2, 3}, 50); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := n.Available(0, 1); got != 100 {
		t.Errorf("available = %v, want 100 after abort", got)
	}
	if got := n.Balance(0, 1); got != 100 {
		t.Errorf("balance = %v, want 100 after abort", got)
	}
}

func TestMultiPathAtomicity(t *testing.T) {
	// Diamond 0-1-3, 0-2-3: hold on both then commit; both paths move.
	g := topo.New(4)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(1, 3)
	g.MustAddChannel(0, 2)
	g.MustAddChannel(2, 3)
	n := New(g)
	for _, e := range g.Channels() {
		n.SetBalance(e.A, e.B, 50, 50)
	}
	tx, _ := n.Begin(0, 3, 80)
	if err := tx.Hold([]topo.NodeID{0, 1, 3}, 40); err != nil {
		t.Fatal(err)
	}
	if err := tx.Hold([]topo.NodeID{0, 2, 3}, 40); err != nil {
		t.Fatal(err)
	}
	if tx.HeldTotal() != 80 {
		t.Errorf("HeldTotal = %v", tx.HeldTotal())
	}
	if tx.PathsUsed() != 2 {
		t.Errorf("PathsUsed = %d", tx.PathsUsed())
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Receiver node 3 gained 80 total across its two channels.
	gained := n.Balance(3, 1) + n.Balance(3, 2) - 100
	if math.Abs(gained-80) > 1e-9 {
		t.Errorf("receiver gained %v, want 80", gained)
	}
}

func TestSessionLifecycleErrors(t *testing.T) {
	n := lineNet(t)
	tx, _ := n.Begin(0, 3, 10)
	if err := tx.Commit(); err == nil {
		t.Error("commit with nothing held accepted")
	}
	tx.Hold([]topo.NodeID{0, 1, 2, 3}, 10)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrFinished) {
		t.Errorf("double commit err = %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrFinished) {
		t.Errorf("abort after commit err = %v", err)
	}
	if _, err := tx.Probe([]topo.NodeID{0, 1, 2, 3}); !errors.Is(err, ErrFinished) {
		t.Errorf("probe after commit err = %v", err)
	}
	if err := tx.Hold([]topo.NodeID{0, 1, 2, 3}, 1); !errors.Is(err, ErrFinished) {
		t.Errorf("hold after commit err = %v", err)
	}
}

func TestHoldZeroAmount(t *testing.T) {
	n := lineNet(t)
	tx, _ := n.Begin(0, 3, 10)
	if err := tx.Hold([]topo.NodeID{0, 1, 2, 3}, 0); err == nil {
		t.Error("zero-amount hold accepted")
	}
}

func TestFeesPaid(t *testing.T) {
	n := lineNet(t)
	n.SetFee(0, 1, FeeSchedule{Rate: 0.01})
	n.SetFee(1, 2, FeeSchedule{Rate: 0.02})
	n.SetFee(2, 3, FeeSchedule{Base: 1})
	tx, _ := n.Begin(0, 3, 100)
	tx.Hold([]topo.NodeID{0, 1, 2, 3}, 100)
	tx.Commit()
	want := 1.0 + 2.0 + 1.0
	if math.Abs(tx.FeesPaid()-want) > 1e-9 {
		t.Errorf("FeesPaid = %v, want %v", tx.FeesPaid(), want)
	}
}

func TestScaleBalances(t *testing.T) {
	n := lineNet(t)
	n.ScaleBalances(10)
	if got := n.Balance(0, 1); got != 1000 {
		t.Errorf("scaled balance = %v, want 1000", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	n := lineNet(t)
	snap := n.Snapshot()
	tx, _ := n.Begin(0, 3, 30)
	tx.Hold([]topo.NodeID{0, 1, 2, 3}, 30)
	tx.Commit()
	if n.Balance(0, 1) == 100 {
		t.Fatal("payment had no effect")
	}
	if err := n.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if n.Balance(0, 1) != 100 || n.ProbeMessages() != 0 {
		t.Error("restore did not reset state")
	}
	if err := n.Restore(snap[:2]); err == nil {
		t.Error("short snapshot accepted")
	}
}

func TestAssignBalancesUniform(t *testing.T) {
	g := topo.Ring(50)
	n := New(g)
	rng := rand.New(rand.NewSource(1))
	n.AssignBalancesUniform(rng, 1000, 1500)
	for _, e := range g.Channels() {
		c := n.Capacity(e.A, e.B)
		if c < 1000 || c >= 1500 {
			t.Fatalf("capacity %v outside [1000,1500)", c)
		}
		if n.Balance(e.A, e.B) != n.Balance(e.B, e.A) {
			t.Fatal("uniform assignment should split evenly")
		}
	}
}

func TestAssignBalancesLogNormal(t *testing.T) {
	g := topo.Ring(400)
	n := New(g)
	rng := rand.New(rand.NewSource(2))
	n.AssignBalancesLogNormal(rng, 250, 1.5, true)
	caps := make([]float64, 0, 400)
	for _, e := range g.Channels() {
		caps = append(caps, n.Capacity(e.A, e.B))
		if n.Balance(e.A, e.B) != n.Balance(e.B, e.A) {
			t.Fatal("even split violated")
		}
	}
	med := median(caps)
	if med < 180 || med > 340 {
		t.Errorf("capacity median = %v, want ≈250", med)
	}
	// Skewed split mode: directions should usually differ.
	n2 := New(g)
	n2.AssignBalancesLogNormal(rng, 250, 1.5, false)
	diff := 0
	for _, e := range g.Channels() {
		if n2.Balance(e.A, e.B) != n2.Balance(e.B, e.A) {
			diff++
		}
	}
	if diff < 350 {
		t.Errorf("random split produced only %d/400 asymmetric channels", diff)
	}
}

func TestAssignFeesPaper(t *testing.T) {
	g := topo.Ring(1000)
	n := New(g)
	rng := rand.New(rand.NewSource(3))
	n.AssignFeesPaper(rng)
	low, high := 0, 0
	for _, e := range g.Channels() {
		r := n.Fee(e.A, e.B).Rate
		switch {
		case r >= 0.001 && r < 0.01:
			low++
		case r >= 0.01 && r < 0.1:
			high++
		default:
			t.Fatalf("rate %v outside both bands", r)
		}
	}
	frac := float64(low) / float64(low+high)
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("low-fee fraction = %v, want ≈0.9", frac)
	}
}

func median(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// TestConservationProperty drives random hold/commit/abort sequences and
// checks the global invariants: total funds constant, no negative
// balances, per-channel capacity constant.
func TestConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := topo.BarabasiAlbert(30, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := New(g)
	n.AssignBalancesUniform(rng, 100, 200)
	total := n.TotalFunds()
	capOf := make(map[topo.Edge]float64)
	for _, e := range g.Channels() {
		capOf[e] = n.Capacity(e.A, e.B)
	}

	for trial := 0; trial < 500; trial++ {
		s := topo.NodeID(rng.Intn(30))
		r := topo.NodeID(rng.Intn(30))
		if s == r {
			continue
		}
		tx, err := n.Begin(s, r, 1+rng.Float64()*150)
		if err != nil {
			t.Fatal(err)
		}
		// Up to 3 random simple paths via repeated BFS-ish walks: use
		// direct channel or 2-hop through a common neighbour.
		held := false
		for attempt := 0; attempt < 3; attempt++ {
			path := randomPath(g, s, r, rng)
			if path == nil {
				continue
			}
			amt := 1 + rng.Float64()*50
			if tx.Hold(path, amt) == nil {
				held = true
			}
		}
		if held && rng.Float64() < 0.5 {
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := tx.Abort(); err != nil {
				t.Fatal(err)
			}
		}
		if got := n.TotalFunds(); math.Abs(got-total) > 1e-6 {
			t.Fatalf("trial %d: total funds drifted %v → %v", trial, total, got)
		}
	}
	for _, e := range g.Channels() {
		if math.Abs(n.Capacity(e.A, e.B)-capOf[e]) > 1e-6 {
			t.Fatalf("channel %v capacity drifted", e)
		}
		if n.Balance(e.A, e.B) < 0 || n.Balance(e.B, e.A) < 0 {
			t.Fatalf("negative balance on %v", e)
		}
		if n.Available(e.A, e.B) != n.Balance(e.A, e.B) {
			t.Fatalf("dangling hold on %v", e)
		}
	}
}

// randomPath returns a short simple path from s to r: the direct channel
// if present, else a 2-hop path through a random common neighbour.
func randomPath(g *topo.Graph, s, r topo.NodeID, rng *rand.Rand) []topo.NodeID {
	if g.HasChannel(s, r) && rng.Float64() < 0.5 {
		return []topo.NodeID{s, r}
	}
	nbrs := g.Neighbors(s)
	for _, i := range rng.Perm(len(nbrs)) {
		mid := nbrs[i]
		if mid != r && g.HasChannel(mid, r) {
			return []topo.NodeID{s, mid, r}
		}
	}
	if g.HasChannel(s, r) {
		return []topo.NodeID{s, r}
	}
	return nil
}

// TestConcurrentSessions exercises Network's lock under -race: many
// goroutines each run an independent payment.
func TestConcurrentSessions(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g, err := topo.BarabasiAlbert(20, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := New(g)
	n.AssignBalancesUniform(rng, 1000, 2000)
	total := n.TotalFunds()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				s := topo.NodeID(r.Intn(20))
				d := topo.NodeID(r.Intn(20))
				if s == d {
					continue
				}
				tx, err := n.Begin(s, d, 1)
				if err != nil {
					continue
				}
				path := randomPath(g, s, d, r)
				if path != nil && tx.Hold(path, 1+r.Float64()*20) == nil {
					tx.Commit()
				} else {
					tx.Abort()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if got := n.TotalFunds(); math.Abs(got-total) > 1e-6 {
		t.Errorf("total funds drifted under concurrency: %v → %v", total, got)
	}
}
