package pcn

import (
	"testing"

	"repro/internal/topo"
)

// TestProbeAllocs pins Tx.Probe's steady-state allocation count at
// exactly one — the returned HopInfo slice. The hop-resolution and
// lock-order buffers live in the Tx scratch, so a regression here means
// a probe started allocating per-hop state again (the sequential
// elephant loop probes thousands of times per simulated second).
func TestProbeAllocs(t *testing.T) {
	n := lineNet(t)
	tx, err := n.Begin(0, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	path := []topo.NodeID{0, 1, 2, 3}
	if _, err := tx.Probe(path); err != nil { // warm the Tx scratch
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := tx.Probe(path); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 1 {
		t.Fatalf("Tx.Probe allocates %v/op in steady state, want exactly 1 (the HopInfo slice)", avg)
	}
}
