package pcn

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/topo"
)

// buildDense returns a small complete-ish network where every payment
// crosses channels shared with other payments, maximising lock overlap.
func buildDense(t testing.TB, n int, bal float64) *Network {
	t.Helper()
	g := topo.New(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			g.MustAddChannel(topo.NodeID(a), topo.NodeID(b))
		}
	}
	net := New(g)
	for _, e := range g.Channels() {
		if err := net.SetBalance(e.A, e.B, bal, bal); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

// TestConcurrentPaymentsConserveFunds hammers one network with many
// goroutines running overlapping two-phase payments (hold → commit or
// abort) and checks the global invariants afterwards: total funds are
// conserved and no hold leaks. Run with -race to exercise the
// per-channel locking.
func TestConcurrentPaymentsConserveFunds(t *testing.T) {
	const (
		nodes    = 8
		workers  = 8
		payments = 200
	)
	net := buildDense(t, nodes, 1000)
	before := net.TotalFunds()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < payments; i++ {
				s := topo.NodeID(rng.Intn(nodes))
				r := topo.NodeID(rng.Intn(nodes))
				if s == r {
					continue
				}
				tx, err := net.Begin(s, r, 1+rng.Float64()*50)
				if err != nil {
					t.Error(err)
					return
				}
				// Route over a two-hop path through a random intermediary
				// (plus the direct channel), so payments contend on shared
				// channels from both sides.
				mid := topo.NodeID(rng.Intn(nodes))
				if mid != s && mid != r {
					_, _ = tx.Probe([]topo.NodeID{s, mid, r})
					_ = tx.Hold([]topo.NodeID{s, mid, r}, tx.Demand()/2)
				}
				_ = tx.Hold([]topo.NodeID{s, r}, tx.Demand()/2)
				if rng.Intn(2) == 0 && tx.PathsUsed() > 0 {
					if err := tx.Commit(); err != nil {
						t.Error(err)
						return
					}
				} else {
					if err := tx.Abort(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	after := net.TotalFunds()
	if math.Abs(after-before) > 1e-6*before {
		t.Errorf("funds not conserved: before %v, after %v", before, after)
	}
	// All sessions finished, so no channel may retain held funds.
	g := net.Graph()
	for _, e := range g.Channels() {
		if avail, bal := net.Available(e.A, e.B), net.Balance(e.A, e.B); math.Abs(avail-bal) > 1e-6 {
			t.Errorf("channel %d-%d leaked hold: available %v, balance %v", e.A, e.B, avail, bal)
		}
		if avail, bal := net.Available(e.B, e.A), net.Balance(e.B, e.A); math.Abs(avail-bal) > 1e-6 {
			t.Errorf("channel %d-%d leaked hold: available %v, balance %v", e.B, e.A, avail, bal)
		}
	}
}

// TestConcurrentHoldsNeverOverbook checks the two-phase locking
// guarantee directly: many goroutines competing to hold the same
// channel can collectively reserve at most its balance.
func TestConcurrentHoldsNeverOverbook(t *testing.T) {
	g := topo.Line(2)
	net := New(g)
	const bal = 100.0
	if err := net.SetBalance(0, 1, bal, 0); err != nil {
		t.Fatal(err)
	}

	const workers = 16
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		held float64
		txs  []*Tx
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx, err := net.Begin(0, 1, 30)
			if err != nil {
				t.Error(err)
				return
			}
			if err := tx.Hold([]topo.NodeID{0, 1}, 30); err == nil {
				mu.Lock()
				held += 30
				txs = append(txs, tx)
				mu.Unlock()
			} else {
				_ = tx.Abort()
			}
		}()
	}
	wg.Wait()
	if held > bal+1e-9 {
		t.Errorf("concurrent holds reserved %v on a %v balance", held, bal)
	}
	if want := math.Floor(bal/30) * 30; held != want {
		t.Errorf("held %v, want the full feasible %v", held, want)
	}
	for _, tx := range txs {
		if err := tx.Commit(); err != nil {
			t.Error(err)
		}
	}
	if got := net.Balance(1, 0); math.Abs(got-held) > 1e-9 {
		t.Errorf("committed balance = %v, want %v", got, held)
	}
}

// TestSnapshotRestoreDuringTraffic runs Restore concurrently with
// payments: it must not deadlock against path-ordered lock acquisition
// (both use the same ascending channel order).
func TestSnapshotRestoreDuringTraffic(t *testing.T) {
	net := buildDense(t, 6, 500)
	snap := net.Snapshot()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := topo.NodeID(rng.Intn(6))
				r := topo.NodeID((int(s) + 1 + rng.Intn(5)) % 6)
				tx, err := net.Begin(s, r, 1)
				if err != nil {
					continue
				}
				_ = tx.Hold([]topo.NodeID{s, r}, 1)
				_ = tx.Commit()
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		if err := net.Restore(snap); err != nil {
			t.Error(err)
			break
		}
		_ = net.TotalFunds()
		_ = net.Snapshot()
	}
	close(stop)
	wg.Wait()
}
