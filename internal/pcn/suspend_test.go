package pcn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/topo"
)

// TestDeferCommitSuspendResume walks the hold-span state machine:
// DeferCommit + Commit suspends (funds locked, nothing moved), Resume
// settles (funds move, CONFIRM messages and fees accounted exactly
// once).
func TestDeferCommitSuspendResume(t *testing.T) {
	n := lineNet(t)
	path := []topo.NodeID{0, 1, 2}
	tx, err := n.Begin(0, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	tx.DeferCommit()
	if err := tx.Hold(path, 30); err != nil {
		t.Fatal(err)
	}
	msgsAtHold := tx.CommitMessages()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !tx.Suspended() || !tx.Finished() {
		t.Fatalf("after deferred commit: suspended=%v finished=%v, want true/true", tx.Suspended(), tx.Finished())
	}
	// Nothing settled yet: balances unmoved, funds locked, no CONFIRM
	// messages or fees.
	if got := n.Balance(0, 1); got != 100 {
		t.Errorf("balance moved during span: bal(0→1) = %v, want 100", got)
	}
	if got := n.Available(0, 1); got != 70 {
		t.Errorf("available during span = %v, want 70 (hold locked)", got)
	}
	if tx.CommitMessages() != msgsAtHold {
		t.Errorf("CONFIRM messages counted before Resume: %d -> %d", msgsAtHold, tx.CommitMessages())
	}
	// A second Commit (or an Abort) on the suspended session is refused.
	if err := tx.Commit(); !errors.Is(err, ErrFinished) {
		t.Errorf("Commit on suspended session = %v, want ErrFinished", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrFinished) {
		t.Errorf("Abort on suspended session = %v, want ErrFinished", err)
	}

	committed, err := tx.Resume()
	if err != nil || !committed {
		t.Fatalf("Resume = (%v, %v), want (true, nil)", committed, err)
	}
	if got := n.Balance(0, 1); got != 70 {
		t.Errorf("bal(0→1) after resume = %v, want 70", got)
	}
	if got := n.Balance(1, 0); got != 130 {
		t.Errorf("bal(1→0) after resume = %v, want 130", got)
	}
	if tx.CommitMessages() != msgsAtHold+4 {
		t.Errorf("CONFIRM messages after resume = %d, want %d", tx.CommitMessages(), msgsAtHold+4)
	}
	if tx.Suspended() {
		t.Error("session still suspended after Resume")
	}
	if _, err := tx.Resume(); !errors.Is(err, ErrNotSuspended) {
		t.Errorf("double Resume = %v, want ErrNotSuspended", err)
	}
}

// TestResumeAbortsOnClosedChannel pins the churn interaction: a
// suspended payment whose held channel closes mid-span aborts at
// Resume — holds released, balances frozen in place.
func TestResumeAbortsOnClosedChannel(t *testing.T) {
	n := lineNet(t)
	path := []topo.NodeID{0, 1, 2}
	tx, _ := n.Begin(0, 2, 40)
	tx.DeferCommit()
	if err := tx.Hold(path, 40); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := n.SetChannelOpen(1, 2, false); err != nil {
		t.Fatal(err)
	}
	committed, err := tx.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("suspended payment committed across a closed channel")
	}
	// Every hold is released (the open hop too) and no balance moved.
	if got := n.Available(0, 1); got != 100 {
		t.Errorf("available(0→1) after span abort = %v, want 100 (hold released)", got)
	}
	if got := n.Balance(1, 2); got != 100 {
		t.Errorf("bal(1→2) after span abort = %v, want 100 (frozen)", got)
	}
	if tx.Suspended() {
		t.Error("session still suspended after aborting resume")
	}
}

// TestDeferredAbortIsImmediate checks that arming the seam does not
// delay failure: Abort on a defer-armed session releases holds
// immediately and the session never suspends.
func TestDeferredAbortIsImmediate(t *testing.T) {
	n := lineNet(t)
	tx, _ := n.Begin(0, 2, 25)
	tx.DeferCommit()
	if err := tx.Hold([]topo.NodeID{0, 1, 2}, 25); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if tx.Suspended() {
		t.Error("aborted session reports suspended")
	}
	if got := n.Available(0, 1); got != 100 {
		t.Errorf("available after abort = %v, want 100", got)
	}
}

// offsetNet builds the diamond used by the self-offset tests: two
// 0→3 paths crossing the 1–2 channel in opposite directions.
//
//	0 ── 1 ── 2 ── 3     path A: 0→1→2→3 (uses 1→2)
//	 \   |     \  /      path B: 0→2→1→3 (uses 2→1)
//	  ───2      ──
//
// Every direction carries 10 except the contested reverse direction
// 2→1, which carries 0 — path B is only holdable against path A's
// credit.
func offsetNet(t *testing.T) *Network {
	t.Helper()
	g := topo.New(4)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(1, 2)
	g.MustAddChannel(2, 3)
	g.MustAddChannel(0, 2)
	g.MustAddChannel(1, 3)
	n := New(g)
	for _, e := range g.Channels() {
		if err := n.SetBalance(e.A, e.B, 10, 0); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

// TestHoldSelfOffsetCredit pins the LP offset-hold fix at the pcn
// layer: a session's hold crossing a channel in reverse of its own
// earlier hold may draw on that hold as credit — the funds materialise
// when the atomic commit applies the creator first — while other
// sessions see both directions as reserved.
func TestHoldSelfOffsetCredit(t *testing.T) {
	n := offsetNet(t)
	pathA := []topo.NodeID{0, 1, 2, 3}
	pathB := []topo.NodeID{0, 2, 1, 3}

	// Without the creator hold in place, the offset path is infeasible:
	// bal(2→1) = 0.
	probe, err := n.Begin(0, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.Hold(pathB, 8); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("offset path held without creator credit: %v", err)
	}
	if err := probe.Abort(); err != nil {
		t.Fatal(err)
	}

	tx, err := n.Begin(0, 3, 18)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Hold(pathA, 10); err != nil {
		t.Fatal(err)
	}
	if err := tx.Hold(pathB, 8); err != nil {
		t.Fatalf("self-offset hold rejected: %v", err)
	}

	// A foreign session cannot borrow the credit: both directions of
	// the contested channel are reserved.
	other, _ := n.Begin(1, 2, 1)
	if err := other.Hold([]topo.NodeID{1, 2}, 1); !errors.Is(err, ErrInsufficient) {
		t.Errorf("forward over-reservation: %v", err)
	}
	if err := other.Abort(); err != nil {
		t.Fatal(err)
	}

	// Commit settles creator-first: A's 10 crosses 1→2, then B's 8
	// crosses back over the credit it created.
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if a, b := n.Balance(1, 2), n.Balance(2, 1); math.Abs(a-8) > 1e-9 || math.Abs(b-2) > 1e-9 {
		t.Errorf("contested channel post-commit = (%v, %v), want (8, 2)", a, b)
	}
	if got := n.Balance(0, 1); got != 0 {
		t.Errorf("bal(0→1) = %v, want 0", got)
	}
	if got := n.Balance(3, 2); got != 10 {
		t.Errorf("bal(3→2) = %v, want 10", got)
	}
	if got := n.Available(1, 2); math.Abs(got-8) > 1e-9 {
		t.Errorf("held funds not released: available(1→2) = %v, want 8", got)
	}
}

// TestHoldSelfOffsetAbortClean verifies the offset pair releases
// without moving funds on abort.
func TestHoldSelfOffsetAbortClean(t *testing.T) {
	n := offsetNet(t)
	tx, _ := n.Begin(0, 3, 16)
	if err := tx.Hold([]topo.NodeID{0, 1, 2, 3}, 10); err != nil {
		t.Fatal(err)
	}
	if err := tx.Hold([]topo.NodeID{0, 2, 1, 3}, 6); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	for _, e := range n.Graph().Channels() {
		if a, b := n.Balance(e.A, e.B), n.Balance(e.B, e.A); a != 10 || b != 0 {
			t.Errorf("abort moved funds on %d-%d: (%v, %v), want (10, 0)", e.A, e.B, a, b)
		}
		if got := n.Available(e.A, e.B); got != 10 {
			t.Errorf("holds not fully released on %d-%d: available = %v, want 10", e.A, e.B, got)
		}
	}
}
