package pcn

import (
	"sync"
	"testing"

	"repro/internal/topo"
)

// TestConcurrentProbeSingleSession hammers Probe on a single Tx from
// many goroutines — the one concurrent use the session contract
// sanctions (route.ParallelProber), and exactly what Flash's
// speculative probe pipeline does. Run with -race to exercise the
// scratch-buffer claim/pool handoff. Afterwards the per-session probe
// accounting must equal the sum of all calls, every observed snapshot
// must match the quiescent network, and the session must still hold
// and commit normally (the scratch must have been released).
func TestConcurrentProbeSingleSession(t *testing.T) {
	const (
		nodes   = 8
		balance = 500.0
		workers = 8
		rounds  = 200
	)
	net := buildDense(t, nodes, balance)
	tx, err := net.Begin(0, topo.NodeID(nodes-1), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !tx.SupportsParallelProbe() {
		t.Fatal("Tx must advertise parallel probe support")
	}

	// A mix of 1-hop and 2-hop sender→receiver paths, so concurrent
	// probes resolve different hop counts into the shared scratch.
	paths := [][]topo.NodeID{{0, topo.NodeID(nodes - 1)}}
	for mid := 1; mid < nodes-1; mid++ {
		paths = append(paths, []topo.NodeID{0, topo.NodeID(mid), topo.NodeID(nodes - 1)})
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				p := paths[(w+i)%len(paths)]
				info, err := tx.Probe(p)
				if err != nil {
					errs[w] = err
					return
				}
				// The network is quiescent, so every snapshot must show
				// the full funding on both sides of every hop.
				for h := range info {
					if info[h].Available != balance || info[h].ReverseAvailable != balance {
						t.Errorf("worker %d: hop %d of %v probed %v/%v, want %v/%v",
							w, h, p, info[h].Available, info[h].ReverseAvailable, balance, balance)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	// Accounting: each call costs 2·hops messages; workers cycle
	// through the path list in lockstep offsets.
	want := 0
	for w := 0; w < workers; w++ {
		for i := 0; i < rounds; i++ {
			want += 2 * (len(paths[(w+i)%len(paths)]) - 1)
		}
	}
	if got := tx.ProbeMessages(); got != want {
		t.Errorf("ProbeMessages = %d, want %d", got, want)
	}

	// The session must still work sequentially after the storm.
	if err := tx.Hold(paths[0], 10); err != nil {
		t.Fatalf("post-storm hold: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("post-storm commit: %v", err)
	}
}
