package pcn

import (
	"math"
	"sync"
	"testing"

	"repro/internal/topo"
)

// spanFixture builds a funded line network with one suspended session
// holding amount across the full path.
func spanFixture(t *testing.T, amount float64) (*Network, *Tx) {
	t.Helper()
	g := topo.Line(4)
	net := New(g)
	for _, e := range g.Channels() {
		if err := net.SetBalance(e.A, e.B, 100, 100); err != nil {
			t.Fatal(err)
		}
	}
	tx, err := net.Begin(0, 3, amount)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Hold([]topo.NodeID{0, 1, 2, 3}, amount); err != nil {
		t.Fatal(err)
	}
	tx.DeferCommit()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !tx.Suspended() {
		t.Fatal("deferred commit did not suspend the session")
	}
	return net, tx
}

// TestExpireResumeRaceExactlyOnce hammers the span claim under the
// race detector: for each suspended session, one goroutine resumes
// while another expires, concurrently. Exactly one must win —
// claiming the span and settling the funds — while the loser observes
// ErrNotSuspended; whichever way the race falls, total funds are
// conserved and no escrow is left behind.
func TestExpireResumeRaceExactlyOnce(t *testing.T) {
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		net, tx := spanFixture(t, 10)
		total := net.TotalFunds()

		var (
			wg        sync.WaitGroup
			resumeErr error
			resumeOK  bool
			expireErr error
			start     = make(chan struct{})
		)
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			resumeOK, resumeErr = tx.Resume()
		}()
		go func() {
			defer wg.Done()
			<-start
			expireErr = tx.Expire()
		}()
		close(start)
		wg.Wait()

		resumeWon := resumeErr == nil
		expireWon := expireErr == nil
		if resumeWon == expireWon {
			t.Fatalf("trial %d: want exactly one winner, got resume(ok=%v,err=%v) expire(err=%v)",
				trial, resumeOK, resumeErr, expireErr)
		}
		if resumeErr != nil && resumeErr != ErrNotSuspended {
			t.Fatalf("trial %d: losing Resume returned %v, want ErrNotSuspended", trial, resumeErr)
		}
		if expireErr != nil && expireErr != ErrNotSuspended {
			t.Fatalf("trial %d: losing Expire returned %v, want ErrNotSuspended", trial, expireErr)
		}
		if tx.Suspended() {
			t.Fatalf("trial %d: session still suspended after the race", trial)
		}
		if got := net.TotalFunds(); math.Abs(got-total) > 1e-9 {
			t.Fatalf("trial %d: total funds drifted %v -> %v", trial, total, got)
		}
		// The settled session is terminal: both operations now refuse.
		if _, err := tx.Resume(); err != ErrNotSuspended {
			t.Fatalf("trial %d: second Resume returned %v", trial, err)
		}
		if err := tx.Expire(); err != ErrNotSuspended {
			t.Fatalf("trial %d: second Expire returned %v", trial, err)
		}
		if resumeWon && resumeOK {
			// A winning resume on an intact path must have moved the
			// amount to the receiver side of the last hop.
			if got := net.Balance(3, 2); math.Abs(got-110) > 1e-9 {
				t.Fatalf("trial %d: receiver-side balance %v after commit, want 110", trial, got)
			}
		}
		if expireWon {
			// A winning expiry must have released every hold in place.
			if got := net.Balance(0, 1); math.Abs(got-100) > 1e-9 {
				t.Fatalf("trial %d: sender-side balance %v after expiry, want 100", trial, got)
			}
		}
	}
}

// TestExpireChargesSettleLatency pins the latency accounting of the
// expiry path: tearing a span down sends REVERSE legs, so the
// session's resume latency matches the held path's round-trip cost.
func TestExpireChargesSettleLatency(t *testing.T) {
	g := topo.Line(4)
	net := New(g)
	for _, e := range g.Channels() {
		if err := net.SetBalance(e.A, e.B, 100, 100); err != nil {
			t.Fatal(err)
		}
		if err := net.SetLatency(e.A, e.B, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	tx, err := net.Begin(0, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Hold([]topo.NodeID{0, 1, 2, 3}, 10); err != nil {
		t.Fatal(err)
	}
	tx.DeferCommit()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	want := tx.ResumeLatencyNanos()
	if want != 3*10_000_000 { // 3 hops × 10ms
		t.Fatalf("ResumeLatencyNanos = %d, want 30ms of REVERSE legs", want)
	}
	before := tx.CommitLatencyNanos()
	if err := tx.Expire(); err != nil {
		t.Fatal(err)
	}
	if got := tx.CommitLatencyNanos() - before; got != want {
		t.Errorf("expiry charged %dns, want %dns", got, want)
	}
}
