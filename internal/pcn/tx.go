package pcn

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/topo"
)

// Errors returned by payment sessions.
var (
	ErrInsufficient = errors.New("pcn: insufficient balance on path")
	ErrFinished     = errors.New("pcn: session already committed or aborted")
	ErrBadPath      = errors.New("pcn: invalid path")
	ErrNotSuspended = errors.New("pcn: session is not suspended")
)

// Tx is one payment session: the sender's handle for probing paths,
// holding partial payments on them, and finally committing or aborting
// the whole payment atomically. It mirrors the prototype's protocol
// (§5.1): Probe ≈ PROBE/PROBE_ACK, Hold ≈ COMMIT/COMMIT_ACK, Commit ≈
// CONFIRM/CONFIRM_ACK, Abort ≈ REVERSE/REVERSE_ACK.
//
// A Tx is driven by a single goroutine and finished with exactly one
// Commit or Abort, with one sanctioned exception: Probe is safe for
// concurrent calls on the same session (Tx implements
// route.ParallelProber), which is what lets Flash's speculative probe
// pipeline measure several candidate paths in one round trip's worth
// of latency. Concurrent probes must not overlap Hold, Commit, Abort
// or Resume — the caller fences them (Flash joins its probe pool
// before holding). Any number of Tx values may run concurrently over
// one Network: each operation locks only the channels it touches, in
// ascending channel-index order (see the package comment).
//
// # Hold-span state machine
//
// By default Commit settles immediately. DeferCommit arms the
// hold-span seam used by the dynamic simulator to let a payment's
// reservations persist across virtual time:
//
//	active ──Hold──▶ active ──Commit──▶ suspended ──Resume──▶ committed
//	   │                │                    │                (funds move)
//	   │                └──Abort──▶ aborted  └──Resume──▶ aborted
//	   │                        (holds released)    (a held channel closed
//	   └──Abort──▶ aborted                           mid-span: HTLC-style
//	                                                 timeout, holds released)
//
// While suspended the session is Finished from the router's point of
// view (the routing decision is made, exactly one Commit was called)
// but its funds are still locked on the network: other payments probe
// and hold against the depleted residuals until Resume settles the
// span. Resume may be called from a different goroutine than the one
// that ran the session, provided the handoff happens-before (the
// dynamic engine passes suspended sessions through a channel).
type Tx struct {
	net      *Network
	sender   topo.NodeID
	receiver topo.NodeID
	demand   float64

	rng       *rand.Rand
	rngSeed   int64
	rngSeeded bool

	holds       []holdRecord
	finished    bool
	deferCommit bool
	suspended   bool
	// spanMu guards the suspended flag's check-and-clear so a deadline
	// expiry racing a resume on the same span resolves to exactly one
	// winner (the loser sees ErrNotSuspended). All other Tx state keeps
	// the single-goroutine / happens-before contract.
	spanMu sync.Mutex

	probeMsgs      atomic.Int64 // atomic: Probe may run concurrently
	probeOps       atomic.Int64 // distinct Probe calls, same concurrency note
	probeLatNanos  atomic.Int64 // virtual probe latency charged, same concurrency note
	commitMsgs     int
	commitLatNanos int64 // virtual commit-phase latency charged
	feesPaid       float64

	// Reusable scratch for the per-operation hop resolution and lock
	// ordering, keeping Probe/Hold free of per-call slice allocations.
	// Hold/Commit/Abort (single-goroutine by contract) use it directly;
	// Probe — which may run concurrently with other Probes — claims it
	// with a compare-and-swap and falls back to a pooled buffer when
	// another probe got there first, so the sequential fast path stays
	// at one allocation per op (the returned info slice).
	scratch     txScratch
	scratchBusy atomic.Bool
}

// txScratch is the reusable hop-resolution and lock-ordering buffer of
// one probe/hold operation.
type txScratch struct {
	lock []int
	hops []pathHop
}

// scratchPool backs the overflow scratch buffers of concurrent probes.
var scratchPool = sync.Pool{New: func() any { return new(txScratch) }}

// acquireScratch claims the Tx-owned scratch, or draws a pooled one
// when a concurrent probe already holds it.
func (t *Tx) acquireScratch() *txScratch {
	if t.scratchBusy.CompareAndSwap(false, true) {
		return &t.scratch
	}
	return scratchPool.Get().(*txScratch)
}

// releaseScratch returns a scratch obtained from acquireScratch.
func (t *Tx) releaseScratch(sc *txScratch) {
	if sc == &t.scratch {
		t.scratchBusy.Store(false)
		return
	}
	scratchPool.Put(sc)
}

// pathHop is one directed hop resolved to its channel index and
// direction.
type pathHop struct {
	idx int
	dir int
}

type holdRecord struct {
	path   []topo.NodeID
	hops   []pathHop
	amount float64
}

// Begin opens a payment session for amount demand from sender to
// receiver.
func (n *Network) Begin(sender, receiver topo.NodeID, demand float64) (*Tx, error) {
	if demand <= 0 {
		return nil, fmt.Errorf("pcn: demand must be positive, got %v", demand)
	}
	if sender == receiver {
		return nil, fmt.Errorf("pcn: sender and receiver are both node %d", sender)
	}
	return &Tx{net: n, sender: sender, receiver: receiver, demand: demand}, nil
}

// Graph returns the sender's local topology view (§3.1): connectivity
// without balances.
func (t *Tx) Graph() *topo.Graph { return t.net.graph }

// Sender returns the paying node.
func (t *Tx) Sender() topo.NodeID { return t.sender }

// Receiver returns the paid node.
func (t *Tx) Receiver() topo.NodeID { return t.receiver }

// Demand returns the payment amount.
func (t *Tx) Demand() float64 { return t.demand }

// SetRNG attaches a deterministic per-payment random source to the
// session. Routers that make random choices (e.g. Flash's mice path
// order) use it when present instead of their shared generator, so a
// concurrent replay's random decisions depend only on the payment, not
// on worker scheduling.
func (t *Tx) SetRNG(rng *rand.Rand) { t.rng, t.rngSeeded = rng, false }

// SetRNGSeed is SetRNG with lazy construction: the rand.Rand (whose
// source seeds a ~5KB table) is only built if a router actually asks
// for randomness — elephants and non-random routers never pay for it.
func (t *Tx) SetRNGSeed(seed int64) { t.rng, t.rngSeed, t.rngSeeded = nil, seed, true }

// RNG returns the session's per-payment random source, or nil when none
// was attached (implements route.RandSource).
func (t *Tx) RNG() *rand.Rand {
	if t.rng == nil && t.rngSeeded {
		t.rng = rand.New(rand.NewSource(t.rngSeed))
	}
	return t.rng
}

// validPath checks that path starts at the sender, ends at the
// receiver, and every consecutive pair shares a channel.
func (t *Tx) validPath(path []topo.NodeID) error {
	if len(path) < 2 || path[0] != t.sender || path[len(path)-1] != t.receiver {
		return ErrBadPath
	}
	for i := 0; i+1 < len(path); i++ {
		if !t.net.graph.HasChannel(path[i], path[i+1]) {
			return fmt.Errorf("%w: no channel %d-%d", ErrBadPath, path[i], path[i+1])
		}
	}
	return nil
}

// resolvePathInto appends every hop of path, mapped to its channel
// index and direction, to buf. Callers pass a retained buffer (Hold,
// whose records outlive the call) or the Tx scratch (Probe).
func (t *Tx) resolvePathInto(buf []pathHop, path []topo.NodeID) ([]pathHop, error) {
	for i := 0; i+1 < len(path); i++ {
		idx, d, err := t.net.dir(path[i], path[i+1])
		if err != nil {
			return nil, err
		}
		buf = append(buf, pathHop{idx: idx, dir: d})
	}
	return buf, nil
}

// lockOrderInto appends the distinct channel indices of hops to buf in
// ascending order — the global acquisition order that makes
// multi-channel locking deadlock-free. The result reuses buf's backing
// array.
func lockOrderInto(buf []int, hops []pathHop) []int {
	s := buf[:0]
	for _, h := range hops {
		s = append(s, h.idx)
	}
	sort.Ints(s)
	return slices.Compact(s)
}

// lockOrder is lockOrderInto over the Tx-owned scratch buffer; the
// result is valid until the next lockOrder/holdLockOrder call. Only
// the single-goroutine operations (Hold, Commit, Abort, Resume) may
// use it — Probe goes through acquireScratch instead.
func (t *Tx) lockOrder(hops []pathHop) []int {
	t.scratch.lock = lockOrderInto(t.scratch.lock, hops)
	return t.scratch.lock
}

// lockChannels acquires the locks of the given channels; idxs must be
// ascending and duplicate-free (as produced by lockOrder).
func (n *Network) lockChannels(idxs []int) {
	for _, i := range idxs {
		n.chans[i].mu.Lock()
	}
}

// unlockChannels releases locks taken by lockChannels.
func (n *Network) unlockChannels(idxs []int) {
	for i := len(idxs) - 1; i >= 0; i-- {
		n.chans[idxs[i]].mu.Unlock()
	}
}

// Probe sends a probe along path and returns, per hop, the available
// balance and fee schedule. It costs 2·hops probe messages (the probe
// travels to the receiver and the acknowledgement returns). All on-path
// channels are read under their locks together, so the result is a
// consistent snapshot even while other payments commit concurrently.
//
// Probe is safe for concurrent calls on the same session — the one Tx
// operation that is. Flash's probe pipeline exploits this to measure
// several speculative candidate paths at once; each call claims the
// Tx scratch buffer or falls back to a pooled one, so the sequential
// caller still pays a single allocation (the info slice) per probe.
func (t *Tx) Probe(path []topo.NodeID) ([]HopInfo, error) {
	if t.finished {
		return nil, ErrFinished
	}
	if err := t.validPath(path); err != nil {
		return nil, err
	}
	sc := t.acquireScratch()
	defer t.releaseScratch(sc)
	hops, err := t.resolvePathInto(sc.hops[:0], path)
	if err != nil {
		return nil, err
	}
	sc.hops = hops
	info := make([]HopInfo, len(hops))
	sc.lock = lockOrderInto(sc.lock, hops)
	order := sc.lock
	t.net.lockChannels(order)
	for i, h := range hops {
		ch := &t.net.chans[h.idx]
		d := h.dir
		info[i] = HopInfo{
			Fee:        ch.fee[d],
			ReverseFee: ch.fee[1-d],
		}
		// A closed channel probes like a depleted one: zero availability
		// in both directions (the probed node reports it cannot forward).
		if !ch.closed {
			info[i].Available = ch.bal[d] - ch.held[d]
			info[i].ReverseAvailable = ch.bal[1-d] - ch.held[1-d]
		}
	}
	t.net.unlockChannels(order)
	t.net.probeMessages.Add(int64(2 * len(hops)))
	t.probeMsgs.Add(int64(2 * len(hops)))
	t.probeOps.Add(1)
	if t.net.hasLatency.Load() {
		t.probeLatNanos.Add(hopsLatNanos(t.net, hops))
	}
	return info, nil
}

// hopsLatNanos sums the virtual RTT of every hop — the cost of one
// protocol leg travelling the path and its acknowledgement returning.
func hopsLatNanos(n *Network, hops []pathHop) int64 {
	var lat int64
	for _, h := range hops {
		lat += n.latencyNanos(h.idx)
	}
	return lat
}

// SupportsParallelProbe reports that concurrent Probe calls on this
// session are safe (route.ParallelProber): Probe takes no session-level
// locks beyond a scratch-buffer claim and reads channel state under the
// per-channel locks. The testbed's TCP session does not implement the
// interface, so routers fall back to sequential probing there.
func (t *Tx) SupportsParallelProbe() bool { return true }

// LocalBalance returns the available balance of hop u→v without any
// message cost. It models knowledge a node has of its own channels
// (used by hop-by-hop schemes such as SpeedyMurmurs, where each
// forwarding node checks only its local links).
func (t *Tx) LocalBalance(u, v topo.NodeID) float64 {
	return t.net.Available(u, v)
}

// Hold reserves amount along every hop of path — the first phase of the
// two-phase commit. On success the funds are locked until Commit or
// Abort. If any hop lacks balance, nothing is reserved and
// ErrInsufficient is returned (the prototype's COMMIT_NACK + REVERSE of
// the prefix). Either way the attempt costs 2·hops commit messages.
// Feasibility check and reservation happen under the locks of all
// on-path channels, so two conflicting concurrent holds can never both
// succeed on balance only one of them can have.
func (t *Tx) Hold(path []topo.NodeID, amount float64) error {
	if t.finished {
		return ErrFinished
	}
	if amount <= 0 {
		return fmt.Errorf("pcn: hold amount must be positive, got %v", amount)
	}
	if err := t.validPath(path); err != nil {
		return err
	}
	hops, err := t.resolvePathInto(make([]pathHop, 0, len(path)-1), path)
	if err != nil {
		return err
	}
	t.net.commitMessages.Add(int64(2 * len(hops)))
	t.commitMsgs += 2 * len(hops)
	if t.net.hasLatency.Load() {
		t.commitLatNanos += hopsLatNanos(t.net, hops) // COMMIT + COMMIT_ACK leg
	}
	order := t.lockOrder(hops)
	t.net.lockChannels(order)
	defer t.net.unlockChannels(order)
	// Phase 1a: feasibility check. A closed channel rejects like a
	// depleted one — routers already handle the capacity-failure path.
	// A hop short on free balance may still be covered by the session's
	// own earlier holds on the reverse direction (self-offset credit):
	// Commit applies holds in placement order, so by the time this hop's
	// reservation settles, the session's prior reverse-direction holds
	// have already moved their funds onto this side. This is what makes
	// the fee LP's offset allocations (paths crossing a shared channel
	// in opposite directions) holdable at all — the credit they rely on
	// is otherwise only materialised at commit time.
	for _, h := range hops {
		ch := &t.net.chans[h.idx]
		if ch.closed {
			return ErrInsufficient
		}
		if avail := ch.bal[h.dir] - ch.held[h.dir]; avail < amount-balanceEpsilon &&
			avail+t.ownHeld(h.idx, 1-h.dir) < amount-balanceEpsilon {
			return ErrInsufficient
		}
	}
	// Phase 1b: reserve.
	for _, h := range hops {
		t.net.chans[h.idx].held[h.dir] += amount
	}
	t.holds = append(t.holds, holdRecord{
		path:   append([]topo.NodeID(nil), path...),
		hops:   hops,
		amount: amount,
	})
	t.net.holdsPlaced.Add(1)
	return nil
}

// balanceEpsilon absorbs float64 rounding when a hold asks for exactly
// the probed balance.
const balanceEpsilon = 1e-9

// ownHeld sums the session's active holds on channel idx in direction
// d — the self-offset credit a later hold on the opposite direction
// may draw against. Sessions hold at most a handful of paths, so the
// scan is cheap and only runs when the plain feasibility check fails.
func (t *Tx) ownHeld(idx, d int) float64 {
	total := 0.0
	for _, h := range t.holds {
		for _, ph := range h.hops {
			if ph.idx == idx && ph.dir == d {
				total += h.amount
			}
		}
	}
	return total
}

// HeldTotal returns the amount currently reserved by this session
// across all its partial payments.
func (t *Tx) HeldTotal() float64 {
	total := 0.0
	for _, h := range t.holds {
		total += h.amount
	}
	return total
}

// holdLockOrder returns the distinct channel indices across all of the
// session's holds, ascending — the acquisition order for the atomic
// commit/abort of a multi-path payment. Shares the Tx scratch buffer
// with lockOrder.
func (t *Tx) holdLockOrder() []int {
	s := t.scratch.lock[:0]
	for _, h := range t.holds {
		for _, ph := range h.hops {
			s = append(s, ph.idx)
		}
	}
	sort.Ints(s)
	s = slices.Compact(s)
	t.scratch.lock = s
	return s
}

// Commit finalises all held partial payments atomically: every hop u→v
// moves the held amount from bal(u→v) to bal(v→u), exactly the
// prototype's CONFIRM_ACK processing. All channels touched by any hold
// are locked together (in the global ascending order), so concurrent
// observers see either none or all of the payment's transfers. Fees for
// every hop are accounted in FeesPaid. Commit with nothing held is an
// error.
//
// After DeferCommit, Commit instead records the decision and leaves
// the session suspended with its funds still locked; Resume settles
// the span later. See the hold-span state machine on Tx.
func (t *Tx) Commit() error {
	if t.finished {
		return ErrFinished
	}
	if len(t.holds) == 0 {
		return errors.New("pcn: nothing held to commit")
	}
	if t.deferCommit {
		t.spanMu.Lock()
		t.suspended = true
		t.spanMu.Unlock()
		t.finished = true // the routing decision is made; only Resume or Expire may follow
		return nil
	}
	order := t.holdLockOrder()
	t.net.lockChannels(order)
	defer t.net.unlockChannels(order)
	t.applyCommitLocked()
	t.finished = true
	return nil
}

// applyCommitLocked moves every held amount and accounts the CONFIRM
// messages and fees. Callers must hold the locks of holdLockOrder().
// Holds are applied strictly in placement order: a hold that drew
// self-offset credit from an earlier reverse-direction hold (see Hold)
// is only sound because its creditor settles first.
func (t *Tx) applyCommitLocked() {
	t.net.holdsCommitted.Add(int64(len(t.holds)))
	if t.net.hasLatency.Load() {
		t.commitLatNanos += t.settleLatNanos() // CONFIRM legs, concurrent across paths
	}
	for _, h := range t.holds {
		hops := len(h.path) - 1
		t.net.commitMessages.Add(int64(2 * hops)) // CONFIRM + CONFIRM_ACK
		t.commitMsgs += 2 * hops
		for _, ph := range h.hops {
			ch := &t.net.chans[ph.idx]
			d := ph.dir
			ch.held[d] = clampDust(ch.held[d] - h.amount)
			ch.bal[d] -= h.amount
			ch.bal[1-d] += h.amount
			if ch.bal[d] < 0 {
				// Holds guarantee this cannot happen; clamp rounding dust.
				ch.bal[1-d] += ch.bal[d]
				ch.bal[d] = 0
			}
			t.feesPaid += ch.fee[d].Fee(h.amount)
		}
	}
}

// Abort releases all holds without moving any balance — the prototype's
// REVERSE path.
func (t *Tx) Abort() error {
	if t.finished {
		return ErrFinished
	}
	order := t.holdLockOrder()
	t.net.lockChannels(order)
	defer t.net.unlockChannels(order)
	t.releaseHoldsLocked()
	t.finished = true
	return nil
}

// releaseHoldsLocked returns every reservation and accounts the
// REVERSE messages. Callers must hold the locks of holdLockOrder().
func (t *Tx) releaseHoldsLocked() {
	t.net.holdsAborted.Add(int64(len(t.holds)))
	if t.net.hasLatency.Load() {
		t.commitLatNanos += t.settleLatNanos() // REVERSE legs, concurrent across paths
	}
	for _, h := range t.holds {
		hops := len(h.path) - 1
		t.net.commitMessages.Add(int64(2 * hops)) // REVERSE + REVERSE_ACK
		t.commitMsgs += 2 * hops
		for _, ph := range h.hops {
			ch := &t.net.chans[ph.idx]
			ch.held[ph.dir] = clampDust(ch.held[ph.dir] - h.amount)
		}
	}
}

// DeferCommit arms the hold-span seam (route.Yielder): the next Commit
// suspends the session — funds stay locked on the network — instead of
// settling, and Resume finishes the job later. Abort is unaffected:
// a failed payment releases its holds immediately.
func (t *Tx) DeferCommit() { t.deferCommit = true }

// Suspended reports whether the session sits between a deferred Commit
// and its Resume (or Expire), with funds still locked on the network.
func (t *Tx) Suspended() bool {
	t.spanMu.Lock()
	defer t.spanMu.Unlock()
	return t.suspended
}

// claimSpan atomically transitions the session out of the suspended
// state, returning whether the caller won the claim. Resume and Expire
// both go through it, so a deadline firing against a racing resume
// settles the span exactly once.
func (t *Tx) claimSpan() bool {
	t.spanMu.Lock()
	defer t.spanMu.Unlock()
	if !t.suspended {
		return false
	}
	t.suspended = false
	return true
}

// Resume settles a suspended session: if every held channel is still
// open the deferred commit applies (funds move, CONFIRM messages and
// fees are accounted) and Resume returns true; if any held channel was
// closed during the span the whole payment aborts HTLC-timeout style —
// every hold is released, REVERSE messages are accounted — and Resume
// returns false. Calling Resume on a session that is not suspended
// returns ErrNotSuspended.
func (t *Tx) Resume() (bool, error) {
	if !t.claimSpan() {
		return false, ErrNotSuspended
	}
	order := t.holdLockOrder()
	t.net.lockChannels(order)
	defer t.net.unlockChannels(order)
	for _, h := range t.holds {
		for _, ph := range h.hops {
			if t.net.chans[ph.idx].closed {
				t.releaseHoldsLocked()
				return false, nil
			}
		}
	}
	t.applyCommitLocked()
	return true, nil
}

// Expire tears down a suspended span at its HTLC-style deadline: every
// hold is released (REVERSE messages and settle latency are accounted)
// and the payment counts as failed. Expire and Resume race safely on a
// shared span — the suspended flag is claimed atomically, so exactly
// one of them settles the funds and the other gets ErrNotSuspended.
func (t *Tx) Expire() error {
	if !t.claimSpan() {
		return ErrNotSuspended
	}
	order := t.holdLockOrder()
	t.net.lockChannels(order)
	defer t.net.unlockChannels(order)
	t.releaseHoldsLocked()
	return nil
}

// clampDust zeroes float64 residue left by add/subtract round-off so a
// fully released channel reports exactly zero held funds.
func clampDust(v float64) float64 {
	if v < balanceEpsilon && v > -balanceEpsilon {
		return 0
	}
	return v
}

// settleLatNanos is the virtual latency of settling the session's
// holds: the CONFIRM (or REVERSE) legs of all held paths travel
// concurrently, so the cost is the max over paths, each path costing
// the sum of its hop RTTs.
func (t *Tx) settleLatNanos() int64 {
	var lat int64
	for _, h := range t.holds {
		if l := hopsLatNanos(t.net, h.hops); l > lat {
			lat = l
		}
	}
	return lat
}

// ResumeLatencyNanos returns the virtual latency a Resume (or Expire)
// of this session will charge — the concurrent settle legs over every
// held path. The dynamic engine reads it when scheduling a suspended
// span's settle event.
func (t *Tx) ResumeLatencyNanos() int64 {
	if !t.net.hasLatency.Load() {
		return 0
	}
	return t.settleLatNanos()
}

// PathLatencyNanos returns the virtual RTT sum along path in integer
// nanoseconds — what one probe of that path costs
// (route.LatencyMeter). Unknown hops count zero; without latency
// assignment it is 0 for every path, keeping the feature-off fast
// path branch-cheap.
func (t *Tx) PathLatencyNanos(path []topo.NodeID) int64 {
	if !t.net.hasLatency.Load() {
		return 0
	}
	var lat int64
	for i := 0; i+1 < len(path); i++ {
		if idx, _, err := t.net.dir(path[i], path[i+1]); err == nil {
			lat += t.net.latencyNanos(idx)
		}
	}
	return lat
}

// CreditProbeLatency subtracts nanos from the session's charged probe
// latency (route.LatencyMeter). Flash's speculative probe pipeline
// calls it after each parallel round: the round's candidates were
// probed concurrently, so the wall-virtual cost is the max over the
// round, not the sum Probe charged — the pipeline credits the
// difference back. Integer nanos make the correction exact in any
// interleaving.
func (t *Tx) CreditProbeLatency(nanos int64) { t.probeLatNanos.Add(-nanos) }

// ProbeLatencyNanos returns the virtual probe latency this session has
// been charged, in integer nanoseconds (0 unless the network carries
// latencies).
func (t *Tx) ProbeLatencyNanos() int64 { return t.probeLatNanos.Load() }

// CommitLatencyNanos returns the virtual commit-phase latency this
// session has been charged — COMMIT legs of every hold plus the settle
// legs once the session commits, aborts, resumes or expires.
func (t *Tx) CommitLatencyNanos() int64 { return t.commitLatNanos }

// Finished reports whether the session has been committed or aborted.
func (t *Tx) Finished() bool { return t.finished }

// ProbeMessages returns the probe messages this session has sent.
func (t *Tx) ProbeMessages() int { return int(t.probeMsgs.Load()) }

// ProbeOps returns the number of distinct Probe calls this session has
// made — probe rounds, as opposed to the per-hop messages they cost
// (route.ProbeCounter).
func (t *Tx) ProbeOps() int { return int(t.probeOps.Load()) }

// CommitMessages returns the commit-phase messages this session has
// sent.
func (t *Tx) CommitMessages() int { return t.commitMsgs }

// FeesPaid returns the total fees charged by intermediate channels for
// the committed partial payments. Fees are an accounting metric (the
// paper's Figure 9 reports fee-to-volume ratios); they are not deducted
// from channel balances.
func (t *Tx) FeesPaid() float64 { return t.feesPaid }

// PathsUsed returns the number of partial payments held (distinct path
// uses).
func (t *Tx) PathsUsed() int { return len(t.holds) }
