package pcn

import (
	"errors"
	"fmt"

	"repro/internal/topo"
)

// Errors returned by payment sessions.
var (
	ErrInsufficient = errors.New("pcn: insufficient balance on path")
	ErrFinished     = errors.New("pcn: session already committed or aborted")
	ErrBadPath      = errors.New("pcn: invalid path")
)

// Tx is one payment session: the sender's handle for probing paths,
// holding partial payments on them, and finally committing or aborting
// the whole payment atomically. It mirrors the prototype's protocol
// (§5.1): Probe ≈ PROBE/PROBE_ACK, Hold ≈ COMMIT/COMMIT_ACK, Commit ≈
// CONFIRM/CONFIRM_ACK, Abort ≈ REVERSE/REVERSE_ACK.
//
// A Tx must be used from a single goroutine and finished with exactly
// one Commit or Abort.
type Tx struct {
	net      *Network
	sender   topo.NodeID
	receiver topo.NodeID
	demand   float64

	holds    []holdRecord
	finished bool

	probeMsgs  int
	commitMsgs int
	feesPaid   float64
}

type holdRecord struct {
	path   []topo.NodeID
	amount float64
}

// Begin opens a payment session for amount demand from sender to
// receiver.
func (n *Network) Begin(sender, receiver topo.NodeID, demand float64) (*Tx, error) {
	if demand <= 0 {
		return nil, fmt.Errorf("pcn: demand must be positive, got %v", demand)
	}
	if sender == receiver {
		return nil, fmt.Errorf("pcn: sender and receiver are both node %d", sender)
	}
	return &Tx{net: n, sender: sender, receiver: receiver, demand: demand}, nil
}

// Graph returns the sender's local topology view (§3.1): connectivity
// without balances.
func (t *Tx) Graph() *topo.Graph { return t.net.graph }

// Sender returns the paying node.
func (t *Tx) Sender() topo.NodeID { return t.sender }

// Receiver returns the paid node.
func (t *Tx) Receiver() topo.NodeID { return t.receiver }

// Demand returns the payment amount.
func (t *Tx) Demand() float64 { return t.demand }

// validPath checks that path starts at the sender, ends at the
// receiver, and every consecutive pair shares a channel.
func (t *Tx) validPath(path []topo.NodeID) error {
	if len(path) < 2 || path[0] != t.sender || path[len(path)-1] != t.receiver {
		return ErrBadPath
	}
	for i := 0; i+1 < len(path); i++ {
		if !t.net.graph.HasChannel(path[i], path[i+1]) {
			return fmt.Errorf("%w: no channel %d-%d", ErrBadPath, path[i], path[i+1])
		}
	}
	return nil
}

// Probe sends a probe along path and returns, per hop, the available
// balance and fee schedule. It costs 2·hops probe messages (the probe
// travels to the receiver and the acknowledgement returns).
func (t *Tx) Probe(path []topo.NodeID) ([]HopInfo, error) {
	if t.finished {
		return nil, ErrFinished
	}
	if err := t.validPath(path); err != nil {
		return nil, err
	}
	hops := len(path) - 1
	info := make([]HopInfo, hops)
	t.net.mu.Lock()
	for i := 0; i < hops; i++ {
		idx, d, err := t.net.dir(path[i], path[i+1])
		if err != nil {
			t.net.mu.Unlock()
			return nil, err
		}
		ch := &t.net.chans[idx]
		info[i] = HopInfo{
			Available:        ch.bal[d] - ch.held[d],
			Fee:              ch.fee[d],
			ReverseAvailable: ch.bal[1-d] - ch.held[1-d],
			ReverseFee:       ch.fee[1-d],
		}
	}
	t.net.probeMessages += int64(2 * hops)
	t.net.mu.Unlock()
	t.probeMsgs += 2 * hops
	return info, nil
}

// LocalBalance returns the available balance of hop u→v without any
// message cost. It models knowledge a node has of its own channels
// (used by hop-by-hop schemes such as SpeedyMurmurs, where each
// forwarding node checks only its local links).
func (t *Tx) LocalBalance(u, v topo.NodeID) float64 {
	return t.net.Available(u, v)
}

// Hold reserves amount along every hop of path — the first phase of the
// two-phase commit. On success the funds are locked until Commit or
// Abort. If any hop lacks balance, nothing is reserved and
// ErrInsufficient is returned (the prototype's COMMIT_NACK + REVERSE of
// the prefix). Either way the attempt costs 2·hops commit messages.
func (t *Tx) Hold(path []topo.NodeID, amount float64) error {
	if t.finished {
		return ErrFinished
	}
	if amount <= 0 {
		return fmt.Errorf("pcn: hold amount must be positive, got %v", amount)
	}
	if err := t.validPath(path); err != nil {
		return err
	}
	hops := len(path) - 1
	t.net.mu.Lock()
	defer t.net.mu.Unlock()
	t.net.commitMessages += int64(2 * hops)
	t.commitMsgs += 2 * hops
	// Phase 1a: feasibility check.
	for i := 0; i < hops; i++ {
		idx, d, err := t.net.dir(path[i], path[i+1])
		if err != nil {
			return err
		}
		ch := &t.net.chans[idx]
		if ch.bal[d]-ch.held[d] < amount-balanceEpsilon {
			return ErrInsufficient
		}
	}
	// Phase 1b: reserve.
	for i := 0; i < hops; i++ {
		idx, d, _ := t.net.dir(path[i], path[i+1])
		t.net.chans[idx].held[d] += amount
	}
	t.holds = append(t.holds, holdRecord{path: append([]topo.NodeID(nil), path...), amount: amount})
	return nil
}

// balanceEpsilon absorbs float64 rounding when a hold asks for exactly
// the probed balance.
const balanceEpsilon = 1e-9

// HeldTotal returns the amount currently reserved by this session
// across all its partial payments.
func (t *Tx) HeldTotal() float64 {
	total := 0.0
	for _, h := range t.holds {
		total += h.amount
	}
	return total
}

// Commit finalises all held partial payments atomically: every hop u→v
// moves the held amount from bal(u→v) to bal(v→u), exactly the
// prototype's CONFIRM_ACK processing. Fees for every hop are accounted
// in FeesPaid. Commit with nothing held is an error.
func (t *Tx) Commit() error {
	if t.finished {
		return ErrFinished
	}
	if len(t.holds) == 0 {
		return errors.New("pcn: nothing held to commit")
	}
	t.net.mu.Lock()
	defer t.net.mu.Unlock()
	for _, h := range t.holds {
		hops := len(h.path) - 1
		t.net.commitMessages += int64(2 * hops) // CONFIRM + CONFIRM_ACK
		t.commitMsgs += 2 * hops
		for i := 0; i < hops; i++ {
			idx, d, _ := t.net.dir(h.path[i], h.path[i+1])
			ch := &t.net.chans[idx]
			ch.held[d] = clampDust(ch.held[d] - h.amount)
			ch.bal[d] -= h.amount
			ch.bal[1-d] += h.amount
			if ch.bal[d] < 0 {
				// Holds guarantee this cannot happen; clamp rounding dust.
				ch.bal[1-d] += ch.bal[d]
				ch.bal[d] = 0
			}
			t.feesPaid += ch.fee[d].Fee(h.amount)
		}
	}
	t.finished = true
	return nil
}

// Abort releases all holds without moving any balance — the prototype's
// REVERSE path.
func (t *Tx) Abort() error {
	if t.finished {
		return ErrFinished
	}
	t.net.mu.Lock()
	defer t.net.mu.Unlock()
	for _, h := range t.holds {
		hops := len(h.path) - 1
		t.net.commitMessages += int64(2 * hops) // REVERSE + REVERSE_ACK
		t.commitMsgs += 2 * hops
		for i := 0; i < hops; i++ {
			idx, d, _ := t.net.dir(h.path[i], h.path[i+1])
			ch := &t.net.chans[idx]
			ch.held[d] = clampDust(ch.held[d] - h.amount)
		}
	}
	t.finished = true
	return nil
}

// clampDust zeroes float64 residue left by add/subtract round-off so a
// fully released channel reports exactly zero held funds.
func clampDust(v float64) float64 {
	if v < balanceEpsilon && v > -balanceEpsilon {
		return 0
	}
	return v
}

// Finished reports whether the session has been committed or aborted.
func (t *Tx) Finished() bool { return t.finished }

// ProbeMessages returns the probe messages this session has sent.
func (t *Tx) ProbeMessages() int { return t.probeMsgs }

// CommitMessages returns the commit-phase messages this session has
// sent.
func (t *Tx) CommitMessages() int { return t.commitMsgs }

// FeesPaid returns the total fees charged by intermediate channels for
// the committed partial payments. Fees are an accounting metric (the
// paper's Figure 9 reports fee-to-volume ratios); they are not deducted
// from channel balances.
func (t *Tx) FeesPaid() float64 { return t.feesPaid }

// PathsUsed returns the number of partial payments held (distinct path
// uses).
func (t *Tx) PathsUsed() int { return len(t.holds) }
