package pcn

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/topo"
)

func TestCloseChannelRejectsNewHolds(t *testing.T) {
	n := lineNet(t)
	if err := n.SetChannelOpen(1, 2, false); err != nil {
		t.Fatal(err)
	}
	if n.IsChannelOpen(1, 2) {
		t.Error("channel reports open after close")
	}
	if got := n.Available(1, 2); got != 0 {
		t.Errorf("Available over closed channel = %v, want 0", got)
	}
	tx, err := n.Begin(0, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	path := []topo.NodeID{0, 1, 2}
	if err := tx.Hold(path, 10); !errors.Is(err, ErrInsufficient) {
		t.Errorf("hold over closed channel = %v, want ErrInsufficient", err)
	}
	info, err := tx.Probe(path)
	if err != nil {
		t.Fatal(err)
	}
	if info[0].Available != 100 {
		t.Errorf("open hop probes %v, want 100", info[0].Available)
	}
	if info[1].Available != 0 || info[1].ReverseAvailable != 0 {
		t.Errorf("closed hop probes %+v, want zero availability", info[1])
	}
	tx.Abort()

	// Reopen: frozen balances become spendable again.
	if err := n.SetChannelOpen(1, 2, true); err != nil {
		t.Fatal(err)
	}
	tx2, _ := n.Begin(0, 2, 10)
	if err := tx2.Hold(path, 10); err != nil {
		t.Fatalf("hold after reopen: %v", err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseChannelLetsInflightHoldsSettle(t *testing.T) {
	n := lineNet(t)
	path := []topo.NodeID{0, 1, 2}
	tx, _ := n.Begin(0, 2, 30)
	if err := tx.Hold(path, 30); err != nil {
		t.Fatal(err)
	}
	if err := n.SetChannelOpen(1, 2, false); err != nil {
		t.Fatal(err)
	}
	before := n.TotalFunds()
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit of pre-close hold: %v", err)
	}
	if after := n.TotalFunds(); math.Abs(after-before) > 1e-9 {
		t.Errorf("funds not conserved across close+commit: %v -> %v", before, after)
	}
	if got := n.Balance(2, 1); got != 130 {
		t.Errorf("reverse balance after commit = %v, want 130", got)
	}
}

func TestRegisterChannel(t *testing.T) {
	n := lineNet(t)
	base := n.Graph().NumChannels()
	idx, err := n.RegisterChannel(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if idx != base {
		t.Errorf("latent channel index = %d, want %d", idx, base)
	}
	if !n.Graph().HasChannel(0, 2) {
		t.Error("latent channel missing from topology")
	}
	if n.IsChannelOpen(0, 2) {
		t.Error("latent channel should start closed")
	}
	// Registering an existing channel is a no-op returning its index.
	again, err := n.RegisterChannel(2, 0)
	if err != nil || again != idx {
		t.Errorf("re-register = %d, %v; want %d, nil", again, err, idx)
	}
	// Open + fund, then pay over the new direct channel.
	if err := n.SetChannelOpen(0, 2, true); err != nil {
		t.Fatal(err)
	}
	if err := n.SetBalance(0, 2, 50, 50); err != nil {
		t.Fatal(err)
	}
	tx, _ := n.Begin(0, 2, 40)
	if err := tx.Hold([]topo.NodeID{0, 2}, 40); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := n.Balance(0, 2); got != 10 {
		t.Errorf("balance after paying over latent channel = %v", got)
	}
}

func TestRebalanceEvensDirections(t *testing.T) {
	g := topo.New(2)
	g.MustAddChannel(0, 1)
	n := New(g)
	n.SetBalance(0, 1, 90, 10)
	moved, err := n.Rebalance(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 40 {
		t.Errorf("moved %v, want 40", moved)
	}
	if a, b := n.Balance(0, 1), n.Balance(1, 0); a != 50 || b != 50 {
		t.Errorf("balances after rebalance = %v/%v, want 50/50", a, b)
	}
	// Already balanced: nothing moves.
	moved, _ = n.Rebalance(0, 1)
	if moved != 0 {
		t.Errorf("second rebalance moved %v", moved)
	}
}

func TestRebalanceRespectsHolds(t *testing.T) {
	g := topo.New(2)
	g.MustAddChannel(0, 1)
	n := New(g)
	n.SetBalance(0, 1, 100, 0)
	tx, _ := n.Begin(0, 1, 80)
	if err := tx.Hold([]topo.NodeID{0, 1}, 80); err != nil {
		t.Fatal(err)
	}
	moved, err := n.Rebalance(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Target is 50/50 but 80 is held on 0→1: only 20 may move.
	if moved != 20 {
		t.Errorf("moved %v, want 20", moved)
	}
	if got := n.Balance(0, 1); got != 80 {
		t.Errorf("held direction reduced to %v, below its holds", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit after rebalance: %v", err)
	}
}

func TestFundChannelRespectsHolds(t *testing.T) {
	g := topo.New(2)
	g.MustAddChannel(0, 1)
	n := New(g)
	n.SetBalance(0, 1, 100, 100)
	tx, _ := n.Begin(0, 1, 50)
	if err := tx.Hold([]topo.NodeID{0, 1}, 50); err != nil {
		t.Fatal(err)
	}
	// Funding below the outstanding hold clamps to the hold.
	if err := n.FundChannel(0, 1, 10, 10); err != nil {
		t.Fatal(err)
	}
	if got := n.Balance(0, 1); got != 50 {
		t.Errorf("held direction funded to %v, want clamp at 50", got)
	}
	if got := n.Balance(1, 0); got != 10 {
		t.Errorf("free direction funded to %v, want 10", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit after funding: %v", err)
	}
	if got := n.Balance(0, 1); got != 0 {
		t.Errorf("balance after commit = %v, want 0 (never negative)", got)
	}
	if err := n.FundChannel(0, 1, -1, 0); err == nil {
		t.Error("negative funding accepted")
	}
}

func TestRebalanceClosedChannelNoop(t *testing.T) {
	g := topo.New(2)
	g.MustAddChannel(0, 1)
	n := New(g)
	n.SetBalance(0, 1, 90, 10)
	n.SetChannelOpen(0, 1, false)
	moved, err := n.Rebalance(0, 1)
	if err != nil || moved != 0 {
		t.Errorf("rebalance of closed channel = %v, %v; want 0, nil", moved, err)
	}
}

func TestChurnErrorsOnMissingChannel(t *testing.T) {
	n := lineNet(t)
	if err := n.SetChannelOpen(0, 2, false); err == nil {
		t.Error("SetChannelOpen on missing channel succeeded")
	}
	if _, err := n.Rebalance(0, 2); err == nil {
		t.Error("Rebalance on missing channel succeeded")
	}
	if n.IsChannelOpen(0, 2) {
		t.Error("missing channel reports open")
	}
}

// TestChurnConcurrentWithPayments drives open/close/rebalance toggles
// from one goroutine while payment sessions hammer the same channels
// from others — the race-detector coverage for churn mutating a live
// network. Invariants: no data race (the CI -race run), holds never
// overbook, and funds are conserved once everything settles.
func TestChurnConcurrentWithPayments(t *testing.T) {
	g := topo.New(4)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(1, 2)
	g.MustAddChannel(2, 3)
	n := New(g)
	for _, e := range [][2]topo.NodeID{{0, 1}, {1, 2}, {2, 3}} {
		if err := n.SetBalance(e[0], e[1], 1000, 1000); err != nil {
			t.Fatal(err)
		}
	}
	before := n.TotalFunds()

	var wg sync.WaitGroup
	const payers = 4
	for w := 0; w < payers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			path := []topo.NodeID{0, 1, 2, 3}
			for i := 0; i < 300; i++ {
				tx, err := n.Begin(0, 3, 1)
				if err != nil {
					t.Error(err)
					return
				}
				if err := tx.Hold(path, 1); err == nil {
					if i%2 == 0 {
						tx.Commit()
					} else {
						tx.Abort()
					}
				} else {
					tx.Abort()
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			n.SetChannelOpen(1, 2, i%2 == 0)
			n.Rebalance(0, 1)
			n.Rebalance(2, 3)
		}
		n.SetChannelOpen(1, 2, true)
	}()
	wg.Wait()

	if after := n.TotalFunds(); math.Abs(after-before) > 1e-6 {
		t.Errorf("funds not conserved under churn: %v -> %v", before, after)
	}
}

// TestScaleFee: the fee-war hook multiplies both directions' schedules
// and rejects degenerate factors.
func TestScaleFee(t *testing.T) {
	n := lineNet(t)
	if err := n.SetFee(0, 1, FeeSchedule{Base: 2, Rate: 0.01}); err != nil {
		t.Fatal(err)
	}
	if err := n.SetFee(1, 0, FeeSchedule{Base: 1, Rate: 0.02}); err != nil {
		t.Fatal(err)
	}
	if err := n.ScaleFee(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if got := n.Fee(0, 1); got.Base != 10 || got.Rate != 0.05 {
		t.Errorf("forward fee after scale = %+v", got)
	}
	if got := n.Fee(1, 0); got.Base != 5 || math.Abs(got.Rate-0.1) > 1e-12 {
		t.Errorf("reverse fee after scale = %+v", got)
	}
	for _, factor := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := n.ScaleFee(0, 1, factor); err == nil {
			t.Errorf("factor %v accepted", factor)
		}
	}
	if err := n.ScaleFee(0, 3, 2); err == nil {
		t.Error("nonexistent channel accepted")
	}
}
