// Package pcn models the state of a payment channel network: every
// channel's per-direction balance and fee schedule, plus the transaction
// machinery (probe / hold / commit / abort) that payments run through.
//
// The model follows the paper's semantics exactly:
//
//   - A channel between A and B holds two balances, one per direction
//     (§2.1). Their sum — the channel capacity — is invariant: a payment
//     of x over hop u→v moves x from bal(u→v) to bal(v→u).
//   - Multi-path payments are atomic (AMP, §3.1): partial payments are
//     held (reserved) and either all commit or all abort, mirroring the
//     prototype's two-phase commit (§5.1).
//   - Probing a path reveals the current available balance and fee
//     schedule of each hop and costs messages proportional to the hop
//     count (§4.2 "The number of probing messages along a path is
//     proportional to the number of hops of the path").
//
// Network is safe for concurrent use; Tx values are not (each payment
// session belongs to one goroutine, as in the real protocol where the
// sender drives its own payment).
//
// # Locking model
//
// Every channel carries its own mutex, so payments over disjoint
// channels never contend. Operations that span several channels (a
// probe or hold along a path, an atomic multi-path commit or abort)
// acquire the locks of every involved channel in ascending channel
// index order and release them together — a single global acquisition
// order, which makes deadlock impossible. Whole-network operations
// (Snapshot, Restore, TotalFunds, the Assign helpers) lock every
// channel in the same ascending order and therefore serialize against
// all in-flight payments. Message counters are plain atomics.
package pcn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/topo"
)

// FeeSchedule is the fee a channel direction charges to forward value:
// a fixed base plus a proportional rate, the "fixed fee plus a
// volume-dependent component" form the paper notes is typical (§3.2).
type FeeSchedule struct {
	Base float64 // flat fee per forwarded (partial) payment
	Rate float64 // proportional fee, e.g. 0.01 = 1% of forwarded volume
}

// Fee returns the fee charged for forwarding amount.
func (f FeeSchedule) Fee(amount float64) float64 {
	if amount <= 0 {
		return 0
	}
	return f.Base + f.Rate*amount
}

// HopInfo is what probing one directed hop reveals: the available
// balance and fee schedule of the hop, and of its reverse direction. A
// probed node reports both sides of its adjacent channel — it knows its
// own balance and, the channel capacity being common knowledge between
// the two channel parties, the counterparty's as well. Algorithm 1
// (lines 17–22) records both directions in the capacity matrix.
type HopInfo struct {
	Available        float64
	Fee              FeeSchedule
	ReverseAvailable float64
	ReverseFee       FeeSchedule
}

// channel is the mutable state of one payment channel, guarded by its
// own lock. Direction 0 is A→B (canonical endpoint order), direction 1
// is B→A. closed marks a channel that is currently out of service
// (cooperatively closed, or latent — registered but not yet opened):
// probes report zero availability and new holds are rejected, while
// balances stay frozen in place and holds established before the close
// still commit or abort normally, as in a cooperative close that waits
// out in-flight HTLCs.
type channel struct {
	mu     sync.Mutex
	bal    [2]float64
	held   [2]float64
	fee    [2]FeeSchedule
	closed bool

	// rttNanos is the channel's virtual round-trip time in integer
	// nanoseconds, charged once per protocol leg that crosses the hop
	// (probe, COMMIT, CONFIRM/REVERSE). Zero — the default — keeps the
	// historical instantaneous model. Latency is assigned before a
	// replay starts and immutable afterwards, so sessions read it
	// without the channel lock.
	rttNanos int64
}

// Network is a payment channel network: a topology plus per-channel
// balances and fees. Channel state is striped one lock per channel (see
// the package comment for the locking model).
type Network struct {
	graph *topo.Graph
	chans []channel

	probeMessages  atomic.Int64 // cumulative, all sessions
	commitMessages atomic.Int64
	holdsPlaced    atomic.Int64 // partial-payment holds reserved
	holdsCommitted atomic.Int64 // holds settled by commit/resume
	holdsAborted   atomic.Int64 // holds released by abort/span-abort

	hasLatency atomic.Bool // any channel carries a non-zero virtual RTT
}

// New creates a network over g with all balances zero. Balances are
// assigned afterwards via SetBalance or one of the Assign helpers. The
// graph is compacted so payment-time adjacency reads are lock-free.
func New(g *topo.Graph) *Network {
	g.Compact()
	return &Network{graph: g, chans: make([]channel, g.NumChannels())}
}

// Graph returns the underlying topology (shared, read-only by
// convention).
func (n *Network) Graph() *topo.Graph { return n.graph }

// dir returns the channel index and direction for hop u→v.
func (n *Network) dir(u, v topo.NodeID) (int, int, error) {
	idx := n.graph.ChannelIndex(u, v)
	if idx < 0 {
		return 0, 0, fmt.Errorf("pcn: no channel %d→%d", u, v)
	}
	if n.graph.Channel(idx).A == u {
		return idx, 0, nil
	}
	return idx, 1, nil
}

// lockAll acquires every channel lock in ascending index order — the
// same global order path operations use — so whole-network reads and
// writes serialize against in-flight payments without deadlock risk.
func (n *Network) lockAll() {
	for i := range n.chans {
		n.chans[i].mu.Lock()
	}
}

// unlockAll releases the locks taken by lockAll.
func (n *Network) unlockAll() {
	for i := len(n.chans) - 1; i >= 0; i-- {
		n.chans[i].mu.Unlock()
	}
}

// SetBalance sets the two directional balances of the channel joining u
// and v: balUV spendable by u towards v, balVU the reverse.
func (n *Network) SetBalance(u, v topo.NodeID, balUV, balVU float64) error {
	if balUV < 0 || balVU < 0 {
		return fmt.Errorf("pcn: negative balance for channel %d-%d", u, v)
	}
	idx, d, err := n.dir(u, v)
	if err != nil {
		return err
	}
	ch := &n.chans[idx]
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.bal[d] = balUV
	ch.bal[1-d] = balVU
	return nil
}

// SetFee sets the fee schedule charged for forwarding over hop u→v.
func (n *Network) SetFee(u, v topo.NodeID, fee FeeSchedule) error {
	idx, d, err := n.dir(u, v)
	if err != nil {
		return err
	}
	ch := &n.chans[idx]
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.fee[d] = fee
	return nil
}

// ScaleFee multiplies both directions' fee schedules (base and rate)
// of the channel joining u and v by factor — the fee-war churn hook: a
// node repricing its channels mid-run. factor must be positive and
// finite (a zero or negative factor would erase or invert the fee
// model). Safe concurrently with payments: the update happens under
// the channel's own lock, and in-flight probes simply observe either
// the old or the new schedule, exactly as a gossiped fee update would
// propagate.
func (n *Network) ScaleFee(u, v topo.NodeID, factor float64) error {
	if math.IsNaN(factor) || math.IsInf(factor, 0) || factor <= 0 {
		return fmt.Errorf("pcn: fee scale factor for channel %d-%d must be positive and finite, got %v", u, v, factor)
	}
	idx, _, err := n.dir(u, v)
	if err != nil {
		return err
	}
	ch := &n.chans[idx]
	ch.mu.Lock()
	defer ch.mu.Unlock()
	for d := range ch.fee {
		ch.fee[d].Base *= factor
		ch.fee[d].Rate *= factor
	}
	return nil
}

// RegisterChannel extends the topology with a latent channel between u
// and v: the edge joins the graph, and a closed, unfunded channel slot
// is appended for it. Latent channels are how a dynamic scenario
// expresses channels that open mid-run — the topology is the union of
// every channel that ever exists, liveness and funding are dynamic.
// Registering an existing channel returns its index unchanged.
//
// RegisterChannel mutates the shared topology and channel slice and is
// therefore NOT safe to call while payments are in flight; scenarios
// register all latent channels before the replay starts. (Open/close
// toggles on registered channels — SetChannelOpen — are fully
// concurrent-safe.)
func (n *Network) RegisterChannel(u, v topo.NodeID) (int, error) {
	if n.graph.HasChannel(u, v) {
		return n.graph.ChannelIndex(u, v), nil
	}
	idx, err := n.graph.AddChannel(u, v)
	if err != nil {
		return -1, err
	}
	// Fold the new channel into the CSR base immediately: registration
	// happens between replays, and an eager compaction keeps every
	// payment-time adjacency read on the lock-free path.
	n.graph.Compact()
	n.chans = append(n.chans, channel{closed: true})
	return idx, nil
}

// SetChannelOpen opens or closes the channel joining u and v. Closing
// freezes its balances in place (new holds are rejected, probes see
// zero availability; in-flight holds still settle); reopening makes
// the frozen balances spendable again. Safe concurrently with
// payments: the toggle happens under the channel's own lock.
func (n *Network) SetChannelOpen(u, v topo.NodeID, open bool) error {
	idx, _, err := n.dir(u, v)
	if err != nil {
		return err
	}
	ch := &n.chans[idx]
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.closed = !open
	return nil
}

// IsChannelOpen reports whether the channel joining u and v exists and
// is currently in service.
func (n *Network) IsChannelOpen(u, v topo.NodeID) bool {
	idx, _, err := n.dir(u, v)
	if err != nil {
		return false
	}
	ch := &n.chans[idx]
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return !ch.closed
}

// FundChannel sets the directional balances of the channel joining u
// and v like SetBalance, but never below that direction's outstanding
// holds — the safe funding primitive for churn ChannelOpen events,
// which may race in-flight payments (a plain SetBalance below an
// active hold would let the later commit drive the balance negative).
func (n *Network) FundChannel(u, v topo.NodeID, balUV, balVU float64) error {
	if balUV < 0 || balVU < 0 {
		return fmt.Errorf("pcn: negative funding for channel %d-%d", u, v)
	}
	idx, d, err := n.dir(u, v)
	if err != nil {
		return err
	}
	ch := &n.chans[idx]
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.bal[d] = math.Max(balUV, ch.held[d])
	ch.bal[1-d] = math.Max(balVU, ch.held[1-d])
	return nil
}

// Rebalance evens the two directional balances of the channel joining
// u and v — the offchain rebalancing operation (circular self-payment
// or submarine swap) a depleted channel's owner performs. Funds move
// from the richer direction towards the 50/50 split, but never below
// that direction's outstanding holds, so the hold invariants survive
// concurrent payments. It returns the amount moved (0 for closed or
// already-balanced channels).
func (n *Network) Rebalance(u, v topo.NodeID) (float64, error) {
	idx, _, err := n.dir(u, v)
	if err != nil {
		return 0, err
	}
	ch := &n.chans[idx]
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.closed {
		return 0, nil
	}
	target := (ch.bal[0] + ch.bal[1]) / 2
	from := 0
	if ch.bal[1] > ch.bal[0] {
		from = 1
	}
	floor := ch.held[from]
	if floor < target {
		floor = target
	}
	move := ch.bal[from] - floor
	if move <= 0 {
		return 0, nil
	}
	ch.bal[from] -= move
	ch.bal[1-from] += move
	return move, nil
}

// Balance returns the current balance of hop u→v (0 if no channel). It
// does not subtract holds; see Available.
func (n *Network) Balance(u, v topo.NodeID) float64 {
	idx, d, err := n.dir(u, v)
	if err != nil {
		return 0
	}
	ch := &n.chans[idx]
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.bal[d]
}

// Available returns the spendable balance of hop u→v: balance minus
// outstanding holds, or 0 when the channel is closed.
func (n *Network) Available(u, v topo.NodeID) float64 {
	idx, d, err := n.dir(u, v)
	if err != nil {
		return 0
	}
	ch := &n.chans[idx]
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.closed {
		return 0
	}
	return ch.bal[d] - ch.held[d]
}

// Fee returns the fee schedule of hop u→v.
func (n *Network) Fee(u, v topo.NodeID) FeeSchedule {
	idx, d, err := n.dir(u, v)
	if err != nil {
		return FeeSchedule{}
	}
	ch := &n.chans[idx]
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.fee[d]
}

// SetLatency sets the virtual round-trip time of the channel joining u
// and v, in seconds (both directions share the RTT, as both share the
// wire). Latencies are part of scenario construction: assign them
// before payments start — they are read lock-free on the probe path.
func (n *Network) SetLatency(u, v topo.NodeID, seconds float64) error {
	if math.IsNaN(seconds) || math.IsInf(seconds, 0) || seconds < 0 {
		return fmt.Errorf("pcn: latency for channel %d-%d must be non-negative and finite, got %v", u, v, seconds)
	}
	idx, _, err := n.dir(u, v)
	if err != nil {
		return err
	}
	n.chans[idx].rttNanos = int64(math.Round(seconds * 1e9))
	if n.chans[idx].rttNanos > 0 {
		n.hasLatency.Store(true)
	}
	return nil
}

// Latency returns the virtual RTT of the channel joining u and v in
// seconds (0 if unset or no channel).
func (n *Network) Latency(u, v topo.NodeID) float64 {
	idx, _, err := n.dir(u, v)
	if err != nil {
		return 0
	}
	return float64(n.chans[idx].rttNanos) / 1e9
}

// HasLatency reports whether any channel carries a non-zero virtual
// RTT — the engine's one branch deciding whether latency accounting is
// live at all.
func (n *Network) HasLatency() bool { return n.hasLatency.Load() }

// latencyNanos returns channel idx's RTT in integer nanoseconds. All
// internal latency arithmetic stays in int64 nanos: integer additions
// commute exactly, so concurrent probe charging sums to the same total
// in every interleaving — the float equivalent would make the digest
// depend on accumulation order.
func (n *Network) latencyNanos(idx int) int64 { return n.chans[idx].rttNanos }

// AssignLatenciesLogNormal draws every channel's virtual RTT from a
// log-normal distribution with the given median (seconds) and shape
// sigma — heavy-tailed, like measured Lightning gossip latencies: most
// channels sit near the median with a slow tail of distant peers.
// Channel order is construction order (file order for ingested
// snapshots), so a seeded rng maps real edges to latencies
// deterministically.
func (n *Network) AssignLatenciesLogNormal(rng *rand.Rand, median, sigma float64) {
	n.lockAll()
	defer n.unlockAll()
	any := false
	for i := range n.chans {
		n.chans[i].rttNanos = int64(math.Round(logNormal(rng, median, sigma) * 1e9))
		if n.chans[i].rttNanos > 0 {
			any = true
		}
	}
	if any {
		n.hasLatency.Store(true)
	}
}

// Capacity returns the total funds in the channel joining u and v (both
// directions summed) — the quantity the paper's capacity scale factor
// multiplies.
func (n *Network) Capacity(u, v topo.NodeID) float64 {
	idx, _, err := n.dir(u, v)
	if err != nil {
		return 0
	}
	ch := &n.chans[idx]
	ch.mu.Lock()
	defer ch.mu.Unlock()
	return ch.bal[0] + ch.bal[1]
}

// TotalFunds returns the sum of all balances across all channels: a
// conserved quantity under payments (property tests rely on this).
func (n *Network) TotalFunds() float64 {
	n.lockAll()
	defer n.unlockAll()
	total := 0.0
	for i := range n.chans {
		total += n.chans[i].bal[0] + n.chans[i].bal[1]
	}
	return total
}

// ScaleBalances multiplies every directional balance by factor, the
// capacity-scale knob of Figures 6 and 7.
func (n *Network) ScaleBalances(factor float64) {
	n.lockAll()
	defer n.unlockAll()
	for i := range n.chans {
		n.chans[i].bal[0] *= factor
		n.chans[i].bal[1] *= factor
	}
}

// Snapshot captures all balances so a sweep can restore pristine state
// between runs without rebuilding the network.
func (n *Network) Snapshot() []float64 {
	n.lockAll()
	defer n.unlockAll()
	snap := make([]float64, 0, 2*len(n.chans))
	for i := range n.chans {
		snap = append(snap, n.chans[i].bal[0], n.chans[i].bal[1])
	}
	return snap
}

// Restore reinstates balances captured by Snapshot and clears holds and
// message counters.
func (n *Network) Restore(snap []float64) error {
	if len(snap) != 2*len(n.chans) {
		return fmt.Errorf("pcn: snapshot has %d entries, want %d", len(snap), 2*len(n.chans))
	}
	n.lockAll()
	defer n.unlockAll()
	for i := range n.chans {
		n.chans[i].bal[0] = snap[2*i]
		n.chans[i].bal[1] = snap[2*i+1]
		n.chans[i].held[0] = 0
		n.chans[i].held[1] = 0
	}
	n.probeMessages.Store(0)
	n.commitMessages.Store(0)
	n.holdsPlaced.Store(0)
	n.holdsCommitted.Store(0)
	n.holdsAborted.Store(0)
	return nil
}

// ProbeMessages returns the cumulative number of probe messages sent by
// all payment sessions since construction or the last Restore.
func (n *Network) ProbeMessages() int64 { return n.probeMessages.Load() }

// CommitMessages returns the cumulative number of commit-phase messages
// (COMMIT/CONFIRM/REVERSE legs) sent by all payment sessions.
func (n *Network) CommitMessages() int64 { return n.commitMessages.Load() }

// HoldsPlaced returns the cumulative number of partial-payment holds
// reserved by all sessions since construction or the last Restore.
func (n *Network) HoldsPlaced() int64 { return n.holdsPlaced.Load() }

// HoldsCommitted returns the cumulative number of holds settled by a
// commit (including deferred commits applied at Resume).
func (n *Network) HoldsCommitted() int64 { return n.holdsCommitted.Load() }

// HoldsAborted returns the cumulative number of holds released without
// settling — explicit aborts plus churn-invalidated span aborts.
func (n *Network) HoldsAborted() int64 { return n.holdsAborted.Load() }

// AssignBalancesLogNormal funds every channel with a log-normal total
// (given median and shape sigma), split across the two directions:
// evenly when evenSplit is true (the paper's Ripple preprocessing) or by
// a uniform random fraction otherwise (approximating Lightning's skewed
// crawled distribution).
func (n *Network) AssignBalancesLogNormal(rng *rand.Rand, median, sigma float64, evenSplit bool) {
	n.lockAll()
	defer n.unlockAll()
	for i := range n.chans {
		total := logNormal(rng, median, sigma)
		frac := 0.5
		if !evenSplit {
			frac = rng.Float64()
		}
		n.chans[i].bal[0] = total * frac
		n.chans[i].bal[1] = total * (1 - frac)
	}
}

// AssignBalancesUniform funds every channel with a total drawn uniformly
// from [lo, hi), split evenly — the testbed's capacity model (§5.2).
func (n *Network) AssignBalancesUniform(rng *rand.Rand, lo, hi float64) {
	n.lockAll()
	defer n.unlockAll()
	for i := range n.chans {
		total := lo + rng.Float64()*(hi-lo)
		n.chans[i].bal[0] = total / 2
		n.chans[i].bal[1] = total / 2
	}
}

// AssignBalancesFromCapacities funds channel i with caps[i] — the
// per-channel totals of an ingested snapshot (topo.Snapshot.Capacity)
// — split evenly across the two directions, the paper's Ripple
// preprocessing. caps must cover every channel.
func (n *Network) AssignBalancesFromCapacities(caps []float64) error {
	if len(caps) < len(n.chans) {
		return fmt.Errorf("pcn: %d capacities for %d channels", len(caps), len(n.chans))
	}
	n.lockAll()
	defer n.unlockAll()
	for i := range n.chans {
		n.chans[i].bal[0] = caps[i] / 2
		n.chans[i].bal[1] = caps[i] / 2
	}
	return nil
}

// AssignFeesPaper assigns the fee model of the paper's Figure 9
// experiment: 90% of channels charge a proportional rate drawn from
// [0.1%, 1%) and the remaining 10% from [1%, 10%), no base fee. Both
// directions of a channel share a schedule.
func (n *Network) AssignFeesPaper(rng *rand.Rand) {
	n.lockAll()
	defer n.unlockAll()
	for i := range n.chans {
		var rate float64
		if rng.Float64() < 0.9 {
			rate = 0.001 + rng.Float64()*0.009
		} else {
			rate = 0.01 + rng.Float64()*0.09
		}
		fee := FeeSchedule{Rate: rate}
		n.chans[i].fee[0] = fee
		n.chans[i].fee[1] = fee
	}
}

// logNormal draws a log-normal value with the given median and shape.
func logNormal(rng *rand.Rand, median, sigma float64) float64 {
	return median * math.Exp(rng.NormFloat64()*sigma)
}
