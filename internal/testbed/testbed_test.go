package testbed

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

func newTestCluster(t *testing.T, g *topo.Graph) *Cluster {
	t.Helper()
	c, err := NewCluster(g, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterBootAndConsistency(t *testing.T) {
	g := topo.Ring(5)
	c := newTestCluster(t, g)
	rng := rand.New(rand.NewSource(1))
	if err := c.SetBalancesUniform(rng, 1000, 1500); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	total := c.TotalFunds()
	if total < 5*1000 || total >= 5*1500 {
		t.Errorf("total funds = %v outside [5000, 7500)", total)
	}
}

func TestFromNetwork(t *testing.T) {
	g := topo.Line(4)
	pnet := newPCN(g)
	c := newTestCluster(t, g)
	if err := c.FromNetwork(pnet); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalFunds(); math.Abs(got-pnet.TotalFunds()) > 1e-9 {
		t.Errorf("funds differ: cluster %v vs network %v", got, pnet.TotalFunds())
	}
	// Mismatched topology is rejected.
	other := newPCN(topo.Line(4))
	if err := c.FromNetwork(other); err == nil {
		t.Error("foreign-topology network accepted")
	}
}

func TestWorkloadFlashOverTCP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := topo.WattsStrogatz(10, 4, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCluster(t, g)
	if err := c.SetBalancesUniform(rng, 1000, 1500); err != nil {
		t.Fatal(err)
	}
	fundsBefore := c.TotalFunds()

	gen, err := trace.NewGenerator(trace.Config{
		Nodes: 10, Graph: g, Sizes: trace.RippleSizes,
		RecurrenceProb: 0.86, ReceiverZipf: 1.6, SenderZipf: 1.0,
		PaymentsPerDay: 1000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	payments := gen.Generate(120)
	threshold := core.ThresholdForMiceFraction(trace.Amounts(payments), 0.9)

	factory := func(id topo.NodeID) (route.Router, error) {
		cfg := core.DefaultConfig(threshold)
		cfg.Seed = int64(id)
		return core.New(cfg), nil
	}
	m, err := c.RunWorkload(factory, payments, threshold)
	if err != nil {
		t.Fatal(err)
	}
	if m.Payments == 0 {
		t.Fatal("no payments replayed")
	}
	if m.Successes == 0 {
		t.Error("no payment succeeded on a well-funded 10-node network")
	}
	if m.SuccessVolume <= 0 && m.Successes > 0 {
		t.Error("successes without volume")
	}
	// The core distributed-correctness assertion: all two-party channel
	// views still agree after a mixed workload of commits and aborts.
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalFunds(); math.Abs(got-fundsBefore) > 1e-4 {
		t.Errorf("total funds drifted: %v → %v", fundsBefore, got)
	}
}

func TestWorkloadComparesSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := topo.WattsStrogatz(10, 4, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(trace.Config{
		Nodes: 10, Graph: g, Sizes: trace.RippleSizes,
		RecurrenceProb: 0.86, ReceiverZipf: 1.6, SenderZipf: 1.0,
		PaymentsPerDay: 1000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	payments := gen.Generate(80)
	threshold := core.ThresholdForMiceFraction(trace.Amounts(payments), 0.9)

	volumes := map[string]float64{}
	for _, scheme := range []string{sim.SchemeFlash, sim.SchemeSpider, sim.SchemeShortestPath} {
		c := newTestCluster(t, g)
		balRNG := rand.New(rand.NewSource(7)) // identical balances per scheme
		if err := c.SetBalancesUniform(balRNG, 1000, 1500); err != nil {
			t.Fatal(err)
		}
		factory := func(id topo.NodeID) (route.Router, error) {
			return sim.NewRouter(scheme, threshold, 0, 0, false, int64(id))
		}
		m, err := c.RunWorkload(factory, payments, threshold)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if err := c.CheckConsistency(); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		volumes[scheme] = m.SuccessVolume
		c.Close()
	}
	if volumes[sim.SchemeFlash] < volumes[sim.SchemeShortestPath] {
		t.Errorf("Flash volume %v below ShortestPath %v on testbed",
			volumes[sim.SchemeFlash], volumes[sim.SchemeShortestPath])
	}
}

// newPCN builds a small funded pcn.Network for FromNetwork tests.
func newPCN(g *topo.Graph) *pcn.Network {
	net := pcn.New(g)
	rng := rand.New(rand.NewSource(5))
	net.AssignBalancesUniform(rng, 500, 900)
	return net
}

// TestWorkloadConcurrentWorkers drives the cluster with a worker pool:
// the sharded-metrics replay must keep the distributed channel views
// consistent and conserve funds, with every payment accounted exactly
// once.
func TestWorkloadConcurrentWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := topo.WattsStrogatz(10, 4, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCluster(t, g)
	if err := c.SetBalancesUniform(rng, 1000, 1500); err != nil {
		t.Fatal(err)
	}
	fundsBefore := c.TotalFunds()

	gen, err := trace.NewGenerator(trace.Config{
		Nodes: 10, Graph: g, Sizes: trace.RippleSizes,
		RecurrenceProb: 0.86, ReceiverZipf: 1.6, SenderZipf: 1.0,
		PaymentsPerDay: 1000, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	payments := gen.Generate(100)
	threshold := core.ThresholdForMiceFraction(trace.Amounts(payments), 0.9)
	factory := func(id topo.NodeID) (route.Router, error) {
		cfg := core.DefaultConfig(threshold)
		cfg.Seed = int64(id)
		return core.New(cfg), nil
	}
	m, err := c.RunWorkloadOpts(factory, payments, threshold, 4)
	if err != nil {
		t.Fatal(err)
	}
	replayable := 0
	for _, p := range payments {
		if p.Sender != p.Receiver && p.Amount > 0 {
			replayable++
		}
	}
	if m.Payments != replayable {
		t.Errorf("payments = %d, want %d (each exactly once)", m.Payments, replayable)
	}
	if m.Successes == 0 {
		t.Error("concurrent testbed replay delivered nothing")
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalFunds(); math.Abs(got-fundsBefore) > 1e-4 {
		t.Errorf("total funds drifted: %v → %v", fundsBefore, got)
	}
}
