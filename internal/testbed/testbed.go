// Package testbed orchestrates a cluster of TCP nodes (package node) on
// the local machine, reproducing the paper's prototype evaluation
// (§5.2): every network participant is an independent protocol
// endpoint bound to its own loopback address, payments are driven
// through real PROBE/COMMIT/CONFIRM message exchanges, and the harness
// reports success volume, success ratio and processing delay.
package testbed

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/node"
	"repro/internal/parallel"
	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Cluster is a set of running nodes covering one topology.
type Cluster struct {
	graph *topo.Graph
	nodes []*node.Node
}

// NewCluster boots one node per topology vertex, each with its own TCP
// listener, and installs the mutual address registry. Balances are
// assigned afterwards (SetBalancesUniform or FromNetwork).
func NewCluster(g *topo.Graph, timeout time.Duration) (*Cluster, error) {
	return NewClusterWithDelay(g, timeout, 0)
}

// NewClusterWithDelay is NewCluster with an artificial per-message
// forwarding latency on every node, emulating network propagation for
// the paper's processing-delay experiments (Figures 12c/d, 13c/d).
func NewClusterWithDelay(g *topo.Graph, timeout, hopDelay time.Duration) (*Cluster, error) {
	c := &Cluster{graph: g, nodes: make([]*node.Node, g.NumNodes())}
	registry := make(map[topo.NodeID]string, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		n, err := node.New(node.Config{
			ID:       topo.NodeID(i),
			Graph:    g,
			Timeout:  timeout,
			HopDelay: hopDelay,
		})
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("testbed: starting node %d: %w", i, err)
		}
		c.nodes[i] = n
		registry[topo.NodeID(i)] = n.Addr()
	}
	for _, n := range c.nodes {
		n.SetPeers(registry)
	}
	return c, nil
}

// Node returns the node with the given ID.
func (c *Cluster) Node(id topo.NodeID) *node.Node { return c.nodes[id] }

// Graph returns the cluster topology.
func (c *Cluster) Graph() *topo.Graph { return c.graph }

// Close shuts every node down.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		if n != nil {
			n.Close()
		}
	}
}

// SetBalancesUniform funds every channel with a total drawn uniformly
// from [lo, hi), split evenly — the paper's testbed capacity model
// ("the capacity of each channel is set randomly from an interval").
func (c *Cluster) SetBalancesUniform(rng *rand.Rand, lo, hi float64) error {
	for _, e := range c.graph.Channels() {
		total := lo + rng.Float64()*(hi-lo)
		half := total / 2
		if err := c.setChannel(e.A, e.B, half, half, pcn.FeeSchedule{}, pcn.FeeSchedule{}); err != nil {
			return err
		}
	}
	return nil
}

// FromNetwork copies balances and fees from an in-memory network over
// the same topology, letting testbed runs start from states identical
// to simulator runs.
func (c *Cluster) FromNetwork(net *pcn.Network) error {
	if net.Graph() != c.graph {
		return fmt.Errorf("testbed: network topology differs from cluster topology")
	}
	for _, e := range c.graph.Channels() {
		ab, ba := net.Balance(e.A, e.B), net.Balance(e.B, e.A)
		feeAB, feeBA := net.Fee(e.A, e.B), net.Fee(e.B, e.A)
		if err := c.setChannel(e.A, e.B, ab, ba, feeAB, feeBA); err != nil {
			return err
		}
	}
	return nil
}

// setChannel installs consistent channel state on both endpoints.
func (c *Cluster) setChannel(a, b topo.NodeID, balAB, balBA float64, feeAB, feeBA pcn.FeeSchedule) error {
	if err := c.nodes[a].SetChannel(b, balAB, balBA, feeAB, feeBA); err != nil {
		return err
	}
	return c.nodes[b].SetChannel(a, balBA, balAB, feeBA, feeAB)
}

// CheckConsistency verifies that for every channel the two endpoints
// agree on both directional balances — the distributed analogue of the
// simulator's conservation invariant, and the property the prototype's
// CONFIRM_ACK mirroring exists to maintain.
func (c *Cluster) CheckConsistency() error {
	for _, e := range c.graph.Channels() {
		outA, inA := c.nodes[e.A].Balances(e.B)
		outB, inB := c.nodes[e.B].Balances(e.A)
		if math.Abs(outA-inB) > 1e-6 || math.Abs(inA-outB) > 1e-6 {
			return fmt.Errorf("testbed: channel %d-%d inconsistent: A sees (out=%v,in=%v), B sees (out=%v,in=%v)",
				e.A, e.B, outA, inA, outB, inB)
		}
		if outA < -1e-6 || inA < -1e-6 {
			return fmt.Errorf("testbed: channel %d-%d negative balance", e.A, e.B)
		}
	}
	return nil
}

// TotalFunds sums all channel funds (each endpoint's own spendable
// balance), a conserved quantity.
func (c *Cluster) TotalFunds() float64 {
	total := 0.0
	for _, e := range c.graph.Channels() {
		outA, _ := c.nodes[e.A].Balances(e.B)
		outB, _ := c.nodes[e.B].Balances(e.A)
		total += outA + outB
	}
	return total
}

// RouterFactory builds the router a given node runs. Each node owns its
// router instance, as on the paper's testbed where every process runs
// the routing algorithm locally.
type RouterFactory func(id topo.NodeID) (route.Router, error)

// RunWorkload replays payments over the cluster sequentially (the
// paper's testbed metric is per-payment processing delay) and collects
// the same metrics as the simulator. miceThreshold classifies payments
// for the mice-delay metric.
func (c *Cluster) RunWorkload(factory RouterFactory, payments []trace.Payment, miceThreshold float64) (sim.Metrics, error) {
	return c.RunWorkloadOpts(factory, payments, miceThreshold, 1)
}

// RunWorkloadOpts is RunWorkload with a worker count: workers > 1
// drains the payment list with a bounded pool of concurrent senders,
// the same contention model as the simulator's concurrent replay.
// Metrics accumulate into per-worker shards merged afterwards —
// exactly the simulator's sharded scheme (sim.Metrics.Record per
// payment, sim.Metrics.Merge across shards) — so the hot path takes no
// harness-level locks. Router instances stay per sender (as on the
// real testbed, where each process routes locally) and are built
// through factory under a lock on first use.
func (c *Cluster) RunWorkloadOpts(factory RouterFactory, payments []trace.Payment, miceThreshold float64, workers int) (sim.Metrics, error) {
	return c.RunWorkloadObserved(factory, payments, miceThreshold, workers, Telemetry{})
}

// Telemetry configures the observer tap of RunWorkloadObserved: a flow
// sink receiving one record per payment, a registry accumulating
// scheme-labelled workload counters, or both. The zero value disables
// observation entirely, making RunWorkloadOpts and RunWorkloadObserved
// interchangeable. Scheme labels the records and metrics (defaults to
// "testbed" when empty).
type Telemetry struct {
	Scheme   string
	Sink     telemetry.Sink
	Registry *telemetry.Registry
}

// workloadObserver is the testbed's per-payment telemetry tap,
// mirroring the simulator's: registry rollups plus flow records. The
// testbed is a real-time harness, so records carry seconds since
// workload start as their virtual arrival/completion stamps.
type workloadObserver struct {
	sink   telemetry.Sink
	scheme string

	payments, successes, failures *telemetry.Counter
	volume, fees                  *telemetry.Counter
	probeMsgs, commitMsgs         *telemetry.Counter
}

func newWorkloadObserver(tel Telemetry) *workloadObserver {
	if tel.Sink == nil && tel.Registry == nil {
		return nil
	}
	scheme := tel.Scheme
	if scheme == "" {
		scheme = "testbed"
	}
	o := &workloadObserver{sink: tel.Sink, scheme: scheme}
	if reg := tel.Registry; reg != nil {
		lbl := `{scheme="` + scheme + `"}`
		o.payments = reg.Counter("testbed_payments_total"+lbl, "Payments completed, all outcomes.")
		o.successes = reg.Counter("testbed_payments_delivered_total"+lbl, "Payments fully delivered.")
		o.failures = reg.Counter("testbed_payments_failed_total"+lbl, "Payments undelivered.")
		o.volume = reg.Counter("testbed_success_volume"+lbl, "Delivered payment volume.")
		o.fees = reg.Counter("testbed_fees_paid"+lbl, "Total fees paid by delivered payments.")
		o.probeMsgs = reg.Counter("testbed_probe_messages_total"+lbl, "Probe messages sent.")
		o.commitMsgs = reg.Counter("testbed_commit_messages_total"+lbl, "Commit-phase messages sent.")
	}
	return o
}

// completed records one settled payment. Concurrent-safe: counters are
// atomic and sinks are concurrent by contract, so workers call it
// without coordination.
func (o *workloadObserver) completed(p trace.Payment, miceThreshold float64, sess *node.Session, arrival, complete float64, wall time.Duration, delivered bool) {
	if o.payments != nil {
		o.payments.Inc()
		o.probeMsgs.Add(float64(sess.ProbeMessages()))
		o.commitMsgs.Add(float64(sess.CommitMessages()))
		if delivered {
			o.successes.Inc()
			o.volume.Add(p.Amount)
			o.fees.Add(sess.FeesPaid())
		} else {
			o.failures.Inc()
		}
	}
	if o.sink != nil {
		rec := telemetry.AcquireFlow()
		rec.ID = int64(p.ID)
		rec.Scheme = o.scheme
		rec.Sender = int64(p.Sender)
		rec.Receiver = int64(p.Receiver)
		rec.Amount = p.Amount
		rec.Class = telemetry.ClassElephant
		if p.Amount <= miceThreshold {
			rec.Class = telemetry.ClassMouse
		}
		rec.Attempts = 1
		rec.ProbeRounds = sess.ProbeOps()
		rec.ProbeMessages = int64(sess.ProbeMessages())
		rec.CommitMessages = int64(sess.CommitMessages())
		rec.Paths = sess.PathsUsed()
		if delivered {
			rec.Fees = sess.FeesPaid()
		}
		rec.Arrival = arrival
		rec.Complete = complete
		rec.WallNS = int64(wall)
		outcome := telemetry.OutcomeFailed
		if delivered {
			outcome = telemetry.OutcomeDelivered
		}
		rec.Outcome = outcome
		o.sink.Emit(rec)
		telemetry.ReleaseFlow(rec)
	}
}

// MessagesSent sums the wire messages every node in the cluster has
// written — the live traffic gauge behind flashtestbed's -telemetry.
func (c *Cluster) MessagesSent() int64 {
	total := int64(0)
	for _, n := range c.nodes {
		if n != nil {
			total += n.MessagesSent()
		}
	}
	return total
}

// RunWorkloadObserved is RunWorkloadOpts with a telemetry tap: every
// completed payment lands in tel's sink and registry as it settles, so
// a live /metrics endpoint shows the workload progressing. Telemetry is
// observer-only — the returned metrics are identical with or without
// it.
func (c *Cluster) RunWorkloadObserved(factory RouterFactory, payments []trace.Payment, miceThreshold float64, workers int, tel Telemetry) (sim.Metrics, error) {
	obs := newWorkloadObserver(tel)
	workloadStart := time.Now()
	var (
		routersMu sync.Mutex
		routers   = make(map[topo.NodeID]route.Router)
		failed    atomic.Bool
		errOnce   sync.Once
		firstErr  error
	)
	routerFor := func(sender topo.NodeID) (route.Router, error) {
		routersMu.Lock()
		defer routersMu.Unlock()
		if r, ok := routers[sender]; ok {
			return r, nil
		}
		r, err := factory(sender)
		if err != nil {
			return nil, err
		}
		routers[sender] = r
		return r, nil
	}
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}

	shards := make([]sim.Metrics, parallel.Clamp(len(payments), workers))
	parallel.ForEach(len(payments), workers, func(worker, i int) {
		if failed.Load() {
			return
		}
		p := payments[i]
		if p.Sender == p.Receiver || p.Amount <= 0 {
			return
		}
		r, err := routerFor(p.Sender)
		if err != nil {
			fail(err)
			return
		}
		sess, err := c.nodes[p.Sender].NewSession(p.Receiver, p.Amount)
		if err != nil {
			fail(fmt.Errorf("testbed: payment %d: %w", p.ID, err))
			return
		}
		start := time.Now()
		rerr := r.Route(sess)
		end := time.Now()
		elapsed := end.Sub(start)
		if !sess.Finished() {
			if aerr := sess.Abort(); aerr != nil {
				fail(fmt.Errorf("testbed: payment %d unfinished and unabortable: %w", p.ID, aerr))
				return
			}
			rerr = fmt.Errorf("testbed: router left session unfinished")
		}
		// The paper's testbed overhead metric is the *processing* delay a
		// transaction causes (§5.3) — the routing work at the sender, not
		// network propagation — so time spent blocked on protocol round
		// trips is subtracted. (EXPERIMENTS.md discusses the alternative
		// wall-clock reading, where Flash's trial-and-error commit
		// traffic puts it above Spider at tight capacities.)
		processing := elapsed - sess.NetworkWait()
		if processing < 0 {
			processing = 0
		}
		shards[worker].Record(p.Amount, miceThreshold, processing,
			int64(sess.ProbeMessages()), int64(sess.CommitMessages()), sess.FeesPaid(), rerr == nil)
		if obs != nil {
			obs.completed(p, miceThreshold, sess,
				start.Sub(workloadStart).Seconds(), end.Sub(workloadStart).Seconds(),
				elapsed, rerr == nil)
		}
	})

	var m sim.Metrics
	for i := range shards {
		m.Merge(shards[i])
	}
	return m, firstErr
}
