package baseline

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/topo"
)

func build(t *testing.T, n int, chans [][4]float64) *pcn.Network {
	t.Helper()
	g := topo.New(n)
	for _, c := range chans {
		g.MustAddChannel(topo.NodeID(c[0]), topo.NodeID(c[1]))
	}
	net := pcn.New(g)
	for _, c := range chans {
		if err := net.SetBalance(topo.NodeID(c[0]), topo.NodeID(c[1]), c[2], c[3]); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func pay(t *testing.T, r route.Router, net *pcn.Network, s, d topo.NodeID, amount float64) (*pcn.Tx, error) {
	t.Helper()
	tx, err := net.Begin(s, d, amount)
	if err != nil {
		t.Fatal(err)
	}
	return tx, r.Route(tx)
}

func TestShortestPathSuccess(t *testing.T) {
	net := build(t, 3, [][4]float64{{0, 1, 100, 0}, {1, 2, 100, 0}})
	tx, err := pay(t, NewShortestPath(), net, 0, 2, 60)
	if err != nil {
		t.Fatal(err)
	}
	if tx.ProbeMessages() != 0 {
		t.Error("SP must not probe")
	}
	if net.Balance(0, 1) != 40 {
		t.Errorf("balance = %v, want 40", net.Balance(0, 1))
	}
}

func TestShortestPathFailsWithoutDetour(t *testing.T) {
	// Shortest path is saturated; SP does not try the longer detour.
	net := build(t, 4, [][4]float64{
		{0, 1, 5, 0}, {1, 3, 5, 0},
		{0, 2, 100, 0}, {2, 3, 100, 0},
	})
	// Both paths are 2 hops; BFS visits neighbour 1 first, so path via 1
	// is chosen and fails.
	_, err := pay(t, NewShortestPath(), net, 0, 3, 50)
	if !errors.Is(err, route.ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	if net.Balance(0, 2) != 100 {
		t.Error("failed SP payment moved balances")
	}
}

func TestShortestPathNoRoute(t *testing.T) {
	g := topo.New(2)
	net := pcn.New(g)
	tx, _ := net.Begin(0, 1, 5)
	if err := NewShortestPath().Route(tx); !errors.Is(err, route.ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestWaterfillEqualises(t *testing.T) {
	alloc := Waterfill([]float64{50, 30, 10}, 30)
	if alloc == nil {
		t.Fatal("feasible demand rejected")
	}
	// Level L solves (50-L)+(30-L) = 30 with L=25 ≥ 10: alloc [25 5 0].
	want := []float64{25, 5, 0}
	for i := range want {
		if math.Abs(alloc[i]-want[i]) > 1e-6 {
			t.Fatalf("alloc = %v, want %v", alloc, want)
		}
	}
}

func TestWaterfillFullDrain(t *testing.T) {
	alloc := Waterfill([]float64{10, 20}, 30)
	if alloc == nil {
		t.Fatal("exact-capacity demand rejected")
	}
	if math.Abs(alloc[0]-10) > 1e-6 || math.Abs(alloc[1]-20) > 1e-6 {
		t.Errorf("alloc = %v, want [10 20]", alloc)
	}
}

func TestWaterfillInfeasible(t *testing.T) {
	if Waterfill([]float64{5, 5}, 11) != nil {
		t.Error("infeasible demand accepted")
	}
	if Waterfill(nil, 1) != nil {
		t.Error("empty path set accepted")
	}
}

// Property: waterfilling always meets demand exactly, never exceeds any
// capacity, and levels the post-allocation residuals of used paths.
func TestWaterfillProperty(t *testing.T) {
	f := func(rawCaps []uint16, demandRaw uint16) bool {
		caps := make([]float64, 0, len(rawCaps))
		total := 0.0
		for _, c := range rawCaps {
			v := float64(c%1000) + 1
			caps = append(caps, v)
			total += v
		}
		if len(caps) == 0 {
			return true
		}
		demand := float64(demandRaw%1000) + 1
		alloc := Waterfill(caps, demand)
		if total < demand-1e-9 {
			return alloc == nil
		}
		if alloc == nil {
			return false
		}
		sum := 0.0
		for i, x := range alloc {
			if x < -1e-9 || x > caps[i]+1e-6 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-demand) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSpiderSplitsAcrossDisjointPaths(t *testing.T) {
	// Two disjoint 2-hop paths of 40 each; demand 60 needs both.
	net := build(t, 4, [][4]float64{
		{0, 1, 40, 0}, {1, 3, 40, 0},
		{0, 2, 40, 0}, {2, 3, 40, 0},
	})
	sp := NewSpider(4)
	tx, err := pay(t, sp, net, 0, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	if tx.PathsUsed() != 2 {
		t.Errorf("paths used = %d, want 2", tx.PathsUsed())
	}
	// Waterfilling balances: 30 each.
	if math.Abs(net.Balance(0, 1)-10) > 1e-6 || math.Abs(net.Balance(0, 2)-10) > 1e-6 {
		t.Errorf("waterfilled balances = %v/%v, want 10/10",
			net.Balance(0, 1), net.Balance(0, 2))
	}
}

func TestSpiderProbesEveryPayment(t *testing.T) {
	net := build(t, 3, [][4]float64{{0, 1, 1000, 0}, {1, 2, 1000, 0}})
	sp := NewSpider(4)
	tx1, err := pay(t, sp, net, 0, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := pay(t, sp, net, 0, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tx1.ProbeMessages() == 0 || tx2.ProbeMessages() == 0 {
		t.Error("Spider must probe on every payment")
	}
}

func TestSpiderSharedBottleneckUnderperforms(t *testing.T) {
	// Paper Figure 5(b) argument: edge-disjoint paths cannot reuse the
	// abundant shared link 0-1. Topology: 0-1 (cap 100), then 1-2-5 and
	// 1-3-5 (30 each) and a disjoint 0-4-5 (20).
	net := build(t, 6, [][4]float64{
		{0, 1, 100, 0},
		{1, 2, 30, 0}, {2, 5, 30, 0},
		{1, 3, 30, 0}, {3, 5, 30, 0},
		{0, 4, 20, 0}, {4, 5, 20, 0},
	})
	// Edge-disjoint set can carry at most 30 (via 1) + 20 (via 4) = 50;
	// demand 55 must fail for Spider even though max-flow is 60+20=80.
	_, err := pay(t, NewSpider(4), net, 0, 5, 55)
	if !errors.Is(err, route.ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient (edge-disjoint limitation)", err)
	}
}

func TestSpiderNoRoute(t *testing.T) {
	g := topo.New(2)
	net := pcn.New(g)
	tx, _ := net.Begin(0, 1, 5)
	if err := NewSpider(4).Route(tx); !errors.Is(err, route.ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestSpeedyMurmursDelivers(t *testing.T) {
	// Well-funded ring: every shard can walk the tree path.
	g := topo.Ring(8)
	net := pcn.New(g)
	for _, e := range g.Channels() {
		net.SetBalance(e.A, e.B, 1000, 1000)
	}
	sm := NewSpeedyMurmurs(3)
	tx, err := pay(t, sm, net, 0, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	if tx.ProbeMessages() != 0 {
		t.Error("SpeedyMurmurs must not probe")
	}
	if tx.PathsUsed() != 3 {
		t.Errorf("paths used = %d, want 3 shards", tx.PathsUsed())
	}
}

func TestSpeedyMurmursFailsOnDepletion(t *testing.T) {
	// Line topology: every route must cross 1→2; deplete it.
	net := build(t, 4, [][4]float64{
		{0, 1, 100, 100}, {1, 2, 1, 100}, {2, 3, 100, 100},
	})
	sm := NewSpeedyMurmurs(3)
	_, err := pay(t, sm, net, 0, 3, 30)
	if !errors.Is(err, route.ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	if net.Balance(0, 1) != 100 {
		t.Error("failed payment moved balances")
	}
}

func TestSpeedyMurmursTreeDist(t *testing.T) {
	g := topo.Line(5)
	sm := NewSpeedyMurmurs(1)
	emb := sm.embeddingFor(g)
	// One tree rooted at the highest-degree node (any middle node).
	// Tree distance on a line equals hop distance.
	if d := emb.treeDist(0, 0, 4); d != 4 {
		t.Errorf("treeDist(0,4) = %d, want 4", d)
	}
	if d := emb.treeDist(0, 2, 2); d != 0 {
		t.Errorf("treeDist(2,2) = %d, want 0", d)
	}
}

func TestSpeedyMurmursEmbeddingCache(t *testing.T) {
	g := topo.Ring(6)
	sm := NewSpeedyMurmurs(2)
	e1 := sm.embeddingFor(g)
	e2 := sm.embeddingFor(g)
	if e1 != e2 {
		t.Error("embedding not cached for same graph")
	}
	g2 := topo.Ring(6)
	if sm.embeddingFor(g2) == e1 {
		t.Error("embedding cache leaked across graphs")
	}
}

func TestMaxFlowFullProbeDelivers(t *testing.T) {
	// The Figure 5(b)-style topology where Spider fails: max-flow wins.
	net := build(t, 6, [][4]float64{
		{0, 1, 100, 0},
		{1, 2, 30, 0}, {2, 5, 30, 0},
		{1, 3, 30, 0}, {3, 5, 30, 0},
		{0, 4, 20, 0}, {4, 5, 20, 0},
	})
	mf := NewMaxFlowFullProbe()
	tx, err := pay(t, mf, net, 0, 5, 55)
	if err != nil {
		t.Fatalf("max-flow router failed: %v", err)
	}
	if tx.ProbeMessages() == 0 {
		t.Error("full-probe router must charge probe messages")
	}
}

func TestMaxFlowFullProbeFails(t *testing.T) {
	net := build(t, 3, [][4]float64{{0, 1, 10, 0}, {1, 2, 10, 0}})
	_, err := pay(t, NewMaxFlowFullProbe(), net, 0, 2, 100)
	if !errors.Is(err, route.ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
}

func TestRouterNames(t *testing.T) {
	cases := []struct {
		r    route.Router
		want string
	}{
		{NewShortestPath(), "ShortestPath"},
		{NewSpider(4), "Spider"},
		{NewSpeedyMurmurs(3), "SpeedyMurmurs"},
		{NewMaxFlowFullProbe(), "MaxFlow-FullProbe"},
	}
	for _, c := range cases {
		if c.r.Name() != c.want {
			t.Errorf("Name = %q, want %q", c.r.Name(), c.want)
		}
	}
}

// TestBaselineAtomicityProperty mirrors the core test: every baseline
// either delivers exactly the demand or leaves balances untouched.
func TestBaselineAtomicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g, err := topo.BarabasiAlbert(30, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	routers := []route.Router{
		NewShortestPath(),
		NewSpider(4),
		NewSpeedyMurmurs(3),
		NewMaxFlowFullProbe(),
	}
	for _, r := range routers {
		net := pcn.New(g)
		net.AssignBalancesUniform(rng, 50, 150)
		total := net.TotalFunds()
		for trial := 0; trial < 100; trial++ {
			s := topo.NodeID(rng.Intn(30))
			d := topo.NodeID(rng.Intn(30))
			if s == d {
				continue
			}
			amount := 1 + rng.Float64()*150
			before := nodeFunds(net, g, d)
			tx, err := net.Begin(s, d, amount)
			if err != nil {
				t.Fatal(err)
			}
			rerr := r.Route(tx)
			if !tx.Finished() {
				t.Fatalf("%s trial %d: session unfinished", r.Name(), trial)
			}
			gained := nodeFunds(net, g, d) - before
			if rerr == nil && math.Abs(gained-amount) > 1e-5 {
				t.Fatalf("%s trial %d: gained %v, want %v", r.Name(), trial, gained, amount)
			}
			if rerr != nil && math.Abs(gained) > 1e-6 {
				t.Fatalf("%s trial %d: failed payment moved %v", r.Name(), trial, gained)
			}
			if math.Abs(net.TotalFunds()-total) > 1e-4 {
				t.Fatalf("%s trial %d: funds drifted", r.Name(), trial)
			}
		}
	}
}

func nodeFunds(net *pcn.Network, g *topo.Graph, u topo.NodeID) float64 {
	total := 0.0
	for _, v := range g.Neighbors(u) {
		total += net.Balance(u, v)
	}
	return total
}
