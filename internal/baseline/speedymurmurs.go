package baseline

import (
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/topo"
)

// SpeedyMurmurs is the embedding-based static baseline (§4.1, Roos et
// al. NDSS'18): spanning trees are grown from a few landmark nodes and
// every node receives a prefix coordinate per tree; payments are split
// into equal shards, one per landmark, and each shard is forwarded
// greedily to the neighbour closest (in tree distance) to the receiver
// that has sufficient local balance. There is no probing: forwarding
// decisions use only knowledge a node has of its own channels — which is
// why the scheme is cheap but blind to remote depletion.
type SpeedyMurmurs struct {
	landmarks int

	mu    sync.Mutex
	graph *topo.Graph
	emb   *embedding
}

// embedding holds per-landmark spanning trees and node depths.
type embedding struct {
	parent [][]topo.NodeID // [tree][node] BFS-tree parent
	depth  [][]int         // [tree][node] depth, -1 when unreachable
}

// NewSpeedyMurmurs returns the baseline with the given number of
// landmark trees (the paper uses 3, following the original work).
func NewSpeedyMurmurs(landmarks int) *SpeedyMurmurs {
	if landmarks < 1 {
		landmarks = 1
	}
	return &SpeedyMurmurs{landmarks: landmarks}
}

// Name implements route.Router.
func (sm *SpeedyMurmurs) Name() string { return "SpeedyMurmurs" }

// embeddingFor lazily builds (and caches) the landmark trees for g.
// Landmarks are the highest-degree nodes — well-connected roots keep
// tree paths short, matching the original scheme's guidance.
func (sm *SpeedyMurmurs) embeddingFor(g *topo.Graph) *embedding {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.graph == g && sm.emb != nil {
		return sm.emb
	}
	n := g.NumNodes()
	order := make([]topo.NodeID, n)
	for i := range order {
		order[i] = topo.NodeID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	trees := sm.landmarks
	if trees > n {
		trees = n
	}
	emb := &embedding{
		parent: make([][]topo.NodeID, trees),
		depth:  make([][]int, trees),
	}
	for i := 0; i < trees; i++ {
		root := order[i]
		emb.parent[i] = graph.SpanningTree(g, root)
		emb.depth[i] = graph.Distances(g, root)
	}
	sm.graph = g
	sm.emb = emb
	return emb
}

// treeDist returns the tree distance between u and v in tree i:
// depth(u) + depth(v) − 2·depth(lca). Unreachable nodes are infinitely
// far (returned as a large constant).
func (e *embedding) treeDist(i int, u, v topo.NodeID) int {
	const unreachable = 1 << 30
	du, dv := e.depth[i][u], e.depth[i][v]
	if du < 0 || dv < 0 {
		return unreachable
	}
	// Walk the deeper node up to equal depth, then both together.
	a, b, da, db := u, v, du, dv
	for da > db {
		a = e.parent[i][a]
		da--
	}
	for db > da {
		b = e.parent[i][b]
		db--
	}
	for a != b {
		a = e.parent[i][a]
		b = e.parent[i][b]
		da--
	}
	return (du - da) + (dv - da)
}

// Route implements route.Router: split the payment into one equal shard
// per landmark tree and forward each greedily. A payment succeeds only
// if every shard finds a path — atomicity over shards, as with AMP.
func (sm *SpeedyMurmurs) Route(s route.Session) error {
	emb := sm.embeddingFor(s.Graph())
	trees := len(emb.parent)
	shard := s.Demand() / float64(trees)

	paths := make([][]topo.NodeID, 0, trees)
	for i := 0; i < trees; i++ {
		p := sm.greedyPath(s, emb, i, shard)
		if p == nil {
			if err := s.Abort(); err != nil {
				return err
			}
			return route.ErrInsufficient
		}
		paths = append(paths, p)
	}
	for _, p := range paths {
		if err := s.Hold(p, shard); err != nil {
			// A later shard exhausted a channel an earlier one reserved.
			if aerr := s.Abort(); aerr != nil {
				return aerr
			}
			return route.ErrInsufficient
		}
	}
	return route.Finish(s, route.ErrInsufficient)
}

// greedyPath forwards hop by hop in tree i: from the current node, move
// to the neighbour with strictly smaller tree distance to the receiver
// whose local channel balance covers the shard; ties break towards the
// smaller node ID. Strictly decreasing distance guarantees loop-free
// termination. Returns nil when stuck.
func (sm *SpeedyMurmurs) greedyPath(s route.Session, emb *embedding, i int, shard float64) []topo.NodeID {
	g := s.Graph()
	cur := s.Sender()
	target := s.Receiver()
	path := []topo.NodeID{cur}
	curDist := emb.treeDist(i, cur, target)
	for cur != target {
		best := topo.NodeID(-1)
		bestDist := curDist
		for _, w := range g.Neighbors(cur) {
			d := emb.treeDist(i, w, target)
			if d >= bestDist {
				continue
			}
			if s.LocalBalance(cur, w) < shard {
				continue
			}
			if best == -1 || d < bestDist || w < best {
				best = w
				bestDist = d
			}
		}
		if best == -1 {
			return nil
		}
		cur = best
		curDist = bestDist
		path = append(path, cur)
	}
	return path
}
