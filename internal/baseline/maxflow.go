package baseline

import (
	"math"

	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/topo"
)

// MaxFlowFullProbe is the unmodified Edmonds–Karp strawman that Flash's
// Algorithm 1 improves on: it learns every channel balance up front
// (equivalent to probing the whole network) and then runs classic
// max-flow. Its success volume upper-bounds any path-based scheme, but
// its probing cost scales with the network, which is exactly the paper's
// argument for the k-bounded lazy variant (§3.2: "probing each channel
// of each path whenever an elephant payment arrives does not scale").
//
// Probe accounting: the router charges itself one probe round trip per
// channel (2 messages each, both directions covered by one probe), the
// cost of a full-network balance collection.
type MaxFlowFullProbe struct{}

// NewMaxFlowFullProbe returns the full-probing max-flow router.
func NewMaxFlowFullProbe() *MaxFlowFullProbe { return &MaxFlowFullProbe{} }

// Name implements route.Router.
func (m *MaxFlowFullProbe) Name() string { return "MaxFlow-FullProbe" }

// Route implements route.Router.
func (m *MaxFlowFullProbe) Route(s route.Session) error {
	g := s.Graph()
	// Collect every channel's balances. LocalBalance stands in for the
	// network-wide probe whose message cost we charge explicitly below
	// by probing one shortest path per channel would be artificial;
	// instead the cost model is 2 messages per channel.
	chargeFullProbe(s)
	capOf := func(u, v topo.NodeID) float64 { return s.LocalBalance(u, v) }
	res := graph.MaxFlow(g, s.Sender(), s.Receiver(), capOf, -1, s.Demand())
	if res.Value < s.Demand()-route.Epsilon {
		if err := s.Abort(); err != nil {
			return err
		}
		return route.ErrInsufficient
	}
	// Sequentially place the per-path discovery flows (net-flow safe
	// because MaxFlow already respected capacities; HoldUpTo recovers
	// from any residual-offset corner case).
	remaining := s.Demand()
	for _, p := range res.Paths {
		if remaining <= route.Epsilon {
			break
		}
		bottleneck := pathFlowOn(res, p)
		amount := math.Min(bottleneck, remaining)
		if amount <= route.Epsilon {
			continue
		}
		held := route.HoldUpTo(s, p, amount)
		remaining -= held
	}
	if remaining > route.Epsilon {
		for _, p := range res.Paths {
			if remaining <= route.Epsilon {
				break
			}
			remaining -= route.HoldUpTo(s, p, remaining)
		}
	}
	return route.Finish(s, route.ErrInsufficient)
}

// pathFlowOn estimates how much of the final flow travels path p: the
// minimum net flow over its hops (a safe, possibly conservative bound).
func pathFlowOn(res graph.FlowResult, p []topo.NodeID) float64 {
	minFlow := math.Inf(1)
	for _, e := range graph.PathEdges(p) {
		f := res.Flow[e]
		if f < minFlow {
			minFlow = f
		}
	}
	if math.IsInf(minFlow, 1) {
		return 0
	}
	return minFlow
}

// chargeFullProbe bills the session for a network-wide balance
// collection: one probe round trip (2 messages) per channel. The
// Session interface has no "charge messages" method — probing the
// sender's adjacent channels repeatedly models the same cost: we probe
// ⌈channels⌉ one-hop paths. When the sender has no adjacent channel the
// cost cannot be modelled and is skipped (the payment will fail
// anyway).
func chargeFullProbe(s route.Session) {
	g := s.Graph()
	nbrs := g.Neighbors(s.Sender())
	if len(nbrs) == 0 {
		return
	}
	// Cheapest chargeable unit: a 1-hop probe = 2 messages. One per
	// channel in the network.
	oneHop := []topo.NodeID{s.Sender(), nbrs[0]}
	// The one-hop path must end at the receiver to be a valid probe
	// path; sessions only validate sender→receiver paths. Fall back to
	// probing the shortest path repeatedly when no direct channel to the
	// receiver exists.
	path := oneHop
	if nbrs[0] != s.Receiver() {
		path = graph.ShortestPath(g, s.Sender(), s.Receiver(), nil)
		if path == nil {
			return
		}
	}
	hops := len(path) - 1
	// Number of probes so that total messages ≈ 2 × NumChannels.
	probes := (g.NumChannels() + hops - 1) / hops
	for i := 0; i < probes; i++ {
		if _, err := s.Probe(path); err != nil {
			return
		}
	}
}
