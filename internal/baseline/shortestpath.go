// Package baseline implements the routing schemes the paper compares
// Flash against (§4.1):
//
//   - ShortestPath — the static single-path baseline ("SP uses the path
//     with the fewest hops between the sender and receiver").
//   - Spider — the state-of-the-art dynamic scheme: waterfilling over 4
//     edge-disjoint shortest paths (Sivaraman et al.).
//   - SpeedyMurmurs — embedding-based routing over landmark spanning
//     trees with greedy distance-decreasing forwarding (Roos et al.).
//   - MaxFlowFullProbe — classic Edmonds–Karp with whole-network
//     probing, the unmodified algorithm Flash's Algorithm 1 descends
//     from (used by the probing-overhead ablation).
//
// All of them implement route.Router and run on the same Session
// abstraction as Flash, in both the simulator and the TCP testbed.
package baseline

import (
	"repro/internal/graph"
	"repro/internal/route"
)

// ShortestPath routes every payment in full over the minimum-hop path,
// with no probing and no multipath. It is the paper's "SP" baseline.
type ShortestPath struct{}

// NewShortestPath returns the SP baseline router.
func NewShortestPath() *ShortestPath { return &ShortestPath{} }

// Name implements route.Router.
func (sp *ShortestPath) Name() string { return "ShortestPath" }

// Route implements route.Router.
func (sp *ShortestPath) Route(s route.Session) error {
	path := graph.ShortestPath(s.Graph(), s.Sender(), s.Receiver(), nil)
	if path == nil {
		if err := s.Abort(); err != nil {
			return err
		}
		return route.ErrNoRoute
	}
	if err := s.Hold(path, s.Demand()); err != nil {
		if aerr := s.Abort(); aerr != nil {
			return aerr
		}
		return route.ErrInsufficient
	}
	return s.Commit()
}
