package baseline

import (
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/topo"
)

// Spider is the paper's state-of-the-art comparison point (§4.1): for
// every payment it probes a fixed set of edge-disjoint shortest paths
// and splits the payment across them with a waterfilling heuristic,
// "balancing paths by using those with maximum available capacity".
//
// Spider treats all payments identically — it probes its paths on every
// payment, which is exactly the overhead Flash's mice routing avoids
// (Figure 8).
type Spider struct {
	numPaths int
	noCache  bool

	mu    sync.Mutex
	graph *topo.Graph // cache key: path sets are static per topology
	cache map[pairKey][][]topo.NodeID
}

type pairKey struct {
	s, t topo.NodeID
}

// NewSpider returns a Spider router using numPaths edge-disjoint
// shortest paths (the paper uses 4).
func NewSpider(numPaths int) *Spider {
	if numPaths < 1 {
		numPaths = 1
	}
	return &Spider{numPaths: numPaths, cache: make(map[pairKey][][]topo.NodeID)}
}

// SetCaching toggles memoisation of path sets per sender/receiver pair.
// Caching never changes routing outcomes (the path set depends only on
// the topology); it only removes repeated computation. The testbed
// disables it to reproduce the paper's processing-delay comparison,
// where Spider recomputes its paths for every payment.
func (sp *Spider) SetCaching(on bool) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.noCache = !on
}

// Name implements route.Router.
func (sp *Spider) Name() string { return "Spider" }

// paths returns the (cached) edge-disjoint shortest path set for a
// sender/receiver pair. Path sets depend only on topology, so they are
// computed once — Spider's probing happens per payment, but its path
// selection is static.
func (sp *Spider) paths(g *topo.Graph, s, t topo.NodeID) [][]topo.NodeID {
	sp.mu.Lock()
	if sp.noCache {
		sp.mu.Unlock()
		return graph.EdgeDisjointPaths(g, s, t, sp.numPaths)
	}
	defer sp.mu.Unlock()
	if sp.graph != g {
		sp.graph = g
		sp.cache = make(map[pairKey][][]topo.NodeID)
	}
	key := pairKey{s, t}
	if p, ok := sp.cache[key]; ok {
		return p
	}
	p := graph.EdgeDisjointPaths(g, s, t, sp.numPaths)
	sp.cache[key] = p
	return p
}

// Route implements route.Router: probe all paths, waterfill the demand
// across their bottleneck capacities, hold, and commit.
func (sp *Spider) Route(s route.Session) error {
	paths := sp.paths(s.Graph(), s.Sender(), s.Receiver())
	if len(paths) == 0 {
		if err := s.Abort(); err != nil {
			return err
		}
		return route.ErrNoRoute
	}
	caps := make([]float64, len(paths))
	for i, p := range paths {
		info, err := s.Probe(p)
		if err != nil {
			continue
		}
		caps[i] = route.MinAvailable(info)
	}
	alloc := Waterfill(caps, s.Demand())
	if alloc == nil {
		if err := s.Abort(); err != nil {
			return err
		}
		return route.ErrInsufficient
	}
	remaining := s.Demand()
	for i, amount := range alloc {
		if amount <= route.Epsilon || remaining <= route.Epsilon {
			continue
		}
		if amount > remaining {
			amount = remaining
		}
		held := route.HoldUpTo(s, paths[i], amount)
		remaining -= held
	}
	return route.Finish(s, route.ErrInsufficient)
}

// Waterfill splits demand across paths with the given capacities so
// that the *remaining* capacities are as equal as possible: the
// allocation is x_i = max(0, c_i − L) with the water level L chosen so
// Σx_i = demand. Returns nil when Σc_i < demand (infeasible). This is
// the waterfilling heuristic Spider uses to balance path utilisation.
func Waterfill(caps []float64, demand float64) []float64 {
	n := len(caps)
	total := 0.0
	for _, c := range caps {
		total += c
	}
	if total < demand-route.Epsilon || n == 0 {
		return nil
	}
	// Sort capacity indices descending; the level L sits between two
	// consecutive capacities.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return caps[idx[a]] > caps[idx[b]] })

	cum := 0.0
	level := 0.0
	for k := 1; k <= n; k++ {
		cum += caps[idx[k-1]]
		l := (cum - demand) / float64(k)
		next := 0.0
		if k < n {
			next = caps[idx[k]]
		}
		if l >= next-route.Epsilon {
			level = l
			break
		}
	}
	if level < 0 {
		level = 0
	}
	alloc := make([]float64, n)
	allocated := 0.0
	for _, i := range idx {
		x := caps[i] - level
		if x < 0 {
			x = 0
		}
		alloc[i] = x
		allocated += x
	}
	// Normalise rounding drift so the allocation sums exactly to demand.
	if allocated > 0 {
		scale := demand / allocated
		for i := range alloc {
			alloc[i] *= scale
			if alloc[i] > caps[i] {
				alloc[i] = caps[i]
			}
		}
	}
	return alloc
}
