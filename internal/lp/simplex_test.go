package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveSimpleInequality(t *testing.T) {
	// minimize -x - 2y  s.t.  x + y ≤ 4, x ≤ 2, y ≤ 3, x,y ≥ 0.
	// Optimum at (1, 3): objective -7.
	sol, err := Solve(Problem{
		C:   []float64{-1, -2},
		Aub: [][]float64{{1, 1}, {1, 0}, {0, 1}},
		Bub: []float64{4, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, -7, 1e-7) {
		t.Errorf("objective = %v, want -7 (x=%v)", sol.Objective, sol.X)
	}
}

func TestSolveEquality(t *testing.T) {
	// minimize 3x + 2y  s.t.  x + y = 10, x ≤ 6, x,y ≥ 0. Optimum (0,10)=20.
	sol, err := Solve(Problem{
		C:   []float64{3, 2},
		Aeq: [][]float64{{1, 1}},
		Beq: []float64{10},
		Aub: [][]float64{{1, 0}},
		Bub: []float64{6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 20, 1e-7) {
		t.Errorf("objective = %v, want 20 (x=%v)", sol.Objective, sol.X)
	}
	if !approx(sol.X[0]+sol.X[1], 10, 1e-7) {
		t.Errorf("equality violated: %v", sol.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x = 5 and x ≤ 3 cannot both hold.
	_, err := Solve(Problem{
		C:   []float64{1},
		Aeq: [][]float64{{1}},
		Beq: []float64{5},
		Aub: [][]float64{{1}},
		Bub: []float64{3},
	})
	if err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// minimize -x with only x ≥ 0: unbounded below.
	_, err := Solve(Problem{
		C:   []float64{-1},
		Aub: [][]float64{{-1}},
		Bub: []float64{0},
	})
	if err != ErrUnbounded {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveUnconstrained(t *testing.T) {
	sol, err := Solve(Problem{C: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[0] != 0 || sol.X[1] != 0 {
		t.Errorf("X = %v, want zeros", sol.X)
	}
	if _, err := Solve(Problem{C: []float64{-1}}); err != ErrUnbounded {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// -x ≤ -2  ⇔  x ≥ 2; minimize x → 2.
	sol, err := Solve(Problem{
		C:   []float64{1},
		Aub: [][]float64{{-1}},
		Bub: []float64{-2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0], 2, 1e-7) {
		t.Errorf("x = %v, want 2", sol.X[0])
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Degenerate vertex: redundant constraints meeting at the optimum.
	sol, err := Solve(Problem{
		C:   []float64{-1, -1},
		Aub: [][]float64{{1, 0}, {1, 0}, {0, 1}, {1, 1}},
		Bub: []float64{1, 1, 1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, -2, 1e-7) {
		t.Errorf("objective = %v, want -2", sol.Objective)
	}
}

func TestSolveRedundantEquality(t *testing.T) {
	// Duplicate equality rows force a leftover basic artificial in an
	// all-zero row, exercising the drive-out path.
	sol, err := Solve(Problem{
		C:   []float64{1, 1},
		Aeq: [][]float64{{1, 1}, {1, 1}, {2, 2}},
		Beq: []float64{4, 4, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0]+sol.X[1], 4, 1e-7) {
		t.Errorf("x = %v, want sum 4", sol.X)
	}
}

func TestValidateRagged(t *testing.T) {
	bad := []Problem{
		{C: []float64{1}, Aub: [][]float64{{1, 2}}, Bub: []float64{1}},
		{C: []float64{1}, Aub: [][]float64{{1}}, Bub: []float64{1, 2}},
		{C: []float64{1}, Aeq: [][]float64{{1, 2}}, Beq: []float64{1}},
		{C: []float64{1}, Aeq: [][]float64{{1}}, Beq: nil},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// TestSolvePaymentSplit solves a miniature instance of the paper's
// program (1): 3 paths with capacities 30/30/100 and per-unit fee rates
// 0.05/0.01/0.02, demand 60. Cheapest-first fills path2 (30 @0.01) and
// path3 (30 @0.02) for total fee 0.9.
func TestSolvePaymentSplit(t *testing.T) {
	sol, err := Solve(Problem{
		C:   []float64{0.05, 0.01, 0.02},
		Aeq: [][]float64{{1, 1, 1}},
		Beq: []float64{60},
		Aub: [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
		Bub: []float64{30, 30, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 0.9, 1e-7) {
		t.Errorf("fee = %v, want 0.9 (x=%v)", sol.Objective, sol.X)
	}
	if !approx(sol.X[0], 0, 1e-7) || !approx(sol.X[1], 30, 1e-7) || !approx(sol.X[2], 30, 1e-7) {
		t.Errorf("split = %v, want [0 30 30]", sol.X)
	}
}

// randomSplitProblem builds a random feasible payment-split LP: n paths
// with random capacities and fee rates, demand no larger than the total
// capacity.
func randomSplitProblem(rng *rand.Rand, n int) Problem {
	caps := make([]float64, n)
	rates := make([]float64, n)
	total := 0.0
	aub := make([][]float64, n)
	for i := 0; i < n; i++ {
		caps[i] = 1 + rng.Float64()*99
		rates[i] = 0.001 + rng.Float64()*0.099
		total += caps[i]
		row := make([]float64, n)
		row[i] = 1
		aub[i] = row
	}
	demand := rng.Float64() * total
	return Problem{
		C:   rates,
		Aeq: [][]float64{ones(n)},
		Beq: []float64{demand},
		Aub: aub,
		Bub: caps,
	}
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// greedySplit is the obvious cheapest-path-first allocation; the LP
// optimum must never cost more.
func greedySplit(p Problem) float64 {
	n := len(p.C)
	demand := p.Beq[0]
	type pathCost struct {
		rate, cap float64
	}
	paths := make([]pathCost, n)
	for i := 0; i < n; i++ {
		paths[i] = pathCost{p.C[i], p.Bub[i]}
	}
	// insertion sort by rate
	for i := 1; i < n; i++ {
		for j := i; j > 0 && paths[j].rate < paths[j-1].rate; j-- {
			paths[j], paths[j-1] = paths[j-1], paths[j]
		}
	}
	fee := 0.0
	for _, pc := range paths {
		amt := math.Min(demand, pc.cap)
		fee += amt * pc.rate
		demand -= amt
		if demand <= 0 {
			break
		}
	}
	return fee
}

// Property: for random feasible payment-split problems, the simplex
// solution (a) satisfies all constraints and (b) matches the greedy
// cheapest-first optimum, which is known to be optimal for this
// separable structure.
func TestSolveSplitOptimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		p := randomSplitProblem(rng, n)
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v (problem %+v)", trial, err, p)
		}
		sum := 0.0
		for i, x := range sol.X {
			if x < -1e-7 {
				t.Fatalf("trial %d: negative allocation %v", trial, sol.X)
			}
			if x > p.Bub[i]+1e-6 {
				t.Fatalf("trial %d: capacity violated: x=%v cap=%v", trial, x, p.Bub[i])
			}
			sum += x
		}
		if !approx(sum, p.Beq[0], 1e-5) {
			t.Fatalf("trial %d: demand %v not met: sum=%v", trial, p.Beq[0], sum)
		}
		want := greedySplit(p)
		if sol.Objective > want+1e-5 || sol.Objective < want-1e-5 {
			t.Fatalf("trial %d: objective %v, greedy optimum %v", trial, sol.Objective, want)
		}
	}
}

// Property (testing/quick): solutions to random 2-variable problems are
// always feasible when Solve reports success.
func TestSolveFeasibilityProperty(t *testing.T) {
	f := func(a1, a2, b1, c1, c2 uint8) bool {
		p := Problem{
			C:   []float64{float64(c1), float64(c2)},
			Aub: [][]float64{{float64(a1), float64(a2)}},
			Bub: []float64{float64(b1)},
		}
		sol, err := Solve(p)
		if err != nil {
			return true // infeasible/unbounded is allowed, just not wrong
		}
		lhs := float64(a1)*sol.X[0] + float64(a2)*sol.X[1]
		return lhs <= float64(b1)+1e-6 && sol.X[0] >= -1e-9 && sol.X[1] >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolveElephantSizedLP(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	p := randomSplitProblem(rng, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
