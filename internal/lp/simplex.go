// Package lp implements a small, dependency-free linear-program solver
// based on the two-phase primal simplex method with Bland's anti-cycling
// rule.
//
// It exists to solve the Flash paper's program (1): split an elephant
// payment across the k probed paths so that total (linear) transaction
// fees are minimised subject to meeting the demand and respecting every
// channel's probed capacity. Those programs are tiny — tens of variables,
// at most a few hundred constraints — so a dense tableau is the right
// tool: simple, exact enough, and fast.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Problem is a linear program in the form
//
//	minimize   C·x
//	subject to Aub·x ≤ Bub
//	           Aeq·x = Beq
//	           x ≥ 0
//
// Aub and Aeq may independently be empty. Every row of Aub/Aeq must have
// exactly len(C) entries.
type Problem struct {
	C   []float64   // objective coefficients, one per variable
	Aub [][]float64 // inequality constraint matrix (≤)
	Bub []float64   // inequality right-hand sides
	Aeq [][]float64 // equality constraint matrix
	Beq []float64   // equality right-hand sides
}

// Solution is an optimal feasible point of a Problem.
type Solution struct {
	X         []float64 // optimal variable values, len == len(Problem.C)
	Objective float64   // C·X
	Pivots    int       // simplex pivots performed (diagnostic)
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: problem is infeasible")
	ErrUnbounded  = errors.New("lp: problem is unbounded")
	ErrIterations = errors.New("lp: iteration limit exceeded")
)

const (
	eps      = 1e-9
	maxIters = 50000
)

// Validate checks the problem dimensions, returning a descriptive error
// for ragged matrices or mismatched right-hand sides.
func (p *Problem) Validate() error {
	n := len(p.C)
	if len(p.Aub) != len(p.Bub) {
		return fmt.Errorf("lp: %d inequality rows but %d right-hand sides", len(p.Aub), len(p.Bub))
	}
	if len(p.Aeq) != len(p.Beq) {
		return fmt.Errorf("lp: %d equality rows but %d right-hand sides", len(p.Aeq), len(p.Beq))
	}
	for i, row := range p.Aub {
		if len(row) != n {
			return fmt.Errorf("lp: inequality row %d has %d entries, want %d", i, len(row), n)
		}
	}
	for i, row := range p.Aeq {
		if len(row) != n {
			return fmt.Errorf("lp: equality row %d has %d entries, want %d", i, len(row), n)
		}
	}
	return nil
}

// tableau is a dense simplex tableau: m constraint rows over cols
// columns, the last column being the right-hand side. basis[i] records
// which variable is basic in row i.
type tableau struct {
	rows  [][]float64
	basis []int
	nOrig int // original variables
	nSlk  int // slack variables
	nArt  int // artificial variables
}

func (t *tableau) cols() int { return t.nOrig + t.nSlk + t.nArt + 1 }
func (t *tableau) rhs() int  { return t.cols() - 1 }

// Solve optimises the problem. It returns ErrInfeasible when the
// constraints admit no x ≥ 0, and ErrUnbounded when the objective can be
// driven to −∞.
func Solve(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(p.C)
	mub, meq := len(p.Aub), len(p.Beq)
	m := mub + meq

	if m == 0 {
		// No constraints: optimum is x = 0 unless some cost is negative,
		// in which case the problem is unbounded.
		for _, c := range p.C {
			if c < -eps {
				return Solution{}, ErrUnbounded
			}
		}
		return Solution{X: make([]float64, n)}, nil
	}

	t := &tableau{nOrig: n, nSlk: mub}

	// Artificial variables are needed for equality rows and for
	// inequality rows whose right-hand side is negative (their slack
	// enters with coefficient −1 after sign normalisation).
	type rowSpec struct {
		coef    []float64
		b       float64
		slack   int // slack column index or -1
		slackCo float64
	}
	specs := make([]rowSpec, 0, m)
	for i := 0; i < mub; i++ {
		coef := append([]float64(nil), p.Aub[i]...)
		b := p.Bub[i]
		slackCo := 1.0
		if b < 0 {
			for j := range coef {
				coef[j] = -coef[j]
			}
			b = -b
			slackCo = -1
		}
		specs = append(specs, rowSpec{coef: coef, b: b, slack: n + i, slackCo: slackCo})
	}
	for i := 0; i < meq; i++ {
		coef := append([]float64(nil), p.Aeq[i]...)
		b := p.Beq[i]
		if b < 0 {
			for j := range coef {
				coef[j] = -coef[j]
			}
			b = -b
		}
		specs = append(specs, rowSpec{coef: coef, b: b, slack: -1})
	}

	// Assign artificial columns.
	artOf := make([]int, m) // artificial column for row i, or -1
	nArt := 0
	for i, s := range specs {
		if s.slack >= 0 && s.slackCo > 0 {
			artOf[i] = -1 // slack can start basic
		} else {
			artOf[i] = n + mub + nArt
			nArt++
		}
	}
	t.nArt = nArt

	t.rows = make([][]float64, m)
	t.basis = make([]int, m)
	for i, s := range specs {
		row := make([]float64, t.cols())
		copy(row, s.coef)
		if s.slack >= 0 {
			row[s.slack] = s.slackCo
		}
		if artOf[i] >= 0 {
			row[artOf[i]] = 1
			t.basis[i] = artOf[i]
		} else {
			t.basis[i] = s.slack
		}
		row[t.rhs()] = s.b
		t.rows[i] = row
	}

	pivots := 0

	// Phase 1: minimise the sum of artificial variables.
	if nArt > 0 {
		phase1 := make([]float64, t.cols()-1)
		for j := n + mub; j < n+mub+nArt; j++ {
			phase1[j] = 1
		}
		obj, p1, err := t.optimize(phase1, false)
		pivots += p1
		if err != nil {
			return Solution{}, err
		}
		if obj > 1e-6 {
			return Solution{}, ErrInfeasible
		}
		// Drive any remaining basic artificials out of the basis so they
		// cannot re-enter with a positive value in phase 2.
		for i := range t.basis {
			if t.basis[i] < n+mub {
				continue
			}
			pivoted := false
			for j := 0; j < n+mub; j++ {
				if math.Abs(t.rows[i][j]) > eps {
					t.pivot(i, j)
					pivots++
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant all-zero row; neutralise it.
				for j := range t.rows[i] {
					t.rows[i][j] = 0
				}
			}
		}
	}

	// Phase 2: optimise the true objective, artificials barred.
	cost := make([]float64, t.cols()-1)
	copy(cost, p.C)
	_, p2, err := t.optimize(cost, true)
	pivots += p2
	if err != nil {
		return Solution{}, err
	}

	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			x[b] = t.rows[i][t.rhs()]
		}
	}
	obj := 0.0
	for j, c := range p.C {
		obj += c * x[j]
	}
	return Solution{X: x, Objective: obj, Pivots: pivots}, nil
}

// optimize runs simplex pivots until the reduced costs admit no
// improving column, minimising cost over the current tableau. When
// barArtificials is set, artificial columns may not enter the basis.
// It returns the achieved objective value.
//
// The reduced-cost row z_j − c_j is computed once and then maintained
// incrementally through the same elimination as the constraint rows —
// the standard full-tableau method. This keeps each pivot O(rows·cols)
// instead of recomputing every reduced cost from the basis, which
// matters because the fee LP sits on the elephant routing hot path.
func (t *tableau) optimize(cost []float64, barArtificials bool) (float64, int, error) {
	limit := t.nOrig + t.nSlk
	if !barArtificials {
		limit += t.nArt
	}
	// Initial reduced costs for the current basis.
	obj := make([]float64, t.cols()) // obj[rhs] tracks Σ cB_i·b_i
	for j := 0; j < t.cols(); j++ {
		zj := 0.0
		for i, b := range t.basis {
			if b < len(cost) && cost[b] != 0 {
				zj += cost[b] * t.rows[i][j]
			}
		}
		obj[j] = zj
	}
	for j := 0; j < limit; j++ {
		if j < len(cost) {
			obj[j] -= cost[j]
		}
	}

	pivots := 0
	for iter := 0; iter < maxIters; iter++ {
		// Entering column = smallest j with positive reduced cost (Bland).
		enter := -1
		for j := 0; j < limit; j++ {
			if obj[j] > eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return obj[t.rhs()], pivots, nil
		}
		// Ratio test with Bland tie-breaking on basis index.
		leave := -1
		best := math.Inf(1)
		for i := range t.rows {
			a := t.rows[i][enter]
			if a > eps {
				ratio := t.rows[i][t.rhs()] / a
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return 0, pivots, ErrUnbounded
		}
		t.pivot(leave, enter)
		// Eliminate the entering column from the reduced-cost row.
		if factor := obj[enter]; factor != 0 {
			pr := t.rows[leave]
			for j := range obj {
				obj[j] -= factor * pr[j]
			}
			obj[enter] = 0
		}
		pivots++
	}
	return 0, pivots, ErrIterations
}

// pivot makes column enter basic in row leave via Gaussian elimination.
func (t *tableau) pivot(leave, enter int) {
	pr := t.rows[leave]
	pivVal := pr[enter]
	for j := range pr {
		pr[j] /= pivVal
	}
	for i, row := range t.rows {
		if i == leave {
			continue
		}
		factor := row[enter]
		if factor == 0 {
			continue
		}
		for j := range row {
			row[j] -= factor * pr[j]
		}
		row[enter] = 0 // kill residual rounding error
	}
	t.basis[leave] = enter
}
