package route

import (
	"errors"
	"math"
	"testing"

	"repro/internal/pcn"
	"repro/internal/topo"
)

func lineNet(t *testing.T) *pcn.Network {
	t.Helper()
	g := topo.Line(3)
	net := pcn.New(g)
	for _, e := range g.Channels() {
		if err := net.SetBalance(e.A, e.B, 100, 100); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestMinAvailable(t *testing.T) {
	info := []pcn.HopInfo{{Available: 30}, {Available: 10}, {Available: 20}}
	if got := MinAvailable(info); got != 10 {
		t.Errorf("MinAvailable = %v, want 10", got)
	}
	if got := MinAvailable(nil); got != 0 {
		t.Errorf("MinAvailable(nil) = %v, want 0", got)
	}
}

func TestPathRateAndFee(t *testing.T) {
	info := []pcn.HopInfo{
		{Fee: pcn.FeeSchedule{Rate: 0.01}},
		{Fee: pcn.FeeSchedule{Rate: 0.02, Base: 1}},
	}
	if got := PathRate(info); math.Abs(got-0.03) > 1e-12 {
		t.Errorf("PathRate = %v, want 0.03", got)
	}
	if got := PathFee(info, 100); math.Abs(got-(1+0.01*100+0.02*100)) > 1e-12 {
		t.Errorf("PathFee = %v, want 4", got)
	}
}

func TestHoldUpToFullAmount(t *testing.T) {
	net := lineNet(t)
	tx, err := net.Begin(0, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	path := []topo.NodeID{0, 1, 2}
	if held := HoldUpTo(tx, path, 50); held != 50 {
		t.Errorf("held = %v, want 50", held)
	}
	// No probe was needed: the direct hold succeeded.
	if tx.ProbeMessages() != 0 {
		t.Errorf("probes = %d, want 0", tx.ProbeMessages())
	}
	tx.Abort()
}

func TestHoldUpToFallsBackToBottleneck(t *testing.T) {
	net := lineNet(t)
	net.SetBalance(1, 2, 30, 170)
	tx, _ := net.Begin(0, 2, 80)
	path := []topo.NodeID{0, 1, 2}
	if held := HoldUpTo(tx, path, 80); held != 30 {
		t.Errorf("held = %v, want bottleneck 30", held)
	}
	if tx.ProbeMessages() == 0 {
		t.Error("fallback must probe")
	}
	tx.Abort()
}

func TestHoldUpToDeadPath(t *testing.T) {
	net := lineNet(t)
	net.SetBalance(1, 2, 0, 200)
	tx, _ := net.Begin(0, 2, 10)
	if held := HoldUpTo(tx, []topo.NodeID{0, 1, 2}, 10); held != 0 {
		t.Errorf("held = %v on a dead path, want 0", held)
	}
	if held := HoldUpTo(tx, []topo.NodeID{0, 1, 2}, 0); held != 0 {
		t.Errorf("zero want should hold nothing, got %v", held)
	}
	tx.Abort()
}

func TestHoldUpToInvalidPath(t *testing.T) {
	net := lineNet(t)
	tx, _ := net.Begin(0, 2, 10)
	if held := HoldUpTo(tx, []topo.NodeID{0, 2}, 10); held != 0 {
		t.Errorf("held = %v over a missing channel, want 0", held)
	}
	tx.Abort()
}

func TestFinishCommitsWhenCovered(t *testing.T) {
	net := lineNet(t)
	tx, _ := net.Begin(0, 2, 40)
	if err := tx.Hold([]topo.NodeID{0, 1, 2}, 40); err != nil {
		t.Fatal(err)
	}
	if err := Finish(tx, nil); err != nil {
		t.Fatalf("Finish = %v, want commit", err)
	}
	if net.Balance(0, 1) != 60 {
		t.Error("commit did not apply")
	}
}

func TestFinishAbortsOnShortfall(t *testing.T) {
	net := lineNet(t)
	tx, _ := net.Begin(0, 2, 40)
	tx.Hold([]topo.NodeID{0, 1, 2}, 10)
	err := Finish(tx, nil)
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("Finish = %v, want ErrInsufficient", err)
	}
	if net.Balance(0, 1) != 100 {
		t.Error("abort did not release the partial hold")
	}
	// Custom reason propagates.
	tx2, _ := net.Begin(0, 2, 40)
	custom := errors.New("custom")
	if err := Finish(tx2, custom); !errors.Is(err, custom) {
		t.Errorf("Finish custom reason = %v", err)
	}
}
