// Package route defines the seam between routing algorithms and the
// network they run over: a Session is the sender's handle for one
// payment (probe paths, hold partial payments, commit or abort), and a
// Router is any algorithm that drives a Session to completion.
//
// Both the in-memory simulator (pcn.Tx) and the TCP testbed node
// sessions implement Session, so the Flash router and every baseline run
// unchanged in both environments — mirroring how the paper evaluates the
// same algorithms in simulation (§4) and on the prototype (§5).
package route

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/pcn"
	"repro/internal/topo"
)

// Session is one in-flight payment from the sender's point of view.
// Implementations must guarantee atomicity: after Commit every held
// partial payment is applied; after Abort none is.
//
// Concurrency contract: a Session belongs to exactly one goroutine for
// its lifetime — no Session method is called concurrently — with one
// opt-in exception: a Session that implements ParallelProber and
// reports support thereby permits concurrent Probe calls from the
// goroutines of a single router's probe pool. Even then Probe never
// overlaps Hold, Commit or Abort: the router joins its probe workers
// before moving to the hold phase (core.Flash fences rounds on its
// bounded pool). Sessions that do not implement ParallelProber are
// always driven strictly sequentially. The network behind the session,
// however, is shared: any number of sessions may probe, hold and
// commit concurrently, and implementations must make each individual
// operation atomic against the others (pcn.Tx does this with
// per-channel locks acquired in ascending channel-index order).
// Routers given to concurrent sessions must likewise be safe for
// concurrent Route calls (all routers in this repository are).
type Session interface {
	// Graph is the sender's locally available topology (§3.1): full
	// connectivity, no balance information.
	Graph() *topo.Graph
	// Sender and Receiver are the payment endpoints; Demand its amount.
	Sender() topo.NodeID
	Receiver() topo.NodeID
	Demand() float64

	// Probe measures the current available balance and fee schedule of
	// every hop along path, costing messages proportional to path length.
	Probe(path []topo.NodeID) ([]pcn.HopInfo, error)
	// LocalBalance is balance knowledge a node has about its own adjacent
	// channels, free of message cost (used by hop-by-hop schemes).
	LocalBalance(u, v topo.NodeID) float64

	// Hold reserves amount on every hop of path, or reserves nothing and
	// returns an error. HeldTotal is the sum of active reservations.
	Hold(path []topo.NodeID, amount float64) error
	HeldTotal() float64

	// Commit applies all holds atomically; Abort releases them. Exactly
	// one of the two must be called, once.
	Commit() error
	Abort() error

	// Accounting, cumulated over the session's lifetime.
	ProbeMessages() int
	CommitMessages() int
	FeesPaid() float64
	PathsUsed() int
}

// Compile-time check: the in-memory transaction implements Session.
var _ Session = (*pcn.Tx)(nil)

// Yielder is the hold-span seam: it is optionally implemented by
// Sessions whose commit can be suspended across (virtual) time. After
// DeferCommit, the session's Commit records the decision and yields
// instead of settling — the payment's holds stay locked on the
// network, depleting the residuals every other payment probes — and
// Resume later applies the deferred commit (returning true) or, when a
// held channel closed during the span, aborts the whole payment
// HTLC-timeout style (returning false).
//
// Routers never call Resume; they drive the session to Commit/Abort
// exactly as always and need not know whether the seam is armed. The
// harness that armed DeferCommit (the dynamic simulator's hold-span
// mode) owns the Resume call, typically one virtual service time after
// the routing decision. Between Commit and Resume the session counts
// as finished for the Session contract — exactly one of Commit/Abort
// was called — and only Resume may touch it.
type Yielder interface {
	// DeferCommit arms the seam: the next Commit suspends instead of
	// settling.
	DeferCommit()
	// Suspended reports whether the session sits between a deferred
	// Commit and its Resume.
	Suspended() bool
	// Resume settles the span: commit if every held channel survived,
	// abort otherwise. The error reports misuse (resuming a session
	// that is not suspended), not routing failure.
	Resume() (committed bool, err error)
}

// Compile-time check: the in-memory transaction supports hold spans.
var _ Yielder = (*pcn.Tx)(nil)

// Expirer is optionally implemented by Yielder sessions whose
// suspended span can be torn down at an HTLC-style deadline instead of
// resumed. Expire releases every hold — the payment counts as failed —
// and is safe to race against Resume on the same span: exactly one of
// the two settles the funds, the loser gets the implementation's
// not-suspended error. Like Resume, Expire belongs to the harness that
// armed the span (the dynamic engine's deadline events), never to
// routers.
type Expirer interface {
	// Expire releases a suspended span's holds at its deadline.
	Expire() error
}

// Compile-time check: the in-memory transaction supports deadline
// expiry.
var _ Expirer = (*pcn.Tx)(nil)

// ParallelProber is optionally implemented by Sessions whose Probe is
// safe for concurrent calls within one session. Routers with a probe
// pool (core.Flash when Config.ProbeWorkers > 1) check this capability
// before fanning probes out and fall back to strictly sequential
// probing when it is absent or answers false — which is what keeps the
// TCP testbed session, whose wire protocol serialises round trips per
// session, correct without knowing anything about probe pipelines.
//
// Supporting implementations guarantee only Probe-vs-Probe safety;
// the caller still must fence probes from Hold/Commit/Abort (see the
// Session concurrency contract above).
type ParallelProber interface {
	// SupportsParallelProbe reports whether concurrent Probe calls on
	// this session are safe.
	SupportsParallelProbe() bool
}

// Compile-time check: the in-memory transaction supports concurrent
// probing.
var _ ParallelProber = (*pcn.Tx)(nil)

// ProbeCounter is optionally implemented by Sessions that count probe
// rounds — distinct Probe operations, as opposed to the messages those
// probes cost (Session.ProbeMessages). Telemetry uses it to separate
// "how often did routing look" from "how much did looking cost", the
// probe-cost-vs-success friction axis; absence simply leaves the
// flow-record field at zero.
type ProbeCounter interface {
	// ProbeOps returns the number of Probe calls made on this session.
	ProbeOps() int
}

// Compile-time check: the in-memory transaction counts probe rounds.
var _ ProbeCounter = (*pcn.Tx)(nil)

// LatencyMeter is optionally implemented by Sessions that charge
// virtual latency for protocol legs. A probe pipeline that measures
// several candidate paths concurrently uses it to correct the charge
// after each round: Probe bills every path its full RTT sum, but a
// round of concurrent probes only advances virtual time by the
// slowest candidate, so the pipeline credits Σ(round) − max(round)
// back. All quantities are integer nanoseconds — integer adds commute
// exactly, which is what keeps concurrent charging deterministic.
// Absence of the interface (e.g. the TCP testbed session) simply
// leaves probe charges uncorrected, which is right there: the wire
// serialises its round trips.
type LatencyMeter interface {
	// PathLatencyNanos returns the virtual RTT sum along path — the
	// latency one Probe of it is charged.
	PathLatencyNanos(path []topo.NodeID) int64
	// CreditProbeLatency subtracts nanos from the session's charged
	// probe latency.
	CreditProbeLatency(nanos int64)
}

// Compile-time check: the in-memory transaction meters virtual
// latency.
var _ LatencyMeter = (*pcn.Tx)(nil)

// RandSource is optionally implemented by Sessions that carry a
// deterministic per-payment random source. Routers that make random
// choices (e.g. Flash's random mice path order, §3.3) should prefer it
// over their own shared generator when it is non-nil: random decisions
// then depend only on the payment's identity, never on how a concurrent
// replay happened to schedule its workers. The sequential simulator
// leaves it unset, which preserves the historical shared-RNG sequence.
type RandSource interface {
	RNG() *rand.Rand
}

// Compile-time check: pcn.Tx can carry a per-payment RNG.
var _ RandSource = (*pcn.Tx)(nil)

// Router is a routing algorithm. Route must finish the session: Commit
// when the full demand has been held (returning nil) or Abort otherwise
// (returning a non-nil reason). Routers may keep per-sender state (e.g.
// Flash's mice routing tables) across calls.
//
// Route must be safe to call from multiple goroutines with different
// sessions: the concurrent simulator drives one router instance from N
// payment workers at once. Internal state (routing tables, counters,
// RNGs) must be synchronized; per-sender state should be sharded so
// payments from different senders do not contend (core.Flash locks one
// table per sender).
type Router interface {
	Name() string
	Route(s Session) error
}

// Routing failure reasons. Routers wrap or return these so callers can
// distinguish "no path exists" from "paths exist but lack balance".
var (
	ErrNoRoute      = errors.New("route: no path between sender and receiver")
	ErrInsufficient = errors.New("route: insufficient capacity for demand")
)

// ErrInsufficent is the misspelled former name of ErrInsufficient,
// kept as an alias (the identical error value, so errors.Is matches
// across both names) for external callers.
//
// Deprecated: use ErrInsufficient.
var ErrInsufficent = ErrInsufficient

// MinAvailable returns the bottleneck (minimum available balance) of a
// probed path, or 0 for an empty probe result.
func MinAvailable(info []pcn.HopInfo) float64 {
	if len(info) == 0 {
		return 0
	}
	minAvail := math.Inf(1)
	for _, h := range info {
		if h.Available < minAvail {
			minAvail = h.Available
		}
	}
	return minAvail
}

// PathRate sums the proportional fee rates along a probed path: the
// per-unit cost of sending value down it (the LP objective coefficient
// for linear fee schedules).
func PathRate(info []pcn.HopInfo) float64 {
	rate := 0.0
	for _, h := range info {
		rate += h.Fee.Rate
	}
	return rate
}

// PathFee returns the total fee charged for sending amount along a
// probed path, including base fees.
func PathFee(info []pcn.HopInfo, amount float64) float64 {
	fee := 0.0
	for _, h := range info {
		fee += h.Fee.Fee(amount)
	}
	return fee
}

// Epsilon is the tolerance used when comparing held totals against
// demands: a payment counts as fully funded when it is within Epsilon.
const Epsilon = 1e-6

// HoldUpTo tries to hold want on path; if the hold is rejected for
// insufficient balance it probes the path once (paying the message cost)
// and retries with the measured bottleneck, holding whatever the path
// can actually carry, up to want. It returns the amount held. This is
// the "trial-and-error" primitive of Flash's mice routing (§3.3), also
// used to recover when concurrent holds shrank a previously probed path.
func HoldUpTo(s Session, path []topo.NodeID, want float64) float64 {
	if want <= Epsilon {
		return 0
	}
	if err := s.Hold(path, want); err == nil {
		return want
	}
	info, err := s.Probe(path)
	if err != nil {
		return 0
	}
	avail := MinAvailable(info)
	amount := math.Min(want, avail)
	if amount <= Epsilon {
		return 0
	}
	if err := s.Hold(path, amount); err != nil {
		return 0
	}
	return amount
}

// Finish commits the session when its held total covers the demand and
// aborts it otherwise, translating the outcome into Route's contract.
// reason is returned on abort (defaulting to ErrInsufficient).
func Finish(s Session, reason error) error {
	if s.HeldTotal() >= s.Demand()-Epsilon {
		if err := s.Commit(); err != nil {
			return err
		}
		return nil
	}
	if err := s.Abort(); err != nil {
		return err
	}
	if reason == nil {
		reason = ErrInsufficient
	}
	return reason
}
