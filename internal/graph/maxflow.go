package graph

import (
	"math"

	"repro/internal/topo"
)

// Capacity reports the usable capacity of the directed hop u→v. Hops
// over non-existent channels must return 0.
type Capacity func(u, v topo.NodeID) float64

// FlowResult is the outcome of a max-flow computation.
type FlowResult struct {
	Value float64             // total s→t flow
	Flow  map[DirEdge]float64 // net flow per directed hop (≥ 0 entries only)
	Paths [][]topo.NodeID     // augmenting paths in discovery order
}

// MaxFlow computes the maximum s→t flow with the classic Edmonds–Karp
// algorithm (BFS augmenting paths on the residual graph), given full
// knowledge of every channel's directed capacity. This is the unmodified
// algorithm the paper starts from; the Flash contribution in package
// core bounds it to k paths and probes capacities lazily. maxPaths < 0
// means unbounded; demand < 0 means "find the true maximum".
//
// The residual graph includes reverse residual arcs, so later augmenting
// paths may cancel flow placed by earlier ones — exactly why a bounded
// variant still finds near-optimal flow quickly on PCN topologies.
func MaxFlow(g *topo.Graph, s, t topo.NodeID, cap Capacity, maxPaths int, demand float64) FlowResult {
	res := FlowResult{Flow: make(map[DirEdge]float64)}
	if s == t {
		return res
	}
	residual := make(map[DirEdge]float64)
	capOf := func(u, v topo.NodeID) float64 {
		e := DirEdge{U: u, V: v}
		if r, ok := residual[e]; ok {
			return r
		}
		c := cap(u, v)
		residual[e] = c
		return c
	}
	for maxPaths < 0 || len(res.Paths) < maxPaths {
		if demand >= 0 && res.Value >= demand {
			break
		}
		path := ShortestPath(g, s, t, func(u, v topo.NodeID) bool {
			return capOf(u, v) > 0
		})
		if path == nil {
			break
		}
		bottleneck := math.Inf(1)
		for _, e := range PathEdges(path) {
			if r := capOf(e.U, e.V); r < bottleneck {
				bottleneck = r
			}
		}
		if bottleneck <= 0 || math.IsInf(bottleneck, 1) {
			break
		}
		if demand >= 0 && res.Value+bottleneck > demand {
			bottleneck = demand - res.Value
		}
		for _, e := range PathEdges(path) {
			residual[e] = capOf(e.U, e.V) - bottleneck
			residual[e.Reverse()] = capOf(e.V, e.U) + bottleneck
		}
		res.Value += bottleneck
		res.Paths = append(res.Paths, path)
	}
	// Net flow per hop = original capacity − residual, clipped at 0 so
	// each channel direction appears once.
	for e, r := range residual {
		orig := cap(e.U, e.V)
		if net := orig - r; net > 1e-12 {
			res.Flow[e] = net
		}
	}
	return res
}

// FlowConserved checks the conservation law of a flow result: for every
// node other than s and t, inflow equals outflow (within tol). Used by
// property tests.
func FlowConserved(g *topo.Graph, s, t topo.NodeID, f FlowResult, tol float64) bool {
	net := make(map[topo.NodeID]float64)
	for e, x := range f.Flow {
		//flashvet:allow determinism/floataccum conservation residue is compared against the caller's tolerance, which dwarfs order-dependent rounding
		net[e.U] -= x
		//flashvet:allow determinism/floataccum conservation residue is compared against the caller's tolerance, which dwarfs order-dependent rounding
		net[e.V] += x
	}
	for u, x := range net {
		switch u {
		case s:
			if math.Abs(x+f.Value) > tol {
				return false
			}
		case t:
			if math.Abs(x-f.Value) > tol {
				return false
			}
		default:
			if math.Abs(x) > tol {
				return false
			}
		}
	}
	return true
}
