package graph

import (
	"container/heap"

	"repro/internal/topo"
)

// YenKSP returns up to k loopless minimum-hop paths from s to t in
// non-decreasing hop order, using Yen's algorithm (Yen 1971) over BFS
// shortest paths. Flash builds each sender's mice routing table from the
// top-m of these paths (§3.3). Ties between equal-length paths break
// lexicographically on node IDs, so output is deterministic.
func YenKSP(g *topo.Graph, s, t topo.NodeID, k int) [][]topo.NodeID {
	return YenKSPUsable(g, s, t, k, nil)
}

// YenKSPUsable is YenKSP restricted to directed hops satisfying usable:
// every hop of every returned path passes the predicate, exactly as in
// ShortestPath. Flash's speculative probe pipeline uses it to draw the
// per-round candidate set from the sender's residual knowledge graph —
// the BFS shortest path plus edge-avoidance spur deviations, all
// distinct and all deterministic for a fixed graph and predicate.
func YenKSPUsable(g *topo.Graph, s, t topo.NodeID, k int, usable Usable) [][]topo.NodeID {
	if k <= 0 {
		return nil
	}
	first := ShortestPath(g, s, t, usable)
	if first == nil {
		return nil
	}
	accepted := [][]topo.NodeID{first}
	cands := &candHeap{}
	seen := map[uint64][][]topo.NodeID{pathKey(first): {first}}

	// bannedNodes is a generation-stamped set, avoiding a map allocation
	// per spur iteration (Yen runs one spur per prefix per accepted
	// path; this is the algorithm's hot loop).
	bannedNodes := make([]uint32, g.NumNodes())
	gen := uint32(0)

	for len(accepted) < k {
		prev := accepted[len(accepted)-1]
		for i := 0; i+1 < len(prev); i++ {
			spur := prev[i]
			root := prev[:i+1]

			bannedEdges := make(map[DirEdge]struct{}, len(accepted))
			for _, p := range accepted {
				if len(p) > i && samePrefix(p, root) {
					bannedEdges[DirEdge{U: p[i], V: p[i+1]}] = struct{}{}
				}
			}
			gen++
			for _, u := range root[:len(root)-1] {
				bannedNodes[u] = gen
			}

			spurPath := ShortestPath(g, spur, t, func(u, v topo.NodeID) bool {
				if bannedNodes[v] == gen {
					return false
				}
				if _, banned := bannedEdges[DirEdge{U: u, V: v}]; banned {
					return false
				}
				return usable == nil || usable(u, v)
			})
			if spurPath == nil {
				continue
			}
			total := make([]topo.NodeID, 0, len(root)+len(spurPath)-1)
			total = append(total, root...)
			total = append(total, spurPath[1:]...)
			if !rememberPath(seen, total) {
				continue
			}
			heap.Push(cands, total)
		}
		if cands.Len() == 0 {
			break
		}
		accepted = append(accepted, heap.Pop(cands).([]topo.NodeID))
	}
	return accepted
}

func samePrefix(p, prefix []topo.NodeID) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i, u := range prefix {
		if p[i] != u {
			return false
		}
	}
	return true
}

// pathKey hashes a path with FNV-1a for candidate deduplication;
// rememberPath resolves the (astronomically rare) collisions exactly.
func pathKey(p []topo.NodeID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, u := range p {
		h ^= uint64(uint32(u))
		h *= prime64
	}
	return h
}

// rememberPath adds the path to the seen set, reporting whether it was
// new. Hash buckets hold the actual paths so equality is exact.
func rememberPath(seen map[uint64][][]topo.NodeID, p []topo.NodeID) bool {
	key := pathKey(p)
	for _, q := range seen[key] {
		if pathsEqual(p, q) {
			return false
		}
	}
	seen[key] = append(seen[key], p)
	return true
}

func pathsEqual(a, b []topo.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// candHeap orders candidate paths by length, then lexicographically.
type candHeap [][]topo.NodeID

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if len(h[i]) != len(h[j]) {
		return len(h[i]) < len(h[j])
	}
	for x := range h[i] {
		if h[i][x] != h[j][x] {
			return h[i][x] < h[j][x]
		}
	}
	return false
}
func (h candHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.([]topo.NodeID)) }
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
