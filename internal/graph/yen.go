package graph

import (
	"container/heap"

	"repro/internal/topo"
)

// YenKSP returns up to k loopless minimum-hop paths from s to t in
// non-decreasing hop order, using Yen's algorithm (Yen 1971) over BFS
// shortest paths. Flash builds each sender's mice routing table from the
// top-m of these paths (§3.3). Ties between equal-length paths break
// lexicographically on node IDs, so output is deterministic.
func YenKSP(g *topo.Graph, s, t topo.NodeID, k int) [][]topo.NodeID {
	return YenKSPUsable(g, s, t, k, nil)
}

// YenKSPUsable is YenKSP restricted to directed hops satisfying usable:
// every hop of every returned path passes the predicate, exactly as in
// ShortestPath. Flash's speculative probe pipeline uses it to draw the
// per-round candidate set from the sender's residual knowledge graph —
// the BFS shortest path plus edge-avoidance spur deviations, all
// distinct and all deterministic for a fixed graph and predicate.
func YenKSPUsable(g *topo.Graph, s, t topo.NodeID, k int, usable Usable) [][]topo.NodeID {
	return yenKSP(g, s, t, k, usable, nil)
}

// YenKSPCh is YenKSPUsable with a channel-aware predicate (ChUsable):
// same algorithm, same output for an equivalent predicate, but the hop
// filter receives the channel index the traversal already holds.
func YenKSPCh(g *topo.Graph, s, t topo.NodeID, k int, cu ChUsable) [][]topo.NodeID {
	return yenKSP(g, s, t, k, nil, cu)
}

func yenKSP(g *topo.Graph, s, t topo.NodeID, k int, usable Usable, cu ChUsable) [][]topo.NodeID {
	if k <= 0 {
		return nil
	}
	sc := AcquireScratch()
	defer ReleaseScratch(sc)
	first := sc.search(g, s, t, usable, cu, false)
	if first == nil {
		return nil
	}
	first = appendCopy(first)
	accepted := [][]topo.NodeID{first}
	devs := []int{0} // devs[j] = spur index accepted[j] deviated at
	cands := &candHeap{}
	seen := map[uint64][][]topo.NodeID{pathKey(first): {first}}

	for len(accepted) < k {
		prev := accepted[len(accepted)-1]
		// Lawler's optimisation: spur indices below prev's own deviation
		// point rerun an earlier spur search unchanged — the ban set at
		// (root, i) only grows when an accepted path deviates at i, and
		// that acceptance reran the spur itself — so the result is an
		// exact duplicate the seen-set would reject. Skipping them is
		// output-identical and removes roughly half the spur searches.
		for i := devs[len(devs)-1]; i+1 < len(prev); i++ {
			spur := prev[i]
			root := prev[:i+1]

			// Spur bans live in the scratch stamp arrays: ensureBans opens
			// a fresh ban generation (Yen runs one spur per prefix per
			// accepted path; this is the algorithm's hot loop, and the
			// channel-index ban set replaces a map[DirEdge] allocated per
			// spur).
			sc.ensureBans(g)
			for _, p := range accepted {
				if len(p) > i && samePrefix(p, root) {
					sc.banEdge(g.ChannelIndex(p[i], p[i+1]), p[i], p[i+1])
				}
			}
			for _, u := range root[:len(root)-1] {
				sc.banNode(u)
			}

			spurPath := sc.search(g, spur, t, usable, cu, true)
			if spurPath == nil {
				continue
			}
			total := make([]topo.NodeID, 0, len(root)+len(spurPath)-1)
			total = append(total, root...)
			total = append(total, spurPath[1:]...)
			if !rememberPath(seen, total) {
				continue
			}
			heap.Push(cands, yenCand{path: total, dev: i})
		}
		if cands.Len() == 0 {
			break
		}
		c := heap.Pop(cands).(yenCand)
		accepted = append(accepted, c.path)
		devs = append(devs, c.dev)
	}
	return accepted
}

func samePrefix(p, prefix []topo.NodeID) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i, u := range prefix {
		if p[i] != u {
			return false
		}
	}
	return true
}

// pathKey hashes a path with FNV-1a for candidate deduplication;
// rememberPath resolves the (astronomically rare) collisions exactly.
func pathKey(p []topo.NodeID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, u := range p {
		h ^= uint64(uint32(u))
		h *= prime64
	}
	return h
}

// rememberPath adds the path to the seen set, reporting whether it was
// new. Hash buckets hold the actual paths so equality is exact.
func rememberPath(seen map[uint64][][]topo.NodeID, p []topo.NodeID) bool {
	key := pathKey(p)
	for _, q := range seen[key] {
		if pathsEqual(p, q) {
			return false
		}
	}
	seen[key] = append(seen[key], p)
	return true
}

func pathsEqual(a, b []topo.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// yenCand is a candidate path plus the spur index it deviated at from
// the accepted path it was generated from (Lawler's optimisation needs
// the deviation point back when the candidate is accepted).
type yenCand struct {
	path []topo.NodeID
	dev  int
}

// candHeap orders candidate paths by length, then lexicographically.
type candHeap []yenCand

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if len(h[i].path) != len(h[j].path) {
		return len(h[i].path) < len(h[j].path)
	}
	for x := range h[i].path {
		if h[i].path[x] != h[j].path[x] {
			return h[i].path[x] < h[j].path[x]
		}
	}
	return false
}
func (h candHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(yenCand)) }
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
