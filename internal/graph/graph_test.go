package graph

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/topo"
)

func pathEq(a, b []topo.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestShortestPathLine(t *testing.T) {
	g := topo.Line(5)
	p := ShortestPath(g, 0, 4, nil)
	if !pathEq(p, []topo.NodeID{0, 1, 2, 3, 4}) {
		t.Errorf("path = %v", p)
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := topo.Line(3)
	if p := ShortestPath(g, 1, 1, nil); !pathEq(p, []topo.NodeID{1}) {
		t.Errorf("self path = %v", p)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := topo.New(4)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(2, 3)
	if p := ShortestPath(g, 0, 3, nil); p != nil {
		t.Errorf("expected nil, got %v", p)
	}
}

func TestShortestPathUsableFilter(t *testing.T) {
	// Diamond: 0-1-3 and 0-2-3. Block 0→1 and the path must detour.
	g := topo.New(4)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(1, 3)
	g.MustAddChannel(0, 2)
	g.MustAddChannel(2, 3)
	p := ShortestPath(g, 0, 3, func(u, v topo.NodeID) bool {
		return !(u == 0 && v == 1)
	})
	if !pathEq(p, []topo.NodeID{0, 2, 3}) {
		t.Errorf("path = %v, want detour via 2", p)
	}
}

func TestShortestPathIsShortest(t *testing.T) {
	g := topo.Ring(10)
	p := ShortestPath(g, 0, 3, nil)
	if Hops(p) != 3 {
		t.Errorf("hops = %d, want 3", Hops(p))
	}
}

func TestDistances(t *testing.T) {
	g := topo.Line(4)
	d := Distances(g, 0)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	h := topo.New(3)
	h.MustAddChannel(0, 1)
	if d := Distances(h, 0); d[2] != -1 {
		t.Errorf("unreachable dist = %d, want -1", d[2])
	}
}

func TestSpanningTree(t *testing.T) {
	g := topo.Ring(6)
	parent := SpanningTree(g, 0)
	if parent[0] != 0 {
		t.Errorf("root parent = %d", parent[0])
	}
	// Every node reaches the root via parents.
	for u := 0; u < 6; u++ {
		v := topo.NodeID(u)
		for steps := 0; v != 0; steps++ {
			if steps > 6 {
				t.Fatalf("node %d does not reach root", u)
			}
			v = parent[v]
		}
	}
}

func TestPathEdgesAndHops(t *testing.T) {
	p := []topo.NodeID{3, 1, 4}
	edges := PathEdges(p)
	if len(edges) != 2 || edges[0] != (DirEdge{3, 1}) || edges[1] != (DirEdge{1, 4}) {
		t.Errorf("edges = %v", edges)
	}
	if Hops(p) != 2 || Hops(nil) != 0 || Hops([]topo.NodeID{7}) != 0 {
		t.Error("Hops miscounts")
	}
	if (DirEdge{1, 2}).Reverse() != (DirEdge{2, 1}) {
		t.Error("Reverse broken")
	}
}

func TestEdgeDisjointPathsDiamond(t *testing.T) {
	g := topo.New(4)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(1, 3)
	g.MustAddChannel(0, 2)
	g.MustAddChannel(2, 3)
	paths := EdgeDisjointPaths(g, 0, 3, 4)
	if len(paths) != 2 {
		t.Fatalf("found %d paths, want 2", len(paths))
	}
	used := make(map[topo.Edge]bool)
	for _, p := range paths {
		for _, e := range PathEdges(p) {
			key := topo.NewEdge(e.U, e.V)
			if used[key] {
				t.Fatalf("channel %v reused across paths %v", key, paths)
			}
			used[key] = true
		}
	}
}

func TestEdgeDisjointPathsRespectsK(t *testing.T) {
	g := topo.Complete(6)
	paths := EdgeDisjointPaths(g, 0, 5, 3)
	if len(paths) != 3 {
		t.Errorf("found %d paths, want 3", len(paths))
	}
}

func TestYenFirstIsShortest(t *testing.T) {
	g := topo.Ring(8)
	paths := YenKSP(g, 0, 4, 2)
	if len(paths) != 2 {
		t.Fatalf("got %d paths", len(paths))
	}
	if Hops(paths[0]) != 4 || Hops(paths[1]) != 4 {
		t.Errorf("ring paths should both have 4 hops: %d, %d", Hops(paths[0]), Hops(paths[1]))
	}
}

func TestYenLooplessDistinctSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := topo.BarabasiAlbert(40, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	paths := YenKSP(g, 0, 39, 8)
	if len(paths) == 0 {
		t.Fatal("no paths found")
	}
	seen := make(map[string]bool)
	prevLen := 0
	keyOf := func(p []topo.NodeID) string { return fmt.Sprint(p) }
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 39 {
			t.Fatalf("path endpoints wrong: %v", p)
		}
		nodes := make(map[topo.NodeID]bool)
		for _, u := range p {
			if nodes[u] {
				t.Fatalf("loop in path %v", p)
			}
			nodes[u] = true
		}
		for _, e := range PathEdges(p) {
			if !g.HasChannel(e.U, e.V) {
				t.Fatalf("path %v uses missing channel %v", p, e)
			}
		}
		key := keyOf(p)
		if seen[key] {
			t.Fatalf("duplicate path %v", p)
		}
		seen[key] = true
		if len(p) < prevLen {
			t.Fatalf("paths not sorted by length")
		}
		prevLen = len(p)
	}
}

func TestYenCompleteEnumeration(t *testing.T) {
	// Square 0-1-2-3-0 plus diagonal 0-2: s=0, t=2 has exactly three
	// loopless paths: [0 2], [0 1 2], [0 3 2].
	g := topo.New(4)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(1, 2)
	g.MustAddChannel(2, 3)
	g.MustAddChannel(3, 0)
	g.MustAddChannel(0, 2)
	paths := YenKSP(g, 0, 2, 10)
	if len(paths) != 3 {
		t.Fatalf("found %d paths, want 3: %v", len(paths), paths)
	}
	if Hops(paths[0]) != 1 || Hops(paths[1]) != 2 || Hops(paths[2]) != 2 {
		t.Errorf("hop sequence wrong: %v", paths)
	}
}

func TestYenNoPath(t *testing.T) {
	g := topo.New(3)
	g.MustAddChannel(0, 1)
	if paths := YenKSP(g, 0, 2, 3); paths != nil {
		t.Errorf("expected nil, got %v", paths)
	}
	if paths := YenKSP(g, 0, 1, 0); paths != nil {
		t.Errorf("k=0 should return nil, got %v", paths)
	}
}

func constCap(c float64) Capacity {
	return func(u, v topo.NodeID) float64 { return c }
}

func TestMaxFlowSimple(t *testing.T) {
	// Diamond with unit capacities: max flow 0→3 is 2.
	g := topo.New(4)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(1, 3)
	g.MustAddChannel(0, 2)
	g.MustAddChannel(2, 3)
	res := MaxFlow(g, 0, 3, constCap(1), -1, -1)
	if res.Value != 2 {
		t.Errorf("flow = %v, want 2", res.Value)
	}
	if !FlowConserved(g, 0, 3, res, 1e-9) {
		t.Error("flow not conserved")
	}
}

func TestMaxFlowFigure5a(t *testing.T) {
	// Paper Figure 5(a): node 1 sender, node 6 receiver. Channels:
	// 1-2:30, 2-3:30, 3-6:30, 2-5(paper draws 2→6 via 3; we follow the
	// figure): 1-5:30, 5-4:20, 4-6:20. Two shortest paths share the 1-2
	// bottleneck (30); max-flow also uses 1-5-4-6 for 20 more.
	g := topo.New(7)
	caps := map[DirEdge]float64{}
	add := func(a, b topo.NodeID, c float64) {
		g.MustAddChannel(a, b)
		caps[DirEdge{a, b}] = c
		caps[DirEdge{b, a}] = c
	}
	add(1, 2, 30)
	add(2, 3, 30)
	add(3, 6, 30)
	add(2, 6, 30)
	add(1, 5, 30)
	add(5, 4, 20)
	add(4, 6, 20)
	capFn := func(u, v topo.NodeID) float64 { return caps[DirEdge{u, v}] }
	res := MaxFlow(g, 1, 6, capFn, -1, -1)
	if res.Value != 50 {
		t.Errorf("max flow = %v, want 50 (30 via node 2 + 20 via 5-4)", res.Value)
	}
}

func TestMaxFlowRespectsDemand(t *testing.T) {
	g := topo.Line(3)
	res := MaxFlow(g, 0, 2, constCap(100), -1, 40)
	if res.Value != 40 {
		t.Errorf("flow = %v, want demand-capped 40", res.Value)
	}
}

func TestMaxFlowRespectsMaxPaths(t *testing.T) {
	g := topo.Complete(6)
	res := MaxFlow(g, 0, 5, constCap(1), 2, -1)
	if len(res.Paths) != 2 {
		t.Errorf("paths = %d, want 2", len(res.Paths))
	}
	if res.Value != 2 {
		t.Errorf("flow = %v, want 2", res.Value)
	}
}

func TestMaxFlowZeroCases(t *testing.T) {
	g := topo.Line(3)
	if res := MaxFlow(g, 0, 0, constCap(1), -1, -1); res.Value != 0 {
		t.Error("s==t flow should be 0")
	}
	if res := MaxFlow(g, 0, 2, constCap(0), -1, -1); res.Value != 0 {
		t.Error("zero capacities should give zero flow")
	}
}

// TestMaxFlowMinCut verifies flow value equals min cut on random graphs
// via the residual-reachability criterion.
func TestMaxFlowMinCut(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		g, err := topo.BarabasiAlbert(16, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		caps := make(map[DirEdge]float64)
		for _, e := range g.Channels() {
			caps[DirEdge{e.A, e.B}] = float64(1 + rng.Intn(10))
			caps[DirEdge{e.B, e.A}] = float64(1 + rng.Intn(10))
		}
		capFn := func(u, v topo.NodeID) float64 { return caps[DirEdge{u, v}] }
		s, tt := topo.NodeID(0), topo.NodeID(15)
		res := MaxFlow(g, s, tt, capFn, -1, -1)
		if !FlowConserved(g, s, tt, res, 1e-6) {
			t.Fatalf("trial %d: conservation violated", trial)
		}
		// Residual reachability: recompute residual caps and check t is
		// unreachable from s (max-flow certificate), then cut capacity
		// equals flow value.
		resid := func(u, v topo.NodeID) float64 {
			r := caps[DirEdge{u, v}]
			r -= res.Flow[DirEdge{u, v}]
			r += res.Flow[DirEdge{v, u}]
			return r
		}
		reach := map[topo.NodeID]bool{s: true}
		queue := []topo.NodeID{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if !reach[v] && resid(u, v) > 1e-9 {
					reach[v] = true
					queue = append(queue, v)
				}
			}
		}
		if reach[tt] {
			t.Fatalf("trial %d: t reachable in residual graph — flow not maximal", trial)
		}
		cut := 0.0
		for _, e := range g.Channels() {
			for _, d := range []DirEdge{{e.A, e.B}, {e.B, e.A}} {
				if reach[d.U] && !reach[d.V] {
					cut += caps[d]
				}
			}
		}
		if math.Abs(cut-res.Value) > 1e-6 {
			t.Fatalf("trial %d: cut %v ≠ flow %v", trial, cut, res.Value)
		}
	}
}

func BenchmarkShortestPathBA1870(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := topo.RippleLike(1870, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ShortestPath(g, 0, topo.NodeID(1+i%1869), nil)
	}
}

func BenchmarkYenTop4BA1870(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := topo.RippleLike(1870, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		YenKSP(g, 0, topo.NodeID(1+i%1869), 4)
	}
}
