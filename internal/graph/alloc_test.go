package graph

import (
	"math/rand"
	"testing"

	"repro/internal/topo"
)

// allocGraph builds a deterministic random graph big enough that the
// scratch buffers see realistic frontier sizes.
func allocGraph(t *testing.T) *topo.Graph {
	t.Helper()
	const n = 400
	rng := rand.New(rand.NewSource(9))
	g := topo.New(n)
	for i := topo.NodeID(1); i < n; i++ {
		g.MustAddChannel(i, topo.NodeID(rng.Intn(int(i))))
	}
	for i := 0; i < 3*n; i++ {
		a, b := topo.NodeID(rng.Intn(n)), topo.NodeID(rng.Intn(n))
		if a != b {
			g.AddChannel(a, b)
		}
	}
	g.Compact()
	return g
}

// TestScratchShortestPathZeroAlloc pins the steady-state allocation
// count of a route lookup on a warm Scratch at zero: the CSR adjacency
// view, the epoch-stamped visited marks and the reusable queue/path
// buffers must make repeated searches allocation-free. A regression
// here reintroduces per-payment garbage on the simulator's hottest
// loop, so the guard is exact.
func TestScratchShortestPathZeroAlloc(t *testing.T) {
	g := allocGraph(t)
	sc := NewScratch()
	if p := sc.ShortestPath(g, 0, 399, nil); p == nil { // warm buffers
		t.Fatal("no path in alloc fixture")
	}
	avg := testing.AllocsPerRun(200, func() {
		if sc.ShortestPath(g, 0, 399, nil) == nil {
			t.Fatal("no path")
		}
	})
	if avg != 0 {
		t.Fatalf("Scratch.ShortestPath allocates %v/op in steady state, want 0", avg)
	}

	// The predicate variants share the buffers and must stay at zero
	// too (the closure itself is hoisted out of the measured loop).
	usable := func(u, v topo.NodeID) bool { return true }
	cu := func(u, v topo.NodeID, ch int32) bool { return true }
	sc.ShortestPath(g, 0, 399, usable)
	if avg := testing.AllocsPerRun(200, func() { sc.ShortestPath(g, 0, 399, usable) }); avg != 0 {
		t.Fatalf("Scratch.ShortestPath(usable) allocates %v/op, want 0", avg)
	}
	sc.ShortestPathCh(g, 0, 399, cu)
	if avg := testing.AllocsPerRun(200, func() { sc.ShortestPathCh(g, 0, 399, cu) }); avg != 0 {
		t.Fatalf("Scratch.ShortestPathCh allocates %v/op, want 0", avg)
	}
}

// TestScratchBannedSearchZeroAlloc pins the Yen spur primitive — a
// banned search plus its ban-set setup — at zero steady-state
// allocations per spur.
func TestScratchBannedSearchZeroAlloc(t *testing.T) {
	g := allocGraph(t)
	sc := NewScratch()
	base := appendCopy(sc.ShortestPath(g, 0, 399, nil))
	if base == nil {
		t.Fatal("no path in alloc fixture")
	}
	spur := func() {
		sc.ensureBans(g)
		for i := 0; i+1 < len(base); i++ {
			sc.banEdge(g.ChannelIndex(base[i], base[i+1]), base[i], base[i+1])
		}
		sc.search(g, 0, 399, nil, nil, true)
	}
	spur() // warm ban arrays
	if avg := testing.AllocsPerRun(200, spur); avg != 0 {
		t.Fatalf("banned spur search allocates %v/op in steady state, want 0", avg)
	}
}
