package graph

import (
	"sync"

	"repro/internal/topo"
)

// Scratch is the reusable working memory of the path searches in this
// package: BFS parent/queue buffers, epoch-stamped visited marks (a new
// search bumps the epoch instead of clearing — reset is O(1), and only
// the nodes a search actually touches are ever written), a result
// buffer, and the Yen spur ban-sets keyed by channel index. One Scratch
// amortises every per-call allocation of ShortestPath and YenKSP: a
// steady-state search with a warm Scratch allocates nothing.
//
// A Scratch is not safe for concurrent use; callers either own one per
// goroutine or draw from AcquireScratch/ReleaseScratch. Results
// returned by Scratch methods alias the scratch buffers and are valid
// only until the next search on the same Scratch — callers that retain
// a path must copy it.
type Scratch struct {
	parent []topo.NodeID
	mark   []uint8 // parent[v] is valid iff mark[v] == epoch; one byte
	epoch  uint8   // per node keeps the visited set L1-resident
	queue  []topo.NodeID
	path   []topo.NodeID

	// Yen spur state: node bans for the root prefix, directed-edge bans
	// keyed 2·channel + direction (direction 1 = higher endpoint to
	// lower, exploiting Edge canonicalisation, so no channel record is
	// ever loaded on the search path). Stamped with banEpoch so clearing
	// a spur's bans is a single increment; one byte per slot keeps both
	// sets cache-resident.
	nodeBan  []uint8
	edgeBan  []uint8
	banEpoch uint8
}

// NewScratch returns an empty Scratch; buffers grow to fit the first
// graph searched.
func NewScratch() *Scratch { return new(Scratch) }

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// AcquireScratch draws a Scratch from the package pool. Pair with
// ReleaseScratch.
func AcquireScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// ReleaseScratch returns a Scratch to the package pool. The caller must
// not use sc, or any path aliasing its buffers, afterwards.
func ReleaseScratch(sc *Scratch) { scratchPool.Put(sc) }

// ensure sizes the scratch for g and opens a fresh visited epoch.
func (sc *Scratch) ensure(g *topo.Graph) {
	if n := g.NumNodes(); len(sc.parent) < n {
		sc.parent = make([]topo.NodeID, n)
		sc.mark = make([]uint8, n)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 { // uint8 wrap: stale stamps could alias, clear once
		clear(sc.mark)
		sc.epoch = 1
	}
	if cap(sc.queue) < len(sc.parent) {
		sc.queue = make([]topo.NodeID, 0, len(sc.parent))
	}
}

// ensureBans sizes the ban-sets for g and opens a fresh ban epoch.
func (sc *Scratch) ensureBans(g *topo.Graph) {
	if n := g.NumNodes(); len(sc.nodeBan) < n {
		sc.nodeBan = make([]uint8, n)
	}
	if m := 2 * g.NumChannels(); len(sc.edgeBan) < m {
		sc.edgeBan = make([]uint8, m)
	}
	sc.banEpoch++
	if sc.banEpoch == 0 { // uint8 wrap, see ensure
		clear(sc.nodeBan)
		clear(sc.edgeBan)
		sc.banEpoch = 1
	}
}

// banNode excludes v from the next banned search.
func (sc *Scratch) banNode(v topo.NodeID) { sc.nodeBan[v] = sc.banEpoch }

// banEdge excludes the directed hop u→v over channel idx from the next
// banned search.
func (sc *Scratch) banEdge(idx int, u, v topo.NodeID) {
	d := 0
	if u > v {
		d = 1
	}
	sc.edgeBan[2*idx+d] = sc.banEpoch
}

// banChannel excludes channel idx in both directions.
func (sc *Scratch) banChannel(idx int) {
	sc.edgeBan[2*idx] = sc.banEpoch
	sc.edgeBan[2*idx+1] = sc.banEpoch
}

// ShortestPath is graph.ShortestPath running entirely in the scratch
// buffers: a minimum-hop path from s to t whose every directed hop
// satisfies usable, or nil. The returned slice aliases the scratch and
// is valid until the next search on sc. Neighbor order breaks ties,
// exactly as in the allocating version.
func (sc *Scratch) ShortestPath(g *topo.Graph, s, t topo.NodeID, usable Usable) []topo.NodeID {
	return sc.search(g, s, t, usable, nil, false)
}

// ShortestPathCh is ShortestPath with a channel-aware predicate: the
// search hands cu the channel index it is already holding for the hop,
// so predicates keyed by channel (the elephant router's probed-residual
// filter) avoid a per-hop ChannelIndex lookup.
func (sc *Scratch) ShortestPathCh(g *topo.Graph, s, t topo.NodeID, cu ChUsable) []topo.NodeID {
	return sc.search(g, s, t, nil, cu, false)
}

// search runs the BFS; banned additionally applies the scratch ban-sets
// (Yen spur searches, disjoint-path searches). The predicate-free case —
// every mice-table Yen search and the plain-topology baselines — runs a
// specialised loop with no predicate branches.
func (sc *Scratch) search(g *topo.Graph, s, t topo.NodeID, usable Usable, cu ChUsable, banned bool) []topo.NodeID {
	if s == t {
		sc.path = append(sc.path[:0], s)
		return sc.path
	}
	sc.ensure(g)
	off, nbrs, chans := g.AdjacencyView()
	sc.parent[s] = s
	sc.mark[s] = sc.epoch
	if usable == nil && cu == nil {
		return sc.searchNoPred(off, nbrs, chans, s, t, banned)
	}
	parent, mark, epoch := sc.parent, sc.mark, sc.epoch
	queue := sc.queue[:0]
	queue = append(queue, s)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		lo, hi := off[u], off[u+1]
		run := nbrs[lo:hi]
		crun := chans[lo:hi]
		for i, v := range run {
			if mark[v] == epoch {
				continue
			}
			if banned {
				if sc.nodeBan[v] == sc.banEpoch {
					continue
				}
				d := 2 * crun[i]
				if u > v {
					d++
				}
				if sc.edgeBan[d] == sc.banEpoch {
					continue
				}
			}
			if usable != nil && !usable(u, v) {
				continue
			}
			if cu != nil && !cu(u, v, crun[i]) {
				continue
			}
			parent[v] = u
			mark[v] = epoch
			if v == t {
				sc.queue = queue
				return sc.reconstruct(s, t)
			}
			queue = append(queue, v)
		}
	}
	sc.queue = queue
	return nil
}

// searchNoPred is the predicate-free BFS body: identical traversal
// order, with the per-edge predicate checks compiled out.
func (sc *Scratch) searchNoPred(off []int32, nbrs []topo.NodeID, chans []int32, s, t topo.NodeID, banned bool) []topo.NodeID {
	parent, mark, epoch := sc.parent, sc.mark, sc.epoch
	queue := sc.queue[:0]
	queue = append(queue, s)
	if banned {
		nodeBan, edgeBan, banEpoch := sc.nodeBan, sc.edgeBan, sc.banEpoch
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			lo, hi := off[u], off[u+1]
			run := nbrs[lo:hi]
			crun := chans[lo:hi]
			for i, v := range run {
				if mark[v] == epoch || nodeBan[v] == banEpoch {
					continue
				}
				d := 2 * crun[i]
				if u > v {
					d++
				}
				if edgeBan[d] == banEpoch {
					continue
				}
				parent[v] = u
				mark[v] = epoch
				if v == t {
					sc.queue = queue
					return sc.reconstruct(s, t)
				}
				queue = append(queue, v)
			}
		}
		sc.queue = queue
		return nil
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range nbrs[off[u]:off[u+1]] {
			if mark[v] == epoch {
				continue
			}
			parent[v] = u
			mark[v] = epoch
			if v == t {
				sc.queue = queue
				return sc.reconstruct(s, t)
			}
			queue = append(queue, v)
		}
	}
	sc.queue = queue
	return nil
}

// reconstruct rebuilds the s→t path from the parent array into the
// scratch path buffer.
func (sc *Scratch) reconstruct(s, t topo.NodeID) []topo.NodeID {
	rev := sc.path[:0]
	for v := t; ; v = sc.parent[v] {
		rev = append(rev, v)
		if v == s {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	sc.path = rev
	return rev
}

// appendCopy returns a retained copy of a scratch-aliased path.
func appendCopy(p []topo.NodeID) []topo.NodeID {
	return append(make([]topo.NodeID, 0, len(p)), p...)
}
