// Package graph implements the path-finding primitives the routing
// schemes are built from: breadth-first shortest paths with arbitrary
// usability predicates, Yen's k-shortest loopless paths (used for mice
// routing tables), successive edge-disjoint shortest paths (used by the
// Spider baseline), BFS spanning trees (used by SpeedyMurmurs), and a
// classic Edmonds–Karp max-flow (the reference point for the paper's
// modified, probe-bounded variant implemented in package core).
//
// All algorithms operate on a *topo.Graph plus, where relevant, a
// directed usability/capacity oracle, so they can run over the true
// balances (simulator internals) or over a sender's partial probed
// knowledge (the Flash router) without modification.
package graph

import (
	"repro/internal/topo"
)

// Usable reports whether the directed hop u→v may be used. A nil Usable
// means every topological edge is usable.
type Usable func(u, v topo.NodeID) bool

// DirEdge is a directed hop over an undirected channel.
type DirEdge struct {
	U, V topo.NodeID
}

// Reverse returns the opposite direction of the hop.
func (e DirEdge) Reverse() DirEdge { return DirEdge{U: e.V, V: e.U} }

// PathEdges expands a node path into its directed hops.
func PathEdges(path []topo.NodeID) []DirEdge {
	if len(path) < 2 {
		return nil
	}
	edges := make([]DirEdge, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		edges[i] = DirEdge{U: path[i], V: path[i+1]}
	}
	return edges
}

// Hops returns the hop count of a node path (0 for empty or single-node
// paths).
func Hops(path []topo.NodeID) int {
	if len(path) < 2 {
		return 0
	}
	return len(path) - 1
}

// ShortestPath returns a minimum-hop path from s to t whose every
// directed hop satisfies usable, or nil if t is unreachable. Neighbour
// order breaks ties, making results deterministic for a fixed graph.
func ShortestPath(g *topo.Graph, s, t topo.NodeID, usable Usable) []topo.NodeID {
	if s == t {
		return []topo.NodeID{s}
	}
	n := g.NumNodes()
	parent := make([]topo.NodeID, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[s] = s
	queue := make([]topo.NodeID, 0, n)
	queue = append(queue, s)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if parent[v] != -1 {
				continue
			}
			if usable != nil && !usable(u, v) {
				continue
			}
			parent[v] = u
			if v == t {
				return reconstruct(parent, s, t)
			}
			queue = append(queue, v)
		}
	}
	return nil
}

func reconstruct(parent []topo.NodeID, s, t topo.NodeID) []topo.NodeID {
	var rev []topo.NodeID
	for v := t; ; v = parent[v] {
		rev = append(rev, v)
		if v == s {
			break
		}
	}
	path := make([]topo.NodeID, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path
}

// Distances returns BFS hop distances from src to every node; -1 marks
// unreachable nodes.
func Distances(g *topo.Graph, src topo.NodeID) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []topo.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// SpanningTree returns the BFS spanning-tree parent array rooted at
// root: parent[root] = root, parent[v] = -1 for unreachable v. The
// SpeedyMurmurs baseline assigns its prefix embeddings over such trees.
func SpanningTree(g *topo.Graph, root topo.NodeID) []topo.NodeID {
	parent := make([]topo.NodeID, g.NumNodes())
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = root
	queue := []topo.NodeID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if parent[v] == -1 {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return parent
}

// EdgeDisjointPaths returns up to k minimum-hop paths from s to t that
// share no channel (in either direction), found by successive BFS with
// used channels removed — the path set the Spider baseline routes over.
func EdgeDisjointPaths(g *topo.Graph, s, t topo.NodeID, k int) [][]topo.NodeID {
	used := make(map[topo.Edge]bool)
	var paths [][]topo.NodeID
	for len(paths) < k {
		p := ShortestPath(g, s, t, func(u, v topo.NodeID) bool {
			return !used[topo.NewEdge(u, v)]
		})
		if p == nil {
			break
		}
		for _, e := range PathEdges(p) {
			used[topo.NewEdge(e.U, e.V)] = true
		}
		paths = append(paths, p)
	}
	return paths
}
