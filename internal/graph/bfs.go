// Package graph implements the path-finding primitives the routing
// schemes are built from: breadth-first shortest paths with arbitrary
// usability predicates, Yen's k-shortest loopless paths (used for mice
// routing tables), successive edge-disjoint shortest paths (used by the
// Spider baseline), BFS spanning trees (used by SpeedyMurmurs), and a
// classic Edmonds–Karp max-flow (the reference point for the paper's
// modified, probe-bounded variant implemented in package core).
//
// All algorithms operate on a *topo.Graph plus, where relevant, a
// directed usability/capacity oracle, so they can run over the true
// balances (simulator internals) or over a sender's partial probed
// knowledge (the Flash router) without modification.
package graph

import (
	"repro/internal/topo"
)

// Usable reports whether the directed hop u→v may be used. A nil Usable
// means every topological edge is usable.
type Usable func(u, v topo.NodeID) bool

// ChUsable is a channel-aware usability predicate: it additionally
// receives the index of the channel joining u and v, which the CSR
// traversal already holds, so predicates keyed by channel index need no
// lookup of their own.
type ChUsable func(u, v topo.NodeID, ch int32) bool

// DirEdge is a directed hop over an undirected channel.
type DirEdge struct {
	U, V topo.NodeID
}

// Reverse returns the opposite direction of the hop.
func (e DirEdge) Reverse() DirEdge { return DirEdge{U: e.V, V: e.U} }

// PathEdges expands a node path into its directed hops.
func PathEdges(path []topo.NodeID) []DirEdge {
	if len(path) < 2 {
		return nil
	}
	edges := make([]DirEdge, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		edges[i] = DirEdge{U: path[i], V: path[i+1]}
	}
	return edges
}

// Hops returns the hop count of a node path (0 for empty or single-node
// paths).
func Hops(path []topo.NodeID) int {
	if len(path) < 2 {
		return 0
	}
	return len(path) - 1
}

// ShortestPath returns a minimum-hop path from s to t whose every
// directed hop satisfies usable, or nil if t is unreachable. Neighbour
// order breaks ties, making results deterministic for a fixed graph.
//
// The search runs on a pooled Scratch, so the only allocation is the
// returned path itself; callers on a hot loop that can reuse the result
// buffer too should hold their own Scratch and call its ShortestPath.
func ShortestPath(g *topo.Graph, s, t topo.NodeID, usable Usable) []topo.NodeID {
	sc := AcquireScratch()
	p := sc.ShortestPath(g, s, t, usable)
	if p != nil {
		p = appendCopy(p)
	}
	ReleaseScratch(sc)
	return p
}

// Distances returns BFS hop distances from src to every node; -1 marks
// unreachable nodes.
func Distances(g *topo.Graph, src topo.NodeID) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []topo.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// SpanningTree returns the BFS spanning-tree parent array rooted at
// root: parent[root] = root, parent[v] = -1 for unreachable v. The
// SpeedyMurmurs baseline assigns its prefix embeddings over such trees.
func SpanningTree(g *topo.Graph, root topo.NodeID) []topo.NodeID {
	parent := make([]topo.NodeID, g.NumNodes())
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = root
	queue := []topo.NodeID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if parent[v] == -1 {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return parent
}

// EdgeDisjointPaths returns up to k minimum-hop paths from s to t that
// share no channel (in either direction), found by successive BFS with
// used channels removed — the path set the Spider baseline routes over.
// Used channels live in the scratch ban-set keyed by channel index (one
// flat stamp array instead of a map allocated per call).
func EdgeDisjointPaths(g *topo.Graph, s, t topo.NodeID, k int) [][]topo.NodeID {
	sc := AcquireScratch()
	defer ReleaseScratch(sc)
	sc.ensureBans(g)
	var paths [][]topo.NodeID
	for len(paths) < k {
		p := sc.search(g, s, t, nil, nil, true)
		if p == nil {
			break
		}
		p = appendCopy(p)
		for i := 0; i+1 < len(p); i++ {
			sc.banChannel(g.ChannelIndex(p[i], p[i+1]))
		}
		paths = append(paths, p)
	}
	return paths
}
