package control

import (
	"math"

	"repro/internal/stats"
	"repro/internal/topo"
)

// RawThreshold re-calibrates the global elephant threshold to the
// arrival stream's mice-fraction quantile once per window — the exact
// policy the dynamic engine ran inline before the control plane
// existed (PR 5's AdaptiveThreshold): a P² estimator accumulates every
// first-attempt arrival amount, and at each window boundary with at
// least MinSamples observations the current estimate is swapped in
// (and the estimator reset so the next estimate tracks the current
// regime, not the whole history). No smoothing, no confidence gate:
// whatever the window estimated becomes the threshold, which is
// faithful to drift but wobbles on heavy-tailed streams.
type RawThreshold struct {
	est        *stats.QuantileEstimator
	minSamples int
}

// NewRawThreshold returns the raw per-window policy tracking the
// miceFraction-quantile (0 < miceFraction < 1), swapping only when a
// window saw at least minSamples arrivals (≤ 0 means swap on any
// non-empty estimate).
func NewRawThreshold(miceFraction float64, minSamples int) *RawThreshold {
	return &RawThreshold{
		est:        stats.NewQuantileEstimator(miceFraction),
		minSamples: minSamples,
	}
}

// Name implements Controller.
func (c *RawThreshold) Name() string { return "raw-threshold" }

// ObserveArrival implements ArrivalObserver.
func (c *RawThreshold) ObserveArrival(_ topo.NodeID, amount float64) {
	c.est.Add(amount)
}

// Observe implements Controller: the PR-5 recalibration verbatim —
// estimate, reset, swap if changed.
func (c *RawThreshold) Observe(w Metrics) []Decision {
	if c.est.Count() < c.minSamples {
		return nil
	}
	q := c.est.Quantile()
	c.est.Reset()
	if q == w.Threshold {
		return nil
	}
	return []Decision{{Knob: KnobThreshold, Value: q}}
}

// SmoothedThresholdConfig parameterises NewSmoothedThreshold. The zero
// value is normalised to the defaults noted per field.
type SmoothedThresholdConfig struct {
	// MiceFraction is the tracked quantile (default 0.9, the paper's
	// 90%-mice split).
	MiceFraction float64
	// Alpha is the EWMA smoothing factor over per-window estimates
	// (default 0.5: the last two windows carry ~75% of the weight, so
	// smoothing lags genuine drift by about one window).
	Alpha float64
	// Confidence is the z-score of the swap gate (default 1.96, a 95%
	// interval): the smoothed value must differ from the live
	// threshold by more than Confidence standard errors of the
	// window's estimate before a swap is worth its invalidations.
	Confidence float64
	// Band is the relative dead-band (default 0.05): moves smaller
	// than Band·threshold never swap, however confident.
	Band float64
	// Snap is the regime-change detector (default 0.3): a window
	// estimate jumping more than Snap·smoothed away from the smoothed
	// value resets the EWMA to re-seed from the new regime, so genuine
	// demand shifts adapt as fast as the raw policy instead of being
	// dragged through the average.
	Snap float64
	// MinSamples gates observation: windows with fewer arrivals in the
	// estimator contribute nothing (default 20, matching the raw
	// policy's gate).
	MinSamples int
}

func (c *SmoothedThresholdConfig) normalise() {
	if c.MiceFraction == 0 {
		c.MiceFraction = 0.9
	}
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Confidence == 0 {
		c.Confidence = 1.96
	}
	if c.Band == 0 {
		c.Band = 0.05
	}
	if c.Snap == 0 {
		c.Snap = 0.3
	}
	if c.MinSamples == 0 {
		c.MinSamples = 20
	}
}

// SmoothedThreshold is the confidence-gated successor of RawThreshold:
// each window's P² quantile estimate feeds an EWMA, and the smoothed
// value only replaces the live threshold when it clears both the
// confidence gate (the move exceeds Confidence standard errors of the
// window estimate) and the relative dead-band. On heavy-tailed streams
// the raw policy's per-window estimates wobble with tail noise and
// every wobble is a swap — each one invalidating cached routing-table
// entries; the EWMA absorbs the wobble while the Snap detector keeps
// genuine regime shifts adapting at raw speed.
type SmoothedThreshold struct {
	cfg  SmoothedThresholdConfig
	est  *stats.QuantileEstimator
	ewma *stats.EWMA
}

// NewSmoothedThreshold returns the EWMA-smoothed threshold policy.
func NewSmoothedThreshold(cfg SmoothedThresholdConfig) *SmoothedThreshold {
	cfg.normalise()
	return &SmoothedThreshold{
		cfg:  cfg,
		est:  stats.NewQuantileEstimator(cfg.MiceFraction),
		ewma: stats.NewEWMA(cfg.Alpha),
	}
}

// Name implements Controller.
func (c *SmoothedThreshold) Name() string { return "smoothed-threshold" }

// ObserveArrival implements ArrivalObserver.
func (c *SmoothedThreshold) ObserveArrival(_ topo.NodeID, amount float64) {
	c.est.Add(amount)
}

// Observe implements Controller.
func (c *SmoothedThreshold) Observe(w Metrics) []Decision {
	if c.est.Count() < c.cfg.MinSamples {
		return nil
	}
	q := c.est.Quantile()
	se := c.est.StdErr()
	c.est.Reset()

	// Regime shift: the window estimate has left the smoothed value's
	// neighbourhood entirely — re-seed rather than crawl.
	if c.ewma.Count() > 0 && math.Abs(q-c.ewma.Value()) > c.cfg.Snap*math.Abs(c.ewma.Value()) {
		c.ewma.Reset()
	}
	sm := c.ewma.Add(q)

	move := math.Abs(sm - w.Threshold)
	if move <= c.cfg.Band*math.Abs(w.Threshold) {
		return nil
	}
	if !math.IsInf(se, 1) && move <= c.cfg.Confidence*se {
		return nil
	}
	if math.IsInf(se, 1) {
		// No usable error estimate (degenerate window): hold.
		return nil
	}
	return []Decision{{Knob: KnobThreshold, Value: sm}}
}
