// Package control is the simulator's adaptive control plane: a
// deterministic feedback layer that owns every runtime-tuned routing
// knob. Before it, adaptivity was scattered — the P² elephant
// threshold was recalibrated inline in the dynamic engine, probe width
// was a static flag even though wider probing costs virtual time and
// messages, and retry backoff was hard-coded. Here each knob is moved
// behind one contract:
//
//	Controller: Observe(window Metrics) []Decision
//
// The engine calls Observe once per control window, on its own event
// loop, passing the window's aggregate Metrics; the controller answers
// with zero or more Decisions — (knob, sender, value) triples — which
// the engine applies to the router and records as fingerprinted
// event.ControlUpdate entries in the applied-event log. Nothing in a
// controller may read wall-clock time, randomness, or map iteration
// order: a controller is a pure function of its observation sequence,
// which is what lets adaptive runs replay byte-identically at
// workers=1.
//
// Controllers that also implement ArrivalObserver are additionally fed
// every first-attempt payment arrival (sender, amount) — the stream
// the threshold estimators run on. Arrivals arrive in event order, so
// the estimator state is deterministic too.
//
// Three concrete policies ship with the package:
//
//   - SmoothedThreshold: EWMA over the per-window P² quantile estimate
//     with confidence-gated swaps — the fix for the raw per-window
//     estimator's heavy-tail wobble, where tail noise in a window's
//     quantile estimate caused threshold churn with no regime change
//     behind it.
//   - PerSenderThreshold: the quantile estimator sharded per sender,
//     mirroring how routing tables are sharded — each sender's demand
//     drifts independently, so each classifies against its own stream.
//   - ProbeWidth: widens speculative probing when round-one probing
//     under-fills elephant demand, and narrows it back when the probe
//     message budget says speculation isn't paying.
//
// RawThreshold reproduces the original inline recalibration exactly
// (same estimator, same gates) so the legacy AdaptiveThreshold option
// remains byte-identical through the refactor.
package control

import (
	"fmt"

	"repro/internal/topo"
)

// Knob identifies a runtime-tuned routing knob. Values start at 1 so
// that 0 can mark a bare control tick (an observe pass that applied
// nothing) in the event log.
type Knob uint8

const (
	// KnobThreshold is the global elephant classification threshold.
	KnobThreshold Knob = iota + 1
	// KnobSenderThreshold is one sender's threshold override; the
	// decision's Sender field says whose.
	KnobSenderThreshold
	// KnobProbeWidth is the speculative probe-pool width of elephant
	// routing.
	KnobProbeWidth
	// KnobRetryBackoff is the engine's retry backoff scale factor
	// (multiplies the base exponential backoff).
	KnobRetryBackoff

	// NumKnobs is the number of knob codes (for per-knob counters);
	// knob codes are 1-based, so valid codes are 1..NumKnobs-1.
	NumKnobs = int(KnobRetryBackoff) + 1
)

// String names the knob for logs, tables and metric labels.
func (k Knob) String() string {
	switch k {
	case KnobThreshold:
		return "threshold"
	case KnobSenderThreshold:
		return "sender-threshold"
	case KnobProbeWidth:
		return "probe-width"
	case KnobRetryBackoff:
		return "retry-backoff"
	default:
		return fmt.Sprintf("knob(%d)", uint8(k))
	}
}

// Metrics is one control window's observations, assembled by the
// engine and handed to every controller's Observe. All fields are
// plain aggregates over events applied inside [Start, End); nothing
// here depends on goroutine scheduling.
type Metrics struct {
	Index      int     // window ordinal, 0-based
	Start, End float64 // window bounds in virtual seconds

	// Arrival-side stream statistics (first attempts only — retries
	// re-enter with the same amount and would double-count).
	Arrivals int // first-attempt payment arrivals

	// Completion-side outcomes, classified against the threshold in
	// effect when each payment completed.
	Payments          int // payments that completed (any outcome)
	Successes         int // payments fully delivered
	Elephants         int // completed payments classified elephant
	ElephantSuccesses int // elephants fully delivered
	Mice              int // completed payments classified mice
	MiceSuccesses     int // mice fully delivered

	// Probe-economy signals for the probe-width policy.
	ElephantProbeOps  int // probe operations spent by completed elephants
	ElephantPathsUsed int // paths actually carrying flow in delivered elephant plans
	ProbeMessages     int // probe messages sent by all completed payments

	// Live knob values at observation time, so controllers can reason
	// relative to the current setting without holding private copies.
	Threshold  float64 // global elephant threshold in effect
	ProbeWidth int     // probe-pool width in effect
}

// Decision is one knob move a controller wants applied. The engine
// applies decisions in the order returned (controllers earlier in the
// plane first), stamps each with the effective value the router
// reports back, and records it in the applied-event log.
type Decision struct {
	Knob   Knob
	Sender topo.NodeID // meaningful for KnobSenderThreshold only
	Value  float64
}

// Controller is the control-plane contract: observe one window's
// metrics, answer with the knob moves to apply. Observe runs on the
// engine's event loop — implementations must be deterministic (no
// time, no randomness, no map iteration) and must not block.
type Controller interface {
	// Name identifies the controller in tables and metric labels.
	Name() string
	// Observe ingests one window's metrics and returns the decisions
	// to apply, in application order. Returning nil means "no change".
	Observe(w Metrics) []Decision
}

// ArrivalObserver is the optional streaming hook: controllers that
// estimate from the arrival stream (threshold policies) implement it
// and are fed every first-attempt arrival in event order.
type ArrivalObserver interface {
	ObserveArrival(sender topo.NodeID, amount float64)
}

// Plane is an ordered set of controllers driven as one unit: arrivals
// fan out to every ArrivalObserver, and each window's Observe pass
// concatenates the controllers' decisions in plane order. The zero
// value is an empty, inert plane.
type Plane struct {
	controllers []Controller
	observers   []ArrivalObserver
}

// NewPlane returns a plane driving the given controllers in order.
func NewPlane(cs ...Controller) *Plane {
	p := &Plane{controllers: cs}
	for _, c := range cs {
		if o, ok := c.(ArrivalObserver); ok {
			p.observers = append(p.observers, o)
		}
	}
	return p
}

// Controllers returns the plane's controllers in drive order. The
// caller must not modify the returned slice.
func (p *Plane) Controllers() []Controller { return p.controllers }

// Empty reports whether the plane drives no controllers.
func (p *Plane) Empty() bool { return p == nil || len(p.controllers) == 0 }

// ObserveArrival fans one first-attempt arrival to every controller
// that estimates from the arrival stream.
func (p *Plane) ObserveArrival(sender topo.NodeID, amount float64) {
	for _, o := range p.observers {
		o.ObserveArrival(sender, amount)
	}
}

// Observe runs one window's observe/decide pass and returns the
// concatenated decisions in plane order.
func (p *Plane) Observe(w Metrics) []Decision {
	var ds []Decision
	for _, c := range p.controllers {
		ds = append(ds, c.Observe(w)...)
	}
	return ds
}
