package control

// ProbeWidthConfig parameterises NewProbeWidth. The zero value is
// normalised to the defaults noted per field.
type ProbeWidthConfig struct {
	// MinWidth and MaxWidth clamp the controller's moves (defaults 1
	// and 8). The router additionally clamps to [1, K].
	MinWidth, MaxWidth int
	// MinElephants gates observation (default 5): windows completing
	// fewer elephants say nothing about the probe economy.
	MinElephants int
}

func (c *ProbeWidthConfig) normalise() {
	if c.MinWidth == 0 {
		c.MinWidth = 1
	}
	if c.MaxWidth == 0 {
		c.MaxWidth = 8
	}
	if c.MinElephants == 0 {
		c.MinElephants = 5
	}
}

// ProbeWidth adapts the speculative probe-pool width of elephant
// routing to the observed probe economy — the search-friction tradeoff
// made adjustable: wider speculation collapses probe rounds (and with
// virtual latency on, elephant delay), but every widening also probes
// more candidates whose knowledge may go unused, costing messages.
//
// The signals, per completed-elephant window averages:
//
//   - Widen (×2) when probe operations per elephant exceed the current
//     width: each speculation round probes about `width` candidates, so
//     more than one round's worth of probes per payment means round
//     one under-filled the demand and a wider round would have
//     finished sooner.
//   - Narrow (÷2) when paths actually carrying flow per delivered
//     elephant fall below half the width: the pool probes candidates
//     the split never uses, so speculation is buying messages, not
//     fill.
//
// The two gates are deliberately separated by a factor-of-two dead
// zone (avg paths in [width/2, width] holds) so the controller cannot
// oscillate between the signals on a steady workload. It is stateless
// across windows: every decision is a pure function of the window's
// metrics and the live width.
type ProbeWidth struct {
	cfg ProbeWidthConfig
}

// NewProbeWidth returns the adaptive probe-width policy.
func NewProbeWidth(cfg ProbeWidthConfig) *ProbeWidth {
	cfg.normalise()
	return &ProbeWidth{cfg: cfg}
}

// Name implements Controller.
func (c *ProbeWidth) Name() string { return "probe-width" }

// Observe implements Controller.
func (c *ProbeWidth) Observe(w Metrics) []Decision {
	if w.Elephants < c.cfg.MinElephants || w.ProbeWidth < 1 {
		return nil
	}
	width := w.ProbeWidth
	next := width
	avgOps := float64(w.ElephantProbeOps) / float64(w.Elephants)
	switch {
	case avgOps > float64(width):
		next = width * 2
	case w.ElephantSuccesses > 0:
		avgPaths := float64(w.ElephantPathsUsed) / float64(w.ElephantSuccesses)
		if avgPaths < float64(width)/2 {
			next = width / 2
		}
	}
	if next < c.cfg.MinWidth {
		next = c.cfg.MinWidth
	}
	if next > c.cfg.MaxWidth {
		next = c.cfg.MaxWidth
	}
	if next == width {
		return nil
	}
	return []Decision{{Knob: KnobProbeWidth, Value: float64(next)}}
}
