package control

import (
	"fmt"
	"strings"
)

// Policy is the declarative control-plane spec the engine and CLIs
// consume: which policies run and with what parameters. The zero value
// is the inert policy (no controllers, byte-identical to a run without
// a control plane). Policy is a plain value — Controllers builds the
// stateful controller set fresh per run, so one spec can parameterise
// many runs without sharing estimator state.
type Policy struct {
	// Threshold selects the global threshold policy: "" (off), "raw"
	// (the PR-5 per-window swap, what the legacy AdaptiveThreshold
	// option maps to) or "ewma" (confidence-gated smoothing).
	Threshold string
	// PerSender enables the sharded per-sender threshold policy.
	PerSender bool
	// ProbeWidth enables the adaptive probe-width policy.
	ProbeWidth bool

	// MiceFraction is the quantile every threshold policy tracks
	// (default 0.9).
	MiceFraction float64
	// Window is the control cadence in virtual seconds; 0 defers to
	// the engine's metrics-window length.
	Window float64
	// Alpha, Confidence, Band, Snap tune the "ewma" policy (see
	// SmoothedThresholdConfig; zero fields take its defaults).
	Alpha, Confidence, Band, Snap float64
	// MinSamples gates the global threshold policies (default 20).
	MinSamples int
	// SenderMinSamples, SenderBand, MaxSenders tune the per-sender
	// policy (see PerSenderThresholdConfig; zero fields take its
	// defaults).
	SenderMinSamples int
	SenderBand       float64
	MaxSenders       int
	// MinWidth, MaxWidth clamp the probe-width policy (see
	// ProbeWidthConfig; zero fields take its defaults).
	MinWidth, MaxWidth int
}

// Enabled reports whether the policy runs any controller at all.
func (p Policy) Enabled() bool {
	return p.Threshold != "" || p.PerSender || p.ProbeWidth
}

// Spec renders the canonical comma-separated policy spec ("" when
// inert) — the inverse of ParsePolicy, used in run headers so a
// rendered run names the policies that shaped it.
func (p Policy) Spec() string {
	var parts []string
	if p.Threshold != "" {
		parts = append(parts, p.Threshold)
	}
	if p.PerSender {
		parts = append(parts, "sender")
	}
	if p.ProbeWidth {
		parts = append(parts, "width")
	}
	return strings.Join(parts, ",")
}

// Controllers builds the policy's controller set, in the fixed plane
// order: global threshold, per-sender thresholds, probe width. It
// errors on an unknown Threshold selector.
func (p Policy) Controllers() ([]Controller, error) {
	var cs []Controller
	switch p.Threshold {
	case "":
	case "raw":
		min := p.MinSamples
		if min == 0 {
			min = 20
		}
		frac := p.MiceFraction
		if frac == 0 {
			frac = 0.9
		}
		cs = append(cs, NewRawThreshold(frac, min))
	case "ewma":
		cs = append(cs, NewSmoothedThreshold(SmoothedThresholdConfig{
			MiceFraction: p.MiceFraction,
			Alpha:        p.Alpha,
			Confidence:   p.Confidence,
			Band:         p.Band,
			Snap:         p.Snap,
			MinSamples:   p.MinSamples,
		}))
	default:
		return nil, fmt.Errorf("control: unknown threshold policy %q (want \"raw\" or \"ewma\")", p.Threshold)
	}
	if p.PerSender {
		cs = append(cs, NewPerSenderThreshold(PerSenderThresholdConfig{
			MiceFraction: p.MiceFraction,
			Band:         p.SenderBand,
			MinSamples:   p.SenderMinSamples,
			MaxSenders:   p.MaxSenders,
		}))
	}
	if p.ProbeWidth {
		cs = append(cs, NewProbeWidth(ProbeWidthConfig{
			MinWidth: p.MinWidth,
			MaxWidth: p.MaxWidth,
		}))
	}
	return cs, nil
}

// ParsePolicy parses a comma-separated policy spec — the flashsim
// -control flag syntax. Accepted items: "raw", "ewma" (global
// threshold policies, mutually exclusive), "sender", "width". "off"
// alone (or the empty string) is the inert policy. Parameters beyond
// the selection keep their defaults; callers wanting to tune them set
// Policy fields directly.
func ParsePolicy(spec string) (Policy, error) {
	var p Policy
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return p, nil
	}
	for _, item := range strings.Split(spec, ",") {
		switch strings.TrimSpace(item) {
		case "raw", "ewma":
			if p.Threshold != "" {
				return Policy{}, fmt.Errorf("control: policy spec %q selects two global threshold policies", spec)
			}
			p.Threshold = strings.TrimSpace(item)
		case "sender":
			p.PerSender = true
		case "width":
			p.ProbeWidth = true
		case "":
			return Policy{}, fmt.Errorf("control: empty item in policy spec %q", spec)
		default:
			return Policy{}, fmt.Errorf("control: unknown policy %q (want raw, ewma, sender or width)", strings.TrimSpace(item))
		}
	}
	return p, nil
}
