package control

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/topo"
)

func TestKnobString(t *testing.T) {
	cases := map[Knob]string{
		KnobThreshold:       "threshold",
		KnobSenderThreshold: "sender-threshold",
		KnobProbeWidth:      "probe-width",
		KnobRetryBackoff:    "retry-backoff",
		Knob(0):             "knob(0)",
		Knob(99):            "knob(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Knob(%d).String() = %q, want %q", k, got, want)
		}
	}
	if NumKnobs != 5 {
		t.Errorf("NumKnobs = %d, want 5 (codes 1..4 plus the bare-tick 0)", NumKnobs)
	}
}

// scriptedController returns a fixed decision list and records the
// windows it observed — a pure test double.
type scriptedController struct {
	name     string
	decide   []Decision
	observed []Metrics
	arrivals int
}

func (c *scriptedController) Name() string { return c.name }
func (c *scriptedController) Observe(w Metrics) []Decision {
	c.observed = append(c.observed, w)
	return c.decide
}
func (c *scriptedController) ObserveArrival(topo.NodeID, float64) { c.arrivals++ }

// plainController has no ArrivalObserver implementation.
type plainController struct{ scripted scriptedController }

func (c *plainController) Name() string                 { return "plain" }
func (c *plainController) Observe(w Metrics) []Decision { return c.scripted.Observe(w) }

func TestPlaneFanOutAndOrder(t *testing.T) {
	a := &scriptedController{name: "a", decide: []Decision{{Knob: KnobThreshold, Value: 1}}}
	b := &plainController{}
	c := &scriptedController{name: "c", decide: []Decision{
		{Knob: KnobProbeWidth, Value: 2},
		{Knob: KnobRetryBackoff, Value: 3},
	}}
	p := NewPlane(a, b, c)
	if p.Empty() {
		t.Fatal("three-controller plane reports Empty")
	}
	if got := len(p.Controllers()); got != 3 {
		t.Fatalf("Controllers() has %d entries, want 3", got)
	}

	// Arrivals reach only the ArrivalObservers (a and c, not b).
	p.ObserveArrival(7, 42.0)
	p.ObserveArrival(8, 1.0)
	if a.arrivals != 2 || c.arrivals != 2 {
		t.Errorf("arrival fan-out: a=%d c=%d, want 2 each", a.arrivals, c.arrivals)
	}

	// Observe concatenates in plane order.
	ds := p.Observe(Metrics{Index: 3})
	want := []Decision{
		{Knob: KnobThreshold, Value: 1},
		{Knob: KnobProbeWidth, Value: 2},
		{Knob: KnobRetryBackoff, Value: 3},
	}
	if len(ds) != len(want) {
		t.Fatalf("Observe returned %d decisions, want %d", len(ds), len(want))
	}
	for i := range want {
		if ds[i] != want[i] {
			t.Errorf("decision[%d] = %+v, want %+v", i, ds[i], want[i])
		}
	}
	if len(a.observed) != 1 || a.observed[0].Index != 3 {
		t.Errorf("controller a saw %+v, want one window with Index 3", a.observed)
	}

	var empty *Plane
	if !empty.Empty() {
		t.Error("nil plane must report Empty")
	}
	if !NewPlane().Empty() {
		t.Error("zero-controller plane must report Empty")
	}
}

func TestRawThresholdMatchesInlineRecalibration(t *testing.T) {
	// The raw policy must replicate PR 5's inline logic exactly:
	// identical estimator stream in, identical swap decisions out.
	c := NewRawThreshold(0.9, 20)
	ref := stats.NewQuantileEstimator(0.9)
	rng := stats.NewRNG(1, 0xC0)
	thr := 100.0
	for win := 0; win < 10; win++ {
		n := 10 + int(rng.Int63n(40)) // some windows under the gate
		for i := 0; i < n; i++ {
			amt := rng.Float64() * 200
			c.ObserveArrival(topo.NodeID(i), amt)
			ref.Add(amt)
		}
		ds := c.Observe(Metrics{Threshold: thr})

		// Reference: the engine's former inline body.
		var want []Decision
		if ref.Count() >= 20 {
			q := ref.Quantile()
			ref.Reset()
			if q != thr {
				want = []Decision{{Knob: KnobThreshold, Value: q}}
			}
		}
		if len(ds) != len(want) {
			t.Fatalf("window %d: got %d decisions, want %d", win, len(ds), len(want))
		}
		if len(ds) == 1 {
			if ds[0] != want[0] {
				t.Fatalf("window %d: decision %+v, want %+v", win, ds[0], want[0])
			}
			thr = ds[0].Value
		}
	}
}

func TestRawThresholdNoSwapWhenEqual(t *testing.T) {
	c := NewRawThreshold(0.5, 1)
	for i := 0; i < 30; i++ {
		c.ObserveArrival(0, 10)
	}
	ds := c.Observe(Metrics{Threshold: 10})
	if len(ds) != 0 {
		t.Fatalf("estimate equal to live threshold still swapped: %+v", ds)
	}
}

func TestSmoothedThresholdGates(t *testing.T) {
	feed := func(c *SmoothedThreshold, center float64, n int) {
		// A fixed, slightly spread stream around center so the P²
		// markers carry a finite density (StdErr is usable).
		for i := 0; i < n; i++ {
			c.ObserveArrival(0, center*(0.9+0.01*float64(i%21)))
		}
	}

	t.Run("min samples hold", func(t *testing.T) {
		c := NewSmoothedThreshold(SmoothedThresholdConfig{MinSamples: 50})
		feed(c, 100, 49)
		if ds := c.Observe(Metrics{Threshold: 1}); len(ds) != 0 {
			t.Fatalf("under-gated window swapped: %+v", ds)
		}
		feed(c, 100, 50) // estimator was NOT reset by the held window
		if ds := c.Observe(Metrics{Threshold: 1}); len(ds) != 1 {
			t.Fatalf("well-fed window did not swap: %+v", ds)
		}
	})

	t.Run("dead band hold", func(t *testing.T) {
		c := NewSmoothedThreshold(SmoothedThresholdConfig{Band: 0.5, MinSamples: 10})
		feed(c, 100, 100)
		// Smoothed estimate ≈ 100·(0.9..1.1 quantile) — within 50% of
		// a live threshold of 100, so the band holds.
		if ds := c.Observe(Metrics{Threshold: 100}); len(ds) != 0 {
			t.Fatalf("move inside dead-band swapped: %+v", ds)
		}
	})

	t.Run("confident move swaps", func(t *testing.T) {
		c := NewSmoothedThreshold(SmoothedThresholdConfig{MinSamples: 10})
		feed(c, 100, 200)
		ds := c.Observe(Metrics{Threshold: 10})
		if len(ds) != 1 || ds[0].Knob != KnobThreshold {
			t.Fatalf("10x move did not swap: %+v", ds)
		}
		if ds[0].Value < 80 || ds[0].Value > 120 {
			t.Errorf("swap value %.4g, want ≈ the ~100 stream quantile", ds[0].Value)
		}
	})

	t.Run("snap re-seeds on regime shift", func(t *testing.T) {
		c := NewSmoothedThreshold(SmoothedThresholdConfig{Alpha: 0.5, Snap: 0.5, MinSamples: 10})
		feed(c, 100, 200)
		ds := c.Observe(Metrics{Threshold: 1})
		if len(ds) != 1 {
			t.Fatalf("seed window did not swap: %+v", ds)
		}
		seeded := ds[0].Value

		// 4x regime jump: without the snap reset, alpha=0.5 would land
		// the EWMA half-way; with it, the new estimate is re-seeded.
		feed(c, 400, 200)
		ds = c.Observe(Metrics{Threshold: seeded})
		if len(ds) != 1 {
			t.Fatalf("post-shift window did not swap: %+v", ds)
		}
		if ds[0].Value < 3*seeded {
			t.Errorf("post-shift threshold %.4g lagging (seeded %.4g): snap reset did not fire", ds[0].Value, seeded)
		}
	})
}

func TestPerSenderThreshold(t *testing.T) {
	c := NewPerSenderThreshold(PerSenderThresholdConfig{MinSamples: 10, Band: 0.1, MaxSenders: 2})
	// Sender 5 streams ~1000-sized payments, sender 3 ~10-sized;
	// sender 9 arrives beyond the cap and must be ignored.
	for i := 0; i < 50; i++ {
		c.ObserveArrival(5, 1000*(0.95+0.005*float64(i%11)))
		c.ObserveArrival(3, 10*(0.95+0.005*float64(i%11)))
		c.ObserveArrival(9, 500)
	}
	if got := c.Tracked(); got != 2 {
		t.Fatalf("Tracked() = %d, want 2 (MaxSenders cap)", got)
	}
	ds := c.Observe(Metrics{Threshold: 100})
	if len(ds) != 2 {
		t.Fatalf("got %d decisions, want 2: %+v", len(ds), ds)
	}
	// First-seen order: sender 5 observed before sender 3.
	if ds[0].Sender != 5 || ds[1].Sender != 3 {
		t.Fatalf("decision order %+v, want sender 5 then sender 3", ds)
	}
	if ds[0].Knob != KnobSenderThreshold || ds[1].Knob != KnobSenderThreshold {
		t.Fatalf("wrong knob in %+v", ds)
	}
	if ds[0].Value < 500 || ds[1].Value > 50 {
		t.Errorf("override values %.4g/%.4g, want ≈1000 and ≈10 scale", ds[0].Value, ds[1].Value)
	}

	// Steady stream: the next window's estimates stay inside the
	// dead-band around the applied overrides, so no new decisions.
	for i := 0; i < 50; i++ {
		c.ObserveArrival(5, 1000*(0.95+0.005*float64(i%11)))
		c.ObserveArrival(3, 10*(0.95+0.005*float64(i%11)))
	}
	if ds := c.Observe(Metrics{Threshold: 100}); len(ds) != 0 {
		t.Fatalf("steady stream re-emitted: %+v", ds)
	}
}

func TestPerSenderThresholdDeterministicSequence(t *testing.T) {
	run := func() []Decision {
		c := NewPerSenderThreshold(PerSenderThresholdConfig{MinSamples: 5})
		rng := stats.NewRNG(7, 0xD1)
		var all []Decision
		for win := 0; win < 5; win++ {
			for i := 0; i < 200; i++ {
				s := topo.NodeID(rng.Int63n(20))
				c.ObserveArrival(s, rng.Float64()*float64(100*(win+1)))
			}
			all = append(all, c.Observe(Metrics{Threshold: 50})...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("drifting multi-sender stream produced no decisions")
	}
	if len(a) != len(b) {
		t.Fatalf("replay decision counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestProbeWidth(t *testing.T) {
	c := NewProbeWidth(ProbeWidthConfig{MinWidth: 1, MaxWidth: 8, MinElephants: 5})

	base := Metrics{Elephants: 10, ElephantSuccesses: 10, ProbeWidth: 2}

	t.Run("widen on underfill", func(t *testing.T) {
		m := base
		m.ElephantProbeOps = 50 // 5 ops/elephant > width 2
		m.ElephantPathsUsed = 40
		ds := c.Observe(m)
		if len(ds) != 1 || ds[0].Knob != KnobProbeWidth || ds[0].Value != 4 {
			t.Fatalf("want widen 2→4, got %+v", ds)
		}
	})

	t.Run("narrow on unused speculation", func(t *testing.T) {
		m := base
		m.ProbeWidth = 8
		m.ElephantProbeOps = 80  // 8 ops/elephant = width: no widen signal
		m.ElephantPathsUsed = 10 // 1 path/delivery < 8/2: speculation unused
		ds := c.Observe(m)
		if len(ds) != 1 || ds[0].Value != 4 {
			t.Fatalf("want narrow 8→4, got %+v", ds)
		}
	})

	t.Run("dead zone holds", func(t *testing.T) {
		m := base
		m.ProbeWidth = 4
		m.ElephantProbeOps = 40  // exactly width ops/elephant
		m.ElephantPathsUsed = 30 // 3 paths/delivery ∈ [2, 4]
		if ds := c.Observe(m); len(ds) != 0 {
			t.Fatalf("dead zone emitted: %+v", ds)
		}
	})

	t.Run("gate on few elephants", func(t *testing.T) {
		m := base
		m.Elephants = 4
		m.ElephantProbeOps = 40
		if ds := c.Observe(m); len(ds) != 0 {
			t.Fatalf("under-gated window emitted: %+v", ds)
		}
	})

	t.Run("clamp at max", func(t *testing.T) {
		m := base
		m.ProbeWidth = 8
		m.ElephantProbeOps = 200
		if ds := c.Observe(m); len(ds) != 0 {
			t.Fatalf("widen at MaxWidth must clamp to no-op, got %+v", ds)
		}
	})
}

func TestPolicyControllersOrder(t *testing.T) {
	p := Policy{Threshold: "ewma", PerSender: true, ProbeWidth: true}
	cs, err := p.Controllers()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, c := range cs {
		names = append(names, c.Name())
	}
	want := "smoothed-threshold,per-sender-threshold,probe-width"
	if got := strings.Join(names, ","); got != want {
		t.Fatalf("plane order %q, want %q", got, want)
	}

	if cs, err := (Policy{Threshold: "raw"}).Controllers(); err != nil || len(cs) != 1 || cs[0].Name() != "raw-threshold" {
		t.Fatalf("raw policy: %v, %v", cs, err)
	}
	if _, err := (Policy{Threshold: "bogus"}).Controllers(); err == nil {
		t.Fatal("unknown threshold selector accepted")
	}
	if cs, err := (Policy{}).Controllers(); err != nil || len(cs) != 0 {
		t.Fatalf("inert policy built controllers: %v, %v", cs, err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want Policy
	}{
		{"", Policy{}},
		{"off", Policy{}},
		{"raw", Policy{Threshold: "raw"}},
		{"ewma", Policy{Threshold: "ewma"}},
		{"ewma,sender,width", Policy{Threshold: "ewma", PerSender: true, ProbeWidth: true}},
		{" sender , width ", Policy{PerSender: true, ProbeWidth: true}},
	} {
		got, err := ParsePolicy(tc.spec)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParsePolicy(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
		// Spec round-trips the canonical form.
		if rt, err := ParsePolicy(got.Spec()); err != nil || rt != got {
			t.Errorf("round-trip of %q via Spec %q: %+v, %v", tc.spec, got.Spec(), rt, err)
		}
	}
	for _, bad := range []string{"raw,ewma", "nope", "raw,,width", "ewma,raw"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
	if (Policy{}).Enabled() {
		t.Error("zero policy reports Enabled")
	}
	if !(Policy{PerSender: true}).Enabled() {
		t.Error("sender-only policy reports disabled")
	}
}
