package control

import (
	"math"

	"repro/internal/stats"
	"repro/internal/topo"
)

// PerSenderThresholdConfig parameterises NewPerSenderThreshold. The
// zero value is normalised to the defaults noted per field.
type PerSenderThresholdConfig struct {
	// MiceFraction is the tracked quantile per sender (default 0.9).
	MiceFraction float64
	// Band is the relative dead-band (default 0.1): a sender's
	// estimate must move more than Band·current before its override
	// swaps. Wider than the global policy's band because per-sender
	// streams are thinner and noisier.
	Band float64
	// MinSamples is the per-sender observation gate (default 20): a
	// sender's override only moves on windows where that sender alone
	// contributed at least this many arrivals.
	MinSamples int
	// MaxSenders bounds the tracked sender set (default 4096):
	// estimators are O(1) each but a snapshot-scale run has millions
	// of senders, so arrivals from senders beyond the cap fall through
	// to the global threshold. First-come, first-tracked —
	// deterministic, since arrivals are observed in event order.
	MaxSenders int
}

func (c *PerSenderThresholdConfig) normalise() {
	if c.MiceFraction == 0 {
		c.MiceFraction = 0.9
	}
	if c.Band == 0 {
		c.Band = 0.1
	}
	if c.MinSamples == 0 {
		c.MinSamples = 20
	}
	if c.MaxSenders == 0 {
		c.MaxSenders = 4096
	}
}

// senderState is one tracked sender's estimator and last-applied
// override.
type senderState struct {
	est *stats.QuantileEstimator
	cur float64 // last applied override value
	has bool    // whether an override has been applied
}

// PerSenderThreshold shards the threshold estimator per sender,
// mirroring how the router shards its mice routing tables: each
// sender's payment sizes drift independently (one node streams large
// transfers while another pays micro-fees), so classifying every
// sender against the network-wide quantile misclassifies both tails.
// Each tracked sender runs its own P² estimator over its own arrival
// stream; when a window gives a sender enough samples and its estimate
// has moved outside the dead-band, the controller emits a
// KnobSenderThreshold decision for that sender.
//
// Decisions are emitted in first-seen sender order — a slice, not map
// iteration — so the decision sequence is a pure function of the
// arrival sequence.
type PerSenderThreshold struct {
	cfg     PerSenderThresholdConfig
	senders map[topo.NodeID]*senderState
	order   []topo.NodeID // first-seen order, for deterministic iteration
}

// NewPerSenderThreshold returns the sharded per-sender policy.
func NewPerSenderThreshold(cfg PerSenderThresholdConfig) *PerSenderThreshold {
	cfg.normalise()
	return &PerSenderThreshold{
		cfg:     cfg,
		senders: make(map[topo.NodeID]*senderState),
	}
}

// Name implements Controller.
func (c *PerSenderThreshold) Name() string { return "per-sender-threshold" }

// Tracked returns the number of senders currently tracked.
func (c *PerSenderThreshold) Tracked() int { return len(c.order) }

// ObserveArrival implements ArrivalObserver.
func (c *PerSenderThreshold) ObserveArrival(sender topo.NodeID, amount float64) {
	st := c.senders[sender]
	if st == nil {
		if len(c.order) >= c.cfg.MaxSenders {
			return
		}
		st = &senderState{est: stats.NewQuantileEstimator(c.cfg.MiceFraction)}
		c.senders[sender] = st
		c.order = append(c.order, sender)
	}
	st.est.Add(amount)
}

// Observe implements Controller.
func (c *PerSenderThreshold) Observe(w Metrics) []Decision {
	var ds []Decision
	for _, sender := range c.order {
		st := c.senders[sender]
		if st.est.Count() < c.cfg.MinSamples {
			continue
		}
		q := st.est.Quantile()
		st.est.Reset()
		cur := w.Threshold
		if st.has {
			cur = st.cur
		}
		if math.Abs(q-cur) <= c.cfg.Band*math.Abs(cur) {
			continue
		}
		st.cur, st.has = q, true
		ds = append(ds, Decision{Knob: KnobSenderThreshold, Sender: sender, Value: q})
	}
	return ds
}
