package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/topo"
)

func sampleMessage() *Message {
	return &Message{
		TransID:    0xDEADBEEF12345678,
		Type:       TypeProbe,
		Path:       []topo.NodeID{3, 1, 4, 1, 5},
		Pos:        2,
		Capacity:   []float64{10.5, 20.25},
		ReverseCap: []float64{1, 2},
		FeeRate:    []float64{0.001, 0.05},
		Commit:     99.75,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := sampleMessage()
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, m)
	}
}

func TestReadWriteStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Message{
		sampleMessage(),
		{TransID: 1, Type: TypeCommit, Path: []topo.NodeID{0, 1}, Commit: 5},
		{TransID: 2, Type: TypeReverseAck, Path: []topo.NodeID{1, 0}, Pos: 1},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("message %d mismatch: %+v vs %+v", i, got, want)
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Errorf("expected EOF on empty stream, got %v", err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	m := sampleMessage()
	frame, _ := Encode(m)
	body := frame[4:]

	// Truncations at every byte offset must error, never panic.
	for i := 0; i < len(body); i++ {
		if _, err := Decode(body[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// Trailing garbage.
	if _, err := Decode(append(append([]byte{}, body...), 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Invalid type.
	bad := append([]byte{}, body...)
	bad[8] = 200
	if _, err := Decode(bad); err == nil {
		t.Error("invalid type accepted")
	}
	// Position outside path.
	bad = append([]byte{}, body...)
	bad[9], bad[10] = 0xFF, 0xFF
	if _, err := Decode(bad); err == nil {
		t.Error("position outside path accepted")
	}
}

func TestEncodeValidation(t *testing.T) {
	long := make([]topo.NodeID, MaxPathLen+1)
	if _, err := Encode(&Message{Type: TypeProbe, Path: long}); err == nil {
		t.Error("oversized path accepted")
	}
	if _, err := Encode(&Message{Type: TypeInvalid}); err == nil {
		t.Error("invalid type accepted")
	}
	if _, err := Encode(&Message{Type: Type(99)}); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestReadMessageFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadMessage(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestPathNavigation(t *testing.T) {
	m := &Message{Path: []topo.NodeID{7, 8, 9}, Pos: 1}
	if m.Current() != 8 || m.Prev() != 7 || m.Next() != 9 {
		t.Errorf("navigation: cur=%d prev=%d next=%d", m.Current(), m.Prev(), m.Next())
	}
	m.Pos = 0
	if m.Prev() != -1 {
		t.Error("Prev at start should be -1")
	}
	m.Pos = 2
	if m.Next() != -1 || !m.AtEnd() {
		t.Error("Next at end should be -1 and AtEnd true")
	}
	rev := m.ReversedPath()
	if rev[0] != 9 || rev[2] != 7 {
		t.Errorf("ReversedPath = %v", rev)
	}
}

func TestTypeString(t *testing.T) {
	if TypeProbe.String() != "PROBE" || TypeConfirmAck.String() != "CONFIRM_ACK" {
		t.Error("type names wrong")
	}
	if Type(77).String() == "" {
		t.Error("unknown type should still stringify")
	}
	if TypeInvalid.Valid() || Type(99).Valid() {
		t.Error("invalid types reported valid")
	}
}

// Property: encode→decode is the identity for arbitrary valid messages.
func TestRoundTripProperty(t *testing.T) {
	gen := func(r *rand.Rand) *Message {
		pathLen := 2 + r.Intn(8)
		m := &Message{
			TransID: r.Uint64(),
			Type:    Type(1 + r.Intn(int(typeMax)-1)),
			Pos:     uint16(r.Intn(pathLen)),
			Commit:  r.Float64() * 1e6,
		}
		m.Path = make([]topo.NodeID, pathLen)
		for i := range m.Path {
			m.Path[i] = topo.NodeID(r.Intn(1 << 20))
		}
		for i := 0; i < r.Intn(pathLen); i++ {
			m.Capacity = append(m.Capacity, r.Float64()*1e9)
			m.ReverseCap = append(m.ReverseCap, r.Float64()*1e9)
			m.FeeRate = append(m.FeeRate, r.Float64())
		}
		return m
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := gen(r)
		frame, err := Encode(m)
		if err != nil {
			return false
		}
		back, err := Decode(frame[4:])
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: random byte blobs never panic the decoder.
func TestDecodeFuzzProperty(t *testing.T) {
	f := func(blob []byte) bool {
		Decode(blob) // must not panic; errors are fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	m := sampleMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	frame, _ := Encode(sampleMessage())
	body := frame[4:]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(body); err != nil {
			b.Fatal(err)
		}
	}
}
