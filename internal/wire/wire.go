// Package wire implements the prototype's message format (paper §5.1,
// Table 1) and its framing over TCP streams.
//
// Every message carries: a transaction ID identifying the (partial)
// payment, a message type, the complete source-routed path, the probed
// capacity information accumulated along the path, and the committed
// amount of funds. Messages are exchanged as length-prefixed binary
// frames in big-endian byte order.
//
// Beyond Table 1 the format carries two reproduction-motivated
// extensions, both documented in DESIGN.md: the reverse-direction
// balances (Algorithm 1 records both directions of a probed channel)
// and per-hop fee rates (§3.2: fee information is collected during
// probing).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/topo"
)

// Type enumerates the protocol's message types (§5.1).
type Type uint8

// Message types. The Probe pair implements balance collection; the
// Commit/Confirm/Reverse triples implement the two-phase commit.
const (
	TypeInvalid    Type = iota
	TypeProbe           // sender → receiver: collect per-hop balances
	TypeProbeAck        // receiver → sender: probed balances coming back
	TypeCommit          // phase 1: reserve funds along the path
	TypeCommitAck       // receiver → sender: all hops reserved
	TypeCommitNack      // failing hop → sender: reservation failed, prefix rolled back
	TypeConfirm         // phase 2: finalise a reserved sub-payment
	TypeConfirmAck      // receiver → sender: finalised, reverse balances credited
	TypeReverse         // phase 2 alternative: roll back a reserved sub-payment
	TypeReverseAck      // receiver → sender: rollback complete
	typeMax
)

var typeNames = [...]string{
	"INVALID", "PROBE", "PROBE_ACK", "COMMIT", "COMMIT_ACK",
	"COMMIT_NACK", "CONFIRM", "CONFIRM_ACK", "REVERSE", "REVERSE_ACK",
}

// String returns the protocol name of the type.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Valid reports whether t is a defined message type.
func (t Type) Valid() bool { return t > TypeInvalid && t < typeMax }

// Message is one protocol message (Table 1).
type Message struct {
	// TransID uniquely identifies a (partial) payment. Multipath
	// sub-payments get distinct IDs from the same sender.
	TransID uint64
	// Type is the message type.
	Type Type
	// Path is the complete source route. Forward messages run
	// Path[0]→Path[len-1]; acknowledgement types carry the reversed
	// path, exactly as the prototype "replaces the Path field with the
	// reversed version of the forward path".
	Path []topo.NodeID
	// Pos is the index (into Path) of the node the message is currently
	// at; the receiver of a frame is Path[Pos].
	Pos uint16
	// Capacity accumulates, per forward hop, the probed available
	// balance (PROBE) — Table 1's Capacity field.
	Capacity []float64
	// ReverseCap accumulates the reverse-direction balances (extension
	// for Algorithm 1 lines 20–22).
	ReverseCap []float64
	// FeeRate accumulates per-hop proportional fee rates (extension,
	// §3.2).
	FeeRate []float64
	// Commit is the amount of funds this message commits, confirms or
	// reverses — Table 1's Commit field.
	Commit float64
}

// Framing and sanity limits.
const (
	// MaxPathLen bounds source routes; offchain paths are short (the
	// paper's topologies have diameters well under 20).
	MaxPathLen = 1024
	// MaxFrameSize bounds a whole frame, derived from MaxPathLen.
	MaxFrameSize = 64 * 1024
)

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameSize")
	ErrMalformed     = errors.New("wire: malformed message")
)

// Next returns the node the message visits after the current one, or -1
// at the end of the path.
func (m *Message) Next() topo.NodeID {
	if int(m.Pos)+1 < len(m.Path) {
		return m.Path[m.Pos+1]
	}
	return -1
}

// Prev returns the node before the current one, or -1 at the start.
func (m *Message) Prev() topo.NodeID {
	if m.Pos > 0 && int(m.Pos) <= len(m.Path) {
		return m.Path[m.Pos-1]
	}
	return -1
}

// Current returns the node the message is at.
func (m *Message) Current() topo.NodeID {
	if int(m.Pos) < len(m.Path) {
		return m.Path[m.Pos]
	}
	return -1
}

// AtEnd reports whether the message has reached the last path node.
func (m *Message) AtEnd() bool { return int(m.Pos) == len(m.Path)-1 }

// ReversedPath returns the path reversed — used when turning a forward
// message into its acknowledgement.
func (m *Message) ReversedPath() []topo.NodeID {
	rev := make([]topo.NodeID, len(m.Path))
	for i, u := range m.Path {
		rev[len(m.Path)-1-i] = u
	}
	return rev
}

// appendTo serialises the message body (without the length prefix).
func (m *Message) appendTo(buf []byte) ([]byte, error) {
	if len(m.Path) > MaxPathLen {
		return nil, fmt.Errorf("%w: path length %d", ErrMalformed, len(m.Path))
	}
	if len(m.Capacity) > MaxPathLen || len(m.ReverseCap) > MaxPathLen || len(m.FeeRate) > MaxPathLen {
		return nil, fmt.Errorf("%w: capacity vector too long", ErrMalformed)
	}
	if !m.Type.Valid() {
		return nil, fmt.Errorf("%w: invalid type %d", ErrMalformed, m.Type)
	}
	buf = binary.BigEndian.AppendUint64(buf, m.TransID)
	buf = append(buf, byte(m.Type))
	buf = binary.BigEndian.AppendUint16(buf, m.Pos)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Path)))
	for _, u := range m.Path {
		buf = binary.BigEndian.AppendUint32(buf, uint32(u))
	}
	for _, vec := range [][]float64{m.Capacity, m.ReverseCap, m.FeeRate} {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(vec)))
		for _, v := range vec {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.Commit))
	return buf, nil
}

// Encode serialises the message as a length-prefixed frame.
func Encode(m *Message) ([]byte, error) {
	body, err := m.appendTo(make([]byte, 0, 64+8*len(m.Path)))
	if err != nil {
		return nil, err
	}
	if len(body) > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	frame := make([]byte, 0, 4+len(body))
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(body)))
	return append(frame, body...), nil
}

// WriteMessage frames and writes m to w.
func WriteMessage(w io.Writer, m *Message) error {
	frame, err := Encode(m)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// ReadMessage reads one length-prefixed frame from r and decodes it.
func ReadMessage(r io.Reader) (*Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return Decode(body)
}

// Decode parses a frame body produced by Encode.
func Decode(body []byte) (*Message, error) {
	d := decoder{buf: body}
	m := &Message{}
	m.TransID = d.uint64()
	m.Type = Type(d.uint8())
	m.Pos = d.uint16()
	pathLen := int(d.uint16())
	if pathLen > MaxPathLen {
		return nil, fmt.Errorf("%w: path length %d", ErrMalformed, pathLen)
	}
	if pathLen > 0 {
		m.Path = make([]topo.NodeID, pathLen)
		for i := range m.Path {
			m.Path[i] = topo.NodeID(d.uint32())
		}
	}
	for _, vec := range []*[]float64{&m.Capacity, &m.ReverseCap, &m.FeeRate} {
		vlen := int(d.uint16())
		if vlen > MaxPathLen {
			return nil, fmt.Errorf("%w: vector length %d", ErrMalformed, vlen)
		}
		if vlen > 0 {
			*vec = make([]float64, vlen)
			for i := range *vec {
				(*vec)[i] = math.Float64frombits(d.uint64())
			}
		}
	}
	m.Commit = math.Float64frombits(d.uint64())
	if d.failed {
		return nil, fmt.Errorf("%w: truncated frame", ErrMalformed)
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.buf)-d.off)
	}
	if !m.Type.Valid() {
		return nil, fmt.Errorf("%w: invalid type %d", ErrMalformed, m.Type)
	}
	if int(m.Pos) >= pathLen && pathLen > 0 {
		return nil, fmt.Errorf("%w: position %d outside path of %d", ErrMalformed, m.Pos, pathLen)
	}
	return m, nil
}

// decoder is a bounds-checked big-endian reader.
type decoder struct {
	buf    []byte
	off    int
	failed bool
}

func (d *decoder) take(n int) []byte {
	if d.failed || d.off+n > len(d.buf) {
		d.failed = true
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) uint8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) uint16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}
