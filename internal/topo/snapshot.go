package topo

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"unicode"
)

// Snapshot is an ingested real-world (or synthetic) channel graph: the
// compacted topology, the interner mapping external node keys (LN
// pubkeys, Ripple addresses) to dense NodeIDs, and the per-channel
// capacity in the source's native unit, indexed by channel index.
type Snapshot struct {
	Graph    *Graph
	Names    *Interner
	Capacity []float64
}

// lnGraphJSON mirrors the subset of lnd's `describegraph` output the
// ingester needs. Unknown fields are ignored.
type lnGraphJSON struct {
	Nodes []lnNodeJSON `json:"nodes"`
	Edges []lnEdgeJSON `json:"edges"`
}

type lnNodeJSON struct {
	PubKey string `json:"pub_key"`
}

type lnEdgeJSON struct {
	Node1Pub string  `json:"node1_pub"`
	Node2Pub string  `json:"node2_pub"`
	Capacity flexNum `json:"capacity"`
}

// flexNum accepts a JSON number either bare or quoted — lnd serialises
// satoshi capacities as decimal strings.
type flexNum float64

// UnmarshalJSON implements json.Unmarshaler.
func (f *flexNum) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	if s == "" || s == "null" {
		*f = 0
		return nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("capacity %q: %w", s, err)
	}
	*f = flexNum(v)
	return nil
}

// ReadLNGraphJSON ingests a Lightning channel-graph dump in lnd's
// `describegraph` JSON shape: a `nodes` array keyed by `pub_key` and an
// `edges` array of `node1_pub`/`node2_pub`/`capacity` records (capacity
// in satoshi, bare or quoted). NodeIDs are assigned in nodes-array
// order, channel indices in edges-array order. Parallel channels
// between the same pair — routine in real Lightning dumps — are merged
// with capacities summed. Malformed dumps are rejected with the index
// of the offending record: edges referencing a pubkey missing from the
// nodes list (dangling endpoint), non-positive capacities, self-loops,
// and duplicate node records are all errors.
func ReadLNGraphJSON(r io.Reader) (*Snapshot, error) {
	var dump lnGraphJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&dump); err != nil {
		return nil, fmt.Errorf("topo: ln graph json: %w", err)
	}
	if len(dump.Nodes) == 0 {
		return nil, fmt.Errorf("topo: ln graph json: no nodes")
	}
	in := NewInterner(len(dump.Nodes))
	for i, n := range dump.Nodes {
		if n.PubKey == "" {
			return nil, fmt.Errorf("topo: nodes[%d]: empty pub_key", i)
		}
		if in.Lookup(n.PubKey) >= 0 {
			return nil, fmt.Errorf("topo: nodes[%d]: duplicate pub_key %q", i, n.PubKey)
		}
		in.Intern(n.PubKey)
	}
	g := New(in.Len())
	caps := make([]float64, 0, len(dump.Edges))
	for i, e := range dump.Edges {
		a := in.Lookup(e.Node1Pub)
		if a < 0 {
			return nil, fmt.Errorf("topo: edges[%d]: node1_pub %q not in nodes list", i, e.Node1Pub)
		}
		b := in.Lookup(e.Node2Pub)
		if b < 0 {
			return nil, fmt.Errorf("topo: edges[%d]: node2_pub %q not in nodes list", i, e.Node2Pub)
		}
		c := float64(e.Capacity)
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("topo: edges[%d]: non-positive capacity %v", i, c)
		}
		if idx := g.ChannelIndex(a, b); idx >= 0 {
			caps[idx] += c // parallel channel: merge
			continue
		}
		if _, err := g.AddChannel(a, b); err != nil {
			return nil, fmt.Errorf("topo: edges[%d]: %w", i, err)
		}
		caps = append(caps, c) // AddChannel assigns indices sequentially
	}
	g.Compact()
	return &Snapshot{Graph: g, Names: in, Capacity: caps}, nil
}

// ReadRippleEdgeList ingests a whitespace-separated capacity edge list,
// the shape Ripple trust-line crawls are distributed in:
//
//	# optional comments
//	<src> <dst> <capacity>
//
// one channel per line. Node keys are arbitrary strings (Ripple
// addresses, integers, anything without whitespace), interned to dense
// NodeIDs in first-seen order. Malformed lines are rejected with their
// line number: wrong field counts, self-loops, non-positive or
// unparsable capacities, and duplicate channels are all errors.
func ReadRippleEdgeList(r io.Reader) (*Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	in := NewInterner(0)
	type row struct {
		a, b NodeID
		cap  float64
		line int
	}
	var rows []row
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("topo: line %d: want \"src dst capacity\", got %d fields", lineNo, len(fields))
		}
		c, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("topo: line %d: capacity %q: %w", lineNo, fields[2], err)
		}
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("topo: line %d: non-positive capacity %v", lineNo, c)
		}
		if fields[0] == fields[1] {
			return nil, fmt.Errorf("topo: line %d: self-loop on %q", lineNo, fields[0])
		}
		rows = append(rows, row{a: in.Intern(fields[0]), b: in.Intern(fields[1]), cap: c, line: lineNo})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if in.Len() == 0 {
		return nil, fmt.Errorf("topo: edge list: no channels")
	}
	g := New(in.Len())
	caps := make([]float64, len(rows))
	for _, rw := range rows {
		if g.ChannelIndex(rw.a, rw.b) >= 0 {
			return nil, fmt.Errorf("topo: line %d: duplicate channel %s-%s",
				rw.line, in.Name(rw.a), in.Name(rw.b))
		}
		idx, err := g.AddChannel(rw.a, rw.b)
		if err != nil {
			return nil, fmt.Errorf("topo: line %d: %w", rw.line, err)
		}
		caps[idx] = rw.cap
	}
	g.Compact()
	return &Snapshot{Graph: g, Names: in, Capacity: caps}, nil
}

// WriteLNGraphJSON serialises a snapshot in the lnd `describegraph`
// shape ReadLNGraphJSON ingests. Node order is NodeID order and edge
// order is channel-index order, so a write/read round trip reproduces
// the snapshot exactly: same IDs, same channel indices, same
// capacities.
func WriteLNGraphJSON(w io.Writer, snap *Snapshot) error {
	dump := lnGraphJSON{
		Nodes: make([]lnNodeJSON, snap.Graph.NumNodes()),
		Edges: make([]lnEdgeJSON, snap.Graph.NumChannels()),
	}
	for i := range dump.Nodes {
		dump.Nodes[i].PubKey = snap.name(NodeID(i))
	}
	for i, e := range snap.Graph.Channels() {
		dump.Edges[i] = lnEdgeJSON{
			Node1Pub: snap.name(e.A),
			Node2Pub: snap.name(e.B),
			Capacity: flexNum(snap.Capacity[i]),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

// WriteRippleEdgeList serialises a snapshot in the capacity edge-list
// shape ReadRippleEdgeList ingests, one channel per line in
// channel-index order. Because the reader interns node keys in
// first-seen order, a round trip through this format preserves the
// named topology and capacities but may renumber NodeIDs of nodes
// whose first appearance moves; WriteLNGraphJSON is the exact format.
// Node names the format cannot represent — empty, containing
// whitespace, or starting with the comment character '#' (channel
// normalisation can move a name to line-leading position, where the
// reader would swallow it as a comment) — are rejected with an error
// rather than written as a file that reads back differently.
func WriteRippleEdgeList(w io.Writer, snap *Snapshot) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# flash-snapshot nodes=%d channels=%d\n",
		snap.Graph.NumNodes(), snap.Graph.NumChannels()); err != nil {
		return err
	}
	for i, e := range snap.Graph.Channels() {
		for _, id := range [2]NodeID{e.A, e.B} {
			if err := checkEdgeListName(snap.name(id)); err != nil {
				return fmt.Errorf("topo: channel %d: %w", i, err)
			}
		}
		if _, err := fmt.Fprintf(bw, "%s %s %s\n",
			snap.name(e.A), snap.name(e.B),
			strconv.FormatFloat(snap.Capacity[i], 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// checkEdgeListName rejects node names the edge-list format cannot
// round-trip.
func checkEdgeListName(name string) error {
	switch {
	case name == "":
		return fmt.Errorf("empty node name")
	case strings.HasPrefix(name, "#"):
		return fmt.Errorf("node name %q starts with the comment character", name)
	case strings.IndexFunc(name, unicode.IsSpace) >= 0:
		return fmt.Errorf("node name %q contains whitespace", name)
	}
	return nil
}

// name returns the external key of id, falling back to the decimal ID
// for snapshots without an interner.
func (s *Snapshot) name(id NodeID) string {
	if s.Names != nil && int(id) < s.Names.Len() {
		return s.Names.Name(id)
	}
	return strconv.Itoa(int(id))
}

// LoadSnapshotFile ingests a snapshot from disk, dispatching on the
// file extension: ".json" is read as an LN channel-graph dump,
// everything else as a capacity edge list.
func LoadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if strings.HasSuffix(strings.ToLower(path), ".json") {
		snap, err := ReadLNGraphJSON(br)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return snap, nil
	}
	snap, err := ReadRippleEdgeList(br)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// GenerateSyntheticSnapshot builds a seeded synthetic snapshot of the
// named kind — "ripple", "lightning" or "testbed", matching the
// simulator's topology models — with capacities drawn from the paper's
// funding distributions (log-normal with median ≈$250 for Ripple,
// ≈500k satoshi for Lightning, uniform [1000,1500) for the testbed).
// Node keys are "n0".."n<N-1>". The same (kind, n, seed) always yields
// the same snapshot, so generated files are reproducible fixtures for
// scale benchmarks.
func GenerateSyntheticSnapshot(kind string, n int, seed int64) (*Snapshot, error) {
	rng := rand.New(rand.NewSource(seed))
	var (
		g   *Graph
		err error
	)
	switch kind {
	case "ripple":
		g, err = RippleLike(n, rng)
	case "lightning":
		g, err = LightningLike(n, rng)
	case "testbed":
		g, err = WattsStrogatz(n, 4, 0.3, rng)
	default:
		return nil, fmt.Errorf("topo: unknown snapshot kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	in := NewInterner(n)
	for i := 0; i < n; i++ {
		in.Intern("n" + strconv.Itoa(i))
	}
	caps := make([]float64, g.NumChannels())
	for i := range caps {
		switch kind {
		case "ripple":
			caps[i] = 250 * math.Exp(rng.NormFloat64()*1.5)
		case "lightning":
			caps[i] = 500000 * math.Exp(rng.NormFloat64()*2.0)
		default:
			caps[i] = 1000 + rng.Float64()*500
		}
	}
	return &Snapshot{Graph: g, Names: in, Capacity: caps}, nil
}
