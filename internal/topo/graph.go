// Package topo models the connectivity structure of an offchain network:
// an undirected multigraph-free graph of nodes joined by payment
// channels. Channel balances live elsewhere (package pcn); topo holds
// only what the paper assumes every node knows locally — the topology
// without capacity information (§3.1 "Locally available topology").
//
// The package also provides the topology generators used in the paper's
// evaluation: Watts–Strogatz small-world graphs for the testbed (§5.2)
// and Barabási–Albert scale-free graphs standing in for the Ripple and
// Lightning crawls (§4.1), plus snapshot ingestion (snapshot.go) and an
// edge-list serialisation so real crawl data can be substituted.
//
// # Representation
//
// Graph stores adjacency in compressed sparse row (CSR) form: one flat
// neighbor arena shared by all nodes, sliced per node by an offset
// array, with a parallel arena of channel indices — three slabs total,
// whatever the node count, instead of one heap object per node. The
// arena keeps neighbors in channel-insertion order (BFS tie-breaking,
// and therefore every seeded experiment, depends on that order), and a
// second, neighbor-sorted copy serves O(log degree) channel lookup by
// binary search — no map on the read path.
//
// Because CSR is append-hostile, AddChannel stages new channels in
// small per-node pending lists and folds them into the arena in
// amortised-O(1) compactions; any read that needs contiguous adjacency
// compacts first. Concurrent reads of a quiescent (fully compacted)
// graph are lock-free and safe — the run paths (pcn.New, the snapshot
// loaders, the generators) all hand out compacted graphs. AddChannel
// itself is not safe concurrently with anything, exactly as before.
package topo

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node. IDs are dense indices in [0, NumNodes);
// external string keys (LN pubkeys, Ripple addresses) map to dense IDs
// through an Interner.
type NodeID int32

// Edge is an undirected payment channel between two nodes. The
// constructor canonicalises so A < B.
type Edge struct {
	A, B NodeID
}

// NewEdge returns the canonical Edge with endpoints a and b.
func NewEdge(a, b NodeID) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// csr is one immutable compressed-sparse-row snapshot of the adjacency
// structure. Readers obtain it through an atomic pointer, so a
// compaction publishing a new snapshot never races an in-flight read.
type csr struct {
	off     []int32  // len n+1; node u's arena span is [off[u], off[u+1])
	arena   []NodeID // neighbors, channel-insertion order per node
	arenaCh []int32  // channel index parallel to arena
	sorted  []NodeID // neighbors, ascending per node (binary-search domain)
	sortCh  []int32  // channel index parallel to sorted
}

// degree returns the number of base (compacted) neighbors of u.
func (c *csr) degree(u NodeID) int { return int(c.off[u+1] - c.off[u]) }

// find returns the channel index joining u and v in the base CSR, or
// -1: a binary search over u's sorted neighbor run.
func (c *csr) find(u, v NodeID) int {
	lo, hi := int(c.off[u]), int(c.off[u+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.sorted[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(c.off[u+1]) && c.sorted[lo] == v {
		return int(c.sortCh[lo])
	}
	return -1
}

// pendingHalf is one staged (not yet compacted) adjacency entry.
type pendingHalf struct {
	nbr NodeID
	ch  int32
}

// compactThreshold is the pending-channel count above which AddChannel
// folds the staged channels into the arena. Growing the base
// geometrically keeps total compaction work linear in the final channel
// count.
const compactThreshold = 64

// Graph is an undirected graph with O(log degree) channel lookup and
// stable channel indices, stored in CSR form (see the package comment).
// The zero value is an empty graph; use New to pre-size.
type Graph struct {
	edges []Edge

	base  atomic.Pointer[csr] // immutable compacted snapshot
	pendN atomic.Int32        // staged channels not yet in base

	mu       sync.Mutex // serialises compaction and pending-list access
	pend     [][]pendingHalf
	baseEdge int // channels covered by base
}

// New returns an empty graph with n nodes and no channels.
func New(n int) *Graph {
	g := &Graph{pend: make([][]pendingHalf, n)}
	g.base.Store(&csr{off: make([]int32, n+1)})
	return g
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.pend) }

// NumChannels returns the number of undirected channels.
func (g *Graph) NumChannels() int { return len(g.edges) }

// AddChannel inserts an undirected channel between a and b, returning
// its stable channel index. Adding an existing channel returns the
// existing index; self-loops are rejected. Not safe concurrently with
// any other method.
func (g *Graph) AddChannel(a, b NodeID) (int, error) {
	if a == b {
		return -1, fmt.Errorf("topo: self-loop on node %d", a)
	}
	if int(a) < 0 || int(a) >= g.NumNodes() || int(b) < 0 || int(b) >= g.NumNodes() {
		return -1, fmt.Errorf("topo: node out of range: %d-%d (n=%d)", a, b, g.NumNodes())
	}
	if idx := g.ChannelIndex(a, b); idx >= 0 {
		return idx, nil
	}
	idx := len(g.edges)
	g.edges = append(g.edges, NewEdge(a, b))
	g.mu.Lock()
	g.pend[a] = append(g.pend[a], pendingHalf{nbr: b, ch: int32(idx)})
	g.pend[b] = append(g.pend[b], pendingHalf{nbr: a, ch: int32(idx)})
	pending := g.pendN.Add(1)
	// Compact when the staged tail outgrows the base: geometric growth,
	// so a build of m channels pays O(m) total compaction work.
	if int(pending) >= compactThreshold && int(pending)*2 >= g.baseEdge {
		g.compactLocked()
	}
	g.mu.Unlock()
	return idx, nil
}

// MustAddChannel is AddChannel for construction code where the inputs
// are known valid; it panics on error.
func (g *Graph) MustAddChannel(a, b NodeID) int {
	idx, err := g.AddChannel(a, b)
	if err != nil {
		panic(err)
	}
	return idx
}

// Compact folds all staged channels into the CSR arena so subsequent
// reads are lock-free. Construction paths (pcn.New, the generators,
// the snapshot loaders) call it once after the last AddChannel; it is
// also applied lazily by any read that needs contiguous adjacency.
func (g *Graph) Compact() {
	if g.pendN.Load() == 0 {
		return
	}
	g.mu.Lock()
	g.compactLocked()
	g.mu.Unlock()
}

// compactLocked rebuilds the CSR snapshot from the current base plus
// every pending half-edge, preserving per-node insertion order, and
// publishes it. Callers hold g.mu.
func (g *Graph) compactLocked() {
	if g.pendN.Load() == 0 {
		return
	}
	old := g.base.Load()
	n := g.NumNodes()
	total := 2 * len(g.edges)
	nc := &csr{
		off:     make([]int32, n+1),
		arena:   make([]NodeID, total),
		arenaCh: make([]int32, total),
		sorted:  make([]NodeID, total),
		sortCh:  make([]int32, total),
	}
	for u := 0; u < n; u++ {
		nc.off[u+1] = nc.off[u] + int32(old.degree(NodeID(u))+len(g.pend[u]))
	}
	for u := 0; u < n; u++ {
		lo, hi := int(nc.off[u]), int(nc.off[u+1])
		// Insertion-order arena: base span first (already in order),
		// then the staged tail in staging order.
		w := lo
		for i := old.off[u]; i < old.off[u+1]; i++ {
			nc.arena[w], nc.arenaCh[w] = old.arena[i], old.arenaCh[i]
			w++
		}
		for _, p := range g.pend[u] {
			nc.arena[w], nc.arenaCh[w] = p.nbr, p.ch
			w++
		}
		g.pend[u] = nil
		// Sorted copy: merge would do, but a per-node sort is simple and
		// runs only at compaction; neighbor IDs are unique per node.
		copy(nc.sorted[lo:hi], nc.arena[lo:hi])
		copy(nc.sortCh[lo:hi], nc.arenaCh[lo:hi])
		span := nodeSortSpan{nbr: nc.sorted[lo:hi], ch: nc.sortCh[lo:hi]}
		if !sort.IsSorted(span) {
			sort.Sort(span)
		}
	}
	g.base.Store(nc)
	g.baseEdge = len(g.edges)
	g.pendN.Store(0)
}

// nodeSortSpan sorts one node's neighbor run with its parallel channel
// indices.
type nodeSortSpan struct {
	nbr []NodeID
	ch  []int32
}

func (s nodeSortSpan) Len() int           { return len(s.nbr) }
func (s nodeSortSpan) Less(i, j int) bool { return s.nbr[i] < s.nbr[j] }
func (s nodeSortSpan) Swap(i, j int) {
	s.nbr[i], s.nbr[j] = s.nbr[j], s.nbr[i]
	s.ch[i], s.ch[j] = s.ch[j], s.ch[i]
}

// HasChannel reports whether a channel joins a and b.
func (g *Graph) HasChannel(a, b NodeID) bool {
	return g.ChannelIndex(a, b) >= 0
}

// ChannelIndex returns the stable index of the channel joining a and b,
// or -1 if none exists. On a compacted graph this is a lock-free binary
// search over a's sorted neighbor run.
func (g *Graph) ChannelIndex(a, b NodeID) int {
	if int(a) < 0 || int(a) >= g.NumNodes() || int(b) < 0 || int(b) >= g.NumNodes() {
		return -1
	}
	if idx := g.base.Load().find(a, b); idx >= 0 {
		return idx
	}
	if g.pendN.Load() == 0 {
		return -1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, p := range g.pend[a] {
		if p.nbr == b {
			return int(p.ch)
		}
	}
	return -1
}

// Channel returns the endpoints of channel idx.
func (g *Graph) Channel(idx int) Edge { return g.edges[idx] }

// Channels returns the channel list. The caller must not modify it.
func (g *Graph) Channels() []Edge { return g.edges }

// Neighbors returns the adjacency list of u in channel-insertion order
// — a view into the CSR arena. The caller must not modify the returned
// slice, and must not retain it across a later AddChannel.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	if g.pendN.Load() != 0 {
		g.Compact()
	}
	c := g.base.Load()
	return c.arena[c.off[u]:c.off[u+1]]
}

// NeighborsWithChannels returns u's adjacency list together with the
// parallel channel-index slice: chans[i] is the index of the channel
// joining u and nbrs[i]. Path-search code uses it to learn channel
// indices during traversal without any per-hop lookup. The same
// aliasing rules as Neighbors apply.
func (g *Graph) NeighborsWithChannels(u NodeID) (nbrs []NodeID, chans []int32) {
	if g.pendN.Load() != 0 {
		g.Compact()
	}
	c := g.base.Load()
	return c.arena[c.off[u]:c.off[u+1]], c.arenaCh[c.off[u]:c.off[u+1]]
}

// AdjacencyView returns the raw CSR slabs in one call: off has length
// NumNodes()+1, and node u's neighbors are nbrs[off[u]:off[u+1]] in
// channel-insertion order with chans parallel (chans[i] is the channel
// joining u and nbrs[i]). Hot search loops index the slabs directly,
// paying the compaction check once per traversal instead of once per
// node. The same aliasing rules as Neighbors apply to all three slices.
func (g *Graph) AdjacencyView() (off []int32, nbrs []NodeID, chans []int32) {
	if g.pendN.Load() != 0 {
		g.Compact()
	}
	c := g.base.Load()
	return c.off, c.arena, c.arenaCh
}

// Degree returns the number of channels incident to u.
func (g *Graph) Degree(u NodeID) int {
	d := g.base.Load().degree(u)
	if g.pendN.Load() != 0 {
		g.mu.Lock()
		d = g.base.Load().degree(u) + len(g.pend[u])
		g.mu.Unlock()
	}
	return d
}

// Clone returns a deep copy of the graph (compacted).
func (g *Graph) Clone() *Graph {
	g.Compact()
	old := g.base.Load()
	c := New(g.NumNodes())
	c.edges = append([]Edge(nil), g.edges...)
	c.base.Store(&csr{
		off:     append([]int32(nil), old.off...),
		arena:   append([]NodeID(nil), old.arena...),
		arenaCh: append([]int32(nil), old.arenaCh...),
		sorted:  append([]NodeID(nil), old.sorted...),
		sortCh:  append([]int32(nil), old.sortCh...),
	})
	c.baseEdge = len(c.edges)
	return c
}

// ComponentOf returns the set of nodes reachable from start, as a sorted
// slice.
func (g *Graph) ComponentOf(start NodeID) []NodeID {
	seen := make([]bool, g.NumNodes())
	queue := []NodeID{start}
	seen[start] = true
	var comp []NodeID
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		comp = append(comp, u)
		for _, v := range g.Neighbors(u) {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
	return comp
}

// Connected reports whether every node is reachable from node 0 (true
// for the empty and single-node graphs).
func (g *Graph) Connected() bool {
	if g.NumNodes() <= 1 {
		return true
	}
	return len(g.ComponentOf(0)) == g.NumNodes()
}

// LargestComponent returns the node set of the largest connected
// component.
func (g *Graph) LargestComponent() []NodeID {
	seen := make([]bool, g.NumNodes())
	var best []NodeID
	for u := 0; u < g.NumNodes(); u++ {
		if seen[u] {
			continue
		}
		comp := g.ComponentOf(NodeID(u))
		for _, v := range comp {
			seen[v] = true
		}
		if len(comp) > len(best) {
			best = comp
		}
	}
	return best
}

// Subgraph returns the induced subgraph on keep, with nodes renumbered
// densely in the order given, plus the mapping old→new (-1 if dropped).
func (g *Graph) Subgraph(keep []NodeID) (*Graph, []NodeID) {
	remap := make([]NodeID, g.NumNodes())
	for i := range remap {
		remap[i] = -1
	}
	for newID, old := range keep {
		remap[old] = NodeID(newID)
	}
	sub := New(len(keep))
	for _, e := range g.edges {
		a, b := remap[e.A], remap[e.B]
		if a >= 0 && b >= 0 {
			sub.MustAddChannel(a, b)
		}
	}
	sub.Compact()
	return sub, remap
}

// AvgDegree returns the mean node degree (2·channels / nodes).
func (g *Graph) AvgDegree() float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	return 2 * float64(g.NumChannels()) / float64(g.NumNodes())
}
