// Package topo models the connectivity structure of an offchain network:
// an undirected multigraph-free graph of nodes joined by payment
// channels. Channel balances live elsewhere (package pcn); topo holds
// only what the paper assumes every node knows locally — the topology
// without capacity information (§3.1 "Locally available topology").
//
// The package also provides the topology generators used in the paper's
// evaluation: Watts–Strogatz small-world graphs for the testbed (§5.2)
// and Barabási–Albert scale-free graphs standing in for the Ripple and
// Lightning crawls (§4.1), plus an edge-list serialisation so real crawl
// data can be substituted when available.
package topo

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. IDs are dense indices in [0, NumNodes).
type NodeID int32

// Edge is an undirected payment channel between two nodes. The
// constructor canonicalises so A < B.
type Edge struct {
	A, B NodeID
}

// NewEdge returns the canonical Edge with endpoints a and b.
func NewEdge(a, b NodeID) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// Graph is an undirected graph with O(1) edge lookup and stable channel
// indices. The zero value is an empty graph; use New to pre-size.
type Graph struct {
	adj       [][]NodeID
	edges     []Edge
	edgeIndex map[Edge]int
}

// New returns an empty graph with n nodes and no channels.
func New(n int) *Graph {
	return &Graph{
		adj:       make([][]NodeID, n),
		edgeIndex: make(map[Edge]int),
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumChannels returns the number of undirected channels.
func (g *Graph) NumChannels() int { return len(g.edges) }

// AddChannel inserts an undirected channel between a and b, returning
// its stable channel index. Adding an existing channel returns the
// existing index; self-loops are rejected.
func (g *Graph) AddChannel(a, b NodeID) (int, error) {
	if a == b {
		return -1, fmt.Errorf("topo: self-loop on node %d", a)
	}
	if int(a) < 0 || int(a) >= len(g.adj) || int(b) < 0 || int(b) >= len(g.adj) {
		return -1, fmt.Errorf("topo: node out of range: %d-%d (n=%d)", a, b, len(g.adj))
	}
	e := NewEdge(a, b)
	if idx, ok := g.edgeIndex[e]; ok {
		return idx, nil
	}
	idx := len(g.edges)
	g.edges = append(g.edges, e)
	g.edgeIndex[e] = idx
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	return idx, nil
}

// MustAddChannel is AddChannel for construction code where the inputs
// are known valid; it panics on error.
func (g *Graph) MustAddChannel(a, b NodeID) int {
	idx, err := g.AddChannel(a, b)
	if err != nil {
		panic(err)
	}
	return idx
}

// HasChannel reports whether a channel joins a and b.
func (g *Graph) HasChannel(a, b NodeID) bool {
	_, ok := g.edgeIndex[NewEdge(a, b)]
	return ok
}

// ChannelIndex returns the stable index of the channel joining a and b,
// or -1 if none exists.
func (g *Graph) ChannelIndex(a, b NodeID) int {
	if idx, ok := g.edgeIndex[NewEdge(a, b)]; ok {
		return idx
	}
	return -1
}

// Channel returns the endpoints of channel idx.
func (g *Graph) Channel(idx int) Edge { return g.edges[idx] }

// Channels returns the channel list. The caller must not modify it.
func (g *Graph) Channels() []Edge { return g.edges }

// Neighbors returns the adjacency list of u. The caller must not modify
// the returned slice.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.adj[u] }

// Degree returns the number of channels incident to u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.NumNodes())
	for _, e := range g.edges {
		c.MustAddChannel(e.A, e.B)
	}
	return c
}

// ComponentOf returns the set of nodes reachable from start, as a sorted
// slice.
func (g *Graph) ComponentOf(start NodeID) []NodeID {
	seen := make([]bool, g.NumNodes())
	queue := []NodeID{start}
	seen[start] = true
	var comp []NodeID
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		comp = append(comp, u)
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
	return comp
}

// Connected reports whether every node is reachable from node 0 (true
// for the empty and single-node graphs).
func (g *Graph) Connected() bool {
	if g.NumNodes() <= 1 {
		return true
	}
	return len(g.ComponentOf(0)) == g.NumNodes()
}

// LargestComponent returns the node set of the largest connected
// component.
func (g *Graph) LargestComponent() []NodeID {
	seen := make([]bool, g.NumNodes())
	var best []NodeID
	for u := 0; u < g.NumNodes(); u++ {
		if seen[u] {
			continue
		}
		comp := g.ComponentOf(NodeID(u))
		for _, v := range comp {
			seen[v] = true
		}
		if len(comp) > len(best) {
			best = comp
		}
	}
	return best
}

// Subgraph returns the induced subgraph on keep, with nodes renumbered
// densely in the order given, plus the mapping old→new (-1 if dropped).
func (g *Graph) Subgraph(keep []NodeID) (*Graph, []NodeID) {
	remap := make([]NodeID, g.NumNodes())
	for i := range remap {
		remap[i] = -1
	}
	for newID, old := range keep {
		remap[old] = NodeID(newID)
	}
	sub := New(len(keep))
	for _, e := range g.edges {
		a, b := remap[e.A], remap[e.B]
		if a >= 0 && b >= 0 {
			sub.MustAddChannel(a, b)
		}
	}
	return sub, remap
}

// AvgDegree returns the mean node degree (2·channels / nodes).
func (g *Graph) AvgDegree() float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	return 2 * float64(g.NumChannels()) / float64(g.NumNodes())
}
