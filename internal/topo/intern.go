package topo

import "fmt"

// Interner maps external string node keys — Lightning pubkeys, Ripple
// addresses — to dense NodeIDs, in first-seen order. Real snapshots
// identify nodes by opaque strings; everything downstream (CSR arrays,
// pcn channel slots, routing tables) wants dense small integers, so the
// ingesters intern every key exactly once and the rest of the system
// never sees a string again.
type Interner struct {
	ids   map[string]NodeID
	names []string
}

// NewInterner returns an empty interner, optionally pre-sized.
func NewInterner(sizeHint int) *Interner {
	return &Interner{ids: make(map[string]NodeID, sizeHint)}
}

// Intern returns the dense NodeID for key, assigning the next free ID
// on first sight.
func (in *Interner) Intern(key string) NodeID {
	if id, ok := in.ids[key]; ok {
		return id
	}
	id := NodeID(len(in.names))
	in.ids[key] = id
	in.names = append(in.names, key)
	return id
}

// Lookup returns the NodeID previously assigned to key, or -1.
func (in *Interner) Lookup(key string) NodeID {
	if id, ok := in.ids[key]; ok {
		return id
	}
	return -1
}

// Name returns the external key of id.
func (in *Interner) Name(id NodeID) string {
	if int(id) < 0 || int(id) >= len(in.names) {
		return fmt.Sprintf("<node %d>", id)
	}
	return in.names[id]
}

// Names returns the external keys indexed by NodeID. The caller must
// not modify the returned slice.
func (in *Interner) Names() []string { return in.names }

// Len returns the number of interned keys.
func (in *Interner) Len() int { return len(in.names) }
