package topo

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// checkSnapshotInvariants asserts the structural guarantees every
// successfully ingested snapshot documents: dense graph, interner
// covering every node, one positive finite capacity per channel, no
// self-loops.
func checkSnapshotInvariants(t *testing.T, snap *Snapshot) {
	t.Helper()
	if snap == nil || snap.Graph == nil || snap.Names == nil {
		t.Fatal("nil snapshot parts on success")
	}
	if snap.Names.Len() != snap.Graph.NumNodes() {
		t.Fatalf("interner covers %d nodes, graph has %d", snap.Names.Len(), snap.Graph.NumNodes())
	}
	if len(snap.Capacity) != snap.Graph.NumChannels() {
		t.Fatalf("%d capacities for %d channels", len(snap.Capacity), snap.Graph.NumChannels())
	}
	for i, c := range snap.Capacity {
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("capacity[%d] = %v escaped validation", i, c)
		}
	}
	for _, e := range snap.Graph.Channels() {
		if e.A == e.B {
			t.Fatalf("self-loop on node %d escaped validation", e.A)
		}
	}
}

// FuzzReadLNGraphJSON throws arbitrary bytes at the LN channel-graph
// ingester. The reader must never panic; on success the snapshot must
// satisfy its invariants and survive a write/read round trip exactly
// (WriteLNGraphJSON documents node order = NodeID order, edge order =
// channel-index order).
func FuzzReadLNGraphJSON(f *testing.F) {
	f.Add([]byte(`{"nodes":[{"pub_key":"a"},{"pub_key":"b"}],` +
		`"edges":[{"node1_pub":"a","node2_pub":"b","capacity":"1000"}]}`))
	f.Add([]byte(`{"nodes":[{"pub_key":"a"},{"pub_key":"b"},{"pub_key":"c"}],` +
		`"edges":[{"node1_pub":"a","node2_pub":"b","capacity":5},` +
		`{"node1_pub":"b","node2_pub":"c","capacity":7},` +
		`{"node1_pub":"a","node2_pub":"b","capacity":3}]}`)) // parallel channel: merged
	f.Add([]byte(`{"nodes":[],"edges":[]}`))                                                              // no nodes
	f.Add([]byte(`{"nodes":[{"pub_key":"a"}],"edges":[{"node1_pub":"a","node2_pub":"a"}]}`))              // self-loop
	f.Add([]byte(`{"nodes":[{"pub_key":"a"},{"pub_key":"a"}]}`))                                          // duplicate node
	f.Add([]byte(`{"nodes":[{"pub_key":"x"}],"edges":[{"node1_pub":"x","node2_pub":"y","capacity":1}]}`)) // dangling
	f.Add([]byte(`{"nodes":[{"pub_key":"a"},{"pub_key":"b"}],` +
		`"edges":[{"node1_pub":"a","node2_pub":"b","capacity":"-3"}]}`)) // bad capacity
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"nodes":[{"pub_key":"a"},{"pub_key":"b"}],` +
		`"edges":[{"node1_pub":"a","node2_pub":"b","capacity":"1e400"}]}`)) // overflows to +Inf

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := ReadLNGraphJSON(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics and invariant breaks are not
		}
		checkSnapshotInvariants(t, snap)

		var buf bytes.Buffer
		if err := WriteLNGraphJSON(&buf, snap); err != nil {
			t.Fatalf("writing accepted snapshot: %v", err)
		}
		again, err := ReadLNGraphJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written snapshot: %v\n%s", err, buf.Bytes())
		}
		if again.Graph.NumNodes() != snap.Graph.NumNodes() ||
			again.Graph.NumChannels() != snap.Graph.NumChannels() {
			t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d channels",
				snap.Graph.NumNodes(), again.Graph.NumNodes(),
				snap.Graph.NumChannels(), again.Graph.NumChannels())
		}
		for i := range snap.Capacity {
			if snap.Capacity[i] != again.Capacity[i] {
				t.Fatalf("round trip changed capacity[%d]: %v -> %v", i, snap.Capacity[i], again.Capacity[i])
			}
		}
		for i, e := range snap.Graph.Channels() {
			e2 := again.Graph.Channels()[i]
			if snap.name(e.A) != again.name(e2.A) || snap.name(e.B) != again.name(e2.B) {
				t.Fatalf("round trip changed channel %d endpoints", i)
			}
		}
	})
}

// FuzzReadRippleEdgeList throws arbitrary text at the capacity
// edge-list ingester. On success the snapshot must satisfy its
// invariants, and a write→read→write cycle must be a fixed point:
// the reader interns in first-seen order, which is exactly the order
// the writer emits, so the second write reproduces the first byte for
// byte.
func FuzzReadRippleEdgeList(f *testing.F) {
	f.Add("a b 10\nb c 20\n")
	f.Add("# comment\n\nr1 r2 0.5\nr2 r3 1e3\nr3 r1 250\n")
	f.Add("n0 n1 1000\n")
	f.Add("a b 10\na b 20\n")   // duplicate channel
	f.Add("a a 10\n")           // self-loop
	f.Add("a b\n")              // wrong field count
	f.Add("a b ten\n")          // unparsable capacity
	f.Add("a b -1\n")           // non-positive capacity
	f.Add("a b NaN\n")          // NaN capacity
	f.Add("a b Inf\n")          // infinite capacity
	f.Add("")                   // empty input
	f.Add("# only a comment\n") // no channels

	f.Fuzz(func(t *testing.T, data string) {
		snap, err := ReadRippleEdgeList(strings.NewReader(data))
		if err != nil {
			return
		}
		checkSnapshotInvariants(t, snap)

		var first bytes.Buffer
		if err := WriteRippleEdgeList(&first, snap); err != nil {
			// The writer refuses names the format cannot round-trip.
			// From this reader that can only mean a '#'-leading name
			// (interned from a dst field) moved to line-leading
			// position under channel normalisation.
			for _, e := range snap.Graph.Channels() {
				if strings.HasPrefix(snap.name(e.A), "#") || strings.HasPrefix(snap.name(e.B), "#") {
					return
				}
			}
			t.Fatalf("writing accepted snapshot: %v", err)
		}
		again, err := ReadRippleEdgeList(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written snapshot: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := WriteRippleEdgeList(&second, again); err != nil {
			t.Fatalf("writing round-tripped snapshot: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("write->read->write not a fixed point:\n--- first ---\n%s\n--- second ---\n%s",
				first.Bytes(), second.Bytes())
		}
	})
}
