package topo

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteEdgeList serialises g in a simple text format:
//
//	# flash-topology nodes=<n> channels=<c>
//	<a> <b>
//	...
//
// one channel per line. Lines starting with '#' are comments.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# flash-topology nodes=%d channels=%d\n", g.NumNodes(), g.NumChannels()); err != nil {
		return err
	}
	for _, e := range g.Channels() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.A, e.B); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. It also
// accepts plain edge lists without the header, sizing the graph to the
// largest node ID seen. Real crawl data (e.g. the Ripple dataset the
// paper uses) can be converted to this format and dropped in.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var pairs [][2]NodeID
	declared := -1
	maxID := NodeID(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if n, ok := parseHeaderNodes(line); ok {
				declared = n
			}
			continue
		}
		var a, b NodeID
		if _, err := fmt.Sscanf(line, "%d %d", &a, &b); err != nil {
			return nil, fmt.Errorf("topo: line %d: %q: %w", lineNo, line, err)
		}
		if a < 0 || b < 0 {
			return nil, fmt.Errorf("topo: line %d: negative node id", lineNo)
		}
		if a > maxID {
			maxID = a
		}
		if b > maxID {
			maxID = b
		}
		pairs = append(pairs, [2]NodeID{a, b})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	n := int(maxID) + 1
	if declared >= 0 {
		if declared < n {
			return nil, fmt.Errorf("topo: header declares %d nodes but edge list references node %d", declared, maxID)
		}
		n = declared
	}
	g := New(n)
	for _, p := range pairs {
		if _, err := g.AddChannel(p[0], p[1]); err != nil {
			return nil, err
		}
	}
	g.Compact()
	return g, nil
}

func parseHeaderNodes(line string) (int, bool) {
	for _, field := range strings.Fields(line) {
		var n int
		if _, err := fmt.Sscanf(field, "nodes=%d", &n); err == nil {
			return n, true
		}
	}
	return 0, false
}
