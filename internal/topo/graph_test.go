package topo

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddChannelBasics(t *testing.T) {
	g := New(3)
	idx, err := g.AddChannel(0, 1)
	if err != nil || idx != 0 {
		t.Fatalf("AddChannel = (%d, %v), want (0, nil)", idx, err)
	}
	// Duplicate (either orientation) returns the same index.
	if idx2, _ := g.AddChannel(1, 0); idx2 != 0 {
		t.Errorf("duplicate channel index = %d, want 0", idx2)
	}
	if g.NumChannels() != 1 {
		t.Errorf("NumChannels = %d, want 1", g.NumChannels())
	}
	if !g.HasChannel(0, 1) || !g.HasChannel(1, 0) {
		t.Error("HasChannel should be orientation-independent")
	}
	if g.HasChannel(0, 2) {
		t.Error("HasChannel(0,2) should be false")
	}
}

func TestAddChannelErrors(t *testing.T) {
	g := New(3)
	if _, err := g.AddChannel(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := g.AddChannel(0, 5); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := g.AddChannel(-1, 0); err == nil {
		t.Error("negative node accepted")
	}
}

func TestChannelIndexAndEndpoints(t *testing.T) {
	g := New(4)
	g.MustAddChannel(2, 0)
	g.MustAddChannel(1, 3)
	if got := g.ChannelIndex(0, 2); got != 0 {
		t.Errorf("ChannelIndex(0,2) = %d, want 0", got)
	}
	if got := g.ChannelIndex(3, 1); got != 1 {
		t.Errorf("ChannelIndex(3,1) = %d, want 1", got)
	}
	if got := g.ChannelIndex(0, 3); got != -1 {
		t.Errorf("ChannelIndex(0,3) = %d, want -1", got)
	}
	e := g.Channel(0)
	if e.A != 0 || e.B != 2 {
		t.Errorf("Channel(0) = %+v, want canonical {0 2}", e)
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	g := Line(4)
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Errorf("degrees = %d,%d want 1,2", g.Degree(0), g.Degree(1))
	}
	nbrs := g.Neighbors(1)
	if len(nbrs) != 2 {
		t.Fatalf("Neighbors(1) = %v", nbrs)
	}
}

func TestConnectivity(t *testing.T) {
	g := Line(5)
	if !g.Connected() {
		t.Error("line should be connected")
	}
	h := New(4)
	h.MustAddChannel(0, 1)
	h.MustAddChannel(2, 3)
	if h.Connected() {
		t.Error("two components reported connected")
	}
	lc := h.LargestComponent()
	if len(lc) != 2 {
		t.Errorf("LargestComponent size = %d, want 2", len(lc))
	}
	if comp := h.ComponentOf(2); len(comp) != 2 || comp[0] != 2 || comp[1] != 3 {
		t.Errorf("ComponentOf(2) = %v, want [2 3]", comp)
	}
}

func TestConnectedTrivial(t *testing.T) {
	if !New(0).Connected() || !New(1).Connected() {
		t.Error("empty/singleton graphs are connected by convention")
	}
}

func TestSubgraph(t *testing.T) {
	g := Ring(5)
	sub, remap := g.Subgraph([]NodeID{1, 2, 3})
	if sub.NumNodes() != 3 {
		t.Fatalf("sub nodes = %d", sub.NumNodes())
	}
	// Ring edges 1-2, 2-3 survive; 0-1, 3-4, 4-0 are dropped.
	if sub.NumChannels() != 2 {
		t.Errorf("sub channels = %d, want 2", sub.NumChannels())
	}
	if remap[0] != -1 || remap[1] != 0 || remap[3] != 2 {
		t.Errorf("remap = %v", remap)
	}
}

func TestClone(t *testing.T) {
	g := Ring(4)
	c := g.Clone()
	c.MustAddChannel(0, 2)
	if g.HasChannel(0, 2) {
		t.Error("clone mutation leaked into original")
	}
}

func TestRingLineComplete(t *testing.T) {
	if got := Ring(6).NumChannels(); got != 6 {
		t.Errorf("Ring(6) channels = %d, want 6", got)
	}
	if got := Line(6).NumChannels(); got != 5 {
		t.Errorf("Line(6) channels = %d, want 5", got)
	}
	if got := Complete(5).NumChannels(); got != 10 {
		t.Errorf("Complete(5) channels = %d, want 10", got)
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := WattsStrogatz(50, 4, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 50 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	// The lattice has n*k/2 = 100 channels; rewiring may drop a few on
	// collision but the count stays close.
	if c := g.NumChannels(); c < 90 || c > 100 {
		t.Errorf("channels = %d, want ≈100", c)
	}
	if !g.Connected() {
		t.Error("WS graph with beta=0.3 should be connected (seed 1)")
	}
}

func TestWattsStrogatzNoRewire(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := WattsStrogatz(10, 4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumChannels() != 20 {
		t.Errorf("pure lattice channels = %d, want 20", g.NumChannels())
	}
	for u := 0; u < 10; u++ {
		if g.Degree(NodeID(u)) != 4 {
			t.Errorf("node %d degree = %d, want 4", u, g.Degree(NodeID(u)))
		}
	}
}

func TestWattsStrogatzValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := WattsStrogatz(10, 3, 0.1, rng); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := WattsStrogatz(4, 4, 0.1, rng); err == nil {
		t.Error("n ≤ k accepted")
	}
	if _, err := WattsStrogatz(10, 4, 1.5, rng); err == nil {
		t.Error("beta > 1 accepted")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := BarabasiAlbert(200, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 200 {
		t.Errorf("nodes = %d", g.NumNodes())
	}
	if !g.Connected() {
		t.Error("BA graphs are connected by construction")
	}
	// Expected channels: clique C(4,2)=6 + 196*3 = 594.
	if c := g.NumChannels(); c != 594 {
		t.Errorf("channels = %d, want 594", c)
	}
	// Scale-free: max degree should far exceed the mean.
	maxDeg := 0
	for u := 0; u < 200; u++ {
		if d := g.Degree(NodeID(u)); d > maxDeg {
			maxDeg = d
		}
	}
	if float64(maxDeg) < 3*g.AvgDegree() {
		t.Errorf("max degree %d not heavy-tailed vs mean %.1f", maxDeg, g.AvgDegree())
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := BarabasiAlbert(5, 0, rng); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := BarabasiAlbert(3, 3, rng); err == nil {
		t.Error("n ≤ m accepted")
	}
}

func TestRippleLightningLike(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r, err := RippleLike(300, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d := r.AvgDegree(); d < 8 || d > 11 {
		t.Errorf("Ripple-like avg degree = %.1f, want ≈9.3", d)
	}
	l, err := LightningLike(300, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d := l.AvgDegree(); d < 12 || d > 15.5 {
		t.Errorf("Lightning-like avg degree = %.1f, want ≈14.3", d)
	}
	if _, err := RippleLike(5, rng); err == nil {
		t.Error("tiny RippleLike accepted")
	}
	if _, err := LightningLike(5, rng); err == nil {
		t.Error("tiny LightningLike accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := BarabasiAlbert(60, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumChannels() != g.NumChannels() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d channels",
			back.NumNodes(), g.NumNodes(), back.NumChannels(), g.NumChannels())
	}
	for _, e := range g.Channels() {
		if !back.HasChannel(e.A, e.B) {
			t.Fatalf("channel %v lost in round trip", e)
		}
	}
}

func TestReadEdgeListHeaderless(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumChannels() != 2 {
		t.Errorf("got %d nodes %d channels", g.NumNodes(), g.NumChannels())
	}
}

func TestReadEdgeListIsolatedTrailingNodes(t *testing.T) {
	// Header declares more nodes than the edges reference.
	g, err := ReadEdgeList(strings.NewReader("# flash-topology nodes=5 channels=1\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Errorf("nodes = %d, want 5", g.NumNodes())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0 x\n",
		"-1 2\n",
		"# flash-topology nodes=2 channels=1\n0 5\n",
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q: expected error", c)
		}
	}
}

// Property: WS and BA generation for random valid parameters yields the
// declared node count, no self-loops, and consistent adjacency.
func TestGeneratorInvariants(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := 20 + int(nRaw)%80
		m := 1 + int(mRaw)%5
		rng := rand.New(rand.NewSource(seed))
		g, err := BarabasiAlbert(n, m, rng)
		if err != nil {
			return false
		}
		if g.NumNodes() != n {
			return false
		}
		degSum := 0
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(NodeID(u)) {
				if v == NodeID(u) {
					return false // self loop
				}
				if !g.HasChannel(NodeID(u), v) {
					return false // adjacency vs edge set mismatch
				}
			}
			degSum += g.Degree(NodeID(u))
		}
		return degSum == 2*g.NumChannels()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
