package topo

import (
	"fmt"
	"math/rand"
)

// Ring returns a cycle of n nodes (useful in tests).
func Ring(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.MustAddChannel(NodeID(i), NodeID((i+1)%n))
	}
	g.Compact()
	return g
}

// Line returns a path graph of n nodes 0-1-…-(n-1).
func Line(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddChannel(NodeID(i), NodeID(i+1))
	}
	g.Compact()
	return g
}

// Complete returns the complete graph on n nodes.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddChannel(NodeID(i), NodeID(j))
		}
	}
	g.Compact()
	return g
}

// WattsStrogatz generates a small-world graph per Watts & Strogatz
// (1998), the topology used by the paper's testbed (§5.2): a ring
// lattice of n nodes each joined to its k nearest neighbours (k even),
// with each lattice edge rewired to a random endpoint with probability
// beta. Rewiring never introduces self-loops or duplicate channels.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) (*Graph, error) {
	if k%2 != 0 || k <= 0 {
		return nil, fmt.Errorf("topo: Watts-Strogatz k must be positive and even, got %d", k)
	}
	if n <= k {
		return nil, fmt.Errorf("topo: Watts-Strogatz needs n > k, got n=%d k=%d", n, k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("topo: Watts-Strogatz beta must be in [0,1], got %v", beta)
	}
	g := New(n)
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			target := NodeID((i + j) % n)
			src := NodeID(i)
			if beta > 0 && rng.Float64() < beta {
				// Rewire the far endpoint uniformly, avoiding loops and
				// duplicates; give up after a few tries on dense graphs.
				for attempt := 0; attempt < 16; attempt++ {
					cand := NodeID(rng.Intn(n))
					if cand != src && !g.HasChannel(src, cand) {
						target = cand
						break
					}
				}
			}
			if !g.HasChannel(src, target) {
				g.MustAddChannel(src, target)
			}
		}
	}
	g.Compact()
	return g, nil
}

// BarabasiAlbert generates a scale-free graph by preferential
// attachment: starting from a small clique, each new node attaches m
// channels to existing nodes with probability proportional to degree.
// The paper's Ripple and Lightning crawls have heavy-tailed degree
// distributions that this model reproduces.
func BarabasiAlbert(n, m int, rng *rand.Rand) (*Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("topo: Barabasi-Albert m must be ≥ 1, got %d", m)
	}
	if n <= m {
		return nil, fmt.Errorf("topo: Barabasi-Albert needs n > m, got n=%d m=%d", n, m)
	}
	g := New(n)
	// Seed clique of m+1 nodes keeps the graph connected from the start.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			g.MustAddChannel(NodeID(i), NodeID(j))
		}
	}
	// targets holds one entry per channel endpoint, so uniform sampling
	// from it is degree-proportional sampling.
	var targets []NodeID
	for _, e := range g.Channels() {
		targets = append(targets, e.A, e.B)
	}
	for v := m + 1; v < n; v++ {
		chosen := make(map[NodeID]bool, m)
		picked := make([]NodeID, 0, m)
		for len(chosen) < m {
			cand := targets[rng.Intn(len(targets))]
			if cand != NodeID(v) && !chosen[cand] {
				chosen[cand] = true
				picked = append(picked, cand)
			}
		}
		// Attach in draw order, never map order: a generator that takes
		// an explicit rng must be a pure function of it, and map
		// iteration would scramble channel indices (and every subsequent
		// degree-proportional draw) from process to process.
		for _, u := range picked {
			g.MustAddChannel(NodeID(v), u)
			targets = append(targets, NodeID(v), u)
		}
	}
	g.Compact()
	return g, nil
}

// RippleLike generates a scale-free topology with the node count and
// channel density of the paper's processed Ripple crawl (1,870 nodes,
// 17,416 directed edges ⇒ 8,708 channels, average degree ≈ 9.3). Scale
// n down proportionally for faster experiments.
func RippleLike(n int, rng *rand.Rand) (*Graph, error) {
	if n < 12 {
		return nil, fmt.Errorf("topo: RippleLike needs at least 12 nodes, got %d", n)
	}
	return BarabasiAlbert(n, 5, rng)
}

// LightningLike generates a scale-free topology matching the paper's
// December-2018 Lightning snapshot (2,511 nodes, 36,016 directed edges ⇒
// ≈18,008 channels, average degree ≈ 14.3).
func LightningLike(n int, rng *rand.Rand) (*Graph, error) {
	if n < 16 {
		return nil, fmt.Errorf("topo: LightningLike needs at least 16 nodes, got %d", n)
	}
	return BarabasiAlbert(n, 7, rng)
}

// PaperRippleNodes and friends record the sizes reported in §4.1 of the
// paper so experiment code can request full-scale topologies by name.
const (
	PaperRippleNodes       = 1870
	PaperRippleEdges       = 17416 // directed
	PaperLightningNodes    = 2511
	PaperLightningChannels = 36016
)
