package topo

import (
	"bytes"
	"strings"
	"testing"
)

const lnFixture = `{
  "nodes": [
    {"pub_key": "02aa"},
    {"pub_key": "02bb"},
    {"pub_key": "02cc"}
  ],
  "edges": [
    {"node1_pub": "02aa", "node2_pub": "02bb", "capacity": "16777216"},
    {"node1_pub": "02bb", "node2_pub": "02cc", "capacity": 500000},
    {"node1_pub": "02cc", "node2_pub": "02aa", "capacity": "250000"}
  ]
}`

func TestReadLNGraphJSON(t *testing.T) {
	snap, err := ReadLNGraphJSON(strings.NewReader(lnFixture))
	if err != nil {
		t.Fatal(err)
	}
	if n := snap.Graph.NumNodes(); n != 3 {
		t.Fatalf("nodes = %d, want 3", n)
	}
	if c := snap.Graph.NumChannels(); c != 3 {
		t.Fatalf("channels = %d, want 3", c)
	}
	if id := snap.Names.Lookup("02bb"); id != 1 {
		t.Fatalf("02bb interned as %d, want 1 (nodes-array order)", id)
	}
	// Capacity is indexed by channel index, which follows edges order.
	if got := snap.Capacity[snap.Graph.ChannelIndex(1, 2)]; got != 500000 {
		t.Fatalf("capacity(02bb-02cc) = %g, want 500000", got)
	}
}

func TestReadLNGraphJSONMergesParallelChannels(t *testing.T) {
	const dump = `{
	  "nodes": [{"pub_key": "a"}, {"pub_key": "b"}],
	  "edges": [
	    {"node1_pub": "a", "node2_pub": "b", "capacity": "100"},
	    {"node1_pub": "b", "node2_pub": "a", "capacity": "40"}
	  ]
	}`
	snap, err := ReadLNGraphJSON(strings.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	if c := snap.Graph.NumChannels(); c != 1 {
		t.Fatalf("channels = %d, want 1 (parallel channels merge)", c)
	}
	if got := snap.Capacity[0]; got != 140 {
		t.Fatalf("merged capacity = %g, want 140", got)
	}
}

func TestReadLNGraphJSONRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, dump, wantErr string
	}{
		{
			name: "dangling endpoint",
			dump: `{"nodes":[{"pub_key":"a"}],
			        "edges":[{"node1_pub":"a","node2_pub":"ghost","capacity":"5"}]}`,
			wantErr: `edges[0]: node2_pub "ghost"`,
		},
		{
			name: "non-positive capacity",
			dump: `{"nodes":[{"pub_key":"a"},{"pub_key":"b"}],
			        "edges":[{"node1_pub":"a","node2_pub":"b","capacity":"0"}]}`,
			wantErr: "edges[0]: non-positive capacity",
		},
		{
			name: "self-loop",
			dump: `{"nodes":[{"pub_key":"a"}],
			        "edges":[{"node1_pub":"a","node2_pub":"a","capacity":"5"}]}`,
			wantErr: "edges[0]",
		},
		{
			name:    "duplicate node",
			dump:    `{"nodes":[{"pub_key":"a"},{"pub_key":"a"}],"edges":[]}`,
			wantErr: "nodes[1]: duplicate pub_key",
		},
		{
			name:    "empty",
			dump:    `{"nodes":[],"edges":[]}`,
			wantErr: "no nodes",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadLNGraphJSON(strings.NewReader(tc.dump))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestReadRippleEdgeList(t *testing.T) {
	const dump = `# a comment
rAlice rBob 250.5
rBob rCarol 90
rCarol rAlice 10
`
	snap, err := ReadRippleEdgeList(strings.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	if n := snap.Graph.NumNodes(); n != 3 {
		t.Fatalf("nodes = %d, want 3", n)
	}
	if id := snap.Names.Lookup("rAlice"); id != 0 {
		t.Fatalf("rAlice interned as %d, want 0 (first seen)", id)
	}
	a, b := snap.Names.Lookup("rAlice"), snap.Names.Lookup("rBob")
	if got := snap.Capacity[snap.Graph.ChannelIndex(a, b)]; got != 250.5 {
		t.Fatalf("capacity(rAlice-rBob) = %g, want 250.5", got)
	}
}

func TestReadRippleEdgeListRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, dump, wantErr string
	}{
		{"field count", "a b\n", "line 1"},
		{"bad capacity", "a b xyz\n", `line 1: capacity "xyz"`},
		{"negative capacity", "a b -3\n", "line 1: non-positive capacity"},
		{"self-loop", "a a 5\n", `line 1: self-loop on "a"`},
		{"duplicate channel", "a b 5\nb a 7\n", "line 2: duplicate channel"},
		{"empty", "# nothing\n", "no channels"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadRippleEdgeList(strings.NewReader(tc.dump))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// snapshotsEqual reports whether two snapshots agree on node count and
// on every channel's named endpoints and capacity.
func snapshotsEqual(t *testing.T, a, b *Snapshot) {
	t.Helper()
	if a.Graph.NumNodes() != b.Graph.NumNodes() {
		t.Fatalf("nodes: %d vs %d", a.Graph.NumNodes(), b.Graph.NumNodes())
	}
	if a.Graph.NumChannels() != b.Graph.NumChannels() {
		t.Fatalf("channels: %d vs %d", a.Graph.NumChannels(), b.Graph.NumChannels())
	}
	for i, e := range a.Graph.Channels() {
		na, nb := a.Names.Name(e.A), a.Names.Name(e.B)
		ba, bb := b.Names.Lookup(na), b.Names.Lookup(nb)
		if ba < 0 || bb < 0 {
			t.Fatalf("channel %d (%s-%s): endpoints missing after round trip", i, na, nb)
		}
		idx := b.Graph.ChannelIndex(ba, bb)
		if idx < 0 {
			t.Fatalf("channel %d (%s-%s): missing after round trip", i, na, nb)
		}
		if a.Capacity[i] != b.Capacity[idx] {
			t.Fatalf("channel %d (%s-%s): capacity %g vs %g", i, na, nb, a.Capacity[i], b.Capacity[idx])
		}
	}
}

func TestSnapshotRoundTripJSON(t *testing.T) {
	snap, err := GenerateSyntheticSnapshot("ripple", 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLNGraphJSON(&buf, snap); err != nil {
		t.Fatal(err)
	}
	again, err := ReadLNGraphJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEqual(t, snap, again)
	// The JSON format preserves ID assignment exactly: re-serialising
	// must reproduce the same bytes.
	var buf2 bytes.Buffer
	if err := WriteLNGraphJSON(&buf2, again); err != nil {
		t.Fatal(err)
	}
	if err := WriteLNGraphJSON(&buf, snap); err != nil { // buf was drained
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("JSON round trip is not byte-stable")
	}
}

func TestSnapshotRoundTripEdgeList(t *testing.T) {
	snap, err := GenerateSyntheticSnapshot("testbed", 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRippleEdgeList(&buf, snap); err != nil {
		t.Fatal(err)
	}
	again, err := ReadRippleEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEqual(t, snap, again)
}

func TestGenerateSyntheticSnapshotDeterministic(t *testing.T) {
	a, err := GenerateSyntheticSnapshot("lightning", 150, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSyntheticSnapshot("lightning", 150, 42)
	if err != nil {
		t.Fatal(err)
	}
	snapshotsEqual(t, a, b)
	if _, err := GenerateSyntheticSnapshot("nope", 10, 1); err == nil {
		t.Fatal("unknown kind: want error")
	}
}
