package node

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/topo"
	"repro/internal/wire"
)

// Session is the sender-side handle for one payment on the TCP network.
// It implements route.Session, so the identical router code that drives
// the simulator drives the testbed — matching the paper, which evaluates
// the same algorithms in both (§4, §5).
type Session struct {
	n        *Node
	receiver topo.NodeID
	demand   float64

	holds    []sessHold
	finished bool

	probeMsgs  int
	probeOps   int
	commitMsgs int
	feesPaid   float64
	netWait    time.Duration
}

type sessHold struct {
	path    []topo.NodeID
	amount  float64
	feeRate float64 // sum of probed hop rates, when known
}

// NewSession opens a payment session from this node to receiver.
func (n *Node) NewSession(receiver topo.NodeID, demand float64) (*Session, error) {
	if demand <= 0 {
		return nil, fmt.Errorf("node: demand must be positive, got %v", demand)
	}
	if receiver == n.id {
		return nil, fmt.Errorf("node: cannot pay self (node %d)", n.id)
	}
	return &Session{n: n, receiver: receiver, demand: demand}, nil
}

// Compile-time checks that Session satisfies the routing seam and
// counts probe rounds for telemetry.
var (
	_ route.Session      = (*Session)(nil)
	_ route.ProbeCounter = (*Session)(nil)
)

// Graph implements route.Session.
func (s *Session) Graph() *topo.Graph { return s.n.graph }

// Sender implements route.Session.
func (s *Session) Sender() topo.NodeID { return s.n.id }

// Receiver implements route.Session.
func (s *Session) Receiver() topo.NodeID { return s.receiver }

// Demand implements route.Session.
func (s *Session) Demand() float64 { return s.demand }

// validPath mirrors the simulator's validation.
func (s *Session) validPath(path []topo.NodeID) error {
	if len(path) < 2 || path[0] != s.n.id || path[len(path)-1] != s.receiver {
		return pcn.ErrBadPath
	}
	for i := 0; i+1 < len(path); i++ {
		if !s.n.graph.HasChannel(path[i], path[i+1]) {
			return fmt.Errorf("%w: no channel %d-%d", pcn.ErrBadPath, path[i], path[i+1])
		}
	}
	return nil
}

// roundTrip injects a forward message and waits for its terminal reply,
// accounting the wait towards NetworkWait.
func (s *Session) roundTrip(msg *wire.Message) (*wire.Message, error) {
	ch := s.n.await(msg.TransID)
	start := time.Now()
	s.n.dispatch(msg)
	timer := time.NewTimer(s.n.timeout)
	defer timer.Stop()
	select {
	case reply := <-ch:
		s.netWait += time.Since(start)
		return reply, nil
	case <-timer.C:
		s.netWait += time.Since(start)
		s.n.cancel(msg.TransID)
		return nil, fmt.Errorf("%w (trans %d, type %v)", ErrTimeout, msg.TransID, msg.Type)
	}
}

// Probe implements route.Session: a PROBE/PROBE_ACK round trip,
// costing 2·hops messages.
func (s *Session) Probe(path []topo.NodeID) ([]pcn.HopInfo, error) {
	if s.finished {
		return nil, pcn.ErrFinished
	}
	if err := s.validPath(path); err != nil {
		return nil, err
	}
	msg := &wire.Message{
		TransID: s.n.newTransID(),
		Type:    wire.TypeProbe,
		Path:    append([]topo.NodeID(nil), path...),
	}
	reply, err := s.roundTrip(msg)
	if err != nil {
		return nil, err
	}
	hops := len(path) - 1
	s.probeMsgs += 2 * hops
	s.probeOps++
	if len(reply.Capacity) != hops {
		return nil, fmt.Errorf("node: probe returned %d capacities for %d hops", len(reply.Capacity), hops)
	}
	info := make([]pcn.HopInfo, hops)
	for i := 0; i < hops; i++ {
		info[i] = pcn.HopInfo{
			Available: reply.Capacity[i],
			Fee:       pcn.FeeSchedule{Rate: reply.FeeRate[i]},
		}
		if len(reply.ReverseCap) == hops {
			info[i].ReverseAvailable = reply.ReverseCap[i]
		}
	}
	return info, nil
}

// LocalBalance implements route.Session: a node knows only its own
// adjacent channels. (The paper's testbed runs Flash, Spider and SP —
// hop-by-hop schemes like SpeedyMurmurs would need per-hop forwarding
// state this prototype does not model, exactly as in the paper.)
func (s *Session) LocalBalance(u, v topo.NodeID) float64 {
	if u != s.n.id {
		return 0
	}
	out, _ := s.n.Balances(v)
	return out
}

// Hold implements route.Session: the COMMIT phase over path. On
// COMMIT_NACK nothing stays reserved (upstream hops rolled back as the
// NACK travelled) and pcn.ErrInsufficient is returned.
func (s *Session) Hold(path []topo.NodeID, amount float64) error {
	if s.finished {
		return pcn.ErrFinished
	}
	if amount <= 0 {
		return fmt.Errorf("node: hold amount must be positive, got %v", amount)
	}
	if err := s.validPath(path); err != nil {
		return err
	}
	msg := &wire.Message{
		TransID: s.n.newTransID(),
		Type:    wire.TypeCommit,
		Path:    append([]topo.NodeID(nil), path...),
		Commit:  amount,
	}
	reply, err := s.roundTrip(msg)
	if err != nil {
		return err
	}
	s.commitMsgs += 2 * (len(path) - 1)
	switch reply.Type {
	case wire.TypeCommitAck:
		s.holds = append(s.holds, sessHold{
			path:   append([]topo.NodeID(nil), path...),
			amount: amount,
		})
		return nil
	case wire.TypeCommitNack:
		return pcn.ErrInsufficient
	default:
		return fmt.Errorf("node: unexpected reply %v to COMMIT", reply.Type)
	}
}

// HeldTotal implements route.Session.
func (s *Session) HeldTotal() float64 {
	total := 0.0
	for _, h := range s.holds {
		total += h.amount
	}
	return total
}

// Commit implements route.Session: CONFIRM every held sub-payment and
// wait for the CONFIRM_ACKs that settle reverse balances.
func (s *Session) Commit() error {
	if s.finished {
		return pcn.ErrFinished
	}
	if len(s.holds) == 0 {
		return errors.New("node: nothing held to commit")
	}
	for _, h := range s.holds {
		msg := &wire.Message{
			TransID: s.n.newTransID(),
			Type:    wire.TypeConfirm,
			Path:    append([]topo.NodeID(nil), h.path...),
			Commit:  h.amount,
		}
		if _, err := s.roundTrip(msg); err != nil {
			return fmt.Errorf("node: confirm failed: %w", err)
		}
		s.commitMsgs += 2 * (len(h.path) - 1)
		s.feesPaid += h.feeRate * h.amount
	}
	s.finished = true
	return nil
}

// Abort implements route.Session: REVERSE every held sub-payment.
func (s *Session) Abort() error {
	if s.finished {
		return pcn.ErrFinished
	}
	for _, h := range s.holds {
		msg := &wire.Message{
			TransID: s.n.newTransID(),
			Type:    wire.TypeReverse,
			Path:    append([]topo.NodeID(nil), h.path...),
			Commit:  h.amount,
		}
		if _, err := s.roundTrip(msg); err != nil {
			return fmt.Errorf("node: reverse failed: %w", err)
		}
		s.commitMsgs += 2 * (len(h.path) - 1)
	}
	s.finished = true
	return nil
}

// Finished reports whether the session was committed or aborted.
func (s *Session) Finished() bool { return s.finished }

// ProbeMessages implements route.Session.
func (s *Session) ProbeMessages() int { return s.probeMsgs }

// ProbeOps implements route.ProbeCounter: distinct Probe round trips,
// as opposed to the per-hop messages they cost.
func (s *Session) ProbeOps() int { return s.probeOps }

// CommitMessages implements route.Session.
func (s *Session) CommitMessages() int { return s.commitMsgs }

// FeesPaid implements route.Session. The testbed does not evaluate fees
// (the paper's §5 metrics are volume, ratio and delay); rates are only
// accumulated when a probe recorded them.
func (s *Session) FeesPaid() float64 { return s.feesPaid }

// PathsUsed implements route.Session.
func (s *Session) PathsUsed() int { return len(s.holds) }

// NetworkWait returns the total time this session spent blocked on
// protocol round trips. Subtracting it from wall time yields the
// paper's processing-delay metric.
func (s *Session) NetworkWait() time.Duration { return s.netWait }
