package node

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/pcn"
	"repro/internal/topo"
)

// startLine boots a 3-node line 0-1-2 with the given balances per
// direction and returns the nodes plus a cleanup function.
func startLine(t *testing.T, bal float64) []*Node {
	t.Helper()
	g := topo.Line(3)
	return startCluster(t, g, bal)
}

func startCluster(t *testing.T, g *topo.Graph, bal float64) []*Node {
	t.Helper()
	nodes := make([]*Node, g.NumNodes())
	registry := make(map[topo.NodeID]string)
	for i := range nodes {
		n, err := New(Config{ID: topo.NodeID(i), Graph: g, Timeout: 3 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		registry[topo.NodeID(i)] = n.Addr()
		t.Cleanup(func() { n.Close() })
	}
	for i := range nodes {
		nodes[i].SetPeers(registry)
		for _, v := range g.Neighbors(topo.NodeID(i)) {
			if err := nodes[i].SetChannel(v, bal, bal,
				pcn.FeeSchedule{Rate: 0.01}, pcn.FeeSchedule{Rate: 0.01}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return nodes
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := New(Config{ID: 9, Graph: topo.Line(3)}); err == nil {
		t.Error("out-of-range ID accepted")
	}
}

func TestSessionValidation(t *testing.T) {
	nodes := startLine(t, 100)
	if _, err := nodes[0].NewSession(0, 5); err == nil {
		t.Error("self-payment accepted")
	}
	if _, err := nodes[0].NewSession(2, -1); err == nil {
		t.Error("negative demand accepted")
	}
	s, err := nodes[0].NewSession(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Hold([]topo.NodeID{0, 2}, 5); !errors.Is(err, pcn.ErrBadPath) {
		t.Errorf("hold over missing channel: %v", err)
	}
	if _, err := s.Probe([]topo.NodeID{1, 2}); !errors.Is(err, pcn.ErrBadPath) {
		t.Errorf("probe from wrong sender: %v", err)
	}
}

func TestProbeOverTCP(t *testing.T) {
	nodes := startLine(t, 75)
	s, err := nodes[0].NewSession(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Probe([]topo.NodeID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(info) != 2 {
		t.Fatalf("hops = %d", len(info))
	}
	for i, h := range info {
		if h.Available != 75 || h.ReverseAvailable != 75 {
			t.Errorf("hop %d: %+v, want 75/75", i, h)
		}
		if h.Fee.Rate != 0.01 {
			t.Errorf("hop %d fee = %v", i, h.Fee.Rate)
		}
	}
	if s.ProbeMessages() != 4 {
		t.Errorf("probe messages = %d, want 4", s.ProbeMessages())
	}
}

func TestPaymentCommitOverTCP(t *testing.T) {
	nodes := startLine(t, 100)
	s, err := nodes[0].NewSession(2, 40)
	if err != nil {
		t.Fatal(err)
	}
	path := []topo.NodeID{0, 1, 2}
	if err := s.Hold(path, 40); err != nil {
		t.Fatal(err)
	}
	if s.HeldTotal() != 40 {
		t.Errorf("held = %v", s.HeldTotal())
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Wait for CONFIRM_ACK side effects to settle everywhere (the
	// sender's receipt of the ack is the last step, so state is already
	// final — but poll defensively).
	waitForBalance(t, nodes[0], 1, 60, 140)
	waitForBalance(t, nodes[1], 2, 60, 140)
	// Node 1's mirrors must agree with its neighbours' own views.
	out10, in10 := nodes[1].Balances(0)
	if math.Abs(out10-140) > 1e-9 || math.Abs(in10-60) > 1e-9 {
		t.Errorf("node1 view of channel to 0: out=%v in=%v, want 140/60", out10, in10)
	}
	// The receiver must actually have collected the money: its own
	// spendable balance towards node 1 grew by the payment amount.
	waitForBalance(t, nodes[2], 1, 140, 60)
}

// waitForBalance polls until node n's channel towards peer reaches
// (out, in), failing after 2 seconds.
func waitForBalance(t *testing.T, n *Node, peer topo.NodeID, out, in float64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		o, i := n.Balances(peer)
		if math.Abs(o-out) < 1e-9 && math.Abs(i-in) < 1e-9 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	o, i := n.Balances(peer)
	t.Fatalf("balance to %d = (%v, %v), want (%v, %v)", peer, o, i, out, in)
}

func TestHoldNackRollsBack(t *testing.T) {
	nodes := startLine(t, 100)
	// Drain node 1's balance towards 2.
	nodes[1].SetChannel(2, 5, 100, pcn.FeeSchedule{}, pcn.FeeSchedule{})
	s, _ := nodes[0].NewSession(2, 50)
	err := s.Hold([]topo.NodeID{0, 1, 2}, 50)
	if !errors.Is(err, pcn.ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	// Everything must be rolled back: node 0 out=100, node 1 in=100.
	waitForBalance(t, nodes[0], 1, 100, 100)
	out, in := nodes[1].Balances(0)
	if math.Abs(out-100) > 1e-9 || math.Abs(in-100) > 1e-9 {
		t.Errorf("node1 upstream after NACK: out=%v in=%v, want 100/100", out, in)
	}
	s.Abort()
}

func TestAbortReversesHolds(t *testing.T) {
	nodes := startLine(t, 100)
	s, _ := nodes[0].NewSession(2, 30)
	if err := s.Hold([]topo.NodeID{0, 1, 2}, 30); err != nil {
		t.Fatal(err)
	}
	// Mid-payment, funds are deducted.
	waitForBalance(t, nodes[0], 1, 70, 100)
	if err := s.Abort(); err != nil {
		t.Fatal(err)
	}
	waitForBalance(t, nodes[0], 1, 100, 100)
	waitForBalance(t, nodes[1], 2, 100, 100)
}

func TestMultiPathAtomicCommit(t *testing.T) {
	g := topo.New(4)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(1, 3)
	g.MustAddChannel(0, 2)
	g.MustAddChannel(2, 3)
	nodes := startCluster(t, g, 50)
	s, _ := nodes[0].NewSession(3, 80)
	if err := s.Hold([]topo.NodeID{0, 1, 3}, 40); err != nil {
		t.Fatal(err)
	}
	if err := s.Hold([]topo.NodeID{0, 2, 3}, 40); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	waitForBalance(t, nodes[0], 1, 10, 90)
	waitForBalance(t, nodes[0], 2, 10, 90)
	// Receiver gained 40 on each inbound channel.
	waitForBalance(t, nodes[3], 1, 90, 10)
	waitForBalance(t, nodes[3], 2, 90, 10)
}

func TestSessionLifecycle(t *testing.T) {
	nodes := startLine(t, 100)
	s, _ := nodes[0].NewSession(2, 10)
	if err := s.Commit(); err == nil {
		t.Error("commit with no holds accepted")
	}
	if err := s.Hold([]topo.NodeID{0, 1, 2}, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); !errors.Is(err, pcn.ErrFinished) {
		t.Errorf("double commit: %v", err)
	}
	if err := s.Abort(); !errors.Is(err, pcn.ErrFinished) {
		t.Errorf("abort after commit: %v", err)
	}
	if _, err := s.Probe([]topo.NodeID{0, 1, 2}); !errors.Is(err, pcn.ErrFinished) {
		t.Errorf("probe after commit: %v", err)
	}
}

func TestTimeoutOnDeadPeer(t *testing.T) {
	g := topo.Line(3)
	nodes := make([]*Node, 3)
	registry := make(map[topo.NodeID]string)
	for i := range nodes {
		n, err := New(Config{ID: topo.NodeID(i), Graph: g, Timeout: 200 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		registry[topo.NodeID(i)] = n.Addr()
	}
	defer nodes[0].Close()
	defer nodes[2].Close()
	for i := range nodes {
		nodes[i].SetPeers(registry)
		for _, v := range g.Neighbors(topo.NodeID(i)) {
			nodes[i].SetChannel(v, 100, 100, pcn.FeeSchedule{}, pcn.FeeSchedule{})
		}
	}
	nodes[1].Close() // kill the relay
	s, _ := nodes[0].NewSession(2, 10)
	_, err := s.Probe([]topo.NodeID{0, 1, 2})
	if err == nil {
		t.Fatal("probe through dead relay succeeded")
	}
}

func TestLocalBalance(t *testing.T) {
	nodes := startLine(t, 60)
	s, _ := nodes[0].NewSession(2, 10)
	if got := s.LocalBalance(0, 1); got != 60 {
		t.Errorf("LocalBalance(0,1) = %v", got)
	}
	if got := s.LocalBalance(1, 2); got != 0 {
		t.Errorf("LocalBalance for remote hop = %v, want 0 (unknown)", got)
	}
	s.Abort()
}

func TestConcurrentPayments(t *testing.T) {
	g := topo.Ring(6)
	nodes := startCluster(t, g, 10000)
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(id topo.NodeID) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				target := (id + 1) % 6
				s, err := nodes[id].NewSession(target, 10)
				if err != nil {
					errs <- err
					return
				}
				if err := s.Hold([]topo.NodeID{id, target}, 10); err != nil {
					s.Abort()
					continue
				}
				if err := s.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(topo.NodeID(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Total funds conserved: every channel's two spendable balances.
	time.Sleep(50 * time.Millisecond) // let final acks land
	total := 0.0
	for _, e := range g.Channels() {
		outA, _ := nodes[e.A].Balances(e.B)
		outB, _ := nodes[e.B].Balances(e.A)
		total += outA + outB
	}
	if math.Abs(total-6*2*10000) > 1e-6 {
		t.Errorf("total funds = %v, want %v", total, 6*2*10000.0)
	}
}
