// Package node implements the paper's prototype node (§5.1): a TCP
// daemon that participates in an offchain network with source routing,
// balance probing, and a two-phase-commit payment protocol in place of
// HTLC cryptography.
//
// Each node knows the full topology (without balances) and the state of
// its own adjacent channels — both directions, which the two-phase
// commit keeps consistent across the two channel parties exactly as the
// paper describes ("adding the committed funds of this sub-payment to
// the channel in the reverse direction, in order to make the
// bidirectional channel balances consistent").
//
// Message flow (paper §5.1):
//
//	PROBE/PROBE_ACK       collect per-hop balances and fees
//	COMMIT/COMMIT_ACK     phase 1: reserve funds hop by hop
//	COMMIT_NACK           phase 1 failure: prefix rolls back as it returns
//	CONFIRM/CONFIRM_ACK   phase 2: finalise, crediting reverse directions
//	REVERSE/REVERSE_ACK   phase 2 alternative: roll a sub-payment back
//
// The sender-side API is Session (see session.go), which implements
// route.Session so the same routers drive simulated and real networks.
package node

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pcn"
	"repro/internal/topo"
	"repro/internal/wire"
)

// Config configures a Node.
type Config struct {
	ID         topo.NodeID
	Graph      *topo.Graph
	ListenAddr string        // e.g. "127.0.0.1:0"; empty defaults to that
	Timeout    time.Duration // per-operation reply timeout; default 5s

	// HopDelay is an artificial per-message forwarding latency,
	// emulating network propagation that loopback lacks. Offchain
	// networks are overlays over the Internet, so per-hop latencies of
	// 0.2–50ms are the realistic regime; the delay experiments use this
	// to put message cost and compute cost in a representative ratio.
	HopDelay time.Duration
}

// channelState is the node's view of one adjacent channel: the balance
// it can spend towards the peer (out) and its mirror of what the peer
// can spend towards it (in).
type channelState struct {
	out    float64
	in     float64
	feeOut pcn.FeeSchedule
	feeIn  pcn.FeeSchedule
}

// Node is one offchain network participant.
type Node struct {
	id       topo.NodeID
	graph    *topo.Graph
	timeout  time.Duration
	hopDelay time.Duration

	mu    sync.Mutex
	chans map[topo.NodeID]*channelState
	peers map[topo.NodeID]string

	connMu   sync.Mutex
	conns    map[topo.NodeID]*peerConn
	accepted map[net.Conn]struct{}

	pendingMu sync.Mutex
	pending   map[uint64]chan *wire.Message

	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
	transID  atomic.Uint64
	msgsSent atomic.Int64
}

// peerConn serialises writes to one TCP connection.
type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// ErrTimeout is returned when a protocol reply does not arrive within
// the configured timeout.
var ErrTimeout = errors.New("node: timed out waiting for reply")

// New starts a node: it binds its listener and begins accepting
// connections. Channels and peers are configured afterwards with
// SetChannel and SetPeers, before payments flow.
func New(cfg Config) (*Node, error) {
	if cfg.Graph == nil {
		return nil, errors.New("node: nil graph")
	}
	if int(cfg.ID) < 0 || int(cfg.ID) >= cfg.Graph.NumNodes() {
		return nil, fmt.Errorf("node: id %d outside graph", cfg.ID)
	}
	addr := cfg.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("node %d: listen: %w", cfg.ID, err)
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	n := &Node{
		id:       cfg.ID,
		graph:    cfg.Graph,
		timeout:  timeout,
		hopDelay: cfg.HopDelay,
		chans:    make(map[topo.NodeID]*channelState),
		peers:    make(map[topo.NodeID]string),
		conns:    make(map[topo.NodeID]*peerConn),
		pending:  make(map[uint64]chan *wire.Message),
		accepted: make(map[net.Conn]struct{}),
		ln:       ln,
	}
	// Globally unique transaction IDs: node ID in the top bits.
	n.transID.Store(uint64(cfg.ID+1) << 40)
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// ID returns the node's identifier.
func (n *Node) ID() topo.NodeID { return n.id }

// Addr returns the listener address other nodes dial.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Graph returns the node's local topology view.
func (n *Node) Graph() *topo.Graph { return n.graph }

// SetPeers installs the address registry (the testbed's equivalent of
// the prototype's local topology file).
func (n *Node) SetPeers(registry map[topo.NodeID]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id, addr := range registry {
		if id != n.id {
			n.peers[id] = addr
		}
	}
}

// SetChannel initialises the adjacent channel towards peer: out is the
// balance this node can spend towards peer, in the reverse balance, and
// feeOut/feeIn the two directions' fee schedules.
func (n *Node) SetChannel(peer topo.NodeID, out, in float64, feeOut, feeIn pcn.FeeSchedule) error {
	if !n.graph.HasChannel(n.id, peer) {
		return fmt.Errorf("node %d: no channel to %d in topology", n.id, peer)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.chans[peer] = &channelState{out: out, in: in, feeOut: feeOut, feeIn: feeIn}
	return nil
}

// Balances returns this node's view of the channel towards peer:
// (out, in), or (0, 0) when no channel is configured.
func (n *Node) Balances(peer topo.NodeID) (out, in float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cs, ok := n.chans[peer]; ok {
		return cs.out, cs.in
	}
	return 0, 0
}

// Close shuts the node down: the listener stops, open connections are
// closed, and background goroutines drain.
func (n *Node) Close() error {
	if n.closed.Swap(true) {
		return nil
	}
	err := n.ln.Close()
	n.connMu.Lock()
	for _, pc := range n.conns {
		pc.conn.Close()
	}
	n.conns = make(map[topo.NodeID]*peerConn)
	for conn := range n.accepted {
		conn.Close()
	}
	n.accepted = make(map[net.Conn]struct{})
	n.connMu.Unlock()
	n.wg.Wait()
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.connMu.Lock()
		n.accepted[conn] = struct{}{}
		n.connMu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop decodes frames from one connection and dispatches them.
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.connMu.Lock()
		delete(n.accepted, conn)
		n.connMu.Unlock()
	}()
	for {
		msg, err := wire.ReadMessage(conn)
		if err != nil {
			return
		}
		n.dispatch(msg)
	}
}

// send delivers msg to peer, dialing (and caching) a connection on
// demand. Messages to self dispatch directly.
func (n *Node) send(to topo.NodeID, msg *wire.Message) error {
	if n.closed.Load() {
		return errors.New("node: closed")
	}
	if to == n.id {
		n.dispatch(msg)
		return nil
	}
	pc, err := n.connTo(to)
	if err != nil {
		return err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	n.msgsSent.Add(1)
	if err := wire.WriteMessage(pc.conn, msg); err != nil {
		// Drop the broken connection so the next send redials.
		n.connMu.Lock()
		if n.conns[to] == pc {
			delete(n.conns, to)
		}
		n.connMu.Unlock()
		pc.conn.Close()
		return err
	}
	return nil
}

// MessagesSent returns the cumulative number of wire messages this node
// has written to peers — the daemon's telemetry gauge.
func (n *Node) MessagesSent() int64 { return n.msgsSent.Load() }

func (n *Node) connTo(to topo.NodeID) (*peerConn, error) {
	n.connMu.Lock()
	if pc, ok := n.conns[to]; ok {
		n.connMu.Unlock()
		return pc, nil
	}
	n.connMu.Unlock()

	n.mu.Lock()
	addr, ok := n.peers[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("node %d: no address for peer %d", n.id, to)
	}
	conn, err := net.DialTimeout("tcp", addr, n.timeout)
	if err != nil {
		return nil, fmt.Errorf("node %d: dial %d: %w", n.id, to, err)
	}
	pc := &peerConn{conn: conn}
	n.connMu.Lock()
	if existing, ok := n.conns[to]; ok {
		n.connMu.Unlock()
		conn.Close()
		return existing, nil
	}
	n.conns[to] = pc
	n.connMu.Unlock()
	return pc, nil
}

// forward advances msg one hop along its path, applying the configured
// artificial propagation delay.
func (n *Node) forward(msg *wire.Message) {
	next := msg.Next()
	if next < 0 {
		return
	}
	if n.hopDelay > 0 {
		time.Sleep(n.hopDelay)
	}
	fwd := *msg
	fwd.Pos++
	if err := n.send(next, &fwd); err != nil {
		// Connectivity failure: the sender's timeout surfaces it.
		return
	}
}

// deliver hands a terminal reply to the waiting session, if any.
func (n *Node) deliver(msg *wire.Message) {
	n.pendingMu.Lock()
	ch, ok := n.pending[msg.TransID]
	if ok {
		delete(n.pending, msg.TransID)
	}
	n.pendingMu.Unlock()
	if ok {
		ch <- msg
	}
}

// await registers a reply slot for transID.
func (n *Node) await(transID uint64) chan *wire.Message {
	ch := make(chan *wire.Message, 1)
	n.pendingMu.Lock()
	n.pending[transID] = ch
	n.pendingMu.Unlock()
	return ch
}

// cancel removes a reply slot after a timeout.
func (n *Node) cancel(transID uint64) {
	n.pendingMu.Lock()
	delete(n.pending, transID)
	n.pendingMu.Unlock()
}

func (n *Node) newTransID() uint64 { return n.transID.Add(1) }
