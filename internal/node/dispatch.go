package node

import (
	"repro/internal/topo"
	"repro/internal/wire"
)

// dispatch processes one protocol message arriving at (or injected
// into) this node. It implements the per-hop behaviour of §5.1.
func (n *Node) dispatch(msg *wire.Message) {
	if msg.Current() != n.id {
		return // misrouted frame; drop
	}
	switch msg.Type {
	case wire.TypeProbe:
		n.handleProbe(msg)
	case wire.TypeCommit:
		n.handleCommit(msg)
	case wire.TypeConfirm:
		n.handleConfirm(msg)
	case wire.TypeReverse:
		n.handleReverse(msg)
	case wire.TypeProbeAck, wire.TypeCommitAck:
		n.relayOrDeliver(msg)
	case wire.TypeCommitNack:
		n.handleCommitNack(msg)
	case wire.TypeConfirmAck:
		n.handleConfirmAck(msg)
	case wire.TypeReverseAck:
		n.relayOrDeliver(msg)
	}
}

// relayOrDeliver forwards a pure-relay message, or hands it to the
// waiting session at the end of its (reversed) path.
func (n *Node) relayOrDeliver(msg *wire.Message) {
	if msg.AtEnd() {
		n.deliver(msg)
		return
	}
	n.forward(msg)
}

// turnAround converts a forward message into its acknowledgement type,
// reversing the path. The ack starts at this node (Pos 0) and is
// immediately forwarded.
func (n *Node) turnAround(msg *wire.Message, ackType wire.Type) {
	ack := &wire.Message{
		TransID:    msg.TransID,
		Type:       ackType,
		Path:       msg.ReversedPath(),
		Pos:        0,
		Capacity:   msg.Capacity,
		ReverseCap: msg.ReverseCap,
		FeeRate:    msg.FeeRate,
		Commit:     msg.Commit,
	}
	if len(ack.Path) == 1 {
		n.deliver(ack)
		return
	}
	n.forward(ack)
}

// handleProbe appends this node's view of its outgoing hop and
// forwards; at the receiver it turns into PROBE_ACK ("the intermediate
// nodes append the Capacity field in the message with their current
// balance; to return the probed information, the receiver modifies the
// message type to PROBE_ACK, replaces the Path field with the reversed
// version of the forward path, and sends it back").
func (n *Node) handleProbe(msg *wire.Message) {
	if msg.AtEnd() {
		n.turnAround(msg, wire.TypeProbeAck)
		return
	}
	next := msg.Next()
	n.mu.Lock()
	cs := n.chans[next]
	if cs != nil {
		msg.Capacity = append(msg.Capacity, cs.out)
		msg.ReverseCap = append(msg.ReverseCap, cs.in)
		msg.FeeRate = append(msg.FeeRate, cs.feeOut.Rate)
	} else {
		msg.Capacity = append(msg.Capacity, 0)
		msg.ReverseCap = append(msg.ReverseCap, 0)
		msg.FeeRate = append(msg.FeeRate, 0)
	}
	n.mu.Unlock()
	n.forward(msg)
}

// handleCommit is phase 1 at one hop: mirror the upstream deduction,
// then reserve the outgoing balance and forward — or NACK backwards,
// rolling back as the NACK returns ("an intermediate node determines if
// its current balance can handle this sub-payment; if yes, it decreases
// its balance ... and forwards").
func (n *Node) handleCommit(msg *wire.Message) {
	amount := msg.Commit
	prev := msg.Prev()

	n.mu.Lock()
	// Mirror the upstream channel: the previous hop deducted its out
	// balance towards us; keep our copy of that direction in sync.
	if prev >= 0 {
		if cs := n.chans[prev]; cs != nil {
			cs.in -= amount
		}
	}
	if msg.AtEnd() {
		n.mu.Unlock()
		n.turnAround(msg, wire.TypeCommitAck)
		return
	}
	next := msg.Next()
	cs := n.chans[next]
	if cs == nil || cs.out < amount-balanceEpsilon {
		// Cannot reserve: restore the mirror and NACK back along the
		// reversed prefix so every upstream node rolls back.
		if prev >= 0 {
			if pcs := n.chans[prev]; pcs != nil {
				pcs.in += amount
			}
		}
		n.mu.Unlock()
		n.sendNack(msg)
		return
	}
	cs.out -= amount
	n.mu.Unlock()
	n.forward(msg)
}

// balanceEpsilon absorbs float64 rounding in balance comparisons.
const balanceEpsilon = 1e-9

// sendNack builds the COMMIT_NACK travelling back from this (failing)
// node to the original sender over the reversed committed prefix.
func (n *Node) sendNack(msg *wire.Message) {
	prefix := make([]topo.NodeID, msg.Pos+1)
	copy(prefix, msg.Path[:msg.Pos+1])
	// Reverse in place: NACK path runs failing-node → ... → sender.
	for i, j := 0, len(prefix)-1; i < j; i, j = i+1, j-1 {
		prefix[i], prefix[j] = prefix[j], prefix[i]
	}
	nack := &wire.Message{
		TransID: msg.TransID,
		Type:    wire.TypeCommitNack,
		Path:    prefix,
		Pos:     0,
		Commit:  msg.Commit,
	}
	if len(prefix) == 1 {
		// The sender itself failed to reserve its first hop.
		n.deliver(nack)
		return
	}
	n.forward(nack)
}

// handleCommitNack rolls back this node's reservations as the NACK
// passes through, then relays it towards the sender.
func (n *Node) handleCommitNack(msg *wire.Message) {
	amount := msg.Commit
	prev := msg.Prev() // the node we had forwarded the COMMIT to
	n.mu.Lock()
	if prev >= 0 {
		if cs := n.chans[prev]; cs != nil {
			cs.out += amount // undo our reservation towards them
		}
	}
	if !msg.AtEnd() {
		// We are an intermediate node on the original path: also undo
		// the upstream mirror we applied on COMMIT.
		if cs := n.chans[msg.Next()]; cs != nil {
			cs.in += amount
		}
	}
	n.mu.Unlock()
	n.relayOrDeliver(msg)
}

// handleConfirm relays phase 2 towards the receiver, which collects the
// funds — crediting its spendable balance on the reverse direction of
// the final hop — and answers with CONFIRM_ACK.
func (n *Node) handleConfirm(msg *wire.Message) {
	if msg.AtEnd() {
		n.mu.Lock()
		if prev := msg.Prev(); prev >= 0 {
			if cs := n.chans[prev]; cs != nil {
				cs.out += msg.Commit
			}
		}
		n.mu.Unlock()
		n.turnAround(msg, wire.TypeConfirmAck)
		return
	}
	n.forward(msg)
}

// handleConfirmAck credits the reverse channel directions as the ack
// travels back ("each intermediate node processes CONFIRM_ACK by adding
// the committed funds of this sub-payment to the channel in the reverse
// direction"). Receiving the ack from X credits our mirror of X→us;
// relaying it to Z credits our balance towards Z.
func (n *Node) handleConfirmAck(msg *wire.Message) {
	amount := msg.Commit
	n.mu.Lock()
	if prev := msg.Prev(); prev >= 0 {
		if cs := n.chans[prev]; cs != nil {
			cs.in += amount
		}
	}
	if !msg.AtEnd() {
		if cs := n.chans[msg.Next()]; cs != nil {
			cs.out += amount
		}
	}
	n.mu.Unlock()
	n.relayOrDeliver(msg)
}

// handleReverse rolls back a fully reserved sub-payment as the REVERSE
// travels the forward path ("all intermediate nodes then add back the
// committed funds to the channel in the forward path"); the receiver
// answers REVERSE_ACK.
func (n *Node) handleReverse(msg *wire.Message) {
	amount := msg.Commit
	n.mu.Lock()
	if prev := msg.Prev(); prev >= 0 {
		if cs := n.chans[prev]; cs != nil {
			cs.in += amount
		}
	}
	if !msg.AtEnd() {
		if cs := n.chans[msg.Next()]; cs != nil {
			cs.out += amount
		}
	}
	n.mu.Unlock()
	if msg.AtEnd() {
		n.turnAround(msg, wire.TypeReverseAck)
		return
	}
	n.forward(msg)
}
