// Package core implements Flash, the paper's routing algorithm for
// offchain payment networks (§3).
//
// Flash differentiates elephant payments from mice payments:
//
//   - Elephants (amount > Config.Threshold) run a modified Edmonds–Karp
//     search (paper Algorithm 1) that finds up to K candidate paths,
//     probing channel balances lazily along each, then splits the
//     payment across the paths with a fee-minimising linear program
//     (paper program (1)).
//   - Mice (everything else) are routed from a per-sender routing table
//     holding the top-M Yen shortest paths per receiver, tried in random
//     order with probe-on-failure partial payments.
//
// One Flash value serves any number of senders: routing tables are keyed
// by sender, which makes the same instance usable by a whole simulated
// network or by a single testbed node.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/route"
	"repro/internal/topo"
)

// Config parameterises a Flash router. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	// Threshold separates mice from elephants: payments with amount
	// strictly greater are elephants. The paper sets it per workload so
	// that 90% of payments are mice (§4.1). math.Inf(1) routes everything
	// as mice; 0 routes everything as elephants.
	Threshold float64

	// K is the maximum number of candidate paths the elephant routing
	// probes (paper Algorithm 1 input k; 20 in the evaluation).
	K int

	// M is the number of shortest paths kept per receiver in the mice
	// routing table (paper m; 4 in the evaluation). M == 0 routes mice
	// payments with the elephant algorithm — the Figure 11 upper bound.
	M int

	// DisableFeeOpt turns off the LP fee optimisation: paths are then
	// filled sequentially in discovery order, the paper's Figure 9
	// baseline ("w/o optimization").
	DisableFeeOpt bool

	// ProbeAllK makes elephant routing probe the full K candidate paths
	// even after the accumulated flow covers the demand. Algorithm 1's
	// printed pseudocode checks "f ≥ d" after the loop (always-k); the
	// overhead discussion implies an early exit. The default is the
	// early exit; this flag selects the always-k reading, giving the fee
	// LP more slack at higher probing cost (see the ablation bench).
	ProbeAllK bool

	// FixedMiceOrder disables the random path order in mice routing and
	// uses ascending path length instead (an ablation; the paper argues
	// random order load-balances better, §3.3).
	FixedMiceOrder bool

	// TableTTL evicts a receiver's routing-table entry after this many
	// payments routed by the owning sender without touching that entry
	// (the paper's timeout mechanism, §3.3). 0 disables eviction.
	TableTTL int

	// Seed makes the router's random choices reproducible.
	Seed int64
}

// DefaultConfig returns the paper's evaluation settings, with the
// elephant threshold supplied by the caller (it is workload-dependent:
// the 90th percentile of payment sizes in the paper's runs).
func DefaultConfig(threshold float64) Config {
	return Config{
		Threshold: threshold,
		K:         20,
		M:         4,
		TableTTL:  50000,
		Seed:      1,
	}
}

// Flash is the routing algorithm. It is safe for concurrent use (the
// testbed runs one router per node; the simulator shares one across
// senders).
type Flash struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	tables map[topo.NodeID]*routingTable

	elephants     int64
	mice          int64
	tableHits     int64
	tableMisses   int64
	pathsReplaced int64
}

// New returns a Flash router with the given configuration. Invalid
// values are normalised: K < 1 becomes 1, M < 0 becomes 0.
func New(cfg Config) *Flash {
	if cfg.K < 1 {
		cfg.K = 1
	}
	if cfg.M < 0 {
		cfg.M = 0
	}
	return &Flash{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		tables: make(map[topo.NodeID]*routingTable),
	}
}

// Name implements route.Router.
func (f *Flash) Name() string { return "Flash" }

// Config returns the router's configuration.
func (f *Flash) Config() Config { return f.cfg }

// Route implements route.Router: it classifies the payment and
// dispatches to the elephant or mice algorithm, always finishing the
// session.
func (f *Flash) Route(s route.Session) error {
	if f.isElephant(s.Demand()) || f.cfg.M == 0 {
		f.mu.Lock()
		f.elephants++
		f.mu.Unlock()
		return f.routeElephant(s)
	}
	f.mu.Lock()
	f.mice++
	f.mu.Unlock()
	return f.routeMice(s)
}

// isElephant classifies a payment amount.
func (f *Flash) isElephant(amount float64) bool {
	return amount > f.cfg.Threshold
}

// Refresh drops all routing tables, as happens when the gossip layer
// delivers an updated topology (§3.3: "all entries are re-computed using
// the latest G").
func (f *Flash) Refresh() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tables = make(map[topo.NodeID]*routingTable)
}

// Stats is a snapshot of the router's internal counters.
type Stats struct {
	Elephants     int64 // payments routed by the elephant algorithm
	Mice          int64 // payments routed by the mice algorithm
	TableHits     int64 // mice payments whose receiver was cached
	TableMisses   int64 // mice payments requiring a Yen computation
	PathsReplaced int64 // dead table paths replaced by the next Yen path
	TableEntries  int   // receivers currently cached across all senders
}

// Stats returns a snapshot of the router's counters.
func (f *Flash) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	entries := 0
	for _, t := range f.tables {
		entries += len(t.entries)
	}
	return Stats{
		Elephants:     f.elephants,
		Mice:          f.mice,
		TableHits:     f.tableHits,
		TableMisses:   f.tableMisses,
		PathsReplaced: f.pathsReplaced,
		TableEntries:  entries,
	}
}

// String describes the router and its parameters.
func (f *Flash) String() string {
	return fmt.Sprintf("Flash(k=%d, m=%d, threshold=%g, feeOpt=%v)",
		f.cfg.K, f.cfg.M, f.cfg.Threshold, !f.cfg.DisableFeeOpt)
}

// ThresholdForMiceFraction returns the elephant threshold that makes the
// given fraction of amounts mice: the frac-quantile of the amounts
// (nearest rank). frac ≤ 0 makes every payment an elephant; frac ≥ 1
// makes every payment a mouse.
func ThresholdForMiceFraction(amounts []float64, frac float64) float64 {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 || len(amounts) == 0 {
		return math.Inf(1)
	}
	sorted := append([]float64(nil), amounts...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(frac*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
