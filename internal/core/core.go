// Package core implements Flash, the paper's routing algorithm for
// offchain payment networks (§3).
//
// Flash differentiates elephant payments from mice payments:
//
//   - Elephants (amount > Config.Threshold) run a modified Edmonds–Karp
//     search (paper Algorithm 1) that finds up to K candidate paths,
//     probing channel balances lazily along each, then splits the
//     payment across the paths with a fee-minimising linear program
//     (paper program (1)).
//   - Mice (everything else) are routed from a per-sender routing table
//     holding the top-M Yen shortest paths per receiver, tried in random
//     order with probe-on-failure partial payments.
//
// One Flash value serves any number of senders: routing tables are keyed
// by sender, which makes the same instance usable by a whole simulated
// network or by a single testbed node.
//
// Flash is safe for concurrent sessions. Routing tables are sharded per
// sender — an outer read-mostly map guarded by a RWMutex hands out one
// table per sender, and each table carries its own lock — so concurrent
// payments from different senders never contend on table state. All
// counters are atomics. The only shared mutable hot state is the
// router's RNG (used for the mice path order), which sessions bypass
// entirely when they carry a per-payment RNG (route.RandSource).
//
// With Config.ProbeWorkers > 1, elephant routing additionally runs a
// bounded probe pool *inside* each session — concurrency within one
// payment rather than across payments — speculatively probing several
// candidate paths per round and merging the results deterministically
// (see probe_pipeline.go). The pool only engages on sessions that
// advertise route.ParallelProber; everything else probes sequentially.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/route"
	"repro/internal/topo"
)

// Config parameterises a Flash router. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	// Threshold separates mice from elephants: payments with amount
	// strictly greater are elephants. The paper sets it per workload so
	// that 90% of payments are mice (§4.1). math.Inf(1) routes everything
	// as mice; 0 routes everything as elephants. Flash.SetThreshold can
	// re-calibrate the live value mid-run when the workload drifts.
	Threshold float64

	// K is the maximum number of candidate paths the elephant routing
	// probes (paper Algorithm 1 input k; 20 in the evaluation).
	K int

	// M is the number of shortest paths kept per receiver in the mice
	// routing table (paper m; 4 in the evaluation). M == 0 routes mice
	// payments with the elephant algorithm — the Figure 11 upper bound.
	M int

	// DisableFeeOpt turns off the LP fee optimisation: paths are then
	// filled sequentially in discovery order, the paper's Figure 9
	// baseline ("w/o optimization").
	DisableFeeOpt bool

	// ProbeAllK makes elephant routing probe the full K candidate paths
	// even after the accumulated flow covers the demand. Algorithm 1's
	// printed pseudocode checks "f ≥ d" after the loop (always-k); the
	// overhead discussion implies an early exit. The default is the
	// early exit; this flag selects the always-k reading, giving the fee
	// LP more slack at higher probing cost (see the ablation bench).
	ProbeAllK bool

	// FixedMiceOrder disables the random path order in mice routing and
	// uses ascending path length instead (an ablation; the paper argues
	// random order load-balances better, §3.3).
	FixedMiceOrder bool

	// TableTTL evicts a receiver's routing-table entry after this many
	// payments routed by the owning sender without touching that entry
	// (the paper's timeout mechanism, §3.3). 0 disables eviction.
	TableTTL int

	// TableCap bounds the number of receiver entries each sender's
	// routing table may hold; inserting beyond it evicts the
	// least-recently-used entry (counted in Stats.TableEvictions).
	// Snapshot-scale networks need the bound — a million senders cannot
	// each hold an unbounded path cache. 0 (the default) means
	// unbounded, which replays byte-identically to the uncapped table.
	TableCap int

	// ProbeWorkers bounds the per-session probe pool of elephant
	// routing. Algorithm 1 as printed probes its candidate paths one at
	// a time, making elephant latency k sequential network round trips;
	// with ProbeWorkers > 1 the router instead speculates — each round
	// it computes up to ProbeWorkers distinct candidate shortest paths
	// on its current knowledge graph (BFS plus Yen-style edge-avoidance
	// spurs), probes them concurrently, and merges the results in
	// candidate-index order exactly as if they had been probed one at a
	// time (surplus probed knowledge is kept for later rounds, so
	// speculation is never wasted). ≤ 1 — the default — takes the
	// untouched sequential path, byte-identical to the original
	// algorithm; any fixed value replays deterministically for a fixed
	// seed. Sessions that do not advertise route.ParallelProber (the
	// TCP testbed) always probe sequentially regardless of this
	// setting.
	ProbeWorkers int

	// Seed makes the router's random choices reproducible.
	Seed int64
}

// DefaultConfig returns the paper's evaluation settings, with the
// elephant threshold supplied by the caller (it is workload-dependent:
// the 90th percentile of payment sizes in the paper's runs).
func DefaultConfig(threshold float64) Config {
	return Config{
		Threshold: threshold,
		K:         20,
		M:         4,
		TableTTL:  50000,
		Seed:      1,
	}
}

// Flash is the routing algorithm. It is safe for concurrent use (the
// testbed runs one router per node; the simulator shares one across N
// payment workers). See the package comment for the sharding scheme.
type Flash struct {
	cfg Config

	// threshold is the live elephant classification boundary
	// (math.Float64bits-encoded): Config.Threshold seeds it, and
	// SetThreshold may re-calibrate it mid-run while payments route
	// concurrently, so the hot-path read in isElephant is an atomic
	// load rather than a field of cfg.
	threshold atomic.Uint64

	// probeWorkers is the live speculative probe-pool width:
	// Config.ProbeWorkers seeds it, and SetProbeWorkers may re-tune it
	// mid-run (the control plane's adaptive probe width), so the probe
	// pipeline reads an atomic rather than a field of cfg.
	probeWorkers atomic.Int32

	// senderThr holds per-sender elephant-threshold overrides
	// (SetSenderThreshold), consulted by the classification path before
	// the global threshold. senderThrCount gates the lookup: with no
	// overrides installed the classification path costs one extra
	// atomic load and never touches the map.
	senderMu       sync.RWMutex
	senderThr      map[topo.NodeID]float64
	senderThrCount atomic.Int32

	rngMu sync.Mutex
	rng   *rand.Rand

	tablesMu sync.RWMutex
	tables   map[topo.NodeID]*routingTable

	elephants              atomic.Int64
	mice                   atomic.Int64
	tableHits              atomic.Int64
	tableMisses            atomic.Int64
	pathsReplaced          atomic.Int64
	tableInvalidations     atomic.Int64
	tableEvictions         atomic.Int64
	thresholdUpdates       atomic.Int64
	senderThresholdUpdates atomic.Int64
	probeWidthUpdates      atomic.Int64
}

// New returns a Flash router with the given configuration. Invalid
// values are normalised: K < 1 becomes 1, M < 0 becomes 0,
// ProbeWorkers < 1 becomes 1 (sequential probing).
func New(cfg Config) *Flash {
	if cfg.K < 1 {
		cfg.K = 1
	}
	if cfg.M < 0 {
		cfg.M = 0
	}
	if cfg.ProbeWorkers < 1 {
		cfg.ProbeWorkers = 1
	}
	f := &Flash{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		tables:    make(map[topo.NodeID]*routingTable),
		senderThr: make(map[topo.NodeID]float64),
	}
	f.threshold.Store(math.Float64bits(cfg.Threshold))
	f.probeWorkers.Store(int32(cfg.ProbeWorkers))
	return f
}

// Name implements route.Router.
func (f *Flash) Name() string { return "Flash" }

// Config returns the router's configuration. Threshold and
// ProbeWorkers reflect the live values, which SetThreshold and
// SetProbeWorkers may have moved away from the constructed ones.
func (f *Flash) Config() Config {
	cfg := f.cfg
	cfg.Threshold = f.Threshold()
	cfg.ProbeWorkers = f.ProbeWorkers()
	return cfg
}

// Threshold returns the current elephant classification threshold.
func (f *Flash) Threshold() float64 {
	return math.Float64frombits(f.threshold.Load())
}

// SetThreshold swaps the elephant classification threshold — the
// adaptive re-calibration hook for workloads whose size distribution
// drifts (the paper sets the threshold "per workload" so ~90% of
// payments are mice; under a demand shift that quantile moves, and a
// pinned threshold silently misclassifies the whole post-shift
// stream). Safe concurrently with routing: in-flight payments classify
// against whichever value they loaded, exactly as a gossiped
// re-calibration would propagate.
//
// Lowering the threshold also invalidates the now-misclassified
// routing-table entries: an entry whose observed traffic exceeds the
// new threshold was serving payments that are elephants from here on,
// so the cached mice paths are dead weight — dropping them keeps the
// table (and its TTL clock) tracking genuine mice traffic. Raising the
// threshold drops nothing: cached entries only ever served amounts
// below the old threshold, which remain mice. Dropped entries count
// towards Stats.TableInvalidations; the swap itself towards
// Stats.ThresholdUpdates. Returns the number of entries dropped.
func (f *Flash) SetThreshold(t float64) int {
	old := math.Float64frombits(f.threshold.Swap(math.Float64bits(t)))
	if t == old {
		return 0
	}
	f.thresholdUpdates.Add(1)
	if t >= old {
		return 0
	}
	dropped := 0
	f.tablesMu.RLock()
	for _, tbl := range f.tables {
		tbl.mu.Lock()
		for _, e := range tbl.entries {
			if e.maxAmount > t {
				tbl.removeLocked(e)
				dropped++
			}
		}
		tbl.mu.Unlock()
	}
	f.tablesMu.RUnlock()
	f.tableInvalidations.Add(int64(dropped))
	return dropped
}

// ThresholdFor returns the elephant classification threshold in effect
// for payments from the given sender: the sender's override if
// SetSenderThreshold installed one, the global threshold otherwise.
func (f *Flash) ThresholdFor(sender topo.NodeID) float64 {
	if f.senderThrCount.Load() > 0 {
		f.senderMu.RLock()
		t, ok := f.senderThr[sender]
		f.senderMu.RUnlock()
		if ok {
			return t
		}
	}
	return f.Threshold()
}

// SenderThreshold returns the sender's threshold override and whether
// one is installed.
func (f *Flash) SenderThreshold(sender topo.NodeID) (float64, bool) {
	if f.senderThrCount.Load() == 0 {
		return 0, false
	}
	f.senderMu.RLock()
	t, ok := f.senderThr[sender]
	f.senderMu.RUnlock()
	return t, ok
}

// SetSenderThreshold installs (or moves) a per-sender elephant
// threshold override — the sharded counterpart of SetThreshold for
// workloads where each sender's demand drifts independently (a sender
// streaming large transfers should classify against its own size
// distribution, not the network-wide quantile). Safe concurrently with
// routing: in-flight payments classify against whichever value they
// loaded, like SetThreshold.
//
// Lowering the sender's effective threshold also invalidates that
// sender's now-misclassified routing-table entries (same rule as
// SetThreshold, narrowed to the one table); entries dropped count
// towards Stats.TableInvalidations, the swap towards
// Stats.SenderThresholdUpdates. Returns the number of entries dropped.
func (f *Flash) SetSenderThreshold(sender topo.NodeID, t float64) int {
	f.senderMu.Lock()
	old, had := f.senderThr[sender]
	if had && old == t {
		f.senderMu.Unlock()
		return 0
	}
	f.senderThr[sender] = t
	if !had {
		f.senderThrCount.Add(1)
		old = f.Threshold()
	}
	f.senderMu.Unlock()
	f.senderThresholdUpdates.Add(1)
	if t >= old {
		return 0
	}
	dropped := 0
	f.tablesMu.RLock()
	tbl := f.tables[sender]
	f.tablesMu.RUnlock()
	if tbl != nil {
		tbl.mu.Lock()
		for _, e := range tbl.entries {
			if e.maxAmount > t {
				tbl.removeLocked(e)
				dropped++
			}
		}
		tbl.mu.Unlock()
	}
	f.tableInvalidations.Add(int64(dropped))
	return dropped
}

// ClearSenderThresholds removes every per-sender override, returning
// classification to the global threshold alone.
func (f *Flash) ClearSenderThresholds() {
	f.senderMu.Lock()
	f.senderThr = make(map[topo.NodeID]float64)
	f.senderThrCount.Store(0)
	f.senderMu.Unlock()
}

// ProbeWorkers returns the live speculative probe-pool width.
func (f *Flash) ProbeWorkers() int { return int(f.probeWorkers.Load()) }

// SetProbeWorkers re-tunes the live probe-pool width — the adaptive
// probe-width hook: speculation trades messages and probe latency for
// round-one fill, and a feedback loop observing window metrics can
// widen or narrow it mid-run. The width is clamped to [1, Config.K]
// (a pool wider than the candidate set is pure waste); the effective
// value is returned. Sessions pick up the new width on their next
// probing round; sessions without route.ParallelProber stay sequential
// regardless, exactly as with the static configuration.
func (f *Flash) SetProbeWorkers(w int) int {
	if w < 1 {
		w = 1
	}
	if w > f.cfg.K {
		w = f.cfg.K
	}
	if int(f.probeWorkers.Swap(int32(w))) != w {
		f.probeWidthUpdates.Add(1)
	}
	return w
}

// Route implements route.Router: it classifies the payment and
// dispatches to the elephant or mice algorithm, always finishing the
// session.
func (f *Flash) Route(s route.Session) error {
	if f.isElephantFor(s.Sender(), s.Demand()) || f.cfg.M == 0 {
		f.elephants.Add(1)
		return f.routeElephant(s)
	}
	f.mice.Add(1)
	return f.routeMice(s)
}

// isElephantFor classifies a payment amount against the sender's live
// effective threshold.
func (f *Flash) isElephantFor(sender topo.NodeID, amount float64) bool {
	return amount > f.ThresholdFor(sender)
}

// isElephant classifies a payment amount against the live global
// threshold (per-sender overrides notwithstanding).
func (f *Flash) isElephant(amount float64) bool {
	return amount > f.Threshold()
}

// Refresh drops all routing tables, as happens when the gossip layer
// delivers an updated topology (§3.3: "all entries are re-computed using
// the latest G"). Payments already in flight when Refresh is called may
// finish against the table they fetched — they route on the topology
// they started with and their late inserts land in the discarded map.
// That transient staleness mirrors the eventually-consistent gossip
// layer this models; callers needing a hard barrier must drain their
// payment workers first.
func (f *Flash) Refresh() {
	f.tablesMu.Lock()
	defer f.tablesMu.Unlock()
	f.tables = make(map[topo.NodeID]*routingTable)
}

// InvalidateChannel drops every cached routing-table entry whose paths
// traverse the channel u–v (in either direction), across all senders.
// It is the targeted counterpart of Refresh for a single topology
// change: when the dynamic network closes or opens a channel, only the
// entries actually routing over it are recomputed on their next use
// ("all entries are re-computed using the latest G", §3.3, narrowed to
// the affected entries). Safe concurrently with routing — it takes the
// same per-table locks payments do. Returns the number of entries
// dropped.
func (f *Flash) InvalidateChannel(u, v topo.NodeID) int {
	dropped := 0
	f.tablesMu.RLock()
	for _, t := range f.tables {
		t.mu.Lock()
		for _, e := range t.entries {
			if entryUsesChannel(e, u, v) {
				t.removeLocked(e)
				dropped++
			}
		}
		t.mu.Unlock()
	}
	f.tablesMu.RUnlock()
	f.tableInvalidations.Add(int64(dropped))
	return dropped
}

// entryUsesChannel reports whether any cached path of e (live set or
// replacement pool) crosses the channel u–v.
func entryUsesChannel(e *tableEntry, u, v topo.NodeID) bool {
	return pathsUseChannel(e.paths, u, v) || pathsUseChannel(e.all, u, v)
}

func pathsUseChannel(paths [][]topo.NodeID, u, v topo.NodeID) bool {
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			if (p[i] == u && p[i+1] == v) || (p[i] == v && p[i+1] == u) {
				return true
			}
		}
	}
	return false
}

// Pair identifies one (sender, receiver) routing-table slot for
// Prewarm.
type Pair struct {
	Sender, Receiver topo.NodeID
}

// Prewarm computes the mice routing-table entries (top-M Yen shortest
// paths per receiver) for the given pairs with a bounded worker pool
// and installs them, skipping pairs already cached. workers ≤ 0 uses
// GOMAXPROCS. It returns the number of entries computed. The Yen runs
// — the expensive part — execute outside any lock, so a prewarmed
// table costs wall-clock time proportional to pairs/workers instead of
// serialising on first use. Prewarming does not count towards the
// hit/miss statistics and does not advance any TTL clock.
func (f *Flash) Prewarm(g *topo.Graph, pairs []Pair, workers int) int {
	if f.cfg.M == 0 || len(pairs) == 0 {
		return 0
	}
	var computed atomic.Int64
	parallel.ForEach(len(pairs), workers, func(_, i int) {
		p := pairs[i]
		if p.Sender == p.Receiver {
			return
		}
		tbl := f.tableFor(p.Sender)
		tbl.mu.Lock()
		_, exists := tbl.entries[p.Receiver]
		clock := tbl.clock
		tbl.mu.Unlock()
		if exists {
			return
		}
		paths := graph.YenKSP(g, p.Sender, p.Receiver, f.cfg.M)
		tbl.mu.Lock()
		if _, exists := tbl.entries[p.Receiver]; !exists {
			e := &tableEntry{receiver: p.Receiver, paths: paths, lastAccess: clock}
			tbl.entries[p.Receiver] = e
			// The captured clock may trail concurrent payment traffic, so
			// a sorted insert keeps the LRU list in lastAccess order.
			tbl.insertByAccess(e)
			f.enforceCapLocked(tbl)
			computed.Add(1)
		}
		tbl.mu.Unlock()
	})
	return int(computed.Load())
}

// Stats is a snapshot of the router's internal counters.
type Stats struct {
	Elephants              int64 // payments routed by the elephant algorithm
	Mice                   int64 // payments routed by the mice algorithm
	TableHits              int64 // mice payments whose receiver was cached
	TableMisses            int64 // mice payments requiring a Yen computation
	PathsReplaced          int64 // dead table paths replaced by the next Yen path
	TableInvalidations     int64 // entries dropped by InvalidateChannel (churn) or threshold moves
	TableEvictions         int64 // LRU entries evicted by the Config.TableCap bound
	ThresholdUpdates       int64 // SetThreshold calls that changed the threshold
	SenderThresholdUpdates int64 // SetSenderThreshold calls that moved an override
	ProbeWidthUpdates      int64 // SetProbeWorkers calls that changed the width
	SenderThresholds       int   // senders with a live threshold override
	TableEntries           int   // receivers currently cached across all senders
}

// Stats returns a snapshot of the router's counters.
func (f *Flash) Stats() Stats {
	entries := 0
	f.tablesMu.RLock()
	for _, t := range f.tables {
		t.mu.Lock()
		entries += len(t.entries)
		t.mu.Unlock()
	}
	f.tablesMu.RUnlock()
	return Stats{
		Elephants:              f.elephants.Load(),
		Mice:                   f.mice.Load(),
		TableHits:              f.tableHits.Load(),
		TableMisses:            f.tableMisses.Load(),
		PathsReplaced:          f.pathsReplaced.Load(),
		TableInvalidations:     f.tableInvalidations.Load(),
		TableEvictions:         f.tableEvictions.Load(),
		ThresholdUpdates:       f.thresholdUpdates.Load(),
		SenderThresholdUpdates: f.senderThresholdUpdates.Load(),
		ProbeWidthUpdates:      f.probeWidthUpdates.Load(),
		SenderThresholds:       int(f.senderThrCount.Load()),
		TableEntries:           entries,
	}
}

// String describes the router and its parameters (threshold is the
// live value).
func (f *Flash) String() string {
	return fmt.Sprintf("Flash(k=%d, m=%d, threshold=%g, feeOpt=%v)",
		f.cfg.K, f.cfg.M, f.Threshold(), !f.cfg.DisableFeeOpt)
}

// ThresholdForMiceFraction returns the elephant threshold that makes the
// given fraction of amounts mice: the frac-quantile of the amounts
// (nearest rank). frac ≤ 0 makes every payment an elephant; frac ≥ 1
// makes every payment a mouse.
func ThresholdForMiceFraction(amounts []float64, frac float64) float64 {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 || len(amounts) == 0 {
		return math.Inf(1)
	}
	sorted := append([]float64(nil), amounts...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(frac*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
