package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/topo"
)

// build constructs a network from (a, b, balAB, balBA) channel specs.
func build(t *testing.T, n int, chans [][4]float64) *pcn.Network {
	t.Helper()
	g := topo.New(n)
	for _, c := range chans {
		g.MustAddChannel(topo.NodeID(c[0]), topo.NodeID(c[1]))
	}
	net := pcn.New(g)
	for _, c := range chans {
		if err := net.SetBalance(topo.NodeID(c[0]), topo.NodeID(c[1]), c[2], c[3]); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

// pay routes one payment and returns the routing error.
func pay(t *testing.T, r route.Router, net *pcn.Network, s, d topo.NodeID, amount float64) (*pcn.Tx, error) {
	t.Helper()
	tx, err := net.Begin(s, d, amount)
	if err != nil {
		t.Fatal(err)
	}
	return tx, r.Route(tx)
}

func TestElephantSinglePath(t *testing.T) {
	net := build(t, 3, [][4]float64{{0, 1, 100, 0}, {1, 2, 100, 0}})
	f := New(DefaultConfig(0)) // everything elephant
	tx, err := pay(t, f, net, 0, 2, 50)
	if err != nil {
		t.Fatalf("route failed: %v", err)
	}
	if !tx.Finished() {
		t.Error("session left unfinished")
	}
	if got := net.Balance(0, 1); got != 50 {
		t.Errorf("balance(0,1) = %v, want 50", got)
	}
}

func TestElephantMultiPath(t *testing.T) {
	// Diamond: each path carries 60; demand 100 needs both.
	net := build(t, 4, [][4]float64{
		{0, 1, 60, 0}, {1, 3, 60, 0},
		{0, 2, 60, 0}, {2, 3, 60, 0},
	})
	f := New(DefaultConfig(0))
	tx, err := pay(t, f, net, 0, 3, 100)
	if err != nil {
		t.Fatalf("route failed: %v", err)
	}
	if tx.PathsUsed() < 2 {
		t.Errorf("paths used = %d, want ≥ 2", tx.PathsUsed())
	}
	gained := net.Balance(3, 1) + net.Balance(3, 2)
	if math.Abs(gained-100) > 1e-6 {
		t.Errorf("receiver gained %v, want 100", gained)
	}
}

// TestElephantFigure5a reproduces the paper's Figure 5(a) argument: two
// simple shortest paths share the 1→2 bottleneck (capacity 30), so
// k-shortest-path routing strands the 1-5-4-6 detour. The modified
// Edmonds–Karp must find total flow 50 and satisfy a demand of 45.
func TestElephantFigure5a(t *testing.T) {
	net := build(t, 7, [][4]float64{
		{1, 2, 30, 0},
		{2, 3, 30, 0},
		{3, 6, 30, 0},
		{2, 6, 30, 0},
		{1, 5, 30, 0},
		{5, 4, 20, 0},
		{4, 6, 20, 0},
	})
	f := New(DefaultConfig(0))
	_, err := pay(t, f, net, 1, 6, 45)
	if err != nil {
		t.Fatalf("route failed: %v (modified EK should find 30+20=50 ≥ 45)", err)
	}
	// Node 6 received exactly 45 across its three channels.
	gained := net.Balance(6, 3) + net.Balance(6, 2) + net.Balance(6, 4)
	if math.Abs(gained-45) > 1e-6 {
		t.Errorf("receiver gained %v, want 45", gained)
	}
}

func TestElephantInsufficientCapacityAborts(t *testing.T) {
	net := build(t, 3, [][4]float64{{0, 1, 10, 10}, {1, 2, 10, 10}})
	total := net.TotalFunds()
	f := New(DefaultConfig(0))
	tx, err := pay(t, f, net, 0, 2, 100)
	if !errors.Is(err, route.ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	if !tx.Finished() {
		t.Error("failed session left unfinished")
	}
	if net.Balance(0, 1) != 10 {
		t.Errorf("failed payment moved balance: %v", net.Balance(0, 1))
	}
	if net.TotalFunds() != total {
		t.Error("total funds drifted on abort")
	}
}

func TestElephantRespectsK(t *testing.T) {
	// 5 disjoint 2-hop paths of 10 each; k=2 finds at most 20.
	chans := [][4]float64{}
	for i := 1; i <= 5; i++ {
		chans = append(chans, [4]float64{0, float64(i), 10, 0}, [4]float64{float64(i), 6, 10, 0})
	}
	net := build(t, 7, chans)
	cfg := DefaultConfig(0)
	cfg.K = 2
	f := New(cfg)
	if _, err := pay(t, f, net, 0, 6, 25); err == nil {
		t.Error("k=2 should not satisfy demand 25 over 10-capacity paths")
	}
	net2 := build(t, 7, chans)
	cfg.K = 3
	if _, err := pay(t, New(cfg), net2, 0, 6, 25); err != nil {
		t.Errorf("k=3 should satisfy demand 25: %v", err)
	}
}

func TestElephantZeroCapacityPathSkipped(t *testing.T) {
	// Shortest path 0-1-3 has a zero hop; detour 0-2-3 works.
	net := build(t, 4, [][4]float64{
		{0, 1, 100, 0}, {1, 3, 0, 100},
		{0, 2, 50, 0}, {2, 3, 50, 0},
	})
	f := New(DefaultConfig(0))
	if _, err := pay(t, f, net, 0, 3, 40); err != nil {
		t.Fatalf("route failed: %v", err)
	}
	if got := net.Balance(2, 3); got != 10 {
		t.Errorf("balance(2,3) = %v, want 10 (40 sent via detour)", got)
	}
}

func TestFeeOptimizationReducesFees(t *testing.T) {
	// Two disjoint paths: expensive short one (discovered first by BFS),
	// cheap long one. Demand 150 exceeds either path alone, so Algorithm
	// 1 discovers both; the LP should then load the cheap path fully
	// while sequential fill loads the expensive one first.
	mk := func() *pcn.Network {
		net := build(t, 5, [][4]float64{
			{0, 1, 100, 0}, {1, 4, 100, 0}, // short, expensive
			{0, 2, 100, 0}, {2, 3, 100, 0}, {3, 4, 100, 0}, // long, cheap
		})
		net.SetFee(0, 1, pcn.FeeSchedule{Rate: 0.05})
		net.SetFee(1, 4, pcn.FeeSchedule{Rate: 0.05})
		net.SetFee(0, 2, pcn.FeeSchedule{Rate: 0.001})
		net.SetFee(2, 3, pcn.FeeSchedule{Rate: 0.001})
		net.SetFee(3, 4, pcn.FeeSchedule{Rate: 0.001})
		return net
	}

	optNet := mk()
	txOpt, err := pay(t, New(DefaultConfig(0)), optNet, 0, 4, 150)
	if err != nil {
		t.Fatalf("optimised route failed: %v", err)
	}
	noOptCfg := DefaultConfig(0)
	noOptCfg.DisableFeeOpt = true
	noNet := mk()
	txNo, err := pay(t, New(noOptCfg), noNet, 0, 4, 150)
	if err != nil {
		t.Fatalf("sequential route failed: %v", err)
	}
	if txOpt.FeesPaid() >= txNo.FeesPaid() {
		t.Errorf("LP fees %v not below sequential fees %v", txOpt.FeesPaid(), txNo.FeesPaid())
	}
	// LP: 100 on the cheap path (rate 0.003) + 50 on the expensive one
	// (rate 0.1) = 0.3 + 5 = 5.3. Sequential: 100·0.1 + 50·0.003 = 10.15.
	if math.Abs(txOpt.FeesPaid()-5.3) > 1e-6 {
		t.Errorf("LP fees = %v, want 5.3", txOpt.FeesPaid())
	}
	if math.Abs(txNo.FeesPaid()-10.15) > 1e-6 {
		t.Errorf("sequential fees = %v, want 10.15", txNo.FeesPaid())
	}
}

func TestMiceTableReuse(t *testing.T) {
	net := build(t, 4, [][4]float64{{0, 1, 1000, 0}, {1, 2, 1000, 0}, {2, 3, 1000, 0}})
	f := New(DefaultConfig(math.Inf(1))) // everything mice
	for i := 0; i < 5; i++ {
		if _, err := pay(t, f, net, 0, 3, 10); err != nil {
			t.Fatalf("payment %d failed: %v", i, err)
		}
	}
	st := f.Stats()
	if st.TableMisses != 1 {
		t.Errorf("table misses = %d, want 1 (first payment only)", st.TableMisses)
	}
	if st.TableHits != 4 {
		t.Errorf("table hits = %d, want 4", st.TableHits)
	}
	if st.Mice != 5 || st.Elephants != 0 {
		t.Errorf("classification counts wrong: %+v", st)
	}
}

func TestMiceNoProbeOnFirstTrySuccess(t *testing.T) {
	net := build(t, 3, [][4]float64{{0, 1, 1000, 0}, {1, 2, 1000, 0}})
	f := New(DefaultConfig(math.Inf(1)))
	tx, err := pay(t, f, net, 0, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tx.ProbeMessages() != 0 {
		t.Errorf("probe messages = %d, want 0 (direct send succeeded)", tx.ProbeMessages())
	}
}

func TestMicePartialPayments(t *testing.T) {
	// Two paths of 30 each; a 50 mouse must split across them.
	net := build(t, 4, [][4]float64{
		{0, 1, 30, 0}, {1, 3, 30, 0},
		{0, 2, 30, 0}, {2, 3, 30, 0},
	})
	f := New(DefaultConfig(math.Inf(1)))
	tx, err := pay(t, f, net, 0, 3, 50)
	if err != nil {
		t.Fatalf("route failed: %v", err)
	}
	if tx.PathsUsed() != 2 {
		t.Errorf("paths used = %d, want 2", tx.PathsUsed())
	}
	if tx.ProbeMessages() == 0 {
		t.Error("splitting requires at least one probe")
	}
}

func TestMiceFailureAborts(t *testing.T) {
	net := build(t, 3, [][4]float64{{0, 1, 5, 5}, {1, 2, 5, 5}})
	f := New(DefaultConfig(math.Inf(1)))
	tx, err := pay(t, f, net, 0, 2, 100)
	if err == nil {
		t.Fatal("expected failure")
	}
	if !tx.Finished() {
		t.Error("failed session left unfinished")
	}
	if net.Balance(0, 1) != 5 {
		t.Error("failed mouse moved balances")
	}
}

func TestMiceNoRouteReceiver(t *testing.T) {
	g := topo.New(3)
	g.MustAddChannel(0, 1)
	net := pcn.New(g)
	net.SetBalance(0, 1, 10, 10)
	f := New(DefaultConfig(math.Inf(1)))
	tx, _ := net.Begin(0, 2, 5)
	err := f.Route(tx)
	if !errors.Is(err, route.ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestMiceDeadPathReplacement(t *testing.T) {
	// Square 0-1-2 / 0-3-2 with both table paths initially alive, then
	// drain 0-1 so the first path dies; a third path exists via 0-4-5-2.
	net := build(t, 6, [][4]float64{
		{0, 1, 100, 0}, {1, 2, 100, 0},
		{0, 3, 100, 0}, {3, 2, 100, 0},
		{0, 4, 100, 0}, {4, 5, 100, 0}, {5, 2, 100, 0},
	})
	cfg := DefaultConfig(math.Inf(1))
	cfg.M = 2
	f := New(cfg)
	// Prime the table.
	if _, err := pay(t, f, net, 0, 2, 10); err != nil {
		t.Fatal(err)
	}
	// Kill both 2-hop paths.
	net.SetBalance(0, 1, 0, 100)
	net.SetBalance(0, 3, 0, 100)
	if _, err := pay(t, f, net, 0, 2, 10); err != nil {
		t.Fatalf("payment should recover via replacement path: %v", err)
	}
	if f.Stats().PathsReplaced == 0 {
		t.Error("no path replacement recorded")
	}
}

func TestTableTTLEviction(t *testing.T) {
	net := build(t, 4, [][4]float64{{0, 1, 1e6, 0}, {1, 2, 1e6, 0}, {1, 3, 1e6, 0}})
	cfg := DefaultConfig(math.Inf(1))
	cfg.TableTTL = 2
	f := New(cfg)
	pay(t, f, net, 0, 2, 1) // entry for 2
	pay(t, f, net, 0, 3, 1) // entry for 3
	pay(t, f, net, 0, 3, 1)
	pay(t, f, net, 0, 3, 1) // clock advances: entry for 2 is stale
	if st := f.Stats(); st.TableEntries != 1 {
		t.Errorf("table entries = %d, want 1 after TTL eviction", st.TableEntries)
	}
}

func TestRefreshClearsTables(t *testing.T) {
	net := build(t, 3, [][4]float64{{0, 1, 100, 0}, {1, 2, 100, 0}})
	f := New(DefaultConfig(math.Inf(1)))
	pay(t, f, net, 0, 2, 1)
	if f.Stats().TableEntries == 0 {
		t.Fatal("expected a table entry")
	}
	f.Refresh()
	if f.Stats().TableEntries != 0 {
		t.Error("Refresh did not clear tables")
	}
}

func TestMZeroRoutesMiceAsElephants(t *testing.T) {
	net := build(t, 3, [][4]float64{{0, 1, 100, 0}, {1, 2, 100, 0}})
	cfg := DefaultConfig(math.Inf(1)) // everything classified mouse...
	cfg.M = 0                         // ...but m=0 forces elephant routing (Fig 11)
	f := New(cfg)
	if _, err := pay(t, f, net, 0, 2, 10); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.Elephants != 1 || st.Mice != 0 {
		t.Errorf("m=0 should route as elephant: %+v", st)
	}
}

func TestClassification(t *testing.T) {
	f := New(DefaultConfig(100))
	if f.isElephant(100) {
		t.Error("amount == threshold should be a mouse")
	}
	if !f.isElephant(100.01) {
		t.Error("amount > threshold should be an elephant")
	}
}

func TestThresholdForMiceFraction(t *testing.T) {
	amounts := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	th := ThresholdForMiceFraction(amounts, 0.9)
	mice := 0
	for _, a := range amounts {
		if a <= th {
			mice++
		}
	}
	if mice != 10-1 {
		t.Errorf("threshold %v makes %d mice, want 9", th, mice)
	}
	if got := ThresholdForMiceFraction(amounts, 0); got != 0 {
		t.Errorf("frac 0 → %v, want 0", got)
	}
	if got := ThresholdForMiceFraction(amounts, 1); !math.IsInf(got, 1) {
		t.Errorf("frac 1 → %v, want +Inf", got)
	}
	if got := ThresholdForMiceFraction(nil, 0.5); !math.IsInf(got, 1) {
		t.Errorf("empty amounts → %v, want +Inf", got)
	}
}

func TestFixedMiceOrderDeterministic(t *testing.T) {
	cfg := DefaultConfig(math.Inf(1))
	cfg.FixedMiceOrder = true
	f := New(cfg)
	e := &tableEntry{paths: [][]topo.NodeID{
		{0, 1, 2, 3}, {0, 3}, {0, 2, 3},
	}}
	order := f.pathOrder(nil, &routingTable{}, e, nil)
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Errorf("fixed order = %v, want shortest-first [1 2 0]", order)
	}
}

func TestStringAndName(t *testing.T) {
	f := New(DefaultConfig(42))
	if f.Name() != "Flash" {
		t.Error("Name mismatch")
	}
	if f.String() == "" || f.Config().K != 20 {
		t.Error("String/Config broken")
	}
}

// TestRouteAtomicityProperty: random payments over a random network
// either deliver exactly the demand to the receiver or change nothing.
func TestRouteAtomicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g, err := topo.BarabasiAlbert(40, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := pcn.New(g)
	net.AssignBalancesUniform(rng, 50, 150)
	total := net.TotalFunds()
	f := New(DefaultConfig(60)) // mixed mice/elephants
	for trial := 0; trial < 300; trial++ {
		s := topo.NodeID(rng.Intn(40))
		d := topo.NodeID(rng.Intn(40))
		if s == d {
			continue
		}
		amount := 1 + rng.Float64()*199
		recvBefore := nodeFunds(net, g, d)
		sendBefore := nodeFunds(net, g, s)
		tx, err := net.Begin(s, d, amount)
		if err != nil {
			t.Fatal(err)
		}
		rerr := f.Route(tx)
		if !tx.Finished() {
			t.Fatalf("trial %d: session unfinished", trial)
		}
		recvAfter := nodeFunds(net, g, d)
		sendAfter := nodeFunds(net, g, s)
		if rerr == nil {
			if math.Abs((recvAfter-recvBefore)-amount) > 1e-5 {
				t.Fatalf("trial %d: receiver gained %v, want %v", trial, recvAfter-recvBefore, amount)
			}
			if math.Abs((sendBefore-sendAfter)-amount) > 1e-5 {
				t.Fatalf("trial %d: sender spent %v, want %v", trial, sendBefore-sendAfter, amount)
			}
		} else {
			if math.Abs(recvAfter-recvBefore) > 1e-6 {
				t.Fatalf("trial %d: failed payment moved receiver funds by %v", trial, recvAfter-recvBefore)
			}
		}
		if math.Abs(net.TotalFunds()-total) > 1e-4 {
			t.Fatalf("trial %d: global funds drifted", trial)
		}
	}
}

// nodeFunds sums the spendable balances node u owns across its channels.
func nodeFunds(net *pcn.Network, g *topo.Graph, u topo.NodeID) float64 {
	total := 0.0
	for _, v := range g.Neighbors(u) {
		total += net.Balance(u, v)
	}
	return total
}
