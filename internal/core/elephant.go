package core

import (
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/topo"
)

// probedState is the sender's knowledge accumulated while running
// Algorithm 1: the capacity matrix C (first-probe value per directed
// hop), the residual matrix C′, and the fee schedules collected during
// probing (§3.2: "The fee information is collected during the probing
// process with the capacity information").
//
// The matrices are flat arrays indexed by directed channel slot —
// 2·channel + direction, direction 1 meaning higher endpoint to lower
// (Edge canonicalises A < B) — with an epoch-stamped known set, so a
// pooled probedState resets in O(1) and every hop query is an array
// read instead of a map probe. Values at slots whose known stamp is
// stale are garbage; every accessor checks the stamp first.
type probedState struct {
	g        *topo.Graph
	epoch    uint32
	known    []uint32  // slot probed iff known[slot] == epoch
	capacity []float64 // C — probed capacity, set once
	residual []float64 // C′ — capacity minus flow found so far
	fees     []pcn.FeeSchedule
}

var probedPool = sync.Pool{New: func() any { return new(probedState) }}

// acquireProbedState draws a probedState for g from the package pool,
// sized to g's current channel count and reset to all-unknown.
func acquireProbedState(g *topo.Graph) *probedState {
	ps := probedPool.Get().(*probedState)
	ps.g = g
	if m := 2 * g.NumChannels(); len(ps.known) < m {
		ps.known = make([]uint32, m)
		ps.capacity = make([]float64, m)
		ps.residual = make([]float64, m)
		ps.fees = make([]pcn.FeeSchedule, m)
		ps.epoch = 0
	}
	ps.epoch++
	if ps.epoch == 0 { // uint32 wrap: stale stamps could alias, clear once
		clear(ps.known)
		ps.epoch = 1
	}
	return ps
}

// release returns ps to the pool. No path or plan may retain it.
func (ps *probedState) release() {
	ps.g = nil
	probedPool.Put(ps)
}

// slot maps the directed hop u→v to its flat index, growing the arrays
// when a channel was registered after this probedState was sized (churn
// opening a channel mid-payment). Returns -1 for hops with no channel.
func (ps *probedState) slot(u, v topo.NodeID) int {
	ci := ps.g.ChannelIndex(u, v)
	if ci < 0 {
		return -1
	}
	s := 2 * ci
	if u > v {
		s++
	}
	if s >= len(ps.known) {
		ps.grow(s + 1)
	}
	return s
}

func (ps *probedState) grow(m int) {
	known := make([]uint32, m)
	copy(known, ps.known)
	ps.known = known
	capacity := make([]float64, m)
	copy(capacity, ps.capacity)
	ps.capacity = capacity
	residual := make([]float64, m)
	copy(residual, ps.residual)
	ps.residual = residual
	fees := make([]pcn.FeeSchedule, m)
	copy(fees, ps.fees)
	ps.fees = fees
}

// knownHop reports whether the directed hop u→v has been probed.
func (ps *probedState) knownHop(u, v topo.NodeID) bool {
	s := ps.slot(u, v)
	return s >= 0 && ps.known[s] == ps.epoch
}

// capAt returns the probed capacity of u→v (0 when unprobed, matching
// the zero value the map representation used to yield).
func (ps *probedState) capAt(u, v topo.NodeID) float64 {
	if s := ps.slot(u, v); s >= 0 && ps.known[s] == ps.epoch {
		return ps.capacity[s]
	}
	return 0
}

// feeAt returns the probed fee schedule of u→v (zero when unprobed).
func (ps *probedState) feeAt(u, v topo.NodeID) pcn.FeeSchedule {
	if s := ps.slot(u, v); s >= 0 && ps.known[s] == ps.epoch {
		return ps.fees[s]
	}
	return pcn.FeeSchedule{}
}

// knownCount returns the number of probed directed hops (tests assert
// on the knowledge footprint of the probe pipeline).
func (ps *probedState) knownCount() int {
	n := 0
	for _, st := range ps.known {
		if st == ps.epoch {
			n++
		}
	}
	return n
}

// usableCh implements Algorithm 1's BFS filter: unknown hops are assumed
// to have non-zero capacity ("our algorithm works without the capacity
// matrix as input by assuming each channel has non-zero capacity"),
// probed hops require positive residual. The search hands over the
// channel index it is traversing, so the filter is two array reads.
func (ps *probedState) usableCh(u, v topo.NodeID, ch int32) bool {
	s := 2 * int(ch)
	if u > v {
		s++
	}
	if s < len(ps.known) && ps.known[s] == ps.epoch {
		return ps.residual[s] > route.Epsilon
	}
	return true
}

// elephantPlan is the outcome of the path-finding stage: candidate
// paths, the flow each contributed during discovery, and the probed
// state backing the LP.
type elephantPlan struct {
	paths     [][]topo.NodeID
	pathFlows []float64 // bottleneck flow found on each path (discovery order)
	state     *probedState
	flow      float64 // total max-flow found = sum of pathFlows
}

// record stores the first-probe capacities and fees of a probed path
// (Algorithm 1 lines 17–22). Probing a hop reveals both directions of
// its channel: each on-path node knows the balance on both sides of
// its adjacent channels.
func (ps *probedState) record(p []topo.NodeID, info []pcn.HopInfo) {
	for i := 0; i+1 < len(p); i++ {
		fwd := ps.slot(p[i], p[i+1])
		if fwd < 0 {
			continue
		}
		if ps.known[fwd] != ps.epoch {
			ps.known[fwd] = ps.epoch
			ps.capacity[fwd] = info[i].Available
			ps.residual[fwd] = info[i].Available
			ps.fees[fwd] = info[i].Fee
		}
		rev := fwd ^ 1
		if ps.known[rev] != ps.epoch {
			ps.known[rev] = ps.epoch
			ps.capacity[rev] = info[i].ReverseAvailable
			ps.residual[rev] = info[i].ReverseAvailable
			ps.fees[rev] = info[i].ReverseFee
		}
	}
}

// bottleneck is the minimum residual along p (Algorithm 1 line 12),
// clamped at zero. Unprobed hops read as zero residual, exactly as the
// map representation's missing keys did.
func (ps *probedState) bottleneck(p []topo.NodeID) float64 {
	c := math.Inf(1)
	for i := 0; i+1 < len(p); i++ {
		r := 0.0
		if s := ps.slot(p[i], p[i+1]); s >= 0 && ps.known[s] == ps.epoch {
			r = ps.residual[s]
		}
		if r < c {
			c = r
		}
	}
	if c < 0 {
		c = 0
	}
	return c
}

// accept adds p to the plan with flow c and, when c is positive,
// applies the residual update (lines 23–24): reduce along the path,
// credit the reverse direction.
//
// "It is thus possible, though rare ... that our algorithm finds a
// path but its effective capacity is zero after probing." Such a path
// still consumes one of the k iterations (line 10 adds p to P before
// probing), but contributes no flow.
func (plan *elephantPlan) accept(p []topo.NodeID, c float64) {
	plan.paths = append(plan.paths, p)
	plan.pathFlows = append(plan.pathFlows, c)
	if c > 0 {
		ps := plan.state
		for i := 0; i+1 < len(p); i++ {
			// Probing recorded both directions of every on-path channel,
			// so the slots are known; the update mirrors lines 23–24.
			if fwd := ps.slot(p[i], p[i+1]); fwd >= 0 {
				ps.residual[fwd] -= c
				ps.residual[fwd^1] += c
			}
		}
		plan.flow += c
	}
}

// findElephantPaths is the paper's Algorithm 1 (modified Edmonds–Karp):
// up to k BFS-shortest paths on the residual knowledge graph, probing
// each discovered path to learn true capacities, stopping early once the
// accumulated flow covers the demand.
//
// With Config.ProbeWorkers > 1 — and a session that supports it — the
// per-path probes run on a speculative concurrent pipeline instead of
// one at a time (see probe_pipeline.go); ProbeWorkers ≤ 1 takes the
// sequential loop below, unchanged from the original algorithm.
func (f *Flash) findElephantPaths(s route.Session, k int) *elephantPlan {
	if w := f.probePoolSize(s); w > 1 {
		return f.findElephantPathsPipelined(s, k, w)
	}
	g := s.Graph()
	ps := acquireProbedState(g)
	plan := &elephantPlan{state: ps}
	demand := s.Demand()
	sc := graph.AcquireScratch()
	defer graph.ReleaseScratch(sc)

	for len(plan.paths) < k {
		p := sc.ShortestPathCh(g, s.Sender(), s.Receiver(), ps.usableCh)
		if p == nil {
			break
		}
		p = append([]topo.NodeID(nil), p...) // plan retains; scratch reuses
		info, err := s.Probe(p)
		if err != nil {
			break
		}
		ps.record(p, info)
		plan.accept(p, ps.bottleneck(p))
		if !f.cfg.ProbeAllK && plan.flow >= demand-route.Epsilon {
			return plan
		}
	}
	if plan.flow >= demand-route.Epsilon {
		return plan
	}
	ps.release() // no plan retains it
	return nil   // Algorithm 1 line 28: demand unsatisfiable with k paths
}

// routeElephant runs the full elephant pipeline: Algorithm 1 path
// finding, then fee-minimising allocation (program (1)), then held
// partial payments and the atomic commit.
func (f *Flash) routeElephant(s route.Session) error {
	plan := f.findElephantPaths(s, f.cfg.K)
	if plan == nil {
		if err := s.Abort(); err != nil {
			return err
		}
		return route.ErrInsufficient
	}
	defer plan.state.release()

	var alloc []float64
	if f.cfg.DisableFeeOpt {
		alloc = sequentialAllocation(plan, s.Demand())
	} else {
		alloc = f.optimizeAllocation(plan, s.Demand())
	}

	// Hold each positive allocation, strictly in discovery order — the
	// LP-aware order. The fee LP may allocate flow to a path that
	// crosses a channel in reverse of an earlier path (an offset): such
	// an allocation is only feasible against the reverse-direction
	// credit the earlier path's flow creates, and Algorithm 1's residual
	// update guarantees the creditor is always discovered first. Holding
	// (and therefore committing — pcn applies holds in placement order)
	// creators before consumers lets the session's self-offset credit
	// (pcn.Tx.Hold) reserve the full allocation; reordering these holds
	// would make offset allocations fail at the hold phase even though
	// the atomic commit is sound. HoldUpTo re-probes on rejection, so
	// residual discrepancies still degrade gracefully instead of
	// failing outright.
	remaining := s.Demand()
	for i, amount := range alloc {
		if amount <= route.Epsilon || remaining <= route.Epsilon {
			continue
		}
		if amount > remaining {
			amount = remaining
		}
		held := route.HoldUpTo(s, plan.paths[i], amount)
		remaining -= held
	}
	// If rounding or offsets left a shortfall, top up along any path
	// with residual room, in discovery order.
	if remaining > route.Epsilon {
		for _, p := range plan.paths {
			if remaining <= route.Epsilon {
				break
			}
			held := route.HoldUpTo(s, p, remaining)
			remaining -= held
		}
	}
	return route.Finish(s, route.ErrInsufficient)
}

// sequentialAllocation fills paths in discovery order with the flow each
// contributed, stopping when the demand is met — the paper's Figure 9
// baseline ("the paths are used sequentially as they are found by our
// modified Edmonds-Karp algorithm until the demand is met").
func sequentialAllocation(plan *elephantPlan, demand float64) []float64 {
	alloc := make([]float64, len(plan.paths))
	remaining := demand
	for i, flow := range plan.pathFlows {
		if remaining <= route.Epsilon {
			break
		}
		amount := math.Min(flow, remaining)
		alloc[i] = amount
		remaining -= amount
	}
	return alloc
}

// optimizeAllocation solves the paper's program (1):
//
//	min  Σ_p Σ_{(u,v)∈p} a^p_{u,v}·f_{u,v}(r_p)
//	s.t. Σ_p r_p = d
//	     Σ_p r_p·a^p_{u,v} − Σ_p r_p·a^p_{v,u} ≤ C(u,v)   ∀(u,v)
//	     r_p ≥ 0
//
// For the linear fee schedules used in practice the objective reduces to
// Σ_p r_p·rate_p with rate_p the sum of hop rates, making this an LP.
// Falls back to the sequential allocation if the solver fails (which can
// only happen through numerical pathology, since the discovery flows are
// themselves a feasible point).
func (f *Flash) optimizeAllocation(plan *elephantPlan, demand float64) []float64 {
	n := len(plan.paths)
	// Objective: per-unit fee rate of each path.
	c := make([]float64, n)
	for i, p := range plan.paths {
		rate := 0.0
		for j := 0; j+1 < len(p); j++ {
			rate += plan.state.feeAt(p[j], p[j+1]).Rate
		}
		c[i] = rate
	}
	// Channel constraints: one row per directed hop appearing on any
	// path, with +1 for paths using it forward and −1 for paths using
	// the reverse direction (offsets, per the paper).
	hopRows := make(map[graph.DirEdge]int)
	var aub [][]float64
	var bub []float64
	rowFor := func(e graph.DirEdge) int {
		if idx, ok := hopRows[e]; ok {
			return idx
		}
		idx := len(aub)
		hopRows[e] = idx
		aub = append(aub, make([]float64, n))
		bub = append(bub, plan.state.capAt(e.U, e.V))
		return idx
	}
	for i, p := range plan.paths {
		for _, e := range graph.PathEdges(p) {
			aub[rowFor(e)][i] += 1
			if plan.state.knownHop(e.V, e.U) {
				aub[rowFor(e.Reverse())][i] -= 1
			}
		}
	}
	eq := make([]float64, n)
	for i := range eq {
		eq[i] = 1
	}
	sol, err := lp.Solve(lp.Problem{
		C:   c,
		Aub: aub,
		Bub: bub,
		Aeq: [][]float64{eq},
		Beq: []float64{demand},
	})
	if err != nil {
		return sequentialAllocation(plan, demand)
	}
	return sol.X
}
