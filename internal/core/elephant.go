package core

import (
	"math"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/topo"
)

// probedState is the sender's knowledge accumulated while running
// Algorithm 1: the capacity matrix C (first-probe value per directed
// hop), the residual matrix C′, and the fee schedules collected during
// probing (§3.2: "The fee information is collected during the probing
// process with the capacity information").
type probedState struct {
	capacity map[graph.DirEdge]float64 // C — probed capacity, set once
	residual map[graph.DirEdge]float64 // C′ — capacity minus flow found so far
	fees     map[graph.DirEdge]pcn.FeeSchedule
}

func newProbedState() *probedState {
	return &probedState{
		capacity: make(map[graph.DirEdge]float64),
		residual: make(map[graph.DirEdge]float64),
		fees:     make(map[graph.DirEdge]pcn.FeeSchedule),
	}
}

// known reports whether hop e has been probed.
func (ps *probedState) known(e graph.DirEdge) bool {
	_, ok := ps.capacity[e]
	return ok
}

// usable implements Algorithm 1's BFS filter: unknown hops are assumed
// to have non-zero capacity ("our algorithm works without the capacity
// matrix as input by assuming each channel has non-zero capacity"),
// probed hops require positive residual.
func (ps *probedState) usable(u, v topo.NodeID) bool {
	if r, ok := ps.residual[graph.DirEdge{U: u, V: v}]; ok {
		return r > route.Epsilon
	}
	return true
}

// elephantPlan is the outcome of the path-finding stage: candidate
// paths, the flow each contributed during discovery, and the probed
// state backing the LP.
type elephantPlan struct {
	paths     [][]topo.NodeID
	pathFlows []float64 // bottleneck flow found on each path (discovery order)
	state     *probedState
	flow      float64 // total max-flow found = sum of pathFlows
}

// record stores the first-probe capacities and fees of a probed path
// (Algorithm 1 lines 17–22). Probing a hop reveals both directions of
// its channel: each on-path node knows the balance on both sides of
// its adjacent channels.
func (ps *probedState) record(p []topo.NodeID, info []pcn.HopInfo) {
	for i, e := range graph.PathEdges(p) {
		if !ps.known(e) {
			ps.capacity[e] = info[i].Available
			ps.residual[e] = info[i].Available
			ps.fees[e] = info[i].Fee
		}
		rev := e.Reverse()
		if !ps.known(rev) {
			ps.capacity[rev] = info[i].ReverseAvailable
			ps.residual[rev] = info[i].ReverseAvailable
			ps.fees[rev] = info[i].ReverseFee
		}
	}
}

// bottleneck is the minimum residual along p (Algorithm 1 line 12),
// clamped at zero.
func (ps *probedState) bottleneck(p []topo.NodeID) float64 {
	c := math.Inf(1)
	for _, e := range graph.PathEdges(p) {
		if r := ps.residual[e]; r < c {
			c = r
		}
	}
	if c < 0 {
		c = 0
	}
	return c
}

// accept adds p to the plan with flow c and, when c is positive,
// applies the residual update (lines 23–24): reduce along the path,
// credit the reverse direction.
//
// "It is thus possible, though rare ... that our algorithm finds a
// path but its effective capacity is zero after probing." Such a path
// still consumes one of the k iterations (line 10 adds p to P before
// probing), but contributes no flow.
func (plan *elephantPlan) accept(p []topo.NodeID, c float64) {
	plan.paths = append(plan.paths, p)
	plan.pathFlows = append(plan.pathFlows, c)
	if c > 0 {
		for _, e := range graph.PathEdges(p) {
			plan.state.residual[e] -= c
			plan.state.residual[e.Reverse()] += c
		}
		plan.flow += c
	}
}

// findElephantPaths is the paper's Algorithm 1 (modified Edmonds–Karp):
// up to k BFS-shortest paths on the residual knowledge graph, probing
// each discovered path to learn true capacities, stopping early once the
// accumulated flow covers the demand.
//
// With Config.ProbeWorkers > 1 — and a session that supports it — the
// per-path probes run on a speculative concurrent pipeline instead of
// one at a time (see probe_pipeline.go); ProbeWorkers ≤ 1 takes the
// sequential loop below, unchanged from the original algorithm.
func (f *Flash) findElephantPaths(s route.Session, k int) *elephantPlan {
	if w := f.probePoolSize(s); w > 1 {
		return f.findElephantPathsPipelined(s, k, w)
	}
	ps := newProbedState()
	plan := &elephantPlan{state: ps}
	g := s.Graph()
	demand := s.Demand()

	for len(plan.paths) < k {
		p := graph.ShortestPath(g, s.Sender(), s.Receiver(), ps.usable)
		if p == nil {
			break
		}
		info, err := s.Probe(p)
		if err != nil {
			break
		}
		ps.record(p, info)
		plan.accept(p, ps.bottleneck(p))
		if !f.cfg.ProbeAllK && plan.flow >= demand-route.Epsilon {
			return plan
		}
	}
	if plan.flow >= demand-route.Epsilon {
		return plan
	}
	return nil // Algorithm 1 line 28: demand unsatisfiable with k paths
}

// routeElephant runs the full elephant pipeline: Algorithm 1 path
// finding, then fee-minimising allocation (program (1)), then held
// partial payments and the atomic commit.
func (f *Flash) routeElephant(s route.Session) error {
	plan := f.findElephantPaths(s, f.cfg.K)
	if plan == nil {
		if err := s.Abort(); err != nil {
			return err
		}
		return route.ErrInsufficient
	}

	var alloc []float64
	if f.cfg.DisableFeeOpt {
		alloc = sequentialAllocation(plan, s.Demand())
	} else {
		alloc = f.optimizeAllocation(plan, s.Demand())
	}

	// Hold each positive allocation, strictly in discovery order — the
	// LP-aware order. The fee LP may allocate flow to a path that
	// crosses a channel in reverse of an earlier path (an offset): such
	// an allocation is only feasible against the reverse-direction
	// credit the earlier path's flow creates, and Algorithm 1's residual
	// update guarantees the creditor is always discovered first. Holding
	// (and therefore committing — pcn applies holds in placement order)
	// creators before consumers lets the session's self-offset credit
	// (pcn.Tx.Hold) reserve the full allocation; reordering these holds
	// would make offset allocations fail at the hold phase even though
	// the atomic commit is sound. HoldUpTo re-probes on rejection, so
	// residual discrepancies still degrade gracefully instead of
	// failing outright.
	remaining := s.Demand()
	for i, amount := range alloc {
		if amount <= route.Epsilon || remaining <= route.Epsilon {
			continue
		}
		if amount > remaining {
			amount = remaining
		}
		held := route.HoldUpTo(s, plan.paths[i], amount)
		remaining -= held
	}
	// If rounding or offsets left a shortfall, top up along any path
	// with residual room, in discovery order.
	if remaining > route.Epsilon {
		for _, p := range plan.paths {
			if remaining <= route.Epsilon {
				break
			}
			held := route.HoldUpTo(s, p, remaining)
			remaining -= held
		}
	}
	return route.Finish(s, route.ErrInsufficient)
}

// sequentialAllocation fills paths in discovery order with the flow each
// contributed, stopping when the demand is met — the paper's Figure 9
// baseline ("the paths are used sequentially as they are found by our
// modified Edmonds-Karp algorithm until the demand is met").
func sequentialAllocation(plan *elephantPlan, demand float64) []float64 {
	alloc := make([]float64, len(plan.paths))
	remaining := demand
	for i, flow := range plan.pathFlows {
		if remaining <= route.Epsilon {
			break
		}
		amount := math.Min(flow, remaining)
		alloc[i] = amount
		remaining -= amount
	}
	return alloc
}

// optimizeAllocation solves the paper's program (1):
//
//	min  Σ_p Σ_{(u,v)∈p} a^p_{u,v}·f_{u,v}(r_p)
//	s.t. Σ_p r_p = d
//	     Σ_p r_p·a^p_{u,v} − Σ_p r_p·a^p_{v,u} ≤ C(u,v)   ∀(u,v)
//	     r_p ≥ 0
//
// For the linear fee schedules used in practice the objective reduces to
// Σ_p r_p·rate_p with rate_p the sum of hop rates, making this an LP.
// Falls back to the sequential allocation if the solver fails (which can
// only happen through numerical pathology, since the discovery flows are
// themselves a feasible point).
func (f *Flash) optimizeAllocation(plan *elephantPlan, demand float64) []float64 {
	n := len(plan.paths)
	// Objective: per-unit fee rate of each path.
	c := make([]float64, n)
	for i, p := range plan.paths {
		rate := 0.0
		for _, e := range graph.PathEdges(p) {
			rate += plan.state.fees[e].Rate
		}
		c[i] = rate
	}
	// Channel constraints: one row per directed hop appearing on any
	// path, with +1 for paths using it forward and −1 for paths using
	// the reverse direction (offsets, per the paper).
	hopRows := make(map[graph.DirEdge]int)
	var aub [][]float64
	var bub []float64
	rowFor := func(e graph.DirEdge) int {
		if idx, ok := hopRows[e]; ok {
			return idx
		}
		idx := len(aub)
		hopRows[e] = idx
		aub = append(aub, make([]float64, n))
		bub = append(bub, plan.state.capacity[e])
		return idx
	}
	for i, p := range plan.paths {
		for _, e := range graph.PathEdges(p) {
			aub[rowFor(e)][i] += 1
			if plan.state.known(e.Reverse()) {
				aub[rowFor(e.Reverse())][i] -= 1
			}
		}
	}
	eq := make([]float64, n)
	for i := range eq {
		eq[i] = 1
	}
	sol, err := lp.Solve(lp.Problem{
		C:   c,
		Aub: aub,
		Bub: bub,
		Aeq: [][]float64{eq},
		Beq: []float64{demand},
	})
	if err != nil {
		return sequentialAllocation(plan, demand)
	}
	return sol.X
}
