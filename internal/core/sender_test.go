package core

import (
	"sync"
	"testing"

	"repro/internal/topo"
)

// TestSenderThresholdOverride pins the sharded-threshold semantics:
// classification falls through to the global threshold until an
// override is installed, overrides shard per sender, and clearing
// restores the global view.
func TestSenderThresholdOverride(t *testing.T) {
	net := thresholdNet(t)
	f := New(DefaultConfig(100))

	if got := f.ThresholdFor(0); got != 100 {
		t.Fatalf("ThresholdFor without override = %v, want the global 100", got)
	}
	if _, ok := f.SenderThreshold(0); ok {
		t.Fatal("SenderThreshold reports an override before any install")
	}

	f.SetSenderThreshold(0, 20)
	if got := f.ThresholdFor(0); got != 20 {
		t.Errorf("ThresholdFor(0) = %v, want the override 20", got)
	}
	if got := f.ThresholdFor(1); got != 100 {
		t.Errorf("ThresholdFor(1) = %v, want the global 100 (override must shard)", got)
	}
	if v, ok := f.SenderThreshold(0); !ok || v != 20 {
		t.Errorf("SenderThreshold(0) = %v, %v", v, ok)
	}

	// Sender 0's payment of 50 is now an elephant; the same amount from
	// sender 3 stays a mouse.
	routeOne(t, net, f, 0, 3, 50)
	routeOne(t, net, f, 3, 0, 50)
	st := f.Stats()
	if st.Elephants != 1 || st.Mice != 1 {
		t.Errorf("classification %+v, want 1 elephant (sender 0) and 1 mouse (sender 3)", st)
	}
	if st.SenderThresholdUpdates != 1 || st.SenderThresholds != 1 {
		t.Errorf("stats %+v, want 1 sender update, 1 tracked override", st)
	}

	// Same-value reinstall is a no-op.
	f.SetSenderThreshold(0, 20)
	if got := f.Stats().SenderThresholdUpdates; got != 1 {
		t.Errorf("no-op reinstall counted: %d updates", got)
	}

	f.ClearSenderThresholds()
	if got := f.ThresholdFor(0); got != 100 {
		t.Errorf("ThresholdFor after clear = %v, want the global 100", got)
	}
	if got := f.Stats().SenderThresholds; got != 0 {
		t.Errorf("%d overrides tracked after clear", got)
	}
}

// TestSetSenderThresholdInvalidatesOwnTableOnly: lowering a sender's
// effective threshold drops that sender's now-misclassified cached
// entries — and only that sender's; other tables are untouched.
func TestSetSenderThresholdInvalidatesOwnTableOnly(t *testing.T) {
	net := thresholdNet(t)
	f := New(DefaultConfig(100))

	routeOne(t, net, f, 0, 3, 80) // sender 0 caches 0→3 with maxAmount 80
	routeOne(t, net, f, 3, 0, 80) // sender 3 caches 3→0 with maxAmount 80
	if entries := f.Stats().TableEntries; entries != 2 {
		t.Fatalf("cached %d entries, want 2", entries)
	}

	// Raising sender 0's threshold drops nothing.
	if dropped := f.SetSenderThreshold(0, 500); dropped != 0 {
		t.Errorf("raise dropped %d entries", dropped)
	}
	// Lowering it below the cached maxAmount drops sender 0's entry
	// only.
	if dropped := f.SetSenderThreshold(0, 50); dropped != 1 {
		t.Errorf("lower dropped %d entries, want 1", dropped)
	}
	st := f.Stats()
	if st.TableEntries != 1 {
		t.Errorf("%d entries cached after invalidation, want sender 3's 1", st.TableEntries)
	}

	// First install below the *global* threshold invalidates against
	// the global baseline (sender 3 had no override).
	if dropped := f.SetSenderThreshold(3, 50); dropped != 1 {
		t.Errorf("first-install lower dropped %d entries, want 1", dropped)
	}
}

// TestSetSenderThresholdConcurrentWithRouting hammers per-sender
// threshold swaps while payments route on other goroutines — the
// race-detector witness for the sharded-threshold satellite: the
// senderThr map behind its RWMutex, the count fast path, and the
// narrowed invalidation sweep all run against live ThresholdFor
// readers.
func TestSetSenderThresholdConcurrentWithRouting(t *testing.T) {
	net := thresholdNet(t)
	f := New(DefaultConfig(100))
	senders := []topo.NodeID{0, 1, 2, 3}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			from := senders[w]
			to := senders[(w+2)%len(senders)]
			for i := 0; i < 200; i++ {
				amount := float64(10 + (i+w)%150)
				tx, err := net.Begin(from, to, amount)
				if err != nil {
					t.Error(err)
					return
				}
				_ = f.Route(tx)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			s := senders[i%len(senders)]
			switch {
			case i%97 == 0:
				f.ClearSenderThresholds()
			case i%13 == 0:
				f.SetThreshold(float64(20 + i%120))
			default:
				f.SetSenderThreshold(s, float64(20+i%120))
			}
			f.ThresholdFor(s)
			f.SetProbeWorkers(1 + i%4)
		}
	}()
	wg.Wait()
	st := f.Stats()
	if st.Mice+st.Elephants != 800 {
		t.Errorf("routed %d payments, want 800", st.Mice+st.Elephants)
	}
	if st.SenderThresholdUpdates == 0 {
		t.Error("no sender threshold updates recorded")
	}
}
