package core

import (
	"math"
	"testing"

	"repro/internal/pcn"
	"repro/internal/topo"
)

// TestElephantOffsetHoldRegression is the deterministic distillation of
// the flaky TestAlgorithm1MatchesMaxFlowProperty corner (ROADMAP: "LP
// offset holds"): a demand exactly equal to the max flow whose second
// augmenting path must cross a channel in *reverse* of the first
// path's flow. The allocation then relies on reverse-direction credit
// that only materialises at commit time; before the self-offset hold
// credit (pcn.Tx.Hold) plus the LP-aware (discovery-order) holds in
// routeElephant, the second hold was rejected, the top-up could not
// recover, and the payment aborted despite being feasible.
//
// The network (every directed balance 1 forwards, 0 backwards):
//
//	s ── a ── b ── t        BFS finds s→a→b→t first (3 hops),
//	│    │    │             saturating a→b and b→t.
//	c ───┘    │             The only remaining augmenting path is
//	a ── d ── t             s→c→b→a→d→t, crossing b→a on the residual
//	                        credit of the first path's a→b flow.
func TestElephantOffsetHoldRegression(t *testing.T) {
	const (
		s, a, b, tt, c, d = 0, 1, 2, 3, 4, 5
	)
	g := topo.New(6)
	// Insertion order fixes the BFS tie-break: a is discovered before
	// c, so the first path goes through a→b.
	g.MustAddChannel(s, a)
	g.MustAddChannel(a, b)
	g.MustAddChannel(b, tt)
	g.MustAddChannel(s, c)
	g.MustAddChannel(c, b)
	g.MustAddChannel(a, d)
	g.MustAddChannel(d, tt)
	net := pcn.New(g)
	// Fund exactly one unit in each "forward" direction (SetBalance is
	// direction-explicit; the channel's canonical endpoint order does
	// not matter here).
	for _, hop := range [][2]topo.NodeID{{s, a}, {a, b}, {b, tt}, {s, c}, {c, b}, {a, d}, {d, tt}} {
		if err := net.SetBalance(hop[0], hop[1], 1, 0); err != nil {
			t.Fatal(err)
		}
	}

	cfg := DefaultConfig(0) // threshold 0: everything is an elephant
	cfg.K = 8
	f := New(cfg)

	// Demand 2 = max flow: 1 unit down each side, with the second unit
	// cancelling the first's a→b flow at the shared channel.
	tx, err := net.Begin(s, tt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Route(tx); err != nil {
		t.Fatalf("max-flow demand with offset allocation aborted: %v", err)
	}
	if !tx.Finished() {
		t.Fatal("session left unfinished")
	}
	if got := tx.PathsUsed(); got != 2 {
		t.Errorf("paths used = %d, want 2", got)
	}
	// The two units left the source and arrived at the sink.
	for _, hop := range [][2]topo.NodeID{{s, a}, {s, c}} {
		if got := net.Balance(hop[0], hop[1]); math.Abs(got-0) > 1e-9 {
			t.Errorf("bal(%d→%d) = %v, want 0", hop[0], hop[1], got)
		}
	}
	for _, hop := range [][2]topo.NodeID{{tt, b}, {tt, d}} {
		if got := net.Balance(hop[0], hop[1]); math.Abs(got-1) > 1e-9 {
			t.Errorf("bal(%d→%d) = %v, want 1", hop[0], hop[1], got)
		}
	}
	// The contested a–b channel nets out: 1 forward, 1 cancelled back.
	if fwd, rev := net.Balance(a, b), net.Balance(b, a); math.Abs(fwd-1) > 1e-9 || math.Abs(rev) > 1e-9 {
		t.Errorf("contested channel = (%v, %v), want (1, 0)", fwd, rev)
	}
}
