package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/topo"
)

// TestPipelinedMatchesMaxFlowProperty is the speculative pipeline's
// version of the Algorithm 1 correctness core: with an unbounded path
// budget and no early exit, the flow discovered by concurrently-probed
// speculative candidates must still equal the true Edmonds–Karp
// max-flow value — speculation changes latency and probing cost, never
// the soundness of the discovered flow.
func TestPipelinedMatchesMaxFlowProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(12)
		g, err := topo.BarabasiAlbert(n, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		net := pcn.New(g)
		for _, e := range g.Channels() {
			if err := net.SetBalance(e.A, e.B, float64(1+rng.Intn(20)), float64(1+rng.Intn(20))); err != nil {
				t.Fatal(err)
			}
		}
		s := topo.NodeID(rng.Intn(n))
		d := topo.NodeID(rng.Intn(n))
		if s == d {
			continue
		}
		truth := graph.MaxFlow(g, s, d, func(u, v topo.NodeID) float64 {
			return net.Balance(u, v)
		}, -1, -1)
		if truth.Value <= 0 {
			continue
		}
		cfg := DefaultConfig(0)
		cfg.K = n * n
		cfg.ProbeAllK = true
		cfg.ProbeWorkers = 2 + rng.Intn(4) // 2..5
		f := New(cfg)
		tx, err := net.Begin(s, d, truth.Value)
		if err != nil {
			t.Fatal(err)
		}
		plan := f.findElephantPaths(tx, cfg.K)
		if plan == nil {
			t.Fatalf("trial %d: pipelined Algorithm 1 found no plan for demand %v (= max flow)", trial, truth.Value)
		}
		if math.Abs(plan.flow-truth.Value) > 1e-6 {
			t.Fatalf("trial %d: pipelined flow %v ≠ Edmonds-Karp %v (workers=%d)",
				trial, plan.flow, truth.Value, cfg.ProbeWorkers)
		}
		if err := f.routeWithPlan(tx, plan); err != nil {
			t.Fatalf("trial %d: routing max-flow demand failed: %v", trial, err)
		}
	}
}

// parallelFixture builds a sender→receiver fan: s connects to P
// mid-nodes, every mid-node connects to t, each channel funded with
// bal per direction — P edge-disjoint 2-hop paths.
func parallelFixture(t *testing.T, paths int, bal float64) (*pcn.Network, topo.NodeID, topo.NodeID) {
	t.Helper()
	g := topo.New(paths + 2)
	s, d := topo.NodeID(0), topo.NodeID(1)
	for i := 0; i < paths; i++ {
		mid := topo.NodeID(2 + i)
		g.MustAddChannel(s, mid)
		g.MustAddChannel(mid, d)
	}
	net := pcn.New(g)
	for _, e := range g.Channels() {
		if err := net.SetBalance(e.A, e.B, bal, bal); err != nil {
			t.Fatal(err)
		}
	}
	return net, s, d
}

// TestPipelinedEarlyStopKeepsSurplusKnowledge pins the two halves of
// the merge contract: the plan stops at the demand exactly like the
// sequential loop (speculative candidates beyond the stop never join
// it), while the knowledge their probes bought is retained in the
// session's capacity matrix for later rounds and the fee LP.
func TestPipelinedEarlyStopKeepsSurplusKnowledge(t *testing.T) {
	const paths = 8
	net, s, d := parallelFixture(t, paths, 100)
	cfg := DefaultConfig(0)
	cfg.ProbeWorkers = 4
	f := New(cfg)
	tx, err := net.Begin(s, d, 50) // the first candidate alone covers it
	if err != nil {
		t.Fatal(err)
	}
	plan := f.findElephantPaths(tx, cfg.K)
	if plan == nil {
		t.Fatal("no plan for trivially satisfiable demand")
	}
	if len(plan.paths) != 1 {
		t.Errorf("early stop violated: plan has %d paths, want 1", len(plan.paths))
	}
	if plan.flow < 50 {
		t.Errorf("plan flow %v does not cover demand 50", plan.flow)
	}
	// One probed 2-hop path records 4 directed entries (both directions
	// of both channels). Sequential probing would know exactly one
	// path's worth; the pipeline probed a full round of 4 candidates.
	seqKnown, roundKnown := 4, 4*4
	if got := plan.state.knownCount(); got != roundKnown {
		t.Errorf("capacity matrix has %d entries, want %d (surplus speculation kept)", got, roundKnown)
	} else if got <= seqKnown {
		t.Errorf("no surplus knowledge retained: %d entries", got)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}

// probeOutcome is the deterministic footprint of one routed payment.
type probeOutcome struct {
	delivered bool
	probeMsgs int
	paths     int
	held      float64
	fees      float64
}

// runElephants routes the same seeded elephant workload over a fresh
// identically-seeded network and returns every payment's footprint.
func runElephants(t *testing.T, probeWorkers int) []probeOutcome {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	g, err := topo.BarabasiAlbert(60, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := pcn.New(g)
	balRNG := rand.New(rand.NewSource(8))
	for _, e := range g.Channels() {
		if err := net.SetBalance(e.A, e.B, 50+balRNG.Float64()*100, 50+balRNG.Float64()*100); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultConfig(0) // everything is an elephant
	cfg.ProbeWorkers = probeWorkers
	f := New(cfg)

	payRNG := rand.New(rand.NewSource(9))
	var out []probeOutcome
	for i := 0; i < 120; i++ {
		s := topo.NodeID(payRNG.Intn(60))
		d := topo.NodeID(payRNG.Intn(60))
		amount := 5 + payRNG.Float64()*120
		if s == d {
			continue
		}
		tx, err := net.Begin(s, d, amount)
		if err != nil {
			t.Fatal(err)
		}
		rerr := f.Route(tx)
		if !tx.Finished() {
			t.Fatalf("payment %d left unfinished", i)
		}
		out = append(out, probeOutcome{
			delivered: rerr == nil,
			probeMsgs: tx.ProbeMessages(),
			paths:     tx.PathsUsed(),
			held:      tx.HeldTotal(),
			fees:      tx.FeesPaid(),
		})
	}
	return out
}

// TestPipelinedReplayDeterministic pins the replay guarantee: a fixed
// seed and a fixed ProbeWorkers > 1 reproduce every payment's outcome,
// probing cost, path count and fees exactly — goroutine scheduling
// inside the probe pool must never leak into results.
func TestPipelinedReplayDeterministic(t *testing.T) {
	a := runElephants(t, 4)
	b := runElephants(t, 4)
	if len(a) != len(b) {
		t.Fatalf("replay produced %d vs %d payments", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("payment %d diverged between identical replays:\n first  %+v\n second %+v", i, a[i], b[i])
		}
	}
}

// sequentialOnly wraps a Session, hiding every optional capability —
// what a minimal third-party Session implementation looks like.
type sequentialOnly struct{ route.Session }

// TestProbePoolSizeFallback verifies the capability gate: the pipeline
// only engages when the configuration asks for it AND the session
// advertises route.ParallelProber; everything else probes sequentially.
func TestProbePoolSizeFallback(t *testing.T) {
	net, s, d := parallelFixture(t, 2, 100)
	tx, err := net.Begin(s, d, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort() //nolint:errcheck

	cfg := DefaultConfig(0)
	cfg.ProbeWorkers = 4
	f := New(cfg)
	if got := f.probePoolSize(tx); got != 4 {
		t.Errorf("probePoolSize(Tx) = %d, want 4", got)
	}
	if got := f.probePoolSize(sequentialOnly{tx}); got != 1 {
		t.Errorf("probePoolSize(capability-less session) = %d, want 1", got)
	}
	seq := New(DefaultConfig(0)) // ProbeWorkers unset → sequential
	if got := seq.probePoolSize(tx); got != 1 {
		t.Errorf("probePoolSize with default config = %d, want 1", got)
	}
}
