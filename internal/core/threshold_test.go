package core

import (
	"sync"
	"testing"

	"repro/internal/pcn"
	"repro/internal/topo"
)

// thresholdNet builds a small line network 0–1–2–3 with ample balance,
// so mice and elephant routing both succeed trivially.
func thresholdNet(t *testing.T) *pcn.Network {
	t.Helper()
	g := topo.New(4)
	g.MustAddChannel(0, 1)
	g.MustAddChannel(1, 2)
	g.MustAddChannel(2, 3)
	net := pcn.New(g)
	for _, e := range g.Channels() {
		if err := net.SetBalance(e.A, e.B, 1e6, 1e6); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

// routeOne pushes one payment through f and returns whether it
// delivered.
func routeOne(t *testing.T, net *pcn.Network, f *Flash, from, to topo.NodeID, amount float64) bool {
	t.Helper()
	tx, err := net.Begin(from, to, amount)
	if err != nil {
		t.Fatal(err)
	}
	return f.Route(tx) == nil
}

// TestSetThresholdSwapsClassification: payments classify against the
// live threshold, and the swap is visible through Config, Threshold
// and Stats.
func TestSetThresholdSwapsClassification(t *testing.T) {
	net := thresholdNet(t)
	f := New(DefaultConfig(100))
	if f.Threshold() != 100 {
		t.Fatalf("initial threshold %v", f.Threshold())
	}

	routeOne(t, net, f, 0, 3, 50) // mouse under threshold 100
	st := f.Stats()
	if st.Mice != 1 || st.Elephants != 0 {
		t.Fatalf("pre-swap classification: %+v", st)
	}

	if dropped := f.SetThreshold(100); dropped != 0 {
		t.Errorf("no-op swap dropped %d entries", dropped)
	}
	if got := f.Stats().ThresholdUpdates; got != 0 {
		t.Errorf("no-op swap counted as update: %d", got)
	}

	f.SetThreshold(20)
	routeOne(t, net, f, 0, 3, 50) // the same amount is now an elephant
	st = f.Stats()
	if st.Mice != 1 || st.Elephants != 1 {
		t.Errorf("post-swap classification: %+v", st)
	}
	if st.ThresholdUpdates != 1 {
		t.Errorf("ThresholdUpdates = %d, want 1", st.ThresholdUpdates)
	}
	if got := f.Config().Threshold; got != 20 {
		t.Errorf("Config().Threshold = %v, want the live value 20", got)
	}
}

// TestSetThresholdInvalidatesMisclassifiedEntries: lowering the
// threshold drops cached entries whose observed traffic is no longer
// mice traffic, and only those; raising it drops nothing.
func TestSetThresholdInvalidatesMisclassifiedEntries(t *testing.T) {
	net := thresholdNet(t)
	f := New(DefaultConfig(100))

	routeOne(t, net, f, 0, 3, 80) // caches entry 0→3 with maxAmount 80
	routeOne(t, net, f, 0, 2, 10) // caches entry 0→2 with maxAmount 10
	if entries := f.Stats().TableEntries; entries != 2 {
		t.Fatalf("cached %d entries, want 2", entries)
	}

	// Raising the threshold: every cached entry still serves mice.
	if dropped := f.SetThreshold(500); dropped != 0 {
		t.Errorf("raise dropped %d entries", dropped)
	}

	// Dropping to 50: the 0→3 entry (maxAmount 80) now fronts elephant
	// traffic and must go; 0→2 (maxAmount 10) stays.
	invBefore := f.Stats().TableInvalidations
	if dropped := f.SetThreshold(50); dropped != 1 {
		t.Errorf("lower dropped %d entries, want 1", dropped)
	}
	st := f.Stats()
	if st.TableEntries != 1 {
		t.Errorf("%d entries cached after invalidation, want 1", st.TableEntries)
	}
	if st.TableInvalidations != invBefore+1 {
		t.Errorf("TableInvalidations %d -> %d, want +1", invBefore, st.TableInvalidations)
	}
	if st.ThresholdUpdates != 2 {
		t.Errorf("ThresholdUpdates = %d, want 2", st.ThresholdUpdates)
	}
}

// TestSetThresholdConcurrentWithRouting hammers threshold swaps while
// payments route on other goroutines — the race-detector witness for
// the atomic threshold and the lock discipline of the invalidation
// sweep.
func TestSetThresholdConcurrentWithRouting(t *testing.T) {
	net := thresholdNet(t)
	f := New(DefaultConfig(100))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				amount := float64(10 + (i+w)%150)
				tx, err := net.Begin(0, 3, amount)
				if err != nil {
					t.Error(err)
					return
				}
				_ = f.Route(tx)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			f.SetThreshold(float64(20 + i%120))
		}
	}()
	wg.Wait()
	st := f.Stats()
	if st.Mice+st.Elephants != 800 {
		t.Errorf("routed %d payments, want 800", st.Mice+st.Elephants)
	}
}
