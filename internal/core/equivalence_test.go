package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/pcn"
	"repro/internal/route"
	"repro/internal/topo"
)

// TestAlgorithm1MatchesMaxFlowProperty links the paper's Algorithm 1 to
// the classic algorithm it modifies: with an unbounded path budget and
// no early exit, the flow it discovers through lazy probing must equal
// the true Edmonds–Karp max-flow value (and therefore satisfy any
// demand at or below it). This is the correctness core of elephant
// routing: bounding k and probing lazily trades only *probing cost*,
// never soundness of the discovered flow.
func TestAlgorithm1MatchesMaxFlowProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(12)
		g, err := topo.BarabasiAlbert(n, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		net := pcn.New(g)
		for _, e := range g.Channels() {
			if err := net.SetBalance(e.A, e.B, float64(1+rng.Intn(20)), float64(1+rng.Intn(20))); err != nil {
				t.Fatal(err)
			}
		}
		s := topo.NodeID(rng.Intn(n))
		d := topo.NodeID(rng.Intn(n))
		if s == d {
			continue
		}
		// Ground truth with full knowledge.
		truth := graph.MaxFlow(g, s, d, func(u, v topo.NodeID) float64 {
			return net.Balance(u, v)
		}, -1, -1)
		if truth.Value <= 0 {
			continue
		}
		// Algorithm 1 with demand = max flow, unbounded paths, no early
		// exit: it must find the whole flow through probing alone.
		cfg := DefaultConfig(0)
		cfg.K = n * n // effectively unbounded
		cfg.ProbeAllK = true
		f := New(cfg)
		tx, err := net.Begin(s, d, truth.Value)
		if err != nil {
			t.Fatal(err)
		}
		plan := f.findElephantPaths(tx, cfg.K)
		if plan == nil {
			t.Fatalf("trial %d: Algorithm 1 found no plan for demand %v (= max flow)", trial, truth.Value)
		}
		if math.Abs(plan.flow-truth.Value) > 1e-6 {
			t.Fatalf("trial %d: Algorithm 1 flow %v ≠ Edmonds-Karp %v", trial, plan.flow, truth.Value)
		}
		// And the full routing pipeline delivers that demand.
		if err := f.routeWithPlan(tx, plan); err != nil {
			t.Fatalf("trial %d: routing max-flow demand failed: %v", trial, err)
		}
	}
}

// routeWithPlan finishes an elephant session from an existing plan
// (test helper mirroring routeElephant's allocation stage).
func (f *Flash) routeWithPlan(s route.Session, plan *elephantPlan) error {
	alloc := f.optimizeAllocation(plan, s.Demand())
	remaining := s.Demand()
	for i, amount := range alloc {
		if amount <= route.Epsilon || remaining <= route.Epsilon {
			continue
		}
		if amount > remaining {
			amount = remaining
		}
		remaining -= route.HoldUpTo(s, plan.paths[i], amount)
	}
	if remaining > route.Epsilon {
		for _, p := range plan.paths {
			if remaining <= route.Epsilon {
				break
			}
			remaining -= route.HoldUpTo(s, p, remaining)
		}
	}
	return route.Finish(s, route.ErrInsufficient)
}
