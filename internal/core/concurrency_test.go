package core

import (
	"math"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/pcn"
	"repro/internal/topo"
)

// concurrencyFixture builds a well-funded scale-free network whose
// payments overlap heavily on shared hub channels.
func concurrencyFixture(t testing.TB, nodes int) *pcn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	g, err := topo.BarabasiAlbert(nodes, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := pcn.New(g)
	for _, e := range g.Channels() {
		if err := net.SetBalance(e.A, e.B, 500, 500); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

// TestFlashConcurrentSessions drives one shared Flash router from many
// goroutines, mixing mice and elephants from overlapping senders, and
// checks the network invariants afterwards. Run with -race: it
// exercises the sharded routing tables, the atomic counters, and the
// per-channel network locks together.
func TestFlashConcurrentSessions(t *testing.T) {
	const (
		nodes    = 40
		workers  = 8
		payments = 60
	)
	net := concurrencyFixture(t, nodes)
	before := net.TotalFunds()
	f := New(DefaultConfig(100)) // amounts >100 are elephants

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < payments; i++ {
				// Few senders → heavy sharing of per-sender tables.
				s := topo.NodeID(rng.Intn(4))
				r := topo.NodeID(rng.Intn(nodes))
				if s == r {
					continue
				}
				amount := 1 + rng.Float64()*30
				if i%5 == 0 {
					amount = 150 + rng.Float64()*300 // elephant
				}
				tx, err := net.Begin(s, r, amount)
				if err != nil {
					t.Error(err)
					return
				}
				tx.SetRNG(rand.New(rand.NewSource(int64(w*payments + i))))
				_ = f.Route(tx) // failures are part of the workload
				if !tx.Finished() {
					t.Error("Route left session unfinished")
					return
				}
			}
		}(w)
	}
	wg.Wait()

	after := net.TotalFunds()
	if math.Abs(after-before) > 1e-6*before {
		t.Errorf("funds not conserved: before %v, after %v", before, after)
	}
	st := f.Stats()
	if st.Mice == 0 || st.Elephants == 0 {
		t.Errorf("expected both classes routed, got %+v", st)
	}
	// No session is live, so every channel's available balance must
	// equal its balance (no leaked holds).
	g := net.Graph()
	for _, e := range g.Channels() {
		if avail, bal := net.Available(e.A, e.B), net.Balance(e.A, e.B); math.Abs(avail-bal) > 1e-6 {
			t.Fatalf("leaked hold on %d-%d: available %v ≠ balance %v", e.A, e.B, avail, bal)
		}
	}
}

// TestPrewarmMatchesLazyTables verifies the parallel table build is
// semantically identical to lazy misses: for every pair, the prewarmed
// entry holds exactly the top-M Yen paths a lazy lookup would compute.
func TestPrewarmMatchesLazyTables(t *testing.T) {
	net := concurrencyFixture(t, 30)
	g := net.Graph()
	f := New(DefaultConfig(math.Inf(1)))

	var pairs []Pair
	for s := 0; s < 5; s++ {
		for r := 10; r < 25; r++ {
			pairs = append(pairs, Pair{Sender: topo.NodeID(s), Receiver: topo.NodeID(r)})
		}
	}
	// Duplicate the list to check idempotence under contention.
	pairs = append(pairs, pairs...)
	computed := f.Prewarm(g, pairs, 4)
	if want := len(pairs) / 2; computed != want {
		t.Errorf("Prewarm computed %d entries, want %d", computed, want)
	}
	if again := f.Prewarm(g, pairs, 4); again != 0 {
		t.Errorf("second Prewarm recomputed %d entries, want 0", again)
	}
	st := f.Stats()
	if st.TableEntries != len(pairs)/2 {
		t.Errorf("table entries = %d, want %d", st.TableEntries, len(pairs)/2)
	}
	if st.TableHits != 0 || st.TableMisses != 0 {
		t.Errorf("Prewarm must not touch hit/miss stats: %+v", st)
	}

	for _, p := range pairs[:len(pairs)/2] {
		want := graph.YenKSP(g, p.Sender, p.Receiver, f.cfg.M)
		tbl, entry := f.lookupPaths(g, p.Sender, p.Receiver, 1)
		if entry == nil {
			t.Fatalf("pair %v missing after Prewarm", p)
		}
		tbl.mu.Lock()
		got := entry.paths
		if len(got) != len(want) {
			t.Fatalf("pair %v: %d paths, want %d", p, len(got), len(want))
		}
		for i := range want {
			if !slices.Equal(got[i], want[i]) {
				t.Fatalf("pair %v path %d: %v ≠ %v", p, i, got[i], want[i])
			}
		}
		tbl.mu.Unlock()
	}
	// All the lookups above must have been hits.
	if st := f.Stats(); st.TableMisses != 0 {
		t.Errorf("lazy lookups after Prewarm missed %d times", st.TableMisses)
	}
}

// TestPrewarmConcurrentWithRouting prewarms while payments are already
// flowing — the steady-state "new receivers appear during traffic"
// case. Run with -race.
func TestPrewarmConcurrentWithRouting(t *testing.T) {
	net := concurrencyFixture(t, 30)
	g := net.Graph()
	f := New(DefaultConfig(math.Inf(1)))

	var pairs []Pair
	for s := 0; s < 6; s++ {
		for r := 6; r < 30; r++ {
			pairs = append(pairs, Pair{Sender: topo.NodeID(s), Receiver: topo.NodeID(r)})
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.Prewarm(g, pairs, 4)
	}()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		s := topo.NodeID(rng.Intn(6))
		r := topo.NodeID(6 + rng.Intn(24))
		tx, err := net.Begin(s, r, 1+rng.Float64()*5)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Route(tx); err != nil && !tx.Finished() {
			t.Fatalf("payment %d unfinished: %v", i, err)
		}
	}
	wg.Wait()
}
