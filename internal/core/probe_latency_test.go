package core

import (
	"testing"
)

// TestProbeWorkersCompressProbeLatency pins the virtual-latency
// contract of the speculative pipeline on the edge-disjoint fan
// fixture, where every candidate is a 2-hop path with identical RTT
// cost: sequential probing pays every candidate's round trip in
// series, while a pipelined round is charged only its slowest
// candidate (creditRoundOverlap returns the Σ−max surplus), so
// ProbeWorkers=4 collapses 8 serial round trips to 2 round-widths.
func TestProbeWorkersCompressProbeLatency(t *testing.T) {
	const (
		paths  = 8
		rtt    = 0.01 // seconds per channel, both directions
		demand = 750  // needs all 8 paths of 100
	)
	run := func(workers int) int64 {
		net, s, d := parallelFixture(t, paths, 100)
		for _, e := range net.Graph().Channels() {
			if err := net.SetLatency(e.A, e.B, rtt); err != nil {
				t.Fatal(err)
			}
		}
		cfg := DefaultConfig(0)
		cfg.K = paths
		cfg.ProbeWorkers = workers
		f := New(cfg)
		tx, err := net.Begin(s, d, demand)
		if err != nil {
			t.Fatal(err)
		}
		if plan := f.findElephantPaths(tx, cfg.K); plan == nil {
			t.Fatalf("workers=%d: no plan for feasible demand", workers)
		}
		return tx.ProbeLatencyNanos()
	}

	perProbe := int64(2 * rtt * 1e9) // 2 hops per candidate path
	lat1 := run(1)
	if want := int64(paths) * perProbe; lat1 != want {
		t.Errorf("sequential probe latency = %dns, want %dns (8 serial 2-hop round trips)", lat1, want)
	}
	lat4 := run(4)
	if want := 2 * perProbe; lat4 != want {
		t.Errorf("pipelined probe latency = %dns, want %dns (2 rounds, slowest candidate each)", lat4, want)
	}
	if lat4 >= lat1 {
		t.Errorf("ProbeWorkers=4 did not reduce probe latency: %dns >= %dns", lat4, lat1)
	}
}
