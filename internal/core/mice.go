package core

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/route"
	"repro/internal/topo"
)

// replacementPool is how many Yen paths beyond M are computed on a
// routing-table miss, to serve as cheap replacements when a cached path
// dies ("Flash replaces it with the next top shortest path", §3.3).
// Computing them up front bounds per-payment path-finding work: a
// replacement is a pop from the pool, never a fresh Yen run.
const replacementPool = 4

// routingTable is one sender's cache of paths to its recurring
// receivers (§3.3). clock counts payments routed by this sender and
// drives TTL eviction.
type routingTable struct {
	entries map[topo.NodeID]*tableEntry
	clock   int
}

// tableEntry caches the top-m shortest paths to one receiver. all is
// the extended Yen list (computed once, lazily, on the first dead-path
// replacement): the topology is static, so the candidate paths for a
// pair never change — only which of them currently have balance — and
// replacements cycle through all via cursor without re-running Yen.
type tableEntry struct {
	paths      [][]topo.NodeID
	all        [][]topo.NodeID // extended Yen list, nil until first needed
	cursor     int             // rotation position within all
	lastAccess int
}

// table returns (creating if needed) the routing table of sender.
// Callers must hold f.mu.
func (f *Flash) table(sender topo.NodeID) *routingTable {
	t, ok := f.tables[sender]
	if !ok {
		t = &routingTable{entries: make(map[topo.NodeID]*tableEntry)}
		f.tables[sender] = t
	}
	return t
}

// lookupPaths returns the cached paths for (sender, receiver),
// computing the top-M Yen shortest paths on a miss ("Upon seeing a new
// receiver that does not exist in the routing table, the node computes
// top-m shortest paths"). It also advances the TTL clock and evicts
// stale entries.
func (f *Flash) lookupPaths(g *topo.Graph, sender, receiver topo.NodeID) *tableEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := f.table(sender)
	t.clock++
	if f.cfg.TableTTL > 0 {
		for r, e := range t.entries {
			if t.clock-e.lastAccess > f.cfg.TableTTL {
				delete(t.entries, r)
			}
		}
	}
	if e, ok := t.entries[receiver]; ok {
		e.lastAccess = t.clock
		f.tableHits++
		return e
	}
	f.tableMisses++
	// A miss computes exactly the paper's top-m paths; the replacement
	// pool is only materialised when a path actually dies (most entries
	// never need one, so the common case stays cheap).
	e := &tableEntry{
		paths:      graph.YenKSP(g, sender, receiver, f.cfg.M),
		lastAccess: t.clock,
	}
	t.entries[receiver] = e
	return e
}

// replaceDeadPath swaps out entry's path at slot with the next top
// shortest path ("when a payment encounters an unaccessible path with
// zero effective capacity or no connectivity, Flash replaces it with
// the next top shortest path"). The extended Yen list is computed once
// per entry on first need; subsequent replacements rotate through it —
// a path that was dead earlier may have revived, since channel balances
// move in both directions. Returns the replacement, or nil when the
// pair has no alternative paths at all (the slot is then dropped).
func (f *Flash) replaceDeadPath(g *topo.Graph, sender topo.NodeID, e *tableEntry, slot int) []topo.NodeID {
	f.mu.Lock()
	defer f.mu.Unlock()
	if slot >= len(e.paths) {
		return nil
	}
	if e.all == nil {
		receiver := e.paths[slot][len(e.paths[slot])-1]
		e.all = graph.YenKSP(g, sender, receiver, f.cfg.M+replacementPool)
		e.cursor = len(e.paths) % max(len(e.all), 1)
	}
	if len(e.all) <= 1 {
		e.paths = append(e.paths[:slot], e.paths[slot+1:]...)
		return nil
	}
	// Pick the next rotation candidate not currently in the live set.
	for tries := 0; tries < len(e.all); tries++ {
		cand := e.all[e.cursor%len(e.all)]
		e.cursor++
		if !containsPath(e.paths, cand) {
			e.paths[slot] = cand
			f.pathsReplaced++
			return cand
		}
	}
	e.paths = append(e.paths[:slot], e.paths[slot+1:]...)
	return nil
}

// containsPath reports whether set holds an identical path.
func containsPath(set [][]topo.NodeID, p []topo.NodeID) bool {
	for _, q := range set {
		if len(q) != len(p) {
			continue
		}
		same := true
		for i := range q {
			if q[i] != p[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// routeMice is the paper's mice algorithm (§3.3): look the receiver up
// in the routing table, then run a trial-and-error loop over the cached
// paths in random order — send the full remainder without probing; only
// when that fails probe the path and send a partial payment of its
// effective capacity.
func (f *Flash) routeMice(s route.Session) error {
	g := s.Graph()
	entry := f.lookupPaths(g, s.Sender(), s.Receiver())
	if len(entry.paths) == 0 {
		if err := s.Abort(); err != nil {
			return err
		}
		return route.ErrNoRoute
	}

	order := f.pathOrder(entry)
	remaining := s.Demand()
	for _, slot := range order {
		if remaining <= route.Epsilon {
			break
		}
		if slot >= len(entry.paths) {
			continue // a replacement shrank the table mid-loop
		}
		path := entry.paths[slot]
		// First try the full remainder directly — no probing (this is
		// where mice routing wins its overhead back: most mice succeed
		// on the first try).
		if err := s.Hold(path, remaining); err == nil {
			remaining = 0
			break
		}
		// Rejected: probe to learn the effective capacity cp and send a
		// partial payment of that volume.
		info, err := s.Probe(path)
		if err != nil {
			continue
		}
		cp := route.MinAvailable(info)
		if cp <= route.Epsilon {
			// Dead path: replace with the next pooled Yen path and, if
			// one exists, give it a chance for this payment too.
			if next := f.replaceDeadPath(g, s.Sender(), entry, slot); next != nil {
				held := route.HoldUpTo(s, next, remaining)
				remaining -= held
			}
			continue
		}
		amount := cp
		if amount > remaining {
			amount = remaining
		}
		if err := s.Hold(path, amount); err == nil {
			remaining -= amount
		}
	}
	return route.Finish(s, route.ErrInsufficent)
}

// pathOrder returns the order in which to try table paths: random by
// default ("Flash randomly picks the paths to better load balance them
// without knowing their instantaneous capacities"), or ascending length
// when the FixedMiceOrder ablation is on.
func (f *Flash) pathOrder(e *tableEntry) []int {
	n := len(e.paths)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if f.cfg.FixedMiceOrder {
		sort.Slice(order, func(a, b int) bool {
			return len(e.paths[order[a]]) < len(e.paths[order[b]])
		})
		return order
	}
	f.mu.Lock()
	f.rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	f.mu.Unlock()
	return order
}
